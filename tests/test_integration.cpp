// End-to-end integration tests over the full stack: chain + contract +
// gossip network + RLN nodes, driven through the simulation harness.
// These exercise the complete paper §III flows: register -> sync ->
// publish -> route/validate -> detect spam -> slash -> reward.
#include <gtest/gtest.h>

#include "common/serde.hpp"
#include "rln/harness.hpp"

namespace waku::rln {
namespace {

HarnessConfig small_config(std::size_t nodes = 10) {
  HarnessConfig cfg;
  cfg.num_nodes = nodes;
  cfg.degree = std::min<std::size_t>(4, nodes - 1);
  cfg.block_interval_ms = 2'000;           // fast blocks for tests
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 5'000;
  cfg.node.validator.max_epoch_gap = 2;
  return cfg;
}

TEST(Integration, RegistrationRoundTrip) {
  RlnHarness h(small_config(6));
  EXPECT_FALSE(h.node(0).is_registered());
  h.register_all();
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_TRUE(h.node(i).is_registered()) << "node " << i;
    EXPECT_EQ(h.node(i).group().member_count(), h.size());
  }
  // All peers converged on the same root (§III-C sync requirement).
  const auto root = h.node(0).group().root();
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_EQ(h.node(i).group().root(), root);
  }
  // Deposits are locked in the contract.
  EXPECT_EQ(h.chain().balance(h.contract()),
            h.config().deposit_gwei * h.size());
}

TEST(Integration, RegistrationHasBlockDelay) {
  // §IV-A: "peers have to wait some time before being able to publish".
  RlnHarness h(small_config(4));
  h.node(0).register_membership();
  EXPECT_FALSE(h.node(0).is_registered());
  h.run_ms(h.config().block_interval_ms / 2);
  EXPECT_FALSE(h.node(0).is_registered());  // tx still pending
  h.run_ms(h.config().block_interval_ms);
  EXPECT_TRUE(h.node(0).is_registered());   // block mined, event synced
}

TEST(Integration, HonestMessageReachesEveryone) {
  RlnHarness h(small_config(10));
  h.register_all();
  h.run_ms(5'000);  // allow meshes to settle

  ASSERT_EQ(h.node(0).try_publish(to_bytes("hello waku-rln-relay")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);
  // Everyone (publisher included) delivered exactly one message.
  EXPECT_EQ(h.total_delivered(), h.size());
}

TEST(Integration, HonestRateLimitOneMessagePerEpoch) {
  RlnHarness h(small_config(6));
  h.register_all();
  h.run_ms(3'000);

  const auto first = h.node(0).try_publish(to_bytes("one"));
  const auto second = h.node(0).try_publish(to_bytes("two"));
  EXPECT_EQ(first, WakuRlnRelayNode::PublishStatus::kOk);
  EXPECT_EQ(second, WakuRlnRelayNode::PublishStatus::kRateLimited);

  // Next epoch opens the gate again.
  h.run_ms(h.config().node.validator.epoch.epoch_length_ms);
  EXPECT_EQ(h.node(0).try_publish(to_bytes("three")),
            WakuRlnRelayNode::PublishStatus::kOk);
}

TEST(Integration, UnregisteredCannotPublish) {
  RlnHarness h(small_config(4));
  EXPECT_EQ(h.node(0).try_publish(to_bytes("premature")),
            WakuRlnRelayNode::PublishStatus::kNotRegistered);
}

TEST(Integration, SpammerIsDetectedSlashedAndLosesDeposit) {
  RlnHarness h(small_config(10));
  h.register_all();
  h.run_ms(5'000);

  WakuRlnRelayNode& spammer = h.node(0);
  const chain::Gwei deposit = h.config().deposit_gwei;

  // Double-signal: two different messages in the same epoch (§III-F).
  ASSERT_EQ(spammer.force_publish(to_bytes("spam one")),
            WakuRlnRelayNode::PublishStatus::kOk);
  ASSERT_EQ(spammer.force_publish(to_bytes("spam two")),
            WakuRlnRelayNode::PublishStatus::kOk);

  // Detection happens at the first relaying hop; commit-reveal slashing
  // then needs two block intervals.
  h.run_ms(8 * h.config().block_interval_ms);

  // Someone recovered the spammer's sk and slashed it on-chain.
  std::uint64_t spam_detections = 0;
  std::uint64_t reward_winners = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    spam_detections += h.node(i).validator().stats().spam_detected;
    reward_winners += h.node(i).stats().slash_rewards;
  }
  EXPECT_GE(spam_detections, 1u);
  EXPECT_EQ(reward_winners, 1u);  // exactly one slasher wins the race

  // The spammer's membership is gone everywhere.
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_FALSE(
        h.node(i).group().index_of(spammer.identity().pk).has_value());
  }
  EXPECT_FALSE(spammer.is_registered());

  // The deposit moved from the contract to the winning slasher.
  EXPECT_EQ(h.chain().balance(h.contract()), deposit * (h.size() - 1));

  // And the slashed spammer can no longer publish.
  EXPECT_EQ(spammer.try_publish(to_bytes("post-slash")),
            WakuRlnRelayNode::PublishStatus::kNotRegistered);
}

TEST(Integration, SpamIsNotPropagatedBeyondFirstHop) {
  // §IV security: "spam messages are dropped immediately and not
  // propagated" — the second spam message dies at the spammer's direct
  // connections. The first message must fully propagate before the second
  // is sent; otherwise the two race and every node simply rejects
  // whichever arrives later (that case is exercised in the slashing test).
  HarnessConfig cfg = small_config(12);
  cfg.node.validator.epoch.epoch_length_ms = 60'000;  // both in one epoch
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(5'000);

  WakuRlnRelayNode& spammer = h.node(0);
  spammer.force_publish(to_bytes("legit-looking"));
  h.run_ms(5'000);  // full propagation
  spammer.force_publish(to_bytes("the spam"));
  h.run_ms(6'000);

  // First message delivered everywhere; the second only at the spammer.
  EXPECT_LE(h.total_delivered(), h.size() + 1 + h.network().neighbors(0).size());
  std::uint64_t rejected = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    rejected += h.node(i).relay().stats().rejected;
  }
  // Rejections happened only at direct neighbors of the spammer.
  EXPECT_LE(rejected, h.network().neighbors(0).size());
  EXPECT_GE(rejected, 1u);
}

TEST(Integration, InvalidProofFloodIsContained) {
  // §IV security: invalid-proof attackers only hurt their direct
  // connections; nothing is relayed.
  RlnHarness h(small_config(12));
  h.register_all();
  h.run_ms(5'000);

  const std::uint64_t delivered_before = h.total_delivered();
  for (int i = 0; i < 5; ++i) {
    h.node(0).publish_with_invalid_proof(to_bytes("junk"));
    h.run_ms(300);
  }
  h.run_ms(5'000);

  EXPECT_EQ(h.total_delivered(),
            delivered_before + 5);  // only the attacker's own deliveries
  std::uint64_t forwarded_spam = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    forwarded_spam += h.node(i).stats().delivered;
  }
  EXPECT_EQ(forwarded_spam, 0u);
}

TEST(Integration, ManyHonestPublishersAllDeliver) {
  RlnHarness h(small_config(10));
  h.register_all();
  h.run_ms(5'000);

  std::size_t published = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (h.node(i).try_publish(to_bytes("msg from " + std::to_string(i))) ==
        WakuRlnRelayNode::PublishStatus::kOk) {
      ++published;
    }
  }
  ASSERT_EQ(published, h.size());
  h.run_ms(15'000);
  EXPECT_EQ(h.total_delivered(), h.size() * h.size());
  // No spam was detected among honest traffic.
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(h.node(i).validator().stats().spam_detected, 0u);
  }
}

TEST(Integration, SlashingRaceOnlyOneWinnerGetsPaid) {
  // Multiple honest peers detect the same double-signal and all try to
  // slash; commit-reveal guarantees a single reward payment (§III-F).
  RlnHarness h(small_config(12));
  h.register_all();
  h.run_ms(5'000);

  const chain::Gwei contract_before = h.chain().balance(h.contract());
  h.node(0).force_publish(to_bytes("a"));
  h.node(0).force_publish(to_bytes("b"));
  h.run_ms(10 * h.config().block_interval_ms);

  // Exactly one deposit left the contract.
  EXPECT_EQ(h.chain().balance(h.contract()),
            contract_before - h.config().deposit_gwei);
}

TEST(Integration, EpochGapDropsLaggingMessages) {
  // A node whose clock is far behind emits messages with old epochs that
  // validators ignore (§III-F item 1).
  HarnessConfig cfg = small_config(8);
  RlnHarness h(cfg);
  // Skew node 0's clock back by 4 epochs (> Thr = 2).
  h.network().set_clock_skew(h.node(0).node_id(),
                             -static_cast<std::int64_t>(
                                 4 * cfg.node.validator.epoch.epoch_length_ms));
  h.register_all();
  // Run long enough that the skewed clock is well past zero (local_time
  // clamps at zero, which would otherwise compress the gap).
  h.run_ms(40'000);

  h.node(0).try_publish(to_bytes("from the past"));
  h.run_ms(6'000);
  // Only the skewed publisher itself delivered; everyone else ignored it.
  EXPECT_EQ(h.total_delivered(), 1u);
  std::uint64_t gap_drops = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    gap_drops += h.node(i).validator().stats().epoch_gap;
  }
  EXPECT_GE(gap_drops, 1u);
}

TEST(Integration, WithdrawalEscapesSlashing) {
  // §IV-B open problem: a spammer who withdraws before being slashed saves
  // the deposit; late slashes fail.
  RlnHarness h(small_config(8));
  h.register_all();
  h.run_ms(3'000);

  WakuRlnRelayNode& sneaky = h.node(0);
  const chain::Gwei balance_before = h.chain().balance(sneaky.account());

  // Withdraw first (the contract pays the deposit back)...
  chain::Transaction tx;
  tx.from = sneaky.account();
  tx.to = h.contract();
  tx.method = "withdraw";
  ByteWriter w;
  w.write_raw(sneaky.identity().sk.to_bytes_be());
  w.write_u64(*sneaky.group().own_index());
  w.write_raw(
      merkle::serialize_path(sneaky.group().path_of(*sneaky.group().own_index())));
  tx.calldata = std::move(w).take();
  h.chain().submit(std::move(tx));
  h.run_ms(2 * h.config().block_interval_ms);

  EXPECT_GT(h.chain().balance(sneaky.account()), balance_before);
  EXPECT_FALSE(sneaky.is_registered());
  // ...then any spam evidence against it can no longer be monetized.
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_FALSE(h.node(i).group().index_of(sneaky.identity().pk).has_value());
  }
}

TEST(Integration, StoreNodeArchivesTraffic) {
  HarnessConfig cfg = small_config(6);
  cfg.node.enable_store = true;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(5'000);

  h.node(1).try_publish(to_bytes("for the archive"));
  h.run_ms(8'000);
  // Node 0's store holds the relayed message (13/WAKU2-STORE).
  const HistoryResponse history = h.node(0).store().query(HistoryQuery{});
  ASSERT_GE(history.messages.size(), 1u);
  EXPECT_EQ(history.messages[0].payload, to_bytes("for the archive"));
}

TEST(Integration, LightNodesTrackGroupViaPartialView) {
  HarnessConfig cfg = small_config(8);
  cfg.node.tree_mode = TreeMode::kPartialView;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);

  // All partial-view nodes share the same root as a freshly computed full
  // tree would, and can publish valid proofs.
  ASSERT_EQ(h.node(2).try_publish(to_bytes("from a light node")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(8'000);
  EXPECT_EQ(h.total_delivered(), h.size());
}

}  // namespace
}  // namespace waku::rln
