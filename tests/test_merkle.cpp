// Tests for the identity-commitment Merkle tree and the O(log N) partial
// view: auth paths, deletion semantics, event-stream synchronization, and
// the storage claims behind experiment E4.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "merkle/partial_view.hpp"

namespace waku::merkle {
namespace {

using ff::Fr;

Fr leaf_of(std::uint64_t i) { return Fr::from_u64(1000 + i); }

TEST(MerkleTree, EmptyTreeRootIsZeroSubtree) {
  const IncrementalMerkleTree tree(10);
  EXPECT_EQ(tree.root(), zero_at(10));
  EXPECT_EQ(tree.size(), 0u);
}

TEST(MerkleTree, ZeroHashChainIsConsistent) {
  // z_{l+1} = H(z_l, z_l) by definition.
  for (std::size_t l = 0; l + 1 <= 20; ++l) {
    const MerklePath path{0, {zero_at(l)}};
    EXPECT_EQ(compute_root(zero_at(l), path), zero_at(l + 1));
  }
}

TEST(MerkleTree, InsertReturnsSequentialIndices) {
  IncrementalMerkleTree tree(8);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(tree.insert(leaf_of(i)), i);
  }
  EXPECT_EQ(tree.size(), 10u);
}

TEST(MerkleTree, RootChangesOnInsert) {
  IncrementalMerkleTree tree(8);
  const Fr r0 = tree.root();
  tree.insert(leaf_of(1));
  const Fr r1 = tree.root();
  tree.insert(leaf_of(2));
  EXPECT_NE(r0, r1);
  EXPECT_NE(r1, tree.root());
}

TEST(MerkleTree, AuthPathVerifies) {
  IncrementalMerkleTree tree(8);
  for (std::uint64_t i = 0; i < 30; ++i) tree.insert(leaf_of(i));
  for (std::uint64_t i = 0; i < 30; ++i) {
    const MerklePath path = tree.auth_path(i);
    EXPECT_TRUE(verify_path(tree.root(), leaf_of(i), path)) << "leaf " << i;
  }
}

TEST(MerkleTree, WrongLeafFailsVerification) {
  IncrementalMerkleTree tree(8);
  tree.insert(leaf_of(0));
  tree.insert(leaf_of(1));
  const MerklePath path = tree.auth_path(0);
  EXPECT_FALSE(verify_path(tree.root(), leaf_of(1), path));
}

TEST(MerkleTree, WrongRootFailsVerification) {
  IncrementalMerkleTree tree(8);
  tree.insert(leaf_of(0));
  const MerklePath path = tree.auth_path(0);
  EXPECT_FALSE(verify_path(Fr::from_u64(123), leaf_of(0), path));
}

TEST(MerkleTree, TamperedPathFailsVerification) {
  IncrementalMerkleTree tree(8);
  for (std::uint64_t i = 0; i < 5; ++i) tree.insert(leaf_of(i));
  MerklePath path = tree.auth_path(2);
  path.siblings[3] += Fr::one();
  EXPECT_FALSE(verify_path(tree.root(), leaf_of(2), path));
}

TEST(MerkleTree, UpdateChangesRootAndPathsStayValid) {
  IncrementalMerkleTree tree(8);
  for (std::uint64_t i = 0; i < 16; ++i) tree.insert(leaf_of(i));
  const Fr before = tree.root();
  tree.update(7, Fr::from_u64(9999));
  EXPECT_NE(tree.root(), before);
  EXPECT_TRUE(verify_path(tree.root(), Fr::from_u64(9999), tree.auth_path(7)));
  EXPECT_TRUE(verify_path(tree.root(), leaf_of(3), tree.auth_path(3)));
}

TEST(MerkleTree, RemoveRestoresZeroLeaf) {
  IncrementalMerkleTree tree(8);
  tree.insert(leaf_of(0));
  tree.insert(leaf_of(1));
  tree.remove(1);
  EXPECT_EQ(tree.leaf(1), Fr::zero());
  EXPECT_TRUE(verify_path(tree.root(), Fr::zero(), tree.auth_path(1)));
}

TEST(MerkleTree, RemoveAllReturnsToEmptyRoot) {
  // Deleting every member restores the all-zero tree root: deletion is
  // exactly "write the zero leaf" (paper §III-A).
  IncrementalMerkleTree tree(6);
  const Fr empty_root = tree.root();
  for (std::uint64_t i = 0; i < 8; ++i) tree.insert(leaf_of(i));
  for (std::uint64_t i = 0; i < 8; ++i) tree.remove(i);
  EXPECT_EQ(tree.root(), empty_root);
}

TEST(MerkleTree, IndicesNeverReused) {
  IncrementalMerkleTree tree(6);
  tree.insert(leaf_of(0));
  tree.remove(0);
  EXPECT_EQ(tree.insert(leaf_of(1)), 1u);  // slot 0 is not recycled
}

TEST(MerkleTree, CapacityEnforced) {
  IncrementalMerkleTree tree(2);
  for (int i = 0; i < 4; ++i) tree.insert(leaf_of(static_cast<unsigned>(i)));
  EXPECT_THROW(tree.insert(leaf_of(4)), ContractViolation);
}

TEST(MerkleTree, OutOfRangeAccessThrows) {
  IncrementalMerkleTree tree(4);
  tree.insert(leaf_of(0));
  EXPECT_THROW(tree.auth_path(1), ContractViolation);
  EXPECT_THROW(tree.update(1, Fr::one()), ContractViolation);
  EXPECT_THROW((void)tree.leaf(1), ContractViolation);
}

TEST(MerkleTree, RejectsBadDepth) {
  EXPECT_THROW(IncrementalMerkleTree(0), ContractViolation);
  EXPECT_THROW(IncrementalMerkleTree(41), ContractViolation);
}

TEST(MerkleTree, StorageGrowsLinearly) {
  // A tree with N leaves stores ~2N nodes (leaves + internal levels), so
  // storage is linear in membership: ~64 bytes per member amortized. The
  // paged arena rounds each level up to whole pages, which adds at most
  // ~one page per level of slack on top of the dense ~2N·32 bytes.
  IncrementalMerkleTree tree(20);
  for (std::uint64_t i = 0; i < 1000; ++i) tree.insert(leaf_of(i));
  const std::size_t s1000 = tree.storage_bytes();
  const std::size_t page_slack = 21 * PagedNodeArena::kPageNodes * 32;
  EXPECT_GT(s1000, 1000u * 2 * 32 * 9 / 10);
  EXPECT_LT(s1000, 1000u * 2 * 32 + page_slack);
}

// --- Paged arena backend ---

// Reference implementation: the pre-arena dense-vector tree, kept here so
// the paged backend is checked against an independent computation of the
// same zero-padded geometry rather than against itself.
class DenseReferenceTree {
 public:
  explicit DenseReferenceTree(std::size_t depth)
      : depth_(depth), levels_(depth + 1) {}

  void insert(const Fr& leaf) {
    std::uint64_t idx = count_++;
    store(0, idx, leaf);
    for (std::size_t l = 0; l < depth_; ++l) {
      const std::uint64_t parent = idx >> 1;
      store(l + 1, parent,
            hash::poseidon2(node(l, parent * 2), node(l, parent * 2 + 1)));
      idx = parent;
    }
  }

  [[nodiscard]] Fr root() const { return node(depth_, 0); }
  [[nodiscard]] Fr node(std::size_t l, std::uint64_t i) const {
    return i < levels_[l].size() ? levels_[l][i] : zero_at(l);
  }

 private:
  void store(std::size_t l, std::uint64_t i, const Fr& v) {
    if (i >= levels_[l].size()) levels_[l].resize(i + 1, zero_at(l));
    levels_[l][i] = v;
  }
  std::size_t depth_;
  std::uint64_t count_ = 0;
  std::vector<std::vector<Fr>> levels_;
};

TEST(MerkleTree, PagedArenaMatchesDenseReferenceAtDepth20) {
  // Same roots, auth paths, and interior nodes as the scattered-vector
  // implementation at the paper's depth, including the lazily-zero region
  // beyond the appended prefix (empty-subtree ladder equivalence).
  IncrementalMerkleTree paged(20);
  DenseReferenceTree dense(20);
  for (std::uint64_t i = 0; i < 300; ++i) {
    paged.insert(leaf_of(i));
    dense.insert(leaf_of(i));
    ASSERT_EQ(paged.root(), dense.root()) << "after insert " << i;
  }
  for (std::size_t l = 0; l <= 20; ++l) {
    EXPECT_EQ(paged.node_at(l, 0), dense.node(l, 0)) << "level " << l;
    // Probe beyond the materialized prefix: must read the zero ladder.
    const std::uint64_t far = (std::uint64_t{1} << (20 - l)) - 1;
    EXPECT_EQ(paged.node_at(l, far), dense.node(l, far)) << "level " << l;
  }
}

TEST(MerkleTree, PageBoundaryInsertionsKeepPathsValid) {
  // Straddle the first page seam at every level-0-relevant offset: the
  // nodes just before, at, and after index kPageNodes live in different
  // slabs and their parents straddle the level-1 seam much later.
  constexpr std::uint64_t kSeam = PagedNodeArena::kPageNodes;
  IncrementalMerkleTree tree(12);  // capacity 4096 > 2 pages of leaves
  for (std::uint64_t i = 0; i < kSeam + 5; ++i) tree.insert(leaf_of(i));
  for (std::uint64_t i : {kSeam - 2, kSeam - 1, kSeam, kSeam + 1}) {
    EXPECT_TRUE(verify_path(tree.root(), leaf_of(i), tree.auth_path(i)))
        << "leaf " << i;
  }
  // Update across the seam and re-verify both slabs see the new root.
  tree.update(kSeam, leaf_of(9999));
  EXPECT_TRUE(verify_path(tree.root(), leaf_of(9999), tree.auth_path(kSeam)));
  EXPECT_TRUE(
      verify_path(tree.root(), leaf_of(kSeam - 1), tree.auth_path(kSeam - 1)));
}

TEST(MerkleTree, InsertBatchMatchesLoopedInserts) {
  IncrementalMerkleTree batched(12);
  IncrementalMerkleTree looped(12);
  // Two batches with an odd straddle so the second batch starts mid-pair.
  std::vector<Fr> first;
  std::vector<Fr> second;
  for (std::uint64_t i = 0; i < 37; ++i) first.push_back(leaf_of(i));
  for (std::uint64_t i = 37; i < 1200; ++i) second.push_back(leaf_of(i));
  EXPECT_EQ(batched.insert_batch(first), 0u);
  EXPECT_EQ(batched.insert_batch(second), 37u);
  for (std::uint64_t i = 0; i < 1200; ++i) looped.insert(leaf_of(i));
  EXPECT_EQ(batched.size(), looped.size());
  ASSERT_EQ(batched.root(), looped.root());
  for (std::uint64_t i : {0u, 36u, 37u, 1023u, 1024u, 1199u}) {
    EXPECT_EQ(batched.auth_path(i), looped.auth_path(i)) << "leaf " << i;
  }
  EXPECT_EQ(batched.serialize(), looped.serialize());
}

TEST(MerkleTree, InsertBatchEnforcesCapacity) {
  IncrementalMerkleTree tree(3);
  std::vector<Fr> nine(9, leaf_of(1));
  EXPECT_THROW(tree.insert_batch(nine), ContractViolation);
  std::vector<Fr> eight(8, leaf_of(1));
  tree.insert_batch(eight);
  EXPECT_EQ(tree.size(), 8u);
  EXPECT_THROW(tree.insert(leaf_of(2)), ContractViolation);
}

TEST(MerkleTree, SerializeRoundTripPreservesPagedState) {
  IncrementalMerkleTree tree(12);
  for (std::uint64_t i = 0; i < PagedNodeArena::kPageNodes + 17; ++i) {
    tree.insert(leaf_of(i));
  }
  tree.remove(5);  // a zero leaf inside the dense prefix must round-trip
  const Bytes blob = tree.serialize();
  IncrementalMerkleTree back = IncrementalMerkleTree::deserialize(blob);
  EXPECT_EQ(back.root(), tree.root());
  EXPECT_EQ(back.size(), tree.size());
  EXPECT_EQ(back.leaf(5), Fr::zero());
  EXPECT_EQ(back.serialize(), blob);  // byte-identical re-serialization
  EXPECT_EQ(back.storage_bytes(), tree.storage_bytes());
  // Restored tree keeps appending correctly across the page seam.
  back.insert(leaf_of(7777));
  tree.insert(leaf_of(7777));
  EXPECT_EQ(back.root(), tree.root());
}

TEST(MerkleTree, DifferentInsertionOrdersGiveDifferentRoots) {
  IncrementalMerkleTree a(6);
  IncrementalMerkleTree b(6);
  a.insert(leaf_of(1));
  a.insert(leaf_of(2));
  b.insert(leaf_of(2));
  b.insert(leaf_of(1));
  EXPECT_NE(a.root(), b.root());
}

// --- Partial (O(log N)) view ---

TEST(PartialView, SnapshotMatchesTree) {
  IncrementalMerkleTree tree(10);
  for (std::uint64_t i = 0; i < 20; ++i) tree.insert(leaf_of(i));
  const auto view = PartialMerkleView::from_tree(tree, 5);
  EXPECT_EQ(view.root(), tree.root());
  EXPECT_EQ(view.auth_path(), tree.auth_path(5));
  EXPECT_EQ(view.size(), tree.size());
}

TEST(PartialView, TracksAppends) {
  IncrementalMerkleTree tree(10);
  for (std::uint64_t i = 0; i < 3; ++i) tree.insert(leaf_of(i));
  auto view = PartialMerkleView::from_tree(tree, 1);

  for (std::uint64_t i = 3; i < 50; ++i) {
    tree.insert(leaf_of(i));
    view.on_insert(leaf_of(i));
    ASSERT_EQ(view.root(), tree.root()) << "after insert " << i;
    ASSERT_EQ(view.auth_path(), tree.auth_path(1)) << "after insert " << i;
  }
}

TEST(PartialView, TracksUpdatesAtOtherIndices) {
  IncrementalMerkleTree tree(8);
  for (std::uint64_t i = 0; i < 12; ++i) tree.insert(leaf_of(i));
  auto view = PartialMerkleView::from_tree(tree, 4);

  Rng rng(173);
  for (int step = 0; step < 30; ++step) {
    const std::uint64_t target = rng.next_below(12);
    if (target == 4) continue;
    const Fr old_leaf = tree.leaf(target);
    const Fr new_leaf = Fr::random(rng);
    const MerklePath path = tree.auth_path(target);
    tree.update(target, new_leaf);
    view.on_update(target, old_leaf, new_leaf, path);
    ASSERT_EQ(view.root(), tree.root()) << "step " << step;
    ASSERT_EQ(view.auth_path(), tree.auth_path(4)) << "step " << step;
  }
}

TEST(PartialView, TracksOwnUpdate) {
  IncrementalMerkleTree tree(8);
  for (std::uint64_t i = 0; i < 6; ++i) tree.insert(leaf_of(i));
  auto view = PartialMerkleView::from_tree(tree, 2);

  const Fr new_leaf = Fr::from_u64(777);
  const MerklePath path = tree.auth_path(2);
  const Fr old_leaf = tree.leaf(2);
  tree.update(2, new_leaf);
  view.on_update(2, old_leaf, new_leaf, path);
  EXPECT_EQ(view.root(), tree.root());
  EXPECT_EQ(view.my_leaf(), new_leaf);
}

TEST(PartialView, InterleavedInsertsAndDeletes) {
  // The real event stream: registrations interleaved with slashings.
  IncrementalMerkleTree tree(10);
  for (std::uint64_t i = 0; i < 4; ++i) tree.insert(leaf_of(i));
  auto view = PartialMerkleView::from_tree(tree, 0);

  Rng rng(179);
  for (int step = 0; step < 100; ++step) {
    if (rng.chance(0.6) && tree.size() < 1000) {
      const Fr leaf = Fr::random(rng);
      tree.insert(leaf);
      view.on_insert(leaf);
    } else {
      const std::uint64_t target = 1 + rng.next_below(tree.size() - 1);
      const Fr old_leaf = tree.leaf(target);
      const MerklePath path = tree.auth_path(target);
      tree.remove(target);
      view.on_update(target, old_leaf, Fr::zero(), path);
    }
    ASSERT_EQ(view.root(), tree.root()) << "step " << step;
    ASSERT_EQ(view.auth_path(), tree.auth_path(0)) << "step " << step;
  }
}

TEST(PartialView, StalePathRejected) {
  IncrementalMerkleTree tree(8);
  for (std::uint64_t i = 0; i < 8; ++i) tree.insert(leaf_of(i));
  auto view = PartialMerkleView::from_tree(tree, 0);

  // Capture index 3's path, then let another update land (which the view
  // processes correctly). Indices 3 and 5 share ancestry at level 2, so
  // the captured path is now stale and must be rejected.
  const MerklePath stale = tree.auth_path(3);
  const Fr old3 = tree.leaf(3);
  const Fr old5 = tree.leaf(5);
  const MerklePath path5 = tree.auth_path(5);
  tree.update(5, Fr::from_u64(555));
  view.on_update(5, old5, Fr::from_u64(555), path5);
  ASSERT_EQ(view.root(), tree.root());

  EXPECT_THROW(view.on_update(3, old3, Fr::zero(), stale), ContractViolation);
}

TEST(PartialView, WrongOldLeafRejected) {
  IncrementalMerkleTree tree(8);
  for (std::uint64_t i = 0; i < 8; ++i) tree.insert(leaf_of(i));
  auto view = PartialMerkleView::from_tree(tree, 0);
  const MerklePath path = tree.auth_path(3);
  EXPECT_THROW(view.on_update(3, Fr::from_u64(424242), Fr::zero(), path),
               ContractViolation);
}

TEST(PartialView, StorageIsLogarithmic) {
  IncrementalMerkleTree tree(20);
  for (std::uint64_t i = 0; i < 4096; ++i) tree.insert(leaf_of(i));
  const auto view = PartialMerkleView::from_tree(tree, 100);

  // Full tree: megabytes at scale. Partial view: ~(2*depth+2)*32 bytes.
  EXPECT_LT(view.storage_bytes(), 2048u);
  EXPECT_GT(tree.storage_bytes(), 100'000u);
}

// Parameterized: views at several member positions all stay in sync.
class PartialViewPositions : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartialViewPositions, StaysInSyncThroughMixedEvents) {
  const std::uint64_t pos = GetParam();
  IncrementalMerkleTree tree(9);
  for (std::uint64_t i = 0; i <= pos; ++i) tree.insert(leaf_of(i));
  auto view = PartialMerkleView::from_tree(tree, pos);

  Rng rng(181 + pos);
  for (int step = 0; step < 40; ++step) {
    if (rng.chance(0.5)) {
      const Fr leaf = Fr::random(rng);
      tree.insert(leaf);
      view.on_insert(leaf);
    } else {
      const std::uint64_t target = rng.next_below(tree.size());
      if (target == pos) continue;
      const Fr old_leaf = tree.leaf(target);
      const MerklePath path = tree.auth_path(target);
      const Fr new_leaf = rng.chance(0.5) ? Fr::zero() : Fr::random(rng);
      tree.update(target, new_leaf);
      view.on_update(target, old_leaf, new_leaf, path);
    }
    ASSERT_EQ(view.root(), tree.root());
    ASSERT_EQ(view.auth_path(), tree.auth_path(pos));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartialViewPositions,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 15u));

}  // namespace
}  // namespace waku::merkle
