// Unit tests for the RLN core: identities, epochs, proof bundles, the
// nullifier log, group management in both storage modes, and the validator
// pipeline (paper §III).
#include <gtest/gtest.h>

#include "chain/rln_contract.hpp"
#include "common/expect.hpp"
#include "hash/poseidon.hpp"
#include "rln/group_manager.hpp"
#include "rln/identity.hpp"
#include "rln/nullifier_log.hpp"
#include "rln/rate_limit_proof.hpp"
#include "rln/validator.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {
namespace {

using ff::Fr;
using ff::U256;

TEST(Identity, CommitmentIsPoseidonOfSecret) {
  Rng rng(401);
  const Identity id = Identity::generate(rng);
  EXPECT_EQ(id.pk, hash::poseidon1(id.sk));
}

TEST(Identity, KeysAre32Bytes) {
  // Paper §IV: "Each peer persists a 32B public and secret key".
  Rng rng(403);
  const Identity id = Identity::generate(rng);
  EXPECT_EQ(id.sk_bytes().size(), 32u);
  EXPECT_EQ(id.pk_bytes().size(), 32u);
}

TEST(Identity, FromSecretRoundTrip) {
  Rng rng(405);
  const Identity a = Identity::generate(rng);
  const Identity b = Identity::from_secret(a.sk);
  EXPECT_EQ(a, b);
}

TEST(Identity, DistinctIdentities) {
  Rng rng(407);
  EXPECT_NE(Identity::generate(rng), Identity::generate(rng));
}

TEST(Epoch, PaperExample) {
  // §III-D: UnixTime 1644810116 s, T = 30 s -> epoch 54827003.
  EpochConfig cfg{.epoch_length_ms = 30'000};
  EXPECT_EQ(cfg.epoch_at(1'644'810'116'000ULL), 54'827'003ULL);
}

TEST(Epoch, BoundariesAreHalfOpen) {
  EpochConfig cfg{.epoch_length_ms = 1000};
  EXPECT_EQ(cfg.epoch_at(999), 0u);
  EXPECT_EQ(cfg.epoch_at(1000), 1u);
  EXPECT_EQ(cfg.epoch_at(1999), 1u);
}

TEST(Epoch, MaxEpochGapFormula) {
  // Thr = ceil((NetworkDelay + ClockAsynchrony) / T)  (§III-F)
  EXPECT_EQ(max_epoch_gap(2000, 1000, 1000), 3u);
  EXPECT_EQ(max_epoch_gap(2500, 0, 1000), 3u);   // ceil
  EXPECT_EQ(max_epoch_gap(0, 0, 1000), 0u);
  EXPECT_EQ(max_epoch_gap(100, 100, 30'000), 1u);
}

TEST(Epoch, DistanceIsSymmetric) {
  EXPECT_EQ(epoch_distance(5, 9), 4u);
  EXPECT_EQ(epoch_distance(9, 5), 4u);
  EXPECT_EQ(epoch_distance(7, 7), 0u);
}

TEST(RateLimitProofWire, RoundTrip) {
  Rng rng(409);
  RateLimitProof p;
  p.share_x = Fr::random(rng);
  p.share_y = Fr::random(rng);
  p.nullifier = Fr::random(rng);
  p.epoch = 54'827'003;
  p.root = Fr::random(rng);
  const Bytes proof_bytes = rng.next_bytes(128);
  p.proof = zksnark::Proof::deserialize(proof_bytes);

  const Bytes wire = p.serialize();
  EXPECT_EQ(wire.size(), RateLimitProof::kSerializedSize);
  EXPECT_EQ(RateLimitProof::deserialize(wire), p);
}

TEST(RateLimitProofWire, AttachExtract) {
  Rng rng(411);
  WakuMessage msg;
  msg.payload = to_bytes("hello rln");
  RateLimitProof p;
  p.share_x = Fr::random(rng);
  p.epoch = 99;
  attach_proof(msg, p);
  const auto extracted = extract_proof(msg);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(*extracted, p);
}

TEST(RateLimitProofWire, ExtractMissingOrMalformed) {
  WakuMessage msg;
  msg.payload = to_bytes("x");
  EXPECT_FALSE(extract_proof(msg).has_value());
  msg.rate_limit_proof = to_bytes("too short");
  EXPECT_FALSE(extract_proof(msg).has_value());
}

TEST(RateLimitProofWire, MessageHashBindsContent) {
  WakuMessage a;
  a.payload = to_bytes("one");
  WakuMessage b;
  b.payload = to_bytes("two");
  EXPECT_NE(message_hash(a), message_hash(b));
}

TEST(NullifierLogUnit, NewThenDuplicateThenConflict) {
  NullifierLog log;
  const Fr nullifier = Fr::from_u64(7);
  const sss::Share s1{Fr::from_u64(1), Fr::from_u64(10)};
  const sss::Share s2{Fr::from_u64(2), Fr::from_u64(20)};

  EXPECT_EQ(log.observe(5, nullifier, s1).outcome,
            NullifierLog::Outcome::kNew);
  EXPECT_EQ(log.observe(5, nullifier, s1).outcome,
            NullifierLog::Outcome::kDuplicate);
  const auto conflict = log.observe(5, nullifier, s2);
  EXPECT_EQ(conflict.outcome, NullifierLog::Outcome::kConflict);
  ASSERT_TRUE(conflict.previous_share.has_value());
  EXPECT_EQ(*conflict.previous_share, s1);
}

TEST(NullifierLogUnit, EpochsAreIndependent) {
  NullifierLog log;
  const Fr nullifier = Fr::from_u64(7);
  const sss::Share s{Fr::from_u64(1), Fr::from_u64(10)};
  EXPECT_EQ(log.observe(5, nullifier, s).outcome, NullifierLog::Outcome::kNew);
  EXPECT_EQ(log.observe(6, nullifier, s).outcome, NullifierLog::Outcome::kNew);
}

TEST(NullifierLogUnit, GcDropsOldEpochs) {
  NullifierLog log;
  const sss::Share s{Fr::from_u64(1), Fr::from_u64(10)};
  for (std::uint64_t e = 0; e < 10; ++e) {
    log.observe(e, Fr::from_u64(e), s);
  }
  EXPECT_EQ(log.epoch_count(), 10u);
  log.gc(/*current_epoch=*/9, /*thr=*/2);
  EXPECT_EQ(log.epoch_count(), 3u);  // epochs 7, 8, 9 retained
  EXPECT_GT(log.storage_bytes(), 0u);
}

TEST(NullifierLogUnit, DistinctNullifiersCoexist) {
  NullifierLog log;
  const sss::Share s{Fr::from_u64(1), Fr::from_u64(10)};
  EXPECT_EQ(log.observe(1, Fr::from_u64(100), s).outcome,
            NullifierLog::Outcome::kNew);
  EXPECT_EQ(log.observe(1, Fr::from_u64(101), s).outcome,
            NullifierLog::Outcome::kNew);
  EXPECT_EQ(log.entry_count(), 2u);
}

// -- GroupManager ------------------------------------------------------------

chain::Event registered_event(std::uint64_t index, const Fr& pk) {
  chain::Event ev;
  ev.name = "MemberRegistered";
  ev.topics = {U256{index}, pk.to_u256()};
  return ev;
}

chain::Event slashed_event(std::uint64_t index, const Fr& pk,
                           const merkle::MerklePath& path) {
  chain::Event ev;
  ev.name = "MemberSlashed";
  ev.topics = {U256{index}, pk.to_u256(), U256{0xBEEF}};
  ev.data = merkle::serialize_path(path);
  return ev;
}

TEST(GroupManagerUnit, FullModeTracksMembers) {
  GroupManager gm(8, TreeMode::kFullTree);
  Rng rng(419);
  const Identity me = Identity::generate(rng);
  gm.set_own_identity(me);

  gm.on_event(registered_event(0, hash::poseidon1(Fr::from_u64(1))));
  EXPECT_FALSE(gm.own_index().has_value());
  gm.on_event(registered_event(1, me.pk));
  ASSERT_TRUE(gm.own_index().has_value());
  EXPECT_EQ(*gm.own_index(), 1u);
  EXPECT_EQ(gm.member_count(), 2u);

  // The own path verifies against the tracked root.
  EXPECT_TRUE(merkle::verify_path(gm.root(), me.pk, gm.own_path()));
}

TEST(GroupManagerUnit, IndexLookupForSlashing) {
  GroupManager gm(8, TreeMode::kFullTree);
  const Fr pk = hash::poseidon1(Fr::from_u64(5));
  gm.on_event(registered_event(0, pk));
  ASSERT_TRUE(gm.index_of(pk).has_value());
  EXPECT_EQ(*gm.index_of(pk), 0u);
  EXPECT_FALSE(gm.index_of(Fr::from_u64(123)).has_value());
}

TEST(GroupManagerUnit, RemovalClearsLookupAndOwnIndex) {
  GroupManager gm(8, TreeMode::kFullTree);
  Rng rng(421);
  const Identity me = Identity::generate(rng);
  gm.set_own_identity(me);
  gm.on_event(registered_event(0, me.pk));
  ASSERT_TRUE(gm.own_index().has_value());

  const merkle::MerklePath path = gm.path_of(0);
  gm.on_event(slashed_event(0, me.pk, path));
  EXPECT_FALSE(gm.own_index().has_value());  // we were slashed
  EXPECT_FALSE(gm.index_of(me.pk).has_value());
  EXPECT_EQ(gm.removed_count(), 1u);
}

TEST(GroupManagerUnit, OutOfOrderEventRejected) {
  GroupManager gm(8, TreeMode::kFullTree);
  EXPECT_THROW(gm.on_event(registered_event(3, Fr::from_u64(1))),
               ContractViolation);
}

TEST(GroupManagerUnit, RecentRootWindow) {
  GroupManager gm(8, TreeMode::kFullTree, /*root_window=*/3);
  const Fr r0 = gm.root();
  gm.on_event(registered_event(0, hash::poseidon1(Fr::from_u64(1))));
  const Fr r1 = gm.root();
  gm.on_event(registered_event(1, hash::poseidon1(Fr::from_u64(2))));
  const Fr r2 = gm.root();
  EXPECT_TRUE(gm.is_recent_root(r0));
  EXPECT_TRUE(gm.is_recent_root(r1));
  EXPECT_TRUE(gm.is_recent_root(r2));
  gm.on_event(registered_event(2, hash::poseidon1(Fr::from_u64(3))));
  EXPECT_FALSE(gm.is_recent_root(r0));  // rolled out of the window
  EXPECT_TRUE(gm.is_recent_root(gm.root()));
}

TEST(GroupManagerUnit, PartialModeShrinksAfterOwnRegistration) {
  GroupManager full(10, TreeMode::kFullTree);
  GroupManager light(10, TreeMode::kPartialView);
  Rng rng(431);
  const Identity me = Identity::generate(rng);
  light.set_own_identity(me);

  // A pile of strangers registers, then us, then more strangers.
  std::vector<Fr> pks;
  for (int i = 0; i < 40; ++i) pks.push_back(hash::poseidon1(Fr::random(rng)));
  std::uint64_t index = 0;
  for (int i = 0; i < 20; ++i) {
    const auto ev = registered_event(index++, pks[static_cast<std::size_t>(i)]);
    full.on_event(ev);
    light.on_event(ev);
  }
  const std::size_t bootstrap_bytes = light.storage_bytes();
  {
    const auto ev = registered_event(index++, me.pk);
    full.on_event(ev);
    light.on_event(ev);
  }
  for (int i = 20; i < 40; ++i) {
    const auto ev = registered_event(index++, pks[static_cast<std::size_t>(i)]);
    full.on_event(ev);
    light.on_event(ev);
  }

  EXPECT_EQ(light.root(), full.root());
  EXPECT_TRUE(merkle::verify_path(light.root(), me.pk, light.own_path()));
  // After the switch the partial view is far below the bootstrap tree size
  // and the full replica.
  EXPECT_LT(light.storage_bytes(), bootstrap_bytes);
  EXPECT_LT(light.storage_bytes() * 3, full.storage_bytes());
}

TEST(GroupManagerUnit, PartialModeAppliesRemovalsViaEventPath) {
  GroupManager full(10, TreeMode::kFullTree);
  GroupManager light(10, TreeMode::kPartialView);
  Rng rng(433);
  const Identity me = Identity::generate(rng);
  light.set_own_identity(me);

  std::vector<Fr> pks;
  std::uint64_t index = 0;
  for (int i = 0; i < 8; ++i) {
    pks.push_back(hash::poseidon1(Fr::random(rng)));
    const auto ev = registered_event(index++, pks.back());
    full.on_event(ev);
    light.on_event(ev);
  }
  const auto me_ev = registered_event(index++, me.pk);
  full.on_event(me_ev);
  light.on_event(me_ev);

  // Slash member 3: the event carries the pre-removal path (from a full
  // node), which the light view uses to stay synced.
  const auto ev = slashed_event(3, pks[3], full.path_of(3));
  full.on_event(ev);
  light.on_event(ev);
  EXPECT_EQ(light.root(), full.root());
  EXPECT_TRUE(merkle::verify_path(light.root(), me.pk, light.own_path()));
}

// -- Validator ----------------------------------------------------------------

struct ValidatorFixture : ::testing::Test {
  static constexpr std::size_t kDepth = 8;
  GroupManager group{kDepth, TreeMode::kFullTree};
  Rng rng{now_seed()};
  Identity alice = Identity::generate(rng);
  Identity bob = Identity::generate(rng);
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 1000},
                       .max_epoch_gap = 2};
  RlnValidator validator{zksnark::rln_keypair(kDepth).vk, group, vcfg};

  static std::uint64_t now_seed() { return 437; }

  void SetUp() override {
    chain::Event ev;
    ev.name = "MemberRegistered";
    ev.topics = {U256{0}, alice.pk.to_u256()};
    group.on_event(ev);
    ev.topics = {U256{1}, bob.pk.to_u256()};
    group.on_event(ev);
  }

  WakuMessage make_message(const Identity& who, std::uint64_t who_index,
                           const std::string& body, std::uint64_t epoch) {
    WakuMessage msg;
    msg.payload = to_bytes(body);
    zksnark::RlnProverInput input;
    input.sk = who.sk;
    input.path = group.path_of(who_index);
    input.x = message_hash(msg);
    input.epoch = Fr::from_u64(epoch);
    zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    RateLimitProof bundle;
    bundle.share_x = c.publics.x;
    bundle.share_y = c.publics.y;
    bundle.nullifier = c.publics.nullifier;
    bundle.epoch = epoch;
    bundle.root = c.publics.root;
    bundle.proof =
        zksnark::prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
    attach_proof(msg, bundle);
    return msg;
  }
};

TEST_F(ValidatorFixture, AcceptsHonestMessage) {
  const WakuMessage msg = make_message(alice, 0, "hello", 10);
  const auto outcome = validator.validate(msg, 10'500);  // epoch 10
  EXPECT_EQ(outcome.verdict, Verdict::kAccept);
}

TEST_F(ValidatorFixture, IgnoresDuplicate) {
  const WakuMessage msg = make_message(alice, 0, "hello", 10);
  (void)validator.validate(msg, 10'500);
  EXPECT_EQ(validator.validate(msg, 10'600).verdict,
            Verdict::kIgnoreDuplicate);
}

TEST_F(ValidatorFixture, DetectsDoubleSignalAndRecoversKey) {
  const WakuMessage m1 = make_message(alice, 0, "first", 10);
  const WakuMessage m2 = make_message(alice, 0, "second", 10);
  EXPECT_EQ(validator.validate(m1, 10'500).verdict, Verdict::kAccept);
  const auto outcome = validator.validate(m2, 10'600);
  EXPECT_EQ(outcome.verdict, Verdict::kRejectSpam);
  ASSERT_TRUE(outcome.recovered_sk.has_value());
  EXPECT_EQ(*outcome.recovered_sk, alice.sk);  // cryptographic slashing
}

TEST_F(ValidatorFixture, DifferentEpochsDontConflict) {
  const WakuMessage m1 = make_message(alice, 0, "first", 10);
  const WakuMessage m2 = make_message(alice, 0, "second", 11);
  EXPECT_EQ(validator.validate(m1, 10'500).verdict, Verdict::kAccept);
  EXPECT_EQ(validator.validate(m2, 11'200).verdict, Verdict::kAccept);
}

TEST_F(ValidatorFixture, DifferentMembersDontConflict) {
  const WakuMessage m1 = make_message(alice, 0, "from alice", 10);
  const WakuMessage m2 = make_message(bob, 1, "from bob", 10);
  EXPECT_EQ(validator.validate(m1, 10'500).verdict, Verdict::kAccept);
  EXPECT_EQ(validator.validate(m2, 10'600).verdict, Verdict::kAccept);
}

TEST_F(ValidatorFixture, RejectsEpochTooFarPast) {
  const WakuMessage msg = make_message(alice, 0, "old", 5);
  EXPECT_EQ(validator.validate(msg, 10'500).verdict,
            Verdict::kIgnoreEpochGap);  // |10 - 5| > Thr = 2
}

TEST_F(ValidatorFixture, RejectsEpochTooFarFuture) {
  const WakuMessage msg = make_message(alice, 0, "future", 15);
  EXPECT_EQ(validator.validate(msg, 10'500).verdict, Verdict::kIgnoreEpochGap);
}

TEST_F(ValidatorFixture, AcceptsWithinEpochGap) {
  const WakuMessage msg = make_message(alice, 0, "slightly old", 9);
  EXPECT_EQ(validator.validate(msg, 10'500).verdict, Verdict::kAccept);
}

TEST_F(ValidatorFixture, RejectsMissingProof) {
  WakuMessage msg;
  msg.payload = to_bytes("bare");
  EXPECT_EQ(validator.validate(msg, 10'500).verdict, Verdict::kRejectNoProof);
}

TEST_F(ValidatorFixture, RejectsTamperedPayload) {
  WakuMessage msg = make_message(alice, 0, "authentic", 10);
  msg.payload = to_bytes("tampered!");  // breaks x = H(m)
  EXPECT_EQ(validator.validate(msg, 10'500).verdict, Verdict::kRejectBadProof);
}

TEST_F(ValidatorFixture, RejectsGarbageProof) {
  WakuMessage msg = make_message(alice, 0, "real", 10);
  auto bundle = *extract_proof(msg);
  bundle.proof = zksnark::Proof::deserialize(rng.next_bytes(128));
  attach_proof(msg, bundle);
  EXPECT_EQ(validator.validate(msg, 10'500).verdict, Verdict::kRejectBadProof);
}

TEST_F(ValidatorFixture, RejectsUnknownRoot) {
  WakuMessage msg = make_message(alice, 0, "real", 10);
  auto bundle = *extract_proof(msg);
  bundle.root = Fr::from_u64(0xBAD);
  attach_proof(msg, bundle);
  EXPECT_EQ(validator.validate(msg, 10'500).verdict, Verdict::kRejectStaleRoot);
}

TEST_F(ValidatorFixture, NonMemberCannotForgeProof) {
  // An unregistered identity borrows alice's path but proves with its own
  // sk: the computed root differs -> stale root rejection (it never even
  // reaches proof verification).
  Rng rng2(439);
  const Identity eve = Identity::generate(rng2);
  WakuMessage msg;
  msg.payload = to_bytes("evil");
  zksnark::RlnProverInput input;
  input.sk = eve.sk;
  input.path = group.path_of(0);
  input.x = message_hash(msg);
  input.epoch = Fr::from_u64(10);
  zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
  const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
  RateLimitProof bundle;
  bundle.share_x = c.publics.x;
  bundle.share_y = c.publics.y;
  bundle.nullifier = c.publics.nullifier;
  bundle.epoch = 10;
  bundle.root = c.publics.root;  // root of a tree containing eve -- fake
  bundle.proof =
      zksnark::prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng2);
  attach_proof(msg, bundle);
  EXPECT_EQ(validator.validate(msg, 10'500).verdict, Verdict::kRejectStaleRoot);
}

TEST_F(ValidatorFixture, StatsAreTracked) {
  (void)validator.validate(make_message(alice, 0, "a", 10), 10'500);
  (void)validator.validate(make_message(alice, 0, "b", 10), 10'600);
  WakuMessage bare;
  bare.payload = to_bytes("no proof");
  (void)validator.validate(bare, 10'700);
  const ValidatorStats& s = validator.stats();
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.spam_detected, 1u);
  EXPECT_EQ(s.no_proof, 1u);
}

TEST_F(ValidatorFixture, GcTrimsLog) {
  (void)validator.validate(make_message(alice, 0, "a", 10), 10'500);
  EXPECT_EQ(validator.log().entry_count(), 1u);
  validator.gc(100'000);  // epoch 100, far past Thr
  EXPECT_EQ(validator.log().entry_count(), 0u);
}

}  // namespace
}  // namespace waku::rln
