// Observability layer tests (src/obs + node wiring): log2 histogram
// bucket boundaries and quantile reconstruction, sharded-counter sums
// under real threads (the TSan target of this suite), deterministic
// 1-in-N trace sampling, bounded trace rings, the striped nullifier
// log's aggregated bucket_sizes/contention counters, and the node-level
// exposition — a sampled span covering publish -> rx -> verdict ->
// deliver, Prometheus families in metrics_text(), and the guarantee
// that telemetry-on runs stay deterministic under the simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rln/harness.hpp"
#include "rln/nullifier_log.hpp"

namespace waku::obs {
namespace {

// -- Histogram: log2 bucket boundaries ---------------------------------------

TEST(Histogram, Log2BucketBoundaries) {
  Histogram h;
  // bucket 0 = {0}; bucket i (i>=1) = [2^(i-1), 2^i - 1].
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(7);
  h.record(8);
  h.record((std::uint64_t{1} << 38));  // bucket 39 (bit_width = 39)

  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.bucket_counts[0], 1u);  // {0}
  EXPECT_EQ(s.bucket_counts[1], 1u);  // {1}
  EXPECT_EQ(s.bucket_counts[2], 2u);  // {2,3}
  EXPECT_EQ(s.bucket_counts[3], 2u);  // {4..7}
  EXPECT_EQ(s.bucket_counts[4], 1u);  // {8..15}
  EXPECT_EQ(s.bucket_counts[39], 1u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 7 + 8 + (std::uint64_t{1} << 38));

  // Upper bounds: 0, 1, 3, 7, 15, ... and saturation at/above 64 bits.
  EXPECT_EQ(HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(10), 1023u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(64), ~std::uint64_t{0});
}

TEST(Histogram, OverflowValuesLandInLastBucket) {
  Histogram h;
  h.record(~std::uint64_t{0});  // bit_width 64 >> kBuckets
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.bucket_counts[Histogram::kBuckets - 1], 1u);
}

TEST(Histogram, QuantilesAreBucketUpperBounds) {
  Histogram h;
  // 90 observations of ~100ns (bucket 7: [64,127]) and 10 of ~1000ns
  // (bucket 10: [512,1023]). p50 resolves in the low bucket, p95/p99 in
  // the high one; each is the bucket's inclusive upper bound (the <=2x
  // overestimate the log2 layout guarantees).
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1000);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.p50, 127u);
  EXPECT_EQ(s.p95, 1023u);
  EXPECT_EQ(s.p99, 1023u);
  EXPECT_EQ(h.snapshot().p50, s.p50);  // snapshot is repeatable at rest
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p99, 0u);
}

// -- Counter / registry under threads (the TSan target) ----------------------

TEST(Telemetry, ConcurrentRecordsSumExactly) {
  Telemetry reg;
  Counter& c = reg.counter("waku_test_ops_total", "", "test counter");
  Histogram& h = reg.histogram("waku_test_latency_seconds", "", "test hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<std::uint64_t>(t * 100 + 1));
      }
    });
  }
  // Concurrent reads must be safe (and monotone) while writers run.
  std::uint64_t last = 0;
  for (int probe = 0; probe < 100; ++probe) {
    const std::uint64_t now = c.value();
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Telemetry, RegistrationIsIdempotentAndKindChecked) {
  Telemetry reg;
  Counter& a = reg.counter("waku_test_total", "shard=\"0\"");
  Counter& b = reg.counter("waku_test_total", "shard=\"0\"");
  EXPECT_EQ(&a, &b);  // same series, stable address
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_THROW(reg.gauge("waku_test_total"), std::logic_error);
}

TEST(Telemetry, PrometheusExpositionScalesSecondsFamilies) {
  Telemetry reg;
  reg.histogram("waku_test_stage_seconds", "stage=\"x\"").record(1'000'000'000);
  reg.counter("waku_test_events_total").inc();
  const std::string text = reg.to_prometheus();
  // 1e9 ns lands in bucket 30 (upper 2^30-1 ns ~ 1.07s); the le label is
  // rendered in seconds.
  EXPECT_NE(text.find("# TYPE waku_test_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("waku_test_stage_seconds_count{stage=\"x\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("waku_test_stage_seconds_sum{stage=\"x\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("waku_test_events_total 1"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"waku_test_events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

// -- Trace sampling ----------------------------------------------------------

TEST(TraceCollector, SamplingIsDeterministicAcrossCollectors) {
  TraceCollectorConfig cfg;
  cfg.sample_every = 16;
  const TraceCollector a(cfg);
  const TraceCollector b(cfg);
  std::size_t selected = 0;
  for (std::uint64_t key = 0; key < 4096; ++key) {
    EXPECT_EQ(a.sampled(key), b.sampled(key)) << key;
    if (a.sampled(key)) ++selected;
  }
  // ~1-in-16 of 4096 = 256; the splitmix mix keeps it near uniform even
  // on sequential keys. Wide margin: this asserts "sampling", not an
  // exact binomial tail.
  EXPECT_GT(selected, 128u);
  EXPECT_LT(selected, 512u);

  TraceCollectorConfig off;
  off.sample_every = 0;
  EXPECT_FALSE(TraceCollector(off).sampled(0));
  TraceCollectorConfig all;
  all.sample_every = 1;
  EXPECT_TRUE(TraceCollector(all).sampled(12345));
}

TEST(TraceCollector, CompletedRingIsBoundedAndSlowRingKeepsWorst) {
  TraceCollectorConfig cfg;
  cfg.sample_every = 1;
  cfg.completed_ring = 4;
  cfg.slow_ring = 2;
  TraceCollector tc(cfg);
  // 8 traces with end-to-end durations 10, 20, ..., 80 ns.
  for (std::uint64_t i = 1; i <= 8; ++i) {
    tc.record(i, 1000 * i, "publish");
    tc.record(i, 1000 * i + 5 * i, "rx", "hop");
    tc.finish(i, 1000 * i + 10 * i, "deliver");
  }
  const TraceCollectorStats stats = tc.stats();
  EXPECT_EQ(stats.sampled, 8u);
  EXPECT_EQ(stats.finished, 8u);
  EXPECT_EQ(stats.evicted, 4u);  // 8 finished - ring of 4

  const std::vector<Trace> completed = tc.completed();
  ASSERT_EQ(completed.size(), 4u);
  // Oldest-first ring holding the most recent 4 (keys 5..8).
  EXPECT_EQ(completed.front().key, 5u);
  EXPECT_EQ(completed.back().key, 8u);
  ASSERT_EQ(completed.back().events.size(), 2u);
  EXPECT_EQ(completed.back().events[0].stage, "publish");
  EXPECT_EQ(completed.back().events[1].stage, "rx");
  EXPECT_EQ(completed.back().outcome, "deliver");

  const std::vector<Trace> slow = tc.slowest();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].key, 8u);  // worst first: 80ns then 70ns
  EXPECT_EQ(slow[1].key, 7u);
  EXPECT_EQ(slow[0].duration_ns(), 80u);

  const std::string json = tc.to_json();
  EXPECT_NE(json.find("\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"slowest\""), std::string::npos);
  EXPECT_NE(json.find("\"deliver\""), std::string::npos);
}

TEST(TraceCollector, OpenTraceCapTruncatesOldest) {
  TraceCollectorConfig cfg;
  cfg.sample_every = 1;
  cfg.max_open = 4;
  TraceCollector tc(cfg);
  for (std::uint64_t i = 1; i <= 6; ++i) tc.record(i, i, "publish");
  EXPECT_EQ(tc.open_count(), 4u);
  EXPECT_EQ(tc.stats().truncated, 2u);
  // A truncated trace is closed; finishing it again is a no-op.
  tc.finish(1, 100, "deliver");
  EXPECT_EQ(tc.stats().finished, 0u);
}

TEST(TraceCollector, UnsampledKeysRecordNothing) {
  TraceCollectorConfig cfg;
  cfg.sample_every = 16;
  TraceCollector tc(cfg);
  std::uint64_t sampled_key = 0;
  std::uint64_t unsampled_key = 0;
  for (std::uint64_t k = 1; k < 1000; ++k) {
    if (tc.sampled(k) && sampled_key == 0) sampled_key = k;
    if (!tc.sampled(k) && unsampled_key == 0) unsampled_key = k;
  }
  ASSERT_NE(sampled_key, 0u);
  ASSERT_NE(unsampled_key, 0u);
  tc.record(unsampled_key, 1, "publish");
  tc.finish(unsampled_key, 2, "deliver");
  EXPECT_EQ(tc.stats().sampled, 0u);
  tc.record(sampled_key, 1, "publish");
  EXPECT_EQ(tc.stats().sampled, 1u);
}

// -- FnClock -----------------------------------------------------------------

TEST(Clock, FnClockReadsInjectedSource) {
  std::uint64_t t = 42;
  const FnClock clock([&t] { return t; });
  EXPECT_EQ(clock.now_ns(), 42u);
  t = 99;
  EXPECT_EQ(clock.now_ns(), 99u);
  EXPECT_GT(steady_clock().now_ns(), 0u);
}

}  // namespace
}  // namespace waku::obs

namespace waku::rln {
namespace {

// -- Striped nullifier log: aggregated stats (satellite fix) -----------------

TEST(NullifierLogStats, BucketSizesAggregateAcrossStripes) {
  NullifierLog log;
  // 5 epochs x 40 nullifiers: epochs spread over all 16 lock stripes.
  std::size_t expected_entries = 0;
  for (std::uint64_t epoch = 100; epoch < 105; ++epoch) {
    for (std::uint64_t n = 0; n < 40; ++n) {
      sss::Share share{ff::Fr::from_u64(n + 1), ff::Fr::from_u64(epoch)};
      EXPECT_EQ(
          log.observe(epoch, ff::Fr::from_u64(epoch * 1000 + n), share).outcome,
          NullifierLog::Outcome::kNew);
      ++expected_entries;
    }
  }
  const NullifierLog::Stats stats = log.stats();
  EXPECT_EQ(stats.entries, expected_entries);
  EXPECT_EQ(stats.buckets, 5u);
  EXPECT_EQ(stats.min_epoch, 100u);

  // bucket_sizes must see every stripe, and its sum must equal the
  // entry count (the pre-fix bug: only stripe 0 was walked).
  const auto buckets = log.bucket_sizes();
  ASSERT_EQ(buckets.size(), 5u);
  std::size_t sum = 0;
  for (const auto& [epoch, size] : buckets) {
    EXPECT_EQ(size, 40u) << "epoch " << epoch;
    sum += size;
  }
  EXPECT_EQ(sum, stats.entries);

  // Contention counters: single-threaded traffic acquires but never
  // contends; the per-stripe view sums to the hot-path acquisitions.
  const auto stripes = log.stripe_contention();
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  for (const auto& s : stripes) {
    acquisitions += s.acquisitions;
    contended += s.contended;
  }
  EXPECT_GE(acquisitions, static_cast<std::uint64_t>(expected_entries));
  EXPECT_EQ(contended, 0u);
  EXPECT_EQ(stats.stripe_contended, 0u);
}

// -- Node-level exposition and spans -----------------------------------------

HarnessConfig obs_config(std::uint32_t sample_every) {
  HarnessConfig cfg;
  cfg.num_nodes = 3;
  cfg.degree = 2;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 5'000;
  cfg.node.validator.max_epoch_gap = 2;
  cfg.node.obs.trace.sample_every = sample_every;
  cfg.seed = 0x0B5;
  return cfg;
}

TEST(NodeObservability, SampledTraceCoversPublishToDeliver) {
  RlnHarness h(obs_config(/*sample_every=*/1));
  h.register_all();
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("traced hello")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);
  EXPECT_EQ(h.total_delivered(), h.size());

  // Per-node rings merge by trace key into one cross-node view: the
  // publisher contributes the publish span, every receiver an
  // rx -> verdict -> deliver chain. All nodes agreed to sample it
  // (the decision is a pure function of the content-derived key).
  std::set<std::string> stages;
  std::size_t finished_nodes = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    for (const obs::Trace& t : h.node(i).tracer().completed()) {
      for (const obs::TraceEvent& ev : t.events) stages.insert(ev.stage);
      if (t.outcome == "deliver") ++finished_nodes;
    }
  }
  EXPECT_TRUE(stages.contains("publish"));
  EXPECT_TRUE(stages.contains("rx"));
  EXPECT_TRUE(stages.contains("verdict"));
  EXPECT_TRUE(stages.contains("deliver"));
  EXPECT_EQ(finished_nodes, h.size());  // every node closed its span

  const obs::TraceCollectorStats stats = h.node(1).tracer().stats();
  EXPECT_GE(stats.sampled, 1u);
  EXPECT_GE(stats.finished, 1u);
}

TEST(NodeObservability, MetricsTextExposesPipelineAndExecutorFamilies) {
  RlnHarness h(obs_config(/*sample_every=*/1));
  h.register_all();
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("measured hello")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);

  const std::string text = h.node(1).metrics_text();
  // Stage latency histograms with per-shard labels (registry-rendered).
  EXPECT_NE(text.find("# TYPE waku_pipeline_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("stage=\"epoch_gate\""), std::string::npos);
  EXPECT_NE(text.find("stage=\"root_check\""), std::string::npos);
  EXPECT_NE(text.find("waku_pipeline_validate_seconds"), std::string::npos);
  // p50/p95/p99 quantile gauges per stage and shard.
  EXPECT_NE(text.find("waku_pipeline_stage_quantile_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // Verdict-reason counters and executor lane families.
  EXPECT_NE(text.find("waku_pipeline_verdicts_total"), std::string::npos);
  EXPECT_NE(text.find("reason=\"accept\""), std::string::npos);
  EXPECT_NE(text.find("waku_executor_queue_wait_seconds"), std::string::npos);
  EXPECT_NE(text.find("waku_executor_service_seconds"), std::string::npos);
  EXPECT_NE(text.find("waku_executor_lane_depth_high_watermark"),
            std::string::npos);
  // Nullifier-log and trace families.
  EXPECT_NE(text.find("waku_nullifier_log_entries"), std::string::npos);
  EXPECT_NE(text.find("waku_nullifier_log_stripe_acquisitions_total"),
            std::string::npos);
  EXPECT_NE(text.find("waku_trace_sampled_total"), std::string::npos);

  const std::string json = h.node(1).metrics_json();
  EXPECT_NE(json.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"executor_lanes\""), std::string::npos);
  EXPECT_NE(json.find("\"registry\""), std::string::npos);

  // The coherent snapshot matches what exposition rendered from.
  const NodeTelemetrySnapshot snap = h.node(1).telemetry_snapshot();
  EXPECT_GE(snap.pipeline.accepted, 1u);
  EXPECT_GE(snap.node.delivered, 1u);
  EXPECT_EQ(snap.per_shard.size(), 1u);

  // Epoch-boundary health snapshots accumulated (bounded JSON lines).
  ASSERT_FALSE(h.node(1).health_log().empty());
  EXPECT_NE(h.node(1).health_log().back().find("\"epoch\""),
            std::string::npos);
  EXPECT_NE(h.node(1).health_log().back().find("\"delivered\""),
            std::string::npos);
}

TEST(NodeObservability, TelemetryOnRunsStayDeterministic) {
  // Two identical runs with telemetry + full tracing must produce
  // byte-identical exposition: every recorded latency flows through the
  // virtual clock, so the histograms are pure functions of the seed.
  auto run = [] {
    RlnHarness h(obs_config(/*sample_every=*/1));
    h.register_all();
    h.run_ms(5'000);
    EXPECT_EQ(h.node(0).try_publish(to_bytes("deterministic")),
              WakuRlnRelayNode::PublishStatus::kOk);
    h.run_ms(10'000);
    return h.node(2).metrics_text() + h.node(2).metrics_json();
  };
  EXPECT_EQ(run(), run());
}

TEST(NodeObservability, DisabledTelemetryKeepsCountersButNoStageSeries) {
  HarnessConfig cfg = obs_config(/*sample_every=*/0);
  cfg.node.obs.enabled = false;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("unmeasured hello")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);
  EXPECT_EQ(h.total_delivered(), h.size());

  EXPECT_EQ(h.node(1).obs_clock(), nullptr);
  EXPECT_TRUE(h.node(1).health_log().empty());
  const std::string text = h.node(1).metrics_text();
  // The always-cheap counters still render...
  EXPECT_NE(text.find("waku_node_delivered_total"), std::string::npos);
  EXPECT_NE(text.find("waku_pipeline_verdicts_total"), std::string::npos);
  // ...but no stage histograms were ever registered or recorded.
  EXPECT_EQ(text.find("waku_pipeline_stage_seconds_bucket"),
            std::string::npos);
  EXPECT_EQ(h.node(1).tracer().stats().sampled, 0u);
}

}  // namespace
}  // namespace waku::rln
