// Observability layer tests (src/obs + node wiring): log2 histogram
// bucket boundaries and quantile reconstruction, sharded-counter sums
// under real threads (the TSan target of this suite), deterministic
// 1-in-N trace sampling, bounded trace rings, the striped nullifier
// log's aggregated bucket_sizes/contention counters, and the node-level
// exposition — a sampled span covering publish -> rx -> verdict ->
// deliver, Prometheus families in metrics_text(), and the guarantee
// that telemetry-on runs stay deterministic under the simulator.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "obs/clock.hpp"
#include "obs/fleet.hpp"
#include "obs/propagation.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rln/harness.hpp"
#include "rln/nullifier_log.hpp"
#include "shard/reshard.hpp"

namespace waku::obs {
namespace {

// -- Histogram: log2 bucket boundaries ---------------------------------------

TEST(Histogram, Log2BucketBoundaries) {
  Histogram h;
  // bucket 0 = {0}; bucket i (i>=1) = [2^(i-1), 2^i - 1].
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(7);
  h.record(8);
  h.record((std::uint64_t{1} << 38));  // bucket 39 (bit_width = 39)

  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.bucket_counts[0], 1u);  // {0}
  EXPECT_EQ(s.bucket_counts[1], 1u);  // {1}
  EXPECT_EQ(s.bucket_counts[2], 2u);  // {2,3}
  EXPECT_EQ(s.bucket_counts[3], 2u);  // {4..7}
  EXPECT_EQ(s.bucket_counts[4], 1u);  // {8..15}
  EXPECT_EQ(s.bucket_counts[39], 1u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 7 + 8 + (std::uint64_t{1} << 38));

  // Upper bounds: 0, 1, 3, 7, 15, ... and saturation at/above 64 bits.
  EXPECT_EQ(HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(1), 1u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(10), 1023u);
  EXPECT_EQ(HistogramSnapshot::bucket_upper(64), ~std::uint64_t{0});
}

TEST(Histogram, OverflowValuesLandInLastBucket) {
  Histogram h;
  h.record(~std::uint64_t{0});  // bit_width 64 >> kBuckets
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.bucket_counts[Histogram::kBuckets - 1], 1u);
}

TEST(Histogram, QuantilesAreBucketUpperBounds) {
  Histogram h;
  // 90 observations of ~100ns (bucket 7: [64,127]) and 10 of ~1000ns
  // (bucket 10: [512,1023]). p50 resolves in the low bucket, p95/p99 in
  // the high one; each is the bucket's inclusive upper bound (the <=2x
  // overestimate the log2 layout guarantees).
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(1000);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.p50, 127u);
  EXPECT_EQ(s.p95, 1023u);
  EXPECT_EQ(s.p99, 1023u);
  EXPECT_EQ(h.snapshot().p50, s.p50);  // snapshot is repeatable at rest
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.p99, 0u);
}

// -- Counter / registry under threads (the TSan target) ----------------------

TEST(Telemetry, ConcurrentRecordsSumExactly) {
  Telemetry reg;
  Counter& c = reg.counter("waku_test_ops_total", "", "test counter");
  Histogram& h = reg.histogram("waku_test_latency_seconds", "", "test hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<std::uint64_t>(t * 100 + 1));
      }
    });
  }
  // Concurrent reads must be safe (and monotone) while writers run.
  std::uint64_t last = 0;
  for (int probe = 0; probe < 100; ++probe) {
    const std::uint64_t now = c.value();
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Telemetry, RegistrationIsIdempotentAndKindChecked) {
  Telemetry reg;
  Counter& a = reg.counter("waku_test_total", "shard=\"0\"");
  Counter& b = reg.counter("waku_test_total", "shard=\"0\"");
  EXPECT_EQ(&a, &b);  // same series, stable address
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_THROW(reg.gauge("waku_test_total"), std::logic_error);
}

TEST(Telemetry, PrometheusExpositionScalesSecondsFamilies) {
  Telemetry reg;
  reg.histogram("waku_test_stage_seconds", "stage=\"x\"").record(1'000'000'000);
  reg.counter("waku_test_events_total").inc();
  const std::string text = reg.to_prometheus();
  // 1e9 ns lands in bucket 30 (upper 2^30-1 ns ~ 1.07s); the le label is
  // rendered in seconds.
  EXPECT_NE(text.find("# TYPE waku_test_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("waku_test_stage_seconds_count{stage=\"x\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("waku_test_stage_seconds_sum{stage=\"x\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("waku_test_events_total 1"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"waku_test_events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

// -- Trace sampling ----------------------------------------------------------

TEST(TraceCollector, SamplingIsDeterministicAcrossCollectors) {
  TraceCollectorConfig cfg;
  cfg.sample_every = 16;
  const TraceCollector a(cfg);
  const TraceCollector b(cfg);
  std::size_t selected = 0;
  for (std::uint64_t key = 0; key < 4096; ++key) {
    EXPECT_EQ(a.sampled(key), b.sampled(key)) << key;
    if (a.sampled(key)) ++selected;
  }
  // ~1-in-16 of 4096 = 256; the splitmix mix keeps it near uniform even
  // on sequential keys. Wide margin: this asserts "sampling", not an
  // exact binomial tail.
  EXPECT_GT(selected, 128u);
  EXPECT_LT(selected, 512u);

  TraceCollectorConfig off;
  off.sample_every = 0;
  EXPECT_FALSE(TraceCollector(off).sampled(0));
  TraceCollectorConfig all;
  all.sample_every = 1;
  EXPECT_TRUE(TraceCollector(all).sampled(12345));
}

TEST(TraceCollector, CompletedRingIsBoundedAndSlowRingKeepsWorst) {
  TraceCollectorConfig cfg;
  cfg.sample_every = 1;
  cfg.completed_ring = 4;
  cfg.slow_ring = 2;
  TraceCollector tc(cfg);
  // 8 traces with end-to-end durations 10, 20, ..., 80 ns.
  for (std::uint64_t i = 1; i <= 8; ++i) {
    tc.record(i, 1000 * i, "publish");
    tc.record(i, 1000 * i + 5 * i, "rx", "hop");
    tc.finish(i, 1000 * i + 10 * i, "deliver");
  }
  const TraceCollectorStats stats = tc.stats();
  EXPECT_EQ(stats.sampled, 8u);
  EXPECT_EQ(stats.finished, 8u);
  EXPECT_EQ(stats.evicted, 4u);  // 8 finished - ring of 4

  const std::vector<Trace> completed = tc.completed();
  ASSERT_EQ(completed.size(), 4u);
  // Oldest-first ring holding the most recent 4 (keys 5..8).
  EXPECT_EQ(completed.front().key, 5u);
  EXPECT_EQ(completed.back().key, 8u);
  ASSERT_EQ(completed.back().events.size(), 2u);
  EXPECT_EQ(completed.back().events[0].stage, "publish");
  EXPECT_EQ(completed.back().events[1].stage, "rx");
  EXPECT_EQ(completed.back().outcome, "deliver");

  const std::vector<Trace> slow = tc.slowest();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].key, 8u);  // worst first: 80ns then 70ns
  EXPECT_EQ(slow[1].key, 7u);
  EXPECT_EQ(slow[0].duration_ns(), 80u);

  const std::string json = tc.to_json();
  EXPECT_NE(json.find("\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"slowest\""), std::string::npos);
  EXPECT_NE(json.find("\"deliver\""), std::string::npos);
}

TEST(TraceCollector, OpenTraceCapTruncatesOldest) {
  TraceCollectorConfig cfg;
  cfg.sample_every = 1;
  cfg.max_open = 4;
  TraceCollector tc(cfg);
  for (std::uint64_t i = 1; i <= 6; ++i) tc.record(i, i, "publish");
  EXPECT_EQ(tc.open_count(), 4u);
  EXPECT_EQ(tc.stats().truncated, 2u);
  // A truncated trace is closed; finishing it again is a no-op.
  tc.finish(1, 100, "deliver");
  EXPECT_EQ(tc.stats().finished, 0u);
}

TEST(TraceCollector, UnsampledKeysRecordNothing) {
  TraceCollectorConfig cfg;
  cfg.sample_every = 16;
  TraceCollector tc(cfg);
  std::uint64_t sampled_key = 0;
  std::uint64_t unsampled_key = 0;
  for (std::uint64_t k = 1; k < 1000; ++k) {
    if (tc.sampled(k) && sampled_key == 0) sampled_key = k;
    if (!tc.sampled(k) && unsampled_key == 0) unsampled_key = k;
  }
  ASSERT_NE(sampled_key, 0u);
  ASSERT_NE(unsampled_key, 0u);
  tc.record(unsampled_key, 1, "publish");
  tc.finish(unsampled_key, 2, "deliver");
  EXPECT_EQ(tc.stats().sampled, 0u);
  tc.record(sampled_key, 1, "publish");
  EXPECT_EQ(tc.stats().sampled, 1u);
}

// -- FnClock -----------------------------------------------------------------

TEST(Clock, FnClockReadsInjectedSource) {
  std::uint64_t t = 42;
  const FnClock clock([&t] { return t; });
  EXPECT_EQ(clock.now_ns(), 42u);
  t = 99;
  EXPECT_EQ(clock.now_ns(), 99u);
  EXPECT_GT(steady_clock().now_ns(), 0u);
}

// -- FlightRecorder ----------------------------------------------------------

TEST(FlightRecorder, RingIsBoundedAndCountsEvictions) {
  FlightRecorderConfig cfg;
  cfg.capacity = 4;
  FlightRecorder rec(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(/*at_ns=*/i * 100, /*epoch=*/i, "reshard",
               "event " + std::to_string(i));
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.evicted(), 6u);

  const std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and the oldest survivor is event 6 (0..5 evicted).
  EXPECT_EQ(events.front().epoch, 6u);
  EXPECT_EQ(events.back().epoch, 9u);
  EXPECT_EQ(events.back().detail, "event 9");
}

TEST(FlightRecorder, PostmortemJsonEscapesAndStructures) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");

  FlightRecorder rec;
  rec.record(42, 7, "slash", "index=3 \"quoted\"");
  const std::string dump = rec.postmortem_json("unit \"test\"");
  EXPECT_NE(dump.find("\"reason\":\"unit \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(dump.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"evicted\":0"), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"slash\""), std::string::npos);
  EXPECT_NE(dump.find("index=3 \\\"quoted\\\""), std::string::npos);
  // The event's own renderer emits the same escaped tuple.
  const std::string ev = rec.events().front().to_json();
  EXPECT_NE(ev.find("\"epoch\":7"), std::string::npos);
  EXPECT_NE(ev.find("\"at_ns\":42"), std::string::npos);
}

// -- FleetAggregator ---------------------------------------------------------

NodeHealthSample fleet_sample(std::uint64_t node, std::uint64_t honest_del,
                              std::uint64_t honest_ideal,
                              std::uint64_t spam_del, std::uint64_t spam_sent,
                              double p95_ms, std::uint64_t log_entries) {
  NodeHealthSample s;
  s.node_id = node;
  s.honest_delivered = honest_del;
  s.honest_ideal = honest_ideal;
  s.spam_delivered = spam_del;
  s.spam_sent = spam_sent;
  s.log_entries = log_entries;
  s.quota_saturation = 0.5;
  s.shards.push_back({/*shard=*/0, p95_ms});
  return s;
}

TEST(FleetAggregator, FoldsSamplesIntoEpochRows) {
  FleetAggregator agg;
  EXPECT_EQ(agg.close_epoch(1), nullptr);  // nothing ingested yet

  agg.ingest(fleet_sample(0, 90, 100, 1, 10, 12.0, 40));
  agg.ingest(fleet_sample(1, 100, 100, 0, 10, 4.0, 60));
  const FleetEpochSeries* row = agg.close_epoch(5);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->epoch, 5u);
  EXPECT_EQ(row->nodes_reporting, 2u);
  EXPECT_DOUBLE_EQ(row->honest_delivery_ratio, 190.0 / 200.0);
  EXPECT_DOUBLE_EQ(row->containment_ratio, 1.0 - 1.0 / 20.0);
  EXPECT_DOUBLE_EQ(row->p95_spread_ms, 8.0);
  EXPECT_DOUBLE_EQ(row->max_p95_ms, 12.0);
  EXPECT_DOUBLE_EQ(row->quota_saturation, 0.5);
  EXPECT_EQ(row->total_log_entries, 100u);

  // Second epoch: drift is prev-minus-current containment, log growth is
  // the entry delta.
  agg.ingest(fleet_sample(0, 50, 100, 5, 10, 12.0, 90));
  agg.ingest(fleet_sample(1, 50, 100, 5, 10, 12.0, 110));
  const FleetEpochSeries* next = agg.close_epoch(6);
  ASSERT_NE(next, nullptr);
  EXPECT_DOUBLE_EQ(next->containment_ratio, 0.5);
  EXPECT_DOUBLE_EQ(next->containment_drift, 0.95 - 0.5);
  EXPECT_DOUBLE_EQ(next->log_growth_per_epoch, 100.0);
  EXPECT_EQ(agg.latest(), next);
}

TEST(FleetAggregator, HistoryIsBoundedAndExpositionRenders) {
  FleetAggregatorConfig cfg;
  cfg.history = 3;
  FleetAggregator agg(cfg);
  for (std::uint64_t e = 0; e < 5; ++e) {
    agg.ingest(fleet_sample(0, 99, 100, 0, 1, 10.0, 10 * (e + 1)));
    ASSERT_NE(agg.close_epoch(e), nullptr);
  }
  ASSERT_EQ(agg.history().size(), 3u);
  EXPECT_EQ(agg.history().front().epoch, 2u);
  EXPECT_EQ(agg.history().back().epoch, 4u);

  const std::string prom = agg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE waku_fleet_epoch gauge"), std::string::npos);
  EXPECT_NE(prom.find("waku_fleet_honest_delivery_ratio"), std::string::npos);
  EXPECT_NE(prom.find("waku_fleet_p95_spread_seconds"), std::string::npos);
  EXPECT_NE(prom.find("waku_fleet_executor_rejected_total"),
            std::string::npos);

  const std::string timeline = agg.timeline_json();
  EXPECT_EQ(timeline.front(), '[');
  EXPECT_EQ(timeline.back(), ']');
  EXPECT_NE(timeline.find("\"epoch\":2"), std::string::npos);
  EXPECT_NE(timeline.find("\"honest_delivery_ratio\""), std::string::npos);
  // Evicted rows are gone from the timeline too.
  EXPECT_EQ(timeline.find("\"epoch\":0,"), std::string::npos);
}

// -- AnomalyEngine -----------------------------------------------------------

FleetEpochSeries healthy_row(std::uint64_t epoch) {
  FleetEpochSeries row;
  row.epoch = epoch;
  row.honest_delivery_ratio = 1.0;
  row.containment_ratio = 1.0;
  row.max_p95_ms = 1.0;
  row.log_growth_per_epoch = 0.0;
  return row;
}

TEST(AnomalyEngine, TripAndClearHysteresis) {
  AnomalyEngineConfig cfg;
  cfg.trip_epochs = 2;
  cfg.clear_epochs = 2;
  AnomalyEngine eng(cfg);

  FleetEpochSeries bad = healthy_row(1);
  bad.honest_delivery_ratio = 0.9;  // below the 0.99 SLO

  // One bad epoch: armed but not firing (hysteresis).
  std::vector<AnomalyVerdict> v = eng.evaluate(bad);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0].rule, AnomalyRule::kDeliverySloBurn);
  EXPECT_FALSE(v[0].firing);
  EXPECT_EQ(eng.fired_total(), 0u);

  // Second consecutive bad epoch: fires, exactly once.
  bad.epoch = 2;
  v = eng.evaluate(bad);
  EXPECT_TRUE(v[0].firing);
  EXPECT_TRUE(v[0].changed);
  EXPECT_DOUBLE_EQ(v[0].observed, 0.9);
  EXPECT_DOUBLE_EQ(v[0].threshold, cfg.delivery_slo);
  EXPECT_TRUE(eng.any_firing());
  EXPECT_TRUE(eng.firing(AnomalyRule::kDeliverySloBurn));
  EXPECT_EQ(eng.fired_total(), 1u);
  // The other rules stayed quiet.
  EXPECT_FALSE(eng.firing(AnomalyRule::kP95BudgetBreach));
  EXPECT_FALSE(v[1].firing);

  // One good epoch does not clear it...
  v = eng.evaluate(healthy_row(3));
  EXPECT_TRUE(v[0].firing);
  EXPECT_FALSE(v[0].changed);
  // ...two do.
  v = eng.evaluate(healthy_row(4));
  EXPECT_FALSE(v[0].firing);
  EXPECT_TRUE(v[0].changed);
  EXPECT_FALSE(eng.any_firing());
  EXPECT_EQ(eng.fired_total(), 1u);  // clears are not fire transitions

  // An interrupted bad streak never fires: bad, good, bad, good.
  for (std::uint64_t e = 5; e < 9; ++e) {
    FleetEpochSeries row = healthy_row(e);
    if (e % 2 == 1) row.max_p95_ms = 10'000.0;
    eng.evaluate(row);
  }
  EXPECT_FALSE(eng.firing(AnomalyRule::kP95BudgetBreach));
  EXPECT_EQ(eng.fired_total(), 1u);
}

TEST(AnomalyEngine, EveryRuleTripsOnItsOwnSignal) {
  AnomalyEngineConfig cfg;
  cfg.trip_epochs = 1;
  AnomalyEngine eng(cfg);
  FleetEpochSeries row = healthy_row(1);
  row.honest_delivery_ratio = 0.5;
  row.containment_ratio = 0.5;
  row.max_p95_ms = 10'000.0;
  row.log_growth_per_epoch = 1e9;
  row.propagation_p95_ms = 10'000.0;  // past the 750 ms mesh budget
  const std::vector<AnomalyVerdict> v = eng.evaluate(row);
  ASSERT_EQ(v.size(), 5u);
  for (const AnomalyVerdict& verdict : v) {
    EXPECT_TRUE(verdict.firing)
        << anomaly_rule_name(verdict.rule);
    EXPECT_NE(verdict.to_json().find(anomaly_rule_name(verdict.rule)),
              std::string::npos);
  }
  EXPECT_EQ(eng.fired_total(), 5u);
}

TEST(AnomalyEngine, PropagationSloTripsAndClears) {
  AnomalyEngineConfig cfg;
  cfg.trip_epochs = 2;
  cfg.clear_epochs = 2;
  AnomalyEngine eng(cfg);

  // A row with no tracing lane (p95 == 0, the default) never trips.
  (void)eng.evaluate(healthy_row(1));
  (void)eng.evaluate(healthy_row(2));
  EXPECT_FALSE(eng.firing(AnomalyRule::kPropagationLatency));

  // Mesh p95 past the budget for trip_epochs consecutive rows: fires.
  FleetEpochSeries slow = healthy_row(3);
  slow.propagation_p95_ms = cfg.propagation_p95_budget_ms + 1.0;
  (void)eng.evaluate(slow);
  EXPECT_FALSE(eng.firing(AnomalyRule::kPropagationLatency));  // armed only
  slow.epoch = 4;
  std::vector<AnomalyVerdict> v = eng.evaluate(slow);
  EXPECT_TRUE(eng.firing(AnomalyRule::kPropagationLatency));
  const AnomalyVerdict& pv = v[static_cast<std::size_t>(
      AnomalyRule::kPropagationLatency)];
  EXPECT_EQ(pv.rule, AnomalyRule::kPropagationLatency);
  EXPECT_TRUE(pv.firing);
  EXPECT_DOUBLE_EQ(pv.threshold, cfg.propagation_p95_budget_ms);

  // Back under budget for clear_epochs rows: clears.
  (void)eng.evaluate(healthy_row(5));
  EXPECT_TRUE(eng.firing(AnomalyRule::kPropagationLatency));
  (void)eng.evaluate(healthy_row(6));
  EXPECT_FALSE(eng.firing(AnomalyRule::kPropagationLatency));
  EXPECT_EQ(eng.fired_total(), 1u);
}

// -- Cross-node propagation assembly -----------------------------------------

Trace make_trace(TraceKey key, std::vector<TraceEvent> events,
                 std::string outcome = "deliver") {
  Trace t;
  t.key = key;
  t.events = std::move(events);
  t.start_ns = t.events.front().at_ns;
  t.end_ns = t.events.back().at_ns;
  t.outcome = std::move(outcome);
  return t;
}

TEST(PropagationAssembler, LinearChainTreeAndRollups) {
  // 1 publishes; 2 receives from 1; 3 receives from 2 — a 3-node chain.
  PropagationAssembler a;
  a.ingest(1, {make_trace(0xABC, {{1'000, "publish", "node=1,topic=t,shard=0"},
                                  {1'100, "deliver", "node=1"},
                                  {1'200, "fwd", "node=1,to=2"}})});
  a.ingest(2, {make_trace(0xABC, {{2'000, "rx", "node=2,shard=0,gen=1,from=1"},
                                  {2'050, "verdict", "accept"},
                                  {2'100, "deliver", "node=2"},
                                  {2'200, "fwd", "node=2,to=3"}})});
  a.ingest(3, {make_trace(0xABC, {{3'000, "rx", "node=3,shard=0,gen=1,from=2"},
                                  {3'050, "verdict", "accept"},
                                  {3'100, "deliver", "node=3"}})});
  a.set_subscribers(0, 3);

  const std::vector<PropagationTree> trees = a.assemble();
  ASSERT_EQ(trees.size(), 1u);
  const PropagationTree& tree = trees[0];
  EXPECT_TRUE(tree.has_origin);
  EXPECT_EQ(tree.origin_node, 1u);
  EXPECT_EQ(tree.publish_ns, 1'000u);
  EXPECT_TRUE(tree.has_shard);
  EXPECT_EQ(tree.shard, 0u);
  EXPECT_TRUE(tree.complete);
  EXPECT_FALSE(tree.rejected);
  EXPECT_EQ(tree.deliveries, 3u);
  EXPECT_EQ(tree.useful_rx, 2u);
  EXPECT_EQ(tree.duplicate_rx, 0u);
  EXPECT_EQ(tree.max_delivery_depth, 2);  // node 3 sits two hops out
  EXPECT_EQ(tree.latency_ns(), 3'100u - 1'000u);
  ASSERT_EQ(tree.nodes.size(), 3u);  // sorted by node id
  EXPECT_EQ(tree.nodes[0].depth, 0);
  EXPECT_EQ(tree.nodes[1].depth, 1);
  EXPECT_EQ(tree.nodes[1].from, 1u);
  EXPECT_EQ(tree.nodes[2].depth, 2);
  EXPECT_EQ(tree.nodes[0].forwards, 1u);

  const PropagationSummary s = a.summary();
  EXPECT_EQ(s.trees, 1u);
  EXPECT_EQ(s.complete_trees, 1u);
  EXPECT_EQ(s.incomplete_trees, 0u);
  EXPECT_EQ(s.p95_ns, 2'100u);
  EXPECT_DOUBLE_EQ(s.redundancy_ratio, 0.0);
  EXPECT_DOUBLE_EQ(s.reachability, 1.0);  // 3 delivered / 3 subscribed
  ASSERT_EQ(s.hop_histogram.size(), 3u);
  EXPECT_EQ(s.hop_histogram[0], 1u);
  EXPECT_EQ(s.hop_histogram[1], 1u);
  EXPECT_EQ(s.hop_histogram[2], 1u);
}

TEST(PropagationAssembler, DiamondFanOutCountsDuplicateRx) {
  // 1 -> {2, 3} -> 4: node 4 hears the message twice; the second receipt
  // is a router-level duplicate ("dup"), the mesh-redundancy signal.
  PropagationAssembler a;
  a.ingest(1, {make_trace(0x0D1A, {{1'000, "publish", "node=1,shard=0"},
                                   {1'010, "deliver", "node=1"},
                                   {1'020, "fwd", "node=1,to=2"},
                                   {1'030, "fwd", "node=1,to=3"}})});
  a.ingest(2, {make_trace(0x0D1A, {{2'000, "rx", "node=2,shard=0,from=1"},
                                   {2'010, "deliver", "node=2"},
                                   {2'020, "fwd", "node=2,to=4"}})});
  a.ingest(3, {make_trace(0x0D1A, {{2'100, "rx", "node=3,shard=0,from=1"},
                                   {2'110, "deliver", "node=3"},
                                   {2'120, "fwd", "node=3,to=4"}})});
  a.ingest(4, {make_trace(0x0D1A, {{3'000, "rx", "node=4,shard=0,from=2"},
                                   {3'010, "deliver", "node=4"},
                                   {3'100, "dup", "node=4,from=3"}})});
  a.set_subscribers(0, 4);

  const std::vector<PropagationTree> trees = a.assemble();
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_TRUE(trees[0].complete);
  EXPECT_EQ(trees[0].deliveries, 4u);
  EXPECT_EQ(trees[0].useful_rx, 3u);
  EXPECT_EQ(trees[0].duplicate_rx, 1u);
  EXPECT_EQ(trees[0].max_delivery_depth, 2);

  const PropagationSummary s = a.summary();
  EXPECT_DOUBLE_EQ(s.redundancy_ratio, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.reachability, 1.0);
}

TEST(PropagationAssembler, SpamRejectDepthShallowAndDeep) {
  PropagationAssembler a;
  // Attack A: rejected right at the first hop (depth 1).
  a.ingest(10, {make_trace(0xA7, {{1'000, "publish", "node=10,shard=0"},
                                  {1'020, "fwd", "node=10,to=11"}},
                           "spam")});
  a.ingest(11, {make_trace(0xA7, {{2'000, "rx", "node=11,shard=0,from=10"},
                                  {2'050, "verdict", "spam"}},
                           "spam")});
  // Attack B: relayed unvalidated for two hops, killed at depth 3.
  a.ingest(10, {make_trace(0xB7, {{5'000, "publish", "node=10,shard=0"},
                                  {5'020, "fwd", "node=10,to=12"}},
                           "spam")});
  a.ingest(12, {make_trace(0xB7, {{6'000, "rx", "node=12,shard=0,from=10"},
                                  {6'020, "fwd", "node=12,to=13"}},
                           "truncated")});
  a.ingest(13, {make_trace(0xB7, {{7'000, "rx", "node=13,shard=0,from=12"},
                                  {7'020, "fwd", "node=13,to=14"}},
                           "truncated")});
  a.ingest(14, {make_trace(0xB7, {{8'000, "rx", "node=14,shard=0,from=13"},
                                  {8'050, "verdict", "spam"}},
                           "spam")});

  const std::vector<PropagationTree> trees = a.assemble();
  ASSERT_EQ(trees.size(), 2u);  // sorted by key: 0xA7 then 0xB7
  EXPECT_TRUE(trees[0].rejected);
  EXPECT_EQ(trees[0].reject_depth, 1);
  EXPECT_TRUE(trees[1].rejected);
  EXPECT_EQ(trees[1].reject_depth, 3);

  const PropagationSummary s = a.summary();
  EXPECT_EQ(s.rejected_trees, 2u);
  EXPECT_EQ(s.complete_trees, 0u);

  // Forensics: each rejected tree becomes an attack record whose slash
  // chain keeps only events at/after ITS publish.
  a.ingest_flight(11, {{2'500, 1, "slash", "commit index=10"},
                       {9'000, 2, "slash", "member_slashed index=10"},
                       {100, 0, "reshard", "unrelated"}});
  const std::string forensics = a.forensics_json();
  EXPECT_NE(forensics.find("\"attacks\":["), std::string::npos);
  EXPECT_NE(forensics.find("\"reject_depth\":1"), std::string::npos);
  EXPECT_NE(forensics.find("\"reject_depth\":3"), std::string::npos);
  EXPECT_NE(forensics.find("member_slashed index=10"), std::string::npos);
  EXPECT_EQ(forensics.find("unrelated"), std::string::npos);
  // Attack B published at 5000ns: the 2500ns commit is outside its
  // causal window, so "commit" shows up exactly once (attack A's chain),
  // while the later member_slashed appears in both chains.
  std::size_t commit_count = 0;
  for (std::size_t pos = forensics.find("commit index=10");
       pos != std::string::npos;
       pos = forensics.find("commit index=10", pos + 1)) {
    ++commit_count;
  }
  EXPECT_EQ(commit_count, 1u);
  std::size_t slashed_count = 0;
  for (std::size_t pos = forensics.find("member_slashed index=10");
       pos != std::string::npos;
       pos = forensics.find("member_slashed index=10", pos + 1)) {
    ++slashed_count;
  }
  EXPECT_EQ(slashed_count, 2u);
  EXPECT_NE(forensics.find("\"slash_events\":2"), std::string::npos);
}

TEST(PropagationAssembler, MarkedAdversaryAnchorsRootlessTrees) {
  // A flooder injects below the traced publish path: its own node shows
  // only deliver/fwd (no publish, no rx), and — within quota — the spam
  // is ACCEPTED fleet-wide. Unmarked, that tree has no origin and would
  // count as a failed honest reconstruction; marked, it is attack
  // evidence and feeds forensics.
  PropagationAssembler a;
  a.ingest(7, {make_trace(0x5AD, {{1'000, "deliver", "node=7"},
                                  {1'020, "fwd", "node=7,to=8"}})});
  a.ingest(8, {make_trace(0x5AD, {{2'000, "rx", "node=8,shard=0,from=7"},
                                  {2'050, "verdict", "accept"},
                                  {2'100, "deliver", "node=8"}})});
  // An honest tree that merely ROUTES THROUGH the adversary must keep
  // its classification: node 7 has a real rx there.
  a.ingest(1, {make_trace(0x0E5, {{3'000, "publish", "node=1,shard=0"},
                                  {3'010, "deliver", "node=1"},
                                  {3'020, "fwd", "node=1,to=7"}})});
  a.ingest(7, {make_trace(0x0E5, {{4'000, "rx", "node=7,shard=0,from=1"},
                                  {4'050, "verdict", "accept"},
                                  {4'100, "deliver", "node=7"}})});

  PropagationSummary before = a.summary();
  EXPECT_EQ(before.incomplete_trees, 1u);
  EXPECT_EQ(before.adversary_trees, 0u);

  a.mark_adversary(7);
  const PropagationSummary s = a.summary();
  EXPECT_EQ(s.trees, 2u);
  EXPECT_EQ(s.adversary_trees, 1u);
  EXPECT_EQ(s.incomplete_trees, 0u);
  EXPECT_EQ(s.complete_trees, 1u);  // the through-traffic tree survives

  const std::vector<PropagationTree> trees = a.assemble();
  ASSERT_EQ(trees.size(), 2u);  // sorted by key: 0x0E5 then 0x5AD
  EXPECT_FALSE(trees[0].adversary_origin);
  EXPECT_TRUE(trees[0].complete);
  EXPECT_TRUE(trees[1].adversary_origin);

  // Adversary-anchored trees join the forensics attack list even when
  // no validator rejected them (under-quota spam).
  EXPECT_NE(a.forensics_json().find("\"key\":\"00000000000005ad\""),
            std::string::npos);
  EXPECT_EQ(a.forensics_json().find("\"key\":\"00000000000000e5\""),
            std::string::npos);
}

TEST(PropagationAssembler, IncompleteTreesAreSurfacedNotSkipped) {
  PropagationAssembler a;
  // A receiver-side fragment with no origin trace: incomplete, counted.
  a.ingest(2, {make_trace(0xF00, {{2'000, "rx", "node=2,shard=0,from=1"},
                                  {2'100, "deliver", "node=2"}})});
  const PropagationSummary s = a.summary();
  EXPECT_EQ(s.trees, 1u);
  EXPECT_EQ(s.incomplete_trees, 1u);
  EXPECT_EQ(s.complete_trees, 0u);
  EXPECT_EQ(a.assemble()[0].max_delivery_depth, -1);  // unresolvable chain
}

TEST(PropagationAssembler, IngestIsIdempotentAndRichestWins) {
  PropagationAssembler a;
  const Trace lean =
      make_trace(0xEE, {{1'000, "publish", "node=1,shard=0"}}, "deliver");
  Trace rich = lean;
  rich.events.push_back({1'200, "fwd", "node=1,to=2"});
  rich.end_ns = 1'200;

  a.ingest(1, {lean});
  a.ingest(1, {lean});  // per-epoch re-collection: no duplication
  EXPECT_EQ(a.ingested_traces(), 1u);
  EXPECT_EQ(a.assemble()[0].nodes[0].forwards, 0u);

  a.ingest(1, {rich});  // later harvest with the late fwd annotation
  EXPECT_EQ(a.ingested_traces(), 1u);
  EXPECT_EQ(a.assemble()[0].nodes[0].forwards, 1u);

  a.ingest(1, {lean});  // stale re-offer never regresses the tree
  EXPECT_EQ(a.assemble()[0].nodes[0].forwards, 1u);
}

TEST(PropagationAssembler, ChromeTraceExportShape) {
  PropagationAssembler a;
  a.ingest(1, {make_trace(0xCC, {{1'000, "publish", "node=1,shard=0"},
                                 {1'100, "deliver", "node=1"}})});
  a.ingest(2, {make_trace(0xCC, {{2'000, "rx", "node=2,shard=0,from=1"},
                                 {2'100, "deliver", "node=2"}})});
  const std::string json = a.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process names
  EXPECT_NE(json.find("\"name\":\"node 1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"cat\":\"propagation\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

}  // namespace
}  // namespace waku::obs

namespace waku::rln {
namespace {

// -- Striped nullifier log: aggregated stats (satellite fix) -----------------

TEST(NullifierLogStats, BucketSizesAggregateAcrossStripes) {
  NullifierLog log;
  // 5 epochs x 40 nullifiers: epochs spread over all 16 lock stripes.
  std::size_t expected_entries = 0;
  for (std::uint64_t epoch = 100; epoch < 105; ++epoch) {
    for (std::uint64_t n = 0; n < 40; ++n) {
      sss::Share share{ff::Fr::from_u64(n + 1), ff::Fr::from_u64(epoch)};
      EXPECT_EQ(
          log.observe(epoch, ff::Fr::from_u64(epoch * 1000 + n), share).outcome,
          NullifierLog::Outcome::kNew);
      ++expected_entries;
    }
  }
  const NullifierLog::Stats stats = log.stats();
  EXPECT_EQ(stats.entries, expected_entries);
  EXPECT_EQ(stats.buckets, 5u);
  EXPECT_EQ(stats.min_epoch, 100u);

  // bucket_sizes must see every stripe, and its sum must equal the
  // entry count (the pre-fix bug: only stripe 0 was walked).
  const auto buckets = log.bucket_sizes();
  ASSERT_EQ(buckets.size(), 5u);
  std::size_t sum = 0;
  for (const auto& [epoch, size] : buckets) {
    EXPECT_EQ(size, 40u) << "epoch " << epoch;
    sum += size;
  }
  EXPECT_EQ(sum, stats.entries);

  // Contention counters: single-threaded traffic acquires but never
  // contends; the per-stripe view sums to the hot-path acquisitions.
  const auto stripes = log.stripe_contention();
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  for (const auto& s : stripes) {
    acquisitions += s.acquisitions;
    contended += s.contended;
  }
  EXPECT_GE(acquisitions, static_cast<std::uint64_t>(expected_entries));
  EXPECT_EQ(contended, 0u);
  EXPECT_EQ(stats.stripe_contended, 0u);
}

// -- Node-level exposition and spans -----------------------------------------

HarnessConfig obs_config(std::uint32_t sample_every) {
  HarnessConfig cfg;
  cfg.num_nodes = 3;
  cfg.degree = 2;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 5'000;
  cfg.node.validator.max_epoch_gap = 2;
  cfg.node.obs.trace.sample_every = sample_every;
  cfg.seed = 0x0B5;
  return cfg;
}

TEST(NodeObservability, SampledTraceCoversPublishToDeliver) {
  RlnHarness h(obs_config(/*sample_every=*/1));
  h.register_all();
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("traced hello")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);
  EXPECT_EQ(h.total_delivered(), h.size());

  // Per-node rings merge by trace key into one cross-node view: the
  // publisher contributes the publish span, every receiver an
  // rx -> verdict -> deliver chain. All nodes agreed to sample it
  // (the decision is a pure function of the content-derived key).
  std::set<std::string> stages;
  std::size_t finished_nodes = 0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    for (const obs::Trace& t : h.node(i).tracer().completed()) {
      for (const obs::TraceEvent& ev : t.events) stages.insert(ev.stage);
      if (t.outcome == "deliver") ++finished_nodes;
    }
  }
  EXPECT_TRUE(stages.contains("publish"));
  EXPECT_TRUE(stages.contains("rx"));
  EXPECT_TRUE(stages.contains("verdict"));
  EXPECT_TRUE(stages.contains("deliver"));
  EXPECT_EQ(finished_nodes, h.size());  // every node closed its span

  const obs::TraceCollectorStats stats = h.node(1).tracer().stats();
  EXPECT_GE(stats.sampled, 1u);
  EXPECT_GE(stats.finished, 1u);
}

TEST(NodeObservability, MetricsTextExposesPipelineAndExecutorFamilies) {
  RlnHarness h(obs_config(/*sample_every=*/1));
  h.register_all();
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("measured hello")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);

  const std::string text = h.node(1).metrics_text();
  // Stage latency histograms with per-shard labels (registry-rendered).
  EXPECT_NE(text.find("# TYPE waku_pipeline_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("stage=\"epoch_gate\""), std::string::npos);
  EXPECT_NE(text.find("stage=\"root_check\""), std::string::npos);
  EXPECT_NE(text.find("waku_pipeline_validate_seconds"), std::string::npos);
  // p50/p95/p99 quantile gauges per stage and shard.
  EXPECT_NE(text.find("waku_pipeline_stage_quantile_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // Verdict-reason counters and executor lane families.
  EXPECT_NE(text.find("waku_pipeline_verdicts_total"), std::string::npos);
  EXPECT_NE(text.find("reason=\"accept\""), std::string::npos);
  EXPECT_NE(text.find("waku_executor_queue_wait_seconds"), std::string::npos);
  EXPECT_NE(text.find("waku_executor_service_seconds"), std::string::npos);
  EXPECT_NE(text.find("waku_executor_lane_depth_high_watermark"),
            std::string::npos);
  // Nullifier-log and trace families.
  EXPECT_NE(text.find("waku_nullifier_log_entries"), std::string::npos);
  EXPECT_NE(text.find("waku_nullifier_log_stripe_acquisitions_total"),
            std::string::npos);
  EXPECT_NE(text.find("waku_trace_sampled_total"), std::string::npos);

  const std::string json = h.node(1).metrics_json();
  EXPECT_NE(json.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"executor_lanes\""), std::string::npos);
  EXPECT_NE(json.find("\"registry\""), std::string::npos);

  // The coherent snapshot matches what exposition rendered from.
  const NodeTelemetrySnapshot snap = h.node(1).telemetry_snapshot();
  EXPECT_GE(snap.pipeline.accepted, 1u);
  EXPECT_GE(snap.node.delivered, 1u);
  EXPECT_EQ(snap.per_shard.size(), 1u);

  // Epoch-boundary health snapshots accumulated (bounded JSON lines).
  ASSERT_FALSE(h.node(1).health_log().empty());
  EXPECT_NE(h.node(1).health_log().back().find("\"epoch\""),
            std::string::npos);
  EXPECT_NE(h.node(1).health_log().back().find("\"delivered\""),
            std::string::npos);
}

TEST(NodeObservability, TelemetryOnRunsStayDeterministic) {
  // Two identical runs with telemetry + full tracing must produce
  // byte-identical exposition: every recorded latency flows through the
  // virtual clock, so the histograms are pure functions of the seed.
  auto run = [] {
    RlnHarness h(obs_config(/*sample_every=*/1));
    h.register_all();
    h.run_ms(5'000);
    EXPECT_EQ(h.node(0).try_publish(to_bytes("deterministic")),
              WakuRlnRelayNode::PublishStatus::kOk);
    h.run_ms(10'000);
    return h.node(2).metrics_text() + h.node(2).metrics_json();
  };
  EXPECT_EQ(run(), run());
}

TEST(NodeObservability, DisabledTelemetryKeepsCountersButNoStageSeries) {
  HarnessConfig cfg = obs_config(/*sample_every=*/0);
  cfg.node.obs.enabled = false;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("unmeasured hello")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);
  EXPECT_EQ(h.total_delivered(), h.size());

  EXPECT_EQ(h.node(1).obs_clock(), nullptr);
  EXPECT_TRUE(h.node(1).health_log().empty());
  const std::string text = h.node(1).metrics_text();
  // The always-cheap counters still render...
  EXPECT_NE(text.find("waku_node_delivered_total"), std::string::npos);
  EXPECT_NE(text.find("waku_pipeline_verdicts_total"), std::string::npos);
  // ...but no stage histograms were ever registered or recorded.
  EXPECT_EQ(text.find("waku_pipeline_stage_seconds_bucket"),
            std::string::npos);
  EXPECT_EQ(h.node(1).tracer().stats().sampled, 0u);
}

// -- Cross-node propagation: assembly from real harness rings ----------------

TEST(NodeObservability, PropagationTreeAssemblesFromNodeRings) {
  RlnHarness h(obs_config(/*sample_every=*/1));
  h.register_all();
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("hop graph")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);
  ASSERT_EQ(h.total_delivered(), h.size());

  obs::PropagationAssembler a;
  for (std::size_t i = 0; i < h.size(); ++i) {
    a.ingest(h.node(i).node_id(), h.node(i).trace_dump());
  }
  a.set_default_subscribers(h.size());

  const std::vector<obs::PropagationTree> trees = a.assemble();
  ASSERT_EQ(trees.size(), 1u);
  const obs::PropagationTree& tree = trees[0];
  EXPECT_TRUE(tree.complete);
  EXPECT_TRUE(tree.has_origin);
  EXPECT_EQ(tree.origin_node, h.node(0).node_id());
  EXPECT_EQ(tree.deliveries, h.size());
  EXPECT_GT(tree.latency_ns(), 0u);
  // Hop provenance made it through the wire hooks: every receiver knows
  // who it first heard the message from, and someone forwarded it.
  std::size_t forwards = 0;
  for (const obs::PropagationNodeView& v : tree.nodes) {
    if (v.node != tree.origin_node) {
      EXPECT_NE(v.from, obs::kNoPeer);
      EXPECT_GE(v.depth, 1);
    }
    forwards += v.forwards;
  }
  EXPECT_GE(forwards, 1u);
  EXPECT_EQ(a.summary().complete_trees, 1u);
  EXPECT_DOUBLE_EQ(a.summary().reachability, 1.0);
}

TEST(NodeObservability, PropagationAssemblySurvivesNodeKill) {
  RlnHarness h(obs_config(/*sample_every=*/1));
  h.register_all();
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("pre-kill message")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(10'000);

  // Epoch harvest BEFORE the kill: node 2's ring is captured while it is
  // alive, exactly like the per-epoch collection a campaign runs.
  obs::PropagationAssembler a;
  for (std::size_t i = 0; i < h.size(); ++i) {
    a.ingest(h.node(i).node_id(), h.node(i).trace_dump());
  }
  h.kill_node(2);
  h.run_ms(5'000);
  // Post-kill harvest (the dead node contributes nothing new): trees
  // assembled from earlier harvests must not regress.
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (!h.alive(i)) continue;
    a.ingest(h.node(i).node_id(), h.node(i).trace_dump());
  }
  const std::vector<obs::PropagationTree> trees = a.assemble();
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_TRUE(trees[0].complete);
  EXPECT_EQ(trees[0].deliveries, 3u);  // includes the now-dead node's view
}

TEST(NodeObservability, PropagationOutputsAreByteIdentical) {
  // The assembler only iterates sorted containers; two identical runs
  // must render byte-identical summary, chrome-trace, and forensics JSON.
  auto run = [] {
    RlnHarness h(obs_config(/*sample_every=*/1));
    h.register_all();
    h.run_ms(5'000);
    EXPECT_EQ(h.node(0).try_publish(to_bytes("deterministic tree")),
              WakuRlnRelayNode::PublishStatus::kOk);
    h.run_ms(10'000);
    obs::PropagationAssembler a;
    for (std::size_t i = 0; i < h.size(); ++i) {
      a.ingest(h.node(i).node_id(), h.node(i).trace_dump());
      a.ingest_flight(h.node(i).node_id(),
                      h.node(i).flight_recorder().events());
    }
    a.set_default_subscribers(h.size());
    return a.summary_json() + a.chrome_trace_json() + a.forensics_json();
  };
  EXPECT_EQ(run(), run());
}

// -- Flight recorder + operator loop (node wiring) ---------------------------

std::string fresh_obs_dir(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "waku_obs_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Harness tuned so a driver- or operator-run cutover completes quickly:
/// the load budget sits well under the ~0.2 msg/s a one-publish-per-epoch
/// workload realizes, so recommend() trips deterministically.
HarnessConfig operator_config() {
  HarnessConfig cfg = obs_config(/*sample_every=*/0);
  cfg.node.operator_loop.enabled = true;
  cfg.node.operator_loop.trip_epochs = 2;
  cfg.node.operator_loop.phase_dwell_epochs = 1;
  cfg.node.operator_loop.cooldown_epochs = 1'000;  // one action per run
  cfg.node.load_tracker.overload_msgs_per_sec = 0.05;
  return cfg;
}

TEST(NodeFlightRecorder, CutoverLeavesContinuousEventTrail) {
  RlnHarness h(obs_config(/*sample_every=*/0));
  h.register_all();
  h.run_ms(5'000);

  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(h.node(i).begin_reshard(2, {}));
  }
  h.run_ms(5'000);
  for (int step = 0; step < 3; ++step) {
    for (std::size_t i = 0; i < h.size(); ++i) {
      ASSERT_TRUE(h.node(i).advance_reshard());
    }
    h.run_ms(5'000);
  }
  // Past linger (max_epoch_gap + 1 epochs) the coordinator folds back.
  h.run_ms(25'000);
  EXPECT_EQ(h.node(0).shard_map().num_shards(), 2u);

  // Every phase of the lifecycle shows up in the ring, in order.
  std::vector<std::string> reshard_details;
  for (const obs::FlightEvent& ev : h.node(2).flight_recorder().events()) {
    if (ev.kind == "reshard") reshard_details.push_back(ev.detail);
  }
  ASSERT_EQ(reshard_details.size(), 5u);
  EXPECT_EQ(reshard_details[0], "phase=announce target=2");
  EXPECT_EQ(reshard_details[1], "phase=overlap");
  EXPECT_EQ(reshard_details[2], "phase=drain");
  EXPECT_EQ(reshard_details[3], "phase=stable");
  EXPECT_EQ(reshard_details[4], "linger_end");

  // Ring accounting stays coherent and the families render.
  const obs::FlightRecorder& rec = h.node(2).flight_recorder();
  EXPECT_EQ(rec.recorded(), rec.events().size() + rec.evicted());
  const std::string text = h.node(2).metrics_text();
  EXPECT_NE(text.find("waku_flight_events_total"), std::string::npos);
  EXPECT_NE(text.find("waku_operator_decisions_total 0"), std::string::npos);
  EXPECT_NE(text.find("waku_anomaly_fired_total"), std::string::npos);
  const std::string json = h.node(2).metrics_json();
  EXPECT_NE(json.find("\"operator\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet\""), std::string::npos);
}

TEST(NodeFlightRecorder, OperatorDecisionsSurviveKillRestart) {
  namespace fs = std::filesystem;
  const std::string dir = fresh_obs_dir("operator_restart");
  HarnessConfig cfg = operator_config();
  cfg.persist_dir = dir;
  // WAL-only durability: no automatic snapshots, so every operator
  // decision must come back through kOperatorDecision replay.
  cfg.node.persist.snapshot_every_records = 0;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(5'000);

  // One publish per epoch keeps the hot shard over the tuned budget;
  // the operator loop begins and walks the cutover on its own.
  for (int e = 0; e < 14; ++e) {
    (void)h.node(static_cast<std::size_t>(e) % h.size())
        .try_publish(to_bytes("load " + std::to_string(e)));
    h.run_ms(5'000);
  }
  const std::uint64_t decisions = h.node(1).operator_decisions();
  ASSERT_GE(decisions, 4u);  // begin + 3 advances, at least
  ASSERT_EQ(h.node(1).reshard_phase(), shard::ReshardPhase::kStable);
  const std::uint16_t shards_after = h.node(1).shard_map().num_shards();
  ASSERT_GT(shards_after, 1u);

  h.kill_node(1);
  h.restart_node(1);

  // Bookkeeping replayed exactly: same decision count, same layout.
  EXPECT_EQ(h.node(1).operator_decisions(), decisions);
  EXPECT_EQ(h.node(1).shard_map().num_shards(), shards_after);
  EXPECT_EQ(h.node(1).reshard_phase(), shard::ReshardPhase::kStable);

  // The fresh ring was re-seeded from the WAL and stamped with the boot.
  bool saw_restart = false;
  bool saw_replayed_decision = false;
  for (const obs::FlightEvent& ev : h.node(1).flight_recorder().events()) {
    if (ev.kind == "restart") saw_restart = true;
    if (ev.kind == "operator" &&
        ev.detail.find("(wal replay)") != std::string::npos) {
      saw_replayed_decision = true;
    }
  }
  EXPECT_TRUE(saw_restart);
  EXPECT_TRUE(saw_replayed_decision);

  // The crash-restart postmortem was rendered and persisted.
  EXPECT_NE(h.node(1).last_postmortem().find("\"reason\":\"crash-restart\""),
            std::string::npos);
  EXPECT_NE(h.node(1).last_postmortem().find("\"kind\":\"operator\""),
            std::string::npos);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "node1" / "postmortem.json"));

  // Cooldown came back with the snapshot-free replay: more quiet epochs
  // must not re-trigger a begin.
  h.run_ms(20'000);
  EXPECT_EQ(h.node(1).operator_decisions(), decisions);
}

TEST(NodeFlightRecorder, OperatorAndRecorderRunsStayDeterministic) {
  // The whole observe -> decide -> act loop rides the virtual clock, so
  // two identical runs must agree byte-for-byte on exposition AND on the
  // flight ring — the property that makes postmortems trustworthy.
  auto run = [] {
    RlnHarness h(operator_config());
    h.register_all();
    h.run_ms(5'000);
    for (int e = 0; e < 12; ++e) {
      (void)h.node(static_cast<std::size_t>(e) % h.size())
          .try_publish(to_bytes("det " + std::to_string(e)));
      h.run_ms(5'000);
    }
    EXPECT_GE(h.node(2).operator_decisions(), 4u);
    std::string out = h.node(2).metrics_text() + h.node(2).metrics_json();
    out += h.node(2).flight_recorder().postmortem_json("determinism-check");
    return out;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace waku::rln
