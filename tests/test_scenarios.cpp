// Containment invariants for the adversarial scenario engine (src/sim):
// across RNG seeds, a rate-limit flooder is slashed within a few epochs
// while honest delivery stays >= 99%, a boundary straddler is never
// slashed, a split-equivocator cannot hide conflicting shares from the
// relay overlap, a deposit churner's spam stays quota-bound, an eclipse
// victim detects a stale bootstrap checkpoint, and instrumentation
// survives a node kill/restart (the harness re-attaches hooks).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "sim/scenario.hpp"

namespace waku::sim {
namespace {

constexpr std::uint64_t kSeeds[] = {11, 42, 1337};

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "waku_scenario_tests" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

rln::HarnessConfig small_deployment(std::uint64_t seed) {
  rln::HarnessConfig cfg;
  cfg.num_nodes = 10;
  cfg.degree = 3;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 10'000;
  cfg.node.validator.max_epoch_gap = 2;
  cfg.seed = seed;
  return cfg;
}

TEST(Scenarios, FlooderSlashedAndContainedAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ScenarioConfig cfg;
    cfg.name = "flooder";
    cfg.harness = small_deployment(seed);
    RateLimitFlooder flooder(/*slot=*/0, /*burst_per_epoch=*/4);
    Scenario scenario(cfg);
    scenario.add_phase({"warmup", 6'000, true, {}})
        .add_phase({"attack", 25'000, true, {&flooder}})
        .add_phase({"recovery", 10'000, true, {}});
    const Report report = scenario.run();
    const ScenarioVerdict& v = report.verdict;

    // The economic claim: the flooder is slashed, fast.
    EXPECT_GE(v.adversary_slashes, 1u);
    ASSERT_TRUE(v.time_to_slash_epochs.has_value());
    EXPECT_LE(*v.time_to_slash_epochs, 3u);
    // Spam above the 1-per-epoch quota dies at the first hop: deliveries
    // can never exceed one message per epoch spanned by the attack.
    EXPECT_GT(v.spam_sent, 0u);
    EXPECT_LE(v.spam_containment_ratio, 0.6);
    // Honest traffic is unaffected; nobody honest is slashed.
    EXPECT_GE(v.honest_delivery_ratio, 0.99);
    EXPECT_EQ(v.honest_slashes, 0u);
    // The pipeline actually saw the double-signals.
    EXPECT_GE(scenario.metrics().gauge("pipeline.spam_detected").value(),
              1.0);
  }
}

TEST(Scenarios, CoalitionReportsPerAdversaryVerdicts) {
  // Two strategies attack concurrently in ONE campaign: a rate-limit
  // flooder (slashable — valid proofs, double signals) and a stale-root
  // replayer (unslashable — its bundles die in the O(1) root stage and
  // carry no slashing material). The campaign JSON must attribute slashes
  // per adversary instead of lumping them.
  ScenarioConfig cfg;
  cfg.name = "coalition";
  cfg.harness = small_deployment(42);
  RateLimitFlooder flooder(/*slot=*/0, /*burst_per_epoch=*/4);
  StaleRootReplayer replayer(/*slot=*/1, /*per_tick=*/3);
  Scenario scenario(cfg);
  scenario.add_phase({"warmup", 6'000, true, {}})
      .add_phase({"attack", 25'000, true, {&flooder, &replayer}})
      .add_phase({"recovery", 10'000, true, {}});
  const Report report = scenario.run();
  const ScenarioVerdict& v = report.verdict;

  ASSERT_EQ(v.per_adversary.size(), 2u);
  const AdversaryVerdict* flooder_v = nullptr;
  const AdversaryVerdict* replayer_v = nullptr;
  for (const AdversaryVerdict& av : v.per_adversary) {
    if (av.name == "flooder") flooder_v = &av;
    if (av.name == "stale-root") replayer_v = &av;
  }
  ASSERT_NE(flooder_v, nullptr);
  ASSERT_NE(replayer_v, nullptr);

  // The flooder is slashed; the replayer never is (nothing to recover).
  EXPECT_GE(flooder_v->slashes, 1u);
  ASSERT_TRUE(flooder_v->time_to_slash_ms.has_value());
  EXPECT_EQ(replayer_v->slashes, 0u);
  EXPECT_FALSE(replayer_v->time_to_slash_ms.has_value());
  EXPECT_GT(flooder_v->spam_sent, 0u);
  EXPECT_GT(replayer_v->spam_sent, 0u);
  // The replayer's traffic died in the cheap root stage network-wide.
  EXPECT_GE(scenario.metrics().gauge("pipeline.stale_root").value(), 1.0);
  // Honest service level held against the combined attack.
  EXPECT_GE(v.honest_delivery_ratio, 0.99);
  EXPECT_EQ(v.honest_slashes, 0u);
  // And the breakdown survives the JSON export.
  EXPECT_NE(v.to_json().find("\"per_adversary\": [{\"name\": "),
            std::string::npos);
}

TEST(Scenarios, EpochBoundaryStraddlerIsLegalTraffic) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ScenarioConfig cfg;
    cfg.name = "straddler";
    cfg.harness = small_deployment(seed);
    EpochBoundaryStraddler straddler(/*slot=*/0);
    Scenario scenario(cfg);
    scenario.add_phase({"warmup", 6'000, true, {}})
        .add_phase({"attack", 40'000, true, {&straddler}})
        .add_phase({"recovery", 8'000, true, {}});
    const Report report = scenario.run();
    const ScenarioVerdict& v = report.verdict;

    // One message per epoch, however boundary-adjacent, is within quota:
    // it must be delivered like honest traffic and never slashed.
    EXPECT_GT(v.spam_sent, 1u);
    EXPECT_EQ(v.slashes, 0u);
    EXPECT_GE(v.spam_containment_ratio, 0.9);  // "contained" = delivered
    EXPECT_GE(v.honest_delivery_ratio, 0.99);
    EXPECT_EQ(v.honest_false_positive_rate, 0.0);
  }
}

TEST(Scenarios, SplitEquivocatorReunitedAndSlashed) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ScenarioConfig cfg;
    cfg.name = "split-equivocator";
    cfg.harness = small_deployment(seed);
    SplitEquivocator equivocator(/*slot=*/0);
    Scenario scenario(cfg);
    scenario.add_phase({"warmup", 6'000, true, {}})
        .add_phase({"attack", 25'000, true, {&equivocator}})
        .add_phase({"recovery", 10'000, true, {}});
    const Report report = scenario.run();
    const ScenarioVerdict& v = report.verdict;

    // No first-hop peer saw both shares, but relay propagation reunites
    // them at interior peers: the equivocator is still slashed.
    EXPECT_GT(v.spam_sent, 0u);
    EXPECT_GE(v.adversary_slashes, 1u);
    EXPECT_GE(v.honest_delivery_ratio, 0.99);
    EXPECT_EQ(v.honest_slashes, 0u);
  }
}

TEST(Scenarios, DepositChurnerSpamStaysQuotaBound) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ScenarioConfig cfg;
    cfg.name = "churner";
    cfg.harness = small_deployment(seed);
    cfg.harness.num_nodes = 11;  // two churn slots + 9 honest
    DepositChurner churner({0, 1}, /*burst=*/3);
    Scenario scenario(cfg);
    scenario.add_phase({"warmup", 6'000, true, {}})
        .add_phase({"attack", 30'000, true, {&churner}})
        .add_phase({"recovery", 10'000, true, {}});
    const Report report = scenario.run();
    const ScenarioVerdict& v = report.verdict;

    // The §IV-B open problem: early withdrawal can dodge the slash — but
    // the *spam* still dies at the quota. Both churned memberships end
    // spent (withdrawn or slashed), and honest traffic is untouched.
    EXPECT_EQ(churner.withdraw_attempts(), 2u);
    EXPECT_GE(v.withdrawals + v.adversary_slashes, 2u);
    EXPECT_FALSE(scenario.harness().node(0).is_registered());
    EXPECT_FALSE(scenario.harness().node(1).is_registered());
    EXPECT_LE(v.spam_containment_ratio, 0.6);
    EXPECT_GE(v.honest_delivery_ratio, 0.99);
    EXPECT_EQ(v.honest_slashes, 0u);
  }
}

TEST(Scenarios, EclipseVictimDetectsStaleCheckpointAcrossSeeds) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    EclipseConfig cfg;
    cfg.harness = small_deployment(seed);
    cfg.harness.num_nodes = 6;
    cfg.churn_members = 6;
    cfg.max_bootstrap_lag = 2;
    const EclipseOutcome outcome = run_eclipse_campaign(cfg);

    EXPECT_GE(outcome.stale_served, 1u);
    EXPECT_GE(outcome.stale_rejections, 1u);
    EXPECT_TRUE(outcome.victim_detected_stale);
    // Once the lossy partition heals, the honest service bootstraps it.
    EXPECT_TRUE(outcome.honest_bootstrap_after);
  }
}

TEST(Scenarios, InvalidProofFloodGraylistsThenRecovers) {
  // Router-level containment, no slashing path: garbage proofs cost the
  // sender its peer score (graylist) but never produce slashing material;
  // after the flood stops, decay restores the peer.
  rln::HarnessConfig cfg = small_deployment(7);
  rln::RlnHarness h(cfg);
  MetricsRegistry metrics;
  HarnessProbe probe(h, metrics);
  h.register_all();
  h.run_ms(5'000);

  InvalidProofFlooder flooder(/*slot=*/0, /*per_tick=*/5);
  Rng rng(0xF100D);
  AdversaryContext ctx{h, metrics, rng, 1'000};
  const net::NodeId attacker = h.node(0).node_id();
  std::size_t peak_graylisted_by = 0;
  for (int tick = 0; tick < 10; ++tick) {
    h.run_ms(1'000);
    flooder.on_tick(ctx);
    std::size_t graylisted_by = 0;
    for (std::size_t i = 1; i < h.size(); ++i) {
      if (h.node(i).relay().router().scores().graylisted(attacker)) {
        ++graylisted_by;
      }
    }
    peak_graylisted_by = std::max(peak_graylisted_by, graylisted_by);
  }
  h.run_ms(2'000);

  // Degradation: honest first-hop peers graylisted the flooder during the
  // flood, none of the garbage was delivered to an honest node, and no
  // slashing material was produced.
  EXPECT_GE(peak_graylisted_by, 1u);
  std::uint64_t spam_at_honest = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    spam_at_honest += probe.node_spam_delivered(i);
  }
  EXPECT_EQ(spam_at_honest, 0u);
  EXPECT_EQ(h.total_validation_stats().spam_detected, 0u);
  EXPECT_EQ(probe.slashes().size(), 0u);
  EXPECT_TRUE(h.node(0).is_registered());  // no slash for bad proofs

  // Recovery: with the flood stopped, score decay lifts the graylist.
  h.run_ms(60'000);
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_FALSE(h.node(i).relay().router().scores().graylisted(attacker))
        << "peer " << i << " still graylists the reformed flooder";
  }
  // And the reformed peer's valid traffic flows again.
  const std::uint64_t honest_before = probe.honest_delivered();
  ASSERT_EQ(h.node(0).try_publish(to_bytes(std::string(kHonestTag) +
                                           "reformed")),
            rln::WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(6'000);
  EXPECT_GE(probe.honest_delivered(), honest_before + h.size() - 1);
}

TEST(Scenarios, ProbeSurvivesNodeRestart) {
  // The satellite fix: RlnHarness::restart_node re-runs the node hook, so
  // a restarted node keeps feeding the metrics registry instead of
  // delivering into a void.
  rln::HarnessConfig cfg = small_deployment(23);
  cfg.num_nodes = 6;
  // Durable nodes: an ephemeral restart would come back with an empty
  // tree (no event replay) and reject everything — this test is about the
  // instrumentation hook, not bootstrap.
  cfg.persist_dir = fresh_dir("probe_restart");
  rln::RlnHarness h(cfg);
  MetricsRegistry metrics;
  HarnessProbe probe(h, metrics);
  h.register_all();
  h.run_ms(5'000);

  ASSERT_EQ(h.node(1).try_publish(to_bytes(std::string(kHonestTag) + "one")),
            rln::WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(5'000);
  const std::uint64_t before = probe.node_honest_delivered(2);
  EXPECT_GT(before, 0u);

  h.kill_node(2);
  h.run_ms(2'000);
  h.restart_node(2);
  h.run_ms(12'000);  // re-graft, next epoch

  ASSERT_EQ(h.node(3).try_publish(to_bytes(std::string(kHonestTag) + "two")),
            rln::WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(6'000);
  EXPECT_GT(probe.node_honest_delivered(2), before)
      << "restarted node's deliveries no longer reach the probe";
}

TEST(Scenarios, MetricsRegistryJsonAndSeries) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("b.level").set(1.5);
  reg.histogram("c.hist", {10, 100}).observe(5);
  reg.histogram("c.hist").observe(50);
  reg.histogram("c.hist").observe(500);
  reg.sample_epoch(1);
  reg.counter("a.count").inc();
  reg.sample_epoch(2);
  reg.sample_epoch(2);  // same-epoch resample overwrites, no duplicate

  EXPECT_EQ(reg.counter_value("a.count"), 4u);
  ASSERT_EQ(reg.series("a.count").size(), 2u);
  EXPECT_EQ(reg.series("a.count")[0].value, 3.0);
  EXPECT_EQ(reg.series("a.count")[1].value, 4.0);
  const auto& hist = reg.histogram("c.hist");
  EXPECT_EQ(hist.total(), 3u);
  ASSERT_EQ(hist.counts().size(), 3u);
  EXPECT_EQ(hist.counts()[0], 1u);
  EXPECT_EQ(hist.counts()[1], 1u);
  EXPECT_EQ(hist.counts()[2], 1u);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"a.count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"b.level\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
}

}  // namespace
}  // namespace waku::sim
