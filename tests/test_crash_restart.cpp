// Kill-and-restart suite for the durable-state subsystem wired through
// WakuRlnRelayNode: byte-identical snapshot restore, WAL-tail recovery of
// the nullifier log, event-stream resumption from the replay cursor,
// crash-safe commit-reveal slashing, and rate-limit state across restarts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "common/serde.hpp"
#include "rln/harness.hpp"

namespace waku::rln {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / "waku_crash_restart_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

HarnessConfig persisted_config(const std::string& dir) {
  HarnessConfig cfg;
  cfg.num_nodes = 4;
  cfg.degree = 2;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 30'000;
  cfg.persist_dir = dir;
  return cfg;
}

/// Registers a brand-new member (no node behind it) straight on the
/// contract — used to advance the event stream while a node is down.
void register_external_member(RlnHarness& h, std::uint64_t tag) {
  Rng rng(tag);
  const Identity member = Identity::generate(rng);
  const chain::Address account = chain::Address::from_u64(0xE0000000 + tag);
  h.chain().create_account(account, 10 * chain::kGweiPerEth);
  chain::Transaction tx;
  tx.from = account;
  tx.to = h.contract();
  tx.method = "register";
  tx.calldata = member.pk_bytes();
  tx.value = h.chain()
                 .contract_at<chain::RlnMembershipContract>(h.contract())
                 .deposit();
  h.chain().submit(std::move(tx));
}

TEST(CrashRestart, SnapshotRestoreIsByteIdentical) {
  RlnHarness h(persisted_config(fresh_dir("byte_identical")));
  h.register_all();
  h.run_ms(3'000);
  // Traffic so the restored state is non-trivial: tree, root window,
  // nullifier log, and counters all have entries.
  for (std::size_t i = 1; i < h.size(); ++i) {
    h.node(i).try_publish(to_bytes("hello from " + std::to_string(i)));
  }
  h.run_ms(5'000);  // mid-epoch (epoch is 30 s)
  ASSERT_GT(h.node(0).validator().log().entry_count(), 0u);

  h.node(0).force_snapshot();
  const Bytes pre_state = h.node(0).serialize_state();
  const Fr pre_root = h.node(0).group().root();
  const std::vector<Fr> pre_window = h.node(0).group().recent_roots();
  const Bytes pre_log = h.node(0).validator().log().serialize();
  const auto pre_log_stats = h.node(0).validator().log().stats();
  const auto pre_buckets = h.node(0).validator().log().bucket_sizes();
  const std::uint64_t pre_cursor = h.node(0).event_cursor();

  h.kill_node(0);
  h.restart_node(0);

  // No simulated time passed: the restored node must be indistinguishable
  // from the snapshotted one, byte for byte.
  EXPECT_EQ(h.node(0).serialize_state(), pre_state);
  EXPECT_EQ(h.node(0).group().root(), pre_root);
  EXPECT_EQ(h.node(0).group().recent_roots(), pre_window);
  EXPECT_EQ(h.node(0).validator().log().serialize(), pre_log);
  EXPECT_EQ(h.node(0).event_cursor(), pre_cursor);
  EXPECT_TRUE(h.node(0).is_registered());

  // The watermark/bucket introspection the restart suite relies on.
  const auto post_log_stats = h.node(0).validator().log().stats();
  EXPECT_EQ(post_log_stats.min_epoch, pre_log_stats.min_epoch);
  EXPECT_EQ(post_log_stats.entries, pre_log_stats.entries);
  EXPECT_EQ(post_log_stats.buckets, pre_log_stats.buckets);
  EXPECT_EQ(h.node(0).validator().log().bucket_sizes(), pre_buckets);
  // And the ValidatorStats mirror carries the watermark.
  EXPECT_EQ(h.node(0).validator().stats().log_min_epoch,
            post_log_stats.min_epoch);
}

TEST(CrashRestart, WalTailRestoresNullifierLogAfterSnapshot) {
  RlnHarness h(persisted_config(fresh_dir("wal_tail")));
  h.register_all();
  h.run_ms(3'000);
  h.node(1).try_publish(to_bytes("before snapshot"));
  h.run_ms(4'000);
  h.node(0).force_snapshot();

  // Post-snapshot traffic lives only in the WAL at crash time.
  h.node(2).try_publish(to_bytes("after snapshot 1"));
  h.node(3).try_publish(to_bytes("after snapshot 2"));
  h.run_ms(4'000);

  const Bytes pre_log = h.node(0).validator().log().serialize();
  const std::size_t pre_entries = h.node(0).validator().log().entry_count();
  ASSERT_GE(pre_entries, 3u);

  h.kill_node(0);
  h.restart_node(0);

  EXPECT_EQ(h.node(0).validator().log().entry_count(), pre_entries);
  EXPECT_EQ(h.node(0).validator().log().serialize(), pre_log);
}

TEST(CrashRestart, ResumesEventStreamFromCursorNotGenesis) {
  RlnHarness h(persisted_config(fresh_dir("cursor_resume")));
  h.register_all();
  h.run_ms(3'000);
  h.node(0).force_snapshot();
  const std::uint64_t cursor_at_crash = h.node(0).event_cursor();
  ASSERT_GT(cursor_at_crash, 0u);

  h.kill_node(0);

  // Membership churn while the node is down.
  register_external_member(h, 1);
  register_external_member(h, 2);
  h.run_ms(2 * h.config().block_interval_ms + 500);
  ASSERT_GT(h.chain().event_count(), cursor_at_crash);

  h.restart_node(0);

  // The restart replayed exactly the missed suffix of the event stream:
  // the cursor caught up and the tree agrees with a peer that never died.
  EXPECT_EQ(h.node(0).event_cursor(), h.chain().event_count());
  EXPECT_EQ(h.node(0).group().root(), h.node(1).group().root());
  EXPECT_EQ(h.node(0).group().member_count(),
            h.node(1).group().member_count());
  EXPECT_TRUE(h.node(0).is_registered());

  // And the revived node still participates: it can publish and the mesh
  // accepts it.
  h.run_ms(5'000);  // let heartbeats re-graft the mesh
  const std::uint64_t delivered_before = h.total_delivered();
  ASSERT_EQ(h.node(0).try_publish(to_bytes("back from the dead")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(5'000);
  EXPECT_GT(h.total_delivered(), delivered_before);
}

TEST(CrashRestart, PendingSlashSurvivesCrashBetweenCommitAndReveal) {
  // Two nodes: node 0 (persisted, honest validator) and node 1 (spammer).
  // The spammer's own publishes are not self-validated, so node 0 is the
  // only peer that can detect the double-signal and slash.
  HarnessConfig cfg;
  cfg.num_nodes = 2;
  cfg.degree = 1;
  cfg.block_interval_ms = 20'000;  // nothing mines during the spam window
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 60'000;
  cfg.persist_dir = fresh_dir("pending_slash");
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);

  const chain::Gwei spammer_deposit =
      h.chain()
          .contract_at<chain::RlnMembershipContract>(h.contract())
          .deposit();
  const chain::Gwei balance_before = h.chain().balance(h.node(0).account());

  // Double-signal within one epoch.
  h.node(1).force_publish(to_bytes("spam one"));
  h.node(1).force_publish(to_bytes("spam two"));
  h.run_ms(3'000);  // deliver + validate; commit tx submitted, block not yet

  ASSERT_EQ(h.node(0).stats().slash_commits, 1u);
  ASSERT_EQ(h.node(0).stats().slash_reveals, 0u);
  ASSERT_EQ(h.node(0).pending_slash_count(), 1u);

  // Crash before the commit is even mined — the (sk, salt) pair now exists
  // only in node 0's WAL.
  h.kill_node(0);
  h.run_ms(2 * cfg.block_interval_ms);  // SlashCommitted mines while down

  h.restart_node(0);
  // Restart replays the WAL (pending slash) and then the event stream from
  // the cursor; the SlashCommitted event meets the journaled pending entry
  // and the reveal goes out.
  h.run_ms(3 * cfg.block_interval_ms);

  EXPECT_EQ(h.node(0).stats().slash_reveals, 1u);
  EXPECT_EQ(h.node(0).stats().slash_rewards, 1u);
  EXPECT_EQ(h.node(0).pending_slash_count(), 0u);
  // The spammer's membership is gone and the stake moved to the slasher
  // (minus gas).
  EXPECT_EQ(h.node(0).group().removed_count(), 1u);
  EXPECT_FALSE(h.node(1).is_registered());
  EXPECT_GT(h.chain().balance(h.node(0).account()) + spammer_deposit / 2,
            balance_before);
}

TEST(CrashRestart, OwnRateLimitSurvivesRestartWithoutSnapshot) {
  // No snapshot is ever taken: restore runs purely off the WAL plus a
  // cold event replay from genesis — the same-epoch republish must still
  // be refused, or the node would double-signal against itself.
  HarnessConfig cfg = persisted_config(fresh_dir("rate_limit"));
  cfg.node.validator.epoch.epoch_length_ms = 120'000;  // one long epoch
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(2'000);

  ASSERT_EQ(h.node(1).try_publish(to_bytes("once")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(2'000);

  h.kill_node(1);
  h.restart_node(1);

  EXPECT_TRUE(h.node(1).is_registered());  // rebuilt by cold event replay
  EXPECT_EQ(h.node(1).try_publish(to_bytes("twice, same epoch")),
            WakuRlnRelayNode::PublishStatus::kRateLimited);
}

TEST(CrashRestart, KeystoreSealedSnapshotRestoresSameIdentity) {
  HarnessConfig cfg = persisted_config(fresh_dir("keystore_sealed"));
  cfg.node.keystore_password = "hunter2";
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);
  const Fr sk_before = h.node(0).identity().sk;
  h.node(0).force_snapshot();

  // The sealed blob never carries the sk in the clear.
  const Bytes snapshot = h.node(0).serialize_state();
  const Bytes sk_bytes = sk_before.to_bytes_be();
  const auto found = std::search(snapshot.begin(), snapshot.end(),
                                 sk_bytes.begin(), sk_bytes.end());
  EXPECT_EQ(found, snapshot.end());

  h.kill_node(0);
  h.restart_node(0);
  EXPECT_EQ(h.node(0).identity().sk, sk_before);
  EXPECT_TRUE(h.node(0).is_registered());
}

TEST(CrashRestart, KeystoreSealedSnapshotFailsClosedOnWrongPassword) {
  const std::string dir = fresh_dir("keystore_fail_closed");
  HarnessConfig cfg = persisted_config(dir);
  cfg.node.keystore_password = "correct horse";
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);
  h.node(0).force_snapshot();
  h.kill_node(0);

  // A restart with the wrong password must refuse to construct — booting
  // with a fresh identity would silently fork the membership.
  NodeConfig wrong = cfg.node;
  wrong.account = h.node(1).account();  // any funded account
  wrong.persist_dir = dir + "/node0";
  wrong.keystore_password = "wrong trombone";
  EXPECT_THROW(
      {
        WakuRlnRelayNode doomed(h.network(), h.chain(), h.contract(), wrong,
                                /*seed=*/999);
      },
      std::runtime_error);

  // The right password still restores.
  h.restart_node(0);
  EXPECT_TRUE(h.node(0).is_registered());
}

TEST(CrashRestart, WithdrawnMemberPurgesPendingSlash) {
  // The in-flight set must not leak: a pending slash against an index
  // that withdraws before the reveal lands is purged (and journaled as
  // resolved) so the slot is not blocked forever.
  HarnessConfig cfg;
  cfg.num_nodes = 2;
  cfg.degree = 1;
  cfg.block_interval_ms = 20'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 60'000;
  cfg.persist_dir = fresh_dir("withdraw_purge");
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);

  h.node(1).force_publish(to_bytes("spam a"));
  h.node(1).force_publish(to_bytes("spam b"));
  h.run_ms(3'000);
  ASSERT_EQ(h.node(0).pending_slash_count(), 1u);

  // The spammer front-runs the reveal with a withdraw: same member, exits
  // with the deposit. The contract removes the leaf; the reveal that
  // follows reverts on-chain.
  {
    ByteWriter w;
    w.write_raw(h.node(1).identity().sk.to_bytes_be());
    w.write_u64(*h.node(1).group().own_index());
    w.write_raw(merkle::serialize_path(
        h.node(0).group().path_of(*h.node(1).group().own_index())));
    chain::Transaction tx;
    tx.from = h.node(1).account();
    tx.to = h.contract();
    tx.method = "withdraw";
    tx.calldata = std::move(w).take();
    tx.gas_price = 100;  // outbid the reveal: classic front-run
    h.chain().submit(std::move(tx));
  }
  h.run_ms(3 * cfg.block_interval_ms);

  // MemberWithdrawn resolved the pending slash; nothing stays in flight.
  EXPECT_EQ(h.node(0).pending_slash_count(), 0u);
  EXPECT_EQ(h.node(0).stats().slash_rewards, 0u);
  EXPECT_FALSE(h.node(1).is_registered());
}

TEST(CrashRestart, StalePendingSlashExpiresAfterConfiguredEpochs) {
  // A commit whose SlashCommitted/reveal chain never completes (here: the
  // spammer withdraws in the same block, and we drop the withdraw-purge by
  // crashing node 0 in between... simpler: mine nothing at all) must be
  // dropped by the epoch-based expiry so the index can be re-slashed.
  HarnessConfig cfg;
  cfg.num_nodes = 2;
  cfg.degree = 1;
  // Blocks far apart: the commit tx never mines inside the test window,
  // so no SlashCommitted event ever arrives.
  cfg.block_interval_ms = 10'000'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 5'000;
  cfg.node.slash_expiry_epochs = 3;
  cfg.persist_dir = fresh_dir("slash_expiry");
  RlnHarness h(cfg);

  // Manual registration mining (block interval is huge).
  h.node(0).register_membership();
  h.node(1).register_membership();
  h.chain().mine_block(h.sim().now() + 1);
  h.run_ms(2'000);
  ASSERT_TRUE(h.node(0).is_registered());
  ASSERT_TRUE(h.node(1).is_registered());

  h.node(1).force_publish(to_bytes("spam x"));
  h.node(1).force_publish(to_bytes("spam y"));
  h.run_ms(3'000);
  ASSERT_EQ(h.node(0).pending_slash_count(), 1u);

  // 3-epoch expiry at 5 s epochs: well past it, the upkeep tick purges.
  h.run_ms(6 * cfg.node.validator.epoch.epoch_length_ms);
  EXPECT_EQ(h.node(0).pending_slash_count(), 0u);
  EXPECT_EQ(h.node(0).stats().slashes_expired, 1u);

  // Expiry survives a restart too (it was journaled as resolved).
  h.kill_node(0);
  h.restart_node(0);
  EXPECT_EQ(h.node(0).pending_slash_count(), 0u);
}

TEST(CrashRestart, MidReshardCrashResumesEachPhase) {
  // Kill/restart in every cutover phase (announce, overlap, drain, and
  // the post-drop-old linger): the node must resume the exact journaled
  // phase with no nullifier or quota state lost or doubled.
  HarnessConfig cfg = persisted_config(fresh_dir("mid_reshard"));
  cfg.node.shards.num_shards = 2;
  cfg.node.gossip.validation_batch_max = 4;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);
  const shard::ShardMap old_map = h.node(0).shard_map();
  const std::string topic = shard::content_topic_for_shard(old_map, 0);

  // -- Announce, then crash.
  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(h.node(i).begin_reshard(4));
  }
  h.kill_node(0);
  h.restart_node(0);
  EXPECT_EQ(h.node(0).reshard_phase(), shard::ReshardPhase::kAnnounce);
  EXPECT_EQ(h.node(0).next_validator(), nullptr);

  // -- Overlap with live traffic, then crash mid-window.
  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  h.run_ms(3'000);  // heartbeats: dual meshes form
  ASSERT_EQ(h.node(1).try_publish(to_bytes("overlap traffic"), topic),
            WakuRlnRelayNode::PublishStatus::kOk);
  ASSERT_EQ(h.node(0).try_publish(to_bytes("own overlap publish"), topic),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(3'000);  // deliver + validate: domain logs fill, WAL journals
  const std::size_t domain_entries = h.node(0).reshard().domain_entries();
  ASSERT_GT(domain_entries, 0u);
  h.node(0).force_snapshot();
  const Bytes pre_state = h.node(0).serialize_state();

  h.kill_node(0);
  h.restart_node(0);
  EXPECT_EQ(h.node(0).reshard_phase(), shard::ReshardPhase::kOverlap);
  ASSERT_NE(h.node(0).next_validator(), nullptr);
  // Nothing lost: the domain log (shared cutover quota) and the full
  // node state survived byte-for-byte.
  EXPECT_EQ(h.node(0).reshard().domain_entries(), domain_entries);
  EXPECT_EQ(h.node(0).serialize_state(), pre_state);
  // Nothing doubled: the node's own same-epoch republish is still
  // refused — forgetting it published would make it double-signal
  // against itself.
  EXPECT_EQ(h.node(0).try_publish(to_bytes("same epoch again"), topic),
            WakuRlnRelayNode::PublishStatus::kRateLimited);

  // -- Drain, then crash.
  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  h.kill_node(0);
  h.restart_node(0);
  EXPECT_EQ(h.node(0).reshard_phase(), shard::ReshardPhase::kDrain);
  ASSERT_NE(h.node(0).next_validator(), nullptr);
  EXPECT_EQ(h.node(0).reshard().domain_entries(), domain_entries);

  // -- Drop-old, then crash during the linger window.
  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  h.kill_node(0);
  h.restart_node(0);
  EXPECT_EQ(h.node(0).reshard_phase(), shard::ReshardPhase::kStable);
  EXPECT_EQ(h.node(0).shard_map().num_shards(), 4);
  EXPECT_EQ(h.node(0).shard_map().generation(), old_map.generation() + 1);
  EXPECT_EQ(h.node(0).next_validator(), nullptr);
  // The domain linger survived: straggler old-generation traffic still
  // debits the shared cutover quota after the restart.
  EXPECT_TRUE(h.node(0).reshard().lingering());
  EXPECT_EQ(h.node(0).reshard().domain_entries(), domain_entries);
  // The conservative drop-old quota merge survived too.
  EXPECT_EQ(h.node(0).try_publish(to_bytes("post drop-old"), topic),
            WakuRlnRelayNode::PublishStatus::kRateLimited);

  // -- The revived node still participates on the new layout.
  h.run_ms(cfg.node.validator.epoch.epoch_length_ms);
  const std::uint64_t delivered_before = h.total_delivered();
  ASSERT_EQ(h.node(0).try_publish(to_bytes("fresh epoch, new layout"), topic),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(5'000);
  EXPECT_GT(h.total_delivered(), delivered_before);
}

TEST(CrashRestart, SecondCutoverReplaysAfterJournaledLingerEnd) {
  // Two back-to-back reshards with NO snapshot in between: the WAL holds
  // cutover #1 end-to-end, the journaled linger-end record, and cutover
  // #2 up to overlap. Replay must land cutover #2's records on a
  // coordinator whose first linger already ended — without the journaled
  // expiry, the second announce would be silently refused and the
  // overlap record would abort the restart.
  HarnessConfig cfg = persisted_config(fresh_dir("second_cutover"));
  cfg.node.shards.num_shards = 2;
  cfg.node.validator.epoch.epoch_length_ms = 10'000;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(2'000);

  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(h.node(i).begin_reshard(4));
  }
  for (int step = 0; step < 3; ++step) {
    for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  }
  ASSERT_TRUE(h.node(0).reshard().lingering());
  // Thr+1 epochs pass; the upkeep tick journals the linger end.
  h.run_ms(5 * cfg.node.validator.epoch.epoch_length_ms);
  ASSERT_FALSE(h.node(0).reshard().lingering());

  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(h.node(i).begin_reshard(8));
    ASSERT_TRUE(h.node(i).advance_reshard());  // overlap
  }
  ASSERT_EQ(h.node(0).reshard_phase(), shard::ReshardPhase::kOverlap);

  h.kill_node(0);
  h.restart_node(0);
  EXPECT_EQ(h.node(0).reshard_phase(), shard::ReshardPhase::kOverlap);
  ASSERT_NE(h.node(0).next_validator(), nullptr);
  EXPECT_EQ(h.node(0).next_validator()->map().num_shards(), 8);
  EXPECT_EQ(h.node(0).shard_map().num_shards(), 4);
}

TEST(CrashRestart, CutoverObservationSurvivesCrashWithoutSnapshot) {
  // No snapshot at all: the domain log must rebuild purely from the WAL
  // (kReshardPhase re-seeds it, kCutoverObservation records replay the
  // overlap-era entries), so a double-signal straddling the crash is
  // still caught.
  HarnessConfig cfg = persisted_config(fresh_dir("cutover_wal_only"));
  cfg.num_nodes = 2;
  cfg.degree = 1;
  cfg.node.shards.num_shards = 2;
  // One long epoch: both halves of the pair must share a nullifier.
  cfg.node.validator.epoch.epoch_length_ms = 120'000;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);
  const std::string topic =
      shard::content_topic_for_shard(h.node(0).shard_map(), 0);

  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(h.node(i).begin_reshard(4));
    h.node(i).advance_reshard();  // overlap
  }
  h.run_ms(3'000);

  // First half of a cross-generation pair lands before the crash...
  h.node(1).force_publish_generation(to_bytes("half one"), topic, false);
  h.run_ms(2'000);
  ASSERT_GT(h.node(0).reshard().domain_entries(), 0u);

  h.kill_node(0);
  h.restart_node(0);
  h.run_ms(3'000);  // re-mesh

  // ...the second half (same epoch, other generation) arrives after: the
  // rebuilt domain log must fold them into one signal and slash.
  ASSERT_EQ(h.node(1).force_publish_generation(to_bytes("half two"), topic,
                                               true),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(3 * cfg.block_interval_ms);
  EXPECT_EQ(h.node(0).stats().slash_commits, 1u);
  EXPECT_FALSE(h.node(1).is_registered());
}

}  // namespace
}  // namespace waku::rln
