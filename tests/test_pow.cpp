// Tests for the Whisper-style PoW baseline: mining, verification, and the
// exponential cost asymmetry the paper critiques.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/expect.hpp"
#include "pow/pow.hpp"

namespace waku::pow {
namespace {

TEST(Pow, MinedNonceVerifies) {
  const Bytes payload = to_bytes("whisper envelope");
  const auto solution = mine(payload, 8);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(verify(payload, solution->nonce, 8));
}

TEST(Pow, HigherDifficultyStillSatisfiesLower) {
  const Bytes payload = to_bytes("msg");
  const auto solution = mine(payload, 12);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(verify(payload, solution->nonce, 8));
  EXPECT_TRUE(verify(payload, solution->nonce, 0));
}

TEST(Pow, WrongNonceFails) {
  const Bytes payload = to_bytes("msg");
  const auto solution = mine(payload, 12);
  ASSERT_TRUE(solution.has_value());
  EXPECT_FALSE(verify(payload, solution->nonce + 1, 12) &&
               verify(payload, solution->nonce + 2, 12) &&
               verify(payload, solution->nonce + 3, 12));
}

TEST(Pow, DifferentPayloadInvalidatesNonce) {
  const Bytes payload = to_bytes("original");
  const auto solution = mine(payload, 10);
  ASSERT_TRUE(solution.has_value());
  // A tampered payload almost surely breaks the work.
  int valid = 0;
  for (int i = 0; i < 5; ++i) {
    Bytes tampered = payload;
    tampered[0] = static_cast<std::uint8_t>('a' + i);
    valid += verify(tampered, solution->nonce, 10) ? 1 : 0;
  }
  EXPECT_LE(valid, 1);
}

TEST(Pow, ZeroDifficultyIsFree) {
  const auto solution = mine(to_bytes("free"), 0);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->attempts, 1u);
}

TEST(Pow, MaxAttemptsBoundsSearch) {
  // Difficulty 48 is unreachable in 100 attempts with overwhelming odds.
  const auto solution = mine(to_bytes("hard"), 48, 0, 100);
  EXPECT_FALSE(solution.has_value());
}

TEST(Pow, RejectsInvalidDifficulty) {
  EXPECT_THROW(mine(to_bytes("x"), -1), ContractViolation);
  EXPECT_THROW(mine(to_bytes("x"), 65), ContractViolation);
}

TEST(Pow, CostGrowsExponentially) {
  // Average attempts over several payloads should roughly double per bit.
  // (The core economics of PoW spam protection — and its cost to honest
  // low-power publishers.)
  auto average_attempts = [](int bits) {
    std::uint64_t total = 0;
    for (int i = 0; i < 24; ++i) {
      const Bytes payload = to_bytes("payload" + std::to_string(i));
      const auto solution = mine(payload, bits);
      total += solution->attempts;
    }
    return static_cast<double>(total) / 24.0;
  };
  const double a8 = average_attempts(8);
  const double a12 = average_attempts(12);
  EXPECT_GT(a12, a8 * 4);  // expect ~16x, allow wide variance
  EXPECT_NEAR(expected_attempts(12) / expected_attempts(8), 16.0, 1e-9);
}

TEST(Pow, AttemptsMatchExpectationOrderOfMagnitude) {
  std::uint64_t total = 0;
  constexpr int kBits = 10;
  constexpr int kRuns = 32;
  for (int i = 0; i < kRuns; ++i) {
    const Bytes payload = to_bytes("sample" + std::to_string(i));
    total += mine(payload, kBits)->attempts;
  }
  const double avg = static_cast<double>(total) / kRuns;
  EXPECT_GT(avg, expected_attempts(kBits) / 4);
  EXPECT_LT(avg, expected_attempts(kBits) * 4);
}

}  // namespace
}  // namespace waku::pow
