// Property tests over the chain simulator: conservation of value and gas
// accounting invariants under randomized transaction workloads.
#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "chain/rln_contract.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"

namespace waku::chain {
namespace {

using ff::Fr;

constexpr Gwei kDeposit = 1'000'000;

// Total gwei held by accounts+contracts plus fees burned must equal the
// initially minted supply, whatever mix of transactions executes.
class ConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationTest, ValueIsConserved) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  Blockchain chain;
  const Address contract =
      chain.deploy(std::make_unique<RlnMembershipContract>(kDeposit));

  constexpr std::size_t kUsers = 6;
  constexpr Gwei kInitial = 10 * kGweiPerEth;
  std::vector<Address> users;
  for (std::size_t i = 0; i < kUsers; ++i) {
    users.push_back(Address::from_u64(0xA0000 + i));
    chain.create_account(users.back(), kInitial);
  }
  const Gwei minted = kUsers * kInitial;

  // Track members we know the secret of, to drive slashes/withdrawals.
  struct Member {
    Fr sk;
    std::uint64_t index;
  };
  std::vector<Member> members;
  Gwei fees_burned = 0;
  std::uint64_t next_sk = 1;

  for (int block = 0; block < 20; ++block) {
    const std::size_t txs = 1 + rng.next_below(4);
    std::vector<std::uint64_t> handles;
    for (std::size_t t = 0; t < txs; ++t) {
      const Address from = users[rng.next_below(kUsers)];
      const double dice = rng.next_double();
      Transaction tx;
      tx.from = from;
      tx.to = contract;
      if (dice < 0.5 || members.empty()) {
        const Fr sk = Fr::from_u64(1000 + next_sk++);
        tx.method = "register";
        tx.calldata = hash::poseidon1(sk).to_bytes_be();
        tx.value = rng.chance(0.8) ? kDeposit : kDeposit / 2;  // some revert
        if (tx.value == kDeposit) {
          members.push_back(Member{sk, 0});  // index fixed up below
        }
      } else if (dice < 0.75) {
        const std::size_t victim = rng.next_below(members.size());
        ByteWriter w;
        w.write_raw(members[victim].sk.to_bytes_be());
        w.write_u64(members[victim].index);
        tx.method = "slash_direct";
        tx.calldata = std::move(w).take();
        members.erase(members.begin() +
                      static_cast<std::ptrdiff_t>(victim));
      } else {
        const std::size_t quitter = rng.next_below(members.size());
        ByteWriter w;
        w.write_raw(members[quitter].sk.to_bytes_be());
        w.write_u64(members[quitter].index);
        tx.method = "withdraw";
        tx.calldata = std::move(w).take();
        members.erase(members.begin() +
                      static_cast<std::ptrdiff_t>(quitter));
      }
      handles.push_back(chain.submit(std::move(tx)));
    }
    const Block& mined =
        chain.mine_block(static_cast<std::uint64_t>(block + 1) * 12'000);

    for (const TxReceipt& r : mined.receipts) {
      fees_burned += r.fee_paid;
      // Learn assigned indices from events.
      for (const Event& ev : r.events) {
        if (ev.name == "MemberRegistered") {
          const ff::U256 pk = ev.topics[1];
          for (Member& m : members) {
            if (hash::poseidon1(m.sk).to_u256() == pk) {
              m.index = ev.topics[0].limb[0];
            }
          }
        }
      }
    }
    // Members whose registration reverted must be dropped. Simplest: keep
    // only members whose pk is actually in the contract.
    std::erase_if(members, [&](const Member& m) {
      auto& c = chain.contract_at<RlnMembershipContract>(contract);
      for (std::uint64_t i = 0; i < c.member_count_view(); ++i) {
        if (c.member_at_view(i) == hash::poseidon1(m.sk).to_u256()) {
          return false;
        }
      }
      return true;
    });

    // The conservation invariant, checked after every block.
    Gwei held = chain.balance(contract);
    for (const Address& u : users) held += chain.balance(u);
    ASSERT_EQ(held + fees_burned, minted)
        << "seed " << seed << " block " << block;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest,
                         ::testing::Values(1u, 7u, 42u, 1337u, 0xC0FFEEu));

TEST(GasInvariants, FeeEqualsGasTimesPrice) {
  Blockchain chain;
  const Address contract =
      chain.deploy(std::make_unique<RlnMembershipContract>(kDeposit));
  const Address user = Address::from_u64(0x99);
  chain.create_account(user, 10 * kGweiPerEth);

  Transaction tx;
  tx.from = user;
  tx.to = contract;
  tx.method = "register";
  tx.calldata = hash::poseidon1(Fr::one()).to_bytes_be();
  tx.value = kDeposit;
  tx.gas_price = 73;
  const auto h = chain.submit(std::move(tx));
  chain.mine_block(1000);
  const TxReceipt r = *chain.receipt(h);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.fee_paid, r.gas_used * 73);
}

TEST(GasInvariants, RevertedTxStillConservesValue) {
  Blockchain chain;
  const Address contract =
      chain.deploy(std::make_unique<RlnMembershipContract>(kDeposit));
  const Address user = Address::from_u64(0x98);
  chain.create_account(user, 10 * kGweiPerEth);

  Transaction tx;
  tx.from = user;
  tx.to = contract;
  tx.method = "register";
  tx.calldata = hash::poseidon1(Fr::one()).to_bytes_be();
  tx.value = kDeposit / 3;  // wrong deposit -> revert
  const auto h = chain.submit(std::move(tx));
  chain.mine_block(1000);
  const TxReceipt r = *chain.receipt(h);
  ASSERT_FALSE(r.success);
  EXPECT_EQ(chain.balance(user) + r.fee_paid, 10 * kGweiPerEth);
  EXPECT_EQ(chain.balance(contract), 0u);
}

}  // namespace
}  // namespace waku::chain
