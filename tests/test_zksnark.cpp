// Tests for the R1CS layer, circuit gadgets, the RLN circuit, and the
// simulated Groth16 backend: completeness, soundness against tampering,
// and the structural properties the benches rely on.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "sss/shamir.hpp"
#include "zksnark/gadgets.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::zksnark {
namespace {

using ff::Fr;
using merkle::IncrementalMerkleTree;
using merkle::MerklePath;

TEST(LinearCombination, EvaluatesTerms) {
  // assignment: [1, 10, 20]
  const std::vector<Fr> s = {Fr::one(), Fr::from_u64(10), Fr::from_u64(20)};
  LinearCombination lc;
  lc.add_term(1, Fr::from_u64(2));
  lc.add_term(2, Fr::from_u64(3));
  lc.add_term(0, Fr::from_u64(5));
  EXPECT_EQ(lc.evaluate(s), Fr::from_u64(2 * 10 + 3 * 20 + 5));
}

TEST(LinearCombination, MergesDuplicateTerms) {
  LinearCombination lc;
  lc.add_term(3, Fr::from_u64(2));
  lc.add_term(3, Fr::from_u64(5));
  ASSERT_EQ(lc.terms().size(), 1u);
  EXPECT_EQ(lc.terms()[0].second, Fr::from_u64(7));
}

TEST(LinearCombination, CancellingTermsVanish) {
  LinearCombination lc;
  lc.add_term(2, Fr::from_u64(4));
  lc.add_term(2, Fr::from_u64(4).neg());
  EXPECT_TRUE(lc.empty());
}

TEST(LinearCombination, ArithmeticOps) {
  const std::vector<Fr> s = {Fr::one(), Fr::from_u64(3)};
  const auto a = LinearCombination::variable(1);
  const auto b = LinearCombination::constant(Fr::from_u64(10));
  EXPECT_EQ((a + b).evaluate(s), Fr::from_u64(13));
  EXPECT_EQ((b - a).evaluate(s), Fr::from_u64(7));
  EXPECT_EQ(a.scaled(Fr::from_u64(4)).evaluate(s), Fr::from_u64(12));
}

TEST(ConstraintSystem, PublicBeforePrivateEnforced) {
  ConstraintSystem cs;
  cs.allocate_public();
  cs.allocate_private();
  EXPECT_THROW(cs.allocate_public(), ContractViolation);
}

TEST(ConstraintSystem, SatisfactionCheck) {
  // x * y = z with x=3, y=4, z=12.
  ConstraintSystem cs;
  const VarIndex x = cs.allocate_public();
  const VarIndex y = cs.allocate_private();
  const VarIndex z = cs.allocate_private();
  cs.enforce(LinearCombination::variable(x), LinearCombination::variable(y),
             LinearCombination::variable(z), "xy=z");

  const std::vector<Fr> good = {Fr::one(), Fr::from_u64(3), Fr::from_u64(4),
                                Fr::from_u64(12)};
  EXPECT_TRUE(cs.is_satisfied(good));

  const std::vector<Fr> bad = {Fr::one(), Fr::from_u64(3), Fr::from_u64(4),
                               Fr::from_u64(13)};
  std::string where;
  EXPECT_FALSE(cs.is_satisfied(bad, &where));
  EXPECT_EQ(where, "xy=z");
}

TEST(ConstraintSystem, RejectsMalformedAssignment) {
  ConstraintSystem cs;
  cs.allocate_public();
  const std::vector<Fr> wrong_one = {Fr::from_u64(2), Fr::one()};
  EXPECT_FALSE(cs.is_satisfied(wrong_one));
  const std::vector<Fr> wrong_size = {Fr::one()};
  EXPECT_FALSE(cs.is_satisfied(wrong_size));
}

TEST(ConstraintSystem, DigestDistinguishesCircuits) {
  EXPECT_NE(rln_constraint_system(4).digest(),
            rln_constraint_system(5).digest());
  EXPECT_EQ(rln_constraint_system(4).digest(),
            rln_constraint_system(4).digest());
}

TEST(CircuitBuilder, MulAddsOneConstraint) {
  CircuitBuilder b;
  const Wire x = b.witness(Fr::from_u64(6));
  const Wire y = b.witness(Fr::from_u64(7));
  const Wire z = b.mul(x, y);
  EXPECT_EQ(z.value, Fr::from_u64(42));
  EXPECT_EQ(b.cs().num_constraints(), 1u);
  EXPECT_TRUE(b.satisfied());
}

TEST(CircuitBuilder, LinearOpsAddNoConstraints) {
  CircuitBuilder b;
  const Wire x = b.witness(Fr::from_u64(6));
  const Wire y = b.witness(Fr::from_u64(7));
  const Wire s = CircuitBuilder::add(x, y);
  const Wire d = CircuitBuilder::sub(x, y);
  const Wire k = CircuitBuilder::scale(x, Fr::from_u64(3));
  EXPECT_EQ(s.value, Fr::from_u64(13));
  EXPECT_EQ(d.value, Fr::from_u64(6) - Fr::from_u64(7));
  EXPECT_EQ(k.value, Fr::from_u64(18));
  EXPECT_EQ(b.cs().num_constraints(), 0u);
}

TEST(CircuitBuilder, AssertBooleanAcceptsBits) {
  CircuitBuilder b;
  b.assert_boolean(b.witness(Fr::zero()));
  b.assert_boolean(b.witness(Fr::one()));
  EXPECT_TRUE(b.satisfied());
}

TEST(CircuitBuilder, AssertBooleanRejectsNonBits) {
  CircuitBuilder b;
  b.assert_boolean(b.witness(Fr::from_u64(2)));
  EXPECT_FALSE(b.satisfied());
}

TEST(CircuitBuilder, ConditionalSwap) {
  CircuitBuilder b;
  const Wire l = b.witness(Fr::from_u64(10));
  const Wire r = b.witness(Fr::from_u64(20));
  const auto [a0, b0] = b.conditional_swap(b.witness(Fr::zero()), l, r);
  EXPECT_EQ(a0.value, Fr::from_u64(10));
  EXPECT_EQ(b0.value, Fr::from_u64(20));
  const auto [a1, b1] = b.conditional_swap(b.witness(Fr::one()), l, r);
  EXPECT_EQ(a1.value, Fr::from_u64(20));
  EXPECT_EQ(b1.value, Fr::from_u64(10));
  EXPECT_TRUE(b.satisfied());
}

TEST(Gadgets, PoseidonMatchesNative) {
  Rng rng(211);
  for (std::size_t arity = 1; arity <= 4; ++arity) {
    CircuitBuilder b;
    std::vector<Fr> values;
    std::vector<Wire> wires;
    for (std::size_t i = 0; i < arity; ++i) {
      values.push_back(Fr::random(rng));
      wires.push_back(b.witness(values.back()));
    }
    const Wire out = poseidon_gadget(b, wires);
    EXPECT_EQ(out.value, hash::poseidon_hash(values)) << "arity " << arity;
    EXPECT_TRUE(b.satisfied()) << "arity " << arity;
  }
}

TEST(Gadgets, PoseidonConstraintCountBounded) {
  // t=3: 8 full rounds * 3 sboxes * 3 + 57 partial * (3 + 2 materialize)
  CircuitBuilder b;
  const Wire x = b.witness(Fr::one());
  const Wire y = b.witness(Fr::from_u64(2));
  (void)poseidon2_gadget(b, x, y);
  EXPECT_LE(b.cs().num_constraints(), 400u);
  EXPECT_GE(b.cs().num_constraints(), 200u);
}

TEST(Gadgets, MerkleRootMatchesNative) {
  IncrementalMerkleTree tree(6);
  for (std::uint64_t i = 0; i < 9; ++i) tree.insert(Fr::from_u64(100 + i));
  for (std::uint64_t idx : {0u, 3u, 8u}) {
    const MerklePath path = tree.auth_path(idx);
    CircuitBuilder b;
    const Wire leaf = b.witness(Fr::from_u64(100 + idx));
    const Wire root = merkle_root_gadget(b, leaf, path);
    EXPECT_EQ(root.value, tree.root()) << "index " << idx;
    EXPECT_TRUE(b.satisfied());
  }
}

// --- RLN circuit ---

struct RlnFixture {
  IncrementalMerkleTree tree{8};
  Fr sk;
  std::uint64_t index = 0;

  explicit RlnFixture(std::uint64_t seed = 223) {
    Rng rng(seed);
    sk = Fr::random(rng);
    // Surround our member with others.
    tree.insert(Fr::random(rng));
    index = tree.insert(hash::poseidon1(sk));
    tree.insert(Fr::random(rng));
  }

  RlnProverInput prover_input(const Fr& x, const Fr& epoch) const {
    return RlnProverInput{sk, tree.auth_path(index), x, epoch};
  }
};

TEST(RlnCircuit, PublicsMatchSpec) {
  const RlnFixture fx;
  const Fr x = Fr::from_u64(42);
  const Fr epoch = Fr::from_u64(54827003);
  const RlnPublicInputs pub = rln_compute_publics(fx.prover_input(x, epoch));

  const Fr a1 = hash::poseidon2(fx.sk, epoch);
  EXPECT_EQ(pub.x, x);
  EXPECT_EQ(pub.y, fx.sk + a1 * x);
  EXPECT_EQ(pub.nullifier, hash::poseidon1(a1));
  EXPECT_EQ(pub.epoch, epoch);
  EXPECT_EQ(pub.root, fx.tree.root());
}

TEST(RlnCircuit, WitnessSatisfiesConstraints) {
  const RlnFixture fx;
  RlnCircuit c = build_rln_circuit(
      fx.prover_input(Fr::from_u64(7), Fr::from_u64(1000)));
  std::string violation;
  EXPECT_TRUE(c.builder.satisfied(&violation)) << violation;
}

TEST(RlnCircuit, TwoSharesFromCircuitRecoverSk) {
  // End-to-end RLN property at the circuit level: the public outputs of two
  // same-epoch proofs expose sk via Shamir recovery.
  const RlnFixture fx;
  const Fr epoch = Fr::from_u64(999);
  const auto p1 = rln_compute_publics(fx.prover_input(Fr::from_u64(11), epoch));
  const auto p2 = rln_compute_publics(fx.prover_input(Fr::from_u64(22), epoch));
  EXPECT_EQ(p1.nullifier, p2.nullifier);  // double-signal detection signal
  const Fr recovered = sss::rln_recover_secret(sss::Share{p1.x, p1.y},
                                               sss::Share{p2.x, p2.y});
  EXPECT_EQ(recovered, fx.sk);
}

TEST(RlnCircuit, DifferentEpochsGiveDifferentNullifiers) {
  const RlnFixture fx;
  const auto p1 =
      rln_compute_publics(fx.prover_input(Fr::from_u64(1), Fr::from_u64(10)));
  const auto p2 =
      rln_compute_publics(fx.prover_input(Fr::from_u64(1), Fr::from_u64(11)));
  EXPECT_NE(p1.nullifier, p2.nullifier);
}

TEST(RlnCircuit, ConstraintCountGrowsWithDepth) {
  const std::size_t c8 = rln_constraint_system(8).num_constraints();
  const std::size_t c16 = rln_constraint_system(16).num_constraints();
  const std::size_t c32 = rln_constraint_system(32).num_constraints();
  EXPECT_LT(c8, c16);
  EXPECT_LT(c16, c32);
  // Each level adds one Poseidon2 + swap + bit: roughly constant increment.
  const std::size_t inc1 = c16 - c8;
  const std::size_t inc2 = c32 - c16;
  EXPECT_EQ(inc1 / 8, inc2 / 16);
}

// --- Simulated Groth16 ---

class Groth16Rln : public ::testing::Test {
 protected:
  RlnFixture fx;
  const Keypair& kp = rln_keypair(8);

  Proof make_proof(const Fr& x, const Fr& epoch, RlnPublicInputs* pub,
                   std::uint64_t seed = 1) {
    RlnCircuit c = build_rln_circuit(fx.prover_input(x, epoch));
    if (pub) *pub = c.publics;
    Rng rng(seed);
    return prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
  }
};

TEST_F(Groth16Rln, Completeness) {
  RlnPublicInputs pub;
  const Proof proof = make_proof(Fr::from_u64(5), Fr::from_u64(100), &pub);
  EXPECT_TRUE(verify(kp.vk, pub.to_vector(), proof));
}

TEST_F(Groth16Rln, RejectsTamperedPublicInputs) {
  RlnPublicInputs pub;
  const Proof proof = make_proof(Fr::from_u64(5), Fr::from_u64(100), &pub);
  for (int field = 0; field < 5; ++field) {
    auto inputs = pub.to_vector();
    inputs[static_cast<std::size_t>(field)] += Fr::one();
    EXPECT_FALSE(verify(kp.vk, inputs, proof)) << "field " << field;
  }
}

TEST_F(Groth16Rln, RejectsTamperedProof) {
  RlnPublicInputs pub;
  Proof proof = make_proof(Fr::from_u64(5), Fr::from_u64(100), &pub);
  proof.binding[0] ^= 1;
  EXPECT_FALSE(verify(kp.vk, pub.to_vector(), proof));
}

TEST_F(Groth16Rln, RejectsProofElementSwap) {
  RlnPublicInputs pub;
  Proof proof = make_proof(Fr::from_u64(5), Fr::from_u64(100), &pub);
  std::swap(proof.a, proof.b);
  EXPECT_FALSE(verify(kp.vk, pub.to_vector(), proof));
}

TEST_F(Groth16Rln, RejectsWrongInputCount) {
  RlnPublicInputs pub;
  const Proof proof = make_proof(Fr::from_u64(5), Fr::from_u64(100), &pub);
  auto inputs = pub.to_vector();
  inputs.pop_back();
  EXPECT_FALSE(verify(kp.vk, inputs, proof));
}

TEST_F(Groth16Rln, RejectsGarbageProof) {
  RlnPublicInputs pub;
  (void)make_proof(Fr::from_u64(5), Fr::from_u64(100), &pub);
  Proof garbage;  // all zero
  EXPECT_FALSE(verify(kp.vk, pub.to_vector(), garbage));
}

TEST_F(Groth16Rln, ProofsAreRandomized) {
  RlnPublicInputs pub;
  const Proof p1 = make_proof(Fr::from_u64(5), Fr::from_u64(100), &pub, 1);
  const Proof p2 = make_proof(Fr::from_u64(5), Fr::from_u64(100), &pub, 2);
  EXPECT_NE(p1, p2);  // zero-knowledge: same statement, different proofs
  EXPECT_TRUE(verify(kp.vk, pub.to_vector(), p1));
  EXPECT_TRUE(verify(kp.vk, pub.to_vector(), p2));
}

TEST_F(Groth16Rln, ProveRejectsCorruptedWitness) {
  RlnCircuit c =
      build_rln_circuit(fx.prover_input(Fr::from_u64(5), Fr::from_u64(100)));
  std::vector<Fr> assignment(c.builder.assignment().begin(),
                             c.builder.assignment().end());
  assignment[6] += Fr::one();  // corrupt a witness variable
  Rng rng(3);
  EXPECT_THROW(prove(kp.pk, c.builder.cs(), assignment, rng), ProofError);
}

TEST_F(Groth16Rln, ProveRejectsMismatchedCircuit) {
  RlnCircuit c =
      build_rln_circuit(fx.prover_input(Fr::from_u64(5), Fr::from_u64(100)));
  const Keypair& other = rln_keypair(10);  // wrong depth
  Rng rng(4);
  EXPECT_THROW(
      prove(other.pk, c.builder.cs(), c.builder.assignment(), rng),
      ProofError);
}

TEST_F(Groth16Rln, NonMemberCannotProve) {
  // A prover whose pk is NOT in the tree fails witness generation: the
  // circuit's membership constraint is violated if they claim the root.
  Rng rng(229);
  const Fr outsider_sk = Fr::random(rng);
  // Forge a path: siblings from a tree that doesn't contain the outsider.
  RlnProverInput input{outsider_sk, fx.tree.auth_path(fx.index),
                       Fr::from_u64(5), Fr::from_u64(100)};
  // The honest publics computation yields a root != the real tree root.
  const RlnPublicInputs pub = rln_compute_publics(input);
  EXPECT_NE(pub.root, fx.tree.root());
}

TEST(Groth16, ProofSerializationRoundTrip) {
  Rng rng(233);
  Proof p;
  const Bytes a = rng.next_bytes(32);
  std::copy(a.begin(), a.end(), p.a.begin());
  const Bytes bytes = p.serialize();
  ASSERT_EQ(bytes.size(), Proof::kSerializedSize);
  EXPECT_EQ(Proof::deserialize(bytes), p);
}

TEST(Groth16, DeserializeRejectsWrongSize) {
  EXPECT_THROW(Proof::deserialize(Bytes(127, 0)), ProofError);
  EXPECT_THROW(Proof::deserialize(Bytes(129, 0)), ProofError);
}

TEST(Groth16, ProvingKeySizeGrowsWithDepth) {
  const Keypair& k8 = rln_keypair(8);
  const Keypair& k16 = rln_keypair(16);
  EXPECT_GT(k16.pk.serialized_size(), k8.pk.serialized_size());
  // Verifying key stays small and constant-ish.
  EXPECT_EQ(k8.vk.serialized_size(), k16.vk.serialized_size());
  EXPECT_LT(k8.vk.serialized_size(), 1024u);
}

TEST(Groth16, ProvingKeySerializeMatchesReportedSize) {
  const Keypair& kp = rln_keypair(4);
  EXPECT_EQ(kp.pk.serialize().size(), kp.pk.serialized_size());
}

TEST(Groth16, KeypairDeterministicPerDepth) {
  const Keypair& a = rln_keypair(6);
  const Keypair& b = rln_keypair(6);
  EXPECT_EQ(&a, &b);  // cached
  EXPECT_EQ(a.pk.circuit_digest, rln_constraint_system(6).digest());
}

}  // namespace
}  // namespace waku::zksnark
