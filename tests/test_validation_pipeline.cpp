// Tests for the staged batch-validation pipeline: partition-invariant
// verdicts, batched Groth16 with per-proof fallback isolation, the rolling
// root cache, and epoch-bucket pruning of the sharded nullifier log.
#include <gtest/gtest.h>

#include "hash/poseidon.hpp"
#include "rln/group_manager.hpp"
#include "rln/harness.hpp"
#include "rln/nullifier_log.hpp"
#include "rln/rate_limit_proof.hpp"
#include "rln/validation_pipeline.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {
namespace {

using ff::Fr;
using ff::U256;

constexpr std::size_t kDepth = 8;

chain::Event registered_event(std::uint64_t index, const Fr& pk) {
  chain::Event ev;
  ev.name = "MemberRegistered";
  ev.topics = {U256{index}, pk.to_u256()};
  return ev;
}

struct PipelineFixture : ::testing::Test {
  GroupManager group{kDepth, TreeMode::kFullTree};
  Rng rng{541};
  Identity alice = Identity::generate(rng);
  Identity bob = Identity::generate(rng);
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 1000},
                       .max_epoch_gap = 2};

  void SetUp() override {
    group.on_event(registered_event(0, alice.pk));
    group.on_event(registered_event(1, bob.pk));
  }

  [[nodiscard]] ValidationPipeline make_pipeline(std::uint64_t seed = 7) {
    return ValidationPipeline(zksnark::rln_keypair(kDepth).vk, group, vcfg,
                              seed);
  }

  WakuMessage make_message(const Identity& who, std::uint64_t who_index,
                           const std::string& body, std::uint64_t epoch) {
    WakuMessage msg;
    msg.payload = to_bytes(body);
    zksnark::RlnProverInput input;
    input.sk = who.sk;
    input.path = group.path_of(who_index);
    input.x = message_hash(msg);
    input.epoch = Fr::from_u64(epoch);
    zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    RateLimitProof bundle;
    bundle.share_x = c.publics.x;
    bundle.share_y = c.publics.y;
    bundle.nullifier = c.publics.nullifier;
    bundle.epoch = epoch;
    bundle.root = c.publics.root;
    bundle.proof =
        zksnark::prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
    attach_proof(msg, bundle);
    return msg;
  }

  WakuMessage corrupt_proof(WakuMessage msg) {
    auto bundle = *extract_proof(msg);
    bundle.proof.binding[0] ^= 1;
    attach_proof(msg, bundle);
    return msg;
  }

  /// A traffic mix that exercises every verdict: honest publishes, a
  /// gossip echo, a double-signal, a corrupted proof, a corrupted echo,
  /// a stale-epoch message, and a proof-less message.
  std::vector<WakuMessage> mixed_traffic() {
    std::vector<WakuMessage> msgs;
    msgs.push_back(make_message(alice, 0, "alice says hi", 10));   // accept
    msgs.push_back(make_message(bob, 1, "bob says hi", 10));       // accept
    msgs.push_back(msgs[0]);                                       // echo
    msgs.push_back(make_message(alice, 0, "alice again", 10));     // spam
    msgs.push_back(corrupt_proof(make_message(bob, 1, "zap", 11)));  // bad
    msgs.push_back(corrupt_proof(msgs[1]));  // replay with mangled proof
    msgs.push_back(make_message(bob, 1, "ancient", 2));  // epoch gap
    WakuMessage bare;
    bare.payload = to_bytes("no proof at all");
    msgs.push_back(bare);                                          // no proof
    msgs.push_back(make_message(bob, 1, "bob epoch 11", 11));      // accept
    return msgs;
  }
};

std::vector<Verdict> verdicts_of(const std::vector<ValidationOutcome>& out) {
  std::vector<Verdict> v;
  v.reserve(out.size());
  for (const auto& o : out) v.push_back(o.verdict);
  return v;
}

TEST_F(PipelineFixture, BatchMatchesSequentialOnMixedTraffic) {
  const std::vector<WakuMessage> msgs = mixed_traffic();
  const std::uint64_t now = 10'500;

  // Reference: one pipeline, messages fed one at a time.
  ValidationPipeline sequential = make_pipeline(1);
  std::vector<Verdict> expected;
  for (const WakuMessage& m : msgs) {
    expected.push_back(sequential.validate_one(m, now).verdict);
  }

  // Any partition of the same sequence must yield the same verdicts.
  for (const std::size_t chunk : {msgs.size(), std::size_t{3}, std::size_t{2},
                                  std::size_t{4}}) {
    ValidationPipeline batched = make_pipeline(2 + chunk);
    std::vector<Verdict> got;
    for (std::size_t i = 0; i < msgs.size(); i += chunk) {
      const std::size_t len = std::min(chunk, msgs.size() - i);
      const auto out = batched.validate_batch(
          std::span<const WakuMessage>(msgs.data() + i, len), now);
      for (const auto& o : out) got.push_back(o.verdict);
    }
    EXPECT_EQ(got, expected) << "partition with chunk size " << chunk;
  }

  // Sanity on the reference itself. Note the tampered replay (index 5):
  // same share as the accepted message but different proof bytes — it
  // must be rejected (and penalized), not ignored as an echo.
  EXPECT_EQ(expected,
            (std::vector<Verdict>{
                Verdict::kAccept, Verdict::kAccept, Verdict::kIgnoreDuplicate,
                Verdict::kRejectSpam, Verdict::kRejectBadProof,
                Verdict::kRejectBadProof, Verdict::kIgnoreEpochGap,
                Verdict::kRejectNoProof, Verdict::kAccept}));
}

TEST_F(PipelineFixture, CleanBatchSettlesWithOneAggregatedCheck) {
  std::vector<WakuMessage> msgs;
  for (int e = 10; e < 14; ++e) {
    msgs.push_back(make_message(alice, 0, "a" + std::to_string(e),
                                static_cast<std::uint64_t>(e)));
    msgs.push_back(make_message(bob, 1, "b" + std::to_string(e),
                                static_cast<std::uint64_t>(e)));
  }
  ValidationPipeline pipeline = make_pipeline();
  const auto out = pipeline.validate_batch(msgs, 12'000);
  for (const auto& o : out) EXPECT_EQ(o.verdict, Verdict::kAccept);
  const ValidatorStats s = pipeline.stats();
  EXPECT_EQ(s.accepted, msgs.size());
  EXPECT_EQ(s.batch_aggregated, 1u);
  EXPECT_EQ(s.batch_fallbacks, 0u);
}

TEST_F(PipelineFixture, CorruptedProofTriggersFallbackAndIsIsolated) {
  std::vector<WakuMessage> msgs;
  msgs.push_back(make_message(alice, 0, "good alice", 10));
  msgs.push_back(corrupt_proof(make_message(bob, 1, "evil bob", 10)));
  msgs.push_back(make_message(bob, 1, "good bob", 11));

  ValidationPipeline pipeline = make_pipeline();
  const auto out = pipeline.validate_batch(msgs, 10'500);
  EXPECT_EQ(out[0].verdict, Verdict::kAccept);
  EXPECT_EQ(out[1].verdict, Verdict::kRejectBadProof);
  EXPECT_EQ(out[2].verdict, Verdict::kAccept);

  // The aggregate check failed, so the batch was isolated per proof; the
  // two honest messages survived the fallback untouched.
  const ValidatorStats s = pipeline.stats();
  EXPECT_EQ(s.batch_fallbacks, 1u);
  EXPECT_EQ(s.batch_aggregated, 0u);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.bad_proof, 1u);
}

TEST_F(PipelineFixture, DoubleSignalRecoversSecretInBatch) {
  std::vector<WakuMessage> msgs;
  msgs.push_back(make_message(alice, 0, "first", 10));
  msgs.push_back(make_message(alice, 0, "second", 10));
  ValidationPipeline pipeline = make_pipeline();
  const auto out = pipeline.validate_batch(msgs, 10'500);
  EXPECT_EQ(out[0].verdict, Verdict::kAccept);
  EXPECT_EQ(out[1].verdict, Verdict::kRejectSpam);
  ASSERT_TRUE(out[1].recovered_sk.has_value());
  EXPECT_EQ(*out[1].recovered_sk, alice.sk);
}

TEST_F(PipelineFixture, EchoShortCircuitsBeforeTheVerifier) {
  ValidationPipeline pipeline = make_pipeline();
  const WakuMessage msg = make_message(alice, 0, "hello", 10);
  EXPECT_EQ(pipeline.validate_one(msg, 10'500).verdict, Verdict::kAccept);
  EXPECT_EQ(pipeline.validate_one(msg, 10'600).verdict,
            Verdict::kIgnoreDuplicate);
  const ValidatorStats s = pipeline.stats();
  EXPECT_EQ(s.precheck_duplicates, 1u);  // never reached the SNARK stage
}

// -- rolling root cache -------------------------------------------------------

TEST_F(PipelineFixture, StaleRootRejectedAfterCacheEviction) {
  // A proof generated now references the current root; after root_window
  // further tree mutations the root rolls out of the cache.
  GroupManager narrow(kDepth, TreeMode::kFullTree, /*root_window=*/2);
  narrow.on_event(registered_event(0, alice.pk));
  ValidationPipeline pipeline(zksnark::rln_keypair(kDepth).vk, narrow, vcfg);

  WakuMessage msg;
  msg.payload = to_bytes("proved against a soon-stale root");
  zksnark::RlnProverInput input;
  input.sk = alice.sk;
  input.path = narrow.path_of(0);
  input.x = message_hash(msg);
  input.epoch = Fr::from_u64(10);
  zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
  const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
  RateLimitProof bundle;
  bundle.share_x = c.publics.x;
  bundle.share_y = c.publics.y;
  bundle.nullifier = c.publics.nullifier;
  bundle.epoch = 10;
  bundle.root = c.publics.root;
  bundle.proof =
      zksnark::prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
  attach_proof(msg, bundle);

  EXPECT_TRUE(narrow.is_recent_root(bundle.root));
  // Two more registrations push two fresh roots: window of 2 evicts ours.
  narrow.on_event(registered_event(1, bob.pk));
  EXPECT_TRUE(narrow.is_recent_root(bundle.root));  // still within window
  EXPECT_EQ(pipeline.validate_one(msg, 10'500).verdict, Verdict::kAccept);
  narrow.on_event(
      registered_event(2, hash::poseidon1(Fr::from_u64(0xC0FFEE))));
  EXPECT_FALSE(narrow.is_recent_root(bundle.root));
  const auto outcome = pipeline.validate_one(msg, 10'600);
  // The echo precheck fires only for fresh-root messages; eviction wins.
  EXPECT_EQ(outcome.verdict, Verdict::kRejectStaleRoot);
}

TEST(RootCacheUnit, EvictionIsFifoOverDistinctRoots) {
  GroupManager gm(kDepth, TreeMode::kFullTree, /*root_window=*/3);
  std::vector<Fr> roots{gm.root()};
  for (std::uint64_t i = 0; i < 5; ++i) {
    gm.on_event(registered_event(i, hash::poseidon1(Fr::from_u64(i + 1))));
    roots.push_back(gm.root());
  }
  // Only the last 3 of the 6 roots remain.
  EXPECT_EQ(gm.recent_root_count(), 3u);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(gm.is_recent_root(roots[i]), i >= 3) << "root " << i;
  }
}

// -- epoch-sharded nullifier log ----------------------------------------------

TEST(NullifierShards, PruneAtThrBoundaryDropsOnlyExpiredBuckets) {
  NullifierLog log;
  const sss::Share s{Fr::from_u64(1), Fr::from_u64(2)};
  for (std::uint64_t e = 100; e < 110; ++e) {
    log.observe(e, Fr::from_u64(e), s);
    log.observe(e, Fr::from_u64(1000 + e), s);
  }
  EXPECT_EQ(log.epoch_count(), 10u);
  EXPECT_EQ(log.entry_count(), 20u);

  // Thr boundary: cutoff = current - thr; the cutoff epoch itself (the
  // oldest epoch still within the gap window) must survive.
  log.gc(/*current_epoch=*/109, /*thr=*/2);
  EXPECT_EQ(log.epoch_count(), 3u);  // 107, 108, 109
  EXPECT_EQ(log.entry_count(), 6u);
  EXPECT_TRUE(log.peek(107, Fr::from_u64(107)).has_value());
  EXPECT_FALSE(log.peek(106, Fr::from_u64(106)).has_value());

  // Idempotent at the same boundary.
  log.gc(109, 2);
  EXPECT_EQ(log.epoch_count(), 3u);

  const NullifierLog::Stats stats = log.stats();
  EXPECT_EQ(stats.entries, 6u);
  EXPECT_EQ(stats.buckets, 3u);
  EXPECT_EQ(stats.conflicts, 0u);
}

TEST(NullifierShards, SparseEpochsPruneWithoutRangeWalk) {
  NullifierLog log;
  const sss::Share s{Fr::from_u64(1), Fr::from_u64(2)};
  // Epochs far apart (e.g. a peer that slept): gc must not walk the gap.
  log.observe(10, Fr::from_u64(1), s);
  log.observe(54'827'003, Fr::from_u64(2), s);
  log.gc(/*current_epoch=*/54'827'004, /*thr=*/2);
  EXPECT_EQ(log.epoch_count(), 1u);
  EXPECT_TRUE(log.peek(54'827'003, Fr::from_u64(2)).has_value());
}

TEST(NullifierShards, SameXDifferentYIsConflictNotDuplicate) {
  NullifierLog log;
  const Fr nullifier = Fr::from_u64(7);
  const sss::Share honest{Fr::from_u64(3), Fr::from_u64(30)};
  const sss::Share equivocation{Fr::from_u64(3), Fr::from_u64(31)};
  EXPECT_EQ(log.observe(5, nullifier, honest).outcome,
            NullifierLog::Outcome::kNew);

  const auto result = log.observe(5, nullifier, equivocation);
  EXPECT_EQ(result.outcome, NullifierLog::Outcome::kConflict);
  // Identical x cannot be interpolated: flagged as unrecoverable so no
  // caller ever feeds it to Shamir (division by x2 - x1 = 0).
  EXPECT_FALSE(result.sk_recoverable);
  ASSERT_TRUE(result.previous_share.has_value());
  EXPECT_EQ(*result.previous_share, honest);
  EXPECT_EQ(log.stats().conflicts, 1u);

  // Distinct x stays recoverable.
  const auto distinct =
      log.observe(5, nullifier, sss::Share{Fr::from_u64(4), Fr::from_u64(9)});
  EXPECT_EQ(distinct.outcome, NullifierLog::Outcome::kConflict);
  EXPECT_TRUE(distinct.sk_recoverable);
}

TEST_F(PipelineFixture, StatsMirrorNullifierLog) {
  ValidationPipeline pipeline = make_pipeline();
  (void)pipeline.validate_one(make_message(alice, 0, "a", 10), 10'500);
  (void)pipeline.validate_one(make_message(bob, 1, "b", 11), 10'600);
  const ValidatorStats s = pipeline.stats();
  EXPECT_EQ(s.log_entries, 2u);
  EXPECT_EQ(s.log_buckets, 2u);
  EXPECT_EQ(s.log_conflicts, 0u);
}

// -- batched Groth16 directly -------------------------------------------------

TEST_F(PipelineFixture, VerifyBatchIsolatesExactlyTheBadProofs) {
  const zksnark::VerifyingKey& vk = zksnark::rln_keypair(kDepth).vk;
  std::vector<zksnark::BatchEntry> entries;
  for (int i = 0; i < 6; ++i) {
    WakuMessage msg =
        make_message(i % 2 == 0 ? alice : bob, i % 2 == 0 ? 0u : 1u,
                     "m" + std::to_string(i), 10 + static_cast<std::uint64_t>(i));
    const auto bundle = *extract_proof(msg);
    entries.push_back(
        zksnark::BatchEntry{bundle.public_inputs(message_hash(msg)),
                            bundle.proof});
  }
  Rng batch_rng(99);
  auto clean = zksnark::verify_batch(vk, entries, batch_rng);
  EXPECT_TRUE(clean.aggregated);
  for (const bool ok : clean.ok) EXPECT_TRUE(ok);

  entries[2].proof.binding[7] ^= 0x40;
  entries[4].proof.c[0] ^= 0x01;
  auto dirty = zksnark::verify_batch(vk, entries, batch_rng);
  EXPECT_FALSE(dirty.aggregated);
  const std::vector<bool> expected{true, true, false, true, false, true};
  EXPECT_EQ(dirty.ok, expected);
}

TEST_F(PipelineFixture, BatchRejectsFieldReductionMalleableBinding) {
  // binding' = binding + r (as a 256-bit integer) has the same residue
  // mod r, so an aggregate over field-reduced whole tags would accept it
  // even though per-proof byte comparison rejects it. The half-tag
  // folding must catch this.
  const zksnark::VerifyingKey& vk = zksnark::rln_keypair(kDepth).vk;
  std::vector<zksnark::BatchEntry> entries;
  for (int i = 0; i < 3; ++i) {
    WakuMessage msg = make_message(alice, 0, "m" + std::to_string(i),
                                   10 + static_cast<std::uint64_t>(i));
    const auto bundle = *extract_proof(msg);
    entries.push_back(zksnark::BatchEntry{
        bundle.public_inputs(message_hash(msg)), bundle.proof});
  }
  const ff::U256 as_int = ff::u256_from_bytes_be(
      BytesView(entries[1].proof.binding.data(), 32));
  const Bytes forged = ff::u256_to_bytes_be(as_int + Fr::kModulus);
  std::copy(forged.begin(), forged.end(), entries[1].proof.binding.begin());
  // Same residue, different bytes: single verify must reject it...
  EXPECT_FALSE(
      zksnark::verify(vk, entries[1].public_inputs, entries[1].proof));
  // ...and the batch must agree (no partition-dependent acceptance).
  Rng batch_rng(123);
  const auto out = zksnark::verify_batch(vk, entries, batch_rng);
  EXPECT_FALSE(out.aggregated);
  const std::vector<bool> expected{true, false, true};
  EXPECT_EQ(out.ok, expected);
}

// -- end to end through the gossip mesh ---------------------------------------

TEST(PipelineEndToEnd, BatchedValidationDeliversAcrossTheMesh) {
  HarnessConfig cfg;
  cfg.num_nodes = 6;
  cfg.degree = 3;
  cfg.node.tree_depth = 12;
  cfg.node.validator.epoch.epoch_length_ms = 10'000;
  // Windows of up to 4 messages per validation flush: the relay path now
  // runs through the batch pipeline, not per-message validation.
  cfg.node.gossip.validation_batch_max = 4;
  RlnHarness h(cfg);
  h.register_all();

  h.node(0).try_publish(to_bytes("batched hello"));
  h.run_ms(15'000);

  EXPECT_EQ(h.total_delivered(), cfg.num_nodes);
  const ValidatorStats s = h.total_validation_stats();
  EXPECT_EQ(s.accepted, cfg.num_nodes - 1);  // every peer but the publisher
  EXPECT_EQ(s.bad_proof + s.spam_detected + s.no_proof + s.stale_root, 0u);
  EXPECT_GT(s.batches, 0u);
}

}  // namespace
}  // namespace waku::rln
