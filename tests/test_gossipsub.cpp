// Tests for the gossipsub router and peer scoring: mesh formation,
// propagation, validation gating, lazy gossip recovery, and the
// Sybil-vulnerability of score-based defences the paper critiques.
#include <gtest/gtest.h>

#include <memory>

#include "gossipsub/router.hpp"

namespace waku::gossipsub {
namespace {

constexpr const char* kTopic = "test-topic";

struct Swarm {
  net::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<GossipSubRouter>> routers;
  std::vector<std::uint64_t> delivered;

  explicit Swarm(std::size_t n, net::LinkConfig link = {.base_latency_ms = 20,
                                                        .jitter_ms = 10,
                                                        .loss_rate = 0},
                 GossipSubConfig config = {})
      : net(sim, link, 23), delivered(n, 0) {
    for (std::size_t i = 0; i < n; ++i) {
      routers.push_back(
          std::make_unique<GossipSubRouter>(net, config, PeerScoreConfig{},
                                            100 + i));
    }
  }

  void wire_and_subscribe(std::size_t degree = 4) {
    Rng rng(29);
    net.connect_random(degree, rng);
    for (std::size_t i = 0; i < routers.size(); ++i) {
      routers[i]->subscribe(kTopic, [this, i](const PubSubMessage&) {
        ++delivered[i];
      });
      routers[i]->start();
    }
    sim.run_until(sim.now() + 5000);  // several heartbeats: meshes form
  }

  std::uint64_t total_delivered() const {
    std::uint64_t n = 0;
    for (const auto d : delivered) n += d;
    return n;
  }
};

TEST(GossipSub, MeshFormsWithinBounds) {
  Swarm swarm(20);
  swarm.wire_and_subscribe(6);
  for (const auto& r : swarm.routers) {
    const auto mesh = r->mesh_peers(kTopic);
    EXPECT_GE(mesh.size(), 1u);
    EXPECT_LE(mesh.size(), GossipSubConfig{}.mesh_n_high);
  }
}

TEST(GossipSub, PublishReachesAllSubscribers) {
  Swarm swarm(30);
  swarm.wire_and_subscribe();
  swarm.routers[0]->publish(kTopic, to_bytes("hello everyone"));
  swarm.sim.run_until(swarm.sim.now() + 10'000);
  for (std::size_t i = 0; i < swarm.routers.size(); ++i) {
    EXPECT_EQ(swarm.delivered[i], 1u) << "node " << i;
  }
}

TEST(GossipSub, EveryMessageDeliveredExactlyOnce) {
  Swarm swarm(25);
  swarm.wire_and_subscribe();
  for (int m = 0; m < 10; ++m) {
    swarm.routers[static_cast<std::size_t>(m) % 25]->publish(
        kTopic, to_bytes("msg" + std::to_string(m)));
    swarm.sim.run_until(swarm.sim.now() + 500);
  }
  swarm.sim.run_until(swarm.sim.now() + 10'000);
  for (std::size_t i = 0; i < swarm.routers.size(); ++i) {
    EXPECT_EQ(swarm.delivered[i], 10u) << "node " << i;
  }
}

TEST(GossipSub, DuplicatesAreSuppressed) {
  Swarm swarm(20);
  swarm.wire_and_subscribe();
  swarm.routers[0]->publish(kTopic, to_bytes("dup-test"));
  swarm.sim.run_until(swarm.sim.now() + 10'000);
  // With flood publish + mesh relay, some duplicates must have been seen
  // and absorbed rather than re-delivered.
  std::uint64_t dups = 0;
  for (const auto& r : swarm.routers) dups += r->stats().duplicates;
  EXPECT_GT(dups, 0u);
  EXPECT_EQ(swarm.total_delivered(), 20u);
}

TEST(GossipSub, LazyGossipRecoversLostMessages) {
  // 30% loss: eager push misses some peers; IHAVE/IWANT repair should
  // still deliver everywhere eventually.
  Swarm swarm(20, {.base_latency_ms = 20, .jitter_ms = 10, .loss_rate = 0.30});
  swarm.wire_and_subscribe();
  swarm.routers[0]->publish(kTopic, to_bytes("lossy"));
  swarm.sim.run_until(swarm.sim.now() + 30'000);
  EXPECT_GE(swarm.total_delivered(), 19u);  // at most one straggler
}

TEST(GossipSub, ValidatorRejectStopsPropagationAtFirstHop) {
  Swarm swarm(20);
  swarm.wire_and_subscribe();
  // All nodes reject everything on this topic.
  for (auto& r : swarm.routers) {
    r->set_validator(kTopic, [](net::NodeId, const PubSubMessage&) {
      return ValidationResult::kReject;
    });
  }
  swarm.routers[0]->publish(kTopic, to_bytes("spam"));
  swarm.sim.run_until(swarm.sim.now() + 10'000);

  // Publisher delivered to itself only; no forwarding happened anywhere.
  EXPECT_EQ(swarm.total_delivered(), 1u);
  std::uint64_t forwarded = 0;
  std::uint64_t rejected = 0;
  for (const auto& r : swarm.routers) {
    forwarded += r->stats().forwarded;
    rejected += r->stats().rejected;
  }
  EXPECT_EQ(forwarded, 0u);
  // Only the publisher's direct connections ever saw it.
  EXPECT_LE(rejected, swarm.net.neighbors(0).size());
  EXPECT_GE(rejected, 1u);
}

TEST(GossipSub, ValidatorIgnoreDropsSilentlyWithoutPenalty) {
  Swarm swarm(10);
  swarm.wire_and_subscribe();
  for (auto& r : swarm.routers) {
    r->set_validator(kTopic, [](net::NodeId, const PubSubMessage&) {
      return ValidationResult::kIgnore;
    });
  }
  swarm.routers[0]->publish(kTopic, to_bytes("meh"));
  swarm.sim.run_until(swarm.sim.now() + 5'000);
  EXPECT_EQ(swarm.total_delivered(), 1u);  // only the publisher itself
  // Ignore must not penalize: scores of node 0 at its peers stay >= 0.
  for (const auto& r : swarm.routers) {
    if (r->node_id() == 0) continue;
    EXPECT_GE(r->scores().score(0), 0.0);
  }
}

TEST(GossipSub, InvalidMessagesCrashSenderScore) {
  Swarm swarm(10);
  swarm.wire_and_subscribe();
  for (auto& r : swarm.routers) {
    r->set_validator(kTopic, [](net::NodeId, const PubSubMessage&) {
      return ValidationResult::kReject;
    });
  }
  // Node 0 floods garbage; its neighbors' opinion of it collapses. Once a
  // neighbor graylists it, further garbage is ignored without validation,
  // so the rejected count saturates below the number of messages sent.
  for (int i = 0; i < 10; ++i) {
    swarm.routers[0]->publish(kTopic, to_bytes("junk" + std::to_string(i)));
    swarm.sim.run_until(swarm.sim.now() + 50);
  }
  swarm.sim.run_until(swarm.sim.now() + 100);

  const std::size_t neighbors = swarm.net.neighbors(0).size();
  std::uint64_t rejected = 0;
  bool someone_hostile = false;
  for (const auto& r : swarm.routers) {
    if (r->node_id() == 0) continue;
    rejected += r->stats().rejected;
    if (r->scores().score(0) < -40.0) someone_hostile = true;
  }
  EXPECT_TRUE(someone_hostile);
  // Graylisting kicked in before all 10 messages were validated everywhere.
  EXPECT_LT(rejected, 10 * neighbors);
  EXPECT_GE(rejected, 3u);
}

TEST(GossipSub, SybilRotationEvadesScoring) {
  // The paper's critique of peer scoring: a spammer that rotates through
  // fresh identities starts each with a clean score. We model rotation by
  // publishing garbage from many distinct nodes — none accumulates enough
  // negative score to be contained before it has already spammed.
  Swarm swarm(30);
  swarm.wire_and_subscribe();
  for (auto& r : swarm.routers) {
    r->set_validator(kTopic, [](net::NodeId, const PubSubMessage&) {
      return ValidationResult::kReject;
    });
  }
  std::uint64_t spam_received_total = 0;
  for (std::size_t sybil = 0; sybil < 15; ++sybil) {
    swarm.routers[sybil]->publish(kTopic, to_bytes("sybil-spam"));
    swarm.sim.run_until(swarm.sim.now() + 200);
  }
  for (const auto& r : swarm.routers) {
    spam_received_total += r->stats().rejected;
  }
  // Every fresh identity lands its spam on its direct peers: scoring never
  // stops the first message of a new Sybil.
  EXPECT_GE(spam_received_total, 15u);
}

TEST(GossipSub, UnsubscribeLeavesMesh) {
  Swarm swarm(10);
  swarm.wire_and_subscribe();
  swarm.routers[0]->unsubscribe(kTopic);
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  for (const auto& r : swarm.routers) {
    if (r->node_id() == 0) continue;
    const auto mesh = r->mesh_peers(kTopic);
    EXPECT_TRUE(std::find(mesh.begin(), mesh.end(), 0u) == mesh.end());
  }
  swarm.routers[1]->publish(kTopic, to_bytes("after-leave"));
  swarm.sim.run_until(swarm.sim.now() + 5'000);
  EXPECT_EQ(swarm.delivered[0], 0u);
}

TEST(GossipSub, HeartbeatRetractsUnsubscribeFromPartitionedPeer) {
  // A peer that is unreachable while we unsubscribe must still learn of
  // it once the link returns: the heartbeat re-announces subscriptions to
  // late links (PR 4), and it must retract UNsubscribes the same way —
  // otherwise the relinked peer keeps grafting the dead topic's mesh and
  // fanout-routes publishes into a void (after a reshard's drop-old,
  // that dead topic is a whole generation's shard mesh).
  Swarm swarm(2);
  swarm.net.connect(0, 1);
  for (std::size_t i = 0; i < 2; ++i) {
    swarm.routers[i]->subscribe(kTopic, [&swarm, i](const PubSubMessage&) {
      ++swarm.delivered[i];
    });
    swarm.routers[i]->start();
  }
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  ASSERT_TRUE(swarm.routers[1]->peer_subscribed(0, kTopic));

  // Partition, then unsubscribe while unreachable: the kUnsubscribe
  // frame has no link to travel.
  swarm.net.disconnect(0, 1);
  swarm.routers[0]->unsubscribe(kTopic);
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  ASSERT_TRUE(swarm.routers[1]->peer_subscribed(0, kTopic));  // stale belief

  // Relink: within a heartbeat the retraction lands and router 1 forgets
  // the stale subscription; nothing is fanout-routed to router 0.
  swarm.net.connect(0, 1);
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  EXPECT_FALSE(swarm.routers[1]->peer_subscribed(0, kTopic));
  swarm.routers[1]->publish(kTopic, to_bytes("post-retraction"));
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  EXPECT_EQ(swarm.delivered[0], 0u);
}

TEST(GossipSub, StaleSubscriptionCorrectedAfterLossyUnsubscribe) {
  // The unsubscribe frame itself can be LOST (lossy link, not a
  // partition): the peer stays a neighbor, so the heartbeat's
  // late-link retraction never triggers. The stale belief must still be
  // corrected event-driven — a publish routed to us on a topic we left
  // proves the sender's belief is stale, and we retract again.
  Swarm swarm(2);
  swarm.net.connect(0, 1);
  for (std::size_t i = 0; i < 2; ++i) {
    swarm.routers[i]->subscribe(kTopic, [&swarm, i](const PubSubMessage&) {
      ++swarm.delivered[i];
    });
    swarm.routers[i]->start();
  }
  swarm.sim.run_until(swarm.sim.now() + 3'000);

  // Everything router 0 sends is eaten while it unsubscribes.
  net::LinkConfig lossy;
  lossy.loss_rate = 1.0;
  swarm.net.set_link_override(0, 1, lossy);
  swarm.routers[0]->unsubscribe(kTopic);
  swarm.net.clear_link_override(0, 1);
  swarm.sim.run_until(swarm.sim.now() + 2'000);
  ASSERT_TRUE(swarm.routers[1]->peer_subscribed(0, kTopic));  // stale

  // Router 1 publishes into the stale mesh; router 0's event-driven
  // retraction corrects the belief.
  swarm.routers[1]->publish(kTopic, to_bytes("stale-mesh publish"));
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  EXPECT_FALSE(swarm.routers[1]->peer_subscribed(0, kTopic));
  EXPECT_EQ(swarm.delivered[0], 0u);
}

TEST(GossipSub, ResubscribeWhilePartitionedNeedsNoRetraction) {
  // Unsubscribe then RE-subscribe, both while the peer is away: its
  // stale belief is accidentally correct again and must survive the
  // reconnect (no spurious retraction after the re-announce).
  Swarm swarm(2);
  swarm.net.connect(0, 1);
  for (std::size_t i = 0; i < 2; ++i) {
    swarm.routers[i]->subscribe(kTopic, [&swarm, i](const PubSubMessage&) {
      ++swarm.delivered[i];
    });
    swarm.routers[i]->start();
  }
  swarm.sim.run_until(swarm.sim.now() + 3'000);

  swarm.net.disconnect(0, 1);
  swarm.routers[0]->unsubscribe(kTopic);
  swarm.routers[0]->subscribe(kTopic, [&swarm](const PubSubMessage&) {
    ++swarm.delivered[0];
  });
  swarm.net.connect(0, 1);
  swarm.sim.run_until(swarm.sim.now() + 5'000);
  EXPECT_TRUE(swarm.routers[1]->peer_subscribed(0, kTopic));
  swarm.routers[1]->publish(kTopic, to_bytes("back again"));
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  EXPECT_EQ(swarm.delivered[0], 1u);
}

TEST(GossipSub, MalformedFramePenalized) {
  Swarm swarm(2);
  swarm.net.connect(0, 1);
  swarm.routers[0]->subscribe(kTopic, [](const PubSubMessage&) {});
  swarm.routers[1]->subscribe(kTopic, [](const PubSubMessage&) {});
  swarm.net.send(1, 0, to_bytes("\xff\xff garbage"));
  swarm.sim.run_all();
  EXPECT_LT(swarm.routers[0]->scores().score(1), 0.0);
}

TEST(PeerScoreUnit, FreshPeerIsNeutral) {
  PeerScore score;
  EXPECT_EQ(score.score(5), 0.0);
  EXPECT_FALSE(score.graylisted(5));
}

TEST(PeerScoreUnit, InvalidMessagesAreSquared) {
  PeerScore score;
  score.record_invalid_message(1);
  const double one = score.score(1);
  score.record_invalid_message(1);
  const double two = score.score(1);
  EXPECT_LT(two, 4 * one + 1e-9);  // -w*n^2 grows superlinearly
}

TEST(PeerScoreUnit, DecayForgivesOverTime) {
  PeerScore score;
  for (int i = 0; i < 3; ++i) score.record_invalid_message(7);
  const double before = score.score(7);
  for (int i = 0; i < 60; ++i) score.decay_all();
  EXPECT_GT(score.score(7), before);
  EXPECT_EQ(score.score(7), 0.0);  // snapped to zero
}

TEST(PeerScoreUnit, PositiveBehaviourBuildsCredit) {
  PeerScore score;
  for (int i = 0; i < 10; ++i) {
    score.record_first_delivery(3);
    score.record_mesh_tick(3);
  }
  EXPECT_GT(score.score(3), 0.0);
}

TEST(PeerScoreUnit, ThresholdsOrdering) {
  const PeerScoreConfig c;
  EXPECT_GT(c.gossip_threshold, c.publish_threshold);
  EXPECT_GT(c.publish_threshold, c.graylist_threshold);
}

TEST(WireFormat, FrameRoundTrips) {
  Frame f;
  f.type = FrameType::kPublish;
  f.topic = "t";
  PubSubMessage m;
  m.topic = "t";
  m.data = to_bytes("payload");
  m.origin = 9;
  m.seqno = 1234;
  f.message = m;
  const Frame decoded = decode_frame(encode_frame(f));
  EXPECT_EQ(decoded.topic, "t");
  ASSERT_TRUE(decoded.message.has_value());
  EXPECT_EQ(decoded.message->data, m.data);
  EXPECT_EQ(decoded.message->origin, 9u);
  EXPECT_EQ(decoded.message->seqno, 1234u);
}

TEST(WireFormat, IHaveRoundTrips) {
  Frame f;
  f.type = FrameType::kIHave;
  f.topic = "t";
  MessageId id{};
  id[0] = 0xab;
  f.ids = {id, id};
  const Frame decoded = decode_frame(encode_frame(f));
  EXPECT_EQ(decoded.type, FrameType::kIHave);
  ASSERT_EQ(decoded.ids.size(), 2u);
  EXPECT_EQ(decoded.ids[0][0], 0xab);
}

TEST(WireFormat, RejectsGarbage) {
  EXPECT_THROW(decode_frame(to_bytes("\x63nonsense")), std::invalid_argument);
  EXPECT_THROW(decode_frame(Bytes{}), std::out_of_range);
}

TEST(WireFormat, MessageIdDependsOnAllFields) {
  PubSubMessage base{.topic = "t", .data = to_bytes("x"), .origin = 1,
                     .seqno = 1};
  PubSubMessage diff_topic = base;
  diff_topic.topic = "u";
  PubSubMessage diff_data = base;
  diff_data.data = to_bytes("y");
  PubSubMessage diff_origin = base;
  diff_origin.origin = 2;
  PubSubMessage diff_seq = base;
  diff_seq.seqno = 2;
  EXPECT_NE(base.id(), diff_topic.id());
  EXPECT_NE(base.id(), diff_data.id());
  EXPECT_NE(base.id(), diff_origin.id());
  EXPECT_NE(base.id(), diff_seq.id());
}

}  // namespace
}  // namespace waku::gossipsub
