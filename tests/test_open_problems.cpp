// Tests reproducing the paper's §IV-B open problems — behaviours the
// design explicitly does NOT prevent. These document the attack surface:
// if a future change accidentally "fixes" one by breaking the protocol,
// or regresses the economics, these tests flag it.
#include <gtest/gtest.h>

#include "common/serde.hpp"
#include "rln/harness.hpp"

namespace waku::rln {
namespace {

HarnessConfig config(std::size_t nodes) {
  HarnessConfig cfg;
  cfg.num_nodes = nodes;
  cfg.degree = std::min<std::size_t>(4, nodes - 1);
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 10'000;
  cfg.node.validator.max_epoch_gap = 2;
  return cfg;
}

TEST(OpenProblems, MultipleRegistrationsMultiplyTheQuota) {
  // §IV-B "Exceeding the messaging rate via multiple registrations": an
  // attacker paying k deposits gets k messages per epoch. The attack works
  // — but costs k deposits, which is exactly the economic barrier the
  // paper proposes (raising the fee raises the attack price).
  HarnessConfig cfg = config(8);
  RlnHarness h(cfg);
  h.register_all();

  // Nodes 0,1,2 are all controlled by the attacker (three identities).
  h.run_ms(5'000);
  const chain::Gwei paid = 3 * cfg.deposit_gwei;
  for (std::size_t sybil = 0; sybil < 3; ++sybil) {
    ASSERT_EQ(h.node(sybil).try_publish(to_bytes("k-quota message")),
              WakuRlnRelayNode::PublishStatus::kOk);
  }
  h.run_ms(10'000);

  // All three messages flow: the aggregate quota is k per epoch...
  std::uint64_t delivered_at_3 = h.node(3).stats().delivered;
  EXPECT_EQ(delivered_at_3, 3u);
  // ...no one is slashed (each identity stayed within its own limit)...
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_TRUE(h.node(i).is_registered());
  }
  // ...and the price was k deposits held by the contract.
  EXPECT_GE(h.chain().balance(h.contract()), paid);
}

TEST(OpenProblems, EarlyWithdrawalSavesTheStakeButBurnsMembership) {
  // §IV-B "Escaping punishment by early withdrawal": spam, then withdraw
  // before slashers land. The attacker saves the reward portion (the
  // deposit returns to them) but its membership — the registration fee in
  // a fee-bearing deployment — is spent and it cannot publish again.
  HarnessConfig cfg = config(8);
  cfg.block_interval_ms = 6'000;  // slow blocks give the withdrawal a window
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);

  WakuRlnRelayNode& attacker = h.node(0);
  const std::uint64_t index = *attacker.group().own_index();

  // Double-signal (slashing material is now in the network)...
  attacker.force_publish(to_bytes("spam 1"));
  attacker.force_publish(to_bytes("spam 2"));

  // ...and immediately withdraw, before any commit matures. The withdrawal
  // is a single transaction; commit-reveal needs two blocks.
  chain::Transaction tx;
  tx.from = attacker.account();
  tx.to = h.contract();
  tx.method = "withdraw";
  ByteWriter w;
  w.write_raw(attacker.identity().sk.to_bytes_be());
  w.write_u64(index);
  w.write_raw(merkle::serialize_path(attacker.group().path_of(index)));
  tx.calldata = std::move(w).take();
  h.chain().submit(std::move(tx));

  h.run_ms(10 * cfg.block_interval_ms);

  // The attacker escaped: no slasher collected its deposit.
  std::uint64_t rewards = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    rewards += h.node(i).stats().slash_rewards;
  }
  EXPECT_EQ(rewards, 0u);
  // The contract holds only the other members' deposits.
  EXPECT_EQ(h.chain().balance(h.contract()),
            cfg.deposit_gwei * (h.size() - 1));
  // But the attacker is out of the group and silenced.
  EXPECT_FALSE(attacker.is_registered());
  EXPECT_EQ(attacker.try_publish(to_bytes("back again?")),
            WakuRlnRelayNode::PublishStatus::kNotRegistered);
}

TEST(OpenProblems, HigherDepositRaisesSybilAttackPrice) {
  // §IV-B's proposed mitigation: "increasing the entry barrier via a
  // higher membership fee". Verify the contract enforces the configured
  // deposit exactly — an attacker cannot register below it.
  HarnessConfig cfg = config(4);
  cfg.deposit_gwei = 50'000'000;  // 0.05 ETH
  RlnHarness h(cfg);

  chain::Transaction tx;
  tx.from = h.node(0).account();
  tx.to = h.contract();
  tx.method = "register";
  tx.calldata = h.node(0).identity().pk_bytes();
  tx.value = cfg.deposit_gwei / 2;  // lowball
  const auto handle = h.chain().submit(std::move(tx));
  h.run_ms(3 * cfg.block_interval_ms);
  ASSERT_TRUE(h.chain().receipt(handle).has_value());
  EXPECT_FALSE(h.chain().receipt(handle)->success);
  EXPECT_FALSE(h.node(0).is_registered());
}

}  // namespace
}  // namespace waku::rln
