// Tests for mempool priority ordering (gas price) and block gas limits —
// the chain mechanics behind the §III-F front-running race that
// commit-reveal slashing defends against.
#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "chain/rln_contract.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"

namespace waku::chain {
namespace {

using ff::Fr;

struct OrderingFixture : ::testing::Test {
  Blockchain chain;
  Address contract;
  Address honest = Address::from_u64(0xAAAA);
  Address thief = Address::from_u64(0xBBBB);
  Fr spammer_sk = Fr::from_u64(0x5EC4E7);
  static constexpr Gwei kDeposit = 1'000'000;

  void SetUp() override {
    contract = chain.deploy(std::make_unique<RlnMembershipContract>(kDeposit));
    chain.create_account(honest, 10 * kGweiPerEth);
    chain.create_account(thief, 10 * kGweiPerEth);
    Transaction reg;
    reg.from = honest;
    reg.to = contract;
    reg.method = "register";
    reg.calldata = hash::poseidon1(spammer_sk).to_bytes_be();
    reg.value = kDeposit;
    chain.submit(std::move(reg));
    chain.mine_block(0);
  }

  Transaction direct_slash(const Address& from, Gwei gas_price) {
    ByteWriter w;
    w.write_raw(spammer_sk.to_bytes_be());
    w.write_u64(0);
    Transaction tx;
    tx.from = from;
    tx.to = contract;
    tx.method = "slash_direct";
    tx.calldata = std::move(w).take();
    tx.gas_price = gas_price;
    return tx;
  }
};

TEST_F(OrderingFixture, HigherGasPriceWinsTheBlock) {
  // Thief submits SECOND but outbids -> executes first -> steals reward.
  const auto h_honest = chain.submit(direct_slash(honest, 50));
  const auto h_thief = chain.submit(direct_slash(thief, 500));
  chain.mine_block(12'000);
  EXPECT_FALSE(chain.receipt(h_honest)->success);
  EXPECT_TRUE(chain.receipt(h_thief)->success);
  // The thief collected the deposit (even if the 10x gas bid cost more
  // than this small test deposit is worth).
  EXPECT_EQ(chain.balance(thief),
            10 * kGweiPerEth - chain.receipt(h_thief)->fee_paid + kDeposit);
}

TEST_F(OrderingFixture, EqualBidsKeepSubmissionOrder) {
  const auto h_first = chain.submit(direct_slash(honest, 50));
  const auto h_second = chain.submit(direct_slash(thief, 50));
  chain.mine_block(12'000);
  EXPECT_TRUE(chain.receipt(h_first)->success);
  EXPECT_FALSE(chain.receipt(h_second)->success);
}

TEST_F(OrderingFixture, CommitRevealDefeatsOutbidding) {
  // Even with 10x the gas price, a copied reveal reverts: the commitment
  // hashes the slasher's own address.
  const ff::U256 salt{7};
  Transaction commit;
  commit.from = honest;
  commit.to = contract;
  commit.method = "commit_slash";
  commit.calldata = ff::u256_to_bytes_be(
      RlnMembershipContract::make_slash_commitment(spammer_sk, salt, honest));
  chain.submit(std::move(commit));
  chain.mine_block(12'000);

  ByteWriter w;
  w.write_raw(spammer_sk.to_bytes_be());
  w.write_raw(ff::u256_to_bytes_be(salt));
  w.write_u64(0);
  Transaction reveal;
  reveal.from = honest;
  reveal.to = contract;
  reveal.method = "reveal_slash";
  reveal.calldata = w.data();
  reveal.gas_price = 50;

  Transaction stolen = reveal;
  stolen.from = thief;
  stolen.gas_price = 500;  // front-run attempt

  const auto h_honest = chain.submit(std::move(reveal));
  const auto h_thief = chain.submit(std::move(stolen));
  chain.mine_block(24'000);
  EXPECT_FALSE(chain.receipt(h_thief)->success);
  EXPECT_TRUE(chain.receipt(h_honest)->success);
}

TEST(BlockGasLimit, OverflowingTransactionsWaitForNextBlock) {
  Blockchain::Config cfg;
  cfg.block_gas_limit = 60'000;  // fits ~1 registration + change
  Blockchain chain(cfg);
  const Address contract =
      chain.deploy(std::make_unique<RlnMembershipContract>(1'000'000));
  const Address user = Address::from_u64(0xCC);
  chain.create_account(user, 10 * kGweiPerEth);

  std::vector<std::uint64_t> handles;
  for (int i = 0; i < 3; ++i) {
    Transaction tx;
    tx.from = user;
    tx.to = contract;
    tx.method = "register";
    tx.calldata = hash::poseidon1(Fr::from_u64(10 + i)).to_bytes_be();
    tx.value = 1'000'000;
    handles.push_back(chain.submit(std::move(tx)));
  }
  chain.mine_block(1'000);
  // Only part of the queue fit.
  EXPECT_TRUE(chain.receipt(handles[0]).has_value());
  EXPECT_FALSE(chain.receipt(handles[2]).has_value());
  EXPECT_GT(chain.pending_count(), 0u);
  chain.mine_block(2'000);
  chain.mine_block(3'000);
  EXPECT_TRUE(chain.receipt(handles[2]).has_value());
  EXPECT_TRUE(chain.receipt(handles[2])->success);
}

TEST(OutOfGasHandling, GasLimitExceededFailsButCharges) {
  Blockchain chain;
  const Address contract =
      chain.deploy(std::make_unique<RlnMembershipContract>(1'000'000));
  const Address user = Address::from_u64(0xDD);
  chain.create_account(user, 10 * kGweiPerEth);

  Transaction tx;
  tx.from = user;
  tx.to = contract;
  tx.method = "register";
  tx.calldata = hash::poseidon1(Fr::one()).to_bytes_be();
  tx.value = 1'000'000;
  tx.gas_limit = 30'000;  // below the ~65k a first registration needs
  const auto h = chain.submit(std::move(tx));
  chain.mine_block(1'000);
  const TxReceipt r = *chain.receipt(h);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "out of gas");
  EXPECT_GT(r.fee_paid, 0u);
  // State rolled back: no member registered, deposit refunded.
  EXPECT_EQ(
      chain.contract_at<RlnMembershipContract>(contract).member_count_view(),
      0u);
}

}  // namespace
}  // namespace waku::chain
