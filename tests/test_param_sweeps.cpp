// Parameterized property sweeps across configuration space: gossipsub
// mesh parameters, RLN circuit depths, and epoch lengths — the knobs a
// deployment would actually turn.
#include <gtest/gtest.h>

#include <memory>

#include "gossipsub/router.hpp"
#include "rln/harness.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku {
namespace {

// --- gossipsub mesh-degree sweep: delivery must hold at every D ---------

struct MeshParams {
  std::size_t mesh_n;
  std::size_t mesh_n_low;
  std::size_t mesh_n_high;
};

class GossipMeshSweep : public ::testing::TestWithParam<MeshParams> {};

TEST_P(GossipMeshSweep, FullDeliveryAcrossMeshDegrees) {
  const MeshParams p = GetParam();
  gossipsub::GossipSubConfig config;
  config.mesh_n = p.mesh_n;
  config.mesh_n_low = p.mesh_n_low;
  config.mesh_n_high = p.mesh_n_high;

  net::Simulator sim;
  net::Network net(sim, {.base_latency_ms = 20, .jitter_ms = 10,
                         .loss_rate = 0}, 0x5EED);
  std::vector<std::unique_ptr<gossipsub::GossipSubRouter>> routers;
  std::vector<std::uint64_t> delivered(25, 0);
  for (std::size_t i = 0; i < 25; ++i) {
    routers.push_back(std::make_unique<gossipsub::GossipSubRouter>(
        net, config, gossipsub::PeerScoreConfig{}, 900 + i));
  }
  Rng rng(0x5EED2);
  net.connect_random(std::max<std::size_t>(p.mesh_n, 4), rng);
  for (std::size_t i = 0; i < 25; ++i) {
    routers[i]->subscribe("t", [&delivered, i](const gossipsub::PubSubMessage&) {
      ++delivered[i];
    });
    routers[i]->start();
  }
  sim.run_until(5'000);

  routers[0]->publish("t", to_bytes("sweep"));
  sim.run_until(sim.now() + 15'000);

  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(delivered[i], 1u) << "node " << i << " at D=" << p.mesh_n;
  }
  // Mesh sizes respect the configured bounds.
  for (const auto& r : routers) {
    EXPECT_LE(r->mesh_peers("t").size(), p.mesh_n_high);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Degrees, GossipMeshSweep,
    ::testing::Values(MeshParams{2, 1, 4}, MeshParams{4, 3, 8},
                      MeshParams{6, 4, 12}, MeshParams{10, 8, 16}));

// --- RLN circuit depth sweep: prove/verify complete at every depth -------

class RlnDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RlnDepthSweep, ProveVerifyRoundTrip) {
  const std::size_t depth = GetParam();
  Rng rng(0xDE9 + depth);
  const rln::Identity id = rln::Identity::generate(rng);
  merkle::IncrementalMerkleTree tree(depth);
  const std::uint64_t index = tree.insert(id.pk);

  zksnark::RlnProverInput input;
  input.sk = id.sk;
  input.path = tree.auth_path(index);
  input.x = ff::Fr::random(rng);
  input.epoch = ff::Fr::from_u64(1234);
  zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
  const zksnark::Keypair& kp = zksnark::rln_keypair(depth);
  const zksnark::Proof proof =
      zksnark::prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
  EXPECT_TRUE(zksnark::verify(kp.vk, c.publics.to_vector(), proof));

  // And soundness: flip each public input in turn.
  for (std::size_t field = 0; field < 5; ++field) {
    auto bad = c.publics.to_vector();
    bad[field] += ff::Fr::one();
    EXPECT_FALSE(zksnark::verify(kp.vk, bad, proof)) << "field " << field;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, RlnDepthSweep,
                         ::testing::Values(1u, 2u, 4u, 12u, 24u));

// --- epoch-length sweep: the rate limit tracks T exactly -----------------

class EpochLengthSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EpochLengthSweep, OneMessagePerEpochWhateverT) {
  const std::uint64_t t_ms = GetParam();
  rln::HarnessConfig cfg;
  cfg.num_nodes = 4;
  cfg.degree = 3;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 8;
  cfg.node.validator.epoch.epoch_length_ms = t_ms;
  rln::RlnHarness h(cfg);
  h.register_all();
  h.run_ms(1'000);

  // Publish attempts every T/2: exactly every other attempt must pass.
  std::size_t ok = 0;
  std::size_t limited = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto status = h.node(0).try_publish(
        to_bytes("a" + std::to_string(attempt)));
    if (status == rln::WakuRlnRelayNode::PublishStatus::kOk) ++ok;
    if (status == rln::WakuRlnRelayNode::PublishStatus::kRateLimited) {
      ++limited;
    }
    h.run_ms(t_ms / 2);
  }
  EXPECT_GE(ok, 3u);
  EXPECT_GE(limited, 3u);
  EXPECT_EQ(ok + limited, 8u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, EpochLengthSweep,
                         ::testing::Values(2'000u, 10'000u, 30'000u));

}  // namespace
}  // namespace waku
