// Live reshard engine tests: split-map refinement, the cutover phase
// machine, dual-generation nullifier enforcement through the shared
// domain log, load-driven rebalance recommendations, node-level quota
// migration across drop-old, and the full 4-node campaign (honest
// delivery, zero quota doubling, overlap attacker slashed).
#include <gtest/gtest.h>

#include <set>

#include "hash/poseidon.hpp"
#include "rln/harness.hpp"
#include "shard/reshard.hpp"
#include "sim/scenario.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::shard {
namespace {

using ff::Fr;
using ff::U256;
using rln::EpochConfig;
using rln::GroupManager;
using rln::Identity;
using rln::TreeMode;
using rln::ValidationPipeline;
using rln::ValidatorConfig;
using rln::Verdict;
using rln::WakuRlnRelayNode;

// -- ShardMap::split ---------------------------------------------------------

TEST(ShardMapSplit, RefinesParentAssignment) {
  const ShardMap old_map(4, 7);
  const ShardMap new_map = old_map.split(2);
  EXPECT_EQ(new_map.num_shards(), 8);
  EXPECT_EQ(new_map.generation(), 8u);
  EXPECT_TRUE(new_map.is_split());
  ASSERT_NE(new_map.parent(), nullptr);
  EXPECT_EQ(*new_map.parent(), old_map);

  std::set<ShardId> sub_slots_used;
  for (int i = 0; i < 200; ++i) {
    const std::string topic = "/waku/2/app-" + std::to_string(i) + "/proto";
    const ShardId old_shard = old_map.shard_of(topic);
    const ShardId new_shard = new_map.shard_of(topic);
    // The refinement guarantee the cutover's local enforceability
    // depends on: a topic never leaves its old shard's family.
    EXPECT_EQ(new_shard % old_map.num_shards(), old_shard) << topic;
    sub_slots_used.insert(new_shard);
  }
  // Both halves of the families actually get used (the split spreads).
  EXPECT_GT(sub_slots_used.size(), 4u);
}

TEST(ShardMapSplit, FlatReshardDoesNotRefine) {
  // Control: the config-driven flat re-key moves topics across families
  // (fine offline, not usable for a live cutover).
  const ShardMap old_map(4, 0);
  const ShardMap flat = old_map.resharded(8);
  bool left_family = false;
  for (int i = 0; i < 200 && !left_family; ++i) {
    const std::string topic = "/waku/2/app-" + std::to_string(i) + "/proto";
    left_family =
        flat.shard_of(topic) % old_map.num_shards() != old_map.shard_of(topic);
  }
  EXPECT_TRUE(left_family);
}

TEST(ShardMapSplit, SerializeRoundTripsLineage) {
  const ShardMap map = ShardMap(2, 3).split(2).split(4);
  const ShardMap back = ShardMap::deserialize(map.serialize());
  EXPECT_EQ(back, map);
  for (int i = 0; i < 50; ++i) {
    const std::string topic = "/t" + std::to_string(i);
    EXPECT_EQ(back.shard_of(topic), map.shard_of(topic));
  }
  // A flat map at the same (num_shards, generation) is NOT equal: its
  // assignment differs.
  EXPECT_FALSE(ShardMap(16, 5) == map);
}

// -- ReshardCoordinator phase machine ----------------------------------------

TEST(ReshardCoordinator, PhaseMachineAndLinger) {
  ShardConfig cfg;
  cfg.num_shards = 2;
  cfg.subscribe = {0};
  ReshardCoordinator coord(cfg);
  EXPECT_EQ(coord.phase(), ReshardPhase::kStable);
  EXPECT_FALSE(coord.advance());

  // Invalid targets: not a multiple / not larger / foreign family.
  EXPECT_FALSE(coord.begin(3, {}));
  EXPECT_FALSE(coord.begin(2, {}));
  // New home 1 has family 1 mod 2 = 1, which this node does not host.
  EXPECT_FALSE(coord.begin(4, {1}));

  // New homes 0 and 2 both refine old home 0.
  ASSERT_TRUE(coord.begin(4, {0, 2}));
  EXPECT_EQ(coord.phase(), ReshardPhase::kAnnounce);
  EXPECT_EQ(coord.next_config().generation, 1u);
  EXPECT_FALSE(coord.begin(8, {}));  // one cutover at a time

  ASSERT_TRUE(coord.advance());  // overlap
  EXPECT_EQ(coord.phase(), ReshardPhase::kOverlap);
  EXPECT_NE(coord.domain_log("/any/topic"), nullptr);
  ASSERT_TRUE(coord.advance());  // drain
  EXPECT_TRUE(coord.next_generation_authoritative());
  ASSERT_TRUE(coord.advance(/*linger_until_epoch=*/20));  // drop-old
  EXPECT_EQ(coord.phase(), ReshardPhase::kStable);
  EXPECT_EQ(coord.current_map().num_shards(), 4);
  EXPECT_EQ(coord.current_map().generation(), 1u);

  // Domain routing lingers: a straggler from a still-draining peer must
  // keep debiting the shared quota until the epoch gate retires the era.
  // Expiry is owner-driven (the node journals it), not a gc side effect.
  EXPECT_TRUE(coord.lingering());
  EXPECT_NE(coord.domain_log("/any/topic"), nullptr);
  EXPECT_FALSE(coord.begin(8, {}));  // blocked while lingering
  coord.gc(/*current_epoch=*/20, /*thr=*/2);
  EXPECT_FALSE(coord.linger_expired(20));  // 20 is not past the window
  EXPECT_TRUE(coord.lingering());
  EXPECT_TRUE(coord.linger_expired(21));
  coord.end_linger();
  EXPECT_FALSE(coord.lingering());
  EXPECT_EQ(coord.domain_log("/any/topic"), nullptr);
  // The next cutover may start now — subscribe-all is still refused
  // (homes 1/3/5/7 would not refine this node's {0, 2}), a refining
  // subset is accepted.
  EXPECT_FALSE(coord.begin(8, {}));
  EXPECT_TRUE(coord.begin(8, {0, 2, 4, 6}));
}

TEST(ReshardCoordinator, SerializeRestoresMidCutover) {
  ShardConfig cfg;
  cfg.num_shards = 2;
  ReshardCoordinator coord(cfg);
  ASSERT_TRUE(coord.begin(4, {}));
  ASSERT_TRUE(coord.advance());  // overlap
  const sss::Share share{Fr::from_u64(5), Fr::from_u64(6)};
  coord.inject_domain_observation(1, 42, Fr::from_u64(9), share, 77);
  ASSERT_EQ(coord.domain_entries(), 1u);

  ReshardCoordinator restored(ShardConfig{});
  restored.restore(coord.serialize());
  EXPECT_EQ(restored.phase(), ReshardPhase::kOverlap);
  EXPECT_EQ(restored.next_map(), coord.next_map());
  EXPECT_EQ(restored.domain_entries(), 1u);
  EXPECT_EQ(restored.current_config().num_shards, 2);
}

// -- Dual-generation enforcement through the shared domain log ---------------

constexpr std::size_t kDepth = 8;

struct CutoverPipelines : ::testing::Test {
  GroupManager group{kDepth, TreeMode::kFullTree};
  Rng rng{991};
  Identity mallory = Identity::generate(rng);
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 1000},
                       .max_epoch_gap = 2};
  ReshardCoordinator coord{[] {
    ShardConfig cfg;
    cfg.num_shards = 2;
    return cfg;
  }()};

  void SetUp() override {
    chain::Event ev;
    ev.name = "MemberRegistered";
    ev.topics = {U256{0}, mallory.pk.to_u256()};
    group.on_event(ev);
    ASSERT_TRUE(coord.begin(4, {}));
    ASSERT_TRUE(coord.advance());  // overlap: domain routing live
  }

  [[nodiscard]] ValidationPipeline make_pipeline(std::uint64_t seed) {
    ValidationPipeline p(zksnark::rln_keypair(kDepth).vk, group, vcfg, seed);
    p.set_log_selector([this](const WakuMessage& msg) {
      return coord.domain_log(msg.content_topic);
    });
    return p;
  }

  WakuMessage make_message(const std::string& body, std::uint64_t epoch,
                           const std::string& topic) {
    WakuMessage msg;
    msg.payload = to_bytes(body);
    msg.content_topic = topic;
    zksnark::RlnProverInput input;
    input.sk = mallory.sk;
    input.path = group.path_of(0);
    input.x = rln::message_hash(msg);
    input.epoch = Fr::from_u64(epoch);
    zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    rln::RateLimitProof bundle;
    bundle.share_x = c.publics.x;
    bundle.share_y = c.publics.y;
    bundle.nullifier = c.publics.nullifier;
    bundle.epoch = epoch;
    bundle.root = c.publics.root;
    bundle.proof =
        zksnark::prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
    rln::attach_proof(msg, bundle);
    return msg;
  }
};

TEST_F(CutoverPipelines, CrossGenerationPairIsOneSignalAndSlashes) {
  // One pipeline per generation's mesh of the same topic — the situation
  // every dual-subscribed node is in during overlap.
  ValidationPipeline old_gen = make_pipeline(11);
  ValidationPipeline new_gen = make_pipeline(22);
  const std::string topic = "/waku/2/app-0/proto";

  const WakuMessage on_old = make_message("half on old mesh", 10, topic);
  const WakuMessage on_new = make_message("half on new mesh", 10, topic);

  EXPECT_EQ(old_gen.validate_one(on_old, 10'500).verdict, Verdict::kAccept);
  // Same member, same epoch, other generation's mesh: the shared domain
  // log sees the double-signal and recovers the attacker's sk.
  const rln::ValidationOutcome second = new_gen.validate_one(on_new, 10'500);
  EXPECT_EQ(second.verdict, Verdict::kRejectSpam);
  ASSERT_TRUE(second.recovered_sk.has_value());
  EXPECT_EQ(*second.recovered_sk, mallory.sk);
}

TEST_F(CutoverPipelines, SameMessageOnBothMeshesIsDuplicateNotSpam) {
  ValidationPipeline old_gen = make_pipeline(11);
  ValidationPipeline new_gen = make_pipeline(22);
  const std::string topic = "/waku/2/app-1/proto";
  const WakuMessage msg = make_message("published on both", 10, topic);

  EXPECT_EQ(old_gen.validate_one(msg, 10'500).verdict, Verdict::kAccept);
  // A publisher (or relayer) bridging the same bytes onto the other
  // generation's mesh is ONE signal — dropped silently, never slashed.
  EXPECT_EQ(new_gen.validate_one(msg, 10'500).verdict,
            Verdict::kIgnoreDuplicate);
  // And the accepted copy was write-through mirrored into the accepting
  // pipeline's own log (survives the end of the linger window).
  EXPECT_EQ(old_gen.log().entry_count(), 1u);
  EXPECT_EQ(new_gen.log().entry_count(), 0u);
}

TEST_F(CutoverPipelines, DifferentDomainsStayIsolated) {
  // Topics on different OLD shards are different rate-limit domains even
  // during the cutover: same member, same epoch, two domains -> two
  // independent first signals (cross-shard isolation, invariant 3).
  ValidationPipeline pipeline = make_pipeline(33);
  const ShardMap& old_map = coord.current_map();
  std::string topic_a;
  std::string topic_b;
  for (std::uint64_t i = 0;; ++i) {
    std::string t = "/waku/2/iso-" + std::to_string(i) + "/proto";
    if (topic_a.empty() && old_map.shard_of(t) == 0) topic_a = std::move(t);
    else if (topic_b.empty() && old_map.shard_of(t) == 1) topic_b = std::move(t);
    if (!topic_a.empty() && !topic_b.empty()) break;
  }
  const WakuMessage a = make_message("domain a", 10, topic_a);
  const WakuMessage b = make_message("domain b", 10, topic_b);
  EXPECT_EQ(pipeline.validate_one(a, 10'500).verdict, Verdict::kAccept);
  EXPECT_EQ(pipeline.validate_one(b, 10'500).verdict, Verdict::kAccept);
}

// -- ShardLoadTracker --------------------------------------------------------

TEST(ShardLoadTracker, RecommendsSplitOnOverloadAndSizesCost) {
  ShardLoadTracker::Config cfg;
  cfg.window_ms = 10'000;
  cfg.overload_msgs_per_sec = 100.0;
  ShardLoadTracker tracker(cfg);
  const ShardMap map(4, 0);

  // Shard 1 runs at 350 msgs/sec, the others idle along at 10.
  for (const ShardId s : map.all_shards()) {
    tracker.record(s, 0, 100, 0);
    tracker.record(s, s == 1 ? 3'500 : 100, 100, 10'000);
  }
  EXPECT_NEAR(tracker.rate_msgs_per_sec(1), 350.0, 1.0);

  std::vector<std::string> topics;
  for (int i = 0; i < 64; ++i) {
    topics.push_back("/waku/2/app-" + std::to_string(i) + "/proto");
  }
  const RebalanceRecommendation rec = tracker.recommend(map, topics);
  EXPECT_TRUE(rec.reshard_recommended);
  EXPECT_EQ(rec.current_shards, 4);
  // 350/s over budget 100/s: a 2x split leaves ~175/s, 4x fits.
  EXPECT_EQ(rec.target_shards, 16);
  EXPECT_GT(rec.skew, 3.0);
  // Splitting moves the (1 - 1/factor) of topics whose sub-slot is not 0.
  EXPECT_GT(rec.predicted_moved_topics, 0u);
  EXPECT_LT(rec.predicted_moved_topics, topics.size());
  EXPECT_NE(rec.to_json().find("\"reshard_recommended\": true"),
            std::string::npos);
}

TEST(ShardLoadTracker, BalancedLoadRecommendsNothing) {
  ShardLoadTracker::Config cfg;
  cfg.overload_msgs_per_sec = 100.0;
  ShardLoadTracker tracker(cfg);
  const ShardMap map(4, 0);
  for (const ShardId s : map.all_shards()) {
    tracker.record(s, 0, 10, 0);
    tracker.record(s, 400, 10, 10'000);  // 40/s everywhere
  }
  const RebalanceRecommendation rec = tracker.recommend(map);
  EXPECT_FALSE(rec.reshard_recommended);
  EXPECT_EQ(rec.target_shards, 4);
}

TEST(ShardLoadTracker, LatencyPressureAloneRecommendsReshard) {
  // The node feeds each shard's p95 whole-window validation latency from
  // its pipeline latency histograms (rln/node.cpp upkeep tick). A shard
  // past the p95 budget must trip the recommendation even when its
  // throughput fits comfortably inside the msgs/sec budget.
  ShardLoadTracker::Config cfg;
  cfg.overload_msgs_per_sec = 1'000.0;  // throughput nowhere near the cap
  cfg.p95_budget_ms = 250.0;
  ShardLoadTracker tracker(cfg);
  const ShardMap map(4, 0);
  for (const ShardId s : map.all_shards()) {
    tracker.record(s, 0, 10, 0, /*p95_validate_ms=*/0.0);
    // Shard 2's Groth16 windows run slow (400ms p95); the rest are fine.
    tracker.record(s, 100, 10, 10'000, s == 2 ? 400.0 : 30.0);
  }
  EXPECT_DOUBLE_EQ(tracker.p95_validate_ms(2), 400.0);
  EXPECT_DOUBLE_EQ(tracker.p95_validate_ms(0), 30.0);

  const RebalanceRecommendation rec = tracker.recommend(map);
  EXPECT_TRUE(rec.reshard_recommended);
  EXPECT_DOUBLE_EQ(rec.max_p95_validate_ms, 400.0);
  EXPECT_NE(rec.reason.find("latency"), std::string::npos);
  EXPECT_NE(rec.to_json().find("\"max_p95_validate_ms\": 400.00"),
            std::string::npos);

  // Telemetry not wired (p95 == 0 everywhere) must never trip the
  // latency trigger — 0 means "unknown", not "instant".
  ShardLoadTracker cold(cfg);
  for (const ShardId s : map.all_shards()) {
    cold.record(s, 0, 10, 0);
    cold.record(s, 100, 10, 10'000);
  }
  EXPECT_FALSE(cold.recommend(map).reshard_recommended);
}

// -- Node-level cutover ------------------------------------------------------

rln::HarnessConfig reshard_harness_config() {
  rln::HarnessConfig cfg;
  cfg.num_nodes = 4;
  cfg.degree = 3;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 30'000;
  cfg.node.shards.num_shards = 2;
  cfg.seed = 0x2E5A;
  return cfg;
}

TEST(NodeLiveReshard, QuotaSurvivesDropOldReKeying) {
  // The self-quota must hold ACROSS the drop-old key-space switch: a
  // node that published in epoch e before drop-old must not be allowed a
  // second same-epoch publish after it (it would double-signal against
  // itself on the shared domain log).
  rln::RlnHarness h(reshard_harness_config());
  h.register_all();
  h.run_ms(2'000);

  WakuRlnRelayNode& node = h.node(0);
  const ShardMap old_map = node.shard_map();
  const std::string topic = content_topic_for_shard(old_map, 0);

  ASSERT_TRUE(node.begin_reshard(4));
  for (std::size_t i = 1; i < h.size(); ++i) h.node(i).begin_reshard(4);
  ASSERT_EQ(node.reshard_phase(), ReshardPhase::kAnnounce);
  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  ASSERT_EQ(node.reshard_phase(), ReshardPhase::kOverlap);
  h.run_ms(2'000);

  ASSERT_EQ(node.try_publish(to_bytes("during overlap"), topic),
            WakuRlnRelayNode::PublishStatus::kOk);
  EXPECT_EQ(node.try_publish(to_bytes("again, same epoch"), topic),
            WakuRlnRelayNode::PublishStatus::kRateLimited);

  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  ASSERT_EQ(node.reshard_phase(), ReshardPhase::kDrain);
  // New generation authoritative, same epoch, same domain: still blocked.
  EXPECT_EQ(node.try_publish(to_bytes("during drain"), topic),
            WakuRlnRelayNode::PublishStatus::kRateLimited);

  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  ASSERT_EQ(node.reshard_phase(), ReshardPhase::kStable);
  EXPECT_EQ(node.shard_map().num_shards(), 4);
  EXPECT_EQ(node.shard_map().generation(), old_map.generation() + 1);
  // Post drop-old, the conservative quota merge still blocks this epoch
  // on every new shard.
  EXPECT_EQ(node.try_publish(to_bytes("after drop-old"), topic),
            WakuRlnRelayNode::PublishStatus::kRateLimited);

  // Next epoch: the quota frees up on the new layout.
  h.run_ms(h.config().node.validator.epoch.epoch_length_ms);
  EXPECT_EQ(node.try_publish(to_bytes("next epoch"), topic),
            WakuRlnRelayNode::PublishStatus::kOk);
}

TEST(NodeLiveReshard, LingerQuotaStaysDomainKeyed) {
  // While validators still enforce the shared old-generation domain log
  // (the post-drop-old linger), the publish quota must be keyed by the
  // DOMAIN, not the new shard: two sibling new shards of one old family
  // share a nullifier stream, so a second same-epoch publish would be a
  // self-double-signal — the node must refuse it itself.
  rln::RlnHarness h(reshard_harness_config());
  h.register_all();
  h.run_ms(2'000);
  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(h.node(i).begin_reshard(4));
  }
  for (int step = 0; step < 3; ++step) {
    for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  }
  WakuRlnRelayNode& node = h.node(0);
  ASSERT_EQ(node.reshard_phase(), shard::ReshardPhase::kStable);
  ASSERT_TRUE(node.reshard().lingering());
  // Let the drop-old quota era pass so fresh publishes are allowed.
  h.run_ms(h.config().node.validator.epoch.epoch_length_ms);

  // Two topics on sibling NEW shards (0 and 2) of old family 0.
  const shard::ShardMap& new_map = node.shard_map();
  std::string topic_a;
  std::string topic_b;
  for (std::uint64_t i = 0; topic_a.empty() || topic_b.empty(); ++i) {
    std::string t = "/waku/2/sib-" + std::to_string(i) + "/proto";
    const shard::ShardId s = new_map.shard_of(t);
    if (s == 0 && topic_a.empty()) topic_a = std::move(t);
    else if (s == 2 && topic_b.empty()) topic_b = std::move(t);
  }
  ASSERT_EQ(node.try_publish(to_bytes("family signal"), topic_a),
            WakuRlnRelayNode::PublishStatus::kOk);
  EXPECT_EQ(node.try_publish(to_bytes("sibling, same epoch"), topic_b),
            WakuRlnRelayNode::PublishStatus::kRateLimited);

  // Once the linger expires (Thr+1 epochs; upkeep journals the expiry)
  // the shards really are independent rate-limit domains again.
  h.run_ms(5 * h.config().node.validator.epoch.epoch_length_ms);
  ASSERT_FALSE(h.node(0).reshard().lingering());
  ASSERT_EQ(node.try_publish(to_bytes("a, fresh epoch"), topic_a),
            WakuRlnRelayNode::PublishStatus::kOk);
  EXPECT_EQ(node.try_publish(to_bytes("b, same epoch, own shard"), topic_b),
            WakuRlnRelayNode::PublishStatus::kOk);
}

TEST(NodeLiveReshard, DeliveryAcrossCutoverMeshes) {
  // A message published during overlap (old mesh) and one published
  // after drop-old (new mesh) both reach a peer hosting the topic's
  // shard under the respective generation.
  rln::RlnHarness h(reshard_harness_config());
  h.register_all();
  h.run_ms(2'000);

  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(h.node(i).begin_reshard(4));
  }
  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  h.run_ms(4'000);  // heartbeats: new-generation meshes form

  const std::string topic =
      content_topic_for_shard(h.node(0).shard_map(), 0);
  std::uint64_t delivered_before = h.total_delivered();
  ASSERT_EQ(h.node(0).try_publish(to_bytes("overlap publish"), topic),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(4'000);
  EXPECT_GT(h.total_delivered(), delivered_before);

  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  for (std::size_t i = 0; i < h.size(); ++i) h.node(i).advance_reshard();
  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_EQ(h.node(i).reshard_phase(), ReshardPhase::kStable);
    ASSERT_EQ(h.node(i).shard_map().num_shards(), 4);
  }
  h.run_ms(h.config().node.validator.epoch.epoch_length_ms);

  delivered_before = h.total_delivered();
  ASSERT_EQ(h.node(0).try_publish(to_bytes("post-cutover publish"), topic),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(4'000);
  EXPECT_GT(h.total_delivered(), delivered_before);
}

// -- Full campaign -----------------------------------------------------------

TEST(LiveReshardCampaign, CutoverUnderLoadWithOverlapFlooder) {
  sim::LiveReshardConfig cfg;
  cfg.harness.num_nodes = 12;
  cfg.harness.degree = 4;
  cfg.harness.block_interval_ms = 4'000;
  cfg.harness.node.tree_depth = 10;
  cfg.harness.node.validator.epoch.epoch_length_ms = 10'000;
  cfg.harness.node.gossip.validation_batch_max = 8;
  cfg.harness.node.shards.num_shards = 2;
  cfg.harness.seed = 0x11FE;
  cfg.target_shards = 4;
  cfg.warmup_ms = 10'000;
  cfg.announce_ms = 3'000;
  cfg.overlap_ms = 14'000;
  cfg.drain_phase_ms = 6'000;
  cfg.settle_ms = 10'000;
  cfg.flood_pairs_per_epoch = 2;

  const sim::LiveReshardOutcome out = sim::run_live_reshard_campaign(cfg);

  EXPECT_TRUE(out.all_nodes_converged);
  EXPECT_GT(out.honest_sent, 0u);
  EXPECT_GE(out.honest_delivery, 0.99);
  // The migration invariant: no (node, epoch) ever accepted both halves
  // of an attacker's cross-generation pair.
  EXPECT_EQ(out.quota_double_deliveries, 0u);
  EXPECT_GT(out.spam_pairs_sent, 0u);
  EXPECT_TRUE(out.attacker_slashed);
  EXPECT_TRUE(out.rebalance_was_recommended);
  EXPECT_GT(out.cutover_duration_ms, 0u);
  // The verdict JSON carries the containment fields.
  const std::string json = out.to_json();
  EXPECT_NE(json.find("\"quota_double_deliveries\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"attacker_slashed\": true"), std::string::npos);
}

// -- Autonomous operator loop ------------------------------------------------

TEST(OperatorSubscription, RefinedSubscriptionIsValidSplitInput) {
  ShardConfig current;
  current.num_shards = 4;
  current.subscribe = {1, 3};
  // Each old home keeps its lowest family member — begin() accepts it.
  EXPECT_EQ(refined_subscription(current, 8), (std::vector<ShardId>{1, 3}));
  ReshardCoordinator coord(current);
  EXPECT_TRUE(coord.begin(8, refined_subscription(current, 8)));

  ShardConfig all;
  all.num_shards = 2;  // empty subscribe = all shards
  EXPECT_TRUE(refined_subscription(all, 4).empty());
  ReshardCoordinator coord_all(all);
  EXPECT_TRUE(coord_all.begin(4, refined_subscription(all, 4)));
}

TEST(OperatorLoopCampaign, HotspotSplitsAutonomously) {
  // The acceptance demo: 24 nodes all homed on ONE shard under sustained
  // honest load. Nobody calls begin_reshard — every node's own operator
  // loop must trip on its load tracker, journal the decision, and walk
  // announce/overlap/drain/drop-old to a converged 2-shard fleet, while
  // an overlap attacker probes for quota doubling.
  sim::OperatorHotspotConfig cfg;
  cfg.harness.num_nodes = 24;
  cfg.harness.degree = 5;
  cfg.harness.block_interval_ms = 4'000;
  cfg.harness.node.tree_depth = 10;
  cfg.harness.node.validator.epoch.epoch_length_ms = 5'000;
  cfg.harness.node.gossip.validation_batch_max = 8;
  cfg.harness.node.shards.num_shards = 1;
  cfg.harness.seed = 0x0F5E;
  cfg.target_shards = 2;
  cfg.max_epochs = 30;
  cfg.flood_pairs_per_epoch = 2;

  const sim::OperatorHotspotOutcome out =
      sim::run_operator_hotspot_campaign(cfg);

  EXPECT_TRUE(out.operator_triggered);
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.to_shards, 2);
  // One clean cutover fleet-wide: every node logged exactly one begin
  // plus three advances — no re-triggers, no stragglers.
  EXPECT_EQ(out.operator_decisions, 4u * 24u);
  // Bounded convergence: trigger -> converged within the dwell budget
  // (3 phases x 2 epochs) plus scheduling slack.
  EXPECT_LE(out.epochs_to_converge, 10u);
  EXPECT_GT(out.honest_sent, 0u);
  EXPECT_EQ(out.honest_delivery, 1.0);
  EXPECT_EQ(out.quota_double_deliveries, 0u);
  EXPECT_GT(out.spam_pairs_sent, 0u);
  EXPECT_TRUE(out.attacker_slashed);
  // The fleet plane saw the campaign: per-epoch rows plus node 0's
  // flight-recorder postmortem with its operator decisions.
  EXPECT_NE(out.fleet_timeline_json, "[]");
  EXPECT_NE(out.postmortem_json.find("\"kind\":\"operator\""),
            std::string::npos);
  EXPECT_NE(out.postmortem_json.find("\"kind\":\"reshard\""),
            std::string::npos);
}

}  // namespace
}  // namespace waku::shard
