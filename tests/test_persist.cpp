// Tests for the durable-state subsystem: WAL framing + torn-tail
// truncation, atomic snapshot generations, and the StateStore facade's
// snapshot/compaction policy and LSN-filtered replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/serde.hpp"
#include "persist/crc32.hpp"
#include "persist/state_store.hpp"

namespace waku::persist {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "waku_persist_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Bytes bytes_of(const std::string& s) { return to_bytes(s); }

std::uint64_t file_size(const fs::path& p) {
  return static_cast<std::uint64_t>(fs::file_size(p));
}

void append_raw(const fs::path& p, BytesView garbage) {
  std::ofstream out(p, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(garbage.data()),
            static_cast<std::streamsize>(garbage.size()));
}

TEST(Crc32, KnownVectorsAndSensitivity) {
  // CRC-32C("123456789") is the classic check value.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(Bytes{}), 0u);
  Bytes a = bytes_of("payload");
  const std::uint32_t before = crc32c(a);
  a[0] ^= 1;
  EXPECT_NE(crc32c(a), before);
}

TEST(Wal, AppendReplayRoundTrip) {
  const fs::path dir = fresh_dir("wal_roundtrip");
  const std::string path = (dir / "wal.log").string();
  {
    WriteAheadLog wal(path);
    EXPECT_EQ(wal.append(1, bytes_of("first")), 1u);
    EXPECT_EQ(wal.append(2, bytes_of("second")), 2u);
    EXPECT_EQ(wal.append(1, bytes_of("")), 3u);
    EXPECT_EQ(wal.record_count(), 3u);
  }
  WriteAheadLog reopened(path);
  EXPECT_EQ(reopened.record_count(), 3u);
  EXPECT_EQ(reopened.last_lsn(), 3u);
  EXPECT_EQ(reopened.torn_bytes_dropped(), 0u);

  std::vector<WalRecord> records;
  reopened.replay([&](const WalRecord& r) { records.push_back(r); });
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, 1u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].payload, bytes_of("first"));
  EXPECT_EQ(records[1].type, 2u);
  EXPECT_EQ(records[1].payload, bytes_of("second"));
  EXPECT_TRUE(records[2].payload.empty());
  // Untagged appends carry shard 0 (the unsharded-owner convention).
  EXPECT_EQ(records[0].shard, 0u);
}

TEST(Wal, ShardTagsSurviveRestart) {
  // Sharded owners stamp records with the owning relay shard; the tag must
  // round-trip the on-disk format so a restart can rebuild each shard's
  // state independently.
  const fs::path dir = fresh_dir("wal_shard_tags");
  const std::string path = (dir / "wal.log").string();
  {
    WriteAheadLog wal(path);
    wal.append(1, bytes_of("s0"), /*shard=*/0);
    wal.append(1, bytes_of("s3"), /*shard=*/3);
    wal.append(2, bytes_of("s7"), /*shard=*/7);
  }
  WriteAheadLog reopened(path);
  std::vector<WalRecord> records;
  reopened.replay([&](const WalRecord& r) { records.push_back(r); });
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].shard, 0u);
  EXPECT_EQ(records[1].shard, 3u);
  EXPECT_EQ(records[1].payload, bytes_of("s3"));
  EXPECT_EQ(records[2].shard, 7u);
  EXPECT_EQ(records[2].type, 2u);
}

TEST(Wal, TornTailTruncatedAtEveryCutPoint) {
  // A crash can cut the file anywhere. For every possible truncation
  // length, reopening must keep exactly the records whose bytes fully
  // survived and drop the rest — never throw, never resurrect garbage.
  const fs::path dir = fresh_dir("wal_torn");
  const std::string path = (dir / "wal.log").string();
  std::vector<std::uint64_t> record_ends;  // file size after each append
  {
    WriteAheadLog wal(path);
    for (int i = 0; i < 4; ++i) {
      wal.append(7, bytes_of("record-" + std::to_string(i)));
      record_ends.push_back(wal.size_bytes());
    }
  }
  const std::uint64_t full = file_size(path);
  const Bytes original = [&] {
    std::ifstream in(path, std::ios::binary);
    return Bytes{std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>()};
  }();

  for (std::uint64_t cut = 5; cut <= full; ++cut) {
    // Restore the original bytes, then cut at `cut`.
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(original.data()),
                static_cast<std::streamsize>(cut));
    }
    WriteAheadLog wal(path);
    std::size_t expected = 0;
    for (const std::uint64_t end : record_ends) {
      if (end <= cut) ++expected;
    }
    EXPECT_EQ(wal.record_count(), expected) << "cut at " << cut;
    // The torn bytes are physically gone: appending after a torn open
    // must produce a parseable log.
    wal.append(9, bytes_of("after-crash"));
    std::size_t replayed = 0;
    wal.replay([&](const WalRecord&) { ++replayed; });
    EXPECT_EQ(replayed, expected + 1) << "cut at " << cut;
  }
}

TEST(Wal, CorruptRecordDropsItAndEverythingAfter) {
  const fs::path dir = fresh_dir("wal_corrupt");
  const std::string path = (dir / "wal.log").string();
  std::uint64_t first_end = 0;
  {
    WriteAheadLog wal(path);
    wal.append(1, bytes_of("good"));
    first_end = wal.size_bytes();
    wal.append(1, bytes_of("to-be-corrupted"));
    wal.append(1, bytes_of("unreachable"));
  }
  // Flip one payload byte of the middle record.
  {
    std::ifstream in(path, std::ios::binary);
    Bytes file{std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>()};
    in.close();
    file.at(first_end + 8 + 1 + 8 + 2) ^= 1;  // header(8) type(1) lsn(8) + 2
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
  }
  WriteAheadLog wal(path);
  EXPECT_EQ(wal.record_count(), 1u);
  EXPECT_GT(wal.torn_bytes_dropped(), 0u);
  std::vector<Bytes> payloads;
  wal.replay([&](const WalRecord& r) { payloads.push_back(r.payload); });
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], bytes_of("good"));
}

TEST(Wal, TrailingGarbageAfterValidRecordsIsDropped) {
  const fs::path dir = fresh_dir("wal_garbage");
  const std::string path = (dir / "wal.log").string();
  {
    WriteAheadLog wal(path);
    wal.append(1, bytes_of("keep-me"));
  }
  append_raw(path, bytes_of("\xFF\xFF\xFF\xFF partial header junk"));
  WriteAheadLog wal(path);
  EXPECT_EQ(wal.record_count(), 1u);
  EXPECT_GT(wal.torn_bytes_dropped(), 0u);
}

TEST(Wal, LsnsSurviveReset) {
  const fs::path dir = fresh_dir("wal_reset");
  const std::string path = (dir / "wal.log").string();
  WriteAheadLog wal(path);
  wal.append(1, bytes_of("a"));
  wal.append(1, bytes_of("b"));
  wal.reset();
  EXPECT_EQ(wal.record_count(), 0u);
  // LSNs must not rewind: a snapshot at LSN 2 plus a fresh record at LSN 3
  // is distinguishable from a stale record at LSN 1.
  EXPECT_EQ(wal.append(1, bytes_of("c")), 3u);
  std::vector<std::uint64_t> lsns;
  wal.replay([&](const WalRecord& r) { lsns.push_back(r.lsn); });
  ASSERT_EQ(lsns.size(), 1u);
  EXPECT_EQ(lsns[0], 3u);
}

TEST(Wal, FlushPolicyBoundsTheCrashLossWindow) {
  const fs::path dir = fresh_dir("wal_flush_policy");
  const std::string path = (dir / "wal.log").string();
  WriteAheadLog wal(path);
  wal.set_flush_every(4);

  // replay() re-reads the file, so it sees exactly what a crash-restart
  // would: buffered appends are invisible until the policy (or an
  // explicit flush) pushes them out.
  const auto on_disk = [&] {
    std::uint64_t n = 0;
    wal.replay([&](const WalRecord&) { ++n; });
    return n;
  };

  for (int i = 0; i < 3; ++i) wal.append(1, bytes_of("buffered"));
  EXPECT_EQ(wal.unflushed_records(), 3u);
  EXPECT_LE(on_disk(), 0u + 3u);  // typically 0: still in the buffer
  EXPECT_EQ(wal.flush_count(), 0u);

  wal.append(1, bytes_of("fourth"));  // policy boundary
  EXPECT_EQ(wal.unflushed_records(), 0u);
  EXPECT_EQ(wal.flush_count(), 1u);
  EXPECT_EQ(on_disk(), 4u);

  wal.append(1, bytes_of("fifth"));
  EXPECT_EQ(wal.unflushed_records(), 1u);
  wal.flush();  // explicit barrier (snapshots, shutdown)
  EXPECT_EQ(wal.unflushed_records(), 0u);
  EXPECT_EQ(wal.flush_count(), 2u);
  EXPECT_EQ(on_disk(), 5u);
  wal.flush();  // idempotent when clean
  EXPECT_EQ(wal.flush_count(), 2u);
}

TEST(StateStore, FsyncPolicyFlushesOnSnapshotBarrier) {
  const fs::path dir = fresh_dir("store_fsync_policy");
  StateStoreConfig cfg;
  cfg.snapshot_every_records = 0;  // manual snapshots only
  cfg.fsync_every_n_records = 100;
  StateStore store(dir.string(), cfg);
  store.set_snapshot_provider([] { return bytes_of("full-state"); });

  store.append(1, bytes_of("a"));
  store.append(1, bytes_of("b"));
  EXPECT_EQ(store.stats().wal_unflushed, 2u);

  // force_snapshot flushes first: the loss window never spans a snapshot.
  store.force_snapshot();
  EXPECT_EQ(store.stats().wal_unflushed, 0u);
  EXPECT_GE(store.stats().wal_flushes, 1u);

  store.append(1, bytes_of("tail"));
  store.flush_wal();
  EXPECT_EQ(store.stats().wal_unflushed, 0u);

  // Restart: snapshot + flushed tail both restore.
  StateStore reopened(dir.string(), cfg);
  EXPECT_EQ(reopened.load_snapshot(), bytes_of("full-state"));
  std::uint64_t tail = 0;
  reopened.replay_wal([&](std::uint8_t, std::uint16_t, BytesView) { ++tail; });
  EXPECT_EQ(tail, 1u);
}

TEST(Wal, UnrecognizedHeaderThrows) {
  const fs::path dir = fresh_dir("wal_header");
  const std::string path = (dir / "wal.log").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTAWAL-FILE";
  }
  EXPECT_THROW(WriteAheadLog{path}, std::runtime_error);
}

TEST(Snapshot, WriteLoadRoundTrip) {
  const fs::path dir = fresh_dir("snap_roundtrip");
  SnapshotEngine engine(dir.string());
  EXPECT_FALSE(engine.load_latest().has_value());
  EXPECT_EQ(engine.latest_generation(), 0u);

  engine.write(SnapshotMeta{1, 42}, bytes_of("state-v1"));
  const auto loaded = engine.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.generation, 1u);
  EXPECT_EQ(loaded->meta.last_lsn, 42u);
  EXPECT_EQ(loaded->payload, bytes_of("state-v1"));
}

TEST(Snapshot, LatestGenerationWinsAndOldOnesArePruned) {
  const fs::path dir = fresh_dir("snap_generations");
  SnapshotEngine engine(dir.string(), /*keep=*/2);
  for (std::uint64_t g = 1; g <= 4; ++g) {
    engine.write(SnapshotMeta{g, g * 10},
                 bytes_of("gen-" + std::to_string(g)));
  }
  const auto loaded = engine.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.generation, 4u);
  EXPECT_EQ(loaded->payload, bytes_of("gen-4"));
  // keep=2: generations 1 and 2 are gone, 3 and 4 remain.
  std::size_t snaps = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") ++snaps;
  }
  EXPECT_EQ(snaps, 2u);
}

TEST(Snapshot, CorruptLatestFallsBackToPredecessor) {
  const fs::path dir = fresh_dir("snap_fallback");
  SnapshotEngine engine(dir.string(), /*keep=*/2);
  engine.write(SnapshotMeta{1, 10}, bytes_of("good-old"));
  engine.write(SnapshotMeta{2, 20}, bytes_of("bad-new"));
  // Corrupt generation 2's payload byte (CRC must catch it).
  const fs::path latest = dir / "snapshot-0000000002.snap";
  {
    std::fstream f(latest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  const auto loaded = engine.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.generation, 1u);
  EXPECT_EQ(loaded->payload, bytes_of("good-old"));
}

TEST(Snapshot, NoTmpFileSurvivesAWrite) {
  const fs::path dir = fresh_dir("snap_tmp");
  SnapshotEngine engine(dir.string());
  engine.write(SnapshotMeta{1, 1}, bytes_of("x"));
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp");
  }
}

TEST(StateStore, ColdOpenIsEmpty) {
  const fs::path dir = fresh_dir("store_cold");
  StateStore store(dir.string());
  EXPECT_FALSE(store.load_snapshot().has_value());
  std::size_t replayed = 0;
  store.replay_wal([&](std::uint8_t, std::uint16_t, BytesView) { ++replayed; });
  EXPECT_EQ(replayed, 0u);
}

TEST(StateStore, PolicySnapshotsAndWalCompaction) {
  const fs::path dir = fresh_dir("store_policy");
  StateStoreConfig cfg;
  cfg.snapshot_every_records = 4;
  StateStore store(dir.string(), cfg);
  int snapshots_taken = 0;
  store.set_snapshot_provider([&] {
    ++snapshots_taken;
    return bytes_of("state@" + std::to_string(snapshots_taken));
  });
  for (int i = 0; i < 10; ++i) {
    store.append(1, bytes_of("r" + std::to_string(i)));
  }
  // 10 appends at snapshot_every=4 -> snapshots after #4 and #8.
  EXPECT_EQ(snapshots_taken, 2);
  const auto stats = store.stats();
  EXPECT_EQ(stats.snapshot_generation, 2u);
  EXPECT_EQ(stats.wal_records, 2u);  // records 9 and 10 outlive compaction
}

TEST(StateStore, ByteSizedPolicyCompactsFatRecordsEarly) {
  // The record-count policy alone would let a WAL of huge batched-event
  // records balloon; the byte threshold must fire first.
  const fs::path dir = fresh_dir("store_byte_policy");
  StateStoreConfig cfg;
  cfg.snapshot_every_records = 1'000;  // far away — bytes must trigger
  cfg.snapshot_every_bytes = 4 * 1024;
  StateStore store(dir.string(), cfg);
  int snapshots_taken = 0;
  store.set_snapshot_provider([&] {
    ++snapshots_taken;
    return bytes_of("state");
  });
  const Bytes fat(2 * 1024, 0xAB);  // 2 KiB payload per record
  store.append(1, fat);
  EXPECT_EQ(snapshots_taken, 0);  // ~2 KiB WAL, under the 4 KiB cap
  store.append(1, fat);
  EXPECT_EQ(snapshots_taken, 1);  // cap crossed -> compacted
  EXPECT_EQ(store.stats().wal_records, 0u);
  // Both counters reset: the next fat record starts a fresh window.
  store.append(1, fat);
  EXPECT_EQ(snapshots_taken, 1);
  store.append(1, fat);
  EXPECT_EQ(snapshots_taken, 2);
  // Skinny records never reach the byte cap and the far-off record cap
  // leaves them alone.
  for (int i = 0; i < 16; ++i) store.append(2, bytes_of("s"));
  EXPECT_EQ(snapshots_taken, 2);
}

TEST(StateStore, RestartRestoresSnapshotPlusTail) {
  const fs::path dir = fresh_dir("store_restart");
  StateStoreConfig cfg;
  cfg.snapshot_every_records = 3;
  {
    StateStore store(dir.string(), cfg);
    store.set_snapshot_provider([] { return bytes_of("snapshot-state"); });
    for (int i = 0; i < 5; ++i) {
      store.append(static_cast<std::uint8_t>(i),
                   bytes_of("record-" + std::to_string(i)));
    }
    // Snapshot fired after record 2 (0-indexed); records 3 and 4 are tail.
  }
  StateStore reopened(dir.string(), cfg);
  const auto snapshot = reopened.load_snapshot();
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(*snapshot, bytes_of("snapshot-state"));
  std::vector<std::pair<std::uint8_t, Bytes>> tail;
  reopened.replay_wal([&](std::uint8_t type, std::uint16_t, BytesView payload) {
    tail.emplace_back(type, Bytes(payload.begin(), payload.end()));
  });
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].first, 3u);
  EXPECT_EQ(tail[0].second, bytes_of("record-3"));
  EXPECT_EQ(tail[1].first, 4u);
}

TEST(StateStore, RecordsAppendedAfterARestartedSnapshotAreReplayed) {
  // Regression: snapshot -> WAL compacted -> process restart -> append.
  // The emptied WAL must not restart LSNs at 1, or the post-restart
  // records would fall under the snapshot's replay filter and vanish on
  // the *next* restart.
  const fs::path dir = fresh_dir("store_lsn_reseed");
  StateStoreConfig cfg;
  cfg.snapshot_every_records = 2;
  {
    StateStore store(dir.string(), cfg);
    store.set_snapshot_provider([] { return bytes_of("state"); });
    store.append(1, bytes_of("folded-a"));
    store.append(1, bytes_of("folded-b"));  // snapshot fires, WAL compacts
  }
  {
    // Run 2: restart, journal one more record, crash before any snapshot.
    StateStore store(dir.string(), cfg);
    store.append(2, bytes_of("post-restart"));
  }
  // Run 3: the post-restart record must replay.
  StateStore store(dir.string(), cfg);
  std::vector<Bytes> tail;
  store.replay_wal([&](std::uint8_t, std::uint16_t, BytesView payload) {
    tail.emplace_back(payload.begin(), payload.end());
  });
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], bytes_of("post-restart"));
}

TEST(StateStore, ReplaySkipsRecordsAlreadyInSnapshotEvenWithoutReset) {
  // Simulate a crash between snapshot write and WAL truncation: write
  // records, snapshot through the engine directly (bypassing the store's
  // reset), and verify replay still filters by LSN.
  const fs::path dir = fresh_dir("store_lsn_filter");
  {
    WriteAheadLog wal((fs::path(dir) / "wal.log").string());
    wal.append(1, bytes_of("folded-1"));
    wal.append(1, bytes_of("folded-2"));
    wal.append(1, bytes_of("tail"));
    SnapshotEngine engine(dir.string());
    // Snapshot claims it folded LSNs <= 2 — the crash happened before the
    // WAL could be reset.
    engine.write(SnapshotMeta{1, 2}, bytes_of("state"));
  }
  StateStore store(dir.string());
  std::vector<Bytes> tail;
  store.replay_wal([&](std::uint8_t, std::uint16_t, BytesView payload) {
    tail.emplace_back(payload.begin(), payload.end());
  });
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], bytes_of("tail"));
}

}  // namespace
}  // namespace waku::persist
