// Unit tests for the common substrate: hex, serde, rng, contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bytes.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"

namespace waku {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(to_hex0x(data), "0x0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0x0001ABff7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
  EXPECT_TRUE(from_hex("0x").empty());
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, FromHexRejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(from_hex("deadbeef"), from_hex("deadbeef")));
  EXPECT_FALSE(ct_equal(from_hex("deadbeef"), from_hex("deadbeee")));
  EXPECT_FALSE(ct_equal(from_hex("dead"), from_hex("deadbeef")));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, StringRoundTrip) {
  const std::string s = "hello waku";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, Concat) {
  EXPECT_EQ(concat(from_hex("dead"), from_hex("beef")), from_hex("deadbeef"));
}

TEST(Serde, PrimitiveRoundTrip) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u16(0x1234);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_bytes(from_hex("cafe"));
  w.write_string("topic");

  ByteReader r(w.data());
  EXPECT_EQ(r.read_u8(), 0xab);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefU);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_bytes(), from_hex("cafe"));
  EXPECT_EQ(r.read_string(), "topic");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, LittleEndianLayout) {
  ByteWriter w;
  w.write_u32(0x01020304);
  EXPECT_EQ(to_hex(w.data()), "04030201");
}

TEST(Serde, TruncatedInputThrows) {
  ByteWriter w;
  w.write_u16(7);
  ByteReader r(w.data());
  EXPECT_NO_THROW(r.read_u8());
  EXPECT_THROW(r.read_u32(), std::out_of_range);
}

TEST(Serde, TruncatedLengthPrefixThrows) {
  ByteWriter w;
  w.write_u32(100);  // claims 100 bytes, provides none
  ByteReader r(w.data());
  EXPECT_THROW(r.read_bytes(), std::out_of_range);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BytesLength) {
  Rng rng(5);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 32u, 100u}) {
    EXPECT_EQ(rng.next_bytes(n).size(), n);
  }
}

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW(WAKU_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(WAKU_EXPECTS(true));
}

}  // namespace
}  // namespace waku
