// Tests for ChaCha20-Poly1305 (RFC 8439 vectors + structural properties)
// and the Waku payload encryption layer built on it.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hash/chacha20poly1305.hpp"
#include "waku/payload.hpp"

namespace waku::hash {
namespace {

ChaChaKey test_key() {
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  }
  return key;
}

TEST(ChaCha20, Rfc8439BlockFunctionVector) {
  // RFC 8439 §2.3.2.
  const ChaChaKey key = test_key();
  const ChaChaNonce nonce = {0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  const auto block = chacha20_block(key, 1, nonce);
  EXPECT_EQ(to_hex(BytesView(block.data(), 16)),
            "10f1e7e4d13b5915500fdd1fa32071c4");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  Rng rng(0xAEAD);
  const ChaChaKey key = test_key();
  const ChaChaNonce nonce = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  for (const std::size_t len : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    const Bytes plaintext = rng.next_bytes(len);
    const Bytes ct = chacha20_xor(key, nonce, plaintext);
    EXPECT_EQ(chacha20_xor(key, nonce, ct), plaintext) << "len " << len;
  }
}

TEST(ChaCha20, DifferentNoncesDifferentStreams) {
  const ChaChaKey key = test_key();
  const ChaChaNonce n1 = {1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  const ChaChaNonce n2 = {2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  const Bytes zeros(64, 0);
  EXPECT_NE(chacha20_xor(key, n1, zeros), chacha20_xor(key, n2, zeros));
}

TEST(Poly1305, Rfc8439Vector) {
  // RFC 8439 §2.5.2.
  std::array<std::uint8_t, 32> key;
  const Bytes kb = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  std::copy(kb.begin(), kb.end(), key.begin());
  const auto tag =
      poly1305(to_bytes("Cryptographic Forum Research Group"), key);
  EXPECT_EQ(to_hex(BytesView(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Aead, Rfc8439SunscreenVector) {
  // RFC 8439 §2.8.2.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0x80 + i);
  }
  const ChaChaNonce nonce = {0x07, 0, 0, 0, 0x40, 0x41,
                             0x42, 0x43, 0x44, 0x45, 0x46, 0x47};
  const Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes sealed = aead_encrypt(key, nonce, to_bytes(plaintext), aad);
  EXPECT_EQ(to_hex(BytesView(sealed.data(), 16)),
            "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(to_hex(BytesView(sealed.data() + sealed.size() - 16, 16)),
            "1ae10b594f09e26a7e902ecbd0600691");
  const auto opened = aead_decrypt(key, nonce, sealed, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), plaintext);
}

TEST(Aead, TamperedCiphertextRejected) {
  const ChaChaKey key = test_key();
  const ChaChaNonce nonce{};
  Bytes sealed = aead_encrypt(key, nonce, to_bytes("attack at dawn"));
  sealed[3] ^= 1;
  EXPECT_FALSE(aead_decrypt(key, nonce, sealed).has_value());
}

TEST(Aead, TamperedTagRejected) {
  const ChaChaKey key = test_key();
  const ChaChaNonce nonce{};
  Bytes sealed = aead_encrypt(key, nonce, to_bytes("attack at dawn"));
  sealed.back() ^= 1;
  EXPECT_FALSE(aead_decrypt(key, nonce, sealed).has_value());
}

TEST(Aead, WrongAadRejected) {
  const ChaChaKey key = test_key();
  const ChaChaNonce nonce{};
  const Bytes sealed =
      aead_encrypt(key, nonce, to_bytes("msg"), to_bytes("context-a"));
  EXPECT_FALSE(aead_decrypt(key, nonce, sealed, to_bytes("context-b")));
  EXPECT_TRUE(aead_decrypt(key, nonce, sealed, to_bytes("context-a")));
}

TEST(Aead, TooShortInputRejected) {
  const ChaChaKey key = test_key();
  const ChaChaNonce nonce{};
  EXPECT_FALSE(aead_decrypt(key, nonce, Bytes(15, 0)).has_value());
}

TEST(Aead, EmptyPlaintextWorks) {
  const ChaChaKey key = test_key();
  const ChaChaNonce nonce{};
  const Bytes sealed = aead_encrypt(key, nonce, {});
  EXPECT_EQ(sealed.size(), 16u);  // just the tag
  const auto opened = aead_decrypt(key, nonce, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

}  // namespace
}  // namespace waku::hash

namespace waku {
namespace {

TEST(WakuPayload, SealOpenRoundTrip) {
  Rng rng(0x9A10AD);
  const hash::ChaChaKey key = derive_payload_key("room-password");
  const Bytes plaintext = to_bytes("private chat message");
  const Bytes sealed = seal_payload(key, plaintext, rng);
  const auto opened = open_payload(key, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(WakuPayload, FreshNoncePerSeal) {
  Rng rng(0x9A10AE);
  const hash::ChaChaKey key = derive_payload_key("k");
  const Bytes a = seal_payload(key, to_bytes("same"), rng);
  const Bytes b = seal_payload(key, to_bytes("same"), rng);
  EXPECT_NE(a, b);  // randomized nonce -> distinct ciphertexts
}

TEST(WakuPayload, WrongKeyFails) {
  Rng rng(0x9A10AF);
  const Bytes sealed =
      seal_payload(derive_payload_key("right"), to_bytes("secret"), rng);
  EXPECT_FALSE(open_payload(derive_payload_key("wrong"), sealed).has_value());
}

TEST(WakuPayload, DistinctSecretsDistinctKeys) {
  EXPECT_NE(derive_payload_key("a"), derive_payload_key("b"));
  EXPECT_EQ(derive_payload_key("a"), derive_payload_key("a"));
}

TEST(WakuPayload, MalformedEnvelopeRejected) {
  const hash::ChaChaKey key = derive_payload_key("k");
  EXPECT_FALSE(open_payload(key, Bytes{}).has_value());
  EXPECT_FALSE(open_payload(key, Bytes(10, 0)).has_value());
  Bytes bad_version(64, 0);
  bad_version[0] = 99;
  EXPECT_FALSE(open_payload(key, bad_version).has_value());
}

}  // namespace
}  // namespace waku
