// Tests for the light-client path: tree-sync + lightpush via a full
// service node (§IV-A hybrid architecture + 19/WAKU2-LIGHTPUSH).
#include <gtest/gtest.h>

#include "rln/harness.hpp"
#include "rln/light_client.hpp"

namespace waku::rln {
namespace {

struct LightFixture : ::testing::Test {
  HarnessConfig cfg;
  std::unique_ptr<RlnHarness> h;
  std::unique_ptr<RlnFullServiceNode> service;
  std::unique_ptr<RlnLightClient> client;

  void SetUp() override {
    cfg.num_nodes = 8;
    cfg.degree = 3;
    cfg.block_interval_ms = 2'000;
    cfg.node.tree_depth = 10;
    cfg.node.validator.epoch.epoch_length_ms = 10'000;
    h = std::make_unique<RlnHarness>(cfg);
    h->register_all();
    h->run_ms(3'000);

    // The light client's identity was registered out of band: reuse a
    // registered node's identity/index but speak only via the service.
    service = std::make_unique<RlnFullServiceNode>(h->network(), h->node(0));
    client = std::make_unique<RlnLightClient>(
        h->network(), h->node(7).identity(),
        *h->node(7).group().own_index(),
        cfg.node.validator.epoch, 0x11C);
    h->network().connect(service->node_id(), client->node_id());
  }
};

TEST_F(LightFixture, LightPublishReachesTheMesh) {
  bool acked = false;
  client->publish(service->node_id(), to_bytes("hello from a light client"),
                  "/light/1/chat/proto", [&](bool ok) { acked = ok; });
  h->run_ms(8'000);

  EXPECT_TRUE(acked);
  EXPECT_EQ(client->published(), 1u);
  EXPECT_EQ(client->acked(), 1u);
  EXPECT_EQ(service->tree_requests(), 1u);
  EXPECT_EQ(service->pushes_accepted(), 1u);

  // Everyone in the mesh (minus the impersonated node 7, which would
  // dedup by nullifier) received it.
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < h->size(); ++i) {
    delivered += h->node(i).stats().delivered;
  }
  EXPECT_GE(delivered, h->size() - 1);
}

TEST_F(LightFixture, DoubleLightPublishInOneEpochIsRefused) {
  // The service validates pushes with its own RLN validator: the second
  // message in the same epoch is a double-signal and is refused (and the
  // spammer would be slashed by the normal pipeline).
  bool first = false;
  bool second = true;
  client->publish(service->node_id(), to_bytes("one"), "/t",
                  [&](bool ok) { first = ok; });
  h->run_ms(2'000);
  client->publish(service->node_id(), to_bytes("two"), "/t",
                  [&](bool ok) { second = ok; });
  h->run_ms(2'000);

  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_EQ(service->pushes_rejected(), 1u);
}

TEST_F(LightFixture, UnknownMemberIndexGetsNoTreeResponse) {
  RlnLightClient stranger(h->network(), Identity::from_secret(Fr::from_u64(7)),
                          /*member_index=*/999,
                          cfg.node.validator.epoch, 0x11D);
  h->network().connect(service->node_id(), stranger.node_id());
  bool called = false;
  stranger.publish(service->node_id(), to_bytes("hi"), "/t",
                   [&](bool) { called = true; });
  h->run_ms(3'000);
  EXPECT_FALSE(called);  // service ignores out-of-range requests
  EXPECT_EQ(stranger.published(), 0u);
}

TEST_F(LightFixture, ClientSecretNeverNeededByService) {
  // Structural check: the proof is generated client-side; the service only
  // ever sees the finished message. (The API makes this true by
  // construction — this test documents it.)
  client->publish(service->node_id(), to_bytes("sovereign"), "/t", nullptr);
  h->run_ms(5'000);
  EXPECT_EQ(service->pushes_accepted(), 1u);
  // The pushed message carried a valid bundle without the service holding
  // the client identity: validation passed at every relay hop.
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < h->size(); ++i) {
    rejected += h->node(i).relay().stats().rejected;
  }
  EXPECT_EQ(rejected, 0u);
}

}  // namespace
}  // namespace waku::rln
