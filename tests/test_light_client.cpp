// Tests for the light-client path: tree-sync + lightpush via a full
// service node (§IV-A hybrid architecture + 19/WAKU2-LIGHTPUSH).
#include <gtest/gtest.h>

#include "common/serde.hpp"
#include "hash/poseidon.hpp"
#include "rln/harness.hpp"
#include "rln/light_client.hpp"

namespace waku::rln {
namespace {

struct LightFixture : ::testing::Test {
  HarnessConfig cfg;
  std::unique_ptr<RlnHarness> h;
  std::unique_ptr<RlnFullServiceNode> service;
  std::unique_ptr<RlnLightClient> client;

  void SetUp() override {
    cfg.num_nodes = 8;
    cfg.degree = 3;
    cfg.block_interval_ms = 2'000;
    cfg.node.tree_depth = 10;
    cfg.node.validator.epoch.epoch_length_ms = 10'000;
    h = std::make_unique<RlnHarness>(cfg);
    h->register_all();
    h->run_ms(3'000);

    // The light client's identity was registered out of band: reuse a
    // registered node's identity/index but speak only via the service.
    service = std::make_unique<RlnFullServiceNode>(h->network(), h->node(0));
    client = std::make_unique<RlnLightClient>(
        h->network(), h->node(7).identity(),
        *h->node(7).group().own_index(),
        cfg.node.validator.epoch, 0x11C);
    h->network().connect(service->node_id(), client->node_id());
  }
};

TEST_F(LightFixture, LightPublishReachesTheMesh) {
  bool acked = false;
  client->publish(service->node_id(), to_bytes("hello from a light client"),
                  "/light/1/chat/proto", [&](bool ok) { acked = ok; });
  h->run_ms(8'000);

  EXPECT_TRUE(acked);
  EXPECT_EQ(client->published(), 1u);
  EXPECT_EQ(client->acked(), 1u);
  EXPECT_EQ(service->tree_requests(), 1u);
  EXPECT_EQ(service->pushes_accepted(), 1u);

  // Everyone in the mesh (minus the impersonated node 7, which would
  // dedup by nullifier) received it.
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < h->size(); ++i) {
    delivered += h->node(i).stats().delivered;
  }
  EXPECT_GE(delivered, h->size() - 1);
}

TEST_F(LightFixture, DoubleLightPublishInOneEpochIsRefused) {
  // The service validates pushes with its own RLN validator: the second
  // message in the same epoch is a double-signal and is refused (and the
  // spammer would be slashed by the normal pipeline).
  bool first = false;
  bool second = true;
  client->publish(service->node_id(), to_bytes("one"), "/t",
                  [&](bool ok) { first = ok; });
  h->run_ms(2'000);
  client->publish(service->node_id(), to_bytes("two"), "/t",
                  [&](bool ok) { second = ok; });
  h->run_ms(2'000);

  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_EQ(service->pushes_rejected(), 1u);
}

TEST_F(LightFixture, UnknownMemberIndexGetsNoTreeResponse) {
  RlnLightClient stranger(h->network(), Identity::from_secret(Fr::from_u64(7)),
                          /*member_index=*/999,
                          cfg.node.validator.epoch, 0x11D);
  h->network().connect(service->node_id(), stranger.node_id());
  bool called = false;
  stranger.publish(service->node_id(), to_bytes("hi"), "/t",
                   [&](bool) { called = true; });
  h->run_ms(3'000);
  EXPECT_FALSE(called);  // service ignores out-of-range requests
  EXPECT_EQ(stranger.published(), 0u);
}

TEST_F(LightFixture, CheckpointBootstrapValidatesLiveTraffic) {
  const auto key = hash::schnorr::keygen_from_seed(0xC4E1);
  service->set_checkpoint_signer(key);
  client->attach_chain(h->chain(), h->contract(), key.pk);

  bool ok = false;
  client->bootstrap(service->node_id(), [&](bool accepted) { ok = accepted; });
  h->run_ms(2'000);

  ASSERT_TRUE(ok);
  ASSERT_TRUE(client->bootstrapped());
  // O(log N) transfer, no genesis replay: the checkpoint's cursor covered
  // the whole registration history, so the client applied zero (or nearly
  // zero) historical events itself.
  EXPECT_GT(client->bootstrap_cursor(), 0u);
  EXPECT_EQ(client->light_group().member_count(),
            h->node(0).group().member_count());
  EXPECT_EQ(client->light_group().root(), h->node(0).group().root());

  // The bootstrapped client validates live mesh traffic.
  WakuMessage live;
  bool captured = false;
  h->node(3).set_message_handler([&](const WakuMessage& m) {
    if (!captured) {
      live = m;
      captured = true;
    }
  });
  ASSERT_EQ(h->node(1).try_publish(to_bytes("live traffic")),
            WakuRlnRelayNode::PublishStatus::kOk);
  h->run_ms(4'000);
  ASSERT_TRUE(captured);
  const ValidationOutcome outcome = client->validate(
      live, h->network().local_time(client->node_id()));
  EXPECT_EQ(outcome.verdict, Verdict::kAccept);
  // A replay of the same message is a duplicate, not fresh traffic: the
  // client runs the full pipeline, nullifier log included.
  const ValidationOutcome echo = client->validate(
      live, h->network().local_time(client->node_id()));
  EXPECT_EQ(echo.verdict, Verdict::kIgnoreDuplicate);
}

TEST_F(LightFixture, BootstrappedClientFollowsMembershipChurn) {
  const auto key = hash::schnorr::keygen_from_seed(0xC4E2);
  service->set_checkpoint_signer(key);
  client->attach_chain(h->chain(), h->contract(), key.pk);
  bool ok = false;
  client->bootstrap(service->node_id(), [&](bool accepted) { ok = accepted; });
  h->run_ms(2'000);
  ASSERT_TRUE(ok);

  // New registration after the checkpoint: the client keeps tracking the
  // event stream from its cursor, so its root follows the full nodes'.
  Rng rng(0xFEE7);
  const Identity newcomer = Identity::generate(rng);
  const chain::Address account = chain::Address::from_u64(0xE0000042);
  h->chain().create_account(account, 10 * chain::kGweiPerEth);
  chain::Transaction tx;
  tx.from = account;
  tx.to = h->contract();
  tx.method = "register";
  tx.calldata = newcomer.pk_bytes();
  tx.value = h->chain()
                 .contract_at<chain::RlnMembershipContract>(h->contract())
                 .deposit();
  h->chain().submit(std::move(tx));
  h->run_ms(2 * cfg.block_interval_ms + 500);

  EXPECT_GT(client->events_applied(), 0u);
  EXPECT_EQ(client->light_group().member_count(),
            h->node(0).group().member_count());
  EXPECT_EQ(client->light_group().root(), h->node(0).group().root());
}

// -- Delta checkpoints (poll-mode window tracking) ---------------------------

struct DeltaFixture : LightFixture {
  hash::schnorr::KeyPair key = hash::schnorr::keygen_from_seed(0xDE17A);
  chain::Address whale = chain::Address::from_u64(0xFFF777);
  std::uint64_t next_pk_seed = 40'000;

  void SetUp() override {
    LightFixture::SetUp();
    h->chain().create_account(whale, 50 * chain::kGweiPerEth);
    service->set_checkpoint_signer(key);
    client->attach_chain(h->chain(), h->contract(), key.pk);
    bool ok = false;
    client->bootstrap(service->node_id(),
                      [&](bool accepted) { ok = accepted; });
    h->run_ms(2'000);
    ASSERT_TRUE(ok);
  }

  chain::Gwei deposit() {
    return h->chain()
        .contract_at<chain::RlnMembershipContract>(h->contract())
        .deposit();
  }

  /// One register_batch transaction: n new members, ONE chain event.
  void churn_batch(std::uint32_t n) {
    ByteWriter w;
    w.write_u32(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      w.write_raw(hash::poseidon1(Fr::from_u64(next_pk_seed++)).to_bytes_be());
    }
    chain::Transaction tx;
    tx.from = whale;
    tx.to = h->contract();
    tx.method = "register_batch";
    tx.calldata = std::move(w).take();
    tx.value = deposit() * n;
    h->chain().submit(std::move(tx));
    h->run_ms(2 * cfg.block_interval_ms + 500);
  }

  /// n separate register transactions: n events, n root transitions.
  void churn_singles(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      chain::Transaction tx;
      tx.from = whale;
      tx.to = h->contract();
      tx.method = "register";
      tx.calldata =
          hash::poseidon1(Fr::from_u64(next_pk_seed++)).to_bytes_be();
      tx.value = deposit();
      h->chain().submit(std::move(tx));
    }
    h->run_ms(2 * cfg.block_interval_ms + 500);
  }
};

TEST_F(DeltaFixture, DeltaSyncAdvancesOfflineClientWindow) {
  client->go_offline();
  const std::uint64_t offline_cursor = client->sync_cursor();
  const Fr offline_root = client->light_group().recent_roots().back();

  churn_batch(5);  // one event the client missed
  ASSERT_NE(h->node(0).group().root(), offline_root);
  EXPECT_FALSE(client->light_group().is_recent_root(h->node(0).group().root()));

  bool ok = false;
  client->delta_sync(service->node_id(), [&](bool r) { ok = r; });
  h->run_ms(1'000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(service->deltas_served(), 1u);
  EXPECT_EQ(service->delta_fallbacks_served(), 0u);
  EXPECT_EQ(client->delta_syncs_applied(), 1u);
  EXPECT_EQ(client->sync_cursor(), h->node(0).event_cursor());
  EXPECT_EQ(client->light_group().member_count(),
            h->node(0).group().member_count());
  EXPECT_TRUE(client->light_group().is_recent_root(h->node(0).group().root()));

  // The delta is a fraction of the full checkpoint it replaces.
  const auto delta =
      h->node(0).make_delta_checkpoint(offline_cursor, offline_root);
  ASSERT_TRUE(delta.has_value());
  const std::size_t full_size = h->node(0).make_checkpoint().serialize().size();
  EXPECT_LT(delta->serialize().size() * 3, full_size);
}

TEST_F(DeltaFixture, RepeatedDeltaSyncsTrackContinuousChurn) {
  client->go_offline();
  for (int round = 0; round < 3; ++round) {
    churn_batch(3);
    bool ok = false;
    client->delta_sync(service->node_id(), [&](bool r) { ok = r; });
    h->run_ms(1'000);
    ASSERT_TRUE(ok) << "round " << round;
    EXPECT_TRUE(
        client->light_group().is_recent_root(h->node(0).group().root()));
  }
  EXPECT_EQ(client->delta_syncs_applied(), 3u);
  EXPECT_EQ(client->delta_full_fallbacks(), 0u);
}

TEST_F(DeltaFixture, DeltaGapFallsBackToFullCheckpoint) {
  client->go_offline();
  // More root transitions than kDeltaRootTailMax: a delta would silently
  // drop intermediate roots from the client's window, so the server must
  // refuse it and serve a full checkpoint instead.
  churn_singles(static_cast<std::uint32_t>(kDeltaRootTailMax) + 4);

  bool ok = false;
  client->delta_sync(service->node_id(), [&](bool r) { ok = r; });
  h->run_ms(1'000);
  ASSERT_TRUE(ok);
  EXPECT_EQ(service->deltas_served(), 0u);
  EXPECT_EQ(service->delta_fallbacks_served(), 1u);
  EXPECT_EQ(client->delta_syncs_applied(), 0u);
  EXPECT_EQ(client->delta_full_fallbacks(), 1u);
  // The fallback is a complete re-bootstrap: state is current again.
  EXPECT_EQ(client->light_group().member_count(),
            h->node(0).group().member_count());
  EXPECT_TRUE(client->light_group().is_recent_root(h->node(0).group().root()));
}

TEST_F(DeltaFixture, DeltaRefusedForUnknownOrForkedBase) {
  // Cursor ahead of the server: nothing to prove, no delta.
  EXPECT_FALSE(h->node(0)
                   .make_delta_checkpoint(h->node(0).event_cursor() + 100,
                                          h->node(0).group().root())
                   .has_value());
  // Claimed root does not match the recorded root at that cursor: a
  // forked/forged base must not receive a delta bound to it.
  EXPECT_FALSE(h->node(0)
                   .make_delta_checkpoint(h->node(0).event_cursor(),
                                          Fr::from_u64(0xBAD))
                   .has_value());
  // The honest base gets one (empty tail: no transitions since).
  const auto delta = h->node(0).make_delta_checkpoint(
      h->node(0).event_cursor(), h->node(0).group().root());
  ASSERT_TRUE(delta.has_value());
  EXPECT_TRUE(delta->root_tail.empty());
  EXPECT_EQ(delta->to_cursor, h->node(0).event_cursor());
}

TEST_F(DeltaFixture, TamperedDeltaPayloadFailsSchnorrVerification) {
  churn_batch(2);
  auto delta = h->node(0).make_delta_checkpoint(
      h->node(0).event_cursor(), h->node(0).group().root());
  ASSERT_TRUE(delta.has_value());
  delta->sign(key);
  ASSERT_TRUE(delta->verify(key.pk));

  DeltaCheckpoint tampered = *delta;
  tampered.member_count += 1;
  EXPECT_FALSE(tampered.verify(key.pk));
  tampered = *delta;
  tampered.root_tail.push_back(Fr::from_u64(7));
  EXPECT_FALSE(tampered.verify(key.pk));
  // Serialization round-trips the signature.
  const DeltaCheckpoint back =
      DeltaCheckpoint::deserialize(delta->serialize());
  EXPECT_TRUE(back.verify(key.pk));
  EXPECT_EQ(back.serialize(), delta->serialize());
}

TEST_F(LightFixture, TamperedOrMiskeyedCheckpointRejected) {
  // Signed under one key, verified against another's public half: the
  // Schnorr check must fail and leave the client un-bootstrapped.
  service->set_checkpoint_signer(hash::schnorr::keygen_from_seed(0xAAA1));
  client->attach_chain(h->chain(), h->contract(),
                       hash::schnorr::keygen_from_seed(0xBBB2).pk);
  bool called = false;
  bool ok = true;
  client->bootstrap(service->node_id(), [&](bool accepted) {
    called = true;
    ok = accepted;
  });
  h->run_ms(2'000);
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(client->bootstrapped());
}

TEST_F(LightFixture, TamperedCheckpointPayloadFailsSchnorrVerification) {
  // Any single-byte flip in the signed payload — counters, watermarks,
  // roots, view — must invalidate the signature fail-closed.
  const auto key = hash::schnorr::keygen_from_seed(0xC4E3);
  rln::Checkpoint cp = h->node(0).make_checkpoint();
  cp.sign(key);
  ASSERT_TRUE(cp.verify(key.pk));

  rln::Checkpoint tampered = cp;
  tampered.member_count += 1;
  EXPECT_FALSE(tampered.verify(key.pk));

  tampered = cp;
  ASSERT_FALSE(tampered.nullifier_watermarks.empty());
  tampered.nullifier_watermarks[0].min_epoch += 1;
  EXPECT_FALSE(tampered.verify(key.pk));

  tampered = cp;
  ASSERT_FALSE(tampered.view.empty());
  tampered.view[0] ^= 0x01;
  EXPECT_FALSE(tampered.verify(key.pk));

  // A tampered signature fails too (both halves).
  tampered = cp;
  tampered.signature.s.limb[0] ^= 1;
  EXPECT_FALSE(tampered.verify(key.pk));
  tampered = cp;
  tampered.signature.r += Fr::one();
  EXPECT_FALSE(tampered.verify(key.pk));

  // And serialization round-trips the signature intact.
  const rln::Checkpoint wire = rln::Checkpoint::deserialize(cp.serialize());
  EXPECT_TRUE(wire.verify(key.pk));
}

TEST_F(LightFixture, ClientSecretNeverNeededByService) {
  // Structural check: the proof is generated client-side; the service only
  // ever sees the finished message. (The API makes this true by
  // construction — this test documents it.)
  client->publish(service->node_id(), to_bytes("sovereign"), "/t", nullptr);
  h->run_ms(5'000);
  EXPECT_EQ(service->pushes_accepted(), 1u);
  // The pushed message carried a valid bundle without the service holding
  // the client identity: validation passed at every relay hop.
  std::uint64_t rejected = 0;
  for (std::size_t i = 0; i < h->size(); ++i) {
    rejected += h->node(i).relay().stats().rejected;
  }
  EXPECT_EQ(rejected, 0u);
}

}  // namespace
}  // namespace waku::rln
