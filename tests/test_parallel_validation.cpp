// Concurrency correctness of the multithreaded validation executor and the
// shared stages it makes thread-safe:
//
//   * striped NullifierLog — exactly-one-signal under concurrent observes
//     (one kNew winner, no lost double-signal, no spurious conflict), and
//     structural invariants under an observe/gc race;
//   * GroupManager root window — lock-free version polling plus locked
//     window reads racing the event-stream writer;
//   * ValidationExecutor — per-shard completion ordering, kReject
//     backpressure accounting, drain();
//   * partition invariance — deterministic mode and parallel mode produce
//     identical per-message verdicts on identical inputs (deterministic
//     mode IS the pre-executor pipeline, so this pins parallel execution
//     to the original semantics).
//
// These binaries are what the TSan CI flavor runs (scripts/run_tier1.sh
// thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "rln/rate_limit_proof.hpp"
#include "rln/validation_executor.hpp"
#include "shard/sharded_validator.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {
namespace {

using ff::Fr;

constexpr std::size_t kDepth = 16;

// -- Striped nullifier log ----------------------------------------------------

TEST(StripedNullifierLog, ConcurrentSameShareObservesYieldOneNewNoConflict) {
  // T threads race observe() with the IDENTICAL share: exactly one must
  // win kNew, everyone else must see kDuplicate, and no spurious conflict
  // (= no spurious slash) may appear.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kNullifiers = 64;
  NullifierLog log;
  std::atomic<std::uint64_t> news{0};
  std::atomic<std::uint64_t> dups{0};
  std::atomic<std::uint64_t> conflicts{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &news, &dups, &conflicts] {
      for (std::size_t n = 0; n < kNullifiers; ++n) {
        const Fr nullifier = Fr::from_u64(1000 + n);
        sss::Share share{Fr::from_u64(7), Fr::from_u64(n + 1)};
        const auto result =
            log.observe(/*epoch=*/n % 5, nullifier, share, /*proof_fp=*/n);
        switch (result.outcome) {
          case NullifierLog::Outcome::kNew: ++news; break;
          case NullifierLog::Outcome::kDuplicate: ++dups; break;
          case NullifierLog::Outcome::kConflict: ++conflicts; break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(news.load(), kNullifiers);  // exactly one winner each
  EXPECT_EQ(dups.load(), (kThreads - 1) * kNullifiers);
  EXPECT_EQ(conflicts.load(), 0u);  // identical share: never a slash
  EXPECT_EQ(log.stats().conflicts, 0u);
  EXPECT_EQ(log.entry_count(), kNullifiers);
}

TEST(StripedNullifierLog, ConcurrentConflictingObservesNeverLoseTheSignal) {
  // T threads race observe() with per-thread DISTINCT shares: one kNew
  // winner, and every loser must be told kConflict with a usable previous
  // share — a double-signal must never be masked as a duplicate.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kNullifiers = 64;
  NullifierLog log;
  std::atomic<std::uint64_t> news{0};
  std::atomic<std::uint64_t> dups{0};
  std::atomic<std::uint64_t> conflicts{0};
  std::atomic<std::uint64_t> recoverable{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &news, &dups, &conflicts, &recoverable, t] {
      for (std::size_t n = 0; n < kNullifiers; ++n) {
        const Fr nullifier = Fr::from_u64(5000 + n);
        // Distinct x per thread: every conflicting pair is interpolable.
        sss::Share share{Fr::from_u64(100 + t), Fr::from_u64(200 + t)};
        const auto result = log.observe(/*epoch=*/n % 3, nullifier, share);
        switch (result.outcome) {
          case NullifierLog::Outcome::kNew: ++news; break;
          case NullifierLog::Outcome::kDuplicate: ++dups; break;
          case NullifierLog::Outcome::kConflict:
            ++conflicts;
            EXPECT_TRUE(result.previous_share.has_value());
            if (result.sk_recoverable) ++recoverable;
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(news.load(), kNullifiers);
  EXPECT_EQ(dups.load(), 0u);  // distinct shares are never duplicates
  EXPECT_EQ(conflicts.load(), (kThreads - 1) * kNullifiers);
  EXPECT_EQ(recoverable.load(), conflicts.load());  // all distinct-x pairs
  EXPECT_EQ(log.stats().conflicts, conflicts.load());
}

TEST(StripedNullifierLog, ObserveGcRaceKeepsStructuralInvariants) {
  // Writers spray observes across a moving epoch range while a GC thread
  // advances the watermark. The contract: no crash/race (TSan), counters
  // consistent with bucket contents, and after a final quiescent gc no
  // bucket sits below the watermark.
  constexpr std::size_t kWriters = 4;
  constexpr std::uint64_t kEpochSpan = 200;
  constexpr std::uint64_t kThr = 8;
  NullifierLog log;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&log, t] {
      for (std::uint64_t e = 0; e < kEpochSpan; ++e) {
        const Fr nullifier = Fr::from_u64(t * kEpochSpan + e);
        sss::Share share{Fr::from_u64(e + 1), Fr::from_u64(t + 1)};
        (void)log.observe(e, nullifier, share);
      }
    });
  }
  std::thread gc([&log, &stop] {
    std::uint64_t now = 0;
    while (!stop.load(std::memory_order_acquire)) {
      log.gc(now, kThr);
      now += 3;
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  gc.join();

  // Quiescent: one more gc sweeps any entry that raced below the
  // watermark (the documented one-cycle lag), then everything must agree.
  log.gc(kEpochSpan + kThr, kThr);
  const auto sizes = log.bucket_sizes();
  std::size_t total = 0;
  for (const auto& [epoch, count] : sizes) {
    EXPECT_GE(epoch, log.stats().min_epoch);
    total += count;
  }
  EXPECT_EQ(total, log.entry_count());
  EXPECT_EQ(sizes.size(), log.epoch_count());
  EXPECT_EQ(log.stats().min_epoch, kEpochSpan);
}

TEST(StripedNullifierLog, SerializeRestoreRoundTripsAfterConcurrentFill) {
  constexpr std::size_t kThreads = 4;
  NullifierLog log;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (std::uint64_t n = 0; n < 50; ++n) {
        sss::Share share{Fr::from_u64(t + 1), Fr::from_u64(n + 1)};
        (void)log.observe(n % 7, Fr::from_u64(t * 1000 + n), share, n);
      }
    });
  }
  for (auto& t : threads) t.join();
  const Bytes bytes = log.serialize();
  NullifierLog restored;
  restored.restore(bytes);
  EXPECT_EQ(restored.serialize(), bytes);
  EXPECT_EQ(restored.entry_count(), log.entry_count());
  EXPECT_EQ(restored.bucket_sizes(), log.bucket_sizes());
  EXPECT_EQ(restored.stats().min_epoch, log.stats().min_epoch);
}

// -- GroupManager root window -------------------------------------------------

TEST(GroupManagerConcurrency, ReadersRaceTheEventStreamWriter) {
  // One writer feeds registration events (window pushes under the write
  // lock); readers poll the version lock-free and probe roots they saw
  // earlier. Any root recorded by the reader must satisfy is_recent_root
  // until more than root_window events later — we only assert the weaker
  // liveness/consistency properties that hold under arbitrary
  // interleavings, plus TSan cleanliness.
  constexpr std::size_t kEvents = 300;
  constexpr std::size_t kReaders = 3;
  GroupManager group(kDepth, TreeMode::kFullTree, /*root_window=*/10);
  Rng rng(0xC0C0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&group, &stop] {
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t version = group.root_version();
        EXPECT_GE(version, last_version);  // monotone, lock-free read
        last_version = version;
        const std::vector<Fr> window = group.recent_roots();
        EXPECT_LE(window.size(), 10u);
        // The writer may push between these two reads; the window only
        // grows here, so the live count can exceed our copy, never trail.
        EXPECT_GE(group.recent_root_count(), window.size());
        if (!window.empty()) {
          // The newest root of the copy we took may already be evicted,
          // but probing must be race-free and never report an impossible
          // window (is_recent_root is allowed to say false here).
          (void)group.is_recent_root(window.back());
        }
      }
    });
  }
  for (std::size_t i = 0; i < kEvents; ++i) {
    const Identity member = Identity::generate(rng);
    chain::Event ev;
    ev.name = "MemberRegistered";
    ev.topics = {ff::U256{i}, member.pk.to_u256()};
    group.on_event(ev);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_TRUE(group.is_recent_root(group.root()));
  EXPECT_EQ(group.member_count(), kEvents);
}

// -- Executor ordering and backpressure ---------------------------------------

struct ExecutorFixture : ::testing::Test {
  GroupManager group{kDepth, TreeMode::kFullTree};
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 10'000},
                       .max_epoch_gap = 2};
  ValidationPipeline pipeline{zksnark::rln_keypair(kDepth).vk, group, vcfg,
                              0xD0};
  // Proof-less messages: settled by the cheap no-proof stage, so executor
  // mechanics are testable without SNARK latency.
  std::vector<WakuMessage> messages = [] {
    std::vector<WakuMessage> msgs(1);
    msgs[0].payload = to_bytes("no proof attached");
    return msgs;
  }();
  std::uint64_t now_ms = 100 * 10'000 + 500;
};

TEST_F(ExecutorFixture, CompletionsFireInSubmissionOrderPerShard) {
  ParallelismConfig pcfg;
  pcfg.deterministic = false;
  pcfg.workers = 2;
  ValidationExecutor executor(pcfg);
  constexpr std::size_t kWindows = 64;
  std::mutex mu;
  std::vector<std::size_t> completed;  // indices in completion order
  for (std::size_t i = 0; i < kWindows; ++i) {
    const bool ok = executor.submit(
        /*shard=*/0, pipeline, messages, now_ms,
        [&mu, &completed, i](std::vector<ValidationOutcome> outcomes) {
          ASSERT_EQ(outcomes.size(), 1u);
          EXPECT_EQ(outcomes[0].verdict, Verdict::kRejectNoProof);
          std::lock_guard lk(mu);
          completed.push_back(i);
        });
    EXPECT_TRUE(ok);
  }
  executor.drain();
  ASSERT_EQ(completed.size(), kWindows);
  for (std::size_t i = 0; i < kWindows; ++i) EXPECT_EQ(completed[i], i);
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.submitted, kWindows);
  EXPECT_EQ(stats.executed, kWindows);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.workers, 2u);
}

TEST_F(ExecutorFixture, RejectBackpressureRefusesOverflowDeterministically) {
  ParallelismConfig pcfg;
  pcfg.deterministic = false;
  pcfg.workers = 1;
  pcfg.queue_depth = 1;
  pcfg.backpressure = ParallelismConfig::Backpressure::kReject;
  ValidationExecutor executor(pcfg);

  // Gate the single worker inside window A's completion so the lane state
  // is deterministic: A running (depth 0), then B queued (depth 1 = full),
  // then C must be refused.
  std::mutex mu;
  std::condition_variable cv;
  bool a_started = false;
  bool release_a = false;
  ASSERT_TRUE(executor.submit(
      0, pipeline, messages, now_ms,
      [&](std::vector<ValidationOutcome>) {
        std::unique_lock lk(mu);
        a_started = true;
        cv.notify_all();
        cv.wait(lk, [&] { return release_a; });
      }));
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return a_started; });
  }
  ASSERT_TRUE(executor.submit(0, pipeline, messages, now_ms,
                              [](std::vector<ValidationOutcome>) {}));
  EXPECT_FALSE(executor.submit(0, pipeline, messages, now_ms,
                               [](std::vector<ValidationOutcome>) {
                                 FAIL() << "rejected window must not run";
                               }));
  {
    std::lock_guard lk(mu);
    release_a = true;
  }
  cv.notify_all();
  executor.drain();
  const ExecutorStats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST_F(ExecutorFixture, DeterministicModeRunsInlineWithoutThreads) {
  ValidationExecutor executor(ParallelismConfig{});
  EXPECT_EQ(executor.worker_count(), 0u);
  std::thread::id completion_thread;
  ASSERT_TRUE(executor.submit(
      0, pipeline, messages, now_ms,
      [&completion_thread](std::vector<ValidationOutcome>) {
        completion_thread = std::this_thread::get_id();
      }));
  EXPECT_EQ(completion_thread, std::this_thread::get_id());
  const auto outcomes = executor.validate(0, pipeline, messages, now_ms);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].verdict, Verdict::kRejectNoProof);
}

// -- Partition invariance: deterministic vs parallel --------------------------

struct ProvenWorkload {
  GroupManager group{kDepth, TreeMode::kFullTree};
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 10'000},
                       .max_epoch_gap = 2};
  std::vector<WakuMessage> messages;
  std::uint64_t now_ms = 100 * 10'000 + 500;

  ProvenWorkload() {
    Rng rng(0xFACE);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    std::vector<Identity> members;
    constexpr std::size_t kMembers = 6;
    for (std::size_t i = 0; i < kMembers; ++i) {
      members.push_back(Identity::generate(rng));
      chain::Event ev;
      ev.name = "MemberRegistered";
      ev.topics = {ff::U256{i}, members.back().pk.to_u256()};
      group.on_event(ev);
    }
    const auto prove = [&](std::size_t member, const std::string& body) {
      WakuMessage msg;
      msg.payload = to_bytes(body);
      zksnark::RlnProverInput input;
      input.sk = members[member].sk;
      input.path = group.path_of(member);
      input.x = message_hash(msg);
      input.epoch = Fr::from_u64(100);
      zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
      RateLimitProof bundle;
      bundle.share_x = c.publics.x;
      bundle.share_y = c.publics.y;
      bundle.nullifier = c.publics.nullifier;
      bundle.epoch = 100;
      bundle.root = c.publics.root;
      bundle.proof = zksnark::prove(kp.pk, c.builder.cs(),
                                    c.builder.assignment(), rng);
      attach_proof(msg, bundle);
      return msg;
    };
    // A mixed window: honest messages, a gossip echo (same message twice),
    // a double-signal (same member, different payload, same epoch), and a
    // proof-less message — every verdict class the cheap stages and the
    // verifier can produce on fresh logs.
    for (std::size_t i = 0; i < 4; ++i) {
      messages.push_back(prove(i, "honest " + std::to_string(i)));
    }
    messages.push_back(messages[0]);           // echo -> duplicate
    messages.push_back(prove(1, "equivocation"));  // double-signal -> spam
    WakuMessage bare;
    bare.payload = to_bytes("no proof");
    messages.push_back(bare);                  // -> reject no-proof
  }
};

std::vector<Verdict> run_validator(const ProvenWorkload& wl,
                                   const ParallelismConfig& pcfg,
                                   std::size_t window) {
  shard::ShardConfig scfg;
  scfg.num_shards = 4;
  shard::ShardedValidator validator(zksnark::rln_keypair(kDepth).vk, wl.group,
                                    wl.vcfg, scfg, 0x5EED);
  validator.set_parallelism(pcfg);
  std::vector<Verdict> verdicts;
  for (std::uint16_t shard = 0; shard < 4; ++shard) {
    for (std::size_t i = 0; i < wl.messages.size(); i += window) {
      const std::size_t len = std::min(window, wl.messages.size() - i);
      const auto outcomes = validator.validate_batch(
          shard,
          std::span<const WakuMessage>(wl.messages.data() + i, len),
          wl.now_ms);
      for (const auto& o : outcomes) verdicts.push_back(o.verdict);
    }
  }
  return verdicts;
}

TEST(PartitionInvariance, ParallelVerdictsMatchDeterministicOnAllPartitions) {
  const ProvenWorkload wl;

  const std::vector<Verdict> expected =
      run_validator(wl, ParallelismConfig{}, wl.messages.size());
  // Sanity: the workload exercises the interesting verdict classes.
  EXPECT_NE(std::count(expected.begin(), expected.end(), Verdict::kAccept), 0);
  EXPECT_NE(std::count(expected.begin(), expected.end(),
                       Verdict::kIgnoreDuplicate), 0);
  EXPECT_NE(std::count(expected.begin(), expected.end(), Verdict::kRejectSpam),
            0);
  EXPECT_NE(std::count(expected.begin(), expected.end(),
                       Verdict::kRejectNoProof), 0);

  for (const std::size_t window : {std::size_t{1}, std::size_t{3},
                                   wl.messages.size()}) {
    // Deterministic mode at any partition: verdicts are batch-invariant.
    EXPECT_EQ(run_validator(wl, ParallelismConfig{}, window), expected)
        << "deterministic, window " << window;
    // Parallel mode must be indistinguishable from deterministic mode.
    ParallelismConfig pcfg;
    pcfg.deterministic = false;
    pcfg.workers = 4;
    EXPECT_EQ(run_validator(wl, pcfg, window), expected)
        << "parallel, window " << window;
  }
}

TEST(PartitionInvariance, ConcurrentShardsSignalSpamExactlyOncePerShard) {
  // All four shards validate the same equivocating pair concurrently: the
  // double-signal must surface EXACTLY once per shard (per-shard logs are
  // independent rate-limit domains) — never lost, never doubled.
  const ProvenWorkload wl;
  ParallelismConfig pcfg;
  pcfg.deterministic = false;
  pcfg.workers = 4;
  shard::ShardConfig scfg;
  scfg.num_shards = 4;
  shard::ShardedValidator validator(zksnark::rln_keypair(kDepth).vk, wl.group,
                                    wl.vcfg, scfg, 0x5EED);
  validator.set_parallelism(pcfg);
  std::atomic<std::uint64_t> spam{0};
  for (std::uint16_t shard = 0; shard < 4; ++shard) {
    // Window per message so the equivocation is settled by the nullifier
    // precheck/observe stages across windows, not inside one batch.
    for (const WakuMessage& msg : wl.messages) {
      validator.submit(shard, std::span<const WakuMessage>(&msg, 1),
                       wl.now_ms,
                       [&spam](std::vector<ValidationOutcome> outcomes) {
                         for (const auto& o : outcomes) {
                           if (o.verdict == Verdict::kRejectSpam) {
                             spam.fetch_add(1, std::memory_order_relaxed);
                           }
                         }
                       });
    }
  }
  validator.drain();
  EXPECT_EQ(spam.load(), 4u);  // one double-signal per shard, exactly
  EXPECT_EQ(validator.stats().spam_detected, 4u);
}

}  // namespace
}  // namespace waku::rln
