// Sharded-relay suite: deterministic shard assignment and resharding,
// per-shard rolling root caches, cross-shard nullifier isolation (the
// same member publishing on two shards in one epoch is NOT a
// double-signal), shard-scoped node quotas, shard-scoped light-client
// bootstrap (fail-closed on missing watermarks), per-shard crash-restart
// recovery of the shard-tagged WAL, and the shard-targeted flooder
// containment campaign.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/serde.hpp"
#include "rln/harness.hpp"
#include "rln/light_client.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_validator.hpp"
#include "sim/adversary.hpp"
#include "sim/scenario.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / "waku_sharding_tests" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// -- ShardMap ----------------------------------------------------------------

TEST(ShardMap, DeterministicBalancedAssignment) {
  const shard::ShardMap a(4), b(4);
  std::set<shard::ShardId> hit;
  for (int n = 0; n < 400; ++n) {
    const std::string topic = "/app/" + std::to_string(n) + "/proto";
    const shard::ShardId s = a.shard_of(topic);
    EXPECT_EQ(s, b.shard_of(topic));  // identical on every peer
    EXPECT_LT(s, 4u);
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 4u);  // all shards used over 400 topics

  // Single-shard map degenerates to "everything on shard 0".
  const shard::ShardMap single(1);
  EXPECT_EQ(single.shard_of("/anything/at/all"), 0u);

  // Pubsub topic naming round-trips, and foreign topics are rejected.
  EXPECT_EQ(a.pubsub_topic(3), "/waku/2/rs/0/3");
  EXPECT_EQ(a.parse_pubsub_topic("/waku/2/rs/0/3"), std::optional<
            shard::ShardId>(3));
  EXPECT_FALSE(a.parse_pubsub_topic("/waku/2/rs/0/7").has_value());
  EXPECT_FALSE(a.parse_pubsub_topic("/waku/2/rs/1/0").has_value());
  EXPECT_FALSE(a.parse_pubsub_topic(kDefaultPubsubTopic).has_value());

  // content_topic_for_shard inverts the assignment deterministically.
  for (std::uint16_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.shard_of(shard::content_topic_for_shard(a, s)), s);
  }
}

TEST(ShardMap, ConfigDrivenResharding) {
  const shard::ShardMap before(2);
  const shard::ShardMap after = before.resharded(8);
  EXPECT_EQ(after.num_shards(), 8u);
  EXPECT_EQ(after.generation(), 1u);

  // The generation salt renames every pubsub topic: old-layout meshes and
  // new-layout meshes can never collide mid-migration.
  EXPECT_EQ(after.pubsub_topic(0), "/waku/2/rs/1/0");
  EXPECT_NE(before.pubsub_topic(0), after.pubsub_topic(0));
  EXPECT_FALSE(before.parse_pubsub_topic(after.pubsub_topic(1)).has_value());

  // Resharding moves a substantial fraction of topics (it re-keys the
  // hash, not just the modulus) — and the moved set is computable.
  std::vector<std::string> topics;
  for (int n = 0; n < 200; ++n) {
    topics.push_back("/app/" + std::to_string(n) + "/proto");
  }
  const std::vector<std::string> moved =
      shard::ShardMap::moved_topics(before, after, topics);
  EXPECT_GT(moved.size(), 100u);  // >= 1 - 1/8 expected; generous bound
}

TEST(ShardMap, MemoizedLookupsMatchUncachedAndInvalidateOnLayoutChange) {
  // The topic->shard memo must be invisible: memoized answers equal the
  // uncached walk (a freshly deserialized map has a cold memo), across a
  // deep split lineage, and a layout change must never serve stale
  // assignments (new map object => new memo).
  shard::ShardMap deep(4);
  for (int s = 0; s < 4; ++s) deep = deep.split(2);  // 4 -> 64 shards
  std::vector<std::string> topics;
  for (int n = 0; n < 200; ++n) {
    topics.push_back("/app/" + std::to_string(n) + "/proto");
  }

  // Warm the memo, then compare against a cold-memo twin of the same map.
  const shard::ShardMap twin =
      shard::ShardMap::deserialize(deep.serialize());
  for (int pass = 0; pass < 3; ++pass) {
    for (const std::string& t : topics) (void)deep.shard_of(t);
  }
  for (const std::string& t : topics) {
    EXPECT_EQ(deep.shard_of(t), twin.shard_of(t));
  }
  const shard::ShardMap::MemoStats stats = deep.memo_stats();
  EXPECT_EQ(stats.misses, topics.size());  // one cold walk per topic
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.flushes, 0u);

  // A further split re-keys assignments; its fresh memo must follow the
  // new layout (and still satisfy the refinement guarantee).
  const shard::ShardMap resplit = deep.split(2);
  for (const std::string& t : topics) {
    EXPECT_EQ(resplit.shard_of(t) % deep.num_shards(), deep.shard_of(t));
  }

  // Copies share the (warm) memo — same layout, same answers.
  const shard::ShardMap copy = deep;  // NOLINT(performance-unnecessary-copy)
  for (const std::string& t : topics) {
    EXPECT_EQ(copy.shard_of(t), twin.shard_of(t));
  }
}

// -- Per-shard enforcement over one shared tree ------------------------------

struct ShardedPipelineFixture {
  static constexpr std::size_t kDepth = 8;
  GroupManager group{kDepth, TreeMode::kFullTree};
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 10'000},
                       .max_epoch_gap = 2};
  std::vector<Identity> members;
  Rng rng{0x5A4D};
  std::uint64_t now_ms = 100 * 10'000 + 500;  // mid-epoch 100

  ShardedPipelineFixture() {
    for (std::size_t i = 0; i < 4; ++i) {
      members.push_back(Identity::generate(rng));
      chain::Event ev;
      ev.name = "MemberRegistered";
      ev.topics = {ff::U256{i}, members.back().pk.to_u256()};
      group.on_event(ev);
    }
  }

  WakuMessage proven_message(std::size_t member, const std::string& payload,
                             const std::string& content_topic) {
    WakuMessage msg;
    msg.payload = to_bytes(payload);
    msg.content_topic = content_topic;
    zksnark::RlnProverInput input;
    input.sk = members[member].sk;
    input.path = group.path_of(member);
    input.x = message_hash(msg);
    input.epoch = ff::Fr::from_u64(100);
    zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    RateLimitProof bundle;
    bundle.share_x = c.publics.x;
    bundle.share_y = c.publics.y;
    bundle.nullifier = c.publics.nullifier;
    bundle.epoch = 100;
    bundle.root = c.publics.root;
    bundle.proof = zksnark::prove(kp.pk, c.builder.cs(),
                                  c.builder.assignment(), rng);
    attach_proof(msg, bundle);
    return msg;
  }
};

TEST(ShardedValidator, CrossShardNullifierIsolation) {
  ShardedPipelineFixture fx;
  shard::ShardConfig scfg;
  scfg.num_shards = 2;
  shard::ShardedValidator validator(zksnark::rln_keypair(fx.kDepth).vk,
                                    fx.group, fx.vcfg, scfg, 0x15014);
  const shard::ShardMap& map = validator.map();
  const std::string topic0 = shard::content_topic_for_shard(map, 0);
  const std::string topic1 = shard::content_topic_for_shard(map, 1);

  // The same member, the same epoch, two shards: both messages carry the
  // SAME internal nullifier (it depends only on sk and epoch), yet each
  // shard's log sees its first signal — accepted on both, no slashing
  // material anywhere.
  const WakuMessage on_shard0 = fx.proven_message(0, "a", topic0);
  const WakuMessage on_shard1 = fx.proven_message(0, "b", topic1);
  const auto p0 = extract_proof(on_shard0);
  const auto p1 = extract_proof(on_shard1);
  ASSERT_TRUE(p0.has_value() && p1.has_value());
  ASSERT_EQ(p0->nullifier, p1->nullifier);  // the isolation premise

  EXPECT_EQ(validator.pipeline(0).validate_one(on_shard0, fx.now_ms).verdict,
            Verdict::kAccept);
  const ValidationOutcome cross =
      validator.pipeline(1).validate_one(on_shard1, fx.now_ms);
  EXPECT_EQ(cross.verdict, Verdict::kAccept);
  EXPECT_FALSE(cross.recovered_sk.has_value());
  EXPECT_EQ(validator.stats().spam_detected, 0u);
  EXPECT_EQ(validator.log_of(0).entry_count(), 1u);
  EXPECT_EQ(validator.log_of(1).entry_count(), 1u);

  // Same shard, same member, same epoch, different payload: the classic
  // double-signal — detected, with the sk recovered.
  const WakuMessage conflict = fx.proven_message(0, "c", topic0);
  const ValidationOutcome spam =
      validator.pipeline(0).validate_one(conflict, fx.now_ms);
  EXPECT_EQ(spam.verdict, Verdict::kRejectSpam);
  ASSERT_TRUE(spam.recovered_sk.has_value());
  EXPECT_EQ(*spam.recovered_sk, fx.members[0].sk);
  // The other shard's log is untouched by shard 0's conflict.
  EXPECT_EQ(validator.pipeline(1).stats().spam_detected, 0u);
}

TEST(ShardedValidator, PerShardRootCachesTrackTheSharedWindow) {
  ShardedPipelineFixture fx;
  shard::ShardConfig scfg;
  scfg.num_shards = 2;
  shard::ShardedValidator validator(zksnark::rln_keypair(fx.kDepth).vk,
                                    fx.group, fx.vcfg, scfg, 0x2007);
  const std::string topic0 =
      shard::content_topic_for_shard(validator.map(), 0);
  const WakuMessage old_root_msg = fx.proven_message(1, "pre-churn", topic0);

  // Membership churn after the proof was made: the shared window moves,
  // each shard-local cache refreshes lazily, and the old root (still in
  // the window) keeps validating.
  chain::Event ev;
  ev.name = "MemberRegistered";
  Rng rng(0x77);
  ev.topics = {ff::U256{4}, Identity::generate(rng).pk.to_u256()};
  fx.group.on_event(ev);

  EXPECT_EQ(
      validator.pipeline(0).validate_one(old_root_msg, fx.now_ms).verdict,
      Verdict::kAccept);
  const shard::ShardRootCache::Stats& cache0 =
      validator.root_cache_stats(0);
  EXPECT_GE(cache0.refreshes, 1u);
  EXPECT_GE(cache0.hits, 1u);
  // Shard 1 saw no traffic: its cache never refreshed — per-shard caches
  // really are independent.
  EXPECT_EQ(validator.root_cache_stats(1).refreshes, 0u);

  // A root outside every window dies in the shard-local O(1) stage.
  WakuMessage stale = fx.proven_message(2, "stale", topic0);
  auto bundle = extract_proof(stale);
  ASSERT_TRUE(bundle.has_value());
  bundle->root = ff::Fr::from_u64(0xDEAD);
  attach_proof(stale, *bundle);
  EXPECT_EQ(validator.pipeline(0).validate_one(stale, fx.now_ms).verdict,
            Verdict::kRejectStaleRoot);
}

// -- Node-level quota and mesh isolation -------------------------------------

TEST(ShardedNode, QuotaIsPerShardPerEpoch) {
  HarnessConfig cfg;
  cfg.num_nodes = 6;
  cfg.degree = 3;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 60'000;  // one epoch for all
  cfg.node.shards.num_shards = 2;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(2'000);

  const shard::ShardMap map(cfg.node.shards);
  const std::string topic0 = shard::content_topic_for_shard(map, 0);
  const std::string topic1 = shard::content_topic_for_shard(map, 1);

  // One message per epoch PER SHARD: the second publish on shard 0 is
  // refused locally, while shard 1 still has quota.
  EXPECT_EQ(h.node(0).try_publish(to_bytes("s0"), topic0),
            WakuRlnRelayNode::PublishStatus::kOk);
  EXPECT_EQ(h.node(0).try_publish(to_bytes("s0 again"), topic0),
            WakuRlnRelayNode::PublishStatus::kRateLimited);
  EXPECT_EQ(h.node(0).try_publish(to_bytes("s1"), topic1),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(6'000);

  // Cross-shard publishing in one epoch is NOT equivocation: nobody
  // detected spam, nobody was slashed.
  EXPECT_EQ(h.total_validation_stats().spam_detected, 0u);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_TRUE(h.node(i).is_registered());
  }

  // An unhosted shard is refused fail-fast.
  HarnessConfig partitioned = cfg;
  partitioned.shard_assignment = [](std::size_t) {
    return std::vector<shard::ShardId>{0};
  };
  RlnHarness h2(partitioned);
  h2.register_all();
  EXPECT_EQ(h2.node(0).try_publish(to_bytes("x"), topic1),
            WakuRlnRelayNode::PublishStatus::kShardNotSubscribed);
  EXPECT_EQ(h2.node(0).stats().publish_wrong_shard, 1u);
}

// -- Shard-scoped light-client bootstrap -------------------------------------

TEST(ShardedBootstrap, ClientBootstrapsItsShardSubsetAndValidates) {
  HarnessConfig cfg;
  cfg.num_nodes = 8;
  cfg.degree = 3;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 10'000;
  cfg.node.shards.num_shards = 4;  // full nodes host all four
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(3'000);

  RlnFullServiceNode service(h.network(), h.node(0));
  const auto key = hash::schnorr::keygen_from_seed(0x5CB);
  service.set_checkpoint_signer(key);

  shard::ShardConfig client_shards;
  client_shards.num_shards = 4;
  client_shards.subscribe = {2};
  RlnLightClient client(h.network(), h.node(7).identity(),
                        *h.node(7).group().own_index(),
                        cfg.node.validator.epoch, 0x11C, client_shards);
  client.attach_chain(h.chain(), h.contract(), key.pk);
  h.network().connect(service.node_id(), client.node_id());

  bool ok = false;
  client.bootstrap(service.node_id(), [&](bool accepted) { ok = accepted; });
  h.run_ms(2'000);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(client.bootstrapped());
  EXPECT_EQ(client.light_validator().subscribed(),
            std::vector<shard::ShardId>{2});
  EXPECT_EQ(client.light_group().root(), h.node(0).group().root());

  // Live traffic on the client's shard validates through its per-shard
  // pipeline.
  const shard::ShardMap map(cfg.node.shards);
  const std::string topic2 = shard::content_topic_for_shard(map, 2);
  WakuMessage live;
  bool captured = false;
  h.node(3).set_message_handler([&](const WakuMessage& m) {
    if (!captured) {
      live = m;
      captured = true;
    }
  });
  ASSERT_EQ(h.node(1).try_publish(to_bytes("sharded live"), topic2),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(4'000);
  ASSERT_TRUE(captured);
  const ValidationOutcome outcome =
      client.validate(live, h.network().local_time(client.node_id()));
  EXPECT_EQ(outcome.verdict, Verdict::kAccept);
  const ValidationOutcome echo =
      client.validate(live, h.network().local_time(client.node_id()));
  EXPECT_EQ(echo.verdict, Verdict::kIgnoreDuplicate);
}

TEST(ShardedBootstrap, CheckpointMissingSubscribedWatermarkIsRejected) {
  HarnessConfig cfg;
  cfg.num_nodes = 6;
  cfg.degree = 3;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.shards.num_shards = 4;
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(2'000);

  // A correctly signed checkpoint scoped to shard 0 only, served to a
  // client subscribed to shard 2: without shard 2's GC watermark the
  // client cannot know which epochs that shard already expired — it must
  // refuse the bootstrap outright.
  const auto key = hash::schnorr::keygen_from_seed(0x5CC);
  const std::vector<shard::ShardId> only_shard0{0};
  Checkpoint scoped = h.node(0).make_checkpoint(only_shard0);
  scoped.sign(key);
  ASSERT_TRUE(scoped.watermark_for(0).has_value());
  ASSERT_FALSE(scoped.watermark_for(2).has_value());
  sim::StaleCheckpointService misscoped_service(h.network(),
                                                scoped.serialize());

  shard::ShardConfig client_shards;
  client_shards.num_shards = 4;
  client_shards.subscribe = {2};
  RlnLightClient client(h.network(), h.node(5).identity(),
                        *h.node(5).group().own_index(),
                        cfg.node.validator.epoch, 0x11D, client_shards);
  client.attach_chain(h.chain(), h.contract(), key.pk);
  h.network().connect(misscoped_service.node_id(), client.node_id());

  bool called = false;
  bool ok = true;
  client.bootstrap(misscoped_service.node_id(), [&](bool accepted) {
    called = true;
    ok = accepted;
  });
  h.run_ms(2'000);
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(client.bootstrapped());
}

// -- Per-shard crash-restart recovery ----------------------------------------

TEST(ShardedCrashRestart, PerShardLogsRecoverIndependently) {
  HarnessConfig cfg;
  cfg.num_nodes = 5;
  cfg.degree = 3;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 60'000;
  cfg.node.shards.num_shards = 2;
  cfg.persist_dir = fresh_dir("per_shard_logs");
  RlnHarness h(cfg);
  h.register_all();
  h.run_ms(2'000);

  const shard::ShardMap map(cfg.node.shards);
  const std::string topic0 = shard::content_topic_for_shard(map, 0);
  const std::string topic1 = shard::content_topic_for_shard(map, 1);
  // Distinct traffic volumes per shard so recovery proves per-shard
  // routing, not just totals.
  for (std::size_t i = 1; i < h.size(); ++i) {
    ASSERT_EQ(h.node(i).try_publish(to_bytes("s0#" + std::to_string(i)),
                                    topic0),
              WakuRlnRelayNode::PublishStatus::kOk);
  }
  ASSERT_EQ(h.node(1).try_publish(to_bytes("s1#1"), topic1),
            WakuRlnRelayNode::PublishStatus::kOk);
  ASSERT_EQ(h.node(2).try_publish(to_bytes("s1#2"), topic1),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(5'000);

  // Fold the verdict counters into a snapshot (the WAL carries only the
  // per-shard observations themselves), then crash with no further sim
  // time so the restored state must match byte for byte.
  h.node(0).force_snapshot();
  const auto& pre = h.node(0).validator();
  ASSERT_GT(pre.log_of(0).entry_count(), 0u);
  ASSERT_GT(pre.log_of(1).entry_count(), 0u);
  ASSERT_NE(pre.log_of(0).entry_count(), pre.log_of(1).entry_count());
  const Bytes pre_log0 = pre.log_of(0).serialize();
  const Bytes pre_log1 = pre.log_of(1).serialize();
  const Bytes pre_state = h.node(0).serialize_state();

  h.kill_node(0);
  h.restart_node(0);

  // Every shard's log came back byte-identical and the full durable state
  // round-tripped.
  const auto& post = h.node(0).validator();
  EXPECT_EQ(post.log_of(0).serialize(), pre_log0);
  EXPECT_EQ(post.log_of(1).serialize(), pre_log1);
  EXPECT_EQ(h.node(0).serialize_state(), pre_state);

  // Let the restarted node re-mesh before new traffic (messages that
  // propagate while it is outside every mesh are gone for good — that is
  // gossipsub, not a sharding property).
  h.run_ms(3'000);

  // Post-snapshot traffic lives only in the shard-tagged WAL tail: two
  // more shard-1 signals, then crash again — the tail must rebuild each
  // shard's log independently (shard 0 untouched, shard 1 grown by two).
  const std::size_t pre_entries0 = post.log_of(0).entry_count();
  const std::size_t pre_entries1 = post.log_of(1).entry_count();
  ASSERT_EQ(h.node(3).try_publish(to_bytes("s1#3"), topic1),
            WakuRlnRelayNode::PublishStatus::kOk);
  ASSERT_EQ(h.node(4).try_publish(to_bytes("s1#4"), topic1),
            WakuRlnRelayNode::PublishStatus::kOk);
  h.run_ms(5'000);
  ASSERT_EQ(h.node(0).validator().log_of(1).entry_count(), pre_entries1 + 2);
  const Bytes tail_log1 = h.node(0).validator().log_of(1).serialize();

  h.kill_node(0);
  h.restart_node(0);
  EXPECT_EQ(h.node(0).validator().log_of(0).entry_count(), pre_entries0);
  EXPECT_EQ(h.node(0).validator().log_of(1).entry_count(), pre_entries1 + 2);
  EXPECT_EQ(h.node(0).validator().log_of(1).serialize(), tail_log1);

  // Restored quota state: the restarted publisher still refuses a second
  // same-epoch publish per shard, but keeps independent budgets.
  h.kill_node(1);
  h.run_ms(500);
  h.restart_node(1);
  h.run_ms(500);
  EXPECT_EQ(h.node(1).try_publish(to_bytes("again s0"), topic0),
            WakuRlnRelayNode::PublishStatus::kRateLimited);
  EXPECT_EQ(h.node(1).try_publish(to_bytes("again s1"), topic1),
            WakuRlnRelayNode::PublishStatus::kRateLimited);
}

// -- Shard-targeted flooder containment --------------------------------------

TEST(ShardFlood, FloodIsConfinedToTheAttackedShard) {
  sim::ShardFloodConfig cfg;
  cfg.harness.num_nodes = 12;
  cfg.harness.degree = 4;
  cfg.harness.block_interval_ms = 4'000;
  cfg.harness.node.tree_depth = 10;
  cfg.harness.node.validator.epoch.epoch_length_ms = 10'000;
  cfg.harness.node.gossip.validation_batch_max = 8;
  cfg.harness.node.shards.num_shards = 3;
  cfg.harness.seed = 0x5F100D;
  cfg.attacked_shard = 1;
  cfg.flood_burst_per_epoch = 5;
  cfg.warmup_ms = 8'000;
  cfg.attack_ms = 24'000;
  cfg.drain_ms = 8'000;

  const sim::ShardFloodOutcome out = sim::run_shard_flood_campaign(cfg);
  EXPECT_GT(out.spam_sent, 0u);
  // The flooder is slashed by the attacked shard's validators...
  EXPECT_TRUE(out.attacker_slashed);
  // ...while the other shards never even see the spam...
  EXPECT_EQ(out.spam_on_non_attacked_shards, 0u);
  // ...and their honest delivery is untouched (>= 99%).
  EXPECT_GE(out.min_non_attacked_delivery, 0.99);
}

}  // namespace
}  // namespace waku::rln
