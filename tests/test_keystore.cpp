// Tests for the encrypted membership keystore.
#include <gtest/gtest.h>

#include "rln/keystore.hpp"

namespace waku::rln {
namespace {

MembershipCredential sample_credential(std::uint64_t seed = 0xC4ED) {
  Rng rng(seed);
  MembershipCredential credential;
  credential.identity = Identity::generate(rng);
  credential.member_index = 42;
  credential.contract_address = "0x0000000000000000000000000000000000001000";
  return credential;
}

TEST(Keystore, SealOpenRoundTrip) {
  Rng rng(1);
  const MembershipCredential credential = sample_credential();
  const Bytes sealed = keystore_seal(credential, "hunter2", rng);
  const auto opened = keystore_open(sealed, "hunter2");
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, credential);
}

TEST(Keystore, WrongPasswordFails) {
  Rng rng(2);
  const Bytes sealed = keystore_seal(sample_credential(), "correct", rng);
  EXPECT_FALSE(keystore_open(sealed, "incorrect").has_value());
  EXPECT_FALSE(keystore_open(sealed, "").has_value());
}

TEST(Keystore, TamperedBlobFails) {
  Rng rng(3);
  Bytes sealed = keystore_seal(sample_credential(), "pw", rng);
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(keystore_open(sealed, "pw").has_value());
}

TEST(Keystore, TruncatedOrGarbageFails) {
  EXPECT_FALSE(keystore_open(Bytes{}, "pw").has_value());
  EXPECT_FALSE(keystore_open(Bytes(10, 0), "pw").has_value());
  EXPECT_FALSE(keystore_open(to_bytes("not a keystore at all......"), "pw")
                   .has_value());
}

TEST(Keystore, WrongMagicOrVersionRejected) {
  Rng rng(4);
  Bytes sealed = keystore_seal(sample_credential(), "pw", rng);
  Bytes bad_magic = sealed;
  bad_magic[0] = 'X';
  EXPECT_FALSE(keystore_open(bad_magic, "pw").has_value());
  Bytes bad_version = sealed;
  bad_version[4] = 9;
  EXPECT_FALSE(keystore_open(bad_version, "pw").has_value());
}

TEST(Keystore, FreshSaltPerSeal) {
  Rng rng(5);
  const MembershipCredential credential = sample_credential();
  const Bytes a = keystore_seal(credential, "pw", rng);
  const Bytes b = keystore_seal(credential, "pw", rng);
  EXPECT_NE(a, b);  // salted: identical plaintext, distinct blobs
  EXPECT_TRUE(keystore_open(a, "pw").has_value());
  EXPECT_TRUE(keystore_open(b, "pw").has_value());
}

TEST(Keystore, EveryTruncationFailsClosed) {
  // A credential blob cut at *any* point — torn download, partial disk
  // write — must fail closed: nullopt, never a half-restored identity and
  // never a crash.
  Rng rng(7);
  const Bytes sealed = keystore_seal(sample_credential(), "pw", rng);
  for (std::size_t len = 0; len < sealed.size(); ++len) {
    const Bytes truncated(sealed.begin(),
                          sealed.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(keystore_open(truncated, "pw").has_value())
        << "truncation at " << len << " must not open";
  }
  // Sanity: the untruncated blob does open.
  EXPECT_TRUE(keystore_open(sealed, "pw").has_value());
}

TEST(Keystore, EveryByteCorruptionFailsClosed) {
  // Flip each byte of the blob in turn: header, salt, nonce, ciphertext,
  // tag — every region must be covered by a check (magic/version compare,
  // KDF input, or the AEAD tag). No flipped blob may open.
  Rng rng(8);
  const Bytes sealed = keystore_seal(sample_credential(), "pw", rng);
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes corrupted = sealed;
    corrupted[i] ^= 0x01;
    EXPECT_FALSE(keystore_open(corrupted, "pw").has_value())
        << "byte " << i << " flip must not open";
  }
}

TEST(Keystore, ExtendedBlobFailsClosed) {
  // Appended trailing bytes change the ciphertext extent the tag covers.
  Rng rng(9);
  Bytes sealed = keystore_seal(sample_credential(), "pw", rng);
  sealed.push_back(0x00);
  EXPECT_FALSE(keystore_open(sealed, "pw").has_value());
  sealed.insert(sealed.end(), 64, 0xAB);
  EXPECT_FALSE(keystore_open(sealed, "pw").has_value());
}

TEST(Keystore, SecretKeyRoundTripsExactly) {
  Rng rng(6);
  const MembershipCredential credential = sample_credential(0xFEED);
  const Bytes sealed = keystore_seal(credential, "pw", rng);
  const auto opened = keystore_open(sealed, "pw");
  ASSERT_TRUE(opened.has_value());
  // The restored identity can keep producing the same commitments.
  EXPECT_EQ(opened->identity.sk, credential.identity.sk);
  EXPECT_EQ(opened->identity.pk, credential.identity.pk);
  EXPECT_EQ(opened->member_index, credential.member_index);
  EXPECT_EQ(opened->contract_address, credential.contract_address);
}

}  // namespace
}  // namespace waku::rln
