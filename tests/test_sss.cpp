// Tests for Shamir secret sharing, including the RLN degree-1 slashing math
// (paper §II-B): two shares in one epoch reconstruct sk; one share reveals
// nothing about which line was used.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "hash/poseidon.hpp"
#include "sss/shamir.hpp"

namespace waku::sss {
namespace {

using ff::Fr;

TEST(Shamir, SplitProducesNShares) {
  Rng rng(101);
  const auto shares = split(Fr::from_u64(42), 3, 5, rng);
  EXPECT_EQ(shares.size(), 5u);
}

TEST(Shamir, KSharesReconstruct) {
  Rng rng(103);
  const Fr secret = Fr::random(rng);
  const auto shares = split(secret, 3, 5, rng);
  const std::vector<Share> subset(shares.begin(), shares.begin() + 3);
  EXPECT_EQ(reconstruct(subset), secret);
}

TEST(Shamir, AnyKSubsetReconstructs) {
  Rng rng(107);
  const Fr secret = Fr::random(rng);
  const auto shares = split(secret, 2, 4, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      const std::vector<Share> subset = {shares[i], shares[j]};
      EXPECT_EQ(reconstruct(subset), secret);
    }
  }
}

TEST(Shamir, AllNSharesAlsoReconstruct) {
  Rng rng(109);
  const Fr secret = Fr::random(rng);
  const auto shares = split(secret, 3, 6, rng);
  EXPECT_EQ(reconstruct(shares), secret);
}

TEST(Shamir, FewerThanKSharesGiveWrongSecret) {
  // With k-1 shares the interpolated degree-(k-2) polynomial almost surely
  // misses the secret (information-theoretic hiding).
  Rng rng(113);
  const Fr secret = Fr::random(rng);
  const auto shares = split(secret, 3, 5, rng);
  const std::vector<Share> subset(shares.begin(), shares.begin() + 2);
  EXPECT_NE(reconstruct(subset), secret);
}

TEST(Shamir, KEqualsOneIsConstantPolynomial) {
  Rng rng(127);
  const Fr secret = Fr::random(rng);
  const auto shares = split(secret, 1, 3, rng);
  for (const auto& s : shares) EXPECT_EQ(s.y, secret);
}

TEST(Shamir, RejectsInvalidParameters) {
  Rng rng(131);
  EXPECT_THROW(split(Fr::one(), 0, 3, rng), ContractViolation);
  EXPECT_THROW(split(Fr::one(), 4, 3, rng), ContractViolation);
}

TEST(Shamir, ReconstructRejectsDuplicateX) {
  const Share s{Fr::one(), Fr::from_u64(9)};
  const std::vector<Share> dup = {s, s};
  EXPECT_THROW(reconstruct(dup), ContractViolation);
}

TEST(Shamir, ReconstructRejectsEmpty) {
  const std::vector<Share> none;
  EXPECT_THROW(reconstruct(none), ContractViolation);
}

// --- RLN degree-1 specialisation (the slashing path) ---

TEST(RlnShare, TwoSharesRecoverSecretKey) {
  Rng rng(137);
  const Fr sk = Fr::random(rng);
  const Fr epoch = Fr::from_u64(54827003);  // example epoch from the paper
  const Fr a1 = hash::poseidon2(sk, epoch);

  // Two distinct messages in the same epoch -> two x values.
  const Fr x1 = Fr::random(rng);
  const Fr x2 = Fr::random(rng);
  const Share s1{x1, rln_share_y(sk, a1, x1)};
  const Share s2{x2, rln_share_y(sk, a1, x2)};

  EXPECT_EQ(rln_recover_secret(s1, s2), sk);
}

TEST(RlnShare, RecoveryMatchesGeneralLagrange) {
  Rng rng(139);
  const Fr sk = Fr::random(rng);
  const Fr a1 = Fr::random(rng);
  const Fr x1 = Fr::from_u64(11);
  const Fr x2 = Fr::from_u64(22);
  const Share s1{x1, rln_share_y(sk, a1, x1)};
  const Share s2{x2, rln_share_y(sk, a1, x2)};
  const std::vector<Share> both = {s1, s2};
  EXPECT_EQ(reconstruct(both), rln_recover_secret(s1, s2));
}

TEST(RlnShare, SameXRejected) {
  Rng rng(149);
  const Fr sk = Fr::random(rng);
  const Fr a1 = Fr::random(rng);
  const Fr x = Fr::random(rng);
  const Share s{x, rln_share_y(sk, a1, x)};
  EXPECT_THROW(rln_recover_secret(s, s), ContractViolation);
}

TEST(RlnShare, DifferentEpochsDoNotLeakSecret) {
  // Shares from different epochs lie on different lines, so recovery
  // yields garbage, not sk — the core privacy property of RLN.
  Rng rng(151);
  const Fr sk = Fr::random(rng);
  const Fr a1 = hash::poseidon2(sk, Fr::from_u64(1000));
  const Fr a1b = hash::poseidon2(sk, Fr::from_u64(1001));
  ASSERT_NE(a1, a1b);

  const Fr x1 = Fr::from_u64(5);
  const Fr x2 = Fr::from_u64(6);
  const Share e1{x1, rln_share_y(sk, a1, x1)};
  const Share e2{x2, rln_share_y(sk, a1b, x2)};
  EXPECT_NE(rln_recover_secret(e1, e2), sk);
}

TEST(RlnShare, PropertySweepOverManyKeys) {
  Rng rng(157);
  for (int i = 0; i < 50; ++i) {
    const Fr sk = Fr::random(rng);
    const Fr epoch = Fr::from_u64(rng.next_u64());
    const Fr a1 = hash::poseidon2(sk, epoch);
    const Fr x1 = Fr::random(rng);
    Fr x2 = Fr::random(rng);
    while (x2 == x1) x2 = Fr::random(rng);
    const Share s1{x1, rln_share_y(sk, a1, x1)};
    const Share s2{x2, rln_share_y(sk, a1, x2)};
    ASSERT_EQ(rln_recover_secret(s1, s2), sk);
    ASSERT_EQ(rln_recover_secret(s2, s1), sk);  // order-independent
  }
}

// Parameterized sweep over (k, n) combinations.
class ShamirParams : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShamirParams, RoundTrip) {
  const auto [k, n] = GetParam();
  Rng rng(163 + static_cast<std::uint64_t>(k * 100 + n));
  const Fr secret = Fr::random(rng);
  auto shares = split(secret, static_cast<std::size_t>(k),
                      static_cast<std::size_t>(n), rng);
  // Shuffle and take an arbitrary k-subset.
  std::shuffle(shares.begin(), shares.end(), rng);
  shares.resize(static_cast<std::size_t>(k));
  EXPECT_EQ(reconstruct(shares), secret);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShamirParams,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 5}, std::pair{2, 2},
                      std::pair{2, 7}, std::pair{3, 5}, std::pair{5, 5},
                      std::pair{7, 10}, std::pair{10, 20}));

}  // namespace
}  // namespace waku::sss
