// Tests for the RLN-v2 multi-message-rate extension and the range-check
// gadgets it relies on.
#include <gtest/gtest.h>

#include <set>

#include "common/expect.hpp"
#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "sss/shamir.hpp"
#include "zksnark/gadgets.hpp"
#include "zksnark/rln_v2_circuit.hpp"

namespace waku::zksnark {
namespace {

using ff::Fr;
using merkle::IncrementalMerkleTree;

TEST(RangeGadgets, BitsDecomposeAndRecompose) {
  for (const std::uint64_t v : {0ull, 1ull, 5ull, 255ull, 65535ull}) {
    CircuitBuilder b;
    const Wire w = b.witness(Fr::from_u64(v));
    const auto bits = bits_gadget(b, w, 16);
    ASSERT_EQ(bits.size(), 16u);
    EXPECT_TRUE(b.satisfied()) << "value " << v;
    std::uint64_t recomposed = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      recomposed |= (bits[i].value == Fr::one() ? 1ull : 0ull) << i;
    }
    EXPECT_EQ(recomposed, v);
  }
}

TEST(RangeGadgets, BitsRejectOutOfRangeWitness) {
  CircuitBuilder b;
  const Wire w = b.witness(Fr::from_u64(70'000));  // > 2^16
  EXPECT_THROW(bits_gadget(b, w, 16), ContractViolation);
}

TEST(RangeGadgets, LessThanAcceptsAndRejects) {
  const auto check = [](std::uint64_t a, std::uint64_t bound) {
    CircuitBuilder b;
    assert_less_than(b, b.witness(Fr::from_u64(a)),
                     b.witness(Fr::from_u64(bound)), 16);
    return b.satisfied();
  };
  EXPECT_TRUE(check(0, 1));
  EXPECT_TRUE(check(5, 10));
  EXPECT_TRUE(check(65534, 65535));
  EXPECT_FALSE(check(1, 1));
  EXPECT_FALSE(check(10, 5));
  EXPECT_FALSE(check(65535, 0));
}

struct V2Fixture {
  static constexpr std::size_t kDepth = 8;
  IncrementalMerkleTree tree{kDepth};
  Fr sk;
  std::uint64_t limit = 3;
  std::uint64_t index = 0;

  V2Fixture() {
    Rng rng(0x52563200);
    sk = Fr::random(rng);
    tree.insert(Fr::random(rng));
    index = tree.insert(rln_v2_leaf(hash::poseidon1(sk), limit));
    tree.insert(Fr::random(rng));
  }

  RlnV2ProverInput input(std::uint64_t message_id, const Fr& x,
                         std::uint64_t epoch) const {
    RlnV2ProverInput in;
    in.sk = sk;
    in.limit = limit;
    in.message_id = message_id;
    in.path = tree.auth_path(index);
    in.x = x;
    in.epoch = Fr::from_u64(epoch);
    return in;
  }
};

TEST(RlnV2Circuit, WitnessSatisfiesWithinQuota) {
  const V2Fixture fx;
  for (std::uint64_t id = 0; id < fx.limit; ++id) {
    RlnCircuit c = build_rln_v2_circuit(fx.input(id, Fr::from_u64(7), 100));
    std::string violation;
    EXPECT_TRUE(c.builder.satisfied(&violation)) << "id " << id << ": "
                                                 << violation;
    EXPECT_EQ(c.publics.root, fx.tree.root());
  }
}

TEST(RlnV2Circuit, ExceedingQuotaViolatesConstraints) {
  const V2Fixture fx;
  RlnCircuit c =
      build_rln_v2_circuit(fx.input(fx.limit, Fr::from_u64(7), 100));
  std::string violation;
  EXPECT_FALSE(c.builder.satisfied(&violation));
  EXPECT_EQ(violation, "less_than_top_bit");
}

TEST(RlnV2Circuit, DistinctMessageIdsGiveDistinctNullifiers) {
  const V2Fixture fx;
  std::set<std::string> nullifiers;
  for (std::uint64_t id = 0; id < fx.limit; ++id) {
    const auto pub = rln_v2_compute_publics(fx.input(id, Fr::from_u64(9), 55));
    nullifiers.insert(to_hex(pub.nullifier.to_bytes_be()));
  }
  EXPECT_EQ(nullifiers.size(), fx.limit);  // k independent slots per epoch
}

TEST(RlnV2Circuit, ReusedMessageIdLeaksSecretKey) {
  // Same epoch + same message_id -> same line -> two shares recover sk,
  // exactly the v1 slashing property, per quota slot.
  const V2Fixture fx;
  const auto p1 = rln_v2_compute_publics(fx.input(1, Fr::from_u64(11), 55));
  const auto p2 = rln_v2_compute_publics(fx.input(1, Fr::from_u64(22), 55));
  EXPECT_EQ(p1.nullifier, p2.nullifier);
  EXPECT_EQ(sss::rln_recover_secret(sss::Share{p1.x, p1.y},
                                    sss::Share{p2.x, p2.y}),
            fx.sk);
}

TEST(RlnV2Circuit, DifferentEpochsResetTheQuota) {
  const V2Fixture fx;
  const auto p1 = rln_v2_compute_publics(fx.input(0, Fr::from_u64(1), 55));
  const auto p2 = rln_v2_compute_publics(fx.input(0, Fr::from_u64(1), 56));
  EXPECT_NE(p1.nullifier, p2.nullifier);
}

TEST(RlnV2Circuit, WrongLimitBreaksMembership) {
  // Claiming a bigger quota than the leaf committed to changes the leaf
  // hash, so the membership constraint fails against the real root.
  const V2Fixture fx;
  RlnV2ProverInput cheat = fx.input(5, Fr::from_u64(7), 100);
  cheat.limit = 100;  // leaf committed limit=3
  const auto pub = rln_v2_compute_publics(cheat);
  EXPECT_NE(pub.root, fx.tree.root());  // cannot match the group root
}

TEST(RlnV2Circuit, Groth16EndToEnd) {
  const V2Fixture fx;
  const Keypair& kp = rln_v2_keypair(V2Fixture::kDepth);
  Rng rng(0x52563201);
  RlnCircuit c = build_rln_v2_circuit(fx.input(2, Fr::from_u64(31), 77));
  const Proof proof =
      prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
  EXPECT_TRUE(verify(kp.vk, c.publics.to_vector(), proof));

  auto tampered = c.publics.to_vector();
  tampered[1] += Fr::one();
  EXPECT_FALSE(verify(kp.vk, tampered, proof));
}

TEST(RlnV2Circuit, ProveRefusesOverQuotaWitness) {
  const V2Fixture fx;
  const Keypair& kp = rln_v2_keypair(V2Fixture::kDepth);
  Rng rng(0x52563202);
  RlnCircuit c =
      build_rln_v2_circuit(fx.input(fx.limit, Fr::from_u64(31), 77));
  EXPECT_THROW(prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng),
               ProofError);
}

TEST(RlnV2Circuit, V1AndV2KeypairsAreDistinct) {
  EXPECT_NE(rln_keypair(8).pk.circuit_digest,
            rln_v2_keypair(8).pk.circuit_digest);
}

TEST(RlnV2Circuit, ConstraintOverheadIsModest) {
  // The quota machinery (two 16-bit decompositions + comparison + one
  // extra Poseidon) should add well under 50% over v1 at equal depth.
  const std::size_t v1 = rln_constraint_system(8).num_constraints();
  const std::size_t v2 = rln_v2_constraint_system(8).num_constraints();
  EXPECT_GT(v2, v1);
  EXPECT_LT(v2, v1 * 3 / 2);
}

}  // namespace
}  // namespace waku::zksnark
