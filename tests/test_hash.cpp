// Tests for SHA-256 / Keccak-256 against published vectors, and structural
// tests for Poseidon (whose constants are project-specific; see DESIGN.md).
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "ff/fr.hpp"
#include "hash/keccak256.hpp"
#include "hash/poseidon.hpp"
#include "hash/schnorr.hpp"
#include "hash/sha256.hpp"

namespace waku::hash {
namespace {

using ff::Fr;

std::string sha_hex(std::string_view msg) {
  return to_hex(sha256_bytes(to_bytes(msg)));
}

std::string keccak_hex(std::string_view msg) {
  return to_hex(keccak256_bytes(to_bytes(msg)));
}

TEST(Sha256, EmptyVector) {
  EXPECT_EQ(sha_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(sha_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(sha_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, FoxVector) {
  EXPECT_EQ(sha_hex("The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(61);
  const Bytes data = rng.next_bytes(1000);
  Sha256 h;
  // Feed in awkward chunk sizes crossing block boundaries.
  std::size_t off = 0;
  for (std::size_t chunk : {1u, 63u, 64u, 65u, 130u, 500u}) {
    const std::size_t take = std::min(chunk, data.size() - off);
    h.update(BytesView(data.data() + off, take));
    off += take;
  }
  h.update(BytesView(data.data() + off, data.size() - off));
  EXPECT_EQ(h.finalize(), sha256(data));
}

TEST(Sha256, LongInput) {
  const Bytes data(1'000'000, 'a');
  EXPECT_EQ(to_hex(sha256_bytes(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Keccak256, EmptyVector) {
  // keccak256("") — the ubiquitous Ethereum empty hash.
  EXPECT_EQ(keccak_hex(""),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak256, AbcVector) {
  EXPECT_EQ(keccak_hex("abc"),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256, FoxVector) {
  EXPECT_EQ(keccak_hex("The quick brown fox jumps over the lazy dog"),
            "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15");
}

TEST(Keccak256, RateBoundaryLengths) {
  // Exercise lengths around the 136-byte rate: all must be deterministic
  // and distinct.
  std::set<std::string> digests;
  for (std::size_t n : {135u, 136u, 137u, 271u, 272u, 273u}) {
    digests.insert(to_hex(keccak256_bytes(Bytes(n, 0x5a))));
  }
  EXPECT_EQ(digests.size(), 6u);
}

TEST(Keccak256, LeadingZeroBits) {
  Keccak256Digest d{};
  d.fill(0);
  EXPECT_EQ(leading_zero_bits(d), 256);
  d[0] = 0x80;
  EXPECT_EQ(leading_zero_bits(d), 0);
  d[0] = 0x01;
  EXPECT_EQ(leading_zero_bits(d), 7);
  d[0] = 0x00;
  d[1] = 0x10;
  EXPECT_EQ(leading_zero_bits(d), 11);
}

TEST(Poseidon, ParamsShape) {
  for (std::size_t t = 2; t <= 5; ++t) {
    const PoseidonParams& p = poseidon_params(t);
    EXPECT_EQ(p.t, t);
    EXPECT_EQ(p.full_rounds, 8u);
    EXPECT_GE(p.partial_rounds, 56u);
    EXPECT_EQ(p.round_constants.size(), t * p.total_rounds());
    EXPECT_EQ(p.mds.size(), t * t);
  }
}

TEST(Poseidon, MdsMatrixInvertibleEntries) {
  // Cauchy construction guarantees non-zero entries.
  const PoseidonParams& p = poseidon_params(3);
  for (const Fr& e : p.mds) EXPECT_FALSE(e.is_zero());
}

TEST(Poseidon, Deterministic) {
  const Fr a = Fr::from_u64(1);
  const Fr b = Fr::from_u64(2);
  EXPECT_EQ(poseidon2(a, b), poseidon2(a, b));
}

TEST(Poseidon, OrderSensitive) {
  const Fr a = Fr::from_u64(1);
  const Fr b = Fr::from_u64(2);
  EXPECT_NE(poseidon2(a, b), poseidon2(b, a));
}

TEST(Poseidon, ArityDomainSeparation) {
  const Fr a = Fr::from_u64(7);
  EXPECT_NE(poseidon1(a), poseidon2(a, Fr::zero()));
}

TEST(Poseidon, PermutationIsNotIdentity) {
  std::vector<Fr> state = {Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)};
  const std::vector<Fr> before = state;
  poseidon_permute(state);
  EXPECT_NE(state, before);
}

TEST(Poseidon, PermutationIsBijectiveSmoke) {
  // Distinct inputs must map to distinct outputs (injectivity smoke test).
  std::set<std::string> outputs;
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::vector<Fr> state = {Fr::from_u64(i), Fr::zero()};
    poseidon_permute(state);
    outputs.insert(to_hex(state[0].to_bytes_be()));
  }
  EXPECT_EQ(outputs.size(), 64u);
}

TEST(Poseidon, CollisionSmoke) {
  Rng rng(71);
  std::set<std::string> seen;
  for (int i = 0; i < 256; ++i) {
    const Fr h = poseidon2(Fr::random(rng), Fr::random(rng));
    seen.insert(to_hex(h.to_bytes_be()));
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Poseidon, AllAritiesSupported) {
  Rng rng(73);
  const Fr a = Fr::random(rng);
  const Fr b = Fr::random(rng);
  const Fr c = Fr::random(rng);
  const Fr d = Fr::random(rng);
  const std::array<Fr, 4> four{a, b, c, d};
  EXPECT_FALSE(poseidon1(a).is_zero());
  EXPECT_FALSE(poseidon2(a, b).is_zero());
  EXPECT_FALSE(poseidon3(a, b, c).is_zero());
  EXPECT_FALSE(poseidon_hash(four).is_zero());
}

TEST(Poseidon, RejectsUnsupportedArity) {
  const std::vector<Fr> empty;
  EXPECT_THROW(poseidon_hash(empty), ContractViolation);
  const std::vector<Fr> five(5, Fr::one());
  EXPECT_THROW(poseidon_hash(five), ContractViolation);
}

TEST(Poseidon, OutputsAreCanonicalFieldElements) {
  Rng rng(79);
  for (int i = 0; i < 50; ++i) {
    const Fr h = poseidon2(Fr::random(rng), Fr::random(rng));
    EXPECT_LT(h.to_u256(), Fr::kModulus);
  }
}

// -- Schnorr (checkpoint attestation scheme) ---------------------------------

TEST(Schnorr, SignVerifyRoundTrip) {
  Rng rng(0x5C40);
  const schnorr::KeyPair key = schnorr::keygen(rng);
  const Bytes msg = to_bytes("checkpoint payload");
  const schnorr::Signature sig = schnorr::sign(key, msg);
  EXPECT_TRUE(schnorr::verify(key.pk, msg, sig));
  // Deterministic nonces: the same (key, message) re-signs identically.
  EXPECT_EQ(schnorr::sign(key, msg), sig);
  // Serialization round-trips.
  EXPECT_EQ(schnorr::Signature::deserialize(sig.serialize()), sig);
}

TEST(Schnorr, RejectsWrongKeyMessageAndMalleation) {
  Rng rng(0x5C41);
  const schnorr::KeyPair key = schnorr::keygen(rng);
  const schnorr::KeyPair other = schnorr::keygen(rng);
  const Bytes msg = to_bytes("signed");
  const schnorr::Signature sig = schnorr::sign(key, msg);

  EXPECT_FALSE(schnorr::verify(other.pk, msg, sig));          // wrong key
  EXPECT_FALSE(schnorr::verify(key.pk, to_bytes("other"), sig));  // wrong msg
  schnorr::Signature bad = sig;
  bad.s.limb[0] ^= 1;
  EXPECT_FALSE(schnorr::verify(key.pk, msg, bad));            // bent s
  bad = sig;
  bad.r = bad.r + Fr::one();
  EXPECT_FALSE(schnorr::verify(key.pk, msg, bad));            // bent R
  // Out-of-range s (>= group order) is rejected outright, not reduced.
  bad = sig;
  bad.s = schnorr::kGroupOrder;
  EXPECT_FALSE(schnorr::verify(key.pk, msg, bad));
  // Degenerate commitments/keys never verify.
  bad = sig;
  bad.r = Fr::zero();
  EXPECT_FALSE(schnorr::verify(key.pk, msg, bad));
  EXPECT_FALSE(schnorr::verify(Fr::zero(), msg, sig));
}

TEST(Schnorr, NoncesDifferAcrossMessagesUnderOneKey) {
  // Nonce reuse across distinct messages is the classic Schnorr key
  // recovery; the deterministic nonce is keccak(sk || m), so distinct
  // messages must yield distinct commitments.
  Rng rng(0x5C42);
  const schnorr::KeyPair key = schnorr::keygen(rng);
  std::set<Bytes> commitments;
  for (int i = 0; i < 20; ++i) {
    const schnorr::Signature sig =
        schnorr::sign(key, to_bytes("m" + std::to_string(i)));
    commitments.insert(sig.r.to_bytes_be());
  }
  EXPECT_EQ(commitments.size(), 20u);
}

TEST(Schnorr, ExponentArithmeticMatchesFieldSemantics) {
  // mul_mod / add_mod sanity against small values and against Fr (for the
  // prime modulus r, where both pipelines must agree).
  using ff::U256;
  const U256 seven{7}, three{3}, mod{11};
  EXPECT_EQ(ff::mul_mod(seven, three, mod), U256{10});  // 21 mod 11
  EXPECT_EQ(ff::add_mod(seven, three, mod), U256{10});
  Rng rng(0x5C43);
  for (int i = 0; i < 10; ++i) {
    const Fr a = Fr::random(rng);
    const Fr b = Fr::random(rng);
    EXPECT_EQ(ff::mul_mod(a.to_u256(), b.to_u256(), Fr::kModulus),
              (a * b).to_u256());
    EXPECT_EQ(ff::add_mod(a.to_u256(), b.to_u256(), Fr::kModulus),
              (a + b).to_u256());
  }
}

}  // namespace
}  // namespace waku::hash
