// Tests for the discrete-event simulator and the simulated p2p network:
// event ordering, repeating tasks, latency/jitter/loss, clock skew, and
// traffic accounting.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "net/network.hpp"
#include "net/simulator.hpp"

namespace waku::net {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, FifoForEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimeMs fired_at = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_after(25, [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, 125u);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(5, [] {}), ContractViolation);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (TimeMs t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&] { ++count; });
  }
  sim.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50u);
  sim.run_until(100);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RepeatingTaskFiresAtInterval) {
  Simulator sim;
  std::vector<TimeMs> fires;
  sim.schedule_every(10, [&] { fires.push_back(sim.now()); });
  sim.run_until(35);
  EXPECT_EQ(fires, (std::vector<TimeMs>{10, 20, 30}));
}

TEST(Simulator, CancelStopsRepeatingTask) {
  Simulator sim;
  int count = 0;
  const auto id = sim.schedule_every(10, [&] { ++count; });
  sim.run_until(25);
  sim.cancel(id);
  sim.run_until(100);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, CancelOneShot) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, NestedSchedulingDuringStep) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 4u);
}

// -- Network ---------------------------------------------------------------

class Recorder : public NetNode {
 public:
  struct Received {
    NodeId from;
    Bytes payload;
    TimeMs at;
  };
  explicit Recorder(Simulator& sim) : sim_(sim) {}
  void on_message(NodeId from, BytesView payload) override {
    received.push_back({from, Bytes(payload.begin(), payload.end()),
                        sim_.now()});
  }
  Simulator& sim_;
  std::vector<Received> received;
};

struct NetFixture : ::testing::Test {
  Simulator sim;
  LinkConfig link{.base_latency_ms = 40, .jitter_ms = 0, .loss_rate = 0.0};
  Network net{sim, link, 7};
  Recorder a{sim}, b{sim}, c{sim};
  NodeId ida = 0, idb = 0, idc = 0;

  void SetUp() override {
    ida = net.add_node(&a);
    idb = net.add_node(&b);
    idc = net.add_node(&c);
    net.connect(ida, idb);
    net.connect(idb, idc);
  }
};

TEST_F(NetFixture, DeliversWithLatency) {
  net.send(ida, idb, to_bytes("hello"));
  sim.run_all();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].from, ida);
  EXPECT_EQ(to_string(b.received[0].payload), "hello");
  EXPECT_EQ(b.received[0].at, 40u);
}

TEST_F(NetFixture, NoDeliveryWithoutLink) {
  net.send(ida, idc, to_bytes("x"));  // a and c are not connected
  sim.run_all();
  EXPECT_TRUE(c.received.empty());
}

TEST_F(NetFixture, DisconnectStopsTraffic) {
  net.disconnect(ida, idb);
  net.send(ida, idb, to_bytes("x"));
  sim.run_all();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetFixture, JitterBoundsDelay) {
  LinkConfig jittery{.base_latency_ms = 40, .jitter_ms = 20, .loss_rate = 0.0};
  Simulator sim2;
  Network net2(sim2, jittery, 11);
  Recorder r1(sim2), r2(sim2);
  const NodeId n1 = net2.add_node(&r1);
  const NodeId n2 = net2.add_node(&r2);
  net2.connect(n1, n2);
  for (int i = 0; i < 100; ++i) net2.send(n1, n2, to_bytes("m"));
  sim2.run_all();
  ASSERT_EQ(r2.received.size(), 100u);
  for (const auto& rec : r2.received) {
    EXPECT_GE(rec.at, 40u);
    EXPECT_LE(rec.at, 60u);
  }
}

TEST_F(NetFixture, LossDropsSomeMessages) {
  LinkConfig lossy{.base_latency_ms = 10, .jitter_ms = 0, .loss_rate = 0.5};
  Simulator sim2;
  Network net2(sim2, lossy, 13);
  Recorder r1(sim2), r2(sim2);
  const NodeId n1 = net2.add_node(&r1);
  const NodeId n2 = net2.add_node(&r2);
  net2.connect(n1, n2);
  for (int i = 0; i < 1000; ++i) net2.send(n1, n2, to_bytes("m"));
  sim2.run_all();
  EXPECT_GT(r2.received.size(), 350u);
  EXPECT_LT(r2.received.size(), 650u);
}

TEST_F(NetFixture, ClockSkewShiftsLocalTime) {
  net.set_clock_skew(ida, +500);
  net.set_clock_skew(idb, -200);
  sim.schedule_at(1000, [] {});
  sim.run_all();
  EXPECT_EQ(net.local_time(ida), 1500u);
  EXPECT_EQ(net.local_time(idb), 800u);
  EXPECT_EQ(net.local_time(idc), 1000u);
}

TEST_F(NetFixture, NegativeSkewClampsAtZero) {
  net.set_clock_skew(ida, -5000);
  EXPECT_EQ(net.local_time(ida), 0u);
}

TEST_F(NetFixture, TrafficAccounting) {
  net.send(ida, idb, Bytes(100, 0));
  net.send(idb, ida, Bytes(50, 0));
  sim.run_all();
  EXPECT_EQ(net.stats(ida).messages_sent, 1u);
  EXPECT_EQ(net.stats(ida).bytes_sent, 100u);
  EXPECT_EQ(net.stats(ida).messages_received, 1u);
  EXPECT_EQ(net.stats(ida).bytes_received, 50u);
  const TrafficStats total = net.total_stats();
  EXPECT_EQ(total.bytes_sent, 150u);
  EXPECT_EQ(total.bytes_received, 150u);
  net.reset_stats();
  EXPECT_EQ(net.total_stats().bytes_sent, 0u);
}

TEST(NetworkTopology, RandomGraphMeetsDegree) {
  Simulator sim;
  Network net(sim, LinkConfig{}, 17);
  std::vector<std::unique_ptr<Recorder>> nodes;
  for (int i = 0; i < 50; ++i) {
    nodes.push_back(std::make_unique<Recorder>(sim));
    net.add_node(nodes.back().get());
  }
  Rng rng(19);
  net.connect_random(6, rng);
  for (NodeId i = 0; i < 50; ++i) {
    EXPECT_GE(net.neighbors(i).size(), 6u) << "node " << i;
  }
}

}  // namespace
}  // namespace waku::net
