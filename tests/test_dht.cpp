// Tests for the Kademlia DHT substrate and the DHT-backed group directory
// (the paper's §IV-A future-work extension).
#include <gtest/gtest.h>

#include <memory>

#include "dht/kademlia.hpp"
#include "hash/poseidon.hpp"
#include "rln/dht_group.hpp"

namespace waku::dht {
namespace {

TEST(XorMetric, Identity) {
  const Key a = key_of_content(to_bytes("a"));
  EXPECT_EQ(bucket_index(xor_distance(a, a)), -1);
}

TEST(XorMetric, Symmetry) {
  const Key a = key_of_content(to_bytes("a"));
  const Key b = key_of_content(to_bytes("b"));
  EXPECT_EQ(xor_distance(a, b), xor_distance(b, a));
}

TEST(XorMetric, TriangleViaXor) {
  // d(a,c) = d(a,b) XOR d(b,c) — the defining Kademlia property.
  const Key a = key_of_content(to_bytes("a"));
  const Key b = key_of_content(to_bytes("b"));
  const Key c = key_of_content(to_bytes("c"));
  EXPECT_EQ(xor_distance(a, c),
            xor_distance(xor_distance(a, b), xor_distance(b, c)));
}

TEST(XorMetric, BucketIndexMatchesHighBit) {
  Key d{};
  d[0] = 0x80;
  EXPECT_EQ(bucket_index(d), 255);
  d[0] = 0x01;
  EXPECT_EQ(bucket_index(d), 248);
  d[0] = 0;
  d[31] = 0x01;
  EXPECT_EQ(bucket_index(d), 0);
}

struct DhtSwarm {
  net::Simulator sim;
  net::Network net{sim, {.base_latency_ms = 10, .jitter_ms = 5,
                         .loss_rate = 0}, 0xD47};
  std::vector<std::unique_ptr<DhtNode>> nodes;

  explicit DhtSwarm(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<DhtNode>(net));
    }
    // Full mesh links (the DHT's own routing chooses who to talk to).
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        net.connect(nodes[i]->node_id(), nodes[j]->node_id());
      }
    }
    for (std::size_t i = 1; i < n; ++i) {
      nodes[i]->bootstrap(nodes[0]->node_id());
      sim.run_until(sim.now() + 500);
    }
    sim.run_until(sim.now() + 2'000);
  }
};

TEST(Dht, BootstrapPopulatesRoutingTables) {
  DhtSwarm swarm(20);
  for (const auto& node : swarm.nodes) {
    EXPECT_GE(node->known_peers(), 3u);
  }
}

TEST(Dht, PutThenGetFromAnyNode) {
  DhtSwarm swarm(20);
  const Key key = key_of_content(to_bytes("the-answer"));
  bool stored = false;
  swarm.nodes[3]->put(key, to_bytes("42"), [&](std::size_t) { stored = true; });
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  ASSERT_TRUE(stored);

  // Every node can retrieve it, not just the writer.
  for (const std::size_t reader : {0u, 7u, 19u}) {
    std::optional<Bytes> got;
    swarm.nodes[reader]->get(key, [&](std::optional<Bytes> v) { got = v; });
    swarm.sim.run_until(swarm.sim.now() + 3'000);
    ASSERT_TRUE(got.has_value()) << "reader " << reader;
    EXPECT_EQ(to_string(*got), "42");
  }
}

TEST(Dht, ValuesAreReplicated) {
  DhtSwarm swarm(20);
  const Key key = key_of_content(to_bytes("replicated"));
  std::size_t replicas = 0;
  swarm.nodes[0]->put(key, to_bytes("v"),
                      [&](std::size_t n) { replicas = n; });
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  EXPECT_GE(replicas, DhtConfig{}.k / 2);

  std::size_t holders = 0;
  for (const auto& node : swarm.nodes) {
    holders += node->stored_values() > 0 ? 1 : 0;
  }
  EXPECT_GE(holders, 2u);
}

TEST(Dht, MissingKeyReturnsNullopt) {
  DhtSwarm swarm(10);
  std::optional<Bytes> got = to_bytes("sentinel");
  bool called = false;
  swarm.nodes[2]->get(key_of_content(to_bytes("never-stored")),
                      [&](std::optional<Bytes> v) {
                        got = std::move(v);
                        called = true;
                      });
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
}

TEST(Dht, OverwriteUpdatesValue) {
  DhtSwarm swarm(12);
  const Key key = key_of_content(to_bytes("counter"));
  swarm.nodes[1]->put(key, to_bytes("one"), nullptr);
  swarm.sim.run_until(swarm.sim.now() + 2'000);
  swarm.nodes[5]->put(key, to_bytes("two"), nullptr);
  swarm.sim.run_until(swarm.sim.now() + 2'000);

  std::optional<Bytes> got;
  swarm.nodes[9]->get(key, [&](std::optional<Bytes> v) { got = v; });
  swarm.sim.run_until(swarm.sim.now() + 2'000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(*got), "two");
}

}  // namespace
}  // namespace waku::dht

namespace waku::rln {
namespace {

using dht::DhtNode;

struct DirectorySwarm {
  net::Simulator sim;
  net::Network net{sim, {.base_latency_ms = 10, .jitter_ms = 5,
                         .loss_rate = 0}, 0xD48};
  std::vector<std::unique_ptr<DhtNode>> nodes;

  explicit DirectorySwarm(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<DhtNode>(net));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        net.connect(nodes[i]->node_id(), nodes[j]->node_id());
      }
    }
    for (std::size_t i = 1; i < n; ++i) {
      nodes[i]->bootstrap(nodes[0]->node_id());
      sim.run_until(sim.now() + 300);
    }
    sim.run_until(sim.now() + 2'000);
  }
};

TEST(DhtGroup, RegisterAssignsSequentialIndices) {
  DirectorySwarm swarm(15);
  DhtGroupDirectory dir_a(*swarm.nodes[1], "g");
  DhtGroupDirectory dir_b(*swarm.nodes[2], "g");

  std::vector<std::uint64_t> indices;
  dir_a.register_member(hash::poseidon1(Fr::from_u64(1)),
                        [&](std::uint64_t i) { indices.push_back(i); });
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  dir_b.register_member(hash::poseidon1(Fr::from_u64(2)),
                        [&](std::uint64_t i) { indices.push_back(i); });
  swarm.sim.run_until(swarm.sim.now() + 3'000);

  ASSERT_EQ(indices.size(), 2u);
  EXPECT_EQ(indices[0], 0u);
  EXPECT_EQ(indices[1], 1u);
}

TEST(DhtGroup, SyncFeedsGroupManagerAndRootsConverge) {
  DirectorySwarm swarm(15);
  DhtGroupDirectory writer(*swarm.nodes[1], "g2");

  // Register three members through the DHT.
  for (std::uint64_t m = 0; m < 3; ++m) {
    bool done = false;
    writer.register_member(hash::poseidon1(Fr::from_u64(100 + m)),
                           [&](std::uint64_t) { done = true; });
    swarm.sim.run_until(swarm.sim.now() + 3'000);
    ASSERT_TRUE(done) << "member " << m;
  }

  // Two independent peers sync their trees from the directory.
  GroupManager group_a(10, TreeMode::kFullTree);
  GroupManager group_b(10, TreeMode::kFullTree);
  DhtGroupDirectory reader_a(*swarm.nodes[5], "g2");
  DhtGroupDirectory reader_b(*swarm.nodes[9], "g2");
  std::uint64_t added_a = 0;
  std::uint64_t added_b = 0;
  reader_a.sync(group_a, [&](std::uint64_t n) { added_a = n; });
  reader_b.sync(group_b, [&](std::uint64_t n) { added_b = n; });
  swarm.sim.run_until(swarm.sim.now() + 5'000);

  EXPECT_EQ(added_a, 3u);
  EXPECT_EQ(added_b, 3u);
  EXPECT_EQ(group_a.member_count(), 3u);
  EXPECT_EQ(group_a.root(), group_b.root());

  // The resulting tree matches a contract-style build of the same group.
  GroupManager reference(10, TreeMode::kFullTree);
  for (std::uint64_t m = 0; m < 3; ++m) {
    chain::Event ev;
    ev.name = "MemberRegistered";
    ev.topics = {ff::U256{m}, hash::poseidon1(Fr::from_u64(100 + m)).to_u256()};
    reference.on_event(ev);
  }
  EXPECT_EQ(group_a.root(), reference.root());
}

TEST(DhtGroup, IncrementalSyncOnlyFetchesNewMembers) {
  DirectorySwarm swarm(12);
  DhtGroupDirectory writer(*swarm.nodes[1], "g3");
  GroupManager group(10, TreeMode::kFullTree);
  DhtGroupDirectory reader(*swarm.nodes[4], "g3");

  writer.register_member(hash::poseidon1(Fr::from_u64(1)), nullptr);
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  reader.sync(group, nullptr);
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  ASSERT_EQ(group.member_count(), 1u);

  writer.register_member(hash::poseidon1(Fr::from_u64(2)), nullptr);
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  std::uint64_t added = 99;
  reader.sync(group, [&](std::uint64_t n) { added = n; });
  swarm.sim.run_until(swarm.sim.now() + 3'000);
  EXPECT_EQ(added, 1u);  // only the new member was fetched
  EXPECT_EQ(group.member_count(), 2u);
}

}  // namespace
}  // namespace waku::rln
