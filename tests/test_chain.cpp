// Tests for the chain simulator and both membership contracts: gas
// accounting, balances, reverts, events, the flat-list vs on-chain-tree
// cost asymmetry (paper §III-A), commit-reveal slashing (§III-F), and the
// early-withdrawal escape (§IV-B).
#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "chain/rln_contract.hpp"
#include "chain/semaphore_contract.hpp"
#include "common/rng.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "rln/group_manager.hpp"

namespace waku::chain {
namespace {

using ff::Fr;
using ff::U256;

constexpr Gwei kDeposit = 1'000'000;  // 0.001 ETH in gwei

struct ChainFixture : ::testing::Test {
  Blockchain chain;
  Address rln_addr;
  Address alice = Address::from_u64(0xA11CE);
  Address bob = Address::from_u64(0xB0B);
  Rng rng{31337};

  void SetUp() override {
    rln_addr = chain.deploy(std::make_unique<RlnMembershipContract>(kDeposit));
    chain.create_account(alice, 100 * kGweiPerEth);
    chain.create_account(bob, 100 * kGweiPerEth);
  }

  RlnMembershipContract& rln() {
    return chain.contract_at<RlnMembershipContract>(rln_addr);
  }

  Transaction register_tx(const Address& from, const Fr& pk) {
    Transaction tx;
    tx.from = from;
    tx.to = rln_addr;
    tx.method = "register";
    tx.calldata = pk.to_bytes_be();
    tx.value = kDeposit;
    return tx;
  }

  TxReceipt run(Transaction tx) {
    const auto handle = chain.submit(std::move(tx));
    chain.mine_block(chain.height() * 12'000);
    return *chain.receipt(handle);
  }
};

TEST_F(ChainFixture, AccountsAndBalances) {
  EXPECT_EQ(chain.balance(alice), 100 * kGweiPerEth);
  EXPECT_EQ(chain.balance(Address::from_u64(999)), 0u);
}

TEST_F(ChainFixture, RegisterSucceedsAndDepositsStake) {
  const Fr sk = Fr::random(rng);
  const Fr pk = hash::poseidon1(sk);
  const TxReceipt r = run(register_tx(alice, pk));
  ASSERT_TRUE(r.success) << r.revert_reason;
  EXPECT_EQ(rln().member_count_view(), 1u);
  EXPECT_EQ(rln().member_at_view(0), pk.to_u256());
  EXPECT_EQ(chain.balance(rln_addr), kDeposit);
}

TEST_F(ChainFixture, RegisterEmitsEvent) {
  const Fr pk = hash::poseidon1(Fr::random(rng));
  const TxReceipt r = run(register_tx(alice, pk));
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].name, "MemberRegistered");
  EXPECT_EQ(r.events[0].topics[0], U256{0});
  EXPECT_EQ(r.events[0].topics[1], pk.to_u256());
}

TEST_F(ChainFixture, RegisterChargesFeeFromSender) {
  const Gwei before = chain.balance(alice);
  const TxReceipt r = run(register_tx(alice, hash::poseidon1(Fr::one())));
  ASSERT_TRUE(r.success);
  EXPECT_EQ(chain.balance(alice), before - kDeposit - r.fee_paid);
}

TEST_F(ChainFixture, RegisterGasIsNearPaperFigure) {
  // Paper §IV-A: ~40k gas per membership on the flat-list contract. The
  // first registration pays a one-time count-slot initialization, so the
  // steady-state figure is the second one.
  ASSERT_TRUE(run(register_tx(bob, hash::poseidon1(Fr::from_u64(2)))).success);
  const TxReceipt r = run(register_tx(alice, hash::poseidon1(Fr::one())));
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.gas_used, 30'000u);
  EXPECT_LT(r.gas_used, 55'000u);
}

TEST_F(ChainFixture, WrongDepositReverts) {
  Transaction tx = register_tx(alice, hash::poseidon1(Fr::one()));
  tx.value = kDeposit / 2;
  const TxReceipt r = run(std::move(tx));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "register: wrong deposit");
  EXPECT_EQ(rln().member_count_view(), 0u);
  EXPECT_EQ(chain.balance(rln_addr), 0u);  // value transfer unwound
}

TEST_F(ChainFixture, ZeroCommitmentReverts) {
  const TxReceipt r = run(register_tx(alice, Fr::zero()));
  EXPECT_FALSE(r.success);
}

TEST_F(ChainFixture, RevertRefundsValueButChargesGas) {
  const Gwei before = chain.balance(alice);
  Transaction tx = register_tx(alice, hash::poseidon1(Fr::one()));
  tx.value = 1;  // wrong deposit
  const TxReceipt r = run(std::move(tx));
  ASSERT_FALSE(r.success);
  EXPECT_GT(r.fee_paid, 0u);
  EXPECT_EQ(chain.balance(alice), before - r.fee_paid);
}

TEST_F(ChainFixture, InsufficientFundsFailsWithoutStateChange) {
  const Address pauper = Address::from_u64(0xDEAD);
  chain.create_account(pauper, 10);  // can't even cover gas
  const TxReceipt r = run(register_tx(pauper, hash::poseidon1(Fr::one())));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(chain.balance(pauper), 10u);
}

TEST_F(ChainFixture, BatchRegistrationAmortizesGas) {
  // Paper §IV-A: batching halves per-member insertion cost (~40k -> ~20k).
  const TxReceipt single = run(register_tx(alice, hash::poseidon1(Fr::one())));

  constexpr std::uint32_t kBatch = 16;
  ByteWriter w;
  w.write_u32(kBatch);
  for (std::uint32_t i = 0; i < kBatch; ++i) {
    w.write_raw(hash::poseidon1(Fr::from_u64(100 + i)).to_bytes_be());
  }
  Transaction tx;
  tx.from = bob;
  tx.to = rln_addr;
  tx.method = "register_batch";
  tx.calldata = std::move(w).take();
  tx.value = kDeposit * kBatch;
  const TxReceipt batch = run(std::move(tx));
  ASSERT_TRUE(batch.success) << batch.revert_reason;
  EXPECT_EQ(rln().member_count_view(), 1 + kBatch);

  const std::uint64_t per_member = batch.gas_used / kBatch;
  EXPECT_LT(per_member, single.gas_used * 6 / 10);  // >=40% saving
}

TEST_F(ChainFixture, BatchRegistrationEmitsOneFoldedEvent) {
  // One MembersRegistered event for the whole batch; GroupManager folds it
  // into a single root transition (no intermediate roots in the window).
  constexpr std::uint32_t kBatch = 8;
  ByteWriter w;
  w.write_u32(kBatch);
  std::vector<Fr> pks;
  for (std::uint32_t i = 0; i < kBatch; ++i) {
    pks.push_back(hash::poseidon1(Fr::from_u64(500 + i)));
    w.write_raw(pks.back().to_bytes_be());
  }
  Transaction tx;
  tx.from = alice;
  tx.to = rln_addr;
  tx.method = "register_batch";
  tx.calldata = std::move(w).take();
  tx.value = kDeposit * kBatch;
  const TxReceipt r = run(std::move(tx));
  ASSERT_TRUE(r.success) << r.revert_reason;
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].name, "MembersRegistered");
  EXPECT_EQ(r.events[0].topics[0], U256{0});       // base index
  EXPECT_EQ(r.events[0].topics[1], U256{kBatch});  // count
  EXPECT_EQ(r.events[0].data.size(), std::size_t{kBatch} * 32);

  rln::GroupManager folded(20, rln::TreeMode::kFullTree, 10);
  const std::size_t roots_before = folded.recent_root_count();
  folded.on_event(r.events[0]);
  EXPECT_EQ(folded.member_count(), kBatch);
  EXPECT_EQ(folded.recent_root_count(), roots_before + 1);

  // Folded root == the root after the same leaves inserted one at a time.
  merkle::IncrementalMerkleTree reference(20);
  for (const Fr& pk : pks) reference.insert(pk);
  EXPECT_EQ(folded.root(), reference.root());
}

TEST_F(ChainFixture, ReplayCursorCrossesBatchAtomically) {
  // A batch is ONE event in the global log: a restarting follower whose
  // cursor sits just before it replays the whole batch in one on_event and
  // lands on the same state as a follower that never crashed.
  ASSERT_TRUE(
      run(register_tx(alice, hash::poseidon1(Fr::from_u64(1)))).success);

  rln::GroupManager live(20, rln::TreeMode::kFullTree, 10);
  chain.replay_events(0, [&](const Event& ev) { live.on_event(ev); });
  const std::uint64_t cursor = chain.event_count();  // pre-batch cursor

  constexpr std::uint32_t kBatch = 5;
  ByteWriter w;
  w.write_u32(kBatch);
  for (std::uint32_t i = 0; i < kBatch; ++i) {
    w.write_raw(hash::poseidon1(Fr::from_u64(600 + i)).to_bytes_be());
  }
  Transaction tx;
  tx.from = bob;
  tx.to = rln_addr;
  tx.method = "register_batch";
  tx.calldata = std::move(w).take();
  tx.value = kDeposit * kBatch;
  ASSERT_TRUE(run(std::move(tx)).success);
  ASSERT_EQ(chain.event_count(), cursor + 1);  // the batch is one record

  // "Crash-restart": resume a second follower from the saved cursor.
  chain.replay_events(cursor, [&](const Event& ev) { live.on_event(ev); });
  rln::GroupManager restarted(20, rln::TreeMode::kFullTree, 10);
  chain.replay_events(0, [&](const Event& ev) { restarted.on_event(ev); });
  EXPECT_EQ(restarted.member_count(), live.member_count());
  EXPECT_EQ(restarted.root(), live.root());
}

TEST_F(ChainFixture, BatchWithWrongValueReverts) {
  ByteWriter w;
  w.write_u32(2);
  w.write_raw(hash::poseidon1(Fr::from_u64(1)).to_bytes_be());
  w.write_raw(hash::poseidon1(Fr::from_u64(2)).to_bytes_be());
  Transaction tx;
  tx.from = alice;
  tx.to = rln_addr;
  tx.method = "register_batch";
  tx.calldata = std::move(w).take();
  tx.value = kDeposit;  // should be 2x
  EXPECT_FALSE(run(std::move(tx)).success);
}

TEST_F(ChainFixture, WithdrawBatchRefundsAndFoldsRemovals) {
  // Six members, then one withdraw_batch removing #1 and #4: one payout,
  // one event, and both a full-tree follower and a checkpoint-bootstrapped
  // root tracker fold it into a single root transition.
  std::vector<Fr> sks;
  std::vector<Fr> pks;
  for (std::uint64_t i = 0; i < 6; ++i) {
    sks.push_back(Fr::from_u64(900 + i));
    pks.push_back(hash::poseidon1(sks.back()));
    ASSERT_TRUE(run(register_tx(alice, pks.back())).success);
  }

  rln::GroupManager full(20, rln::TreeMode::kFullTree, 10);
  chain.replay_events(0, [&](const Event& ev) { full.on_event(ev); });
  rln::GroupManager tracker =
      rln::GroupManager::from_checkpoint(full.export_checkpoint(), 10);

  // Paths must be sequentially valid: record i is checked against the
  // tree after records 0..i-1, so compute them against a mutating mirror.
  merkle::IncrementalMerkleTree mirror(20);
  for (const Fr& pk : pks) mirror.insert(pk);
  ByteWriter w;
  w.write_u32(2);
  for (std::uint64_t index : {std::uint64_t{1}, std::uint64_t{4}}) {
    w.write_raw(sks[index].to_bytes_be());
    w.write_u64(index);
    w.write_bytes(merkle::serialize_path(mirror.auth_path(index)));
    mirror.remove(index);
  }
  Transaction tx;
  tx.from = bob;
  tx.to = rln_addr;
  tx.method = "withdraw_batch";
  tx.calldata = std::move(w).take();
  const Gwei before = chain.balance(bob);
  const TxReceipt r = run(std::move(tx));
  ASSERT_TRUE(r.success) << r.revert_reason;
  EXPECT_EQ(chain.balance(bob), before + 2 * kDeposit - r.fee_paid);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].name, "MembersWithdrawn");
  EXPECT_EQ(r.events[0].topics[0], U256{2});
  EXPECT_TRUE(rln().member_at_view(1).is_zero());
  EXPECT_TRUE(rln().member_at_view(4).is_zero());

  const std::size_t full_roots = full.recent_root_count();
  const std::size_t tracker_roots = tracker.recent_root_count();
  full.on_event(r.events[0]);
  tracker.on_event(r.events[0]);
  EXPECT_EQ(full.root(), mirror.root());
  EXPECT_EQ(tracker.root(), mirror.root());
  EXPECT_EQ(full.recent_root_count(), full_roots + 1);
  EXPECT_EQ(tracker.recent_root_count(), tracker_roots + 1);
}

struct SlashFixture : ChainFixture {
  Fr spammer_sk;
  std::uint64_t spammer_index = 0;

  void SetUp() override {
    ChainFixture::SetUp();
    spammer_sk = Fr::random(rng);
    const TxReceipt r = run(register_tx(alice, hash::poseidon1(spammer_sk)));
    ASSERT_TRUE(r.success);
    spammer_index = 0;
  }

  Transaction commit_tx(const Address& slasher, const U256& salt) {
    Transaction tx;
    tx.from = slasher;
    tx.to = rln_addr;
    tx.method = "commit_slash";
    tx.calldata = u256_to_bytes_be(RlnMembershipContract::make_slash_commitment(
        spammer_sk, salt, slasher));
    return tx;
  }

  Transaction reveal_tx(const Address& slasher, const U256& salt) {
    ByteWriter w;
    w.write_raw(spammer_sk.to_bytes_be());
    w.write_raw(u256_to_bytes_be(salt));
    w.write_u64(spammer_index);
    Transaction tx;
    tx.from = slasher;
    tx.to = rln_addr;
    tx.method = "reveal_slash";
    tx.calldata = std::move(w).take();
    return tx;
  }
};

TEST_F(SlashFixture, CommitRevealSlashPaysReward) {
  const U256 salt{777};
  ASSERT_TRUE(run(commit_tx(bob, salt)).success);

  const Gwei before = chain.balance(bob);
  const TxReceipt r = run(reveal_tx(bob, salt));
  ASSERT_TRUE(r.success) << r.revert_reason;
  EXPECT_EQ(chain.balance(bob), before + kDeposit - r.fee_paid);
  EXPECT_TRUE(rln().member_at_view(spammer_index).is_zero());
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].name, "MemberSlashed");
}

TEST_F(SlashFixture, RevealInSameBlockAsCommitReverts) {
  const U256 salt{778};
  chain.submit(commit_tx(bob, salt));
  const auto h = chain.submit(reveal_tx(bob, salt));
  chain.mine_block(24'000);
  EXPECT_FALSE(chain.receipt(h)->success);  // commit not yet mature
}

TEST_F(SlashFixture, RevealWithoutCommitReverts) {
  const TxReceipt r = run(reveal_tx(bob, U256{779}));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "reveal_slash: no matching commitment");
}

TEST_F(SlashFixture, CopiedRevealCannotStealReward) {
  // The §III-F race: alice observes bob's reveal in the mempool and copies
  // the sk. With commit-reveal, her reveal fails (commitment binds bob).
  const U256 salt{780};
  ASSERT_TRUE(run(commit_tx(bob, salt)).success);

  // Alice's copied reveal, front-running bob's in the same block.
  ByteWriter w;
  w.write_raw(spammer_sk.to_bytes_be());
  w.write_raw(u256_to_bytes_be(salt));
  w.write_u64(spammer_index);
  Transaction steal;
  steal.from = alice;
  steal.to = rln_addr;
  steal.method = "reveal_slash";
  steal.calldata = std::move(w).take();

  const auto h_alice = chain.submit(std::move(steal));
  const auto h_bob = chain.submit(reveal_tx(bob, salt));
  chain.mine_block(36'000);
  EXPECT_FALSE(chain.receipt(h_alice)->success);
  EXPECT_TRUE(chain.receipt(h_bob)->success);
}

TEST_F(SlashFixture, DirectSlashIsFrontRunnable) {
  // Without commit-reveal the copier who lands first wins — the race the
  // paper warns about (E10 quantifies it).
  ByteWriter w;
  w.write_raw(spammer_sk.to_bytes_be());
  w.write_u64(spammer_index);
  Transaction honest;
  honest.from = bob;
  honest.to = rln_addr;
  honest.method = "slash_direct";
  honest.calldata = w.data();

  Transaction thief = honest;
  thief.from = alice;  // front-runner

  const auto h_thief = chain.submit(std::move(thief));
  const auto h_honest = chain.submit(std::move(honest));
  chain.mine_block(12'000);
  EXPECT_TRUE(chain.receipt(h_thief)->success);
  EXPECT_FALSE(chain.receipt(h_honest)->success);
}

TEST_F(SlashFixture, SlashWithWrongSkReverts) {
  ByteWriter w;
  w.write_raw(Fr::random(rng).to_bytes_be());
  w.write_u64(spammer_index);
  Transaction tx;
  tx.from = bob;
  tx.to = rln_addr;
  tx.method = "slash_direct";
  tx.calldata = std::move(w).take();
  const TxReceipt r = run(std::move(tx));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.revert_reason, "identity key does not match member");
}

TEST_F(SlashFixture, WithdrawReturnsDeposit) {
  // §IV-B "escaping punishment by early withdrawal": the spammer exits
  // before being slashed and reclaims the stake.
  ByteWriter w;
  w.write_raw(spammer_sk.to_bytes_be());
  w.write_u64(spammer_index);
  Transaction tx;
  tx.from = alice;
  tx.to = rln_addr;
  tx.method = "withdraw";
  tx.calldata = std::move(w).take();
  const Gwei before = chain.balance(alice);
  const TxReceipt r = run(std::move(tx));
  ASSERT_TRUE(r.success);
  EXPECT_EQ(chain.balance(alice), before + kDeposit - r.fee_paid);

  // Late slashing attempt now fails: the slot is empty.
  ByteWriter w2;
  w2.write_raw(spammer_sk.to_bytes_be());
  w2.write_u64(spammer_index);
  Transaction slash;
  slash.from = bob;
  slash.to = rln_addr;
  slash.method = "slash_direct";
  slash.calldata = std::move(w2).take();
  EXPECT_FALSE(run(std::move(slash)).success);
}

TEST_F(ChainFixture, EventsReachSubscribers) {
  std::vector<std::string> seen;
  chain.subscribe_events([&](const Event& ev) { seen.push_back(ev.name); });
  run(register_tx(alice, hash::poseidon1(Fr::one())));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "MemberRegistered");
}

TEST_F(ChainFixture, PendingTransactionsWaitForBlock) {
  chain.submit(register_tx(alice, hash::poseidon1(Fr::one())));
  EXPECT_EQ(chain.pending_count(), 1u);
  EXPECT_EQ(rln().member_count_view(), 0u);  // not yet visible (§IV-A delay)
  chain.mine_block(12'000);
  EXPECT_EQ(chain.pending_count(), 0u);
  EXPECT_EQ(rln().member_count_view(), 1u);
}

TEST_F(ChainFixture, StaticCallDoesNotMutate) {
  run(register_tx(alice, hash::poseidon1(Fr::one())));
  const Bytes out = chain.static_call(rln_addr, "member_count", {});
  ByteReader r(out);
  EXPECT_EQ(r.read_u64(), 1u);
  EXPECT_EQ(chain.balance(alice), chain.balance(alice));
}

TEST_F(ChainFixture, UnknownMethodReverts) {
  Transaction tx;
  tx.from = alice;
  tx.to = rln_addr;
  tx.method = "no_such_method";
  EXPECT_FALSE(run(std::move(tx)).success);
}

// --- Semaphore baseline contract ---

struct SemaphoreFixture : ::testing::Test {
  static constexpr std::size_t kDepth = 16;
  Blockchain chain;
  Address sem_addr;
  Address alice = Address::from_u64(0xA11CE);
  Rng rng{271828};

  void SetUp() override {
    sem_addr =
        chain.deploy(std::make_unique<SemaphoreContract>(kDepth, kDeposit));
    chain.create_account(alice, 1000 * kGweiPerEth);
  }

  SemaphoreContract& sem() {
    return chain.contract_at<SemaphoreContract>(sem_addr);
  }

  TxReceipt register_pk(const Fr& pk) {
    Transaction tx;
    tx.from = alice;
    tx.to = sem_addr;
    tx.method = "register";
    tx.calldata = pk.to_bytes_be();
    tx.value = kDeposit;
    const auto h = chain.submit(std::move(tx));
    chain.mine_block(chain.height() * 12'000);
    return *chain.receipt(h);
  }
};

TEST_F(SemaphoreFixture, OnChainTreeMatchesOffChainTree) {
  merkle::IncrementalMerkleTree reference(kDepth);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Fr pk = hash::poseidon1(Fr::from_u64(500 + i));
    ASSERT_TRUE(register_pk(pk).success);
    reference.insert(pk);
    EXPECT_EQ(sem().root_view(), reference.root().to_u256()) << "member " << i;
  }
}

TEST_F(SemaphoreFixture, InsertionGasIsLogarithmicAndLarge) {
  // The §III-A motivation: on-chain tree maintenance costs orders of
  // magnitude more than the flat list (which is ~40k).
  const TxReceipt r = register_pk(hash::poseidon1(Fr::one()));
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.gas_used, 500'000u);  // ~depth * (poseidon + sstore)
}

TEST_F(SemaphoreFixture, RemovalCostsAsMuchAsInsertion) {
  ASSERT_TRUE(register_pk(hash::poseidon1(Fr::one())).success);
  ByteWriter w;
  w.write_u64(0);
  Transaction tx;
  tx.from = alice;
  tx.to = sem_addr;
  tx.method = "remove";
  tx.calldata = std::move(w).take();
  const auto h = chain.submit(std::move(tx));
  chain.mine_block(99'000);
  const TxReceipt r = *chain.receipt(h);
  ASSERT_TRUE(r.success) << r.revert_reason;
  EXPECT_GT(r.gas_used, 500'000u);

  merkle::IncrementalMerkleTree reference(kDepth);
  reference.insert(hash::poseidon1(Fr::one()));
  reference.remove(0);
  EXPECT_EQ(sem().root_view(), reference.root().to_u256());
}

TEST_F(SemaphoreFixture, BroadcastStoresSignalAndBlocksDoubles) {
  ASSERT_TRUE(register_pk(hash::poseidon1(Fr::one())).success);

  const U256 nullifier{42};
  ByteWriter w;
  w.write_raw(u256_to_bytes_be(nullifier));
  const Bytes payload = to_bytes("hello semaphore");
  w.write_u32(static_cast<std::uint32_t>(payload.size()));
  w.write_raw(payload);

  Transaction tx;
  tx.from = alice;
  tx.to = sem_addr;
  tx.method = "broadcast_signal";
  tx.calldata = w.data();
  const auto h1 = chain.submit(tx);
  chain.mine_block(50'000);
  const TxReceipt r1 = *chain.receipt(h1);
  ASSERT_TRUE(r1.success) << r1.revert_reason;
  EXPECT_EQ(sem().signal_count_view(), 1u);
  // Messaging through the contract costs real gas per message (E9).
  EXPECT_GT(r1.gas_used, SemaphoreContract::kGroth16VerifyGas);

  // Same nullifier again: double-signal rejected on-chain.
  const auto h2 = chain.submit(tx);
  chain.mine_block(62'000);
  EXPECT_FALSE(chain.receipt(h2)->success);
}

TEST(EventCodec, RoundTripsEveryField) {
  Event ev;
  ev.contract = Address::from_u64(0xC0DE);
  ev.name = "MemberSlashed";
  ev.topics = {U256{7}, U256{1, 2, 3, 4}, U256{~std::uint64_t{0}}};
  ev.data = to_bytes("auth path payload bytes");
  ev.block_number = 42;

  const Bytes wire = serialize_event(ev);
  const Event back = deserialize_event(wire);
  EXPECT_EQ(back.contract, ev.contract);
  EXPECT_EQ(back.name, ev.name);
  EXPECT_EQ(back.topics, ev.topics);
  EXPECT_EQ(back.data, ev.data);
  EXPECT_EQ(back.block_number, ev.block_number);
  // Deterministic encoding: same event, same bytes.
  EXPECT_EQ(serialize_event(back), wire);

  // Truncated frames must throw, not half-parse.
  const BytesView half(wire.data(), wire.size() / 2);
  EXPECT_THROW(deserialize_event(half), std::out_of_range);
}

TEST(EventLog, ReplayFromCursorSeesExactlyTheSuffix) {
  Blockchain chain;
  chain.create_account(Address::from_u64(1), 10 * kGweiPerEth);
  const Address rln =
      chain.deploy(std::make_unique<RlnMembershipContract>(1'000'000));
  Rng rng(3);
  for (int i = 0; i < 3; ++i) {
    Transaction tx;
    tx.from = Address::from_u64(1);
    tx.to = rln;
    tx.method = "register";
    tx.calldata = Fr::random(rng).to_bytes_be();
    tx.value = 1'000'000;
    chain.submit(std::move(tx));
    chain.mine_block(10'000 * (i + 1));
  }
  ASSERT_EQ(chain.event_count(), 3u);
  std::vector<std::uint64_t> indices;
  chain.replay_events(1, [&](const Event& ev) {
    EXPECT_EQ(ev.name, "MemberRegistered");
    indices.push_back(ev.topics[0].limb[0]);
  });
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{1, 2}));
}

TEST(EventLog, UnsubscribedCallbackStopsFiring) {
  Blockchain chain;
  chain.create_account(Address::from_u64(1), 10 * kGweiPerEth);
  const Address rln =
      chain.deploy(std::make_unique<RlnMembershipContract>(1'000'000));
  int calls = 0;
  const std::uint64_t sub =
      chain.subscribe_events([&](const Event&) { ++calls; });
  auto register_one = [&](std::uint64_t at) {
    Transaction tx;
    tx.from = Address::from_u64(1);
    tx.to = rln;
    tx.method = "register";
    tx.calldata = Fr::from_u64(at).to_bytes_be();
    tx.value = 1'000'000;
    chain.submit(std::move(tx));
    chain.mine_block(at);
  };
  register_one(10'000);
  EXPECT_EQ(calls, 1);
  chain.unsubscribe_events(sub);
  register_one(20'000);
  EXPECT_EQ(calls, 1);  // detached: the restarted-node use case
}

}  // namespace
}  // namespace waku::chain
