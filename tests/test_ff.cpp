// Unit and property tests for U256 and the BN254 scalar field Fr.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "ff/fr.hpp"
#include "ff/u256.hpp"

namespace waku::ff {
namespace {

// Decimal value of the BN254 scalar modulus, for cross-checking the limbs.
constexpr const char* kModulusDec =
    "21888242871839275222246405745257275088548364400416034343698204186575808"
    "495617";

TEST(U256, ZeroAndComparison) {
  EXPECT_TRUE(U256{}.is_zero());
  EXPECT_FALSE(U256{1}.is_zero());
  EXPECT_LT(U256{1}, U256{2});
  EXPECT_LT(U256{0xffffffffffffffffULL}, U256(0, 1, 0, 0));
  EXPECT_EQ(U256{5}, U256{5});
}

TEST(U256, AddCarryPropagates) {
  bool carry = false;
  const U256 max(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  const U256 r = add_carry(max, U256{1}, carry);
  EXPECT_TRUE(carry);
  EXPECT_TRUE(r.is_zero());
}

TEST(U256, SubBorrowPropagates) {
  bool borrow = false;
  const U256 r = sub_borrow(U256{0}, U256{1}, borrow);
  EXPECT_TRUE(borrow);
  EXPECT_EQ(r, U256(~0ULL, ~0ULL, ~0ULL, ~0ULL));
}

TEST(U256, AddSubRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const U256 a{rng.next_u64(), rng.next_u64(), rng.next_u64(),
                 rng.next_u64()};
    const U256 b{rng.next_u64(), rng.next_u64(), rng.next_u64(),
                 rng.next_u64()};
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST(U256, BytesRoundTrip) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const U256 v{rng.next_u64(), rng.next_u64(), rng.next_u64(),
                 rng.next_u64()};
    EXPECT_EQ(u256_from_bytes_be(u256_to_bytes_be(v)), v);
  }
}

TEST(U256, BytesBigEndianLayout) {
  const U256 one{1};
  const Bytes b = u256_to_bytes_be(one);
  EXPECT_EQ(b[31], 1);
  EXPECT_EQ(b[0], 0);
}

TEST(U256, DecimalParseMatchesModulusLimbs) {
  EXPECT_EQ(u256_from_string(kModulusDec), Fr::kModulus);
}

TEST(U256, HexParse) {
  EXPECT_EQ(u256_from_string("0x01"), U256{1});
  EXPECT_EQ(u256_from_string("0xff"), U256{255});
  EXPECT_EQ(
      u256_from_string(
          "0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001"),
      Fr::kModulus);
}

TEST(U256, ParseRejectsGarbage) {
  EXPECT_THROW(u256_from_string(""), std::invalid_argument);
  EXPECT_THROW(u256_from_string("12a4"), std::invalid_argument);
  EXPECT_THROW(u256_from_string("0x"), std::invalid_argument);
}

TEST(U256, HighestBit) {
  EXPECT_EQ(U256{}.highest_bit(), -1);
  EXPECT_EQ(U256{1}.highest_bit(), 0);
  EXPECT_EQ(U256{2}.highest_bit(), 1);
  EXPECT_EQ(U256(0, 0, 0, 1ULL << 62).highest_bit(), 254);
}

TEST(Fr, ZeroOneIdentities) {
  EXPECT_TRUE(Fr::zero().is_zero());
  EXPECT_FALSE(Fr::one().is_zero());
  EXPECT_EQ(Fr::one() * Fr::one(), Fr::one());
  EXPECT_EQ(Fr::one() + Fr::zero(), Fr::one());
  EXPECT_EQ(Fr::from_u64(7) * Fr::zero(), Fr::zero());
}

TEST(Fr, SmallIntegerArithmetic) {
  EXPECT_EQ(Fr::from_u64(3) + Fr::from_u64(4), Fr::from_u64(7));
  EXPECT_EQ(Fr::from_u64(10) - Fr::from_u64(4), Fr::from_u64(6));
  EXPECT_EQ(Fr::from_u64(6) * Fr::from_u64(7), Fr::from_u64(42));
}

TEST(Fr, SubtractionWrapsModulo) {
  // 0 - 1 == r - 1
  const Fr minus_one = Fr::zero() - Fr::one();
  bool borrow = false;
  const U256 r_minus_1 = sub_borrow(Fr::kModulus, U256{1}, borrow);
  EXPECT_EQ(minus_one.to_u256(), r_minus_1);
}

TEST(Fr, ModulusReducesToZero) {
  EXPECT_TRUE(Fr::from_u256_reduce(Fr::kModulus).is_zero());
}

TEST(Fr, CanonicalRejectsModulus) {
  EXPECT_THROW(Fr::from_u256_canonical(Fr::kModulus), ContractViolation);
  EXPECT_NO_THROW(Fr::from_u256_canonical(U256{12345}));
}

TEST(Fr, AdditionCommutesAndAssociates) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng);
    const Fr b = Fr::random(rng);
    const Fr c = Fr::random(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(Fr, MultiplicationCommutesAndAssociates) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng);
    const Fr b = Fr::random(rng);
    const Fr c = Fr::random(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
  }
}

TEST(Fr, DistributiveLaw) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng);
    const Fr b = Fr::random(rng);
    const Fr c = Fr::random(rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(Fr, NegationIsAdditiveInverse) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng);
    EXPECT_TRUE((a + a.neg()).is_zero());
  }
  EXPECT_TRUE(Fr::zero().neg().is_zero());
}

TEST(Fr, InverseIsMultiplicativeInverse) {
  Rng rng(31);
  for (int i = 0; i < 50; ++i) {
    const Fr a = Fr::random(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fr::one());
  }
}

TEST(Fr, InverseOfZeroThrows) {
  EXPECT_THROW((void)Fr::zero().inverse(), ContractViolation);
}

TEST(Fr, PowMatchesRepeatedMultiplication) {
  const Fr base = Fr::from_u64(3);
  Fr acc = Fr::one();
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(base.pow(e), acc);
    acc *= base;
  }
}

TEST(Fr, FermatLittleTheorem) {
  // a^(r-1) == 1 for a != 0.
  Rng rng(37);
  bool borrow = false;
  const U256 r_minus_1 = sub_borrow(Fr::kModulus, U256{1}, borrow);
  for (int i = 0; i < 10; ++i) {
    const Fr a = Fr::random(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a.pow(r_minus_1), Fr::one());
  }
}

TEST(Fr, BytesRoundTrip) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    const Fr a = Fr::random(rng);
    const Bytes b = a.to_bytes_be();
    ASSERT_EQ(b.size(), 32u);
    EXPECT_EQ(Fr::from_bytes_reduce(b), a);
  }
}

TEST(Fr, FromBytesShorterThan32Pads) {
  const Bytes b = {0x01, 0x00};  // big-endian 256
  EXPECT_EQ(Fr::from_bytes_reduce(b), Fr::from_u64(256));
}

TEST(Fr, RandomIsCanonical) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(Fr::random(rng).to_u256(), Fr::kModulus);
  }
}

TEST(Fr, RandomSpread) {
  Rng rng(47);
  const Fr a = Fr::random(rng);
  const Fr b = Fr::random(rng);
  EXPECT_NE(a, b);  // 2^-254 collision probability
}

TEST(Fr, StringParsing) {
  EXPECT_EQ(fr_from_string("42"), Fr::from_u64(42));
  EXPECT_EQ(fr_from_string(kModulusDec), Fr::zero());
}

TEST(Fr, HashFunctorDistinguishes) {
  FrHash h;
  EXPECT_NE(h(Fr::from_u64(1)), h(Fr::from_u64(2)));
  EXPECT_EQ(h(Fr::from_u64(9)), h(Fr::from_u64(9)));
}

// Cross-check Montgomery multiplication against schoolbook double-and-add
// (multiplication as repeated addition over random small multipliers).
TEST(Fr, MulMatchesRepeatedAddition) {
  Rng rng(53);
  for (int i = 0; i < 20; ++i) {
    const Fr a = Fr::random(rng);
    const std::uint64_t k = rng.next_below(1000);
    Fr sum = Fr::zero();
    for (std::uint64_t j = 0; j < k; ++j) sum += a;
    EXPECT_EQ(a * Fr::from_u64(k), sum);
  }
}

}  // namespace
}  // namespace waku::ff
