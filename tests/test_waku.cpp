// Tests for the Waku protocol layer: message serialization, relay
// propagation and validation, the store protocol's queries, and the filter
// protocol's light-node push path.
#include <gtest/gtest.h>

#include <memory>

#include "waku/filter.hpp"
#include "waku/message.hpp"
#include "waku/relay.hpp"
#include "waku/store.hpp"

namespace waku {
namespace {

TEST(WakuMessage, SerializationRoundTrip) {
  WakuMessage m;
  m.payload = to_bytes("hi there");
  m.content_topic = "/app/1/chat/proto";
  m.version = 2;
  m.timestamp_ms = 1644810116000ULL;
  m.rate_limit_proof = to_bytes("proof-bytes");
  EXPECT_EQ(WakuMessage::deserialize(m.serialize()), m);
}

TEST(WakuMessage, RoundTripWithoutProof) {
  WakuMessage m;
  m.payload = to_bytes("no proof");
  EXPECT_EQ(WakuMessage::deserialize(m.serialize()), m);
  EXPECT_FALSE(WakuMessage::deserialize(m.serialize())
                   .rate_limit_proof.has_value());
}

TEST(WakuMessage, SignalBytesCoverPayloadAndTopic) {
  WakuMessage a;
  a.payload = to_bytes("x");
  a.content_topic = "t1";
  WakuMessage b = a;
  b.content_topic = "t2";
  EXPECT_NE(a.signal_bytes(), b.signal_bytes());
  // But not the proof (the proof signs the signal, not itself).
  WakuMessage c = a;
  c.rate_limit_proof = to_bytes("zzz");
  EXPECT_EQ(a.signal_bytes(), c.signal_bytes());
}

TEST(WakuMessage, DeserializeRejectsTruncated) {
  WakuMessage m;
  m.payload = to_bytes("hello");
  Bytes wire = m.serialize();
  wire.resize(wire.size() / 2);
  EXPECT_THROW(WakuMessage::deserialize(wire), std::out_of_range);
}

struct RelayPair {
  net::Simulator sim;
  net::Network net{sim, {.base_latency_ms = 10, .jitter_ms = 0,
                         .loss_rate = 0}, 31};
  WakuRelay a{net};
  WakuRelay b{net, {}, {}, 2};
  std::vector<WakuMessage> a_got, b_got;

  RelayPair() {
    net.connect(a.node_id(), b.node_id());
    a.subscribe([this](const WakuMessage& m) { a_got.push_back(m); });
    b.subscribe([this](const WakuMessage& m) { b_got.push_back(m); });
    a.start();
    b.start();
    sim.run_until(3000);
  }
};

TEST(WakuRelay, DeliversDecodedMessages) {
  RelayPair pair;
  WakuMessage m;
  m.payload = to_bytes("relay me");
  m.content_topic = "/app/1/x/proto";
  pair.a.publish(m);
  pair.sim.run_until(pair.sim.now() + 2000);
  ASSERT_EQ(pair.b_got.size(), 1u);
  EXPECT_EQ(pair.b_got[0].payload, to_bytes("relay me"));
  EXPECT_EQ(pair.b_got[0].content_topic, "/app/1/x/proto");
}

TEST(WakuRelay, ValidatorSeesDecodedMessage) {
  RelayPair pair;
  std::vector<std::string> validated_topics;
  pair.b.set_validator([&](net::NodeId, const WakuMessage& m) {
    validated_topics.push_back(m.content_topic);
    return gossipsub::ValidationResult::kAccept;
  });
  WakuMessage m;
  m.payload = to_bytes("check me");
  m.content_topic = "/validated";
  pair.a.publish(m);
  pair.sim.run_until(pair.sim.now() + 2000);
  ASSERT_EQ(validated_topics.size(), 1u);
  EXPECT_EQ(validated_topics[0], "/validated");
}

TEST(WakuRelay, RejectingValidatorBlocksDelivery) {
  RelayPair pair;
  pair.b.set_validator([](net::NodeId, const WakuMessage&) {
    return gossipsub::ValidationResult::kReject;
  });
  WakuMessage m;
  m.payload = to_bytes("blocked");
  pair.a.publish(m);
  pair.sim.run_until(pair.sim.now() + 2000);
  EXPECT_TRUE(pair.b_got.empty());
  EXPECT_EQ(pair.b.stats().rejected, 1u);
}

// -- Store -------------------------------------------------------------------

WakuMessage mk_msg(const std::string& body, const std::string& topic) {
  WakuMessage m;
  m.payload = to_bytes(body);
  m.content_topic = topic;
  return m;
}

TEST(WakuStore, ArchivesAndQueriesByTime) {
  WakuStore store;
  for (std::uint64_t t = 0; t < 10; ++t) {
    store.archive(mk_msg("m" + std::to_string(t), "/t"), t * 100);
  }
  HistoryQuery q;
  q.start_time_ms = 250;
  q.end_time_ms = 650;
  const HistoryResponse resp = store.query(q);
  ASSERT_EQ(resp.messages.size(), 4u);  // t=300,400,500,600
  EXPECT_EQ(resp.messages[0].payload, to_bytes("m3"));
  EXPECT_FALSE(resp.next_cursor.has_value());
}

TEST(WakuStore, FiltersByContentTopic) {
  WakuStore store;
  store.archive(mk_msg("a", "/chat"), 10);
  store.archive(mk_msg("b", "/news"), 20);
  store.archive(mk_msg("c", "/chat"), 30);
  HistoryQuery q;
  q.content_topic = "/chat";
  const HistoryResponse resp = store.query(q);
  ASSERT_EQ(resp.messages.size(), 2u);
  EXPECT_EQ(resp.messages[1].payload, to_bytes("c"));
}

TEST(WakuStore, PaginationWithCursor) {
  WakuStore store;
  for (int i = 0; i < 25; ++i) {
    store.archive(mk_msg("m" + std::to_string(i), "/t"),
                  static_cast<std::uint64_t>(i));
  }
  HistoryQuery q;
  q.page_size = 10;
  HistoryResponse page1 = store.query(q);
  ASSERT_EQ(page1.messages.size(), 10u);
  ASSERT_TRUE(page1.next_cursor.has_value());

  q.cursor = *page1.next_cursor;
  HistoryResponse page2 = store.query(q);
  ASSERT_EQ(page2.messages.size(), 10u);
  EXPECT_EQ(page2.messages[0].payload, to_bytes("m10"));

  q.cursor = *page2.next_cursor;
  HistoryResponse page3 = store.query(q);
  EXPECT_EQ(page3.messages.size(), 5u);
  EXPECT_FALSE(page3.next_cursor.has_value());
}

TEST(WakuStore, EvictsOldestWhenFull) {
  WakuStore store(5);
  for (int i = 0; i < 8; ++i) {
    store.archive(mk_msg("m" + std::to_string(i), "/t"),
                  static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(store.size(), 5u);
  const HistoryResponse resp = store.query(HistoryQuery{});
  EXPECT_EQ(resp.messages[0].payload, to_bytes("m3"));
}

TEST(WakuStore, TracksBytes) {
  WakuStore store;
  store.archive(mk_msg(std::string(100, 'x'), "/t"), 0);
  EXPECT_EQ(store.bytes_stored(), 100u);
}

// -- Filter ------------------------------------------------------------------

struct FilterFixture : ::testing::Test {
  net::Simulator sim;
  net::Network net{sim, {.base_latency_ms = 5, .jitter_ms = 0,
                         .loss_rate = 0}, 37};
  FilterService service{net};
  std::vector<WakuMessage> light_got;
  FilterClient client{net, [this](const WakuMessage& m) {
                        light_got.push_back(m);
                      }};

  void SetUp() override {
    net.connect(service.node_id(), client.node_id());
  }
};

TEST_F(FilterFixture, PushesMatchingMessages) {
  client.subscribe(service.node_id(), "/wanted");
  sim.run_all();
  service.on_relay_message(mk_msg("yes", "/wanted"));
  service.on_relay_message(mk_msg("no", "/other"));
  sim.run_all();
  ASSERT_EQ(light_got.size(), 1u);
  EXPECT_EQ(light_got[0].payload, to_bytes("yes"));
  EXPECT_EQ(service.pushed_count(), 1u);
}

TEST_F(FilterFixture, UnsubscribeStopsPushes) {
  client.subscribe(service.node_id(), "/wanted");
  sim.run_all();
  client.unsubscribe(service.node_id(), "/wanted");
  sim.run_all();
  service.on_relay_message(mk_msg("late", "/wanted"));
  sim.run_all();
  EXPECT_TRUE(light_got.empty());
  EXPECT_EQ(service.subscription_count(), 0u);
}

TEST_F(FilterFixture, MultipleTopicsPerClient) {
  client.subscribe(service.node_id(), "/a");
  client.subscribe(service.node_id(), "/b");
  sim.run_all();
  service.on_relay_message(mk_msg("1", "/a"));
  service.on_relay_message(mk_msg("2", "/b"));
  service.on_relay_message(mk_msg("3", "/c"));
  sim.run_all();
  EXPECT_EQ(light_got.size(), 2u);
  EXPECT_EQ(client.received_count(), 2u);
}

}  // namespace
}  // namespace waku
