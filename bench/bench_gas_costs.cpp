// E6 — Membership gas costs: WAKU-RLN-RELAY's flat list vs Semaphore's
// on-chain tree.
//
// Paper claims reproduced:
//   §IV-A: "the cost associated with membership is 40k gas which
//           translates to more than 20 USD"; "by using batch insertion and
//           deletion, the cost can be reduced to 20k gas".
//   §III-A: Semaphore's insertion/deletion is "logarithmic in the number
//           of registered members" and was the reason to move the tree
//           off-chain; Waku's flat list is O(1) per member.
#include <cstdio>

#include "chain/blockchain.hpp"
#include "chain/rln_contract.hpp"
#include "chain/semaphore_contract.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"

using namespace waku;         // NOLINT
using namespace waku::chain;  // NOLINT

namespace {

// USD conversion calibrated to the paper's writing period (early 2022):
// gas ~150 gwei, ETH ~3300 USD -> 40k gas ~ 19.8 USD.
constexpr double kGasPriceGwei = 150.0;
constexpr double kEthUsd = 3300.0;

double gas_to_usd(std::uint64_t gas) {
  return static_cast<double>(gas) * kGasPriceGwei * 1e-9 * kEthUsd;
}

constexpr Gwei kDeposit = 10'000'000;

struct Runner {
  Blockchain chain;
  Address account = Address::from_u64(0xBEEF);
  std::uint64_t clock = 0;

  Runner() { chain.create_account(account, 1'000'000 * kGweiPerEth); }

  TxReceipt run(Transaction tx) {
    const auto h = chain.submit(std::move(tx));
    chain.mine_block(clock += 12'000);
    return *chain.receipt(h);
  }
};

ff::Fr pk_of(std::uint64_t i) { return hash::poseidon1(ff::Fr::from_u64(i)); }

}  // namespace

int main() {
  std::printf("E6: membership gas — flat list (WAKU-RLN-RELAY) vs on-chain "
              "tree (Semaphore)\n");
  std::printf("(paper: ~40k gas/membership ≈ >20 USD; batch -> ~20k; "
              "Semaphore O(log N))\n");
  std::printf("[gas->USD at %.0f gwei, ETH=%.0f USD]\n\n", kGasPriceGwei,
              kEthUsd);

  // ---- WAKU flat-list contract -------------------------------------------
  Runner waku_runner;
  const Address rln = waku_runner.chain.deploy(
      std::make_unique<RlnMembershipContract>(kDeposit));

  std::printf("%-44s %10s %8s\n", "operation", "gas", "USD");

  // Warm up the count slot, then measure steady state.
  {
    Transaction tx;
    tx.from = waku_runner.account;
    tx.to = rln;
    tx.method = "register";
    tx.calldata = pk_of(0).to_bytes_be();
    tx.value = kDeposit;
    (void)waku_runner.run(tx);
  }
  std::uint64_t single_gas = 0;
  {
    Transaction tx;
    tx.from = waku_runner.account;
    tx.to = rln;
    tx.method = "register";
    tx.calldata = pk_of(1).to_bytes_be();
    tx.value = kDeposit;
    single_gas = waku_runner.run(tx).gas_used;
    std::printf("%-44s %10llu %8.2f\n", "waku register (single)",
                static_cast<unsigned long long>(single_gas),
                gas_to_usd(single_gas));
  }
  for (const std::uint32_t batch : {4u, 16u, 64u}) {
    ByteWriter w;
    w.write_u32(batch);
    for (std::uint32_t i = 0; i < batch; ++i) {
      w.write_raw(pk_of(1000 + i + batch * 100).to_bytes_be());
    }
    Transaction tx;
    tx.from = waku_runner.account;
    tx.to = rln;
    tx.method = "register_batch";
    tx.calldata = std::move(w).take();
    tx.value = kDeposit * batch;
    const TxReceipt r = waku_runner.run(tx);
    char label[64];
    std::snprintf(label, sizeof label, "waku register (batch %u, per member)",
                  batch);
    const std::uint64_t per = r.gas_used / batch;
    std::printf("%-44s %10llu %8.2f\n", label,
                static_cast<unsigned long long>(per), gas_to_usd(per));
  }

  // Slashing path (commit + reveal).
  {
    Rng rng(0xE6);
    const ff::Fr sk = ff::Fr::random(rng);
    Transaction reg;
    reg.from = waku_runner.account;
    reg.to = rln;
    reg.method = "register";
    reg.calldata = hash::poseidon1(sk).to_bytes_be();
    reg.value = kDeposit;
    (void)waku_runner.run(reg);
    const std::uint64_t index =
        waku_runner.chain.contract_at<RlnMembershipContract>(rln)
            .member_count_view() -
        1;

    const ff::U256 salt{123};
    Transaction commit;
    commit.from = waku_runner.account;
    commit.to = rln;
    commit.method = "commit_slash";
    commit.calldata = ff::u256_to_bytes_be(
        RlnMembershipContract::make_slash_commitment(sk, salt,
                                                     waku_runner.account));
    const TxReceipt rc = waku_runner.run(commit);

    ByteWriter w;
    w.write_raw(sk.to_bytes_be());
    w.write_raw(ff::u256_to_bytes_be(salt));
    w.write_u64(index);
    Transaction reveal;
    reveal.from = waku_runner.account;
    reveal.to = rln;
    reveal.method = "reveal_slash";
    reveal.calldata = std::move(w).take();
    const TxReceipt rr = waku_runner.run(reveal);
    std::printf("%-44s %10llu %8.2f\n", "waku slash commit",
                static_cast<unsigned long long>(rc.gas_used),
                gas_to_usd(rc.gas_used));
    std::printf("%-44s %10llu %8.2f\n", "waku slash reveal (incl. deletion)",
                static_cast<unsigned long long>(rr.gas_used),
                gas_to_usd(rr.gas_used));
  }

  // ---- Semaphore baseline: on-chain tree ---------------------------------
  std::printf("\n%-10s %26s %26s\n", "depth", "semaphore insert (gas)",
              "semaphore delete (gas)");
  for (const std::size_t depth : {10u, 16u, 20u, 24u, 32u}) {
    Runner sem_runner;
    const Address sem = sem_runner.chain.deploy(
        std::make_unique<SemaphoreContract>(depth, kDeposit));
    Transaction ins;
    ins.from = sem_runner.account;
    ins.to = sem;
    ins.method = "register";
    ins.calldata = pk_of(7).to_bytes_be();
    ins.value = kDeposit;
    const TxReceipt ri = sem_runner.run(ins);

    ByteWriter w;
    w.write_u64(0);
    Transaction del;
    del.from = sem_runner.account;
    del.to = sem;
    del.method = "remove";
    del.calldata = std::move(w).take();
    const TxReceipt rd = sem_runner.run(del);

    std::printf("%-10zu %18llu (%6.0f$) %18llu (%6.0f$)\n", depth,
                static_cast<unsigned long long>(ri.gas_used),
                gas_to_usd(ri.gas_used),
                static_cast<unsigned long long>(rd.gas_used),
                gas_to_usd(rd.gas_used));
  }

  std::printf(
      "\nShape check: the flat list costs ~constant gas per membership\n"
      "(single ~%llu, large-batch per-member about half of that), while the\n"
      "Semaphore tree costs grow linearly with depth (= log of capacity)\n"
      "and are 1-2 orders of magnitude larger — the paper's §III-A\n"
      "motivation for moving the tree off-chain.\n",
      static_cast<unsigned long long>(single_gas));
  return 0;
}
