// Shared helpers for the standalone (non-google-benchmark) benches.
#pragma once

#include <cstdlib>
#include <cstring>

namespace waku::benchutil {

/// One smoke-mode policy for every standalone bench: WAKU_BENCH_SMOKE set
/// and not "0" (exported by scripts/run_benches.sh --smoke) shrinks the
/// workload so the full path runs in seconds. Benches may OR in their own
/// --smoke argv flag, but the env semantics must stay identical across
/// the suite.
inline bool smoke_mode() {
  const char* env = std::getenv("WAKU_BENCH_SMOKE");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

}  // namespace waku::benchutil
