// Batched vs. single-message routing validation throughput.
//
// Measures the staged validation pipeline end to end (epoch gate, rolling
// root cache, nullifier precheck, batched Groth16, nullifier observe) on
// all-honest traffic at batch sizes 1/8/64/256. Batch 1 is the historical
// per-message path; larger windows share the RLC-aggregated pairing check,
// so per-message verification cost falls toward the single e(A, B) Miller
// loop.
//
// Unlike the google-benchmark benches this is a standalone binary: it
// emits machine-readable JSON (BENCH_batch_validation.json, or argv[1])
// with one record per batch size:
//   {"batch_size": N, "msgs_per_sec": X, "verify_us_per_msg": Y}
// so successive PRs can track the perf trajectory.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rln/rate_limit_proof.hpp"
#include "rln/validation_pipeline.hpp"
#include "zksnark/rln_circuit.hpp"

namespace {

using namespace waku;       // NOLINT
using namespace waku::rln;  // NOLINT
using benchutil::smoke_mode;

constexpr std::size_t kDepth = 16;
const std::size_t kMessages = smoke_mode() ? 64 : 256;
const int kRepetitions = smoke_mode() ? 1 : 5;

struct Workload {
  GroupManager group{kDepth, TreeMode::kFullTree};
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 10'000},
                       .max_epoch_gap = 2};
  std::vector<WakuMessage> messages;
  std::uint64_t now_ms = 100 * 10'000 + 500;  // epoch 100

  Workload() {
    Rng rng(0xBA7C);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    // One honest member per message, all publishing in epoch 100:
    // distinct sk -> distinct nullifier, so every message is accepted and
    // every proof reaches the verifier stage.
    std::vector<Identity> members;
    for (std::size_t i = 0; i < kMessages; ++i) {
      members.push_back(Identity::generate(rng));
      chain::Event ev;
      ev.name = "MemberRegistered";
      ev.topics = {ff::U256{i}, members.back().pk.to_u256()};
      group.on_event(ev);
    }
    for (std::size_t i = 0; i < kMessages; ++i) {
      WakuMessage msg;
      msg.payload = to_bytes("payload " + std::to_string(i));
      zksnark::RlnProverInput input;
      input.sk = members[i].sk;
      input.path = group.path_of(i);
      input.x = message_hash(msg);
      input.epoch = ff::Fr::from_u64(100);
      zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
      RateLimitProof bundle;
      bundle.share_x = c.publics.x;
      bundle.share_y = c.publics.y;
      bundle.nullifier = c.publics.nullifier;
      bundle.epoch = 100;
      bundle.root = c.publics.root;
      bundle.proof = zksnark::prove(kp.pk, c.builder.cs(),
                                    c.builder.assignment(), rng);
      attach_proof(msg, bundle);
      messages.push_back(std::move(msg));
    }
  }
};

struct Record {
  std::size_t batch_size;
  double msgs_per_sec;
  double verify_us_per_msg;
};

Record run_batch_size(const Workload& wl, std::size_t batch_size) {
  using Clock = std::chrono::steady_clock;
  double total_seconds = 0.0;
  std::size_t total_messages = 0;
  std::uint64_t accepted = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    // Fresh pipeline per pass so the nullifier log starts empty and every
    // message takes the full accept path (prove once, validate per rep).
    ValidationPipeline pipeline(zksnark::rln_keypair(kDepth).vk, wl.group,
                                wl.vcfg, 0x5EED + rep);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < wl.messages.size(); i += batch_size) {
      const std::size_t len =
          std::min(batch_size, wl.messages.size() - i);
      const auto outcomes = pipeline.validate_batch(
          std::span<const WakuMessage>(wl.messages.data() + i, len),
          wl.now_ms);
      for (const auto& o : outcomes) {
        accepted += o.verdict == Verdict::kAccept ? 1 : 0;
      }
    }
    total_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
    total_messages += wl.messages.size();
  }
  if (accepted != total_messages) {
    std::fprintf(stderr, "bench invariant violated: %llu/%zu accepted\n",
                 static_cast<unsigned long long>(accepted), total_messages);
    std::exit(1);
  }
  Record r;
  r.batch_size = batch_size;
  r.msgs_per_sec = static_cast<double>(total_messages) / total_seconds;
  r.verify_us_per_msg =
      total_seconds * 1e6 / static_cast<double>(total_messages);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_batch_validation.json";

  std::printf("building workload: %zu proofs at depth %zu...\n", kMessages,
              kDepth);
  const Workload wl;

  std::vector<Record> records;
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8},
                                       std::size_t{64}, std::size_t{256}}) {
    const Record r = run_batch_size(wl, batch_size);
    std::printf("batch_size %3zu: %10.0f msgs/s  %8.2f us/msg\n",
                r.batch_size, r.msgs_per_sec, r.verify_us_per_msg);
    records.push_back(r);
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(
        f, "  {\"batch_size\": %zu, \"msgs_per_sec\": %.1f, "
           "\"verify_us_per_msg\": %.3f}%s\n",
        records[i].batch_size, records[i].msgs_per_sec,
        records[i].verify_us_per_msg, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  const double speedup = records[2].msgs_per_sec / records[0].msgs_per_sec;
  std::printf("batch-64 speedup over batch-1: %.2fx\n", speedup);
  return 0;
}
