// E2b (system-level counterpart of E2) — per-message routing overhead.
//
// The paper's §IV argues routing peers can afford the spam check because
// verification is constant-time. This bench measures the *whole* §III-F
// routing decision (epoch gap -> root freshness -> proof verification ->
// nullifier-log lookup) as a relay experiences it, including how the
// nullifier log's size affects the lookup, and the cheap-reject paths for
// the attack traffic mixes E7 exercises.
#include <benchmark/benchmark.h>

#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "rln/group_manager.hpp"
#include "rln/rate_limit_proof.hpp"
#include "rln/validator.hpp"
#include "zksnark/rln_circuit.hpp"

namespace {

using namespace waku;  // NOLINT
using namespace waku::rln;  // NOLINT

constexpr std::size_t kDepth = 16;

struct RelayFixture {
  GroupManager group{kDepth, TreeMode::kFullTree};
  Identity member;
  std::uint64_t member_index = 0;
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 10'000},
                       .max_epoch_gap = 2};

  RelayFixture() {
    Rng rng(0xE2B);
    member = Identity::generate(rng);
    chain::Event ev;
    ev.name = "MemberRegistered";
    ev.topics = {ff::U256{0}, member.pk.to_u256()};
    group.on_event(ev);
  }

  WakuMessage make_message(const std::string& body, std::uint64_t epoch,
                           Rng& rng) const {
    WakuMessage msg;
    msg.payload = to_bytes(body);
    zksnark::RlnProverInput input;
    input.sk = member.sk;
    input.path = group.path_of(member_index);
    input.x = message_hash(msg);
    input.epoch = ff::Fr::from_u64(epoch);
    zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    RateLimitProof bundle;
    bundle.share_x = c.publics.x;
    bundle.share_y = c.publics.y;
    bundle.nullifier = c.publics.nullifier;
    bundle.epoch = epoch;
    bundle.root = c.publics.root;
    bundle.proof =
        zksnark::prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
    attach_proof(msg, bundle);
    return msg;
  }
};

// Full happy-path validation of fresh messages (one per epoch so the
// nullifier log never conflicts).
void BM_ValidateAccept(benchmark::State& state) {
  RelayFixture fx;
  Rng rng(0xE2B1);
  auto validator = std::make_unique<RlnValidator>(
      zksnark::rln_keypair(kDepth).vk, fx.group, fx.vcfg);
  // Pre-generate messages so proving is outside the measurement.
  std::vector<WakuMessage> messages;
  for (int i = 0; i < 64; ++i) {
    messages.push_back(
        fx.make_message("m" + std::to_string(i),
                        100 + static_cast<std::uint64_t>(i), rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& msg = messages[i % messages.size()];
    const std::uint64_t now = (100 + (i % messages.size())) * 10'000 + 500;
    auto outcome = validator->validate(msg, now);
    benchmark::DoNotOptimize(outcome);
    ++i;
    if (i % messages.size() == 0) {
      state.PauseTiming();
      validator = std::make_unique<RlnValidator>(
          zksnark::rln_keypair(kDepth).vk, fx.group, fx.vcfg);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ValidateAccept)->Unit(benchmark::kMicrosecond);

// The cheap-reject paths an attacker actually hits.
void BM_ValidateRejectEpochGap(benchmark::State& state) {
  RelayFixture fx;
  Rng rng(0xE2B2);
  RlnValidator validator(zksnark::rln_keypair(kDepth).vk, fx.group, fx.vcfg);
  const WakuMessage msg = fx.make_message("stale", 5, rng);
  for (auto _ : state) {
    auto outcome = validator.validate(msg, 1'000'000'000);  // far future
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ValidateRejectEpochGap)->Unit(benchmark::kMicrosecond);

void BM_ValidateRejectGarbageProof(benchmark::State& state) {
  RelayFixture fx;
  Rng rng(0xE2B3);
  RlnValidator validator(zksnark::rln_keypair(kDepth).vk, fx.group, fx.vcfg);
  WakuMessage msg = fx.make_message("junk", 100, rng);
  auto bundle = *extract_proof(msg);
  bundle.proof = zksnark::Proof::deserialize(rng.next_bytes(128));
  attach_proof(msg, bundle);
  for (auto _ : state) {
    auto outcome = validator.validate(msg, 100 * 10'000 + 500);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ValidateRejectGarbageProof)->Unit(benchmark::kMicrosecond);

// Duplicate detection with a loaded nullifier log: lookup must stay flat.
void BM_ValidateDuplicateWithLogSize(benchmark::State& state) {
  const auto entries = static_cast<std::uint64_t>(state.range(0));
  RelayFixture fx;
  Rng rng(0xE2B4);
  RlnValidator validator(zksnark::rln_keypair(kDepth).vk, fx.group, fx.vcfg);
  // Preload the log with `entries` synthetic observations... via the
  // public API: distinct epochs share the log structure.
  NullifierLog log;
  for (std::uint64_t i = 0; i < entries; ++i) {
    log.observe(100, ff::Fr::from_u64(i),
                sss::Share{ff::Fr::from_u64(i), ff::Fr::from_u64(i)});
  }
  const WakuMessage msg = fx.make_message("dup", 100, rng);
  (void)validator.validate(msg, 100 * 10'000 + 500);  // first: accept
  for (auto _ : state) {
    auto outcome = validator.validate(msg, 100 * 10'000 + 600);  // duplicate
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["log_entries"] = static_cast<double>(log.entry_count());
}
BENCHMARK(BM_ValidateDuplicateWithLogSize)
    ->Arg(1'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
