// E8 — Propagation delay, clock asynchrony, and the maximum epoch gap Thr
// (paper §III-F: Thr = ceil((NetworkDelay + ClockAsynchrony) / T)).
//
// Three series:
//   (a) message dissemination latency vs network size (the NetworkDelay
//       input to the formula);
//   (b) honest-message false-drop rate vs Thr under clock skew — too small
//       a Thr drops honest traffic, exactly why the paper derives the
//       formula;
//   (c) network-wide throughput ceiling vs epoch length T (rate limit =
//       one message per member per epoch).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "rln/harness.hpp"

using namespace waku;  // NOLINT

namespace {

// (a) propagation latency percentiles for an N-node mesh.
void propagation_series() {
  std::printf("(a) dissemination latency vs network size "
              "(link 40ms +/- 20ms jitter, degree 6)\n");
  std::printf("%-8s %10s %10s %10s\n", "nodes", "p50 (ms)", "p95 (ms)",
              "max (ms)");
  for (const std::size_t n : {20u, 50u, 100u}) {
    rln::HarnessConfig cfg;
    cfg.num_nodes = n;
    cfg.degree = 6;
    cfg.block_interval_ms = 5'000;
    cfg.node.tree_depth = 10;
    cfg.node.validator.epoch.epoch_length_ms = 600'000;  // no interference
    rln::RlnHarness h(cfg);
    h.register_all();
    h.run_ms(5'000);

    std::vector<double> latencies;
    std::vector<net::TimeMs> publish_time(1, 0);
    for (std::size_t i = 1; i < n; ++i) {  // exclude the publisher itself
      h.node(i).set_message_handler([&latencies, &publish_time,
                                     &h](const WakuMessage&) {
        latencies.push_back(
            static_cast<double>(h.sim().now() - publish_time[0]));
      });
    }
    publish_time[0] = h.sim().now();
    h.node(0).try_publish(to_bytes("latency probe"));
    h.run_ms(20'000);

    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      if (latencies.empty()) return 0.0;
      const auto idx = static_cast<std::size_t>(
          p * static_cast<double>(latencies.size() - 1));
      return latencies[idx];
    };
    std::printf("%-8zu %10.0f %10.0f %10.0f   (reached %zu/%zu)\n", n,
                pct(0.5), pct(0.95), latencies.empty() ? 0 : latencies.back(),
                latencies.size() + 1, n);
  }
}

// (b) false-drop rate of honest traffic vs Thr under clock skew.
void thr_series() {
  constexpr std::uint64_t kEpochMs = 5'000;
  constexpr std::int64_t kSkewMs = 4'000;  // ClockAsynchrony ~ +/-4 s
  std::printf("\n(b) honest false-drop rate vs Thr "
              "(T=%llus, clock skew +/-%llds, delay ~0.2s)\n",
              static_cast<unsigned long long>(kEpochMs / 1000),
              static_cast<long long>(kSkewMs / 1000));
  const std::uint64_t recommended =
      rln::max_epoch_gap(200, 2 * static_cast<std::uint64_t>(kSkewMs),
                         kEpochMs);
  std::printf("formula Thr = ceil((delay + asynchrony)/T) = %llu\n",
              static_cast<unsigned long long>(recommended));
  std::printf("%-6s %14s %14s %12s\n", "Thr", "accepted", "gap-dropped",
              "drop rate");

  for (const std::uint64_t thr : {0u, 1u, 2u, 3u}) {
    rln::HarnessConfig cfg;
    cfg.num_nodes = 20;
    cfg.degree = 5;
    cfg.block_interval_ms = 5'000;
    cfg.node.tree_depth = 10;
    cfg.node.validator.epoch.epoch_length_ms = kEpochMs;
    cfg.node.validator.max_epoch_gap = thr;
    rln::RlnHarness h(cfg);
    Rng rng(0xE8 + thr);
    for (std::size_t i = 0; i < h.size(); ++i) {
      const std::int64_t skew =
          static_cast<std::int64_t>(rng.next_below(2 * kSkewMs)) - kSkewMs;
      h.network().set_clock_skew(h.node(i).node_id(), skew);
    }
    h.register_all();
    h.run_ms(30'000);  // get all local clocks past zero

    // Every node publishes once per epoch for 6 epochs.
    for (int round = 0; round < 6; ++round) {
      for (std::size_t i = 0; i < h.size(); ++i) {
        (void)h.node(i).try_publish(
            to_bytes("r" + std::to_string(round) + "n" + std::to_string(i)));
      }
      h.run_ms(kEpochMs);
    }
    h.run_ms(10'000);

    std::uint64_t accepted = 0;
    std::uint64_t gap = 0;
    for (std::size_t i = 0; i < h.size(); ++i) {
      accepted += h.node(i).validator().stats().accepted;
      gap += h.node(i).validator().stats().epoch_gap;
    }
    std::printf("%-6llu %14llu %14llu %11.1f%%\n",
                static_cast<unsigned long long>(thr),
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(gap),
                100.0 * static_cast<double>(gap) /
                    static_cast<double>(accepted + gap));
  }
}

// (c) throughput ceiling vs epoch length.
void throughput_series() {
  std::printf("\n(c) network throughput ceiling vs epoch length "
              "(rate limit: 1 msg/member/epoch)\n");
  std::printf("%-10s %20s %24s\n", "T (s)", "per-member msg/min",
              "100k members: msg/s");
  for (const double t_s : {1.0, 5.0, 30.0, 60.0}) {
    std::printf("%-10.0f %20.1f %24.0f\n", t_s, 60.0 / t_s, 100'000.0 / t_s);
  }
  std::printf("(paper §I: a chat app tolerates T=1s; Ethereum-validator-style"
              " workloads need shorter epochs)\n");
}

}  // namespace

int main() {
  std::printf("E8: epoch gap threshold Thr and propagation delay (§III-F)\n\n");
  propagation_series();
  thr_series();
  throughput_series();
  std::printf(
      "\nShape check: dissemination latency grows mildly with network size\n"
      "(gossip hops ~ log N); Thr below the formula's recommendation drops\n"
      "honest traffic, at/above it the drop rate falls to ~0 — matching the\n"
      "paper's guidance for setting Thr.\n");
  return 0;
}
