// Million-member group mechanics (ISSUE 10 acceptance measurements):
//
//   registration      single-insert vs insert_batch throughput on the
//                     paged-arena tree — the batch path rehashes each
//                     level once (~2n + depth hashes) instead of n·depth,
//                     so it must land >= 5x the single-insert rate;
//   witness           auth-path service cost on the populated tree (the
//                     §IV-A hybrid-architecture serving cost per request);
//   bootstrap         signed-checkpoint bytes + adopt latency for a
//                     joining light client at each group size, plus the
//                     full snapshot / paged-arena storage footprints;
//   delta_checkpoint  poll-mode delta vs full checkpoint size for a
//                     1k-member churn window (acceptance: >= 10x smaller).
//
// Standalone binary emitting machine-readable JSON (argv[1], default
// BENCH_membership_scale.json). WAKU_BENCH_SMOKE=1 caps the group at 100k
// members; the full run includes the 1M point.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chain/types.hpp"
#include "common/serde.hpp"
#include "merkle/merkle_tree.hpp"
#include "rln/checkpoint.hpp"
#include "rln/group_manager.hpp"

namespace {

using namespace waku;       // NOLINT
using namespace waku::rln;  // NOLINT
using benchutil::smoke_mode;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kDepth = 20;
// A churn-tolerant serving node keeps a much wider root window than the
// default 10: under batched churn every block rotates a root, and a proof
// generated seconds before arrival must still land inside the window, so
// high-churn deployments size it in the tens. The full checkpoint ships
// that whole window; the delta ships only the transitions since the
// client's binding.
constexpr std::size_t kServingRootWindow = 64;
constexpr std::size_t kChurn = 1'000;
// Churn arrives as gas-bounded register_batch calls (~500 members per
// transaction), so a 1k churn window folds into 2 root transitions.
constexpr std::size_t kChurnBatches = 2;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::vector<Fr> random_pks(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Fr> pks;
  pks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) pks.push_back(Fr::random(rng));
  return pks;
}

/// One folded MembersRegistered event (the register_batch emission shape).
chain::Event batch_event(std::uint64_t base, std::span<const Fr> pks) {
  chain::Event ev;
  ev.name = "MembersRegistered";
  ev.topics = {ff::U256{base}, ff::U256{pks.size()}};
  ByteWriter w;
  for (const Fr& pk : pks) w.write_raw(pk.to_bytes_be());
  ev.data = std::move(w).take();
  return ev;
}

struct RegistrationRow {
  std::size_t members;
  double batch_ms;
  double batch_per_s;
  double single_per_s;
  double batch_speedup;
};

struct WitnessRow {
  std::size_t members;
  double avg_us_per_path;
};

struct BootstrapRow {
  std::size_t members;
  std::size_t checkpoint_bytes;
  double checkpoint_ms;
  std::size_t snapshot_bytes;
  std::size_t tree_storage_bytes;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_membership_scale.json";

  const std::vector<std::size_t> sizes =
      smoke_mode() ? std::vector<std::size_t>{10'000, 100'000}
                   : std::vector<std::size_t>{10'000, 100'000, 1'000'000};

  std::vector<RegistrationRow> registration;
  std::vector<WitnessRow> witness;
  std::vector<BootstrapRow> bootstrap;

  const hash::schnorr::KeyPair key = hash::schnorr::keygen_from_seed(0x5CA1E);

  for (const std::size_t members : sizes) {
    std::printf("== %zu members (depth %zu)\n", members, kDepth);
    const std::vector<Fr> pks = random_pks(members, 0x5CA1E + members);

    // -- registration: batch vs single ---------------------------------------
    merkle::IncrementalMerkleTree batch_tree(kDepth);
    const auto batch_start = Clock::now();
    batch_tree.insert_batch(pks);
    const double batch_ms = ms_since(batch_start);
    const double batch_per_s = 1000.0 * static_cast<double>(members) / batch_ms;

    // Single-insert cost is ~depth hashes per member regardless of tree
    // size; a sample at the populated tree's tail prices the whole run.
    const std::size_t sample =
        std::min<std::size_t>(2'000, members / 2);
    merkle::IncrementalMerkleTree single_tree(kDepth);
    single_tree.insert_batch(
        std::span<const Fr>(pks).first(members - sample));
    const auto single_start = Clock::now();
    for (std::size_t i = members - sample; i < members; ++i) {
      single_tree.insert(pks[i]);
    }
    const double single_ms = ms_since(single_start);
    const double single_per_s =
        1000.0 * static_cast<double>(sample) / single_ms;
    if (single_tree.root() != batch_tree.root()) {
      std::fprintf(stderr, "batch/single trees diverged\n");
      return 1;
    }
    const double speedup = batch_per_s / single_per_s;
    registration.push_back(
        {members, batch_ms, batch_per_s, single_per_s, speedup});
    std::printf(
        "  register: batch %10.0f members/s  single %9.0f members/s  "
        "speedup %.1fx\n",
        batch_per_s, single_per_s, speedup);

    // -- witness service -----------------------------------------------------
    const std::size_t witness_sample = 1'000;
    const auto witness_start = Clock::now();
    for (std::size_t i = 0; i < witness_sample; ++i) {
      // Stride the whole index range so paths cross many arena pages.
      const std::uint64_t index = (i * members) / witness_sample;
      const merkle::MerklePath path = batch_tree.auth_path(index);
      if (path.siblings.size() != kDepth) return 1;
    }
    const double witness_us =
        1000.0 * ms_since(witness_start) / witness_sample;
    witness.push_back({members, witness_us});
    std::printf("  witness:  %.2f us/path\n", witness_us);

    // -- bootstrap: checkpoint bytes + adopt latency -------------------------
    GroupManager full(kDepth, TreeMode::kFullTree, kServingRootWindow);
    full.on_event(batch_event(0, pks));
    Checkpoint checkpoint =
        make_group_checkpoint(full, 1, {shard::ShardWatermark{0, 0}});
    checkpoint.sign(key);
    const Bytes wire = checkpoint.serialize();
    const auto adopt_start = Clock::now();
    const Checkpoint received = Checkpoint::deserialize(wire);
    if (!received.verify(key.pk)) return 1;
    GroupManager light = GroupManager::from_checkpoint(
        received.group_checkpoint(), kServingRootWindow);
    const double adopt_ms = ms_since(adopt_start);
    if (light.root() != full.root()) {
      std::fprintf(stderr, "checkpoint bootstrap diverged\n");
      return 1;
    }
    bootstrap.push_back({members, wire.size(), adopt_ms,
                         full.serialize().size(), full.storage_bytes()});
    std::printf(
        "  bootstrap: checkpoint %zu B in %.3f ms  (snapshot %zu B, "
        "arena %zu B)\n",
        wire.size(), adopt_ms, bootstrap.back().snapshot_bytes,
        bootstrap.back().tree_storage_bytes);
  }

  // -- delta vs full checkpoint for a kChurn-member churn window -------------
  // The serving node folds the churn as batched registrations (one root
  // transition per batch); a poll-mode client then needs only the delta.
  const std::size_t delta_base_members = sizes.back();
  GroupManager serving(kDepth, TreeMode::kFullTree, kServingRootWindow);
  std::uint64_t cursor = 0;
  std::uint64_t next_member = 0;
  {
    const std::vector<Fr> base_pks =
        random_pks(delta_base_members, 0xD317A);
    serving.on_event(batch_event(0, base_pks));
    ++cursor;
    next_member = delta_base_members;
  }
  // Steady state for a churning group: the serving node has been folding
  // batched registrations for a while, so its root window is saturated —
  // that full window is what a full checkpoint must ship.
  {
    const std::vector<Fr> warmup_pks =
        random_pks(kServingRootWindow * 16, 0xD317A1);
    for (std::size_t b = 0; b < kServingRootWindow; ++b) {
      serving.on_event(batch_event(
          next_member,
          std::span<const Fr>(warmup_pks).subspan(b * 16, 16)));
      ++cursor;
      next_member += 16;
    }
  }
  const std::uint64_t from_cursor = cursor;
  const Fr from_root = serving.root();

  const std::size_t churn_batches = kChurnBatches;
  const std::vector<Fr> churn_pks = random_pks(kChurn, 0xD317A2);
  std::vector<Fr> root_tail;
  for (std::size_t b = 0; b < churn_batches; ++b) {
    const std::size_t lo = b * kChurn / churn_batches;
    const std::size_t hi = (b + 1) * kChurn / churn_batches;
    serving.on_event(batch_event(
        next_member + lo,
        std::span<const Fr>(churn_pks).subspan(lo, hi - lo)));
    root_tail.push_back(serving.root());
  }

  DeltaCheckpoint delta;
  delta.from_cursor = from_cursor;
  delta.from_root = from_root;
  delta.to_cursor = from_cursor + churn_batches;
  delta.member_count = serving.member_count();
  delta.removed_count = serving.removed_count();
  delta.nullifier_watermarks = {shard::ShardWatermark{0, 0}};
  delta.root_tail = root_tail;
  delta.sign(key);
  const std::size_t delta_bytes = delta.serialize().size();

  Checkpoint full_after_churn = make_group_checkpoint(
      serving, delta.to_cursor, {shard::ShardWatermark{0, 0}});
  full_after_churn.sign(key);
  const std::size_t full_bytes = full_after_churn.serialize().size();
  const double size_ratio =
      static_cast<double>(full_bytes) / static_cast<double>(delta_bytes);
  std::printf(
      "== delta: %zu-member churn over %zu batches  full %zu B  delta %zu B  "
      "ratio %.1fx\n",
      kChurn, churn_batches, full_bytes, delta_bytes, size_ratio);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n\"config\": {\"depth\": %zu, \"root_window\": %zu, "
                  "\"smoke\": %d},\n",
               kDepth, kServingRootWindow, smoke_mode() ? 1 : 0);
  std::fprintf(f, "\"registration\": [\n");
  for (std::size_t i = 0; i < registration.size(); ++i) {
    const RegistrationRow& r = registration[i];
    std::fprintf(f,
                 "  {\"members\": %zu, \"batch_ms\": %.3f, "
                 "\"batch_members_per_sec\": %.0f, "
                 "\"single_members_per_sec\": %.0f, "
                 "\"batch_speedup\": %.2f}%s\n",
                 r.members, r.batch_ms, r.batch_per_s, r.single_per_s,
                 r.batch_speedup, i + 1 < registration.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"witness\": [\n");
  for (std::size_t i = 0; i < witness.size(); ++i) {
    std::fprintf(f,
                 "  {\"members\": %zu, \"avg_us_per_path\": %.3f}%s\n",
                 witness[i].members, witness[i].avg_us_per_path,
                 i + 1 < witness.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"bootstrap\": [\n");
  for (std::size_t i = 0; i < bootstrap.size(); ++i) {
    const BootstrapRow& b = bootstrap[i];
    std::fprintf(f,
                 "  {\"members\": %zu, \"checkpoint_bytes\": %zu, "
                 "\"checkpoint_ms\": %.3f, \"snapshot_bytes\": %zu, "
                 "\"tree_storage_bytes\": %zu}%s\n",
                 b.members, b.checkpoint_bytes, b.checkpoint_ms,
                 b.snapshot_bytes, b.tree_storage_bytes,
                 i + 1 < bootstrap.size() ? "," : "");
  }
  std::fprintf(f,
               "],\n\"delta_checkpoint\": {\"base_members\": %zu, "
               "\"churn_members\": %zu, \"churn_batches\": %zu, "
               "\"full_bytes\": %zu, \"delta_bytes\": %zu, "
               "\"size_ratio\": %.2f}\n}\n",
               delta_base_members, kChurn, churn_batches, full_bytes,
               delta_bytes, size_ratio);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
