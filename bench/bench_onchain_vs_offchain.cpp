// E9 — Off-chain messaging (WAKU-RELAY) vs on-chain signaling (Semaphore).
//
// Paper §III-A adjustment 2: Waku moved messages off-chain because
// (1) on-chain messages are invisible until their block is mined — an
//     unacceptable delay for messaging workloads, and
// (2) every on-chain message costs gas, which is "far from practical" at
//     messaging rates (the paper cites WhatsApp-scale 1.1M msg/s).
//
// This harness publishes the same message stream both ways and reports
// visibility latency and per-message cost.
#include <cstdio>
#include <vector>

#include "chain/semaphore_contract.hpp"
#include "common/serde.hpp"
#include "rln/harness.hpp"

using namespace waku;  // NOLINT

namespace {

constexpr double kGasPriceGwei = 150.0;
constexpr double kEthUsd = 3300.0;
constexpr int kMessages = 10;

void offchain_series() {
  rln::HarnessConfig cfg;
  cfg.num_nodes = 30;
  cfg.degree = 6;
  cfg.block_interval_ms = 12'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 5'000;
  rln::RlnHarness h(cfg);
  h.register_all();
  h.run_ms(5'000);

  std::vector<double> latencies;
  net::TimeMs published_at = 0;
  std::size_t current_seen = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    h.node(i).set_message_handler([&](const WakuMessage&) {
      ++current_seen;
      if (current_seen == h.size() - 1) {  // reached everyone
        latencies.push_back(static_cast<double>(h.sim().now() - published_at));
      }
    });
  }

  for (int m = 0; m < kMessages; ++m) {
    current_seen = 0;
    published_at = h.sim().now();
    (void)h.node(0).try_publish(to_bytes("msg " + std::to_string(m)));
    h.run_ms(cfg.node.validator.epoch.epoch_length_ms);  // next epoch
  }
  h.run_ms(10'000);

  double sum = 0;
  for (const double l : latencies) sum += l;
  std::printf("%-26s %6d %18.0f %14s %12s\n", "off-chain (WAKU-RELAY)",
              kMessages,
              latencies.empty() ? 0.0
                                : sum / static_cast<double>(latencies.size()),
              "0", "0.00");
}

void onchain_series() {
  chain::Blockchain::Config ccfg;
  ccfg.block_interval_ms = 12'000;
  chain::Blockchain chain(ccfg);
  const chain::Address account = chain::Address::from_u64(0xE9);
  chain.create_account(account, 1'000 * chain::kGweiPerEth);
  const chain::Address sem = chain.deploy(
      std::make_unique<chain::SemaphoreContract>(16, 10'000'000));

  // Register the publisher once.
  {
    chain::Transaction tx;
    tx.from = account;
    tx.to = sem;
    tx.method = "register";
    tx.calldata = ff::Fr::from_u64(7).to_bytes_be();
    tx.value = 10'000'000;
    chain.submit(std::move(tx));
    chain.mine_block(0);
  }

  std::uint64_t clock = 0;
  double total_latency = 0;
  std::uint64_t total_gas = 0;
  Rng rng(0xE99);
  for (int m = 0; m < kMessages; ++m) {
    ByteWriter w;
    w.write_raw(ff::u256_to_bytes_be(ff::U256{1000 + static_cast<std::uint64_t>(m)}));
    const Bytes payload = to_bytes("msg " + std::to_string(m) +
                                   " padded to a chat-sized payload......");
    w.write_u32(static_cast<std::uint32_t>(payload.size()));
    w.write_raw(payload);
    chain::Transaction tx;
    tx.from = account;
    tx.to = sem;
    tx.method = "broadcast_signal";
    tx.calldata = std::move(w).take();
    const std::uint64_t submit_time = clock + rng.next_below(12'000);
    const auto handle = chain.submit(std::move(tx));
    clock += 12'000;
    chain.mine_block(clock);  // visible only now
    const auto receipt = *chain.receipt(handle);
    total_latency += static_cast<double>(clock - submit_time);
    total_gas += receipt.gas_used;
  }
  const double avg_gas =
      static_cast<double>(total_gas) / static_cast<double>(kMessages);
  std::printf("%-26s %6d %18.0f %14.0f %12.2f\n",
              "on-chain (Semaphore)", kMessages,
              total_latency / kMessages, avg_gas,
              avg_gas * kGasPriceGwei * 1e-9 * kEthUsd);
}

}  // namespace

int main() {
  std::printf("E9: message visibility latency and per-message cost\n");
  std::printf("(paper §III-A: off-chain transport avoids block delay and "
              "per-message gas)\n\n");
  std::printf("%-26s %6s %18s %14s %12s\n", "transport", "msgs",
              "visibility (ms)", "gas/msg", "USD/msg");
  offchain_series();
  onchain_series();
  std::printf(
      "\nShape check: relay visibility is sub-second (gossip propagation),\n"
      "on-chain visibility averages half a block interval (~6 s at 12 s\n"
      "blocks) and every message costs real gas — the reason messaging is\n"
      "free and fast in WAKU-RLN-RELAY and neither in Semaphore.\n");
  return 0;
}
