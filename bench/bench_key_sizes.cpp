// E3 — Key-material sizes.
//
// Paper §IV: "Each peer persists a 32B public and secret key and a prover
// key with ~3.89 MB in size". This harness prints the serialized sizes of
// every persistent artifact a peer holds, across tree depths, plus the
// per-message overhead (proof bundle) the wire carries.
#include <cstdio>

#include "rln/identity.hpp"
#include "rln/rate_limit_proof.hpp"
#include "zksnark/rln_circuit.hpp"

using namespace waku;  // NOLINT

int main() {
  std::printf("E3: per-peer key material and per-message overhead\n");
  std::printf("(paper: sk/pk 32 B each; prover key ~3.89 MB at depth 32;\n");
  std::printf(" Groth16 proof constant-size)\n\n");

  Rng rng(0xE3);
  const rln::Identity id = rln::Identity::generate(rng);
  std::printf("identity secret key : %zu B\n", id.sk_bytes().size());
  std::printf("identity commitment : %zu B\n", id.pk_bytes().size());
  std::printf("proof (pi)          : %zu B (constant)\n",
              zksnark::Proof::kSerializedSize);
  std::printf("proof bundle on wire: %zu B (x,y,phi,epoch,tau,pi)\n\n",
              rln::RateLimitProof::kSerializedSize);

  std::printf("%-6s %14s %14s %14s\n", "depth", "prover key (B)",
              "verify key (B)", "constraints");
  for (const std::size_t depth : {10u, 14u, 16u, 20u, 24u, 32u}) {
    const zksnark::Keypair& kp = zksnark::rln_keypair(depth);
    std::printf("%-6zu %14zu %14zu %14llu\n", depth,
                kp.pk.serialized_size(), kp.vk.serialized_size(),
                static_cast<unsigned long long>(kp.pk.num_constraints));
  }
  std::printf(
      "\nShape check: prover key grows ~linearly with depth (circuit size);\n"
      "verifying key and proof are constant — matching the paper's claim\n"
      "that only the prover-side artifact is megabytes.\n");
  return 0;
}
