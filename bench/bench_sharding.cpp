// Cross-shard scale-out: aggregate validated throughput of a fixed
// validator fleet as the relay is split into 1/2/4/8 shards.
//
// The model: N validator nodes, each hosting one shard (round-robin), and
// a fixed pool of P proof-carrying messages spread over content topics.
// Unsharded (K=1), every node validates every message — the paper's
// single global rate-limit domain. At K shards each message is validated
// only by the N/K nodes hosting its shard, so the deployment-wide work
// per delivered message falls by K while every shard keeps full RLN
// enforcement (own nullifier log, own root cache, own batch windows).
// Aggregate validated msgs/sec = P / wall-clock to validate the whole
// pool at every hosting node.
//
// A second section runs the shard-targeted flooder campaign (src/sim) and
// embeds its containment verdict — the scale-out story is only real if a
// flood on one shard buys nothing on the others.
//
// Standalone binary emitting machine-readable JSON (argv[1], default
// BENCH_sharding.json); honors WAKU_BENCH_SMOKE / --smoke.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rln/rate_limit_proof.hpp"
#include "shard/sharded_validator.hpp"
#include "sim/scenario.hpp"
#include "zksnark/rln_circuit.hpp"

namespace {

using namespace waku;       // NOLINT
using namespace waku::rln;  // NOLINT
using benchutil::smoke_mode;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kDepth = 12;
constexpr std::size_t kNodes = 8;  // divisible by every shard count below
constexpr std::size_t kWindow = 16;
const std::size_t kMessages = smoke_mode() ? 64 : 384;
const int kRepetitions = smoke_mode() ? 1 : 3;

struct Workload {
  GroupManager group{kDepth, TreeMode::kFullTree};
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 10'000},
                       .max_epoch_gap = 2};
  std::vector<WakuMessage> messages;
  std::uint64_t now_ms = 100 * 10'000 + 500;  // mid-epoch 100

  Workload() {
    Rng rng(0x5A4DB);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    // One member per message, all in epoch 100: distinct nullifiers, so
    // every message survives to the verifier and is accepted — the
    // all-honest hot path whose throughput sharding multiplies.
    std::vector<Identity> members;
    for (std::size_t i = 0; i < kMessages; ++i) {
      members.push_back(Identity::generate(rng));
      chain::Event ev;
      ev.name = "MemberRegistered";
      ev.topics = {ff::U256{i}, members.back().pk.to_u256()};
      group.on_event(ev);
    }
    for (std::size_t i = 0; i < kMessages; ++i) {
      WakuMessage msg;
      msg.payload = to_bytes("payload " + std::to_string(i));
      // Topics spread uniformly; each ShardMap partitions them its way.
      msg.content_topic = "/waku/2/app-" + std::to_string(i) + "/proto";
      zksnark::RlnProverInput input;
      input.sk = members[i].sk;
      input.path = group.path_of(i);
      input.x = message_hash(msg);
      input.epoch = ff::Fr::from_u64(100);
      zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
      RateLimitProof bundle;
      bundle.share_x = c.publics.x;
      bundle.share_y = c.publics.y;
      bundle.nullifier = c.publics.nullifier;
      bundle.epoch = 100;
      bundle.root = c.publics.root;
      bundle.proof = zksnark::prove(kp.pk, c.builder.cs(),
                                    c.builder.assignment(), rng);
      attach_proof(msg, bundle);
      messages.push_back(std::move(msg));
    }
  }
};

struct Record {
  std::uint16_t shards;
  std::uint64_t validations;
  double wall_ms;
  double aggregate_msgs_per_sec;
};

Record run_shard_count(const Workload& wl, std::uint16_t num_shards) {
  const shard::ShardMap map(num_shards);
  // Message routing, once (not timed — the router does this in O(1) per
  // message at publish time).
  std::vector<std::vector<const WakuMessage*>> by_shard(num_shards);
  for (const WakuMessage& msg : wl.messages) {
    by_shard[map.shard_of(msg.content_topic)].push_back(&msg);
  }

  double total_seconds = 0;
  std::uint64_t validations = 0;
  std::uint64_t accepted = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    // Fresh fleet per pass: node n hosts shard n mod K, with its own
    // per-shard pipelines (empty logs, own RLC seeds).
    std::vector<std::unique_ptr<shard::ShardedValidator>> fleet;
    for (std::size_t n = 0; n < kNodes; ++n) {
      shard::ShardConfig scfg;
      scfg.num_shards = num_shards;
      scfg.subscribe = {static_cast<shard::ShardId>(n % num_shards)};
      fleet.push_back(std::make_unique<shard::ShardedValidator>(
          zksnark::rln_keypair(kDepth).vk, wl.group, wl.vcfg, scfg,
          0x5EED0 + 131 * rep + n));
    }

    const auto start = Clock::now();
    for (std::size_t n = 0; n < kNodes; ++n) {
      const auto home = static_cast<shard::ShardId>(n % num_shards);
      ValidationPipeline& pipeline = fleet[n]->pipeline(home);
      const std::vector<const WakuMessage*>& inbox = by_shard[home];
      std::vector<WakuMessage> window;
      window.reserve(kWindow);
      for (std::size_t i = 0; i < inbox.size(); i += kWindow) {
        const std::size_t len = std::min(kWindow, inbox.size() - i);
        window.clear();
        for (std::size_t k = 0; k < len; ++k) window.push_back(*inbox[i + k]);
        const auto outcomes = pipeline.validate_batch(window, wl.now_ms);
        for (const auto& o : outcomes) {
          accepted += o.verdict == Verdict::kAccept ? 1 : 0;
        }
        validations += len;
      }
    }
    total_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
  }
  if (accepted != validations) {
    std::fprintf(stderr, "bench invariant violated: %llu/%llu accepted\n",
                 static_cast<unsigned long long>(accepted),
                 static_cast<unsigned long long>(validations));
    std::exit(1);
  }
  Record r;
  r.shards = num_shards;
  r.validations = validations / kRepetitions;
  r.wall_ms = total_seconds * 1000.0 / kRepetitions;
  // The deployment-wide useful throughput: distinct messages fully
  // validated by their hosting shard per second of fleet wall-clock.
  r.aggregate_msgs_per_sec = static_cast<double>(kMessages) * kRepetitions /
                             total_seconds;
  return r;
}

sim::ShardFloodOutcome run_flood(bool smoke) {
  sim::ShardFloodConfig cfg;
  cfg.harness.num_nodes = smoke ? 12 : 24;
  cfg.harness.degree = 4;
  cfg.harness.block_interval_ms = 4'000;
  cfg.harness.node.tree_depth = 10;
  cfg.harness.node.validator.epoch.epoch_length_ms = 10'000;
  cfg.harness.node.gossip.validation_batch_max = 8;
  cfg.harness.node.shards.num_shards = smoke ? 3 : 4;
  cfg.harness.seed = 0x5F100D;
  cfg.attacked_shard = 1;
  cfg.flood_burst_per_epoch = smoke ? 5 : 6;
  cfg.warmup_ms = 8'000;
  cfg.attack_ms = smoke ? 24'000 : 30'000;
  cfg.drain_ms = 8'000;
  return sim::run_shard_flood_campaign(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sharding.json";
  const bool smoke = (argc > 2 && std::strcmp(argv[2], "--smoke") == 0) ||
                     smoke_mode();

  std::printf("building workload: %zu proofs at depth %zu (%zu nodes)...\n",
              kMessages, kDepth, kNodes);
  const Workload wl;

  std::vector<Record> records;
  for (const std::uint16_t shards : {1, 2, 4, 8}) {
    const Record r = run_shard_count(wl, shards);
    std::printf(
        "shards %u: %6llu validations  %8.1f ms  %10.0f agg msgs/s\n",
        r.shards, static_cast<unsigned long long>(r.validations), r.wall_ms,
        r.aggregate_msgs_per_sec);
    records.push_back(r);
  }
  const double speedup4 =
      records[2].aggregate_msgs_per_sec / records[0].aggregate_msgs_per_sec;
  std::printf("4-shard aggregate speedup over unsharded: %.2fx\n", speedup4);

  std::printf("\nshard-targeted flood campaign...\n");
  const sim::ShardFloodOutcome flood = run_flood(smoke);
  std::printf(
      "flood: %u shards, attacked %u, spam %llu, slashed %s, "
      "min non-attacked delivery %.4f, cross-shard spam %llu\n",
      flood.num_shards, flood.attacked_shard,
      static_cast<unsigned long long>(flood.spam_sent),
      flood.attacker_slashed ? "yes" : "NO",
      flood.min_non_attacked_delivery,
      static_cast<unsigned long long>(flood.spam_on_non_attacked_shards));

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n\"smoke\": %s,\n\"nodes\": %zu,\n\"messages\": %zu,\n"
               "\"scale\": [\n",
               smoke ? "true" : "false", kNodes, kMessages);
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "  {\"shards\": %u, \"validations\": %llu, "
                 "\"wall_ms\": %.3f, \"aggregate_msgs_per_sec\": %.1f, "
                 "\"speedup_vs_unsharded\": %.3f}%s\n",
                 records[i].shards,
                 static_cast<unsigned long long>(records[i].validations),
                 records[i].wall_ms, records[i].aggregate_msgs_per_sec,
                 records[i].aggregate_msgs_per_sec /
                     records[0].aggregate_msgs_per_sec,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"flood\": ");
  const std::string flood_json = flood.to_json();
  std::fwrite(flood_json.data(), 1, flood_json.size(), f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
