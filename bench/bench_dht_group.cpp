// E11 (ablation, paper §IV-A future work) — contract-based vs DHT-based
// group management.
//
// "Enhancing performance by off-chain solutions: ... replace the
// membership contract with a distributed group management scheme e.g.,
// through distributed hash tables. ... registration transactions are
// subject to delay as they have to be mined before being visible."
//
// Measures registration -> membership-visible latency for (a) the Ethereum
// contract at several block intervals and (b) the Kademlia directory, and
// reports what the DHT gives up in exchange (no deposits, no slashing).
#include <cstdio>
#include <memory>

#include "dht/kademlia.hpp"
#include "hash/poseidon.hpp"
#include "rln/dht_group.hpp"
#include "rln/harness.hpp"

using namespace waku;  // NOLINT

namespace {

double contract_registration_latency(std::uint64_t block_interval_ms) {
  rln::HarnessConfig cfg;
  cfg.num_nodes = 10;
  cfg.degree = 4;
  cfg.block_interval_ms = block_interval_ms;
  cfg.node.tree_depth = 10;
  rln::RlnHarness h(cfg);
  h.run_ms(block_interval_ms / 3);  // submit mid-block, the average case

  const net::TimeMs t0 = h.sim().now();
  h.node(0).register_membership();
  while (!h.node(0).is_registered()) {
    h.run_ms(50);
  }
  return static_cast<double>(h.sim().now() - t0);
}

double dht_registration_latency(std::size_t swarm_size) {
  net::Simulator sim;
  net::Network net(sim, {.base_latency_ms = 40, .jitter_ms = 20,
                         .loss_rate = 0}, 0xE11);
  std::vector<std::unique_ptr<dht::DhtNode>> nodes;
  for (std::size_t i = 0; i < swarm_size; ++i) {
    nodes.push_back(std::make_unique<dht::DhtNode>(net));
  }
  for (std::size_t i = 0; i < swarm_size; ++i) {
    for (std::size_t j = i + 1; j < swarm_size; ++j) {
      net.connect(nodes[i]->node_id(), nodes[j]->node_id());
    }
  }
  for (std::size_t i = 1; i < swarm_size; ++i) {
    nodes[i]->bootstrap(nodes[0]->node_id());
    sim.run_until(sim.now() + 300);
  }
  sim.run_until(sim.now() + 2'000);

  rln::DhtGroupDirectory writer(*nodes[1], "bench");
  rln::DhtGroupDirectory reader(*nodes[7], "bench");
  rln::GroupManager observer(10, rln::TreeMode::kFullTree);

  const net::TimeMs t0 = sim.now();
  bool registered = false;
  writer.register_member(hash::poseidon1(ff::Fr::from_u64(42)),
                         [&](std::uint64_t) { registered = true; });
  while (!registered) {
    sim.run_until(sim.now() + 50);
  }
  // Visible = another peer's sync sees the member.
  std::uint64_t added = 0;
  reader.sync(observer, [&](std::uint64_t n) { added = n; });
  while (added == 0) {
    sim.run_until(sim.now() + 50);
  }
  return static_cast<double>(sim.now() - t0);
}

}  // namespace

int main() {
  std::printf("E11 (ablation): registration -> visible-membership latency\n");
  std::printf("(paper §IV-A: DHT group management removes the block-mining "
              "delay)\n\n");
  std::printf("%-36s %16s\n", "scheme", "latency (ms)");
  for (const std::uint64_t interval : {12'000u, 6'000u, 2'000u}) {
    char label[64];
    std::snprintf(label, sizeof label, "contract, %llus blocks",
                  static_cast<unsigned long long>(interval / 1000));
    std::printf("%-36s %16.0f\n", label,
                contract_registration_latency(interval));
  }
  std::printf("%-36s %16.0f\n", "DHT directory (25-node Kademlia)",
              dht_registration_latency(25));

  std::printf(
      "\nShape check: contract registration latency is bounded below by the\n"
      "time to the next block (~half the interval on average, plus event\n"
      "sync), while the DHT path completes in a few network round-trips —\n"
      "the §IV-A motivation. The cost: without the contract there is no\n"
      "deposit to slash, so the economic half of the protocol needs a\n"
      "separate mechanism (left open by the paper, and by this bench).\n");
  return 0;
}
