// Real-core scaling of the multithreaded validation executor.
//
// Drives 8 shards' batch windows through a ShardedValidator at 1/2/4/8
// worker threads and compares aggregate msgs/sec against the deterministic
// single-thread baseline (the exact pre-executor code path). Every shard
// validates the same proved message set — per-shard nullifier logs are
// independent, so each shard performs the full Groth16 batch-verify work
// and N proofs buy 8N messages of load.
//
// Raw speedup is machine-bound (a 1-core CI runner cannot scale), so the
// regression-gated metric is parallel_efficiency =
// speedup / min(workers, hardware_threads): ~1.0 wherever the pool is
// healthy, independent of the runner's core count. hardware_threads is
// recorded so cross-machine trajectories stay interpretable.
//
// Also benches the ShardMap topic->shard memo on a deep split lineage
// (satellite of the same PR): warm lookups must be amortized O(1) — one
// hash probe, no keccak walk — which is asserted via the memo's hit
// counters plus a generous warm-vs-flat-map latency bound.
//
// Standalone binary: emits BENCH_parallel_validation.json (or argv[1]).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "rln/rate_limit_proof.hpp"
#include "shard/sharded_validator.hpp"
#include "zksnark/rln_circuit.hpp"

namespace {

using namespace waku;       // NOLINT
using namespace waku::rln;  // NOLINT
using benchutil::smoke_mode;

constexpr std::size_t kDepth = 16;
constexpr std::uint16_t kShards = 8;
constexpr std::size_t kWindow = 16;
const std::size_t kMessages = smoke_mode() ? 32 : 128;
const int kRepetitions = smoke_mode() ? 1 : 3;

struct Workload {
  GroupManager group{kDepth, TreeMode::kFullTree};
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 10'000},
                       .max_epoch_gap = 2};
  std::vector<WakuMessage> messages;
  std::uint64_t now_ms = 100 * 10'000 + 500;  // epoch 100

  Workload() {
    Rng rng(0x9A11);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    std::vector<Identity> members;
    for (std::size_t i = 0; i < kMessages; ++i) {
      members.push_back(Identity::generate(rng));
      chain::Event ev;
      ev.name = "MemberRegistered";
      ev.topics = {ff::U256{i}, members.back().pk.to_u256()};
      group.on_event(ev);
    }
    for (std::size_t i = 0; i < kMessages; ++i) {
      WakuMessage msg;
      msg.payload = to_bytes("payload " + std::to_string(i));
      zksnark::RlnProverInput input;
      input.sk = members[i].sk;
      input.path = group.path_of(i);
      input.x = message_hash(msg);
      input.epoch = ff::Fr::from_u64(100);
      zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
      RateLimitProof bundle;
      bundle.share_x = c.publics.x;
      bundle.share_y = c.publics.y;
      bundle.nullifier = c.publics.nullifier;
      bundle.epoch = 100;
      bundle.root = c.publics.root;
      bundle.proof = zksnark::prove(kp.pk, c.builder.cs(),
                                    c.builder.assignment(), rng);
      attach_proof(msg, bundle);
      messages.push_back(std::move(msg));
    }
  }
};

/// One measured pass: fresh per-shard pipelines (empty logs, full accept
/// path), all shards' windows submitted up front, drain() as the barrier.
double run_config(const Workload& wl, const ParallelismConfig& pcfg) {
  using Clock = std::chrono::steady_clock;
  double total_seconds = 0.0;
  std::size_t total_messages = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    shard::ShardConfig scfg;
    scfg.num_shards = kShards;
    shard::ShardedValidator validator(
        zksnark::rln_keypair(kDepth).vk, wl.group, wl.vcfg, scfg,
        0x5EED + static_cast<std::uint64_t>(rep));
    validator.set_parallelism(pcfg);
    std::atomic<std::uint64_t> accepted{0};
    const auto start = Clock::now();
    for (std::uint16_t shard = 0; shard < kShards; ++shard) {
      for (std::size_t i = 0; i < wl.messages.size(); i += kWindow) {
        const std::size_t len =
            std::min(kWindow, wl.messages.size() - i);
        validator.submit(
            shard,
            std::span<const WakuMessage>(wl.messages.data() + i, len),
            wl.now_ms, [&accepted](std::vector<ValidationOutcome> outcomes) {
              for (const auto& o : outcomes) {
                if (o.verdict == Verdict::kAccept) {
                  accepted.fetch_add(1, std::memory_order_relaxed);
                }
              }
            });
      }
    }
    validator.drain();
    total_seconds +=
        std::chrono::duration<double>(Clock::now() - start).count();
    const std::size_t expected = kShards * wl.messages.size();
    total_messages += expected;
    if (accepted.load() != expected) {
      std::fprintf(stderr, "bench invariant violated: %llu/%zu accepted\n",
                   static_cast<unsigned long long>(accepted.load()),
                   expected);
      std::exit(1);
    }
  }
  return static_cast<double>(total_messages) / total_seconds;
}

struct MemoResult {
  std::size_t splits = 0;
  double cold_us_per_lookup = 0.0;
  double warm_us_per_lookup = 0.0;
  double flat_warm_us_per_lookup = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

MemoResult run_memo_bench() {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kSplits = 5;  // 8 -> 256 shards, 6-layer lineage
  constexpr std::size_t kTopics = 256;
  const std::size_t kWarmPasses = smoke_mode() ? 50 : 500;

  shard::ShardMap deep(kShards, 0);
  for (std::size_t s = 0; s < kSplits; ++s) deep = deep.split(2);
  shard::ShardMap flat(kShards, 0);

  std::vector<std::string> topics;
  topics.reserve(kTopics);
  for (std::size_t i = 0; i < kTopics; ++i) {
    topics.push_back("/waku/2/app-" + std::to_string(i) + "/proto");
  }

  MemoResult r;
  r.splits = kSplits;

  const auto cold_start = Clock::now();
  for (const std::string& t : topics) (void)deep.shard_of(t);
  r.cold_us_per_lookup =
      std::chrono::duration<double>(Clock::now() - cold_start).count() * 1e6 /
      static_cast<double>(kTopics);

  const auto time_warm = [&](const shard::ShardMap& map) {
    for (const std::string& t : topics) (void)map.shard_of(t);  // prime
    const auto start = Clock::now();
    for (std::size_t pass = 0; pass < kWarmPasses; ++pass) {
      for (const std::string& t : topics) (void)map.shard_of(t);
    }
    return std::chrono::duration<double>(Clock::now() - start).count() * 1e6 /
           static_cast<double>(kWarmPasses * kTopics);
  };
  r.warm_us_per_lookup = time_warm(deep);
  r.flat_warm_us_per_lookup = time_warm(flat);

  const shard::ShardMap::MemoStats stats = deep.memo_stats();
  r.hits = stats.hits;
  r.misses = stats.misses;

  // O(1)-amortized assertions. Counter-based (deterministic): after the
  // cold pass, every lookup is a memo hit and the memo never overflowed.
  const std::uint64_t expected_hits =
      static_cast<std::uint64_t>((kWarmPasses + 1) * kTopics);
  if (stats.misses != kTopics || stats.hits != expected_hits ||
      stats.flushes != 0) {
    std::fprintf(stderr,
                 "memo invariant violated: hits=%llu (want %llu) "
                 "misses=%llu (want %zu) flushes=%llu\n",
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(expected_hits),
                 static_cast<unsigned long long>(stats.misses), kTopics,
                 static_cast<unsigned long long>(stats.flushes));
    std::exit(1);
  }
  // Latency-based (generous margin): a warm deep-lineage lookup is the
  // same hash-probe code path as a warm flat-map lookup — depth must not
  // show. 8x absorbs scheduler noise while still failing an O(depth) bug
  // (the uncached walk is one keccak per layer, far beyond 8x a probe).
  if (r.warm_us_per_lookup > 8.0 * r.flat_warm_us_per_lookup) {
    std::fprintf(stderr,
                 "memo O(1) violated: warm deep %.3f us vs flat %.3f us\n",
                 r.warm_us_per_lookup, r.flat_warm_us_per_lookup);
    std::exit(1);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_parallel_validation.json";
  const std::size_t hardware_threads =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::printf("building workload: %zu proofs at depth %zu (%u shards)...\n",
              kMessages, kDepth, kShards);
  const Workload wl;

  std::printf("hardware threads: %zu\n", hardware_threads);
  const double baseline = run_config(wl, ParallelismConfig{});
  std::printf("deterministic baseline: %10.0f msgs/s\n", baseline);

  struct Point {
    std::size_t workers;
    double msgs_per_sec;
    double speedup;
    double efficiency;
  };
  std::vector<Point> points;
  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ParallelismConfig pcfg;
    pcfg.deterministic = false;
    pcfg.workers = workers;
    const double rate = run_config(wl, pcfg);
    Point p;
    p.workers = workers;
    p.msgs_per_sec = rate;
    p.speedup = rate / baseline;
    p.efficiency =
        p.speedup /
        static_cast<double>(std::min(workers, hardware_threads));
    std::printf("workers %zu: %10.0f msgs/s  speedup %.2fx  efficiency %.2f\n",
                workers, rate, p.speedup, p.efficiency);
    points.push_back(p);
  }

  std::printf("shard-map memo micro-bench...\n");
  const MemoResult memo = run_memo_bench();
  std::printf(
      "memo: %zu splits  cold %.3f us  warm %.3f us  (flat warm %.3f us)\n",
      memo.splits, memo.cold_us_per_lookup, memo.warm_us_per_lookup,
      memo.flat_warm_us_per_lookup);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", hardware_threads);
  std::fprintf(f, "  \"baseline_msgs_per_sec\": %.1f,\n", baseline);
  std::fprintf(f, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "    {\"workers\": %zu, \"msgs_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"parallel_efficiency\": %.3f}%s\n",
                 points[i].workers, points[i].msgs_per_sec, points[i].speedup,
                 points[i].efficiency, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"shard_map_memo\": {\"splits\": %zu, "
               "\"cold_us_per_lookup\": %.3f, \"warm_us_per_lookup\": %.3f, "
               "\"flat_warm_us_per_lookup\": %.3f, \"memo_speedup\": %.3f, "
               "\"hits\": %llu, \"misses\": %llu}\n",
               memo.splits, memo.cold_us_per_lookup, memo.warm_us_per_lookup,
               memo.flat_warm_us_per_lookup,
               memo.cold_us_per_lookup /
                   std::max(memo.warm_us_per_lookup, 1e-9),
               static_cast<unsigned long long>(memo.hits),
               static_cast<unsigned long long>(memo.misses));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
