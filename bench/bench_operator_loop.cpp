// Autonomous operator loop under a synthetic hotspot: every node starts
// on ONE shard, honest traffic overloads it, and the in-node operator
// loops (observe -> decide -> act, no external driver) must trip on
// ShardLoadTracker::recommend(), begin the split, and walk the staged
// cutover to completion — measured by the campaign runner the ISSUE 8
// acceptance demo is judged on (sim::run_operator_hotspot_campaign):
//
//   * trigger latency — first operator begin_reshard decision (epochs);
//   * convergence — epochs until every node sits stable on the target
//     layout, and the per-node decision count (begin + 3 advances);
//   * the containment verdict riding along: 100% honest delivery through
//     the autonomous cutover, zero quota doubling, attacker slashed;
//   * the fleet-health timeline + node-0 postmortem embedded in the JSON
//     so CI archives the full black box of the run.
//
// Standalone binary emitting machine-readable JSON (argv[1], default
// BENCH_operator_loop.json); honors WAKU_BENCH_SMOKE / --smoke (12-node
// fleet with a proportionally lower overload budget).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace waku;  // NOLINT
using benchutil::smoke_mode;

sim::OperatorHotspotConfig campaign_config(bool smoke) {
  sim::OperatorHotspotConfig cfg;
  cfg.harness.num_nodes = smoke ? 12 : 24;
  cfg.harness.degree = 5;
  cfg.harness.block_interval_ms = 4'000;
  cfg.harness.node.tree_depth = 10;
  cfg.harness.node.validator.epoch.epoch_length_ms = 5'000;
  cfg.harness.node.gossip.validation_batch_max = 8;
  cfg.harness.node.shards.num_shards = 1;
  cfg.harness.seed = 0x0F5E;
  cfg.target_shards = 2;
  cfg.max_epochs = 30;
  cfg.flood_pairs_per_epoch = 2;
  // The hot shard realizes ~0.58 msgs/epoch per honest node; the budget
  // must sit inside (rate/2, rate) so recommend() asks for exactly a
  // 2-way split. Half the fleet realizes half the rate.
  cfg.overload_msgs_per_sec = smoke ? 0.9 : 1.8;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_operator_loop.json";
  const bool smoke = (argc > 2 && std::strcmp(argv[2], "--smoke") == 0) ||
                     smoke_mode();

  const sim::OperatorHotspotConfig cfg = campaign_config(smoke);
  std::printf(
      "operator hotspot campaign: %zu nodes, %u -> %u shards, budget %.2f "
      "msgs/s, flooder %llu pairs/epoch, horizon %llu epochs...\n",
      cfg.harness.num_nodes, cfg.harness.node.shards.num_shards,
      cfg.target_shards, cfg.overload_msgs_per_sec,
      static_cast<unsigned long long>(cfg.flood_pairs_per_epoch),
      static_cast<unsigned long long>(cfg.max_epochs));

  const sim::OperatorHotspotOutcome out =
      sim::run_operator_hotspot_campaign(cfg);

  std::printf(
      "operator: triggered %s (epoch %llu), converged %s (epoch %llu, "
      "%llu epochs), %llu decisions across the fleet\n"
      "containment: delivery %.4f, quota doubles %llu, attacker slashed %s "
      "(%s ms), anomalies fired %llu\n",
      out.operator_triggered ? "yes" : "NO",
      static_cast<unsigned long long>(out.trigger_epoch),
      out.converged ? "yes" : "NO",
      static_cast<unsigned long long>(out.converged_epoch),
      static_cast<unsigned long long>(out.epochs_to_converge),
      static_cast<unsigned long long>(out.operator_decisions),
      out.honest_delivery,
      static_cast<unsigned long long>(out.quota_double_deliveries),
      out.attacker_slashed ? "yes" : "NO",
      out.time_to_slash_ms.has_value()
          ? std::to_string(*out.time_to_slash_ms).c_str()
          : "-",
      static_cast<unsigned long long>(out.anomalies_fired));

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n\"smoke\": %s,\n\"config\": ", smoke ? "true" : "false");
  const std::string cfg_json = cfg.to_json();
  std::fwrite(cfg_json.data(), 1, cfg_json.size(), f);
  std::fprintf(f, ",\n\"campaign\": ");
  const std::string json = out.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // CI tripwire: an operator that never trips, never converges, loses
  // honest traffic, or doubles quota during its own cutover is a broken
  // control loop, not a slow one.
  if (!out.operator_triggered || !out.converged ||
      out.to_shards != cfg.target_shards || out.honest_delivery < 0.99 ||
      out.quota_double_deliveries != 0 ||
      (cfg.flood_pairs_per_epoch > 0 && !out.attacker_slashed)) {
    std::fprintf(stderr, "operator hotspot verdict FAILED\n");
    return 1;
  }
  return 0;
}
