// E10 — Slashing economics and the commit-reveal race (paper §III-F).
//
// Part 1: end-to-end slashing timeline — spam emission, first detection at
// a routing peer, commit mined, reveal mined, deposit paid. The two-block
// latency of commit-reveal is the price of front-running protection (also
// related to the §IV-A registration-delay discussion).
//
// Part 2: the race itself — a mempool observer ("thief") copies slashing
// transactions and outbids them. With slash_direct the thief steals the
// reward; with commit-reveal the copied reveal is useless because the
// commitment binds the slasher's address.
#include <cstdio>
#include <string>

#include "common/serde.hpp"
#include "hash/poseidon.hpp"
#include "rln/harness.hpp"

using namespace waku;         // NOLINT
using namespace waku::chain;  // NOLINT

namespace {

void timeline() {
  rln::HarnessConfig cfg;
  cfg.num_nodes = 15;
  cfg.degree = 5;
  cfg.block_interval_ms = 12'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 60'000;
  rln::RlnHarness h(cfg);
  h.register_all();
  h.run_ms(5'000);

  const net::TimeMs t0 = h.sim().now();
  h.node(0).force_publish(to_bytes("spam a"));
  h.node(0).force_publish(to_bytes("spam b"));

  // Find the moment of first detection and of the on-chain milestones.
  net::TimeMs detected_at = 0;
  net::TimeMs committed_at = 0;
  net::TimeMs slashed_at = 0;
  while (h.sim().now() - t0 < 10 * cfg.block_interval_ms) {
    h.run_ms(200);
    if (detected_at == 0) {
      for (std::size_t i = 1; i < h.size(); ++i) {
        if (h.node(i).validator().stats().spam_detected > 0) {
          detected_at = h.sim().now();
          break;
        }
      }
    }
    auto& contract = h.chain().contract_at<RlnMembershipContract>(h.contract());
    // The spammer is node 0; with sequential registration its member slot
    // may be any index, so detect the slash via removed_count instead.
    if (slashed_at == 0 && h.node(1).group().removed_count() > 0) {
      slashed_at = h.sim().now();
    }
    (void)contract;
    if (committed_at == 0) {
      std::uint64_t commits = 0;
      for (std::size_t i = 1; i < h.size(); ++i) {
        commits += h.node(i).stats().slash_reveals;  // reveal sent => commit mined
      }
      if (commits > 0) committed_at = h.sim().now();
    }
    if (slashed_at != 0) break;
  }

  std::printf("(1) slashing timeline (block interval %llu ms)\n",
              static_cast<unsigned long long>(cfg.block_interval_ms));
  std::printf("    %-34s %8s\n", "milestone", "t (ms)");
  std::printf("    %-34s %8d\n", "double-signal emitted", 0);
  std::printf("    %-34s %8lld\n", "spam detected at a routing peer",
              static_cast<long long>(detected_at - t0));
  std::printf("    %-34s %8lld\n", "commit mined (reveal submitted)",
              static_cast<long long>(committed_at - t0));
  std::printf("    %-34s %8lld\n", "reveal mined, deposit paid out",
              static_cast<long long>(slashed_at - t0));

  std::uint64_t winners = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    winners += h.node(i).stats().slash_rewards;
  }
  std::printf("    reward winners: %llu (exactly one, despite %zu detectors)\n",
              static_cast<unsigned long long>(winners), h.size() - 1);
}

void race() {
  std::printf("\n(2) reward front-running race (thief outbids 10x on gas)\n");
  std::printf("    %-24s %16s %16s\n", "scheme", "honest paid", "thief paid");

  for (const bool use_commit_reveal : {false, true}) {
    Blockchain chain;
    constexpr Gwei kDeposit = 10'000'000;
    const Address contract =
        chain.deploy(std::make_unique<RlnMembershipContract>(kDeposit));
    const Address honest = Address::from_u64(0xAAAA);
    const Address thief = Address::from_u64(0xBBBB);
    chain.create_account(honest, 10 * kGweiPerEth);
    chain.create_account(thief, 10 * kGweiPerEth);

    // A spammer is registered; the honest peer knows its recovered sk.
    Rng rng(0xE10);
    const ff::Fr spammer_sk = ff::Fr::random(rng);
    {
      Transaction reg;
      reg.from = honest;
      reg.to = contract;
      reg.method = "register";
      reg.calldata = hash::poseidon1(spammer_sk).to_bytes_be();
      reg.value = kDeposit;
      chain.submit(std::move(reg));
      chain.mine_block(0);
    }

    const Gwei honest_before = chain.balance(honest);
    const Gwei thief_before = chain.balance(thief);

    if (!use_commit_reveal) {
      // Honest peer broadcasts slash_direct; the thief copies the calldata
      // from the mempool and outbids.
      ByteWriter w;
      w.write_raw(spammer_sk.to_bytes_be());
      w.write_u64(0);
      Transaction slash;
      slash.from = honest;
      slash.to = contract;
      slash.method = "slash_direct";
      slash.calldata = w.data();
      slash.gas_price = 50;

      Transaction stolen = slash;  // the mempool copy
      stolen.from = thief;
      stolen.gas_price = 500;  // front-run

      chain.submit(std::move(slash));
      chain.submit(std::move(stolen));
      chain.mine_block(12'000);
    } else {
      // Commit-reveal: the commitment binds (sk, salt, slasher address).
      const ff::U256 salt{42};
      Transaction commit;
      commit.from = honest;
      commit.to = contract;
      commit.method = "commit_slash";
      commit.calldata = ff::u256_to_bytes_be(
          RlnMembershipContract::make_slash_commitment(spammer_sk, salt,
                                                       honest));
      chain.submit(std::move(commit));
      chain.mine_block(12'000);

      ByteWriter w;
      w.write_raw(spammer_sk.to_bytes_be());
      w.write_raw(ff::u256_to_bytes_be(salt));
      w.write_u64(0);
      Transaction reveal;
      reveal.from = honest;
      reveal.to = contract;
      reveal.method = "reveal_slash";
      reveal.calldata = w.data();
      reveal.gas_price = 50;

      Transaction stolen = reveal;  // copied verbatim from the mempool
      stolen.from = thief;
      stolen.gas_price = 500;

      chain.submit(std::move(reveal));
      chain.submit(std::move(stolen));
      chain.mine_block(24'000);
    }

    const auto delta = [](Gwei before, Gwei after) {
      return after >= before
                 ? "+" + std::to_string((after - before) / 1000) + "k gwei"
                 : "-" + std::to_string((before - after) / 1000) + "k gwei";
    };
    std::printf("    %-24s %16s %16s\n",
                use_commit_reveal ? "commit-reveal" : "slash_direct",
                delta(honest_before, chain.balance(honest)).c_str(),
                delta(thief_before, chain.balance(thief)).c_str());
  }
  std::printf(
      "\nShape check: with slash_direct the outbidding thief takes the\n"
      "deposit and the honest slasher only burns gas; with commit-reveal\n"
      "the thief's copied reveal reverts (commitment binds the slasher\n"
      "address) and the honest peer collects the reward — the §III-F race\n"
      "and its fix.\n");
}

}  // namespace

int main() {
  std::printf("E10: slashing pipeline and the reward race (§III-F)\n\n");
  timeline();
  race();
  return 0;
}
