// E2 — RLN proof verification time.
//
// Paper §IV: "Proof verification run time is constant and takes ~30 ms".
// The reproduction target is the SHAPE: verification time must be flat in
// both tree depth and group population (it only touches the 5 public
// inputs and the constant-size proof), unlike proof generation.
#include <benchmark/benchmark.h>

#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "rln/identity.hpp"
#include "zksnark/rln_circuit.hpp"

namespace {

using namespace waku;  // NOLINT

struct VerifySetup {
  std::vector<ff::Fr> public_inputs;
  zksnark::Proof proof;

  explicit VerifySetup(std::size_t depth, std::uint64_t members) {
    Rng rng(0xE2);
    const rln::Identity id = rln::Identity::generate(rng);
    merkle::IncrementalMerkleTree tree(depth);
    const std::uint64_t index = tree.insert(id.pk);
    for (std::uint64_t i = 1; i < members; ++i) {
      tree.insert(hash::poseidon1(ff::Fr::from_u64(i)));
    }
    zksnark::RlnProverInput input;
    input.sk = id.sk;
    input.path = tree.auth_path(index);
    input.x = ff::Fr::from_u64(42);
    input.epoch = ff::Fr::from_u64(54'827'003);
    zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
    public_inputs = c.publics.to_vector();
    proof = zksnark::prove(zksnark::rln_keypair(depth).pk, c.builder.cs(),
                           c.builder.assignment(), rng);
  }
};

// Verification vs tree depth: must be flat.
void BM_RlnProofVerification_Depth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const VerifySetup setup(depth, 8);
  const zksnark::VerifyingKey& vk = zksnark::rln_keypair(depth).vk;
  for (auto _ : state) {
    const bool ok = zksnark::verify(vk, setup.public_inputs, setup.proof);
    benchmark::DoNotOptimize(ok);
  }
}

BENCHMARK(BM_RlnProofVerification_Depth)
    ->Arg(10)
    ->Arg(14)
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

// Verification vs group population at fixed depth: must also be flat.
void BM_RlnProofVerification_Members(benchmark::State& state) {
  const auto members = static_cast<std::uint64_t>(state.range(0));
  const VerifySetup setup(16, members);
  const zksnark::VerifyingKey& vk = zksnark::rln_keypair(16).vk;
  for (auto _ : state) {
    const bool ok = zksnark::verify(vk, setup.public_inputs, setup.proof);
    benchmark::DoNotOptimize(ok);
  }
}

BENCHMARK(BM_RlnProofVerification_Members)
    ->Arg(8)
    ->Arg(256)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

// Rejecting garbage must cost the same as accepting (no early-out oracle).
void BM_RlnProofVerification_Garbage(benchmark::State& state) {
  VerifySetup setup(16, 8);
  setup.proof.binding[0] ^= 1;
  const zksnark::VerifyingKey& vk = zksnark::rln_keypair(16).vk;
  for (auto _ : state) {
    const bool ok = zksnark::verify(vk, setup.public_inputs, setup.proof);
    benchmark::DoNotOptimize(ok);
  }
}

BENCHMARK(BM_RlnProofVerification_Garbage)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
