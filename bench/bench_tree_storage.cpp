// E4 — Per-peer membership-tree storage: full replica vs partial view.
//
// Paper §IV: "Storage of a membership tree with depth 20 takes up 67 MB
// from each peer (this can be optimized to 0.128 KB using the proposal of
// [18])". This harness measures bytes held by a full IncrementalMerkleTree
// replica vs the O(log N) PartialMerkleView, for growing populations at
// depth 20, and checks the views stay root-consistent while only the full
// replica's footprint grows.
#include <cstdio>

#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "merkle/partial_view.hpp"

using namespace waku;  // NOLINT
using merkle::IncrementalMerkleTree;
using merkle::PartialMerkleView;

namespace {

const char* human(std::size_t bytes, char* buf) {
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, 32, "%.1f MB", static_cast<double>(bytes) / 1048576.0);
  } else if (bytes >= 1024) {
    std::snprintf(buf, 32, "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, 32, "%zu B", bytes);
  }
  return buf;
}

}  // namespace

int main() {
  constexpr std::size_t kDepth = 20;
  std::printf("E4: membership-tree storage per peer, depth %zu\n", kDepth);
  std::printf("(paper: 67 MB full tree at depth 20 vs 0.128 KB with [18])\n\n");
  std::printf("%-10s %16s %16s %10s\n", "members", "full replica",
              "partial view", "ratio");

  IncrementalMerkleTree tree(kDepth);
  tree.insert(hash::poseidon1(ff::Fr::from_u64(0)));
  PartialMerkleView view = PartialMerkleView::from_tree(tree, 0);

  std::uint64_t next = 1;
  char b1[32], b2[32];
  // Measured up to 2^14 members (larger populations extrapolated below:
  // the full replica is exactly linear at ~64 B/member).
  for (const std::uint64_t target :
       {std::uint64_t{1} << 10, std::uint64_t{1} << 12,
        std::uint64_t{1} << 14}) {
    while (next < target) {
      const ff::Fr leaf = hash::poseidon1(ff::Fr::from_u64(next));
      tree.insert(leaf);
      view.on_insert(leaf);
      ++next;
    }
    if (view.root() != tree.root()) {
      std::printf("ERROR: partial view diverged at %llu members\n",
                  static_cast<unsigned long long>(target));
      return 1;
    }
    const std::size_t full = tree.storage_bytes();
    const std::size_t partial = view.storage_bytes();
    std::printf("%-10llu %16s %16s %9.0fx\n",
                static_cast<unsigned long long>(target), human(full, b1),
                human(partial, b2),
                static_cast<double>(full) / static_cast<double>(partial));
  }

  // Extrapolate the linear full replica to larger populations.
  const double bytes_per_member =
      static_cast<double>(tree.storage_bytes()) / static_cast<double>(next);
  for (const double members : {1 << 16, 1 << 18, 1 << 20}) {
    std::snprintf(b1, sizeof b1, "%.1f MB",
                  members * bytes_per_member / 1048576.0);
    std::snprintf(b2, sizeof b2, "%zu B", view.storage_bytes());
    std::printf("%-10.0f %16s %16s %9.0fx   (extrapolated)\n", members, b1, b2,
                members * bytes_per_member /
                    static_cast<double>(view.storage_bytes()));
  }

  std::printf(
      "\nFull capacity (2^%zu members) costs %.0f MB of nodes — the paper's\n"
      "67 MB figure counts the full static tree; the partial view stays\n"
      "constant at ~%zu bytes = O(log N) [18] (paper quotes 0.128 KB for\n"
      "the minimal variant storing only the frontier).\n",
      kDepth,
      (static_cast<double>(std::uint64_t{2} << kDepth) - 1) * 32.0 / 1048576.0,
      view.storage_bytes());
  return 0;
}
