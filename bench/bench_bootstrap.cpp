// Cold replay vs checkpoint bootstrap (the durable-state subsystem's E-
// class measurement): how long a joining peer takes to become able to
// validate, and how many bytes it must obtain first.
//
//   cold_replay          process every MemberRegistered event from genesis
//                        through a full GroupManager (what a peer without
//                        checkpoints must do);
//   snapshot_restore     deserialize a full node's durable snapshot of the
//                        same state (restart path, still O(N) bytes but no
//                        re-hashing);
//   checkpoint_bootstrap verify + adopt the O(log N) signed checkpoint a
//                        full peer serves (light-client join path).
//
// Standalone binary emitting machine-readable JSON (argv[1], default
// BENCH_bootstrap.json): one record per (members, mode) with wall time and
// transferred/restored bytes, plus a speedup line per member count.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chain/types.hpp"
#include "rln/checkpoint.hpp"
#include "rln/group_manager.hpp"

namespace {

using namespace waku;       // NOLINT
using namespace waku::rln;  // NOLINT
using benchutil::smoke_mode;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kDepth = 20;
constexpr int kRepetitions = 3;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Record {
  std::size_t members;
  const char* mode;
  double ms;
  std::size_t bytes;  // state a joining peer must obtain for this mode
};

std::vector<chain::Event> registration_events(std::size_t members,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<chain::Event> events;
  events.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    chain::Event ev;
    ev.name = "MemberRegistered";
    ev.topics = {ff::U256{i}, ff::Fr::random(rng).to_u256()};
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_bootstrap.json";
  std::vector<Record> records;
  std::vector<std::string> summary_lines;

  const std::vector<std::size_t> member_counts =
      smoke_mode() ? std::vector<std::size_t>{200}
                   : std::vector<std::size_t>{1'000, 10'000};
  for (const std::size_t members : member_counts) {
    std::printf("== %zu members (depth %zu)\n", members, kDepth);
    const std::vector<chain::Event> events =
        registration_events(members, 0xB007 + members);
    std::size_t event_stream_bytes = 0;
    for (const chain::Event& ev : events) {
      event_stream_bytes += chain::serialize_event(ev).size();
    }

    // Reference state: a full peer that followed the stream live.
    GroupManager full(kDepth, TreeMode::kFullTree);
    for (const chain::Event& ev : events) full.on_event(ev);

    // -- cold replay --------------------------------------------------------
    double cold_ms = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto start = Clock::now();
      GroupManager joiner(kDepth, TreeMode::kFullTree);
      for (const chain::Event& ev : events) joiner.on_event(ev);
      cold_ms += ms_since(start);
      if (joiner.root() != full.root()) {
        std::fprintf(stderr, "cold replay diverged\n");
        return 1;
      }
    }
    cold_ms /= kRepetitions;
    records.push_back({members, "cold_replay", cold_ms, event_stream_bytes});

    // -- snapshot restore ---------------------------------------------------
    const Bytes snapshot = full.serialize();
    double restore_ms = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto start = Clock::now();
      GroupManager restored(kDepth, TreeMode::kFullTree);
      restored.restore(snapshot);
      restore_ms += ms_since(start);
      if (restored.root() != full.root()) {
        std::fprintf(stderr, "snapshot restore diverged\n");
        return 1;
      }
    }
    restore_ms /= kRepetitions;
    records.push_back(
        {members, "snapshot_restore", restore_ms, snapshot.size()});

    // -- checkpoint bootstrap -----------------------------------------------
    Checkpoint checkpoint = make_group_checkpoint(
        full, events.size(), {shard::ShardWatermark{0, 0}});
    const hash::schnorr::KeyPair key =
        hash::schnorr::keygen_from_seed(0xB007);
    checkpoint.sign(key);
    const Bytes wire = checkpoint.serialize();
    double checkpoint_ms = 0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const auto start = Clock::now();
      const Checkpoint received = Checkpoint::deserialize(wire);
      if (!received.verify(key.pk)) {
        std::fprintf(stderr, "checkpoint verify failed\n");
        return 1;
      }
      GroupManager light =
          GroupManager::from_checkpoint(received.group_checkpoint());
      checkpoint_ms += ms_since(start);
      if (light.root() != full.root()) {
        std::fprintf(stderr, "checkpoint bootstrap diverged\n");
        return 1;
      }
    }
    checkpoint_ms /= kRepetitions;
    records.push_back(
        {members, "checkpoint_bootstrap", checkpoint_ms, wire.size()});

    const double speedup = cold_ms / checkpoint_ms;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "  {\"members\": %zu, \"checkpoint_speedup_vs_cold\": "
                  "%.1f, \"full_tree_storage_bytes\": %zu}",
                  members, speedup, full.storage_bytes());
    summary_lines.push_back(line);
    std::printf(
        "cold %9.2f ms (%8zu B)  snapshot %7.2f ms (%8zu B)  "
        "checkpoint %6.3f ms (%5zu B)  speedup %.0fx\n",
        cold_ms, event_stream_bytes, restore_ms, snapshot.size(),
        checkpoint_ms, wire.size(), speedup);
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n\"records\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::fprintf(f,
                 "  {\"members\": %zu, \"mode\": \"%s\", \"ms\": %.3f, "
                 "\"bytes\": %zu}%s\n",
                 records[i].members, records[i].mode, records[i].ms,
                 records[i].bytes, i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"summary\": [\n");
  for (std::size_t i = 0; i < summary_lines.size(); ++i) {
    std::fprintf(f, "%s%s\n", summary_lines[i].c_str(),
                 i + 1 < summary_lines.size() ? "," : "");
  }
  std::fprintf(f, "]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
