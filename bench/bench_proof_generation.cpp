// E1 — RLN proof generation time vs identity-tree depth.
//
// Paper §IV: "Generating membership proof to a group size of 2^32 (tree
// depth 32) takes ~0.5 s on an iPhone 8". Absolute numbers differ (our
// backend is the simulated Groth16 on a workstation; see DESIGN.md), but
// the SHAPE must hold: prover cost grows roughly linearly with tree depth
// (the circuit adds one Poseidon permutation + path constraints per level)
// and is otherwise independent of the actual group population.
#include <benchmark/benchmark.h>

#include <cmath>

#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "rln/identity.hpp"
#include "zksnark/rln_circuit.hpp"

namespace {

using namespace waku;            // NOLINT
using zksnark::rln_keypair;

struct ProverSetup {
  rln::Identity id;
  merkle::MerklePath path;

  explicit ProverSetup(std::size_t depth) {
    Rng rng(0xE1);
    id = rln::Identity::generate(rng);
    merkle::IncrementalMerkleTree tree(depth);
    tree.insert(hash::poseidon1(ff::Fr::from_u64(1)));
    const std::uint64_t index = tree.insert(id.pk);
    tree.insert(hash::poseidon1(ff::Fr::from_u64(2)));
    path = tree.auth_path(index);
  }
};

void BM_RlnProofGeneration(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const ProverSetup setup(depth);
  const zksnark::Keypair& kp = rln_keypair(depth);  // ceremony, not timed
  Rng rng(0xE1F);

  std::uint64_t x_counter = 0;
  for (auto _ : state) {
    zksnark::RlnProverInput input;
    input.sk = setup.id.sk;
    input.path = setup.path;
    input.x = ff::Fr::from_u64(1000 + x_counter++);  // fresh message hash
    input.epoch = ff::Fr::from_u64(54'827'003);
    zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
    zksnark::Proof proof =
        zksnark::prove(kp.pk, c.builder.cs(), c.builder.assignment(), rng);
    benchmark::DoNotOptimize(proof);
  }
  state.counters["constraints"] = static_cast<double>(kp.pk.num_constraints);
  state.counters["group_capacity"] = std::pow(2.0, static_cast<double>(depth));
}

// Depth 32 corresponds to the paper's 2^32-member group.
BENCHMARK(BM_RlnProofGeneration)
    ->Arg(10)
    ->Arg(14)
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Witness generation alone (circuit building), the Merkle/Poseidon part.
void BM_RlnWitnessGeneration(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const ProverSetup setup(depth);
  for (auto _ : state) {
    zksnark::RlnProverInput input;
    input.sk = setup.id.sk;
    input.path = setup.path;
    input.x = ff::Fr::from_u64(7);
    input.epoch = ff::Fr::from_u64(99);
    zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
    benchmark::DoNotOptimize(c.publics.root);
  }
}

BENCHMARK(BM_RlnWitnessGeneration)
    ->Arg(10)
    ->Arg(20)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
