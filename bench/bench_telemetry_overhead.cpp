// Telemetry overhead on the validation hot path.
//
// Drives identical batch-validation workloads through a ShardedValidator
// in three configurations and compares msgs/sec:
//
//   off      no clock wired — the telemetry-disabled production shape
//            (every stage timer is a null-pointer test, zero clock reads);
//   on       stage/window histograms + executor clock wired (the
//            ObsConfig::enabled default on a real deployment);
//   tracing  telemetry on PLUS 1-in-16 message-lifecycle span sampling,
//            including the per-message content-key hash the node pays to
//            make the sampling decision.
//   recorder telemetry on PLUS the fleet-observability plane: one flight
//            event recorded and one NodeHealthSample folded through a
//            FleetAggregator per validated window — a deliberate upper
//            bound on the node's real cadence (once per EPOCH, hundreds
//            of windows apart).
//
// The configs alternate within each repetition (so drift hits them
// equally). Each overhead fraction is the cleanest PAIRED comparison
// observed: per repetition the lane's rate is divided by the SAME
// repetition's off rate (the passes run back-to-back), and the minimum
// 1 - lane/off across repetitions is reported. A ratio of
// best-rates-across-all-reps is one sustained-load window away from a
// false positive — if background load suppresses every pass of one lane
// while the off lane lands a single clean pass, the ratio inflates past
// the cap with no real regression; the paired minimum only needs ONE
// quiet repetition, and a true per-message cost shows up in every pair.
// The regression-gated metrics are the overhead fractions 1 - on/off,
// 1 - tracing/off, and 1 - recorder/off, hard-capped at 3% by
// scripts/check_bench_regression.py — ISSUE 7/8's acceptance bound.
//
// Standalone binary: emits BENCH_telemetry_overhead.json (or argv[1]).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/clock.hpp"
#include "obs/fleet.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rln/rate_limit_proof.hpp"
#include "shard/sharded_validator.hpp"
#include "waku/message.hpp"
#include "zksnark/rln_circuit.hpp"

namespace {

using namespace waku;       // NOLINT
using namespace waku::rln;  // NOLINT
using benchutil::smoke_mode;

constexpr std::size_t kDepth = 16;
constexpr std::uint16_t kShards = 4;
constexpr std::size_t kWindow = 16;
constexpr std::uint32_t kSampleEvery = 16;
// Smoke passes are short (~2 ms), so the best-of needs more draws to
// squeeze scheduler jitter below the 3% cap; passes are cheap next to
// the proof-building workload setup, so extra repetitions cost little.
const std::size_t kMessages = smoke_mode() ? 32 : 96;
const int kRepetitions = smoke_mode() ? 12 : 5;

struct Workload {
  GroupManager group{kDepth, TreeMode::kFullTree};
  ValidatorConfig vcfg{.epoch = EpochConfig{.epoch_length_ms = 10'000},
                       .max_epoch_gap = 2};
  std::vector<WakuMessage> messages;
  std::uint64_t now_ms = 100 * 10'000 + 500;  // epoch 100

  Workload() {
    Rng rng(0x0B5E);
    const zksnark::Keypair& kp = zksnark::rln_keypair(kDepth);
    std::vector<Identity> members;
    for (std::size_t i = 0; i < kMessages; ++i) {
      members.push_back(Identity::generate(rng));
      chain::Event ev;
      ev.name = "MemberRegistered";
      ev.topics = {ff::U256{i}, members.back().pk.to_u256()};
      group.on_event(ev);
    }
    for (std::size_t i = 0; i < kMessages; ++i) {
      WakuMessage msg;
      msg.payload = to_bytes("telemetry payload " + std::to_string(i));
      zksnark::RlnProverInput input;
      input.sk = members[i].sk;
      input.path = group.path_of(i);
      input.x = message_hash(msg);
      input.epoch = ff::Fr::from_u64(100);
      zksnark::RlnCircuit c = zksnark::build_rln_circuit(input);
      RateLimitProof bundle;
      bundle.share_x = c.publics.x;
      bundle.share_y = c.publics.y;
      bundle.nullifier = c.publics.nullifier;
      bundle.epoch = 100;
      bundle.root = c.publics.root;
      bundle.proof = zksnark::prove(kp.pk, c.builder.cs(),
                                    c.builder.assignment(), rng);
      attach_proof(msg, bundle);
      messages.push_back(std::move(msg));
    }
  }
};

enum class Mode { kOff, kOn, kTracing, kRecorder };

/// One measured pass: fresh per-shard pipelines (empty logs, full accept
/// path), every shard's windows validated inline — the deterministic
/// executor shape, so the measurement isolates instrumentation cost from
/// scheduler jitter.
double run_pass(const Workload& wl, Mode mode, std::uint64_t seed,
                std::uint64_t* traces_sampled) {
  using WallClock = std::chrono::steady_clock;
  shard::ShardConfig scfg;
  scfg.num_shards = kShards;
  shard::ShardedValidator validator(zksnark::rln_keypair(kDepth).vk, wl.group,
                                    wl.vcfg, scfg, seed);

  // Telemetry wiring mirrors rln/node.cpp: one histogram bundle per
  // shard out of a lock-cheap registry, the executor clock alongside.
  obs::Telemetry registry;
  std::map<shard::ShardId, PipelineMetrics> metrics;
  if (mode != Mode::kOff) {
    validator.set_executor_clock(&obs::steady_clock());
    for (std::uint16_t s = 0; s < kShards; ++s) {
      PipelineMetrics& m = metrics[s];
      const std::string shard_label = "shard=\"" + std::to_string(s) + "\"";
      const auto stage = [&](const char* name) -> obs::Histogram* {
        return &registry.histogram("waku_pipeline_stage_seconds",
                                   "stage=\"" + std::string(name) + "\"," +
                                       shard_label);
      };
      m.epoch_gate = stage("epoch_gate");
      m.root_check = stage("root_check");
      m.nullifier_precheck = stage("nullifier_precheck");
      m.groth16_batch = stage("groth16_batch");
      m.groth16_fallback = stage("groth16_fallback");
      m.double_signal = stage("double_signal");
      m.window =
          &registry.histogram("waku_pipeline_validate_seconds", shard_label);
      validator.pipeline(s).set_telemetry(&obs::steady_clock(), &m);
    }
  }
  obs::TraceCollectorConfig tcfg;
  tcfg.sample_every = mode == Mode::kTracing ? kSampleEvery : 0;
  obs::TraceCollector tracer(tcfg);
  const bool tracing = tcfg.sample_every != 0;
  // The fleet-observability lane: one lifecycle event + one health
  // sample folded per window (the node pays this once per epoch).
  const bool recording = mode == Mode::kRecorder;
  obs::FlightRecorder recorder;
  obs::FleetAggregator fleet;
  std::uint64_t fleet_epoch = 0;

  std::atomic<std::uint64_t> accepted{0};
  const auto start = WallClock::now();
  for (std::uint16_t shard = 0; shard < kShards; ++shard) {
    for (std::size_t i = 0; i < wl.messages.size(); i += kWindow) {
      const std::size_t len = std::min(kWindow, wl.messages.size() - i);
      const std::span<const WakuMessage> window(wl.messages.data() + i, len);
      if (tracing) {
        // The node's per-message span cost (rln/node.cpp traced()): one
        // content-key hash + sampling check per message; only the
        // sampled 1-in-N read the clock and take the collector mutex.
        for (const WakuMessage& msg : window) {
          const obs::TraceKey key = trace_key(msg);
          if (!tracer.sampled(key)) continue;
          tracer.record(key, obs::steady_clock().now_ns(), "rx");
        }
      }
      validator.submit(
          shard, window, wl.now_ms,
          [&accepted](std::vector<ValidationOutcome> outcomes) {
            for (const auto& o : outcomes) {
              if (o.verdict == Verdict::kAccept) {
                accepted.fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
      if (tracing) {
        for (const WakuMessage& msg : window) {
          const obs::TraceKey key = trace_key(msg);
          if (!tracer.sampled(key)) continue;
          tracer.finish(key, obs::steady_clock().now_ns(), "deliver");
        }
      }
      if (recording) {
        // Mirrors the node's upkeep tick: record_health_snapshot +
        // self-fleet ingest/close + one flight event, here once per
        // window instead of once per epoch.
        recorder.record(obs::steady_clock().now_ns(), fleet_epoch,
                        "backpressure", "rejected_delta=0");
        obs::NodeHealthSample sample;
        sample.node_id = 0;
        sample.epoch = fleet_epoch;
        sample.accepted = accepted.load(std::memory_order_relaxed);
        sample.quota_saturation = 0.25;
        sample.shards.push_back(
            {shard, registry.histogram("waku_pipeline_validate_seconds",
                                       "shard=\"" + std::to_string(shard) +
                                           "\"")
                            .snapshot()
                            .p95 *
                        1e-6});
        fleet.ingest(sample);
        fleet.close_epoch(fleet_epoch);
        ++fleet_epoch;
      }
    }
  }
  validator.drain();
  const double seconds =
      std::chrono::duration<double>(WallClock::now() - start).count();

  const std::size_t expected = kShards * wl.messages.size();
  if (accepted.load() != expected) {
    std::fprintf(stderr, "bench invariant violated: %llu/%zu accepted\n",
                 static_cast<unsigned long long>(accepted.load()), expected);
    std::exit(1);
  }
  if (mode != Mode::kOff) {
    // The instrumentation must actually have recorded: a pass that
    // silently wired nothing would report a fake 0% overhead.
    const std::uint64_t windows =
        registry.histogram("waku_pipeline_validate_seconds", "shard=\"0\"")
            .count();
    if (windows == 0) {
      std::fprintf(stderr, "bench invariant violated: no windows recorded\n");
      std::exit(1);
    }
  }
  if (recording && recorder.recorded() == 0) {
    std::fprintf(stderr, "bench invariant violated: no flight events\n");
    std::exit(1);
  }
  if (tracing && traces_sampled != nullptr) {
    *traces_sampled += tracer.stats().sampled;
  }
  return static_cast<double>(expected) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_telemetry_overhead.json";

  std::printf("building workload: %zu proofs at depth %zu (%u shards)...\n",
              kMessages, kDepth, kShards);
  const Workload wl;

  double best_off = 0.0;
  double best_on = 0.0;
  double best_tracing = 0.0;
  double best_recorder = 0.0;
  double ratio_on = 0.0;
  double ratio_tracing = 0.0;
  double ratio_recorder = 0.0;
  std::uint64_t traces_sampled = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    const std::uint64_t seed = 0x7E1E + static_cast<std::uint64_t>(rep);
    const double off = run_pass(wl, Mode::kOff, seed, nullptr);
    const double on = run_pass(wl, Mode::kOn, seed, nullptr);
    const double tracing =
        run_pass(wl, Mode::kTracing, seed, &traces_sampled);
    const double recorder = run_pass(wl, Mode::kRecorder, seed, nullptr);
    best_off = std::max(best_off, off);
    best_on = std::max(best_on, on);
    best_tracing = std::max(best_tracing, tracing);
    best_recorder = std::max(best_recorder, recorder);
    // Paired within the repetition: these passes ran back-to-back, so
    // the ratio cancels whatever load the machine was under just then.
    ratio_on = std::max(ratio_on, on / off);
    ratio_tracing = std::max(ratio_tracing, tracing / off);
    ratio_recorder = std::max(ratio_recorder, recorder / off);
  }

  const auto overhead = [](double ratio) {
    return std::max(0.0, 1.0 - ratio);
  };
  const double overhead_on = overhead(ratio_on);
  const double overhead_tracing = overhead(ratio_tracing);
  const double overhead_recorder = overhead(ratio_recorder);
  std::printf("telemetry off:        %10.0f msgs/s\n", best_off);
  std::printf("telemetry on:         %10.0f msgs/s  (overhead %.2f%%)\n",
              best_on, 100.0 * overhead_on);
  std::printf("on + 1-in-%u tracing: %10.0f msgs/s  (overhead %.2f%%)\n",
              kSampleEvery, best_tracing, 100.0 * overhead_tracing);
  std::printf("on + flight/fleet:    %10.0f msgs/s  (overhead %.2f%%)\n",
              best_recorder, 100.0 * overhead_recorder);
  std::printf("traces sampled across tracing passes: %llu\n",
              static_cast<unsigned long long>(traces_sampled));

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"messages_per_pass\": %zu,\n", kShards * kMessages);
  std::fprintf(f, "  \"repetitions\": %d,\n", kRepetitions);
  std::fprintf(f, "  \"trace_sample_every\": %u,\n", kSampleEvery);
  std::fprintf(f, "  \"telemetry_off_msgs_per_sec\": %.1f,\n", best_off);
  std::fprintf(f, "  \"telemetry_on_msgs_per_sec\": %.1f,\n", best_on);
  std::fprintf(f, "  \"telemetry_tracing_msgs_per_sec\": %.1f,\n",
               best_tracing);
  std::fprintf(f, "  \"telemetry_recorder_msgs_per_sec\": %.1f,\n",
               best_recorder);
  std::fprintf(f, "  \"overhead_on_fraction\": %.4f,\n", overhead_on);
  std::fprintf(f, "  \"overhead_tracing_fraction\": %.4f,\n",
               overhead_tracing);
  std::fprintf(f, "  \"overhead_recorder_fraction\": %.4f,\n",
               overhead_recorder);
  std::fprintf(f, "  \"traces_sampled\": %llu\n",
               static_cast<unsigned long long>(traces_sampled));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
