// Live reshard cost: what a 4→8 generation cutover under sustained honest
// load actually costs, measured by the campaign runner the engine's
// containment claims are judged on (sim::run_live_reshard_campaign):
//
//   * cutover duration — begin_reshard() to every node past drop-old;
//   * messages in flight during the dual-subscribe overlap window;
//   * throughput dip — honest deliveries/sec during the cutover vs the
//     pre-reshard steady state (and the post-cutover recovery rate);
//   * the containment verdict riding along: honest delivery, zero
//     quota doubling through the overlap, attacker slashed.
//
// Standalone binary emitting machine-readable JSON (argv[1], default
// BENCH_reshard.json); honors WAKU_BENCH_SMOKE / --smoke (2→4 shards on a
// smaller fleet).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace waku;  // NOLINT
using benchutil::smoke_mode;

sim::LiveReshardConfig campaign_config(bool smoke) {
  sim::LiveReshardConfig cfg;
  cfg.harness.num_nodes = smoke ? 12 : 24;
  cfg.harness.degree = 4;
  cfg.harness.block_interval_ms = 4'000;
  cfg.harness.node.tree_depth = 10;
  cfg.harness.node.validator.epoch.epoch_length_ms = 10'000;
  cfg.harness.node.gossip.validation_batch_max = 8;
  cfg.harness.node.shards.num_shards = smoke ? 2 : 4;
  cfg.harness.seed = 0x2E54A2D;
  cfg.target_shards = smoke ? 4 : 8;
  cfg.warmup_ms = smoke ? 10'000 : 20'000;
  cfg.announce_ms = 4'000;
  cfg.overlap_ms = smoke ? 14'000 : 20'000;
  cfg.drain_phase_ms = smoke ? 6'000 : 10'000;
  cfg.settle_ms = smoke ? 10'000 : 20'000;
  cfg.quiesce_ms = 8'000;
  cfg.honest_rate_per_epoch = 0.8;
  cfg.flood_pairs_per_epoch = 2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_reshard.json";
  const bool smoke = (argc > 2 && std::strcmp(argv[2], "--smoke") == 0) ||
                     smoke_mode();

  const sim::LiveReshardConfig cfg = campaign_config(smoke);
  std::printf(
      "live reshard campaign: %zu nodes, %u -> %u shards, overlap %llu ms, "
      "flooder %llu pairs/epoch...\n",
      cfg.harness.num_nodes, cfg.harness.node.shards.num_shards,
      cfg.target_shards, static_cast<unsigned long long>(cfg.overlap_ms),
      static_cast<unsigned long long>(cfg.flood_pairs_per_epoch));

  const sim::LiveReshardOutcome out = sim::run_live_reshard_campaign(cfg);

  std::printf(
      "cutover: %llu ms, converged %s\n"
      "throughput: steady %.1f msgs/s, during cutover %.1f (dip %.1f%%), "
      "post %.1f\n"
      "overlap in-flight: %llu honest deliveries\n"
      "containment: delivery %.4f, quota doubles %llu, attacker slashed %s "
      "(%s ms)\n",
      static_cast<unsigned long long>(out.cutover_duration_ms),
      out.all_nodes_converged ? "yes" : "NO", out.steady_msgs_per_sec,
      out.cutover_msgs_per_sec, 100.0 * out.throughput_dip,
      out.post_msgs_per_sec,
      static_cast<unsigned long long>(out.overlap_messages_in_flight),
      out.honest_delivery,
      static_cast<unsigned long long>(out.quota_double_deliveries),
      out.attacker_slashed ? "yes" : "NO",
      out.time_to_slash_ms.has_value()
          ? std::to_string(*out.time_to_slash_ms).c_str()
          : "-");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n\"smoke\": %s,\n\"nodes\": %zu,\n\"campaign\": ",
               smoke ? "true" : "false", cfg.harness.num_nodes);
  const std::string json = out.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // The bench doubles as a regression tripwire in CI's smoke job: a
  // cutover that loses honest traffic, doubles quota, or fails to
  // converge is a broken engine, not a slow one.
  if (!out.all_nodes_converged || out.quota_double_deliveries != 0 ||
      out.honest_delivery < 0.99 ||
      (cfg.flood_pairs_per_epoch > 0 && !out.attacker_slashed)) {
    std::fprintf(stderr, "live reshard containment verdict FAILED\n");
    return 1;
  }
  return 0;
}
