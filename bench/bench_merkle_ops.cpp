// E5 — Merkle tree computation overhead (the benchmark paper §IV-A
// explicitly lists as future work: "Evaluating Merkle tree computation
// overhead ... the concrete benchmarking result in this regard is not
// available").
//
// Measures, across depths: insertion, arbitrary update (deletion), auth
// path extraction, path verification, and partial-view event processing.
#include <benchmark/benchmark.h>

#include "hash/poseidon.hpp"
#include "merkle/merkle_tree.hpp"
#include "merkle/partial_view.hpp"

namespace {

using namespace waku;  // NOLINT
using merkle::IncrementalMerkleTree;
using merkle::PartialMerkleView;

IncrementalMerkleTree populated_tree(std::size_t depth, std::uint64_t count) {
  IncrementalMerkleTree tree(depth);
  for (std::uint64_t i = 0; i < count; ++i) {
    tree.insert(hash::poseidon1(ff::Fr::from_u64(i)));
  }
  return tree;
}

void BM_MerkleInsert(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  IncrementalMerkleTree tree(depth);
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (tree.size() == tree.capacity()) {
      state.PauseTiming();
      tree = IncrementalMerkleTree(depth);
      state.ResumeTiming();
    }
    tree.insert(ff::Fr::from_u64(i++));
  }
}
BENCHMARK(BM_MerkleInsert)->Arg(10)->Arg(16)->Arg(20)->Arg(24)->Arg(32);

void BM_MerkleUpdateDelete(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  IncrementalMerkleTree tree = populated_tree(depth, 512);
  Rng rng(0xE5);
  for (auto _ : state) {
    // Deletion per the paper: write the zero leaf at a random position.
    tree.update(rng.next_below(512), ff::Fr::zero());
  }
}
BENCHMARK(BM_MerkleUpdateDelete)->Arg(10)->Arg(16)->Arg(20)->Arg(32);

void BM_MerkleAuthPath(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const IncrementalMerkleTree tree = populated_tree(depth, 512);
  Rng rng(0xE55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.auth_path(rng.next_below(512)));
  }
}
BENCHMARK(BM_MerkleAuthPath)->Arg(10)->Arg(20)->Arg(32);

void BM_MerkleVerifyPath(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const IncrementalMerkleTree tree = populated_tree(depth, 512);
  const merkle::MerklePath path = tree.auth_path(100);
  const ff::Fr leaf = tree.leaf(100);
  const ff::Fr root = tree.root();
  for (auto _ : state) {
    benchmark::DoNotOptimize(merkle::verify_path(root, leaf, path));
  }
}
BENCHMARK(BM_MerkleVerifyPath)->Arg(10)->Arg(20)->Arg(32);

void BM_PartialViewInsertEvent(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  IncrementalMerkleTree tree = populated_tree(depth, 4);
  PartialMerkleView view = PartialMerkleView::from_tree(tree, 1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    if (view.size() == (std::uint64_t{1} << depth)) {
      state.PauseTiming();
      tree = populated_tree(depth, 4);
      view = PartialMerkleView::from_tree(tree, 1);
      state.ResumeTiming();
    }
    view.on_insert(ff::Fr::from_u64(i++));
  }
}
BENCHMARK(BM_PartialViewInsertEvent)->Arg(10)->Arg(20)->Arg(32);

void BM_PartialViewUpdateEvent(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  IncrementalMerkleTree tree = populated_tree(depth, 256);
  PartialMerkleView view = PartialMerkleView::from_tree(tree, 1);
  Rng rng(0xE57);
  for (auto _ : state) {
    const std::uint64_t target = 2 + rng.next_below(254);
    const ff::Fr old_leaf = tree.leaf(target);
    const ff::Fr new_leaf = ff::Fr::random(rng);
    const merkle::MerklePath path = tree.auth_path(target);
    tree.update(target, new_leaf);
    view.on_update(target, old_leaf, new_leaf, path);
  }
}
BENCHMARK(BM_PartialViewUpdateEvent)->Arg(10)->Arg(20);

void BM_PoseidonHash2(benchmark::State& state) {
  const ff::Fr a = ff::Fr::from_u64(123);
  const ff::Fr b = ff::Fr::from_u64(456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::poseidon2(a, b));
  }
}
BENCHMARK(BM_PoseidonHash2);

}  // namespace

BENCHMARK_MAIN();
