// Adversarial campaigns at deployment scale: the scenario engine (src/sim)
// driving a 1k+-node WAKU-RLN-RELAY network through flooder, churner,
// split-equivocator, and invalid-proof attack phases, measuring spam
// containment ratio, time-to-slash, and honest delivery per strategy.
//
// Standalone binary emitting machine-readable JSON (argv[1], default
// BENCH_adversarial.json): one report per campaign (verdict + metrics
// registry) plus wall-clock per campaign. `--smoke` (argv[2] or
// WAKU_BENCH_SMOKE=1) shrinks the deployment so CI can exercise the full
// path in seconds.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace waku;       // NOLINT
using namespace waku::sim;  // NOLINT
using Clock = std::chrono::steady_clock;

struct CampaignResult {
  Report report;
  double wall_ms;
};

rln::HarnessConfig deployment(std::size_t nodes, std::uint64_t seed) {
  rln::HarnessConfig cfg;
  cfg.num_nodes = nodes;
  cfg.degree = 6;
  cfg.block_interval_ms = 5'000;
  // Depth sized to the membership (1024 nodes + churn headroom at full
  // scale); proof/verify cost scales with depth, as in the E-class
  // benches.
  cfg.node.tree_depth = nodes > 256 ? 11 : 8;
  cfg.node.validator.epoch.epoch_length_ms = 15'000;
  cfg.node.validator.max_epoch_gap = 2;
  // Batched validation: windows share one RLC-aggregated Groth16 check —
  // the configuration a deployment at this scale would run.
  cfg.node.gossip.validation_batch_max = 16;
  cfg.seed = seed;
  return cfg;
}

ScenarioConfig scenario_config(const char* name, std::size_t nodes,
                               std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.name = name;
  cfg.harness = deployment(nodes, seed);
  cfg.tick_ms = 1'000;
  cfg.honest_rate_per_epoch = 0.9;
  // Sampled honest senders: proof generation is the costly honest-side
  // operation; 16 publishers exercise delivery across the whole mesh
  // without proving thousands of messages per epoch.
  cfg.honest_publishers = 16;
  return cfg;
}

CampaignResult run_campaign(const char* name, std::size_t nodes,
                            std::uint64_t seed,
                            std::vector<Adversary*> adversaries) {
  std::printf("== campaign %-16s (%zu nodes, seed %llu, %zu adversaries)\n",
              name, nodes, static_cast<unsigned long long>(seed),
              adversaries.size());
  const auto start = Clock::now();
  Scenario scenario(scenario_config(name, nodes, seed));
  scenario.add_phase({"warmup", 10'000, true, {}})
      .add_phase({"attack", 30'000, true, std::move(adversaries)})
      .add_phase({"recovery", 10'000, true, {}});
  Report report = scenario.run();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             Clock::now() - start)
                             .count();
  const ScenarioVerdict& v = report.verdict;
  std::printf(
      "   spam %llu sent, containment %.3f | honest delivery %.4f | "
      "slashes %llu (adversary %llu) | time-to-slash %s | %.1f s wall\n",
      static_cast<unsigned long long>(v.spam_sent),
      v.spam_containment_ratio, v.honest_delivery_ratio,
      static_cast<unsigned long long>(v.slashes),
      static_cast<unsigned long long>(v.adversary_slashes),
      v.time_to_slash_ms.has_value()
          ? (std::to_string(*v.time_to_slash_ms) + " ms").c_str()
          : "n/a",
      wall_ms / 1000.0);
  for (const AdversaryVerdict& av : v.per_adversary) {
    std::printf("   · %-18s spam %llu, slashes %llu, time-to-slash %s\n",
                av.name.c_str(),
                static_cast<unsigned long long>(av.spam_sent),
                static_cast<unsigned long long>(av.slashes),
                av.time_to_slash_ms.has_value()
                    ? (std::to_string(*av.time_to_slash_ms) + " ms").c_str()
                    : "n/a");
  }
  return CampaignResult{std::move(report), wall_ms};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_adversarial.json";
  const bool smoke = (argc > 2 && std::strcmp(argv[2], "--smoke") == 0) ||
                     benchutil::smoke_mode();
  const std::size_t nodes = smoke ? 64 : 1024;
  std::printf("adversarial campaigns at %zu nodes%s\n\n", nodes,
              smoke ? " (smoke)" : "");

  std::vector<CampaignResult> results;
  {
    RateLimitFlooder flooder(/*slot=*/0, /*burst_per_epoch=*/6);
    results.push_back(run_campaign("flooder", nodes, 0xADF1, {&flooder}));
  }
  {
    DepositChurner churner({0, 1, 2}, /*burst=*/3);
    results.push_back(run_campaign("churner", nodes, 0xADC2, {&churner}));
  }
  {
    SplitEquivocator equivocator(/*slot=*/0);
    results.push_back(
        run_campaign("split-equivocator", nodes, 0xAD53, {&equivocator}));
  }
  {
    InvalidProofFlooder garbage(/*slot=*/0, /*per_tick=*/4);
    results.push_back(
        run_campaign("invalid-proof", nodes, 0xAD14, {&garbage}));
  }
  {
    // Adversary coalition: a rate-limit flooder and a stale-root replayer
    // attacking the SAME content topic concurrently. One campaign JSON,
    // per-adversary verdicts: the flooder must be slashed, the replayer
    // (no slashing material in a stale-root bundle) must merely die in
    // the O(1) root stage.
    RateLimitFlooder flooder(/*slot=*/0, /*burst_per_epoch=*/6);
    StaleRootReplayer replayer(/*slot=*/1, /*per_tick=*/4);
    results.push_back(
        run_campaign("coalition", nodes, 0xADC0, {&flooder, &replayer}));
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n\"nodes\": %zu,\n\"smoke\": %s,\n\"campaigns\": [\n",
               nodes, smoke ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "{\"wall_ms\": %.1f,\n\"report\": ",
                 results[i].wall_ms);
    const std::string json = results[i].report.to_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
