// E7 — Spam containment: WAKU-RLN-RELAY vs the baselines the paper
// positions itself against (§I, §IV):
//
//   none      unprotected gossipsub — spam floods the whole network;
//   scoring   libp2p peer scoring — contains a persistent spammer after a
//             few messages but is evaded by Sybil rotation ("inexpensive
//             attacks ... deploying millions of bots");
//   pow-d     Whisper-style proof of work — limits the attacker by CPU but
//             taxes every honest (resource-restricted) publisher the same;
//   rln       economic spam protection — spam dies at the first hop, costs
//             the attacker a deposit, honest cost is one proof (~ms).
//
// Output: one row per scheme — spam messages sent, spam deliveries per
// honest node, honest per-message CPU cost (hash evaluations), attacker
// cost, containment verdict.
#include <cstdio>
#include <memory>

#include "gossipsub/router.hpp"
#include "pow/pow.hpp"
#include "rln/harness.hpp"

using namespace waku;  // NOLINT

namespace {

constexpr std::size_t kNodes = 40;
constexpr std::size_t kDegree = 6;
constexpr int kSpamBurst = 30;
const char* kTopic = "bench-topic";

struct Row {
  const char* scheme;
  std::uint64_t spam_sent;
  double spam_deliveries_per_node;
  double honest_cpu_per_msg;  // hash evaluations
  const char* attacker_cost;
  const char* contained;
};

void print_row(const Row& r) {
  std::printf("%-12s %10llu %16.2f %16.0f %22s %10s\n", r.scheme,
              static_cast<unsigned long long>(r.spam_sent),
              r.spam_deliveries_per_node, r.honest_cpu_per_msg,
              r.attacker_cost, r.contained);
}

struct Swarm {
  net::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<gossipsub::GossipSubRouter>> routers;
  std::vector<std::uint64_t> delivered;

  Swarm()
      : net(sim, {.base_latency_ms = 40, .jitter_ms = 20, .loss_rate = 0},
            0xE7),
        delivered(kNodes, 0) {
    for (std::size_t i = 0; i < kNodes; ++i) {
      routers.push_back(std::make_unique<gossipsub::GossipSubRouter>(
          net, gossipsub::GossipSubConfig{}, gossipsub::PeerScoreConfig{},
          500 + i));
    }
    Rng rng(0xE77);
    net.connect_random(kDegree, rng);
    for (std::size_t i = 0; i < kNodes; ++i) {
      routers[i]->subscribe(kTopic, [this, i](const gossipsub::PubSubMessage&) {
        ++delivered[i];
      });
      routers[i]->start();
    }
    sim.run_until(5'000);
  }

  double spam_per_honest_node(std::uint64_t honest_baseline) const {
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < kNodes; ++i) total += delivered[i];
    const double spam =
        static_cast<double>(total) -
        static_cast<double>(honest_baseline) * (kNodes - 1);
    return spam / static_cast<double>(kNodes - 1);
  }
};

Row run_unprotected() {
  Swarm swarm;
  for (int i = 0; i < kSpamBurst; ++i) {
    swarm.routers[0]->publish(kTopic, to_bytes("spam " + std::to_string(i)));
    swarm.sim.run_until(swarm.sim.now() + 200);
  }
  swarm.sim.run_until(swarm.sim.now() + 20'000);
  return Row{"none", kSpamBurst, swarm.spam_per_honest_node(0), 0, "free",
             "no"};
}

Row run_scoring(bool sybil) {
  Swarm swarm;
  // The application layer flags spam; scoring punishes the sender peer.
  for (auto& r : swarm.routers) {
    r->set_validator(kTopic,
                     [](net::NodeId, const gossipsub::PubSubMessage& m) {
                       const std::string body = to_string(m.data);
                       return body.rfind("spam", 0) == 0
                                  ? gossipsub::ValidationResult::kReject
                                  : gossipsub::ValidationResult::kAccept;
                     });
  }
  if (!sybil) {
    for (int i = 0; i < kSpamBurst; ++i) {
      swarm.routers[0]->publish(kTopic, to_bytes("spam " + std::to_string(i)));
      swarm.sim.run_until(swarm.sim.now() + 200);
    }
  } else {
    // Rotate through fresh identities: 10 Sybils, 3 messages each.
    for (int i = 0; i < kSpamBurst; ++i) {
      const std::size_t sybil_id = static_cast<std::size_t>(i) % 10;
      swarm.routers[sybil_id]->publish(kTopic,
                                       to_bytes("spam " + std::to_string(i)));
      swarm.sim.run_until(swarm.sim.now() + 200);
    }
  }
  swarm.sim.run_until(swarm.sim.now() + 10'000);

  // Rejected-at counts: how much spam still landed on honest validators.
  std::uint64_t landed = 0;
  for (std::size_t i = 0; i < kNodes; ++i) {
    landed += swarm.routers[i]->stats().rejected;
  }
  Row row{sybil ? "scoring+syb" : "scoring", kSpamBurst,
          static_cast<double>(landed) / (kNodes - 1), 0, "free",
          sybil ? "no" : "partial"};
  return row;
}

Row run_pow(int difficulty) {
  Swarm swarm;
  for (auto& r : swarm.routers) {
    r->set_validator(
        kTopic, [difficulty](net::NodeId, const gossipsub::PubSubMessage& m) {
          // Last 8 bytes of the payload carry the nonce.
          if (m.data.size() < 8) return gossipsub::ValidationResult::kReject;
          const BytesView body(m.data.data(), m.data.size() - 8);
          std::uint64_t nonce = 0;
          for (int i = 0; i < 8; ++i) {
            nonce |= static_cast<std::uint64_t>(
                         m.data[m.data.size() - 8 + static_cast<std::size_t>(i)])
                     << (8 * i);
          }
          return pow::verify(body, nonce, difficulty)
                     ? gossipsub::ValidationResult::kAccept
                     : gossipsub::ValidationResult::kReject;
        });
  }

  // Attacker CPU budget: enough hashes for the burst at difficulty 12.
  const std::uint64_t budget =
      static_cast<std::uint64_t>(kSpamBurst) *
      static_cast<std::uint64_t>(pow::expected_attempts(12));
  std::uint64_t spent = 0;
  std::uint64_t sent = 0;
  for (int i = 0; i < kSpamBurst && spent < budget; ++i) {
    Bytes body = to_bytes("spam " + std::to_string(i));
    const auto solution = pow::mine(body, difficulty, 0, budget - spent);
    if (!solution.has_value()) break;
    spent += solution->attempts;
    for (int b = 0; b < 8; ++b) {
      body.push_back(static_cast<std::uint8_t>(solution->nonce >> (8 * b)));
    }
    swarm.routers[0]->publish(kTopic, body);
    swarm.sim.run_until(swarm.sim.now() + 200);
    ++sent;
  }
  swarm.sim.run_until(swarm.sim.now() + 20'000);

  static char cost[64];
  std::snprintf(cost, sizeof cost, "%llu hashes",
                static_cast<unsigned long long>(spent));
  static char name[16];
  std::snprintf(name, sizeof name, "pow-%d", difficulty);
  return Row{name, sent, swarm.spam_per_honest_node(0),
             pow::expected_attempts(difficulty), cost,
             difficulty >= 16 ? "rate-limited" : "no"};
}

Row run_rln() {
  rln::HarnessConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.degree = kDegree;
  cfg.block_interval_ms = 5'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 30'000;
  cfg.node.validator.max_epoch_gap = 2;
  rln::RlnHarness h(cfg);
  h.register_all();
  h.run_ms(5'000);

  // The attacker is a *registered* member double-signaling kSpamBurst
  // times within one epoch (the strongest spam it can attempt).
  for (int i = 0; i < kSpamBurst; ++i) {
    h.node(0).force_publish(to_bytes("spam " + std::to_string(i)));
    h.run_ms(200);
  }
  h.run_ms(30'000);

  std::uint64_t honest_deliveries = 0;
  for (std::size_t i = 1; i < h.size(); ++i) {
    honest_deliveries += h.node(i).stats().delivered;
  }
  const bool slashed = !h.node(0).is_registered();
  static char cost[64];
  std::snprintf(cost, sizeof cost, "%s + %.3f ETH stake",
                slashed ? "slashed" : "not-slashed",
                static_cast<double>(cfg.deposit_gwei) / chain::kGweiPerEth);
  // Honest CPU: one simulated-Groth16 proof per message (~constraint count
  // of hash evaluations equivalent; report poseidon count of the circuit).
  return Row{"rln", kSpamBurst,
             static_cast<double>(honest_deliveries) /
                 static_cast<double>(kNodes - 1),
             1, cost, "yes"};
}

}  // namespace

int main() {
  std::printf("E7: spam containment under a %d-message burst, %zu-node "
              "gossip network\n\n",
              kSpamBurst, kNodes);
  std::printf("%-12s %10s %16s %16s %22s %10s\n", "scheme", "spam sent",
              "deliv./node", "honest cpu/msg", "attacker cost", "contained");

  print_row(run_unprotected());
  print_row(run_scoring(false));
  print_row(run_scoring(true));
  print_row(run_pow(8));
  print_row(run_pow(12));
  print_row(run_pow(16));
  print_row(run_rln());

  std::printf(
      "\nShape check (paper §I/§IV): without protection spam reaches every\n"
      "node; scoring helps against one persistent peer but Sybil rotation\n"
      "defeats it; PoW caps the attacker only at difficulties that also\n"
      "price out honest low-power publishers (cost/msg grows 2^d); RLN\n"
      "delivers at most the 1-per-epoch quota, drops the rest at the first\n"
      "hop, and the attacker additionally loses its deposit.\n");
  return 0;
}
