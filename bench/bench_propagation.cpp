// Cross-node propagation tracing at full sampling: the shard-flood
// campaign (src/sim) runs with node.obs.trace.sample_every = 1, every
// node's trace rings are harvested each epoch, and the assembler must
// reconstruct a COMPLETE hop tree (origin publish, per-hop rx
// provenance, verdicts, full delivery set) for >= 99% of sampled honest
// messages — the acceptance gate of the tracing plane. The JSON reports
// the mesh-health rollups CI tracks release-over-release:
//
//   * propagation p50/p95/p99 (publish -> last honest delivery, virtual
//     time, so machine-portable), hop-count histogram;
//   * mesh redundancy ratio (duplicate rx / useful rx) and reachability
//     (delivered / subscribed);
//   * complete_tree_fraction — the reconstruction rate itself;
//   * tracing overhead: the same campaign is run interleaved with
//     tracing off/on and the wall-clock fraction (min-of-reps) feeds the
//     3% HARD_CAPS gate in check_bench_regression.py.
//
// A Chrome trace-event export of the traced run is written next to the
// JSON (<out>.trace.json, open in chrome://tracing or Perfetto); CI
// uploads the smoke one as an artifact but baselines only the rollups.
//
// Standalone binary emitting machine-readable JSON (argv[1], default
// BENCH_propagation.json); honors WAKU_BENCH_SMOKE / --smoke (32-node
// fleet instead of 256).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace waku;  // NOLINT
using benchutil::smoke_mode;
using Clock = std::chrono::steady_clock;

sim::ShardFloodConfig campaign_config(bool smoke, std::uint32_t sample_every) {
  sim::ShardFloodConfig cfg;
  cfg.harness.num_nodes = smoke ? 32 : 256;
  cfg.harness.degree = 6;
  cfg.harness.block_interval_ms = 4'000;
  cfg.harness.node.tree_depth = 10;
  cfg.harness.node.validator.epoch.epoch_length_ms = 5'000;
  cfg.harness.node.gossip.validation_batch_max = 8;
  cfg.harness.node.shards.num_shards = smoke ? 4 : 8;
  cfg.harness.seed = 0x9A9;
  cfg.attacked_shard = 1;
  cfg.flood_burst_per_epoch = 6;
  cfg.warmup_ms = 10'000;
  cfg.attack_ms = smoke ? 15'000 : 20'000;
  cfg.drain_ms = 6'000;
  // Full sampling: every message network-wide opens a trace on every
  // node that touches it. Rings are harvested each epoch by the runner,
  // but size them so even one epoch's burst cannot evict a live tree.
  cfg.harness.node.obs.trace.sample_every = sample_every;
  cfg.harness.node.obs.trace.completed_ring = 1'024;
  cfg.harness.node.obs.trace.max_open = 1'024;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_propagation.json";
  const bool smoke = (argc > 2 && std::strcmp(argv[2], "--smoke") == 0) ||
                     smoke_mode();
  // Smoke runs are ~2s, so CI can afford more reps — the min-of-reps
  // overhead estimate tightens against noisy shared runners.
  const int reps = smoke ? 4 : 2;

  const sim::ShardFloodConfig traced_cfg = campaign_config(smoke, 1);
  std::printf(
      "propagation campaign: %zu nodes, %u shards, sample_every=1, "
      "flood %llu/epoch on shard %u, %d interleaved off/on reps...\n",
      traced_cfg.harness.num_nodes, traced_cfg.harness.node.shards.num_shards,
      static_cast<unsigned long long>(traced_cfg.flood_burst_per_epoch),
      traced_cfg.attacked_shard, reps);

  // Interleaved off/on pairs, min-of-reps on each side: the campaign is
  // deterministic in virtual time, so wall-clock deltas isolate the
  // in-band tracing cost (key hash + ring writes + per-epoch harvest).
  double wall_off = 1e300;
  double wall_on = 1e300;
  sim::ShardFloodOutcome out;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    const sim::ShardFloodOutcome untraced =
        sim::run_shard_flood_campaign(campaign_config(smoke, 0));
    const auto t1 = Clock::now();
    out = sim::run_shard_flood_campaign(traced_cfg);
    const auto t2 = Clock::now();
    if (untraced.propagation_trees != 0) {
      std::fprintf(stderr, "untraced run assembled trees\n");
      return 1;
    }
    wall_off = std::min(wall_off,
                        std::chrono::duration<double>(t1 - t0).count());
    wall_on = std::min(wall_on,
                       std::chrono::duration<double>(t2 - t1).count());
    std::printf("rep %d: untraced %.2fs, traced %.2fs\n", rep,
                std::chrono::duration<double>(t1 - t0).count(),
                std::chrono::duration<double>(t2 - t1).count());
  }
  const double tracing_fraction =
      std::max(0.0, wall_on / wall_off - 1.0);

  std::printf(
      "trees %zu (complete %zu, incomplete %zu, rejected %zu), "
      "complete fraction %.4f\n"
      "p95 %.1f ms, redundancy %.3f, reachability %.4f, slashed %s, "
      "tracing overhead %.2f%%\n",
      out.propagation_trees, out.propagation_complete,
      out.propagation_incomplete, out.propagation_rejected,
      out.complete_tree_fraction, out.propagation_p95_ms,
      out.propagation_redundancy, out.propagation_reachability,
      out.attacker_slashed ? "yes" : "NO", tracing_fraction * 100.0);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n\"smoke\": %s,\n\"nodes\": %zu,\n\"shards\": %u,\n"
               "\"sample_every\": 1,\n\"campaign\": ",
               smoke ? "true" : "false", traced_cfg.harness.num_nodes,
               traced_cfg.harness.node.shards.num_shards);
  const std::string campaign_json = out.to_json();
  std::fwrite(campaign_json.data(), 1, campaign_json.size(), f);
  std::fprintf(f,
               ",\n\"overhead\": {\"reps\": %d, \"untraced_wall_s\": %.3f, "
               "\"traced_wall_s\": %.3f, \"tracing_fraction\": %.4f}\n}\n",
               reps, wall_off, wall_on, tracing_fraction);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Chrome trace-event export of the traced run, next to the JSON.
  std::string trace_path = out_path;
  const std::string suffix = ".json";
  if (trace_path.size() > suffix.size() &&
      trace_path.compare(trace_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    trace_path.resize(trace_path.size() - suffix.size());
  }
  trace_path += ".trace.json";
  FILE* tf = std::fopen(trace_path.c_str(), "w");
  if (tf == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  std::fwrite(out.chrome_trace_json.data(), 1, out.chrome_trace_json.size(),
              tf);
  std::fputc('\n', tf);
  std::fclose(tf);
  std::printf("wrote %s\n", trace_path.c_str());

  // CI tripwires: a tracing plane that samples nothing, cannot
  // reconstruct >= 99% of honest trees, or rides a campaign whose
  // containment verdict broke is not observing the network it claims to.
  if (out.propagation_trees == 0 || out.complete_tree_fraction < 0.99 ||
      !out.attacker_slashed || out.spam_on_non_attacked_shards != 0) {
    std::fprintf(stderr, "propagation verdict FAILED\n");
    return 1;
  }
  return 0;
}
