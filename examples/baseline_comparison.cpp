// Baseline comparison: what the paper's introduction argues, as a runnable
// scenario. The same spam burst is thrown at three networks —
// unprotected gossipsub, Whisper-style PoW, and WAKU-RLN-RELAY — and the
// honest-publisher experience is compared side by side (§I: PoW prices out
// resource-restricted devices; peer scoring is Sybil-evadable; RLN keeps
// honest publishing cheap and drops spam at the first hop).
//
// Build & run:  ./build/examples/baseline_comparison
#include <chrono>
#include <cstdio>

#include "gossipsub/router.hpp"
#include "pow/pow.hpp"
#include "rln/harness.hpp"

using namespace waku;  // NOLINT

namespace {

constexpr int kSpam = 10;
const char* kTopic = "cmp-topic";

struct GossipNet {
  net::Simulator sim;
  net::Network net{sim, {.base_latency_ms = 30, .jitter_ms = 10,
                         .loss_rate = 0}, 91};
  std::vector<std::unique_ptr<gossipsub::GossipSubRouter>> routers;
  std::uint64_t spam_delivered = 0;

  explicit GossipNet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      routers.push_back(std::make_unique<gossipsub::GossipSubRouter>(
          net, gossipsub::GossipSubConfig{}, gossipsub::PeerScoreConfig{},
          700 + i));
    }
    Rng rng(93);
    net.connect_random(4, rng);
    for (std::size_t i = 0; i < n; ++i) {
      routers[i]->subscribe(kTopic, [this](const gossipsub::PubSubMessage&) {
        ++spam_delivered;
      });
      routers[i]->start();
    }
    sim.run_until(4'000);
  }
};

}  // namespace

int main() {
  std::printf("== spam protection baseline comparison (20 nodes, %d spam) ==\n\n",
              kSpam);

  // --- 1. unprotected gossipsub -------------------------------------------
  {
    GossipNet g(20);
    for (int i = 0; i < kSpam; ++i) {
      g.routers[0]->publish(kTopic, to_bytes("spam " + std::to_string(i)));
      g.sim.run_until(g.sim.now() + 150);
    }
    g.sim.run_until(g.sim.now() + 10'000);
    std::printf("unprotected gossipsub:\n");
    std::printf("  spam deliveries network-wide : %llu (everything floods)\n\n",
                static_cast<unsigned long long>(g.spam_delivered));
  }

  // --- 2. Whisper-style proof of work --------------------------------------
  {
    constexpr int kDifficulty = 18;  // strong enough to slow the attacker
    const auto t0 = std::chrono::steady_clock::now();
    const auto sol = pow::mine(to_bytes("honest hello"), kDifficulty);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::printf("whisper-style PoW (difficulty %d bits):\n", kDifficulty);
    std::printf("  honest publisher mined %llu hashes (%lld ms on THIS "
                "machine)\n",
                static_cast<unsigned long long>(sol->attempts),
                static_cast<long long>(ms));
    std::printf("  a phone is ~10-50x slower; the paper's point: the honest\n"
                "  cost is identical to the attacker's cost per message\n\n");
  }

  // --- 3. WAKU-RLN-RELAY ----------------------------------------------------
  {
    rln::HarnessConfig cfg;
    cfg.num_nodes = 20;
    cfg.degree = 4;
    cfg.block_interval_ms = 10'000;
    cfg.node.tree_depth = 12;
    cfg.node.validator.epoch.epoch_length_ms = 30'000;
    rln::RlnHarness h(cfg);
    h.register_all();
    h.run_ms(4'000);

    for (int i = 0; i < kSpam; ++i) {
      h.node(0).force_publish(to_bytes("spam " + std::to_string(i)));
      h.run_ms(150);
    }
    h.run_ms(30'000);

    std::uint64_t honest_saw_spam = 0;
    for (std::size_t i = 1; i < h.size(); ++i) {
      honest_saw_spam += h.node(i).stats().delivered;
    }
    std::printf("waku-rln-relay:\n");
    std::printf("  spam deliveries to honest nodes : %llu of %d sent "
                "(1/epoch quota; rest dropped at first hop)\n",
                static_cast<unsigned long long>(honest_saw_spam / (h.size() - 1)),
                kSpam);
    std::printf("  attacker slashed                : %s, 0.01 ETH stake gone\n",
                h.node(0).is_registered() ? "no" : "yes");
    std::printf("  honest publish cost             : one zk proof (~ms), no "
                "mining, no reputation\n");
  }
  return 0;
}
