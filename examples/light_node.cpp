// Light node: the resource-restricted profile the paper designs for (§I).
//
// Two light-node facilities are combined:
//   * 12/WAKU2-FILTER — a bandwidth-limited client receives only messages
//     matching its content-topic filter, pushed by a full node, without
//     joining the gossip mesh;
//   * the O(log N) partial Merkle view ([18], §IV-A) — full RLN nodes can
//     run with kilobytes of tree state instead of the full replica.
//
// Build & run:  ./build/examples/light_node
#include <cstdio>

#include "rln/harness.hpp"
#include "waku/filter.hpp"

using namespace waku;  // NOLINT

int main() {
  std::printf("== light-node profile: filter protocol + partial tree view ==\n\n");

  // Full nodes run with the partial view: every peer here keeps only
  // O(log N) Merkle state yet validates and publishes normally.
  rln::HarnessConfig cfg;
  cfg.num_nodes = 8;
  cfg.degree = 3;
  cfg.block_interval_ms = 10'000;
  cfg.node.tree_depth = 20;
  cfg.node.tree_mode = rln::TreeMode::kPartialView;
  cfg.node.validator.epoch.epoch_length_ms = 5'000;
  rln::RlnHarness net(cfg);
  net.register_all();
  net.run_ms(4'000);

  std::printf("tree state per peer (depth-20 tree, partial view [18]):\n");
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("  node %zu: %zu bytes (full replica would be ~67 MB at "
                "capacity)\n",
                i, net.node(i).group().storage_bytes());
  }

  // A filter service rides on full node 0; a light client attaches to it.
  FilterService service(net.network());
  net.node(0).set_message_handler([&service](const WakuMessage& m) {
    service.on_relay_message(m);
  });

  std::size_t client_received = 0;
  FilterClient client(net.network(), [&client_received](const WakuMessage& m) {
    ++client_received;
    std::printf("  light client <- pushed: \"%s\" (topic %s)\n",
                to_string(m.payload).c_str(), m.content_topic.c_str());
  });
  net.network().connect(service.node_id(), client.node_id());
  client.subscribe(service.node_id(), "/sensor/1/alerts/proto");
  net.run_ms(1'000);

  std::printf("\nlight client filters on /sensor/1/alerts/proto only:\n");

  // Publishers emit on two topics; only one matches the filter.
  (void)net.node(1).try_publish(to_bytes("temperature spike on rack 7"),
                                "/sensor/1/alerts/proto");
  net.run_ms(cfg.node.validator.epoch.epoch_length_ms);
  (void)net.node(2).try_publish(to_bytes("cat pictures thread"),
                                "/social/1/cats/proto");
  net.run_ms(cfg.node.validator.epoch.epoch_length_ms);
  (void)net.node(3).try_publish(to_bytes("fan failure on rack 2"),
                                "/sensor/1/alerts/proto");
  net.run_ms(8'000);

  std::printf("\nlight client received %zu of 3 published messages "
              "(2 matched its filter)\n", client_received);
  std::printf("light client bandwidth: %llu bytes in, vs %llu bytes at a "
              "full relay node\n",
              static_cast<unsigned long long>(
                  net.network().stats(client.node_id()).bytes_received),
              static_cast<unsigned long long>(
                  net.network().stats(net.node(4).node_id()).bytes_received));
  return 0;
}
