// Spam attack walkthrough (paper Figure 3's slashing flow, narrated):
// a registered member double-signals in one epoch; routing peers detect
// the nullifier collision, reconstruct the spammer's secret key via Shamir
// recovery, slash it on-chain through commit-reveal, and collect the
// spammer's deposit. The spammer is globally removed and silenced.
//
// Build & run:  ./build/examples/spam_attack_slashing
#include <cstdio>

#include "rln/harness.hpp"

using namespace waku;  // NOLINT

int main() {
  std::printf("== WAKU-RLN-RELAY spam attack & slashing walkthrough ==\n\n");

  rln::HarnessConfig cfg;
  cfg.num_nodes = 12;
  cfg.degree = 4;
  cfg.block_interval_ms = 12'000;
  cfg.node.tree_depth = 16;
  cfg.node.validator.epoch.epoch_length_ms = 30'000;
  rln::RlnHarness net(cfg);
  net.register_all();
  net.run_ms(5'000);

  rln::WakuRlnRelayNode& spammer = net.node(0);
  std::printf("spammer (node 0) registered, pk = %s..., staked %.3f ETH\n\n",
              to_hex(spammer.identity().pk_bytes()).substr(0, 16).c_str(),
              static_cast<double>(cfg.deposit_gwei) / chain::kGweiPerEth);

  std::printf("[t=%llu ms] spammer publishes message A (epoch %llu)\n",
              static_cast<unsigned long long>(net.sim().now()),
              static_cast<unsigned long long>(spammer.current_epoch()));
  spammer.force_publish(to_bytes("totally legitimate message A"));

  std::printf("[t=%llu ms] spammer publishes message B in the SAME epoch "
              "(double-signal!)\n",
              static_cast<unsigned long long>(net.sim().now()));
  spammer.force_publish(to_bytes("buy cheap zk proofs now!!!"));

  // Let detection and the two slashing blocks play out.
  net.run_ms(5 * cfg.block_interval_ms);

  std::uint64_t detections = 0;
  std::size_t winner = 0;
  for (std::size_t i = 1; i < net.size(); ++i) {
    detections += net.node(i).validator().stats().spam_detected;
    if (net.node(i).stats().slash_rewards > 0) winner = i;
  }
  std::printf("\n%llu routing peers detected the nullifier collision and\n"
              "reconstructed the spammer's secret key from the two Shamir\n"
              "shares (y = sk + H(sk,epoch)*x).\n",
              static_cast<unsigned long long>(detections));

  std::printf("\nnode %zu won the commit-reveal race:\n", winner);
  std::printf("  slash commits submitted : %llu (network-wide)\n",
              [&] {
                std::uint64_t c = 0;
                for (std::size_t i = 1; i < net.size(); ++i)
                  c += net.node(i).stats().slash_commits;
                return static_cast<unsigned long long>(c);
              }());
  std::printf("  reward winners          : 1 (commitment binds the slasher)\n");

  const chain::Gwei winner_gain =
      net.chain().balance(net.node(winner).account()) -
      (cfg.initial_balance_gwei - cfg.deposit_gwei);
  std::printf("  winner's net gain       : ~%.4f ETH (deposit minus gas)\n",
              static_cast<double>(winner_gain) / chain::kGweiPerEth);

  std::printf("\nspammer aftermath:\n");
  std::printf("  is_registered           : %s\n",
              spammer.is_registered() ? "yes (BUG)" : "no — removed globally");
  std::printf("  stake forfeited         : %.3f ETH (deposit went to the "
              "slasher, not back to the spammer)\n",
              static_cast<double>(cfg.deposit_gwei) / chain::kGweiPerEth);
  const auto retry = spammer.try_publish(to_bytes("am I still here?"));
  std::printf("  further publishing      : %s\n",
              retry == rln::WakuRlnRelayNode::PublishStatus::kNotRegistered
                  ? "refused — no membership, no proof"
                  : "unexpected!");
  return 0;
}
