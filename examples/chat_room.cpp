// Chat room: the paper's motivating workload (§I cites a chat application
// tolerating an epoch of ~1 message/second). Several participants exchange
// messages across epochs on a content topic; one store-enabled node
// archives the room's history (13/WAKU2-STORE) and serves a paginated
// query at the end — the off-chain storage half of §III-A.
//
// Build & run:  ./build/examples/chat_room
#include <cstdio>
#include <string>
#include <vector>

#include "rln/harness.hpp"

using namespace waku;  // NOLINT

namespace {
const char* kRoomTopic = "/chatroom/1/lobby/proto";
const char* kNames[] = {"archive", "alice", "bob", "carol", "dave", "erin"};
}  // namespace

int main() {
  std::printf("== WAKU-RLN-RELAY chat room ==\n\n");

  rln::HarnessConfig cfg;
  cfg.num_nodes = 6;  // node 0 is the store/archive node
  cfg.degree = 3;
  cfg.block_interval_ms = 12'000;
  cfg.node.tree_depth = 16;
  cfg.node.validator.epoch.epoch_length_ms = 5'000;  // chat-friendly rate
  cfg.node.enable_store = true;
  rln::RlnHarness net(cfg);
  net.register_all();
  net.run_ms(5'000);

  // Script a little conversation: (speaker, line), one epoch per round.
  const std::vector<std::pair<std::size_t, std::string>> script = {
      {1, "hey everyone, is this thing spam-proof?"},
      {2, "one message per epoch per member, cryptographically"},
      {3, "and no phone numbers or emails at signup"},
      {4, "just a stake; spam it and you lose the stake"},
      {5, "routing peers get paid to catch spammers, neat"},
      {1, "love it. privacy AND economics"},
  };

  for (const auto& [who, line] : script) {
    const auto status = net.node(who).try_publish(to_bytes(line), kRoomTopic);
    std::printf("[epoch %llu] %-7s: %s%s\n",
                static_cast<unsigned long long>(net.node(who).current_epoch()),
                kNames[who], line.c_str(),
                status == rln::WakuRlnRelayNode::PublishStatus::kOk
                    ? ""
                    : "  (REFUSED)");
    net.run_ms(cfg.node.validator.epoch.epoch_length_ms);  // next epoch
  }
  net.run_ms(5'000);

  // Everyone got everything exactly once.
  std::printf("\ndeliveries per participant:");
  for (std::size_t i = 0; i < net.size(); ++i) {
    std::printf(" %s=%llu", kNames[i],
                static_cast<unsigned long long>(net.node(i).stats().delivered));
  }

  // Query the archive like a late-joining client would.
  std::printf("\n\nhistory replay from the archive node (WAKU2-STORE):\n");
  HistoryQuery query;
  query.content_topic = kRoomTopic;
  query.page_size = 4;
  std::size_t page = 1;
  for (;;) {
    const HistoryResponse resp = net.node(0).store().query(query);
    for (const WakuMessage& m : resp.messages) {
      std::printf("  page %zu | %s\n", page, to_string(m.payload).c_str());
    }
    if (!resp.next_cursor.has_value()) break;
    query.cursor = *resp.next_cursor;
    ++page;
  }
  std::printf("\narchive holds %zu messages (%zu payload bytes)\n",
              net.node(0).store().size(), net.node(0).store().bytes_stored());
  return 0;
}
