// Quickstart: the smallest end-to-end WAKU-RLN-RELAY deployment.
//
//   1. deploy the membership contract on a (simulated) chain;
//   2. spin up five relay nodes in a p2p network;
//   3. register each node's identity commitment with a deposit;
//   4. publish a rate-limited, privacy-preserving message;
//   5. watch it arrive everywhere, validated by the RLN proof.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "rln/harness.hpp"

using namespace waku;  // NOLINT

int main() {
  std::printf("== WAKU-RLN-RELAY quickstart ==\n\n");

  // A 5-node network; 12 s blocks; 10 s epochs (1 message per epoch).
  rln::HarnessConfig cfg;
  cfg.num_nodes = 5;
  cfg.degree = 3;
  cfg.block_interval_ms = 12'000;
  cfg.node.tree_depth = 16;  // room for 65k members
  cfg.node.validator.epoch.epoch_length_ms = 10'000;
  cfg.node.validator.max_epoch_gap = 2;
  rln::RlnHarness net(cfg);

  std::printf("deployed membership contract at %s (deposit %.3f ETH)\n",
              net.contract().hex().c_str(),
              static_cast<double>(cfg.deposit_gwei) / chain::kGweiPerEth);

  // Every node submits its identity commitment pk = Poseidon(sk) plus the
  // deposit; membership becomes usable once the block is mined.
  net.register_all();
  std::printf("all %zu nodes registered; group root = %s...\n\n", net.size(),
              ff::fr_to_hex(net.node(0).group().root()).substr(0, 18).c_str());

  // Print every delivery as it happens.
  for (std::size_t i = 0; i < net.size(); ++i) {
    net.node(i).set_message_handler([i, &net](const WakuMessage& msg) {
      std::printf("  [t=%6llu ms] node %zu delivered: \"%s\"\n",
                  static_cast<unsigned long long>(net.sim().now()), i,
                  to_string(msg.payload).c_str());
    });
  }

  // Node 0 publishes. The message carries the §III-E proof bundle:
  // (x,y) Shamir share, internal nullifier, epoch, tree root, zk proof.
  std::printf("node 0 publishes...\n");
  const auto status = net.node(0).try_publish(to_bytes("Hello, spam-free world!"));
  if (status != rln::WakuRlnRelayNode::PublishStatus::kOk) {
    std::printf("publish failed!\n");
    return 1;
  }
  net.run_ms(5'000);

  // A second message in the same epoch is refused locally — the honest
  // rate limit of one message per epoch.
  const auto again = net.node(0).try_publish(to_bytes("too soon"));
  std::printf("\nsecond publish in the same epoch -> %s\n",
              again == rln::WakuRlnRelayNode::PublishStatus::kRateLimited
                  ? "rate-limited (as designed)"
                  : "unexpected!");

  // Next epoch it flows again.
  net.run_ms(cfg.node.validator.epoch.epoch_length_ms);
  std::printf("next epoch, node 0 publishes again...\n");
  (void)net.node(0).try_publish(to_bytes("One message per epoch is plenty."));
  net.run_ms(5'000);

  std::printf("\ntotal deliveries across the network: %llu\n",
              static_cast<unsigned long long>(net.total_delivered()));
  return 0;
}
