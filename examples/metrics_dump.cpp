// Metrics dump: a 3-node smoke deployment that exercises the full
// publish -> route -> validate -> deliver path (plus one rejected spam
// burst, so the verdict-reason counters are non-trivial) and then prints
// one node's Prometheus text exposition to stdout.
//
// CI pipes this through scripts/check_metrics_format.py to lint the
// exposition format (HELP/TYPE pairing, monotone histogram buckets, no
// duplicate families). Operators use it the same way:
//
//   ./build/example_metrics_dump               # Prometheus text
//   ./build/example_metrics_dump --json        # the same data as JSON
//   ./build/example_metrics_dump --traces      # sampled lifecycle spans
//   ./build/example_metrics_dump --fleet       # cross-node fleet timeline
//   ./build/example_metrics_dump --postmortem  # flight-recorder black box
//
// The JSON shapes (--json / --fleet / --postmortem) are linted with
// scripts/check_metrics_format.py --json.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/fleet.hpp"
#include "rln/harness.hpp"

using namespace waku;  // NOLINT

int main(int argc, char** argv) {
  const bool want_json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const bool want_traces = argc > 1 && std::strcmp(argv[1], "--traces") == 0;
  const bool want_fleet = argc > 1 && std::strcmp(argv[1], "--fleet") == 0;
  const bool want_postmortem =
      argc > 1 && std::strcmp(argv[1], "--postmortem") == 0;

  rln::HarnessConfig cfg;
  cfg.num_nodes = 3;
  cfg.degree = 2;
  cfg.block_interval_ms = 2'000;
  cfg.node.tree_depth = 10;
  cfg.node.validator.epoch.epoch_length_ms = 5'000;
  cfg.node.validator.max_epoch_gap = 2;
  cfg.node.obs.trace.sample_every = 1;  // trace every message in the smoke
  cfg.seed = 0xD0;
  rln::RlnHarness net(cfg);
  net.register_all();
  net.run_ms(5'000);

  // Honest traffic from every node across two epochs...
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < net.size(); ++i) {
      (void)net.node(i).try_publish(
          to_bytes("metrics round " + std::to_string(round) + " from " +
                   std::to_string(i)));
    }
    net.run_ms(cfg.node.validator.epoch.epoch_length_ms);
  }
  // ...plus one double-signal so spam/verdict counters move.
  (void)net.node(2).force_publish(to_bytes("spam a"));
  (void)net.node(2).force_publish(to_bytes("spam b"));
  net.run_ms(10'000);

  if (want_json) {
    std::printf("%s\n", net.node(0).metrics_json().c_str());
  } else if (want_traces) {
    std::printf("%s\n", net.node(0).tracer().to_json().c_str());
  } else if (want_fleet) {
    // The cross-node aggregation path a deployment's scrape loop runs:
    // one health sample per node per epoch, folded into fleet rows.
    obs::FleetAggregator fleet;
    for (std::size_t i = 0; i < net.size(); ++i) {
      fleet.ingest(net.node(i).health_sample());
    }
    fleet.close_epoch(net.node(0).current_epoch());
    std::printf("%s\n", fleet.timeline_json().c_str());
  } else if (want_postmortem) {
    std::printf(
        "%s\n",
        net.node(0).flight_recorder().postmortem_json("metrics-dump").c_str());
  } else {
    std::fputs(net.node(0).metrics_text().c_str(), stdout);
  }
  return 0;
}
