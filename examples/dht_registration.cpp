// Future-work demo (paper §IV-A): group management over a DHT.
//
// Registration through the Ethereum contract only becomes visible when a
// block is mined; this example runs the same join-then-sync flow against a
// Kademlia directory and shows the latency difference — and what is lost
// (no stake, so no slashing economics) — side by side.
//
// Build & run:  ./build/examples/dht_registration
#include <cstdio>
#include <memory>

#include "dht/kademlia.hpp"
#include "rln/dht_group.hpp"
#include "rln/harness.hpp"

using namespace waku;  // NOLINT

int main() {
  std::printf("== group management: Ethereum contract vs DHT (§IV-A) ==\n\n");

  // --- contract path --------------------------------------------------------
  {
    rln::HarnessConfig cfg;
    cfg.num_nodes = 6;
    cfg.degree = 3;
    cfg.block_interval_ms = 12'000;
    cfg.node.tree_depth = 12;
    rln::RlnHarness h(cfg);
    h.run_ms(4'000);  // join mid-block

    const net::TimeMs t0 = h.sim().now();
    std::printf("contract: node 0 submits its registration transaction...\n");
    h.node(0).register_membership();
    while (!h.node(0).is_registered()) h.run_ms(100);
    std::printf("contract: membership visible after %llu ms "
                "(waited for block + event sync)\n\n",
                static_cast<unsigned long long>(h.sim().now() - t0));
  }

  // --- DHT path -------------------------------------------------------------
  {
    net::Simulator sim;
    net::Network net(sim, {.base_latency_ms = 40, .jitter_ms = 20,
                           .loss_rate = 0}, 777);
    std::vector<std::unique_ptr<dht::DhtNode>> peers;
    for (int i = 0; i < 20; ++i) {
      peers.push_back(std::make_unique<dht::DhtNode>(net));
    }
    for (std::size_t i = 0; i < peers.size(); ++i) {
      for (std::size_t j = i + 1; j < peers.size(); ++j) {
        net.connect(peers[i]->node_id(), peers[j]->node_id());
      }
    }
    for (std::size_t i = 1; i < peers.size(); ++i) {
      peers[i]->bootstrap(peers[0]->node_id());
      sim.run_until(sim.now() + 200);
    }
    sim.run_until(sim.now() + 2'000);
    std::printf("dht: 20-node Kademlia directory bootstrapped\n");

    Rng rng(778);
    const rln::Identity member = rln::Identity::generate(rng);
    rln::DhtGroupDirectory registrar(*peers[3], "demo");
    rln::DhtGroupDirectory observer(*peers[11], "demo");
    rln::GroupManager observer_tree(12, rln::TreeMode::kFullTree);

    const net::TimeMs t0 = sim.now();
    bool registered = false;
    std::uint64_t index = 0;
    registrar.register_member(member.pk, [&](std::uint64_t i) {
      registered = true;
      index = i;
    });
    while (!registered) sim.run_until(sim.now() + 50);
    std::printf("dht: member record stored (index %llu) after %llu ms\n",
                static_cast<unsigned long long>(index),
                static_cast<unsigned long long>(sim.now() - t0));

    std::uint64_t added = 0;
    observer.sync(observer_tree, [&](std::uint64_t n) { added = n; });
    while (added == 0) sim.run_until(sim.now() + 50);
    std::printf("dht: another peer synced the new member after %llu ms total;"
                "\n     group root = %s...\n",
                static_cast<unsigned long long>(sim.now() - t0),
                ff::fr_to_hex(observer_tree.root()).substr(0, 18).c_str());
  }

  std::printf(
      "\ntrade-off (why the paper lists this as future work, not a drop-in):\n"
      "  + no block-mining delay in the registration path\n"
      "  + no gas costs\n"
      "  - no deposit escrow, so the slashing reward has no funding source\n"
      "  - index assignment is a read-modify-write race under concurrency\n");
  return 0;
}
