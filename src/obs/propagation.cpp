#include "obs/propagation.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/telemetry.hpp"  // format_double

namespace waku::obs {

namespace {

/// Parses `name=<u64>` out of a "k=v,k=v" hop-detail string; kNoPeer
/// when absent or malformed. Details are machine-stamped (node/shard/
/// peer ids), so a strict digits-only parse is enough.
std::uint64_t detail_field(const std::string& detail, const char* name) {
  const std::string needle = std::string(name) + "=";
  std::size_t pos = 0;
  while (pos < detail.size()) {
    const std::size_t hit = detail.find(needle, pos);
    if (hit == std::string::npos) return kNoPeer;
    // Must start a field: beginning of string or right after a comma.
    if (hit != 0 && detail[hit - 1] != ',') {
      pos = hit + 1;
      continue;
    }
    std::size_t i = hit + needle.size();
    if (i >= detail.size() || detail[i] < '0' || detail[i] > '9') {
      return kNoPeer;
    }
    std::uint64_t value = 0;
    while (i < detail.size() && detail[i] >= '0' && detail[i] <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(detail[i] - '0');
      ++i;
    }
    return value;
  }
  return kNoPeer;
}

bool verdict_is_reject(const std::string& verdict) {
  // Mirrors rln::Verdict: accept and the two ignores pass a message by;
  // everything else killed it at this node.
  return !(verdict.empty() || verdict == "accept" ||
           verdict == "epoch_gap" || verdict == "duplicate");
}

std::string key_hex(TraceKey key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, key);
  return buf;
}

void append_u64(std::string& out, const char* name, std::uint64_t v,
                bool comma = true) {
  out += '"';
  out += name;
  out += "\":";
  out += std::to_string(v);
  if (comma) out += ',';
}

}  // namespace

void PropagationAssembler::ingest(std::uint64_t node_id,
                                  const std::vector<Trace>& traces) {
  if (!known_nodes_.contains(node_id)) {
    known_nodes_[node_id] = true;
    ++nodes_seen_;
  }
  for (const Trace& t : traces) {
    Trace& slot = by_key_[t.key][node_id];
    // Re-ingestion keeps the richest version: per-epoch re-collection
    // offers the identical trace again (no-op), and a trace that gained
    // late hop annotations replaces its earlier snapshot.
    if (slot.events.size() < t.events.size() ||
        (slot.events.size() == t.events.size() && slot.end_ns < t.end_ns)) {
      slot = t;
    }
  }
}

void PropagationAssembler::ingest_flight(std::uint64_t node_id,
                                         const std::vector<FlightEvent>& events) {
  for (const FlightEvent& ev : events) {
    if (ev.kind != "slash") continue;
    const bool seen = std::any_of(
        slash_events_.begin(), slash_events_.end(),
        [&](const TaggedFlightEvent& have) {
          return have.node == node_id && have.event.at_ns == ev.at_ns &&
                 have.event.detail == ev.detail;
        });
    if (!seen) slash_events_.push_back({node_id, ev});
  }
}

void PropagationAssembler::set_subscribers(std::uint16_t shard,
                                           std::size_t count) {
  subscribers_[shard] = count;
}

void PropagationAssembler::set_default_subscribers(std::size_t count) {
  default_subscribers_ = count;
}

std::size_t PropagationAssembler::ingested_traces() const {
  std::size_t total = 0;
  for (const auto& [key, per_node] : by_key_) total += per_node.size();
  return total;
}

PropagationTree PropagationAssembler::build_tree(
    TraceKey key, const std::map<std::uint64_t, Trace>& per_node) const {
  PropagationTree tree;
  tree.key = key;

  for (const auto& [node_id, trace] : per_node) {
    PropagationNodeView view;
    view.node = node_id;
    view.span_start_ns = trace.start_ns;
    view.span_end_ns = trace.end_ns;
    view.truncated = trace.outcome == "truncated";
    for (const TraceEvent& ev : trace.events) {
      if (ev.stage == "publish") {
        tree.has_origin = true;
        tree.origin_node = node_id;
        tree.publish_ns = ev.at_ns;
        if (const std::uint64_t s = detail_field(ev.detail, "shard");
            s != kNoPeer) {
          tree.has_shard = true;
          tree.shard = static_cast<std::uint16_t>(s);
        }
      } else if (ev.stage == "rx") {
        if (view.first_rx_ns == 0) {
          view.first_rx_ns = ev.at_ns;
          view.from = detail_field(ev.detail, "from");
        }
        if (!tree.has_shard) {
          if (const std::uint64_t s = detail_field(ev.detail, "shard");
              s != kNoPeer) {
            tree.has_shard = true;
            tree.shard = static_cast<std::uint16_t>(s);
          }
        }
      } else if (ev.stage == "dup") {
        ++view.duplicate_rx;
      } else if (ev.stage == "fwd") {
        ++view.forwards;
      } else if (ev.stage == "verdict") {
        view.verdict = ev.detail;
      } else if (ev.stage == "deliver") {
        view.delivered = true;
        view.deliver_ns = ev.at_ns;
      }
    }
    tree.nodes.push_back(std::move(view));
  }

  // Depth: first-rx provenance edges form a parent forest rooted at the
  // origin. Resolve each node by walking its parent chain (bounded by
  // the node count, so a malformed cycle terminates).
  std::map<std::uint64_t, const PropagationNodeView*> by_node;
  for (const PropagationNodeView& v : tree.nodes) by_node[v.node] = &v;
  for (PropagationNodeView& v : tree.nodes) {
    if (tree.has_origin && v.node == tree.origin_node) {
      v.depth = 0;
      continue;
    }
    int depth = 0;
    std::uint64_t cursor = v.node;
    bool resolved = false;
    for (std::size_t steps = 0; steps <= tree.nodes.size(); ++steps) {
      if (tree.has_origin && cursor == tree.origin_node) {
        resolved = true;
        break;
      }
      const auto it = by_node.find(cursor);
      if (it == by_node.end() || it->second->from == kNoPeer) break;
      cursor = it->second->from;
      ++depth;
    }
    v.depth = resolved ? depth : -1;
  }

  for (const PropagationNodeView& v : tree.nodes) {
    if (v.first_rx_ns != 0) ++tree.useful_rx;
    tree.duplicate_rx += v.duplicate_rx;
    if (v.truncated) tree.truncated = true;
    if (verdict_is_reject(v.verdict)) {
      ++tree.rejections;
      if (v.depth >= 0 &&
          (tree.reject_depth < 0 || v.depth < tree.reject_depth)) {
        tree.reject_depth = v.depth;
      }
    }
    if (v.delivered) {
      ++tree.deliveries;
      tree.last_delivery_ns = std::max(tree.last_delivery_ns, v.deliver_ns);
      if (v.depth > tree.max_delivery_depth) tree.max_delivery_depth = v.depth;
    }
  }

  std::size_t remote_deliveries = tree.deliveries;
  if (tree.has_origin) {
    const auto it = by_node.find(tree.origin_node);
    if (it != by_node.end() && it->second->delivered) --remote_deliveries;
  }
  tree.complete = tree.has_origin && remote_deliveries >= 1 && !tree.truncated;
  tree.rejected = tree.rejections > 0 && remote_deliveries == 0;
  // Adversary anchoring. A marked adversary that appears with no rx and
  // no publish event is the untraced injection point (its node delivers
  // and forwards spam it never "received"); a marked traced origin is the
  // degenerate cooperative case. Honest trees that merely pass THROUGH an
  // adversary hop (first_rx set) are not affected.
  if (tree.has_origin) {
    tree.adversary_origin = adversaries_.count(tree.origin_node) > 0;
  } else {
    for (const PropagationNodeView& v : tree.nodes) {
      if (v.first_rx_ns == 0 && adversaries_.count(v.node) > 0) {
        tree.adversary_origin = true;
        break;
      }
    }
  }
  return tree;
}

std::vector<PropagationTree> PropagationAssembler::assemble() const {
  std::vector<PropagationTree> trees;
  trees.reserve(by_key_.size());
  for (const auto& [key, per_node] : by_key_) {
    trees.push_back(build_tree(key, per_node));
  }
  return trees;
}

PropagationSummary PropagationAssembler::summary() const {
  PropagationSummary s;
  std::vector<std::uint64_t> latencies;
  std::size_t total_dup = 0;
  std::size_t total_rx = 0;
  std::size_t delivered_sum = 0;
  std::size_t subscribed_sum = 0;

  for (const auto& [key, per_node] : by_key_) {
    const PropagationTree tree = build_tree(key, per_node);
    ++s.trees;
    total_dup += tree.duplicate_rx;
    total_rx += tree.useful_rx;
    if (tree.adversary_origin) {
      ++s.adversary_trees;
      continue;
    }
    if (tree.rejected) {
      ++s.rejected_trees;
      continue;
    }
    if (!tree.complete) {
      ++s.incomplete_trees;
      continue;
    }
    ++s.complete_trees;
    latencies.push_back(tree.latency_ns());
    for (const PropagationNodeView& v : tree.nodes) {
      if (!v.delivered || v.depth < 0) continue;
      const auto depth = static_cast<std::size_t>(v.depth);
      if (depth >= s.hop_histogram.size()) s.hop_histogram.resize(depth + 1);
      ++s.hop_histogram[depth];
    }
    std::size_t subscribed = default_subscribers_;
    if (tree.has_shard) {
      if (const auto it = subscribers_.find(tree.shard);
          it != subscribers_.end()) {
        subscribed = it->second;
      }
    }
    if (subscribed > 0) {
      delivered_sum += std::min(tree.deliveries, subscribed);
      subscribed_sum += subscribed;
    }
  }

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto rank = [&](std::size_t q) {
      return latencies[std::min(latencies.size() - 1,
                                latencies.size() * q / 100)];
    };
    s.p50_ns = rank(50);
    s.p95_ns = rank(95);
    s.p99_ns = rank(99);
  }
  if (total_rx > 0) {
    s.redundancy_ratio =
        static_cast<double>(total_dup) / static_cast<double>(total_rx);
  }
  if (subscribed_sum > 0) {
    s.reachability = static_cast<double>(delivered_sum) /
                     static_cast<double>(subscribed_sum);
  }
  return s;
}

std::string PropagationTree::to_json() const {
  std::string out = "{\"key\":\"" + key_hex(key) + "\",";
  out += "\"origin_node\":";
  out += has_origin ? std::to_string(origin_node) : "null";
  out += ",";
  append_u64(out, "publish_ns", publish_ns);
  out += "\"shard\":";
  out += has_shard ? std::to_string(shard) : "null";
  out += ",";
  append_u64(out, "deliveries", deliveries);
  append_u64(out, "last_delivery_ns", last_delivery_ns);
  append_u64(out, "latency_ns", latency_ns());
  append_u64(out, "useful_rx", useful_rx);
  append_u64(out, "duplicate_rx", duplicate_rx);
  append_u64(out, "rejections", rejections);
  out += "\"max_delivery_depth\":" + std::to_string(max_delivery_depth) + ",";
  out += "\"reject_depth\":" + std::to_string(reject_depth) + ",";
  out += std::string("\"truncated\":") + (truncated ? "true" : "false") + ",";
  out += std::string("\"complete\":") + (complete ? "true" : "false") + ",";
  out += std::string("\"rejected\":") + (rejected ? "true" : "false") + ",";
  out += std::string("\"adversary_origin\":") +
         (adversary_origin ? "true" : "false") + ",";
  out += "\"hops\":[";
  bool first = true;
  for (const PropagationNodeView& v : nodes) {
    if (!first) out += ",";
    first = false;
    out += "{";
    append_u64(out, "node", v.node);
    out += "\"depth\":" + std::to_string(v.depth) + ",";
    append_u64(out, "first_rx_ns", v.first_rx_ns);
    out += "\"from\":";
    out += v.from == kNoPeer ? "null" : std::to_string(v.from);
    out += ",\"verdict\":\"" + json_escape(v.verdict) + "\",";
    out += std::string("\"delivered\":") + (v.delivered ? "true" : "false") +
           ",";
    append_u64(out, "deliver_ns", v.deliver_ns);
    append_u64(out, "forwards", v.forwards);
    append_u64(out, "duplicate_rx", v.duplicate_rx, /*comma=*/false);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string PropagationSummary::to_json() const {
  std::string out = "{";
  append_u64(out, "trees", trees);
  append_u64(out, "complete_trees", complete_trees);
  append_u64(out, "incomplete_trees", incomplete_trees);
  append_u64(out, "rejected_trees", rejected_trees);
  append_u64(out, "adversary_trees", adversary_trees);
  append_u64(out, "propagation_p50_ns", p50_ns);
  append_u64(out, "propagation_p95_ns", p95_ns);
  append_u64(out, "propagation_p99_ns", p99_ns);
  out += "\"redundancy_ratio\":" + format_double(redundancy_ratio) + ",";
  out += "\"reachability\":" + format_double(reachability) + ",";
  out += "\"hop_histogram\":[";
  for (std::size_t d = 0; d < hop_histogram.size(); ++d) {
    if (d > 0) out += ",";
    out += std::to_string(hop_histogram[d]);
  }
  out += "]}";
  return out;
}

std::string PropagationAssembler::summary_json() const {
  std::string out = summary().to_json();
  out.pop_back();  // reopen the summary object to append the tree detail
  out += ",\"trees_detail\":[";
  bool first = true;
  for (const auto& [key, per_node] : by_key_) {
    if (!first) out += ",";
    first = false;
    out += build_tree(key, per_node).to_json();
  }
  out += "]}";
  return out;
}

std::string PropagationAssembler::chrome_trace_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out += ",";
    first = false;
    out += ev;
  };
  for (const auto& [node_id, seen] : known_nodes_) {
    (void)seen;
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(node_id) + ",\"tid\":0,\"args\":{\"name\":\"node " +
         std::to_string(node_id) + "\"}}");
  }
  for (const auto& [key, per_node] : by_key_) {
    const PropagationTree tree = build_tree(key, per_node);
    const std::string name = "msg " + key_hex(key);
    for (const PropagationNodeView& v : tree.nodes) {
      // One complete ("X") span per (message, node); ts/dur in us. A
      // zero-length span still gets 1us so the slice renders.
      const std::uint64_t ts_us = v.span_start_ns / 1000;
      const std::uint64_t end_us =
          std::max(v.span_end_ns, v.span_start_ns) / 1000;
      const std::uint64_t dur_us = end_us > ts_us ? end_us - ts_us : 1;
      std::string ev = "{\"name\":\"" + name +
                       "\",\"cat\":\"propagation\",\"ph\":\"X\",\"ts\":" +
                       std::to_string(ts_us) + ",\"dur\":" +
                       std::to_string(dur_us) + ",\"pid\":" +
                       std::to_string(v.node) + ",\"tid\":0,\"args\":{";
      ev += "\"depth\":" + std::to_string(v.depth) + ",";
      ev += "\"verdict\":\"" + json_escape(v.verdict) + "\",";
      ev += std::string("\"delivered\":") + (v.delivered ? "true" : "false") +
            ",";
      ev += "\"forwards\":" + std::to_string(v.forwards) + ",";
      ev += "\"duplicate_rx\":" + std::to_string(v.duplicate_rx) + "}}";
      emit(ev);
    }
  }
  out += "]}";
  return out;
}

std::string PropagationAssembler::forensics_json() const {
  // Time-ordered slash chain (commit -> member_slashed), shared by every
  // attack record below; ties break on node id for determinism.
  std::vector<TaggedFlightEvent> chain = slash_events_;
  std::sort(chain.begin(), chain.end(),
            [](const TaggedFlightEvent& a, const TaggedFlightEvent& b) {
              if (a.event.at_ns != b.event.at_ns) {
                return a.event.at_ns < b.event.at_ns;
              }
              return a.node < b.node;
            });

  std::string out = "{\"attacks\":[";
  bool first_attack = true;
  for (const auto& [key, per_node] : by_key_) {
    const PropagationTree tree = build_tree(key, per_node);
    if (!tree.rejected && !tree.adversary_origin) continue;
    if (!first_attack) out += ",";
    first_attack = false;
    out += "{\"key\":\"" + key_hex(key) + "\",";
    out += "\"origin_node\":";
    out += tree.has_origin ? std::to_string(tree.origin_node) : "null";
    out += ",";
    append_u64(out, "publish_ns", tree.publish_ns);
    out += "\"reject_depth\":" + std::to_string(tree.reject_depth) + ",";
    out += "\"observations\":[";
    bool first_obs = true;
    for (const PropagationNodeView& v : tree.nodes) {
      if (v.verdict.empty() && v.first_rx_ns == 0) continue;
      if (!first_obs) out += ",";
      first_obs = false;
      out += "{";
      append_u64(out, "node", v.node);
      append_u64(out, "rx_ns", v.first_rx_ns);
      out += "\"verdict\":\"" + json_escape(v.verdict) + "\"}";
    }
    out += "],\"slash_chain\":[";
    bool first_slash = true;
    for (const TaggedFlightEvent& ev : chain) {
      // Causal window: only slashes at/after this spam's publish.
      if (tree.has_origin && ev.event.at_ns < tree.publish_ns) continue;
      if (!first_slash) out += ",";
      first_slash = false;
      out += "{";
      append_u64(out, "node", ev.node);
      append_u64(out, "at_ns", ev.event.at_ns);
      append_u64(out, "epoch", ev.event.epoch);
      out += "\"detail\":\"" + json_escape(ev.event.detail) + "\"}";
    }
    out += "]}";
  }
  out += "],";
  append_u64(out, "slash_events", chain.size(), /*comma=*/false);
  out += "}";
  return out;
}

}  // namespace waku::obs
