#include "telemetry.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace waku::obs {

namespace {

constexpr int kKindCounter = 0;
constexpr int kKindGauge = 1;
constexpr int kKindHistogram = 2;

}  // namespace

std::string format_double(double v) {
  char buf[64];
  // %.17g round-trips; trim to %g-style readability for the common
  // integral / short-fraction cases.
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Registry internals

struct Telemetry::Series {
  std::string labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Telemetry::Family {
  int kind = kKindCounter;
  std::string help;
  // map for deterministic series order within the family.
  std::map<std::string, std::unique_ptr<Series>> series;
};

Telemetry::Telemetry() = default;
Telemetry::~Telemetry() = default;

Telemetry::Series& Telemetry::series(const std::string& family,
                                     const std::string& labels,
                                     const std::string& help, int kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& fam = families_[family];
  if (!fam) {
    fam = std::make_unique<Family>();
    fam->kind = kind;
    fam->help = help;
  } else if (fam->kind != kind) {
    throw std::logic_error("telemetry family '" + family +
                           "' registered with two different kinds");
  }
  if (!fam->help.empty() && !help.empty() && fam->help != help) {
    // keep the first help string; mismatches are harmless.
  } else if (fam->help.empty()) {
    fam->help = help;
  }
  auto& s = fam->series[labels];
  if (!s) {
    s = std::make_unique<Series>();
    s->labels = labels;
    switch (kind) {
      case kKindCounter: s->counter = std::make_unique<Counter>(); break;
      case kKindGauge: s->gauge = std::make_unique<Gauge>(); break;
      default: s->histogram = std::make_unique<Histogram>(); break;
    }
  }
  return *s;
}

Counter& Telemetry::counter(const std::string& family,
                            const std::string& labels,
                            const std::string& help) {
  return *series(family, labels, help, kKindCounter).counter;
}

Gauge& Telemetry::gauge(const std::string& family, const std::string& labels,
                        const std::string& help) {
  return *series(family, labels, help, kKindGauge).gauge;
}

Histogram& Telemetry::histogram(const std::string& family,
                                const std::string& labels,
                                const std::string& help) {
  return *series(family, labels, help, kKindHistogram).histogram;
}

std::string Telemetry::to_prometheus() const {
  PrometheusWriter w;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, fam] : families_) {
    const char* type = fam->kind == kKindCounter   ? "counter"
                       : fam->kind == kKindGauge   ? "gauge"
                                                   : "histogram";
    w.help_type(name, type, fam->help);
    // Latency histograms are recorded in ns and exposed in seconds;
    // the convention is encoded in the family suffix.
    const bool seconds = name.size() >= 8 &&
                         name.compare(name.size() - 8, 8, "_seconds") == 0;
    for (const auto& [labels, s] : fam->series) {
      switch (fam->kind) {
        case kKindCounter:
          w.counter(name, labels, s->counter->value());
          break;
        case kKindGauge:
          w.gauge(name, labels, s->gauge->value());
          break;
        default:
          w.histogram(name, labels, s->histogram->snapshot(),
                      seconds ? 1e-9 : 1.0);
          break;
      }
    }
  }
  return w.text();
}

std::string Telemetry::to_json() const {
  std::string out = "{";
  std::lock_guard<std::mutex> lock(mu_);
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    if (!first_fam) out += ",";
    first_fam = false;
    out += "\"" + name + "\":[";
    bool first = true;
    for (const auto& [labels, s] : fam->series) {
      if (!first) out += ",";
      first = false;
      out += "{\"labels\":\"";
      for (char c : labels) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += "\",";
      char buf[160];
      switch (fam->kind) {
        case kKindCounter:
          std::snprintf(buf, sizeof(buf), "\"value\":%" PRIu64,
                        s->counter->value());
          out += buf;
          break;
        case kKindGauge:
          out += "\"value\":" + format_double(s->gauge->value());
          break;
        default: {
          const auto snap = s->histogram->snapshot();
          std::snprintf(buf, sizeof(buf),
                        "\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                        ",\"p50\":%" PRIu64 ",\"p95\":%" PRIu64
                        ",\"p99\":%" PRIu64,
                        snap.count, snap.sum, snap.p50, snap.p95, snap.p99);
          out += buf;
          break;
        }
      }
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// PrometheusWriter

void PrometheusWriter::help_type(const std::string& family,
                                 const std::string& type,
                                 const std::string& help) {
  out_ += "# HELP " + family + " " +
          (help.empty() ? std::string("(no help)") : help) + "\n";
  out_ += "# TYPE " + family + " " + type + "\n";
}

void PrometheusWriter::sample(const std::string& family,
                              const std::string& labels,
                              const std::string& value) {
  out_ += family;
  if (!labels.empty()) {
    out_ += "{" + labels + "}";
  }
  out_ += " " + value + "\n";
}

void PrometheusWriter::counter(const std::string& family,
                               const std::string& labels,
                               std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  sample(family, labels, buf);
}

void PrometheusWriter::gauge(const std::string& family,
                             const std::string& labels, double value) {
  sample(family, labels, format_double(value));
}

void PrometheusWriter::histogram(const std::string& family,
                                 const std::string& labels,
                                 const HistogramSnapshot& snap, double scale) {
  // Collapse the log2 buckets to the non-empty prefix plus one empty
  // tail bucket, so a fresh histogram is 2 lines, not 41. The +Inf
  // bucket always closes the series.
  std::size_t last = 0;
  for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
    if (snap.bucket_counts[i] != 0) last = i + 1;
  }
  if (last >= snap.bucket_counts.size()) last = snap.bucket_counts.size() - 1;
  std::uint64_t cumulative = 0;
  char buf[64];
  for (std::size_t i = 0; i <= last; ++i) {
    cumulative += snap.bucket_counts[i];
    const double le =
        static_cast<double>(HistogramSnapshot::bucket_upper(i)) * scale;
    std::string ls = labels.empty() ? "" : labels + ",";
    ls += "le=\"" + format_double(le) + "\"";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, cumulative);
    sample(family + "_bucket", ls, buf);
  }
  {
    std::string ls = labels.empty() ? "" : labels + ",";
    ls += "le=\"+Inf\"";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, snap.count);
    sample(family + "_bucket", ls, buf);
  }
  sample(family + "_sum", labels,
         format_double(static_cast<double>(snap.sum) * scale));
  std::snprintf(buf, sizeof(buf), "%" PRIu64, snap.count);
  sample(family + "_count", labels, buf);
}

}  // namespace waku::obs
