#include "obs/recorder.hpp"

#include <cinttypes>
#include <cstdio>

namespace waku::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FlightEvent::to_json() const {
  char buf[64];
  std::string out = "{";
  std::snprintf(buf, sizeof buf, "\"at_ns\":%" PRIu64 ",\"epoch\":%" PRIu64,
                at_ns, epoch);
  out += buf;
  out += ",\"kind\":\"" + json_escape(kind) + "\"";
  out += ",\"detail\":\"" + json_escape(detail) + "\"}";
  return out;
}

void FlightRecorder::record(std::uint64_t at_ns, std::uint64_t epoch,
                            std::string kind, std::string detail) {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(FlightEvent{at_ns, epoch, std::move(kind),
                              std::move(detail)});
  ++recorded_;
  while (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++evicted_;
  }
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::uint64_t FlightRecorder::evicted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::string FlightRecorder::postmortem_json(const std::string& reason) const {
  const std::lock_guard<std::mutex> lock(mu_);
  char buf[64];
  std::string out = "{\"reason\":\"" + json_escape(reason) + "\",";
  std::snprintf(buf, sizeof buf,
                "\"recorded\":%" PRIu64 ",\"evicted\":%" PRIu64 ",", recorded_,
                evicted_);
  out += buf;
  out += "\"events\":[";
  bool first = true;
  for (const FlightEvent& ev : ring_) {
    if (!first) out += ",";
    first = false;
    out += ev.to_json();
  }
  out += "]}";
  return out;
}

}  // namespace waku::obs
