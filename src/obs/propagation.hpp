// Cross-node propagation assembly: merges per-node TraceCollector rings
// into one causal tree per sampled message.
//
// Every node makes the same 1-in-N sampling decision for a message (the
// trace key is content-derived — see waku::trace_key), so the per-node
// rings collected from a fleet partition by key into complete cross-node
// views with no wire-format change (the Dapper model). The assembler
// ingests each node's completed traces tagged with the node id, rebuilds
// the hop graph from the hop-direction details the router/node layers
// stamp on events ("rx ... from=P", "fwd ... to=P", "dup ... from=P"),
// and rolls the trees up into network-level health: propagation
// p50/p95/p99 (publish -> last honest delivery), hop-count distribution,
// mesh redundancy (duplicate rx / useful rx), and reachability
// (delivered / subscribed). Virtual-clock timestamps are comparable
// across simulated nodes, so per-hop latencies need no clock alignment.
//
// Ingestion is idempotent: the harness re-collects rings every epoch,
// and re-offering the same (node, key) trace keeps the version with the
// most events. Output iterates sorted containers only — a deterministic
// run assembles byte-identical JSON.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace waku::obs {

/// Sentinel for "no peer recorded" (hop provenance absent).
inline constexpr std::uint64_t kNoPeer = ~std::uint64_t{0};

/// One node's view of one traced message, folded from its trace events.
struct PropagationNodeView {
  std::uint64_t node = kNoPeer;
  /// Hop distance from the origin over first-rx provenance edges;
  /// -1 when unresolvable (missing origin or broken parent chain).
  int depth = -1;
  std::uint64_t first_rx_ns = 0;
  std::uint64_t from = kNoPeer;  ///< first-rx provenance peer
  std::string verdict;           ///< last validation verdict ("" = none seen)
  bool delivered = false;
  std::uint64_t deliver_ns = 0;
  std::size_t forwards = 0;      ///< outbound "fwd" hops from this node
  std::size_t duplicate_rx = 0;  ///< "dup" receipts at this node
  bool truncated = false;        ///< this node's span closed as "truncated"
  std::uint64_t span_start_ns = 0;
  std::uint64_t span_end_ns = 0;
};

/// The reconstructed cross-node propagation tree for one trace key.
struct PropagationTree {
  TraceKey key = 0;
  bool has_origin = false;
  std::uint64_t origin_node = kNoPeer;
  std::uint64_t publish_ns = 0;
  bool has_shard = false;
  std::uint16_t shard = 0;
  std::size_t deliveries = 0;      ///< nodes that delivered (origin included)
  std::uint64_t last_delivery_ns = 0;
  std::size_t useful_rx = 0;       ///< nodes with >=1 first receipt
  std::size_t duplicate_rx = 0;    ///< duplicate receipts across all nodes
  std::size_t rejections = 0;      ///< nodes whose verdict was a reject
  int max_delivery_depth = -1;     ///< deepest delivering node
  int reject_depth = -1;           ///< shallowest rejecting node (-1 = none)
  bool truncated = false;          ///< any contributing span truncated
  /// Origin seen, >=1 delivery beyond the origin, nothing truncated.
  bool complete = false;
  /// Spam signature: rejected somewhere and never delivered off-origin.
  bool rejected = false;
  /// Anchored at a node marked adversary (mark_adversary): either the
  /// traced origin, or — for rootless trees — a contributing node that
  /// never received the message itself. Adversaries do not emit honest
  /// publish telemetry, so their trees are attack evidence, not failed
  /// honest reconstructions.
  bool adversary_origin = false;
  std::vector<PropagationNodeView> nodes;  ///< sorted by node id

  /// publish -> last delivery; 0 when either end is missing.
  [[nodiscard]] std::uint64_t latency_ns() const {
    return (has_origin && last_delivery_ns > publish_ns)
               ? last_delivery_ns - publish_ns
               : 0;
  }
  [[nodiscard]] std::string to_json() const;
};

/// Network-level rollup over every assembled tree.
struct PropagationSummary {
  std::size_t trees = 0;
  std::size_t complete_trees = 0;
  /// Neither complete, rejected, nor adversary-anchored: origin missing,
  /// zero deliveries, or a truncated contributing span — surfaced, never
  /// silently skipped.
  std::size_t incomplete_trees = 0;
  std::size_t rejected_trees = 0;
  /// Trees anchored at a marked adversary (within-quota spam that was
  /// accepted fleet-wide lands here, not in rejected_trees).
  std::size_t adversary_trees = 0;
  std::uint64_t p50_ns = 0;  ///< publish -> last delivery, complete trees
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  double redundancy_ratio = 0.0;  ///< duplicate rx / useful rx
  double reachability = 1.0;      ///< sum delivered / sum subscribed
  /// hop_histogram[d] = delivering nodes at depth d (complete trees).
  std::vector<std::size_t> hop_histogram;

  [[nodiscard]] std::string to_json() const;
};

class PropagationAssembler {
 public:
  /// Offer one node's trace ring (completed() and/or slowest()); tag is
  /// the node id the traces were collected from. Idempotent per
  /// (node, key): the version with the most events wins, so per-epoch
  /// re-collection of a ring neither duplicates nor regresses a tree.
  void ingest(std::uint64_t node_id, const std::vector<Trace>& traces);

  /// Offer a node's flight-recorder events for the forensics view (only
  /// "slash" events are retained; the rest of the ring stays with the
  /// node's own postmortem path).
  void ingest_flight(std::uint64_t node_id,
                     const std::vector<FlightEvent>& events);

  /// Reachability denominators: how many nodes subscribe the shard a
  /// tree propagated on. Unset shards fall back to the default; with
  /// neither, reachability reports 1.0 (no denominator to judge by).
  void set_subscribers(std::uint16_t shard, std::size_t count);
  void set_default_subscribers(std::size_t count);

  /// Declare a node adversary-controlled: trees it originates (traced or
  /// rootless) classify as attack trees and feed the forensics view
  /// instead of counting against honest reconstruction.
  void mark_adversary(std::uint64_t node) { adversaries_.insert(node); }

  /// Rebuild every tree, sorted by trace key.
  [[nodiscard]] std::vector<PropagationTree> assemble() const;
  [[nodiscard]] PropagationSummary summary() const;

  /// The summary plus per-tree detail — the ScenarioVerdict embed.
  [[nodiscard]] std::string summary_json() const;

  /// Chrome trace-event format ({"traceEvents": [...]}, ts/dur in
  /// microseconds, pid = node id) — loads in chrome://tracing and
  /// Perfetto: one named span per (message, node) plus per-node process
  /// metadata.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Per-attack causal chains: for each rejected (spam) tree, the
  /// cross-node rx/verdict observations stitched with the slash flight
  /// events that followed the publish (commit -> member_slashed).
  [[nodiscard]] std::string forensics_json() const;

  [[nodiscard]] std::size_t ingested_traces() const;
  [[nodiscard]] std::size_t ingested_nodes() const { return nodes_seen_; }

 private:
  [[nodiscard]] PropagationTree build_tree(
      TraceKey key, const std::map<std::uint64_t, Trace>& per_node) const;

  // key -> (node id -> that node's best trace for the key).
  std::map<TraceKey, std::map<std::uint64_t, Trace>> by_key_;
  // "slash" flight events, tagged with the recording node.
  struct TaggedFlightEvent {
    std::uint64_t node = 0;
    FlightEvent event;
  };
  std::vector<TaggedFlightEvent> slash_events_;
  std::set<std::uint64_t> adversaries_;
  std::map<std::uint16_t, std::size_t> subscribers_;
  std::size_t default_subscribers_ = 0;
  std::size_t nodes_seen_ = 0;
  std::map<std::uint64_t, bool> known_nodes_;
};

}  // namespace waku::obs
