// Sampled message-lifecycle spans.
//
// A message is traced when its 64-bit trace key (content-derived; see
// waku::trace_key) selects into the 1-in-N sample. The decision is a
// pure function of the key, so EVERY node in the network makes the same
// decision for the same message without any wire-format change — the
// per-node trace rings can be merged offline into one cross-node view.
//
// Lifecycle: record(key, stage, detail) appends an event to the open
// trace for `key` (opening it on first sight); finish(key, outcome)
// closes it, moving it into the bounded completed ring and, when its
// end-to-end duration ranks among the K worst, into the slow ring.
// Sampling is checked lock-free; only the sampled 1-in-N path takes the
// collector mutex.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "clock.hpp"

namespace waku::obs {

using TraceKey = std::uint64_t;

struct TraceEvent {
  std::uint64_t at_ns = 0;
  std::string stage;   // "publish", "rx", "verdict", "deliver", ...
  std::string detail;  // free-form: peer id, shard, verdict reason
};

struct Trace {
  TraceKey key = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::string outcome;  // "deliver", a reject reason, or "truncated"
  std::vector<TraceEvent> events;

  [[nodiscard]] std::uint64_t duration_ns() const {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
  [[nodiscard]] std::string to_json() const;
};

struct TraceCollectorConfig {
  // 0 disables tracing entirely; 1 traces everything; N samples 1-in-N.
  std::uint32_t sample_every = 0;
  std::size_t completed_ring = 256;  // most recent finished traces
  std::size_t slow_ring = 16;        // K worst end-to-end traces
  std::size_t max_open = 1024;       // open-trace cap; excess truncates
  std::size_t max_events_per_trace = 64;
};

struct TraceCollectorStats {
  std::uint64_t sampled = 0;    // traces opened
  std::uint64_t finished = 0;   // traces closed normally
  std::uint64_t evicted = 0;    // completed-ring evictions
  std::uint64_t truncated = 0;  // open traces force-closed (cap hit)
};

class TraceCollector {
 public:
  TraceCollector() = default;
  explicit TraceCollector(TraceCollectorConfig config)
      : config_(config) {}

  [[nodiscard]] const TraceCollectorConfig& config() const { return config_; }

  // Pure sampling predicate — no locks, callable from any thread. The
  // key is mixed (splitmix64) before the modulus so sequential or
  // low-entropy keys still sample uniformly.
  [[nodiscard]] bool sampled(TraceKey key) const noexcept {
    return config_.sample_every != 0 && mix(key) % config_.sample_every == 0;
  }

  // Append an event to the trace for `key` (no-op unless sampled).
  void record(TraceKey key, std::uint64_t at_ns, std::string stage,
              std::string detail = "");

  // Close the trace for `key` (no-op unless sampled and open).
  void finish(TraceKey key, std::uint64_t at_ns, std::string outcome);

  // Append a hop event to the trace for `key` WITHOUT opening one: hop
  // events legitimately arrive after the local span closed (gossipsub
  // delivers locally before relaying, so "fwd" sends follow the deliver
  // finish; a "dup" receipt by definition follows the first rx).
  // Attaches to the open trace if any, else to the newest completed-ring
  // entry for the key; dropped once the ring has evicted it.
  void annotate(TraceKey key, std::uint64_t at_ns, std::string stage,
                std::string detail = "");

  [[nodiscard]] TraceCollectorStats stats() const;
  [[nodiscard]] std::size_t open_count() const;

  // Completed ring (oldest first) and slow ring (worst first).
  [[nodiscard]] std::vector<Trace> completed() const;
  [[nodiscard]] std::vector<Trace> slowest() const;

  // {"completed": [...], "slowest": [...], "stats": {...}}
  [[nodiscard]] std::string to_json() const;

  static std::uint64_t mix(std::uint64_t x) noexcept {
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  void close_locked(Trace trace, std::uint64_t at_ns, std::string outcome);

  TraceCollectorConfig config_;
  mutable std::mutex mu_;
  // open traces keyed by trace key; insertion order tracked for the
  // oldest-first truncation when max_open is hit.
  std::unordered_map<TraceKey, Trace> open_;
  std::deque<TraceKey> open_order_;
  std::deque<Trace> completed_;
  std::vector<Trace> slow_;  // kept sorted, worst (longest) first
  TraceCollectorStats stats_;
};

}  // namespace waku::obs
