// Lock-cheap in-node telemetry: counters, gauges, log2 latency
// histograms, and a named registry with Prometheus-text / JSON
// exposition.
//
// Design constraints (ISSUE 7):
//   * the record path takes NO locks — counters are per-lane sharded
//     atomics (one cache line per lane so the executor's workers never
//     bounce a line), histograms are arrays of relaxed atomics;
//   * registration is rare and mutex-protected; returned references are
//     stable for the registry's lifetime (unique_ptr storage);
//   * histograms bucket by log2 of the recorded value (nanoseconds on
//     every latency family) and reconstruct p50/p95/p99 from the bucket
//     counts at snapshot time — a snapshot is a read of ~40 atomics, no
//     stop-the-world.
//
// Metric naming scheme (see src/obs/README.md): families are
// `waku_<subsystem>_<what>[_unit][_total]`, labels are rendered into the
// registered name at registration time (`waku_pipeline_verdicts_total`
// + `{shard="0",reason="accept"}`). Counters end in `_total`, latency
// histograms in `_seconds` (recorded in ns, scaled 1e-9 at exposition).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace waku::obs {

// ---------------------------------------------------------------------------
// Counter: monotonically increasing, sharded across cache-line-padded
// lanes so concurrent writers (executor workers) do not contend on one
// atomic. Reads sum the lanes; monotone per-lane, so value() never goes
// backwards even against concurrent increments.

class Counter {
 public:
  static constexpr std::size_t kLanes = 8;

  void add(std::uint64_t delta) noexcept {
    lanes_[lane_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& lane : lanes_) {
      total += lane.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> v{0};
  };

  // Threads are spread round-robin over the lanes; the assignment is
  // made once per thread (thread_local) so the hot path is an indexed
  // relaxed fetch_add.
  static std::size_t lane_index() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t mine =
        next.fetch_add(1, std::memory_order_relaxed) % kLanes;
    return mine;
  }

  std::array<Lane, kLanes> lanes_{};
};

// ---------------------------------------------------------------------------
// Gauge: last-write-wins double. Single atomic — gauges are written from
// one place (upkeep tick / snapshot) and read rarely.

class Gauge {
 public:
  void set(double v) noexcept { bits_.store(pack(v), std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return unpack(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t pack(double v) noexcept {
    return std::bit_cast<std::uint64_t>(v);
  }
  static double unpack(std::uint64_t b) noexcept {
    return std::bit_cast<double>(b);
  }
  std::atomic<std::uint64_t> bits_{pack(0.0)};
};

// ---------------------------------------------------------------------------
// Histogram: log2-bucketed, lock-free. Bucket i holds values v with
// bit_width(v) == i, i.e. bucket 0 is {0}, bucket i (i>=1) is
// [2^(i-1), 2^i - 1]; everything with bit_width > kBuckets-1 lands in
// the overflow bucket. Upper bound of bucket i is 2^i - 1 (inclusive),
// which is what the quantile walk and the Prometheus `le` labels use.

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  // same unit as recorded values (ns for latency)
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  // bucket_counts[i] = observations in bucket i (NOT cumulative).
  std::vector<std::uint64_t> bucket_counts;

  // Upper (inclusive) bound of bucket i: 0 for bucket 0, else 2^i - 1.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }
};

class Histogram {
 public:
  // 40 finite buckets cover [0, 2^39-1] ns ≈ 9.2 min — far beyond any
  // per-stage latency; the last slot is the overflow bucket.
  static constexpr std::size_t kBuckets = 40;

  void record(std::uint64_t v) noexcept {
    std::size_t i = static_cast<std::size_t>(std::bit_width(v));
    if (i >= kBuckets) i = kBuckets - 1;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  // Quantiles are the upper bound of the bucket the target rank falls
  // in — a <=2x overestimate by construction, which is the precision the
  // log2 layout buys. Taken against a self-consistent copy of the
  // bucket array (concurrent records may land between the loads; the
  // quantile walk uses its own bucket sum so ranks always resolve).
  [[nodiscard]] HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.bucket_counts.resize(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += s.bucket_counts[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    s.p50 = quantile(s, 0.50);
    s.p95 = quantile(s, 0.95);
    s.p99 = quantile(s, 0.99);
    return s;
  }

 private:
  static std::uint64_t quantile(const HistogramSnapshot& s, double q) {
    if (s.count == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(s.count - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
      seen += s.bucket_counts[i];
      if (seen >= target) return HistogramSnapshot::bucket_upper(i);
    }
    return HistogramSnapshot::bucket_upper(s.bucket_counts.size() - 1);
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// Scoped stage timer: reads the clock on entry and records the delta
// into the histogram on destruction. Both clock and histogram may be
// null — then the timer is a no-op (telemetry disabled), costing two
// pointer tests and no clock reads.

class Clock;

// ---------------------------------------------------------------------------
// Telemetry registry. Names are full series names with labels already
// rendered (e.g. `waku_pipeline_stage_seconds{stage="root_check",shard="0"}`
// is registered under family "waku_pipeline_stage_seconds" with label
// string `stage="root_check",shard="0"`). Registration takes the mutex;
// the returned references are stable and lock-free to use.

class Telemetry {
 public:
  Telemetry();
  ~Telemetry();  // out-of-line: Family is incomplete here
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  Counter& counter(const std::string& family, const std::string& labels = "",
                   const std::string& help = "");
  Gauge& gauge(const std::string& family, const std::string& labels = "",
               const std::string& help = "");
  Histogram& histogram(const std::string& family,
                       const std::string& labels = "",
                       const std::string& help = "");

  // Prometheus text exposition of every registered family. Histogram
  // families registered with a name ending in "_seconds" are assumed to
  // record nanoseconds and are scaled by 1e-9.
  [[nodiscard]] std::string to_prometheus() const;

  // JSON object {family: {series...}} of the same data (quantiles
  // included for histograms).
  [[nodiscard]] std::string to_json() const;

 private:
  struct Series;
  struct Family;
  Series& series(const std::string& family, const std::string& labels,
                 const std::string& help, int kind);

  mutable std::mutex mu_;
  // map keeps exposition ordering deterministic.
  std::map<std::string, std::unique_ptr<Family>> families_;
};

// ---------------------------------------------------------------------------
// PrometheusWriter: the exposition primitives, shared between the
// registry and ad-hoc snapshot metrics (executor lanes, nullifier-log
// gauges) so every emitted family goes through the same formatting —
// and therefore the same scripts/check_metrics_format.py rules.

class PrometheusWriter {
 public:
  void help_type(const std::string& family, const std::string& type,
                 const std::string& help);
  void counter(const std::string& family, const std::string& labels,
               std::uint64_t value);
  void gauge(const std::string& family, const std::string& labels,
             double value);
  // scale multiplies bucket bounds and sum (1e-9 renders ns as seconds).
  void histogram(const std::string& family, const std::string& labels,
                 const HistogramSnapshot& snap, double scale);

  [[nodiscard]] const std::string& text() const { return out_; }

 private:
  void sample(const std::string& family, const std::string& labels,
              const std::string& value);
  std::string out_;
};

[[nodiscard]] std::string format_double(double v);

}  // namespace waku::obs
