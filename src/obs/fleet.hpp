// Fleet observability plane: cross-node aggregation + declarative SLO
// anomaly rules.
//
// The paper's spam-protection guarantees (>=99% honest delivery, bounded
// time-to-slash) are FLEET-level properties no single node's
// metrics_text() can attest to. FleetAggregator consumes one
// NodeHealthSample per node per epoch — a generic struct, so this layer
// stays in waku_obs (links only waku_common) and both the simulator's
// campaigns and a single node's self-monitor can feed it — and
// materializes one FleetEpochSeries row per epoch: honest-delivery
// ratio, spam-containment drift, per-shard validate-p95 spread, quota
// saturation, nullifier-log growth. Exposition reuses PrometheusWriter
// so the fleet families obey the same format rules (and the same
// scripts/check_metrics_format.py lint) as every in-node family.
//
// AnomalyEngine evaluates declarative SLO rules over the series with
// trip/clear hysteresis — an anomaly fires after `trip_epochs`
// consecutive bad epochs and clears after `clear_epochs` good ones, so a
// single noisy epoch neither pages nor silences. Verdicts are structured
// (rule, firing, changed, observed, threshold); the owner journals
// firings to its FlightRecorder and lets the operator loop consume them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace waku::obs {

/// One node's per-shard health contribution.
struct ShardHealth {
  std::uint16_t shard = 0;
  double p95_validate_ms = 0.0;
};

/// One node's health scrape for one epoch. Counters are cumulative (the
/// aggregator diffs totals across epochs itself where growth matters).
/// The honest/spam fields are experiment ground truth only a harness
/// knows; a node self-monitoring leaves them 0 (ratio defaults to 1).
struct NodeHealthSample {
  std::uint64_t node_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t accepted = 0;
  std::uint64_t spam_detected = 0;
  std::uint64_t honest_delivered = 0;  ///< sim-fed; 0 = unknown
  std::uint64_t honest_ideal = 0;      ///< sim-fed; 0 = unknown
  std::uint64_t spam_sent = 0;         ///< sim-fed; 0 = unknown
  std::uint64_t spam_delivered = 0;    ///< sim-fed
  std::uint64_t log_entries = 0;
  std::uint64_t executor_rejected = 0;
  /// Fraction of this node's per-shard publish quota consumed this epoch.
  double quota_saturation = 0.0;
  std::vector<ShardHealth> shards;
};

/// One materialized fleet-level row (one epoch).
struct FleetEpochSeries {
  std::uint64_t epoch = 0;
  std::size_t nodes_reporting = 0;
  /// sum(honest_delivered) / sum(honest_ideal); 1.0 when ideal is 0.
  double honest_delivery_ratio = 1.0;
  /// 1 - sum(spam_delivered)/sum(spam_sent); 1.0 when no spam was sent.
  double containment_ratio = 1.0;
  /// Previous epoch's containment minus this one (positive = regression).
  double containment_drift = 0.0;
  /// max - min across every (node, shard) p95 that reported (> 0).
  double p95_spread_ms = 0.0;
  double max_p95_ms = 0.0;
  /// Mean per-node quota saturation.
  double quota_saturation = 0.0;
  std::uint64_t total_log_entries = 0;
  /// Delta of total_log_entries vs the previous row (memory slope).
  double log_growth_per_epoch = 0.0;
  std::uint64_t executor_rejected = 0;
  /// Mesh-level propagation health, fed by set_propagation() from a
  /// PropagationAssembler rollup. All-defaults (p95 = 0) means no
  /// tracing lane feeds this aggregator — a node self-monitoring without
  /// cross-node traces stays healthy on the propagation SLO rule.
  double propagation_p95_ms = 0.0;
  double propagation_redundancy = 0.0;
  double propagation_reachability = 1.0;
  std::uint64_t propagation_incomplete = 0;

  [[nodiscard]] std::string to_json() const;
};

struct FleetAggregatorConfig {
  /// Rows kept; the oldest is dropped past this (bounded like every ring).
  std::size_t history = 128;
};

class FleetAggregator {
 public:
  FleetAggregator() = default;
  explicit FleetAggregator(FleetAggregatorConfig config) : config_(config) {}

  /// Buffers one node's scrape for the epoch being assembled.
  void ingest(NodeHealthSample sample);

  /// Latest mesh-level propagation rollup (from a PropagationAssembler
  /// summary); stamped onto every subsequently closed row until updated.
  /// p95 is in milliseconds of virtual time.
  void set_propagation(double p95_ms, double redundancy, double reachability,
                       std::uint64_t incomplete_trees);

  /// Folds every buffered sample into one FleetEpochSeries row for
  /// `epoch`, appends it to history, and clears the buffer. Returns
  /// nullptr when nothing was ingested since the last close.
  const FleetEpochSeries* close_epoch(std::uint64_t epoch);

  [[nodiscard]] const std::vector<FleetEpochSeries>& history() const {
    return history_;
  }
  [[nodiscard]] const FleetEpochSeries* latest() const {
    return history_.empty() ? nullptr : &history_.back();
  }

  /// Prometheus text for the latest row (waku_fleet_* families); empty
  /// until the first close_epoch.
  [[nodiscard]] std::string to_prometheus() const;
  /// JSON array of every retained row, oldest first — the fleet-health
  /// timeline embedded in scenario verdicts.
  [[nodiscard]] std::string timeline_json() const;

 private:
  FleetAggregatorConfig config_;
  std::vector<NodeHealthSample> pending_;
  std::vector<FleetEpochSeries> history_;
  double propagation_p95_ms_ = 0.0;
  double propagation_redundancy_ = 0.0;
  double propagation_reachability_ = 1.0;
  std::uint64_t propagation_incomplete_ = 0;
};

// -- Declarative SLO rules ----------------------------------------------------

enum class AnomalyRule : std::uint8_t {
  kDeliverySloBurn = 0,        ///< honest delivery below the SLO
  kP95BudgetBreach = 1,        ///< worst shard p95 past the latency budget
  kContainmentRegression = 2,  ///< spam containment slipping
  kMemorySlope = 3,            ///< nullifier-log growth past the cap
  kPropagationLatency = 4,     ///< mesh publish->delivery p95 past budget
};

[[nodiscard]] const char* anomaly_rule_name(AnomalyRule rule);

struct AnomalyEngineConfig {
  double delivery_slo = 0.99;          ///< the paper's >=99% bound
  double p95_budget_ms = 250.0;        ///< matches ShardLoadTracker's budget
  double containment_floor = 0.99;
  double log_growth_cap = 4096.0;      ///< entries/epoch
  /// Mesh-level publish->last-delivery p95 budget (virtual ms). Looser
  /// than the per-shard validate budget: propagation spans hops. A row
  /// with propagation_p95_ms == 0 (no tracing lane) is always healthy.
  double propagation_p95_budget_ms = 750.0;
  /// Consecutive bad epochs before a rule fires / good epochs before it
  /// clears — the hysteresis that keeps one noisy epoch from flapping.
  std::size_t trip_epochs = 2;
  std::size_t clear_epochs = 2;
};

struct AnomalyVerdict {
  AnomalyRule rule = AnomalyRule::kDeliverySloBurn;
  std::uint64_t epoch = 0;
  bool firing = false;
  bool changed = false;  ///< firing state flipped at this evaluation
  double observed = 0.0;
  double threshold = 0.0;

  [[nodiscard]] std::string to_json() const;
};

class AnomalyEngine {
 public:
  AnomalyEngine() = default;
  explicit AnomalyEngine(AnomalyEngineConfig config) : config_(config) {}

  /// Evaluates every rule against one series row; returns one verdict per
  /// rule (in AnomalyRule order) with the hysteresis state advanced.
  std::vector<AnomalyVerdict> evaluate(const FleetEpochSeries& series);

  [[nodiscard]] bool any_firing() const;
  [[nodiscard]] bool firing(AnomalyRule rule) const {
    return rules_[static_cast<std::size_t>(rule)].firing;
  }
  /// Total fire transitions (off -> on) across all rules.
  [[nodiscard]] std::uint64_t fired_total() const { return fired_total_; }
  [[nodiscard]] const AnomalyEngineConfig& config() const { return config_; }

 private:
  struct RuleState {
    std::size_t consecutive_bad = 0;
    std::size_t consecutive_good = 0;
    bool firing = false;
  };
  static constexpr std::size_t kRules = 5;

  AnomalyVerdict step(AnomalyRule rule, std::uint64_t epoch, bool bad,
                      double observed, double threshold);

  AnomalyEngineConfig config_;
  RuleState rules_[kRules];
  std::uint64_t fired_total_ = 0;
};

}  // namespace waku::obs
