#include "obs/fleet.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"

namespace waku::obs {

namespace {

void field_u64(std::string& out, const char* name, std::uint64_t v,
               bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64 "%s", name, v,
                last ? "" : ",");
  out += buf;
}

void field_f(std::string& out, const char* name, double v,
             bool last = false) {
  out += "\"";
  out += name;
  out += "\":";
  out += format_double(v);
  if (!last) out += ",";
}

}  // namespace

std::string FleetEpochSeries::to_json() const {
  std::string out = "{";
  field_u64(out, "epoch", epoch);
  field_u64(out, "nodes_reporting", nodes_reporting);
  field_f(out, "honest_delivery_ratio", honest_delivery_ratio);
  field_f(out, "containment_ratio", containment_ratio);
  field_f(out, "containment_drift", containment_drift);
  field_f(out, "p95_spread_ms", p95_spread_ms);
  field_f(out, "max_p95_ms", max_p95_ms);
  field_f(out, "quota_saturation", quota_saturation);
  field_u64(out, "total_log_entries", total_log_entries);
  field_f(out, "log_growth_per_epoch", log_growth_per_epoch);
  field_u64(out, "executor_rejected", executor_rejected);
  field_f(out, "propagation_p95_ms", propagation_p95_ms);
  field_f(out, "propagation_redundancy", propagation_redundancy);
  field_f(out, "propagation_reachability", propagation_reachability);
  field_u64(out, "propagation_incomplete", propagation_incomplete,
            /*last=*/true);
  out += "}";
  return out;
}

void FleetAggregator::ingest(NodeHealthSample sample) {
  pending_.push_back(std::move(sample));
}

void FleetAggregator::set_propagation(double p95_ms, double redundancy,
                                      double reachability,
                                      std::uint64_t incomplete_trees) {
  propagation_p95_ms_ = p95_ms;
  propagation_redundancy_ = redundancy;
  propagation_reachability_ = reachability;
  propagation_incomplete_ = incomplete_trees;
}

const FleetEpochSeries* FleetAggregator::close_epoch(std::uint64_t epoch) {
  if (pending_.empty()) return nullptr;

  FleetEpochSeries row;
  row.epoch = epoch;
  row.nodes_reporting = pending_.size();

  std::uint64_t honest_delivered = 0;
  std::uint64_t honest_ideal = 0;
  std::uint64_t spam_sent = 0;
  std::uint64_t spam_delivered = 0;
  double saturation_sum = 0.0;
  double min_p95 = 0.0;
  double max_p95 = 0.0;
  bool any_p95 = false;
  for (const NodeHealthSample& s : pending_) {
    honest_delivered += s.honest_delivered;
    honest_ideal += s.honest_ideal;
    spam_sent += s.spam_sent;
    spam_delivered += s.spam_delivered;
    row.total_log_entries += s.log_entries;
    row.executor_rejected += s.executor_rejected;
    saturation_sum += s.quota_saturation;
    for (const ShardHealth& sh : s.shards) {
      if (sh.p95_validate_ms <= 0.0) continue;  // shard never reported
      if (!any_p95) {
        min_p95 = max_p95 = sh.p95_validate_ms;
        any_p95 = true;
      } else {
        min_p95 = std::min(min_p95, sh.p95_validate_ms);
        max_p95 = std::max(max_p95, sh.p95_validate_ms);
      }
    }
  }
  if (honest_ideal > 0) {
    row.honest_delivery_ratio = static_cast<double>(honest_delivered) /
                                static_cast<double>(honest_ideal);
  }
  if (spam_sent > 0) {
    row.containment_ratio = 1.0 - static_cast<double>(spam_delivered) /
                                      static_cast<double>(spam_sent);
  }
  if (any_p95) {
    row.p95_spread_ms = max_p95 - min_p95;
    row.max_p95_ms = max_p95;
  }
  row.quota_saturation =
      saturation_sum / static_cast<double>(row.nodes_reporting);
  row.propagation_p95_ms = propagation_p95_ms_;
  row.propagation_redundancy = propagation_redundancy_;
  row.propagation_reachability = propagation_reachability_;
  row.propagation_incomplete = propagation_incomplete_;
  if (!history_.empty()) {
    const FleetEpochSeries& prev = history_.back();
    row.containment_drift = prev.containment_ratio - row.containment_ratio;
    row.log_growth_per_epoch =
        static_cast<double>(row.total_log_entries) -
        static_cast<double>(prev.total_log_entries);
  }
  pending_.clear();
  history_.push_back(row);
  while (history_.size() > config_.history) {
    history_.erase(history_.begin());
  }
  return &history_.back();
}

std::string FleetAggregator::to_prometheus() const {
  if (history_.empty()) return {};
  const FleetEpochSeries& row = history_.back();
  PrometheusWriter w;
  w.help_type("waku_fleet_epoch", "gauge", "Epoch of the latest fleet row");
  w.gauge("waku_fleet_epoch", "", static_cast<double>(row.epoch));
  w.help_type("waku_fleet_nodes_reporting", "gauge",
              "Nodes scraped into the latest fleet row");
  w.gauge("waku_fleet_nodes_reporting", "",
          static_cast<double>(row.nodes_reporting));
  w.help_type("waku_fleet_honest_delivery_ratio", "gauge",
              "Cross-node honest delivered/ideal (1 when ideal unknown)");
  w.gauge("waku_fleet_honest_delivery_ratio", "", row.honest_delivery_ratio);
  w.help_type("waku_fleet_containment_ratio", "gauge",
              "1 - spam delivered/sent across the fleet");
  w.gauge("waku_fleet_containment_ratio", "", row.containment_ratio);
  w.help_type("waku_fleet_containment_drift", "gauge",
              "Containment change vs the previous epoch (positive = worse)");
  w.gauge("waku_fleet_containment_drift", "", row.containment_drift);
  w.help_type("waku_fleet_p95_spread_seconds", "gauge",
              "Max - min per-shard validate p95 across nodes");
  w.gauge("waku_fleet_p95_spread_seconds", "", row.p95_spread_ms * 1e-3);
  w.help_type("waku_fleet_p95_max_seconds", "gauge",
              "Worst per-shard validate p95 across nodes");
  w.gauge("waku_fleet_p95_max_seconds", "", row.max_p95_ms * 1e-3);
  w.help_type("waku_fleet_quota_saturation", "gauge",
              "Mean fraction of per-shard publish quota consumed");
  w.gauge("waku_fleet_quota_saturation", "", row.quota_saturation);
  w.help_type("waku_fleet_log_entries", "gauge",
              "Total nullifier-log entries across the fleet");
  w.gauge("waku_fleet_log_entries", "",
          static_cast<double>(row.total_log_entries));
  w.help_type("waku_fleet_log_growth_per_epoch", "gauge",
              "Fleet nullifier-log entry delta vs the previous epoch");
  w.gauge("waku_fleet_log_growth_per_epoch", "", row.log_growth_per_epoch);
  w.help_type("waku_fleet_executor_rejected_total", "counter",
              "Backpressure-rejected windows across the fleet");
  w.counter("waku_fleet_executor_rejected_total", "", row.executor_rejected);
  w.help_type("waku_propagation_p95_seconds", "gauge",
              "Mesh publish->last-delivery p95 from assembled trace trees");
  w.gauge("waku_propagation_p95_seconds", "", row.propagation_p95_ms * 1e-3);
  w.help_type("waku_propagation_redundancy_ratio", "gauge",
              "Duplicate rx / useful rx across assembled trees");
  w.gauge("waku_propagation_redundancy_ratio", "", row.propagation_redundancy);
  w.help_type("waku_propagation_reachability", "gauge",
              "Delivered / subscribed across assembled trees");
  w.gauge("waku_propagation_reachability", "", row.propagation_reachability);
  w.help_type("waku_propagation_incomplete_trees", "gauge",
              "Sampled trees the assembler could not fully reconstruct");
  w.gauge("waku_propagation_incomplete_trees", "",
          static_cast<double>(row.propagation_incomplete));
  return w.text();
}

std::string FleetAggregator::timeline_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < history_.size(); ++i) {
    if (i > 0) out += ",";
    out += history_[i].to_json();
  }
  out += "]";
  return out;
}

// -- AnomalyEngine ------------------------------------------------------------

const char* anomaly_rule_name(AnomalyRule rule) {
  switch (rule) {
    case AnomalyRule::kDeliverySloBurn:
      return "delivery_slo_burn";
    case AnomalyRule::kP95BudgetBreach:
      return "p95_budget_breach";
    case AnomalyRule::kContainmentRegression:
      return "containment_regression";
    case AnomalyRule::kMemorySlope:
      return "memory_slope";
    case AnomalyRule::kPropagationLatency:
      return "propagation_latency";
  }
  return "unknown";
}

std::string AnomalyVerdict::to_json() const {
  std::string out = "{\"rule\":\"";
  out += anomaly_rule_name(rule);
  out += "\",";
  field_u64(out, "epoch", epoch);
  out += std::string("\"firing\":") + (firing ? "true" : "false") + ",";
  out += std::string("\"changed\":") + (changed ? "true" : "false") + ",";
  field_f(out, "observed", observed);
  field_f(out, "threshold", threshold, /*last=*/true);
  out += "}";
  return out;
}

AnomalyVerdict AnomalyEngine::step(AnomalyRule rule, std::uint64_t epoch,
                                   bool bad, double observed,
                                   double threshold) {
  RuleState& st = rules_[static_cast<std::size_t>(rule)];
  if (bad) {
    ++st.consecutive_bad;
    st.consecutive_good = 0;
  } else {
    ++st.consecutive_good;
    st.consecutive_bad = 0;
  }
  bool changed = false;
  if (!st.firing && st.consecutive_bad >= config_.trip_epochs) {
    st.firing = true;
    changed = true;
    ++fired_total_;
  } else if (st.firing && st.consecutive_good >= config_.clear_epochs) {
    st.firing = false;
    changed = true;
  }
  AnomalyVerdict v;
  v.rule = rule;
  v.epoch = epoch;
  v.firing = st.firing;
  v.changed = changed;
  v.observed = observed;
  v.threshold = threshold;
  return v;
}

std::vector<AnomalyVerdict> AnomalyEngine::evaluate(
    const FleetEpochSeries& s) {
  std::vector<AnomalyVerdict> out;
  out.reserve(kRules);
  out.push_back(step(AnomalyRule::kDeliverySloBurn, s.epoch,
                     s.honest_delivery_ratio < config_.delivery_slo,
                     s.honest_delivery_ratio, config_.delivery_slo));
  out.push_back(step(AnomalyRule::kP95BudgetBreach, s.epoch,
                     s.max_p95_ms > config_.p95_budget_ms, s.max_p95_ms,
                     config_.p95_budget_ms));
  out.push_back(step(AnomalyRule::kContainmentRegression, s.epoch,
                     s.containment_ratio < config_.containment_floor,
                     s.containment_ratio, config_.containment_floor));
  out.push_back(step(AnomalyRule::kMemorySlope, s.epoch,
                     s.log_growth_per_epoch > config_.log_growth_cap,
                     s.log_growth_per_epoch, config_.log_growth_cap));
  out.push_back(step(AnomalyRule::kPropagationLatency, s.epoch,
                     s.propagation_p95_ms > config_.propagation_p95_budget_ms,
                     s.propagation_p95_ms, config_.propagation_p95_budget_ms));
  return out;
}

bool AnomalyEngine::any_firing() const {
  for (const RuleState& st : rules_) {
    if (st.firing) return true;
  }
  return false;
}

}  // namespace waku::obs
