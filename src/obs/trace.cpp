#include "trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/recorder.hpp"

namespace waku::obs {

namespace {

// Shared with FlightRecorder: json_escape handles quotes, backslashes,
// AND control characters (the hand-rolled escaper this replaced produced
// invalid JSON for details containing newlines or other control bytes).
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

}  // namespace

std::string Trace::to_json() const {
  char buf[128];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "{\"key\":\"%016" PRIx64 "\",\"start_ns\":%" PRIu64
                ",\"end_ns\":%" PRIu64 ",\"duration_ns\":%" PRIu64
                ",\"outcome\":",
                key, start_ns, end_ns, duration_ns());
  out += buf;
  append_json_string(out, outcome);
  out += ",\"events\":[";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"at_ns\":%" PRIu64 ",\"stage\":",
                  ev.at_ns);
    out += buf;
    append_json_string(out, ev.stage);
    out += ",\"detail\":";
    append_json_string(out, ev.detail);
    out += "}";
  }
  out += "]}";
  return out;
}

void TraceCollector::record(TraceKey key, std::uint64_t at_ns,
                            std::string stage, std::string detail) {
  if (!sampled(key)) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(key);
  if (it == open_.end()) {
    // Opening a new trace; evict the oldest open one if at the cap so a
    // burst of never-finished messages cannot grow the map unboundedly.
    while (open_.size() >= config_.max_open && !open_order_.empty()) {
      const TraceKey victim = open_order_.front();
      open_order_.pop_front();
      auto vit = open_.find(victim);
      if (vit == open_.end()) continue;
      Trace t = std::move(vit->second);
      open_.erase(vit);
      ++stats_.truncated;
      close_locked(std::move(t), at_ns, "truncated");
    }
    Trace t;
    t.key = key;
    t.start_ns = at_ns;
    it = open_.emplace(key, std::move(t)).first;
    open_order_.push_back(key);
    ++stats_.sampled;
  }
  if (it->second.events.size() < config_.max_events_per_trace) {
    it->second.events.push_back(
        TraceEvent{at_ns, std::move(stage), std::move(detail)});
  }
}

void TraceCollector::finish(TraceKey key, std::uint64_t at_ns,
                            std::string outcome) {
  if (!sampled(key)) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(key);
  if (it == open_.end()) return;
  Trace t = std::move(it->second);
  open_.erase(it);
  // Lazy removal from open_order_ (the deque may still hold the key;
  // stale entries are skipped during eviction).
  ++stats_.finished;
  close_locked(std::move(t), at_ns, std::move(outcome));
}

void TraceCollector::annotate(TraceKey key, std::uint64_t at_ns,
                              std::string stage, std::string detail) {
  if (!sampled(key)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = open_.find(key); it != open_.end()) {
    if (it->second.events.size() < config_.max_events_per_trace) {
      it->second.events.push_back(
          TraceEvent{at_ns, std::move(stage), std::move(detail)});
    }
    return;
  }
  // Newest completed entry wins: a key reused across ring generations
  // annotates the span it actually belongs to.
  for (auto it = completed_.rbegin(); it != completed_.rend(); ++it) {
    if (it->key != key) continue;
    if (it->events.size() < config_.max_events_per_trace) {
      it->events.push_back(
          TraceEvent{at_ns, std::move(stage), std::move(detail)});
    }
    return;
  }
}

void TraceCollector::close_locked(Trace trace, std::uint64_t at_ns,
                                  std::string outcome) {
  trace.end_ns = at_ns;
  trace.outcome = std::move(outcome);

  if (config_.slow_ring > 0) {
    // Insert into the sorted-worst-first slow ring if it qualifies.
    const std::uint64_t d = trace.duration_ns();
    if (slow_.size() < config_.slow_ring || d > slow_.back().duration_ns()) {
      auto pos = std::upper_bound(
          slow_.begin(), slow_.end(), d,
          [](std::uint64_t lhs, const Trace& rhs) {
            return lhs > rhs.duration_ns();
          });
      slow_.insert(pos, trace);
      if (slow_.size() > config_.slow_ring) slow_.pop_back();
    }
  }

  completed_.push_back(std::move(trace));
  while (completed_.size() > config_.completed_ring) {
    completed_.pop_front();
    ++stats_.evicted;
  }
}

TraceCollectorStats TraceCollector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t TraceCollector::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_.size();
}

std::vector<Trace> TraceCollector::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {completed_.begin(), completed_.end()};
}

std::vector<Trace> TraceCollector::slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

std::string TraceCollector::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"completed\":[";
  bool first = true;
  for (const auto& t : completed_) {
    if (!first) out += ",";
    first = false;
    out += t.to_json();
  }
  out += "],\"slowest\":[";
  first = true;
  for (const auto& t : slow_) {
    if (!first) out += ",";
    first = false;
    out += t.to_json();
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "],\"stats\":{\"sampled\":%" PRIu64 ",\"finished\":%" PRIu64
                ",\"evicted\":%" PRIu64 ",\"truncated\":%" PRIu64
                ",\"open\":%zu}}",
                stats_.sampled, stats_.finished, stats_.evicted,
                stats_.truncated, open_.size());
  out += buf;
  return out;
}

}  // namespace waku::obs
