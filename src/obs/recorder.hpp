// FlightRecorder: a bounded ring of structured lifecycle events — the
// "what happened just before it went wrong" record the metric families
// cannot carry. Reshard phase transitions, slash commits, backpressure
// rejects, anomaly firings, operator decisions, and crash-restarts land
// here as (time, epoch, kind, detail) tuples; on any anomaly or restart
// the owner dumps the ring as a postmortem JSON.
//
// Lifecycle events are rare (epochs, not messages), so unlike the
// telemetry record path this ring is mutex-guarded — simplicity over
// lock-freedom is the right trade at one event per epoch. Bounded like
// every other obs ring (TraceCollector, health_log): the oldest event is
// evicted and counted, so a long-running node cannot leak memory into
// its own black box.
//
// Timestamps are injected by the caller (the node reads its obs::Clock),
// never read here — a deterministic run records byte-identical events.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace waku::obs {

/// Minimal JSON string escaping for event details / postmortem dumps
/// (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

struct FlightEvent {
  std::uint64_t at_ns = 0;
  std::uint64_t epoch = 0;
  std::string kind;    ///< "reshard", "operator", "slash", "anomaly", ...
  std::string detail;  ///< free-form, already rendered

  [[nodiscard]] std::string to_json() const;
};

struct FlightRecorderConfig {
  /// Ring capacity; the oldest event is evicted (and counted) past it.
  std::size_t capacity = 256;
};

class FlightRecorder {
 public:
  FlightRecorder() = default;
  explicit FlightRecorder(FlightRecorderConfig config) : config_(config) {}

  void record(std::uint64_t at_ns, std::uint64_t epoch, std::string kind,
              std::string detail);

  /// Snapshot of the ring, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;
  /// Total events ever recorded (including evicted ones).
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events dropped off the old end of the ring.
  [[nodiscard]] std::uint64_t evicted() const;

  /// The black-box dump: {"reason": ..., "recorded": N, "evicted": N,
  /// "events": [...]} — written on anomaly firings and crash-restarts.
  [[nodiscard]] std::string postmortem_json(const std::string& reason) const;

  [[nodiscard]] const FlightRecorderConfig& config() const { return config_; }

 private:
  FlightRecorderConfig config_;
  mutable std::mutex mu_;
  std::deque<FlightEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace waku::obs
