// Node-level observability configuration (embedded in NodeConfig).
#pragma once

#include <cstddef>

#include "clock.hpp"
#include "recorder.hpp"
#include "trace.hpp"

namespace waku::obs {

struct ObsConfig {
  // Master switch: when false the node wires no clock into the pipeline
  // or executor, records nothing, and metrics_text() emits only the
  // always-cheap counters that exist anyway (NodeStats, RouterStats).
  bool enabled = true;

  // Message-lifecycle span sampling; 0 = tracing off (the default: the
  // deterministic tier-1 suites do not pay even the per-message key
  // hash unless a test opts in).
  TraceCollectorConfig trace;

  // Ring of epoch-boundary health snapshots (JSON lines) kept in
  // memory for operators; see WakuRlnRelayNode::health_log().
  std::size_t health_log_capacity = 64;

  // Flight-recorder ring of structured lifecycle events (reshard phase
  // transitions, slashes, backpressure rejects, anomaly firings,
  // operator decisions); dumped as a postmortem JSON on any anomaly
  // firing or crash-restart. Gated by `enabled` like everything else.
  FlightRecorderConfig recorder;

  // Clock override. nullptr = the node derives time from its own
  // environment: sim-driven nodes wrap the network's virtual clock
  // (deterministic), so wall-clock only enters when a caller injects
  // obs::steady_clock() (benches, real deployments).
  const Clock* clock = nullptr;
};

}  // namespace waku::obs
