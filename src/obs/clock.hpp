// Injected time source for the observability layer (src/obs).
//
// Every latency number telemetry records flows through one of these
// clocks, never through a direct std::chrono call on the hot path. That
// indirection is what keeps the deterministic simulator deterministic
// with telemetry on: sim-driven nodes read virtual time (a FnClock over
// net::Network::local_time), so a telemetry-enabled tier-1 run makes the
// exact same clock observations on every execution, while benches and
// real deployments inject SteadyClock for wall-clock latencies.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace waku::obs {

/// Monotonic nanosecond time source. Implementations must be safe to call
/// from multiple threads (the executor's workers read it concurrently).
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;
};

/// Wall-clock monotonic time (std::chrono::steady_clock).
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Process-wide steady clock instance (the common non-sim default).
[[nodiscard]] inline const Clock& steady_clock() {
  static const SteadyClock clock;
  return clock;
}

/// Function-backed clock: the simulator wraps its virtual time source
/// here (milliseconds of sim time scaled to ns), tests wrap a settable
/// integer. The callable must itself be thread-safe if the clock is read
/// from worker threads.
class FnClock final : public Clock {
 public:
  explicit FnClock(std::function<std::uint64_t()> now_ns)
      : now_ns_(std::move(now_ns)) {}
  [[nodiscard]] std::uint64_t now_ns() const override { return now_ns_(); }

 private:
  std::function<std::uint64_t()> now_ns_;
};

}  // namespace waku::obs
