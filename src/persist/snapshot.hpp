// Snapshot engine: full-state checkpoints written atomically next to the
// WAL, so restart cost is O(state) instead of O(history).
//
// Each snapshot is one file, `snapshot-<generation>.snap`:
//
//   magic "WSNP" (4) | version u8 | generation u64 LE | last_lsn u64 LE
//   | payload_len u32 LE | crc32c(payload) u32 LE | payload
//
// Writes go to a `.tmp` sibling first and are renamed into place — a crash
// mid-write leaves at most a dangling temp file, never a half-written
// `.snap`. Generations are monotonically increasing; the engine keeps the
// newest `keep` generations so a corrupt latest (e.g. media error) still
// falls back to its predecessor on load.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace waku::persist {

struct SnapshotMeta {
  std::uint64_t generation = 0;
  /// Highest WAL LSN folded into this snapshot; replay skips records at or
  /// below it.
  std::uint64_t last_lsn = 0;
};

class SnapshotEngine {
 public:
  /// `dir` must exist (StateStore creates it). `keep` >= 1 generations are
  /// retained after each write.
  explicit SnapshotEngine(std::string dir, std::size_t keep = 2);

  /// Atomically writes a snapshot. `meta.generation` must be greater than
  /// any generation already on disk.
  void write(const SnapshotMeta& meta, BytesView payload);

  struct Loaded {
    SnapshotMeta meta;
    Bytes payload;
  };

  /// Newest snapshot that parses and CRC-checks; corrupt generations are
  /// skipped in favour of older intact ones.
  [[nodiscard]] std::optional<Loaded> load_latest() const;

  /// Highest generation present on disk (intact or not); 0 if none.
  [[nodiscard]] std::uint64_t latest_generation() const;

  [[nodiscard]] std::uint64_t snapshots_written() const {
    return snapshots_written_;
  }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::size_t keep_;
  std::uint64_t snapshots_written_ = 0;
};

}  // namespace waku::persist
