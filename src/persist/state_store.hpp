// StateStore: the facade the node talks to. Owns one directory holding a
// write-ahead log (`wal.log`) and a generation-numbered snapshot set, and
// owns the snapshot/compaction policy: every `snapshot_every_records` WAL
// appends the registered provider is asked for a full-state payload, a new
// snapshot generation is written atomically, and the WAL is truncated.
//
// Restore protocol (what a restarting owner runs, in order):
//   1. load_snapshot()  — newest intact snapshot payload, if any;
//   2. replay_wal(fn)   — records appended *after* that snapshot (LSN
//                         filtering makes this exact even if the crash
//                         landed between snapshot write and WAL reset);
//   3. resume the external event stream from whatever cursor the snapshot
//      payload recorded.
//
// The store itself is payload-agnostic: record types and snapshot layout
// belong to the owner (see rln/node.cpp for the node's schema).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "persist/snapshot.hpp"
#include "persist/wal.hpp"

namespace waku::persist {

struct StateStoreConfig {
  /// WAL appends between automatic snapshots (0 disables the automatic
  /// policy; force_snapshot() still works).
  std::size_t snapshot_every_records = 512;
  /// WAL size (bytes) that triggers a snapshot regardless of record count
  /// (0 disables). The record-count policy alone mis-sizes compaction when
  /// record payloads vary by orders of magnitude — a million-leaf group
  /// whose churn arrives as batched events writes few but huge records, so
  /// the WAL balloons long before `snapshot_every_records` fires. Either
  /// threshold crossing compacts; both counters reset on snapshot.
  std::size_t snapshot_every_bytes = 0;
  /// Snapshot generations retained on disk.
  std::size_t keep_snapshots = 2;
  /// WAL flush cadence: flush to the OS after every N appends. 1 (the
  /// default) keeps the historical always-flush write-ahead guarantee;
  /// larger values trade a bounded crash-loss window (at most N-1 records)
  /// for fewer syscalls on hot append paths. Snapshots always flush first,
  /// so the loss window never spans a snapshot boundary.
  std::size_t fsync_every_n_records = 1;
};

class StateStore {
 public:
  using SnapshotProvider = std::function<Bytes()>;
  /// `shard` is the relay-shard tag the record was appended under (0 for
  /// unsharded owners) — sharded owners use it to route each replayed
  /// record into the right per-shard state.
  using ReplayHandler = std::function<void(
      std::uint8_t type, std::uint16_t shard, BytesView payload)>;

  /// Creates `dir` if needed and opens (or creates) the WAL inside it.
  explicit StateStore(std::string dir, StateStoreConfig config = {});

  // -- Restore --------------------------------------------------------------

  /// Payload of the newest intact snapshot, if any.
  [[nodiscard]] std::optional<Bytes> load_snapshot() const;

  /// Replays WAL records not yet folded into the loaded snapshot.
  void replay_wal(const ReplayHandler& fn) const;

  // -- Operation ------------------------------------------------------------

  /// Installs the callback that renders the owner's full state when the
  /// snapshot policy fires.
  void set_snapshot_provider(SnapshotProvider provider) {
    provider_ = std::move(provider);
  }

  /// Journals one record (durable before return) and runs the snapshot
  /// policy. `shard` tags the record for per-shard recovery (see
  /// ReplayHandler); unsharded owners omit it.
  std::uint64_t append(std::uint8_t type, BytesView payload,
                       std::uint16_t shard = 0);

  /// Takes a snapshot now (no-op without a provider).
  void force_snapshot();

  /// Flushes buffered WAL appends now (see fsync_every_n_records).
  void flush_wal();

  struct Stats {
    std::uint64_t wal_records = 0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t snapshot_generation = 0;
    std::uint64_t snapshots_written = 0;
    std::uint64_t torn_bytes_dropped = 0;
    std::uint64_t wal_flushes = 0;
    std::uint64_t wal_unflushed = 0;  ///< crash-loss window right now
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  StateStoreConfig config_;
  SnapshotEngine engine_;
  WriteAheadLog wal_;
  SnapshotProvider provider_;
  /// Highest LSN covered by the snapshot set (loaded or written).
  std::uint64_t snapshot_lsn_ = 0;
  std::size_t appends_since_snapshot_ = 0;
};

}  // namespace waku::persist
