// Append-only write-ahead log: the durability primitive under StateStore.
//
// On-disk layout:
//
//   file   := magic "WWAL" (4) | version u8 | record*
//   record := body_len u32 LE | crc32c(body) u32 LE | body
//   body   := type u8 | shard u16 LE | lsn u64 LE | payload bytes
//
// `shard` is the relay-shard tag (format v2): owners running the sharded
// relay stamp each record with the shard whose state it belongs to, so a
// restart can rebuild every shard's log independently (and a reshard can
// drop records for shards the node no longer hosts) without the owner
// re-encoding the shard inside each payload. Unsharded owners leave it 0.
//
// Records carry a monotonically increasing log sequence number (LSN) that
// survives compaction (reset() truncates the file but never rewinds the
// LSN counter), so a snapshot can record "state as of LSN n" and replay
// can skip records already folded in — even if a crash lands between
// snapshot write and log truncation.
//
// Open scans the whole file and truncates a *torn tail*: the first record
// whose header is short, whose body is cut off, or whose CRC mismatches
// ends the valid prefix, and everything from there on is discarded (a
// crash mid-append must not poison the log). A corrupt file header is not
// recoverable and throws.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "common/bytes.hpp"

namespace waku::persist {

struct WalRecord {
  std::uint8_t type = 0;
  std::uint16_t shard = 0;  ///< relay-shard tag; 0 for unsharded owners
  std::uint64_t lsn = 0;
  Bytes payload;
};

class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log at `path`; truncates any torn
  /// tail. Throws std::runtime_error on an unrecognized file header or an
  /// unopenable path.
  explicit WriteAheadLog(std::string path);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record; returns the assigned LSN. Durability follows the
  /// flush policy: with flush_every == 1 (the default) every append is
  /// flushed before return (the historical always-fsync behaviour); with a
  /// larger interval, up to flush_every - 1 records may sit in the stream
  /// buffer and be lost by a crash — the bounded-loss window the owner
  /// opted into. `shard` is the relay-shard tag carried in the record
  /// header (0 for unsharded owners).
  std::uint64_t append(std::uint8_t type, BytesView payload,
                       std::uint16_t shard = 0);

  /// Sets the flush cadence: flush after every `n` appends (n >= 1).
  void set_flush_every(std::size_t n) { flush_every_ = n == 0 ? 1 : n; }

  /// Flushes any buffered appends to the OS now (snapshot barriers, owner
  /// shutdown). Throws like append() on a write error surfacing late.
  void flush();

  /// Replays every intact record in append order (re-reads from disk, so
  /// it sees exactly what a restart would).
  void replay(const std::function<void(const WalRecord&)>& fn) const;

  /// Compaction: truncates the log back to the bare header. LSNs keep
  /// counting from where they were — see the file comment.
  void reset();

  /// Raises the next LSN to at least `next_lsn`. The LSN high-water mark
  /// lives in the records themselves, so a log emptied by compaction
  /// forgets it across a restart; the StateStore re-seeds it from the
  /// snapshot's last_lsn (records must never slip under the snapshot's
  /// replay filter).
  void ensure_next_lsn(std::uint64_t next_lsn) {
    if (next_lsn > next_lsn_) next_lsn_ = next_lsn;
  }

  [[nodiscard]] std::uint64_t record_count() const { return record_count_; }
  /// Flushes performed (policy-triggered and explicit).
  [[nodiscard]] std::uint64_t flush_count() const { return flush_count_; }
  /// Appends not yet flushed — the records a crash right now would lose.
  [[nodiscard]] std::size_t unflushed_records() const { return unflushed_; }
  /// LSN of the most recently appended record (0 if none ever).
  [[nodiscard]] std::uint64_t last_lsn() const { return next_lsn_ - 1; }
  /// Current file size in bytes, header included.
  [[nodiscard]] std::uint64_t size_bytes() const { return size_bytes_; }
  /// Bytes discarded as a torn tail when the log was opened.
  [[nodiscard]] std::uint64_t torn_bytes_dropped() const {
    return torn_bytes_dropped_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t record_count_ = 0;
  std::uint64_t size_bytes_ = 0;
  std::uint64_t torn_bytes_dropped_ = 0;
  std::size_t flush_every_ = 1;
  std::size_t unflushed_ = 0;
  std::uint64_t flush_count_ = 0;
};

}  // namespace waku::persist
