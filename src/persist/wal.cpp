#include "persist/wal.hpp"

#include <filesystem>
#include <stdexcept>

#include "common/serde.hpp"
#include "persist/crc32.hpp"

namespace waku::persist {

namespace {

constexpr char kMagic[4] = {'W', 'W', 'A', 'L'};
constexpr std::uint8_t kVersion = 2;  // v2: shard tag in the record body
constexpr std::size_t kFileHeader = sizeof(kMagic) + 1;
constexpr std::size_t kRecordHeader = 4 + 4;        // body_len + crc
constexpr std::size_t kBodyPrefix = 1 + 2 + 8;      // type + shard + lsn
constexpr std::uint32_t kMaxBody = 64u << 20;       // sanity bound

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

std::uint32_t read_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

/// Walks the records in `file` (which must start with a valid header).
/// Returns the offset one past the last intact record; `fn` (if non-null)
/// sees each intact record, `last_lsn` tracks the highest LSN delivered.
std::size_t scan_records(BytesView file,
                         const std::function<void(const WalRecord&)>* fn,
                         std::uint64_t& last_lsn, std::uint64_t& count) {
  std::size_t off = kFileHeader;
  while (true) {
    if (file.size() - off < kRecordHeader) break;  // torn/short header
    const std::uint32_t body_len = read_u32_le(file.data() + off);
    const std::uint32_t crc = read_u32_le(file.data() + off + 4);
    if (body_len < kBodyPrefix || body_len > kMaxBody) break;  // garbage len
    if (file.size() - off - kRecordHeader < body_len) break;   // torn body
    const BytesView body(file.data() + off + kRecordHeader, body_len);
    if (crc32c(body) != crc) break;  // torn/corrupt record
    if (fn != nullptr) {
      ByteReader r(body);
      WalRecord rec;
      rec.type = r.read_u8();
      rec.shard = r.read_u16();
      rec.lsn = r.read_u64();
      rec.payload = r.read_raw(r.remaining());
      (*fn)(rec);
      last_lsn = rec.lsn;
    } else {
      ByteReader r(body);
      (void)r.read_u8();
      (void)r.read_u16();
      last_lsn = r.read_u64();
    }
    ++count;
    off += kRecordHeader + body_len;
  }
  return off;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path) : path_(std::move(path)) {
  namespace fs = std::filesystem;
  const Bytes existing = read_file(path_);
  if (existing.empty()) {
    // Fresh log: write the file header.
    std::ofstream header(path_, std::ios::binary | std::ios::trunc);
    if (!header) {
      throw std::runtime_error("WriteAheadLog: cannot create " + path_);
    }
    header.write(kMagic, sizeof(kMagic));
    header.put(static_cast<char>(kVersion));
    header.flush();
    size_bytes_ = kFileHeader;
  } else {
    if (existing.size() < kFileHeader ||
        !std::equal(kMagic, kMagic + sizeof(kMagic), existing.begin()) ||
        existing[4] != kVersion) {
      throw std::runtime_error("WriteAheadLog: unrecognized header in " +
                               path_);
    }
    std::uint64_t last_lsn = 0;
    const std::size_t clean_end =
        scan_records(existing, nullptr, last_lsn, record_count_);
    next_lsn_ = last_lsn + 1;
    if (clean_end < existing.size()) {
      torn_bytes_dropped_ = existing.size() - clean_end;
      fs::resize_file(path_, clean_end);
    }
    size_bytes_ = clean_end;
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("WriteAheadLog: cannot open " + path_);
  }
}

std::uint64_t WriteAheadLog::append(std::uint8_t type, BytesView payload,
                                    std::uint16_t shard) {
  const std::uint64_t lsn = next_lsn_++;
  ByteWriter body;
  body.write_u8(type);
  body.write_u16(shard);
  body.write_u64(lsn);
  body.write_raw(payload);

  ByteWriter frame;
  frame.write_u32(static_cast<std::uint32_t>(body.size()));
  frame.write_u32(crc32c(body.data()));
  frame.write_raw(body.data());
  const Bytes bytes = std::move(frame).take();
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (++unflushed_ >= flush_every_) flush();
  if (!out_) {
    // ENOSPC and friends: a WAL that silently drops records while
    // handing out LSNs defeats its purpose — fail loudly instead.
    throw std::runtime_error("WriteAheadLog: append failed on " + path_);
  }
  ++record_count_;
  size_bytes_ += bytes.size();
  return lsn;
}

void WriteAheadLog::flush() {
  if (unflushed_ == 0) return;
  out_.flush();
  if (!out_) {
    throw std::runtime_error("WriteAheadLog: flush failed on " + path_);
  }
  unflushed_ = 0;
  ++flush_count_;
}

void WriteAheadLog::replay(
    const std::function<void(const WalRecord&)>& fn) const {
  const Bytes file = read_file(path_);
  if (file.size() < kFileHeader) return;
  std::uint64_t last_lsn = 0;
  std::uint64_t count = 0;
  scan_records(file, &fn, last_lsn, count);
}

void WriteAheadLog::reset() {
  out_.close();  // implicit flush of any buffered tail before truncation
  std::filesystem::resize_file(path_, kFileHeader);
  out_.open(path_, std::ios::binary | std::ios::app);
  record_count_ = 0;
  size_bytes_ = kFileHeader;
  unflushed_ = 0;
}

}  // namespace waku::persist
