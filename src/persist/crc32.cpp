#include "persist/crc32.hpp"

#include <array>

namespace waku::persist {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC-32C, reflected

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(BytesView data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace waku::persist
