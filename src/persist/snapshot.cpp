#include "persist/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "persist/crc32.hpp"

namespace waku::persist {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'W', 'S', 'N', 'P'};
constexpr std::uint8_t kVersion = 1;
constexpr const char* kPrefix = "snapshot-";
constexpr const char* kSuffix = ".snap";

std::string snapshot_name(std::uint64_t generation) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%010llu%s", kPrefix,
                static_cast<unsigned long long>(generation), kSuffix);
  return buf;
}

/// Parses `snapshot-<gen>.snap`; nullopt for any other file name.
std::optional<std::uint64_t> parse_generation(const std::string& name) {
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t gen = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    gen = gen * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return gen;
}

/// All generations on disk, newest first.
std::vector<std::uint64_t> list_generations(const std::string& dir) {
  std::vector<std::uint64_t> gens;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (const auto gen = parse_generation(entry.path().filename().string())) {
      gens.push_back(*gen);
    }
  }
  std::sort(gens.rbegin(), gens.rend());
  return gens;
}

std::optional<SnapshotEngine::Loaded> load_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  const Bytes file{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  constexpr std::size_t kHeader = 4 + 1 + 8 + 8 + 4 + 4;
  if (file.size() < kHeader) return std::nullopt;
  if (!std::equal(kMagic, kMagic + 4, file.begin())) return std::nullopt;
  if (file[4] != kVersion) return std::nullopt;
  try {
    ByteReader r(BytesView(file.data() + 5, file.size() - 5));
    SnapshotEngine::Loaded loaded;
    loaded.meta.generation = r.read_u64();
    loaded.meta.last_lsn = r.read_u64();
    const std::uint32_t payload_len = r.read_u32();
    const std::uint32_t crc = r.read_u32();
    if (r.remaining() < payload_len) return std::nullopt;  // truncated
    loaded.payload = r.read_raw(payload_len);
    if (crc32c(loaded.payload) != crc) return std::nullopt;  // corrupt
    return loaded;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

SnapshotEngine::SnapshotEngine(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  WAKU_EXPECTS(keep_ >= 1);
}

void SnapshotEngine::write(const SnapshotMeta& meta, BytesView payload) {
  WAKU_EXPECTS(meta.generation > latest_generation());
  ByteWriter w;
  w.write_raw(BytesView(reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  w.write_u8(kVersion);
  w.write_u64(meta.generation);
  w.write_u64(meta.last_lsn);
  w.write_u32(static_cast<std::uint32_t>(payload.size()));
  w.write_u32(crc32c(payload));
  w.write_raw(payload);
  const Bytes bytes = std::move(w).take();

  const fs::path final_path = fs::path(dir_) / snapshot_name(meta.generation);
  const fs::path tmp_path = fs::path(final_path).replace_extension(".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("SnapshotEngine: cannot write " +
                               tmp_path.string());
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      throw std::runtime_error("SnapshotEngine: short write to " +
                               tmp_path.string());
    }
  }
  // The atomicity point: readers see the old generation set or the new
  // one, never a partial file.
  fs::rename(tmp_path, final_path);
  ++snapshots_written_;

  // Prune: keep the newest `keep_` generations.
  const std::vector<std::uint64_t> gens = list_generations(dir_);
  for (std::size_t i = keep_; i < gens.size(); ++i) {
    std::error_code ec;  // best effort; a leftover old snapshot is harmless
    fs::remove(fs::path(dir_) / snapshot_name(gens[i]), ec);
  }
}

std::optional<SnapshotEngine::Loaded> SnapshotEngine::load_latest() const {
  for (const std::uint64_t gen : list_generations(dir_)) {
    if (auto loaded = load_file(fs::path(dir_) / snapshot_name(gen))) {
      return loaded;
    }
  }
  return std::nullopt;
}

std::uint64_t SnapshotEngine::latest_generation() const {
  const std::vector<std::uint64_t> gens = list_generations(dir_);
  return gens.empty() ? 0 : gens.front();
}

}  // namespace waku::persist
