#include "persist/state_store.hpp"

#include <filesystem>

namespace waku::persist {

StateStore::StateStore(std::string dir, StateStoreConfig config)
    : dir_(std::move(dir)),
      config_(config),
      engine_((std::filesystem::create_directories(dir_), dir_),
              config.keep_snapshots),
      wal_((std::filesystem::path(dir_) / "wal.log").string()) {
  wal_.set_flush_every(config_.fsync_every_n_records);
  if (const auto loaded = engine_.load_latest()) {
    snapshot_lsn_ = loaded->meta.last_lsn;
    // A compacted (empty) WAL no longer remembers how far LSNs got; left
    // alone it would restart them at 1 and every new record would be
    // silently skipped by the `lsn > snapshot_lsn_` replay filter.
    wal_.ensure_next_lsn(snapshot_lsn_ + 1);
  }
}

std::optional<Bytes> StateStore::load_snapshot() const {
  const auto loaded = engine_.load_latest();
  if (!loaded.has_value()) return std::nullopt;
  return loaded->payload;
}

void StateStore::replay_wal(const ReplayHandler& fn) const {
  wal_.replay([&](const WalRecord& rec) {
    // Records at or below the snapshot LSN are already folded into the
    // snapshot (the WAL reset after that snapshot may not have happened if
    // the process died in between).
    if (rec.lsn > snapshot_lsn_) fn(rec.type, rec.shard, rec.payload);
  });
}

std::uint64_t StateStore::append(std::uint8_t type, BytesView payload,
                                 std::uint16_t shard) {
  const std::uint64_t lsn = wal_.append(type, payload, shard);
  ++appends_since_snapshot_;
  const bool record_policy =
      config_.snapshot_every_records > 0 &&
      appends_since_snapshot_ >= config_.snapshot_every_records;
  const bool byte_policy = config_.snapshot_every_bytes > 0 &&
                           wal_.size_bytes() >= config_.snapshot_every_bytes;
  if (provider_ && (record_policy || byte_policy)) {
    force_snapshot();
  }
  return lsn;
}

void StateStore::flush_wal() { wal_.flush(); }

void StateStore::force_snapshot() {
  if (!provider_) return;
  // Snapshot barrier: buffered appends must hit the OS before the snapshot
  // claims to cover their LSNs (reset() would discard them either way, but
  // a crash between provider_() and reset() must not lose them).
  wal_.flush();
  const Bytes payload = provider_();
  SnapshotMeta meta;
  meta.generation = engine_.latest_generation() + 1;
  meta.last_lsn = wal_.last_lsn();
  engine_.write(meta, payload);
  snapshot_lsn_ = meta.last_lsn;
  wal_.reset();  // every live record is now folded into the snapshot
  appends_since_snapshot_ = 0;
}

StateStore::Stats StateStore::stats() const {
  Stats s;
  s.wal_records = wal_.record_count();
  s.wal_bytes = wal_.size_bytes();
  s.snapshot_generation = engine_.latest_generation();
  s.snapshots_written = engine_.snapshots_written();
  s.torn_bytes_dropped = wal_.torn_bytes_dropped();
  s.wal_flushes = wal_.flush_count();
  s.wal_unflushed = wal_.unflushed_records();
  return s;
}

}  // namespace waku::persist
