// CRC-32C (Castagnoli polynomial, the iSCSI/ext4 checksum) used to frame
// every durable record the persistence subsystem writes. Chosen over
// CRC-32/IEEE for its better error-detection properties on short records;
// table-driven, byte-at-a-time — plenty for restart-time scans.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace waku::persist {

/// CRC-32C over `data`, seeded/finalized per the standard (init 0xFFFFFFFF,
/// final xor 0xFFFFFFFF).
std::uint32_t crc32c(BytesView data) noexcept;

}  // namespace waku::persist
