#include "common/rng.hpp"

namespace waku {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0,1) double.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t v = next_u64();
    for (int b = 0; b < 8; ++b) {
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(v >> (8 * b));
    }
    i += 8;
  }
  if (i < n) {
    const std::uint64_t v = next_u64();
    for (int b = 0; i < n; ++i, ++b) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

}  // namespace waku
