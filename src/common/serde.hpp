// Minimal binary serialization: little-endian fixed-width integers,
// length-prefixed byte strings. Used for wire formats (proof bundles,
// Waku messages) and for measuring serialized sizes in the benches.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace waku {

/// Appends primitive values to an owned byte buffer in little-endian order.
class ByteWriter {
 public:
  ByteWriter() = default;

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  /// Writes raw bytes with no length prefix.
  void write_raw(BytesView data);
  /// Writes a u32 length prefix followed by the bytes.
  void write_bytes(BytesView data);
  /// Writes a u32 length prefix followed by the UTF-8 payload.
  void write_string(std::string_view s);

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads primitive values from a byte view; throws std::out_of_range when
/// the buffer is exhausted (malformed wire data must not crash a node).
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  /// Reads exactly `n` raw bytes.
  Bytes read_raw(std::size_t n);
  /// Reads a u32 length prefix then that many bytes.
  Bytes read_bytes();
  /// Reads a u32 length prefix then that many bytes as a string.
  std::string read_string();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void require(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace waku
