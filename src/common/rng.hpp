// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that simulations,
// tests, and benches are reproducible from a single seed. The generator is
// xoshiro256** seeded through SplitMix64 (the construction recommended by
// its authors for seeding from a single 64-bit value).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace waku {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** deterministic PRNG. Not cryptographically secure; key
/// material in examples/tests is explicitly labeled as demo-only.
class Rng {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform value in [0, bound) using rejection sampling; bound must be >0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Fills `n` random bytes.
  Bytes next_bytes(std::size_t n);

  /// Bernoulli trial with probability p in [0,1].
  bool chance(double p) noexcept { return next_double() < p; }

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace waku
