// Byte-buffer primitives shared across the library: the Bytes alias,
// hex encoding/decoding, and constant-time comparison.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace waku {

/// Owning byte buffer used throughout the library for wire payloads,
/// hashes, and serialized structures.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over a byte buffer (non-owning).
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex without a 0x prefix.
std::string to_hex(BytesView data);

/// Encodes `data` as lowercase hex with a 0x prefix (Ethereum convention).
std::string to_hex0x(BytesView data);

/// Decodes a hex string (with or without 0x prefix, case-insensitive).
/// Throws std::invalid_argument on malformed input or odd length.
Bytes from_hex(std::string_view hex);

/// Constant-time equality over equal-length buffers; returns false if
/// lengths differ. Used when comparing secret material.
bool ct_equal(BytesView a, BytesView b) noexcept;

/// Converts a string literal/body to bytes (UTF-8 passthrough).
Bytes to_bytes(std::string_view s);

/// Converts bytes back to a std::string (UTF-8 passthrough).
std::string to_string(BytesView b);

/// Concatenates buffers.
Bytes concat(BytesView a, BytesView b);

}  // namespace waku
