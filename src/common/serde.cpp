#include "common/serde.hpp"

#include <stdexcept>

namespace waku {

void ByteWriter::write_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::write_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::write_raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::write_bytes(BytesView data) {
  write_u32(static_cast<std::uint32_t>(data.size()));
  write_raw(data);
}

void ByteWriter::write_string(std::string_view s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw std::out_of_range("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

Bytes ByteReader::read_raw(std::size_t n) {
  require(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::read_bytes() {
  const std::uint32_t n = read_u32();
  return read_raw(n);
}

std::string ByteReader::read_string() {
  const Bytes b = read_bytes();
  return std::string(b.begin(), b.end());
}

}  // namespace waku
