// Contract-checking helpers in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects() for expressing preconditions").
//
// WAKU_EXPECTS  - precondition on the caller; violation is a programming
//                 error and throws ContractViolation so tests can assert it.
// WAKU_ENSURES  - postcondition of the callee.
// WAKU_ASSERT   - internal invariant.
#pragma once

#include <stdexcept>
#include <string>

namespace waku {

/// Thrown when a precondition, postcondition, or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace waku

#define WAKU_EXPECTS(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::waku::detail::contract_fail("precondition", #cond, __FILE__,      \
                                    __LINE__);                            \
  } while (false)

#define WAKU_ENSURES(cond)                                                \
  do {                                                                    \
    if (!(cond))                                                          \
      ::waku::detail::contract_fail("postcondition", #cond, __FILE__,     \
                                    __LINE__);                            \
  } while (false)

#define WAKU_ASSERT(cond)                                                 \
  do {                                                                    \
    if (!(cond))                                                          \
      ::waku::detail::contract_fail("invariant", #cond, __FILE__,         \
                                    __LINE__);                            \
  } while (false)
