#include "hash/schnorr.hpp"

#include "common/serde.hpp"
#include "hash/keccak256.hpp"

namespace waku::hash::schnorr {

namespace {

constexpr std::string_view kDomain = "waku-schnorr-fr-v1";

/// Hash-to-exponent: keccak over the domain-framed input, reduced mod n.
U256 hash_to_exponent(std::string_view label, BytesView a, BytesView b,
                      BytesView message) {
  ByteWriter w;
  w.write_string(kDomain);
  w.write_string(label);
  w.write_bytes(a);
  w.write_bytes(b);
  w.write_bytes(message);
  const Keccak256Digest digest = keccak256(w.data());
  return ff::reduce_mod(
      ff::u256_from_bytes_be(BytesView(digest.data(), digest.size())),
      kGroupOrder);
}

}  // namespace

Fr generator() { return Fr::from_u64(7); }

Bytes Signature::serialize() const {
  Bytes out = r.to_bytes_be();
  const Bytes s_bytes = ff::u256_to_bytes_be(s);
  out.insert(out.end(), s_bytes.begin(), s_bytes.end());
  return out;
}

Signature Signature::deserialize(BytesView bytes) {
  ByteReader reader(bytes);
  Signature sig;
  sig.r = Fr::from_bytes_reduce(reader.read_raw(32));
  sig.s = ff::u256_from_bytes_be(reader.read_raw(32));
  return sig;
}

KeyPair keygen(Rng& rng) {
  for (;;) {
    // Fr::random is uniform on [0, r); folding r-1 -> 0 and rejecting zero
    // leaves a uniform draw on [1, n).
    const U256 candidate = ff::reduce_mod(Fr::random(rng).to_u256(),
                                          kGroupOrder);
    if (candidate.is_zero()) continue;
    return KeyPair{candidate, generator().pow(candidate)};
  }
}

KeyPair keygen_from_seed(std::uint64_t seed) {
  Rng rng(seed ^ 0x5C40BB5EEDULL);
  return keygen(rng);
}

Signature sign(const KeyPair& key, BytesView message) {
  // Deterministic nonce bound to (sk, m): distinct messages get distinct
  // nonces, the same message re-signs identically, and k never repeats
  // across messages under one key (the classic Schnorr key-recovery trap).
  const Bytes sk_bytes = ff::u256_to_bytes_be(key.sk);
  U256 k = hash_to_exponent("nonce", sk_bytes, {}, message);
  if (k.is_zero()) k = U256{1};  // negligible-probability corner

  Signature sig;
  sig.r = generator().pow(k);
  const U256 e = hash_to_exponent("challenge", sig.r.to_bytes_be(),
                                  key.pk.to_bytes_be(), message);
  sig.s = ff::add_mod(k, ff::mul_mod(e, key.sk, kGroupOrder), kGroupOrder);
  return sig;
}

bool verify(const Fr& pk, BytesView message, const Signature& sig) {
  if (pk.is_zero() || sig.r.is_zero()) return false;
  if (!(sig.s < kGroupOrder)) return false;
  const U256 e = hash_to_exponent("challenge", sig.r.to_bytes_be(),
                                  pk.to_bytes_be(), message);
  // g^s == R * pk^e  <=>  g^(k + e*sk) == g^k * (g^sk)^e
  return generator().pow(sig.s) == sig.r * pk.pow(e);
}

}  // namespace waku::hash::schnorr
