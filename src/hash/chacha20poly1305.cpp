#include "hash/chacha20poly1305.hpp"

#include <cstring>

#include "common/expect.hpp"

namespace waku::hash {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            std::uint32_t counter,
                                            const ChaChaNonce& nonce) {
  std::uint32_t state[16];
  // "expand 32-byte k"
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, state, sizeof w);
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, w[i] + state[i]);
  }
  return out;
}

Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                   BytesView data, std::uint32_t initial_counter) {
  Bytes out(data.begin(), data.end());
  std::uint32_t counter = initial_counter;
  for (std::size_t off = 0; off < out.size(); off += 64, ++counter) {
    const auto keystream = chacha20_block(key, counter, nonce);
    const std::size_t n = std::min<std::size_t>(64, out.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
  }
  return out;
}

Poly1305Tag poly1305(BytesView msg, const std::array<std::uint8_t, 32>& key) {
  // h = (h + block) * r mod 2^130-5, with 26-bit limbs.
  std::uint32_t r[5], h[5] = {0, 0, 0, 0, 0};
  // Load and clamp r.
  r[0] = load_le32(key.data()) & 0x3ffffff;
  r[1] = (load_le32(key.data() + 3) >> 2) & 0x3ffff03;
  r[2] = (load_le32(key.data() + 6) >> 4) & 0x3ffc0ff;
  r[3] = (load_le32(key.data() + 9) >> 6) & 0x3f03fff;
  r[4] = (load_le32(key.data() + 12) >> 8) & 0x00fffff;

  const std::uint32_t s1 = r[1] * 5, s2 = r[2] * 5, s3 = r[3] * 5,
                      s4 = r[4] * 5;

  std::size_t off = 0;
  while (off < msg.size()) {
    // Load a 16-byte block with the 2^128 padding bit.
    std::uint8_t block[17] = {0};
    const std::size_t n = std::min<std::size_t>(16, msg.size() - off);
    std::memcpy(block, msg.data() + off, n);
    block[n] = 1;
    off += n;

    h[0] += load_le32(block) & 0x3ffffff;
    h[1] += (load_le32(block + 3) >> 2) & 0x3ffffff;
    h[2] += (load_le32(block + 6) >> 4) & 0x3ffffff;
    h[3] += (load_le32(block + 9) >> 6) & 0x3ffffff;
    h[4] += (load_le32(block + 12) >> 8) | (static_cast<std::uint32_t>(block[16]) << 24);

    // h *= r (mod 2^130 - 5).
    std::uint64_t d0 = static_cast<std::uint64_t>(h[0]) * r[0] +
                       static_cast<std::uint64_t>(h[1]) * s4 +
                       static_cast<std::uint64_t>(h[2]) * s3 +
                       static_cast<std::uint64_t>(h[3]) * s2 +
                       static_cast<std::uint64_t>(h[4]) * s1;
    std::uint64_t d1 = static_cast<std::uint64_t>(h[0]) * r[1] +
                       static_cast<std::uint64_t>(h[1]) * r[0] +
                       static_cast<std::uint64_t>(h[2]) * s4 +
                       static_cast<std::uint64_t>(h[3]) * s3 +
                       static_cast<std::uint64_t>(h[4]) * s2;
    std::uint64_t d2 = static_cast<std::uint64_t>(h[0]) * r[2] +
                       static_cast<std::uint64_t>(h[1]) * r[1] +
                       static_cast<std::uint64_t>(h[2]) * r[0] +
                       static_cast<std::uint64_t>(h[3]) * s4 +
                       static_cast<std::uint64_t>(h[4]) * s3;
    std::uint64_t d3 = static_cast<std::uint64_t>(h[0]) * r[3] +
                       static_cast<std::uint64_t>(h[1]) * r[2] +
                       static_cast<std::uint64_t>(h[2]) * r[1] +
                       static_cast<std::uint64_t>(h[3]) * r[0] +
                       static_cast<std::uint64_t>(h[4]) * s4;
    std::uint64_t d4 = static_cast<std::uint64_t>(h[0]) * r[4] +
                       static_cast<std::uint64_t>(h[1]) * r[3] +
                       static_cast<std::uint64_t>(h[2]) * r[2] +
                       static_cast<std::uint64_t>(h[3]) * r[1] +
                       static_cast<std::uint64_t>(h[4]) * r[0];

    // Carry propagation.
    std::uint64_t c;
    c = d0 >> 26; h[0] = d0 & 0x3ffffff; d1 += c;
    c = d1 >> 26; h[1] = d1 & 0x3ffffff; d2 += c;
    c = d2 >> 26; h[2] = d2 & 0x3ffffff; d3 += c;
    c = d3 >> 26; h[3] = d3 & 0x3ffffff; d4 += c;
    c = d4 >> 26; h[4] = d4 & 0x3ffffff;
    h[0] += static_cast<std::uint32_t>(c * 5);
    c = h[0] >> 26; h[0] &= 0x3ffffff;
    h[1] += static_cast<std::uint32_t>(c);
  }

  // Full carry.
  std::uint32_t c = h[1] >> 26; h[1] &= 0x3ffffff;
  h[2] += c; c = h[2] >> 26; h[2] &= 0x3ffffff;
  h[3] += c; c = h[3] >> 26; h[3] &= 0x3ffffff;
  h[4] += c; c = h[4] >> 26; h[4] &= 0x3ffffff;
  h[0] += c * 5; c = h[0] >> 26; h[0] &= 0x3ffffff;
  h[1] += c;

  // Compute h + -p and select.
  std::uint32_t g[5];
  g[0] = h[0] + 5; c = g[0] >> 26; g[0] &= 0x3ffffff;
  g[1] = h[1] + c; c = g[1] >> 26; g[1] &= 0x3ffffff;
  g[2] = h[2] + c; c = g[2] >> 26; g[2] &= 0x3ffffff;
  g[3] = h[3] + c; c = g[3] >> 26; g[3] &= 0x3ffffff;
  g[4] = h[4] + c - (1u << 26);

  const std::uint32_t mask = (g[4] >> 31) - 1;  // all-ones if g >= p
  for (int i = 0; i < 5; ++i) {
    h[i] = (h[i] & ~mask) | (g[i] & mask);
  }

  // Serialize h (mod 2^128) and add s, the second half of the key.
  const std::uint64_t lo_h =
      static_cast<std::uint64_t>(h[0]) | (static_cast<std::uint64_t>(h[1]) << 26) |
      (static_cast<std::uint64_t>(h[2]) << 52);
  const std::uint64_t hi_h =
      (static_cast<std::uint64_t>(h[2]) >> 12) |
      (static_cast<std::uint64_t>(h[3]) << 14) |
      (static_cast<std::uint64_t>(h[4]) << 40);
  const std::uint64_t s_lo =
      load_le32(key.data() + 16) |
      (static_cast<std::uint64_t>(load_le32(key.data() + 20)) << 32);
  const std::uint64_t s_hi =
      load_le32(key.data() + 24) |
      (static_cast<std::uint64_t>(load_le32(key.data() + 28)) << 32);

  unsigned __int128 total =
      (static_cast<unsigned __int128>(hi_h) << 64 | lo_h) +
      (static_cast<unsigned __int128>(s_hi) << 64 | s_lo);

  Poly1305Tag tag;
  for (int i = 0; i < 16; ++i) {
    tag[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(total >> (8 * i));
  }
  return tag;
}

namespace {

Bytes poly1305_aead_input(BytesView aad, BytesView ciphertext) {
  Bytes mac_data(aad.begin(), aad.end());
  mac_data.resize((mac_data.size() + 15) & ~std::size_t{15}, 0);
  mac_data.insert(mac_data.end(), ciphertext.begin(), ciphertext.end());
  mac_data.resize((mac_data.size() + 15) & ~std::size_t{15}, 0);
  for (const std::uint64_t len : {static_cast<std::uint64_t>(aad.size()),
                                  static_cast<std::uint64_t>(ciphertext.size())}) {
    for (int i = 0; i < 8; ++i) {
      mac_data.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    }
  }
  return mac_data;
}

std::array<std::uint8_t, 32> poly_key(const ChaChaKey& key,
                                      const ChaChaNonce& nonce) {
  const auto block0 = chacha20_block(key, 0, nonce);
  std::array<std::uint8_t, 32> pk;
  std::copy(block0.begin(), block0.begin() + 32, pk.begin());
  return pk;
}

}  // namespace

Bytes aead_encrypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                   BytesView plaintext, BytesView aad) {
  Bytes ciphertext = chacha20_xor(key, nonce, plaintext);
  const Poly1305Tag tag =
      poly1305(poly1305_aead_input(aad, ciphertext), poly_key(key, nonce));
  ciphertext.insert(ciphertext.end(), tag.begin(), tag.end());
  return ciphertext;
}

std::optional<Bytes> aead_decrypt(const ChaChaKey& key,
                                  const ChaChaNonce& nonce,
                                  BytesView ciphertext_and_tag,
                                  BytesView aad) {
  if (ciphertext_and_tag.size() < 16) return std::nullopt;
  const BytesView ciphertext(ciphertext_and_tag.data(),
                             ciphertext_and_tag.size() - 16);
  const BytesView tag(ciphertext_and_tag.data() + ciphertext.size(), 16);
  const Poly1305Tag expected =
      poly1305(poly1305_aead_input(aad, ciphertext), poly_key(key, nonce));
  if (!ct_equal(BytesView(expected.data(), expected.size()), tag)) {
    return std::nullopt;
  }
  return chacha20_xor(key, nonce, ciphertext);
}

}  // namespace waku::hash
