// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used outside the zk circuit: message ids, commit–reveal commitments, and
// as the nothing-up-my-sleeve PRF that derives Poseidon parameters.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace waku::hash {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(BytesView data) noexcept;
  /// Finalizes and returns the digest; the hasher must be reset() to reuse.
  Sha256Digest finalize() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Sha256Digest sha256(BytesView data) noexcept;

/// One-shot returning an owning Bytes (32 bytes).
Bytes sha256_bytes(BytesView data);

}  // namespace waku::hash
