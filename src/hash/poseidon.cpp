#include "hash/poseidon.hpp"

#include <array>
#include <mutex>
#include <string>

#include "common/expect.hpp"
#include "hash/sha256.hpp"

namespace waku::hash {

namespace {

// Partial-round counts per width for alpha=5 over BN254, from the Poseidon
// reference parameter search (R_F = 8 throughout).
constexpr std::size_t kPartialRounds[] = {0, 0, 56, 57, 56, 60};
constexpr std::size_t kFullRounds = 8;

// Nothing-up-my-sleeve field element stream: Fr_i = SHA256(seed || i) mod r.
Fr nums_element(const std::string& seed, std::uint32_t index) {
  Bytes input = to_bytes(seed);
  for (int b = 0; b < 4; ++b) {
    input.push_back(static_cast<std::uint8_t>(index >> (8 * b)));
  }
  const Sha256Digest d = sha256(input);
  return Fr::from_bytes_reduce(BytesView(d.data(), d.size()));
}

// Builds a secure MDS matrix via the Cauchy construction
// M[i][j] = 1 / (x_i + y_j), with the 2t generators drawn from the NUMS
// stream and re-drawn until all are distinct and all sums invertible.
std::vector<Fr> build_mds(std::size_t t) {
  std::vector<Fr> xs;
  std::vector<Fr> ys;
  std::uint32_t counter = 0;
  auto fresh = [&](const std::vector<Fr>& a, const std::vector<Fr>& b,
                   const Fr& candidate) {
    for (const Fr& v : a) {
      if (v == candidate) return false;
    }
    for (const Fr& v : b) {
      // x_i + y_j must be non-zero for every pair, i.e. candidate != -v.
      if (candidate == v.neg()) return false;
    }
    return true;
  };
  const std::string seed = "waku-rln-poseidon-mds-t" + std::to_string(t);
  while (xs.size() < t) {
    const Fr c = nums_element(seed, counter++);
    if (fresh(xs, ys, c)) xs.push_back(c);
  }
  while (ys.size() < t) {
    const Fr c = nums_element(seed, counter++);
    if (fresh(ys, xs, c)) ys.push_back(c);
  }
  std::vector<Fr> mds(t * t);
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < t; ++j) {
      mds[i * t + j] = (xs[i] + ys[j]).inverse();
    }
  }
  return mds;
}

PoseidonParams build_params(std::size_t t) {
  WAKU_EXPECTS(t >= 2 && t <= 5);
  PoseidonParams p;
  p.t = t;
  p.full_rounds = kFullRounds;
  p.partial_rounds = kPartialRounds[t];
  const std::size_t n = t * p.total_rounds();
  p.round_constants.reserve(n);
  const std::string seed = "waku-rln-poseidon-rc-t" + std::to_string(t);
  for (std::uint32_t i = 0; i < n; ++i) {
    p.round_constants.push_back(nums_element(seed, i));
  }
  p.mds = build_mds(t);
  return p;
}

Fr sbox(const Fr& x) {
  const Fr x2 = x.square();
  const Fr x4 = x2.square();
  return x4 * x;
}

}  // namespace

const PoseidonParams& poseidon_params(std::size_t t) {
  WAKU_EXPECTS(t >= 2 && t <= 5);
  static std::array<PoseidonParams, 6> cache;
  static std::once_flag flags[6];
  std::call_once(flags[t], [t] { cache[t] = build_params(t); });
  return cache[t];
}

void poseidon_permute(std::span<Fr> state) {
  const std::size_t t = state.size();
  const PoseidonParams& p = poseidon_params(t);

  std::vector<Fr> next(t);
  const std::size_t half_full = p.full_rounds / 2;

  auto mix = [&](std::span<Fr> s) {
    for (std::size_t i = 0; i < t; ++i) {
      Fr acc = Fr::zero();
      for (std::size_t j = 0; j < t; ++j) acc += p.m(i, j) * s[j];
      next[i] = acc;
    }
    for (std::size_t i = 0; i < t; ++i) s[i] = next[i];
  };

  std::size_t round = 0;
  for (std::size_t r = 0; r < half_full; ++r, ++round) {
    for (std::size_t i = 0; i < t; ++i) {
      state[i] = sbox(state[i] + p.rc(round, i));
    }
    mix(state);
  }
  for (std::size_t r = 0; r < p.partial_rounds; ++r, ++round) {
    for (std::size_t i = 0; i < t; ++i) state[i] += p.rc(round, i);
    state[0] = sbox(state[0]);
    mix(state);
  }
  for (std::size_t r = 0; r < half_full; ++r, ++round) {
    for (std::size_t i = 0; i < t; ++i) {
      state[i] = sbox(state[i] + p.rc(round, i));
    }
    mix(state);
  }
}

Fr poseidon_hash(std::span<const Fr> inputs) {
  WAKU_EXPECTS(!inputs.empty() && inputs.size() <= 4);
  std::vector<Fr> state(inputs.size() + 1, Fr::zero());
  for (std::size_t i = 0; i < inputs.size(); ++i) state[i + 1] = inputs[i];
  poseidon_permute(state);
  return state[0];
}

Fr poseidon1(const Fr& a) {
  const std::array<Fr, 1> in{a};
  return poseidon_hash(in);
}

Fr poseidon2(const Fr& a, const Fr& b) {
  const std::array<Fr, 2> in{a, b};
  return poseidon_hash(in);
}

Fr poseidon3(const Fr& a, const Fr& b, const Fr& c) {
  const std::array<Fr, 3> in{a, b, c};
  return poseidon_hash(in);
}

}  // namespace waku::hash
