#include "hash/keccak256.hpp"

namespace waku::hash {

namespace {

constexpr int kRounds = 24;
constexpr std::size_t kRateBytes = 136;  // 1088-bit rate for Keccak-256

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRotation[5][5] = {{0, 36, 3, 41, 18},
                                 {1, 44, 10, 45, 2},
                                 {62, 6, 43, 15, 61},
                                 {28, 55, 25, 21, 56},
                                 {27, 20, 39, 8, 14}};

inline std::uint64_t rotl64(std::uint64_t x, int n) noexcept {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

void keccak_f1600(std::uint64_t a[5][5]) noexcept {
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4];
    }
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x][y] ^= d;
    }
    // Rho + Pi
    std::uint64_t b[5][5];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y][(2 * x + 3 * y) % 5] = rotl64(a[x][y], kRotation[x][y]);
      }
    }
    // Chi
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x][y] = b[x][y] ^ (~b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
      }
    }
    // Iota
    a[0][0] ^= kRoundConstants[round];
  }
}

}  // namespace

Keccak256Digest keccak256(BytesView data) noexcept {
  std::uint64_t state[5][5] = {};

  // Absorb full rate blocks.
  std::size_t offset = 0;
  auto absorb = [&state](const std::uint8_t* block) {
    for (std::size_t i = 0; i < kRateBytes / 8; ++i) {
      std::uint64_t lane = 0;
      for (int b = 7; b >= 0; --b) {
        lane = (lane << 8) | block[i * 8 + static_cast<std::size_t>(b)];
      }
      state[i % 5][i / 5] ^= lane;
    }
    keccak_f1600(state);
  };

  while (data.size() - offset >= kRateBytes) {
    absorb(data.data() + offset);
    offset += kRateBytes;
  }

  // Pad final block: Keccak (pre-SHA3) multi-rate padding 0x01 .. 0x80.
  std::uint8_t block[kRateBytes] = {};
  const std::size_t tail = data.size() - offset;
  for (std::size_t i = 0; i < tail; ++i) block[i] = data[offset + i];
  block[tail] = 0x01;
  block[kRateBytes - 1] |= 0x80;
  absorb(block);

  // Squeeze 32 bytes.
  Keccak256Digest digest;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t lane = state[i % 5][i / 5];
    for (int b = 0; b < 8; ++b) {
      digest[i * 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(lane >> (8 * b));
    }
  }
  return digest;
}

Bytes keccak256_bytes(BytesView data) {
  const Keccak256Digest d = keccak256(data);
  return Bytes(d.begin(), d.end());
}

int leading_zero_bits(const Keccak256Digest& digest) noexcept {
  int bits = 0;
  for (std::uint8_t byte : digest) {
    if (byte == 0) {
      bits += 8;
      continue;
    }
    for (int b = 7; b >= 0; --b) {
      if ((byte >> b) & 1) return bits;
      ++bits;
    }
  }
  return bits;
}

}  // namespace waku::hash
