// Poseidon permutation and hash over the BN254 scalar field.
//
// This is the hash the paper's "H" refers to inside the RLN relation:
// identity commitments pk = H(sk), the Merkle tree levels, the share slope
// a1 = H(sk, epoch), and the internal nullifier phi = H(a1) are all Poseidon
// evaluations, matching the Semaphore/RLN circuits.
//
// Structure follows the Poseidon reference for BN254 (x^5 S-box, 8 full
// rounds, 56..60 partial rounds depending on width, secure Cauchy MDS).
// SUBSTITUTION (documented in DESIGN.md): round constants and the Cauchy
// generators are derived from a SHA-256-based nothing-up-my-sleeve PRF
// instead of the reference Grain-LFSR stream; the algebraic structure is
// identical and no benchmark or protocol behaviour depends on the
// particular constant stream.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ff/fr.hpp"

namespace waku::hash {

using ff::Fr;

/// Full parameter set for a Poseidon instance of width `t`.
struct PoseidonParams {
  std::size_t t = 0;            ///< state width (capacity 1 + rate t-1)
  std::size_t full_rounds = 0;  ///< R_F, split half before / half after
  std::size_t partial_rounds = 0;  ///< R_P
  /// Round constants, layout: round-major, t per round,
  /// size = t * (full_rounds + partial_rounds).
  std::vector<Fr> round_constants;
  /// t x t MDS matrix, row-major.
  std::vector<Fr> mds;

  [[nodiscard]] const Fr& rc(std::size_t round, std::size_t i) const {
    return round_constants[round * t + i];
  }
  [[nodiscard]] const Fr& m(std::size_t row, std::size_t col) const {
    return mds[row * t + col];
  }
  [[nodiscard]] std::size_t total_rounds() const {
    return full_rounds + partial_rounds;
  }
};

/// Returns the (cached) parameter set for width t in [2, 5].
const PoseidonParams& poseidon_params(std::size_t t);

/// Applies the Poseidon permutation in place; state.size() selects t.
void poseidon_permute(std::span<Fr> state);

/// Fixed-length Poseidon hash of 1..4 field elements (width t = n+1,
/// capacity element initialized to zero, output is state[0]), matching the
/// circomlib convention used by Semaphore/RLN.
Fr poseidon_hash(std::span<const Fr> inputs);

/// Conveniences for the common arities.
Fr poseidon1(const Fr& a);
Fr poseidon2(const Fr& a, const Fr& b);
Fr poseidon3(const Fr& a, const Fr& b, const Fr& c);

}  // namespace waku::hash
