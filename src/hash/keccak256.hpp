// Keccak-256 (the pre-NIST padding variant used by Ethereum), from scratch.
//
// Used by the chain simulator for addresses/transaction hashes and by the
// Whisper-style proof-of-work baseline (EIP-627 uses Keccak for its PoW).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace waku::hash {

using Keccak256Digest = std::array<std::uint8_t, 32>;

/// One-shot Keccak-256 (rate 1088, capacity 512, 0x01 domain padding).
Keccak256Digest keccak256(BytesView data) noexcept;

/// One-shot returning an owning Bytes (32 bytes).
Bytes keccak256_bytes(BytesView data);

/// Counts leading zero bits of a digest — the Whisper PoW "work" measure.
int leading_zero_bits(const Keccak256Digest& digest) noexcept;

}  // namespace waku::hash
