// ChaCha20-Poly1305 AEAD (RFC 8439), from scratch.
//
// Waku messages are routed by an anonymity-preserving relay, but payload
// confidentiality comes from an encryption layer above it (26/WAKU2-PAYLOAD
// in the Waku spec family the paper references). This provides the
// symmetric AEAD used by waku::payload.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace waku::hash {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;
using Poly1305Tag = std::array<std::uint8_t, 16>;

/// Raw ChaCha20 block function: fills 64 bytes of keystream for
/// (key, counter, nonce). Exposed for testing against RFC 8439 vectors.
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            std::uint32_t counter,
                                            const ChaChaNonce& nonce);

/// ChaCha20 stream cipher (encrypt == decrypt), initial block counter 1
/// per the AEAD construction; counter 0 is reserved for the Poly1305 key.
Bytes chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                   BytesView data, std::uint32_t initial_counter = 1);

/// One-shot Poly1305 MAC with the given 32-byte one-time key.
Poly1305Tag poly1305(BytesView msg, const std::array<std::uint8_t, 32>& key);

/// AEAD seal: returns ciphertext || 16-byte tag.
Bytes aead_encrypt(const ChaChaKey& key, const ChaChaNonce& nonce,
                   BytesView plaintext, BytesView aad = {});

/// AEAD open: verifies the tag (constant-time) and returns the plaintext,
/// or nullopt on authentication failure.
std::optional<Bytes> aead_decrypt(const ChaChaKey& key,
                                  const ChaChaNonce& nonce,
                                  BytesView ciphertext_and_tag,
                                  BytesView aad = {});

}  // namespace waku::hash
