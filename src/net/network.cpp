#include "net/network.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace waku::net {

Network::Network(Simulator& sim, LinkConfig link, std::uint64_t seed)
    : sim_(sim), link_(link), rng_(seed) {}

NodeId Network::add_node(NetNode* endpoint) {
  WAKU_EXPECTS(endpoint != nullptr);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(endpoint);
  adjacency_.emplace_back();
  skew_ms_.push_back(0);
  stats_.emplace_back();
  return id;
}

void Network::remove_node(NodeId n) {
  WAKU_EXPECTS(n < nodes_.size());
  const std::vector<NodeId> peers = adjacency_[n];  // copy: disconnect mutates
  for (const NodeId peer : peers) disconnect(n, peer);
  nodes_[n] = nullptr;
}

void Network::connect(NodeId a, NodeId b) {
  WAKU_EXPECTS(a < nodes_.size() && b < nodes_.size() && a != b);
  if (connected(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
}

void Network::disconnect(NodeId a, NodeId b) {
  auto erase_from = [](std::vector<NodeId>& v, NodeId x) {
    v.erase(std::remove(v.begin(), v.end(), x), v.end());
  };
  WAKU_EXPECTS(a < nodes_.size() && b < nodes_.size());
  erase_from(adjacency_[a], b);
  erase_from(adjacency_[b], a);
}

bool Network::connected(NodeId a, NodeId b) const {
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

const std::vector<NodeId>& Network::neighbors(NodeId n) const {
  WAKU_EXPECTS(n < nodes_.size());
  return adjacency_[n];
}

void Network::connect_random(std::size_t degree, Rng& rng) {
  const std::size_t n = nodes_.size();
  WAKU_EXPECTS(n >= 2 && degree < n);
  // Ring guarantees connectivity; random chords give small diameter.
  for (NodeId i = 0; i < n; ++i) {
    connect(i, static_cast<NodeId>((i + 1) % n));
  }
  for (NodeId i = 0; i < n; ++i) {
    while (adjacency_[i].size() < degree) {
      const NodeId j = static_cast<NodeId>(rng.next_below(n));
      if (j != i && !connected(i, j)) connect(i, j);
    }
  }
}

void Network::set_link_override(NodeId a, NodeId b, LinkConfig link) {
  WAKU_EXPECTS(a < nodes_.size() && b < nodes_.size());
  link_overrides_[link_key(a, b)] = link;
}

void Network::clear_link_override(NodeId a, NodeId b) {
  link_overrides_.erase(link_key(a, b));
}

const LinkConfig& Network::link_config(NodeId a, NodeId b) const {
  const auto it = link_overrides_.find(link_key(a, b));
  return it != link_overrides_.end() ? it->second : link_;
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
  WAKU_EXPECTS(from < nodes_.size() && to < nodes_.size());
  if (!connected(from, to)) return;  // stale mesh entry; drop silently

  stats_[from].messages_sent += 1;
  stats_[from].bytes_sent += payload.size();

  const LinkConfig& link = link_config(from, to);
  if (link.loss_rate > 0 && rng_.chance(link.loss_rate)) return;

  const TimeMs jitter =
      link.jitter_ms == 0 ? 0 : rng_.next_below(link.jitter_ms + 1);
  const TimeMs delay = link.base_latency_ms + jitter;
  sim_.schedule_after(delay, [this, from, to,
                              payload = std::move(payload)]() {
    if (nodes_[to] == nullptr) return;  // receiver died while in flight
    stats_[to].messages_received += 1;
    stats_[to].bytes_received += payload.size();
    nodes_[to]->on_message(from, payload);
  });
}

void Network::set_clock_skew(NodeId n, std::int64_t skew_ms) {
  WAKU_EXPECTS(n < nodes_.size());
  skew_ms_[n] = skew_ms;
}

TimeMs Network::local_time(NodeId n) const {
  WAKU_EXPECTS(n < nodes_.size());
  const std::int64_t t =
      static_cast<std::int64_t>(sim_.now()) + skew_ms_[n];
  return t < 0 ? 0 : static_cast<TimeMs>(t);
}

const TrafficStats& Network::stats(NodeId n) const {
  WAKU_EXPECTS(n < nodes_.size());
  return stats_[n];
}

TrafficStats Network::total_stats() const {
  TrafficStats total;
  for (const TrafficStats& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.messages_received += s.messages_received;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
  }
  return total;
}

void Network::reset_stats() {
  std::fill(stats_.begin(), stats_.end(), TrafficStats{});
}

}  // namespace waku::net
