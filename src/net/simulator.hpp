// Deterministic discrete-event simulator — the substrate that stands in
// for real libp2p transports (see DESIGN.md substitution 4). All protocol
// behaviour above this layer (gossip meshes, RLN validation, block mining)
// is driven by events scheduled here, so every experiment is reproducible
// from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace waku::net {

/// Simulated wall-clock milliseconds since simulation start.
using TimeMs = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;
  using TaskId = std::uint64_t;

  [[nodiscard]] TimeMs now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (>= now).
  TaskId schedule_at(TimeMs t, Callback fn);

  /// Schedules `fn` after `delay` ms.
  TaskId schedule_after(TimeMs delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` every `interval` ms, first firing at now + interval.
  /// Returns an id usable with cancel().
  TaskId schedule_every(TimeMs interval, Callback fn);

  /// Cancels a pending (or repeating) task.
  void cancel(TaskId id) { cancelled_.insert(id); }

  /// Executes the next event. Returns false if the queue is empty.
  bool step();

  /// Runs events until simulated time would exceed `t`; clock ends at `t`.
  void run_until(TimeMs t);

  /// Runs until no events remain (repeating tasks run forever — prefer
  /// run_until for simulations with heartbeats).
  void run_all();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  /// Queues the next repetition of a schedule_every task.
  void push_repeating(TaskId id, TimeMs interval, Callback fn);

  struct Scheduled {
    TimeMs time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    TaskId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  TimeMs now_ = 0;
  std::uint64_t seq_ = 0;
  TaskId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  std::unordered_set<TaskId> cancelled_;
};

}  // namespace waku::net
