#include "net/simulator.hpp"

#include <memory>

#include "common/expect.hpp"

namespace waku::net {

Simulator::TaskId Simulator::schedule_at(TimeMs t, Callback fn) {
  WAKU_EXPECTS(t >= now_);
  const TaskId id = next_id_++;
  queue_.push(Scheduled{t, seq_++, id, std::move(fn)});
  return id;
}

Simulator::TaskId Simulator::schedule_every(TimeMs interval, Callback fn) {
  WAKU_EXPECTS(interval > 0);
  const TaskId id = next_id_++;
  push_repeating(id, interval, std::move(fn));
  return id;
}

void Simulator::push_repeating(TaskId id, TimeMs interval, Callback fn) {
  // Self-rescheduling wrapper; keeps the same public id so cancel() works
  // across repetitions. The callback is owned by the queue entry and moved
  // into the next repetition — no self-referencing shared state (a strong
  // self-capture would be a reference cycle that never frees).
  queue_.push(Scheduled{
      now_ + interval, seq_++, id,
      [this, id, interval, fn = std::move(fn)]() mutable {
        if (cancelled_.contains(id)) {
          cancelled_.erase(id);
          return;
        }
        fn();
        push_repeating(id, interval, std::move(fn));
      }});
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Scheduled ev = queue_.top();
    queue_.pop();
    if (cancelled_.contains(ev.id)) {
      cancelled_.erase(ev.id);
      continue;
    }
    WAKU_ASSERT(ev.time >= now_);
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimeMs t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
  }
  now_ = t;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace waku::net
