// Simulated p2p network: nodes joined by bidirectional links with
// configurable latency, jitter, and loss; per-node clock skew (the
// "ClockAsynchrony" of paper §III-F); and traffic accounting used by the
// spam-containment experiments (E7/E8).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "net/simulator.hpp"

namespace waku::net {

using NodeId = std::uint32_t;

/// Interface implemented by protocol endpoints (gossipsub routers, etc).
class NetNode {
 public:
  virtual ~NetNode() = default;
  virtual void on_message(NodeId from, BytesView payload) = 0;
};

struct LinkConfig {
  TimeMs base_latency_ms = 40;  ///< one-way propagation delay
  TimeMs jitter_ms = 20;        ///< uniform extra delay in [0, jitter]
  double loss_rate = 0.0;       ///< probability a message is dropped
};

/// Per-node traffic counters.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Network {
 public:
  Network(Simulator& sim, LinkConfig link, std::uint64_t seed = 7);

  /// Registers a node; the caller retains ownership of `endpoint`.
  NodeId add_node(NetNode* endpoint);

  /// Detaches a node (crash/shutdown): severs all its links and forgets
  /// the endpoint pointer. In-flight deliveries to it are dropped; the id
  /// is never reused (a restarted peer joins with a fresh id, exactly as a
  /// rebooted libp2p host gets a fresh connection set).
  void remove_node(NodeId n);
  [[nodiscard]] bool node_alive(NodeId n) const {
    return n < nodes_.size() && nodes_[n] != nullptr;
  }

  /// Creates (idempotently) a bidirectional link.
  void connect(NodeId a, NodeId b);
  void disconnect(NodeId a, NodeId b);
  [[nodiscard]] bool connected(NodeId a, NodeId b) const;
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId n) const;

  /// Wires every node into a random graph of the given target degree
  /// (plus a ring for connectivity).
  void connect_random(std::size_t degree, Rng& rng);

  /// Sends `payload` from `from` to its neighbor `to`; delivery is
  /// scheduled after link latency (or dropped per loss_rate).
  void send(NodeId from, NodeId to, Bytes payload);

  // -- Per-link overrides (adversarial topology shaping) -------------------

  /// Overrides latency/jitter/loss for the (a, b) link in both directions
  /// (the default LinkConfig keeps applying to every other link). The
  /// eclipse scenarios use this to park a victim behind lossy links
  /// without disconnecting it — a disconnect is observable, degraded links
  /// are not.
  void set_link_override(NodeId a, NodeId b, LinkConfig link);
  void clear_link_override(NodeId a, NodeId b);
  /// Effective config for the (a, b) link (override or the default).
  [[nodiscard]] const LinkConfig& link_config(NodeId a, NodeId b) const;

  // -- Clock skew (ClockAsynchrony, §III-F) --------------------------------

  void set_clock_skew(NodeId n, std::int64_t skew_ms);
  /// Node-local wall clock: simulated time + skew (never negative).
  [[nodiscard]] TimeMs local_time(NodeId n) const;

  // -- Accounting -----------------------------------------------------------

  [[nodiscard]] const TrafficStats& stats(NodeId n) const;
  [[nodiscard]] TrafficStats total_stats() const;
  void reset_stats();

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Simulator& sim() { return sim_; }

 private:
  /// Canonical (min, max) key for an undirected link.
  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b) {
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  Simulator& sim_;
  LinkConfig link_;
  Rng rng_;
  std::vector<NetNode*> nodes_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::int64_t> skew_ms_;
  std::vector<TrafficStats> stats_;
  std::unordered_map<std::uint64_t, LinkConfig> link_overrides_;
};

}  // namespace waku::net
