// Whisper-style proof-of-work spam protection (paper [4], [5]; EIP-627) —
// the computational baseline WAKU-RLN-RELAY replaces. A message is valid
// if Keccak-256(envelope || nonce) has at least `difficulty` leading zero
// bits; mining cost is exponential in difficulty while verification is one
// hash. The paper's critique: the work requirement prices low-power
// devices out of the network (E7 measures exactly this asymmetry).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace waku::pow {

struct PowSolution {
  std::uint64_t nonce = 0;
  std::uint64_t attempts = 0;  ///< hash evaluations spent mining
};

/// Mines a nonce such that keccak256(payload || nonce_le) has at least
/// `difficulty_bits` leading zero bits. `max_attempts` bounds the search
/// (0 = unbounded); returns nullopt if the bound is hit.
std::optional<PowSolution> mine(BytesView payload, int difficulty_bits,
                                std::uint64_t start_nonce = 0,
                                std::uint64_t max_attempts = 0);

/// Verifies a mined nonce (one hash evaluation).
bool verify(BytesView payload, std::uint64_t nonce, int difficulty_bits);

/// Expected number of hash attempts for a difficulty (2^bits).
double expected_attempts(int difficulty_bits);

}  // namespace waku::pow
