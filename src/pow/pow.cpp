#include "pow/pow.hpp"

#include <cmath>

#include "common/expect.hpp"
#include "hash/keccak256.hpp"

namespace waku::pow {

namespace {

Bytes with_nonce(BytesView payload, std::uint64_t nonce) {
  Bytes buf(payload.begin(), payload.end());
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(nonce >> (8 * i)));
  }
  return buf;
}

}  // namespace

std::optional<PowSolution> mine(BytesView payload, int difficulty_bits,
                                std::uint64_t start_nonce,
                                std::uint64_t max_attempts) {
  WAKU_EXPECTS(difficulty_bits >= 0 && difficulty_bits <= 64);
  std::uint64_t nonce = start_nonce;
  std::uint64_t attempts = 0;
  for (;;) {
    ++attempts;
    if (verify(payload, nonce, difficulty_bits)) {
      return PowSolution{nonce, attempts};
    }
    if (max_attempts != 0 && attempts >= max_attempts) return std::nullopt;
    ++nonce;
  }
}

bool verify(BytesView payload, std::uint64_t nonce, int difficulty_bits) {
  const auto digest = hash::keccak256(with_nonce(payload, nonce));
  return hash::leading_zero_bits(digest) >= difficulty_bits;
}

double expected_attempts(int difficulty_bits) {
  return std::pow(2.0, difficulty_bits);
}

}  // namespace waku::pow
