#include "merkle/node_arena.hpp"

#include "common/expect.hpp"

namespace waku::merkle {

PagedNodeArena::PagedNodeArena(std::size_t depth)
    : depth_(depth), levels_(depth + 1) {
  WAKU_EXPECTS(depth >= 1 && depth <= 40);
}

const Fr& PagedNodeArena::get(std::size_t level, std::uint64_t idx) const {
  WAKU_EXPECTS(level <= depth_ && idx < level_capacity(level));
  const Level& lvl = levels_[level];
  const std::uint64_t per_page = page_nodes(level);
  const std::uint64_t page = idx / per_page;
  if (page >= lvl.pages.size() || !lvl.pages[page]) return zero_at(level);
  return lvl.pages[page][idx % per_page];
}

void PagedNodeArena::set(std::size_t level, std::uint64_t idx,
                         const Fr& value) {
  WAKU_EXPECTS(level <= depth_ && idx < level_capacity(level));
  Level& lvl = levels_[level];
  if (idx >= lvl.used) lvl.used = idx + 1;
  const std::uint64_t per_page = page_nodes(level);
  const std::uint64_t page = idx / per_page;
  if (page >= lvl.pages.size()) {
    if (value == zero_at(level)) return;  // keep the tail lazy
    lvl.pages.resize(page + 1);
  }
  if (!lvl.pages[page]) {
    if (value == zero_at(level)) return;
    auto slab = std::make_unique<Fr[]>(per_page);
    const Fr& z = zero_at(level);
    for (std::uint64_t i = 0; i < per_page; ++i) slab[i] = z;
    lvl.pages[page] = std::move(slab);
  }
  lvl.pages[page][idx % per_page] = value;
}

std::size_t PagedNodeArena::materialized_pages() const {
  std::size_t n = 0;
  for (const Level& lvl : levels_) {
    for (const auto& p : lvl.pages) n += p ? 1 : 0;
  }
  return n;
}

std::size_t PagedNodeArena::storage_bytes() const {
  std::size_t bytes = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    std::size_t pages = 0;
    for (const auto& p : levels_[l].pages) pages += p ? 1 : 0;
    bytes += pages * page_nodes(l) * 32;  // canonical Fr is 32 bytes
  }
  return bytes;
}

}  // namespace waku::merkle
