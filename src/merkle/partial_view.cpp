#include "merkle/partial_view.hpp"

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"

namespace waku::merkle {

namespace {
Fr hash_pair(const Fr& l, const Fr& r) { return hash::poseidon2(l, r); }

// Index (at `level`) of the node the append frontier currently caches:
// the most recently written left child, i.e. ((count-1) >> level) & ~1.
std::uint64_t frontier_index(std::uint64_t leaf_count, std::size_t level) {
  WAKU_EXPECTS(leaf_count > 0);
  return ((leaf_count - 1) >> level) & ~std::uint64_t{1};
}
}  // namespace

PartialMerkleView::PartialMerkleView(std::size_t depth, std::uint64_t index)
    : depth_(depth),
      my_index_(index),
      siblings_(depth, Fr::zero()),
      filled_subtrees_(depth, Fr::zero()) {}

PartialMerkleView PartialMerkleView::from_tree(
    const IncrementalMerkleTree& tree, std::uint64_t index) {
  WAKU_EXPECTS(index < tree.size());
  PartialMerkleView view(tree.depth(), index);
  view.leaf_count_ = tree.size();
  view.my_leaf_ = tree.leaf(index);
  view.root_ = tree.root();
  view.siblings_ = tree.auth_path(index).siblings;
  for (std::size_t l = 0; l < tree.depth(); ++l) {
    view.filled_subtrees_[l] =
        tree.node_at(l, frontier_index(view.leaf_count_, l));
  }
  return view;
}

PartialMerkleView PartialMerkleView::root_tracker(
    const IncrementalMerkleTree& tree) {
  PartialMerkleView view(tree.depth(), kNoMember);
  view.leaf_count_ = tree.size();
  view.root_ = tree.root();
  for (std::size_t l = 0; l < tree.depth(); ++l) {
    view.filled_subtrees_[l] =
        view.leaf_count_ == 0
            ? zero_at(l)
            : tree.node_at(l, frontier_index(view.leaf_count_, l));
  }
  return view;
}

void PartialMerkleView::on_insert(const Fr& leaf) {
  WAKU_EXPECTS(leaf_count_ < (std::uint64_t{1} << depth_));
  const std::uint64_t n = leaf_count_;
  Fr cur = leaf;
  for (std::size_t l = 0; l < depth_; ++l) {
    const std::uint64_t j = n >> l;
    if (tracks_member() && j == ((my_index_ >> l) ^ 1)) {
      siblings_[l] = cur;  // the appended leaf lives in my sibling subtree
    }
    if ((j & 1) == 0) {
      filled_subtrees_[l] = cur;
      cur = hash_pair(cur, zero_at(l));
    } else {
      cur = hash_pair(filled_subtrees_[l], cur);
    }
  }
  root_ = cur;
  ++leaf_count_;
}

void PartialMerkleView::on_update(std::uint64_t index, const Fr& old_leaf,
                                  const Fr& new_leaf, const MerklePath& path) {
  WAKU_EXPECTS(index < leaf_count_);
  WAKU_EXPECTS(path.index == index);
  WAKU_EXPECTS(path.siblings.size() == depth_);

  // A stale path means this view is out of sync with the contract event
  // stream; the caller must resync (paper §III-C).
  const std::vector<Fr>& walk =
      index == my_index_ ? siblings_ : path.siblings;
  const MerklePath walk_path{index, walk};
  if (compute_root(old_leaf, walk_path) != root_) {
    throw ContractViolation("PartialMerkleView: update path does not match root");
  }
  if (index == my_index_) {
    WAKU_EXPECTS(old_leaf == my_leaf_);
    my_leaf_ = new_leaf;
  }

  Fr cur = new_leaf;
  for (std::size_t l = 0; l < depth_; ++l) {
    const std::uint64_t j = index >> l;
    if (tracks_member() && index != my_index_ &&
        j == ((my_index_ >> l) ^ 1)) {
      siblings_[l] = cur;
    }
    if ((j & 1) == 0 && j == frontier_index(leaf_count_, l)) {
      filled_subtrees_[l] = cur;  // keep the append frontier coherent
    }
    cur = ((j & 1) == 0) ? hash_pair(cur, walk[l]) : hash_pair(walk[l], cur);
  }
  root_ = cur;
}

MerklePath PartialMerkleView::auth_path() const {
  WAKU_EXPECTS(tracks_member());
  return MerklePath{my_index_, siblings_};
}

Bytes PartialMerkleView::serialize() const {
  ByteWriter w;
  w.write_u32(static_cast<std::uint32_t>(depth_));
  w.write_u64(my_index_);  // kNoMember round-trips for root-tracker views
  w.write_u64(leaf_count_);
  w.write_raw(my_leaf_.to_bytes_be());
  w.write_raw(root_.to_bytes_be());
  for (const Fr& s : siblings_) w.write_raw(s.to_bytes_be());
  for (const Fr& f : filled_subtrees_) w.write_raw(f.to_bytes_be());
  return std::move(w).take();
}

PartialMerkleView PartialMerkleView::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  const std::uint32_t depth = r.read_u32();
  WAKU_EXPECTS(depth >= 1 && depth <= 40);
  const std::uint64_t my_index = r.read_u64();
  PartialMerkleView view(depth, my_index);
  view.leaf_count_ = r.read_u64();
  view.my_leaf_ = Fr::from_bytes_reduce(r.read_raw(32));
  view.root_ = Fr::from_bytes_reduce(r.read_raw(32));
  for (std::size_t l = 0; l < depth; ++l) {
    view.siblings_[l] = Fr::from_bytes_reduce(r.read_raw(32));
  }
  for (std::size_t l = 0; l < depth; ++l) {
    view.filled_subtrees_[l] = Fr::from_bytes_reduce(r.read_raw(32));
  }
  return view;
}

std::size_t PartialMerkleView::storage_bytes() const {
  // my_leaf + root + auth path + frontier, 32 bytes each, plus two indices.
  return (2 + siblings_.size() + filled_subtrees_.size()) * 32 + 16;
}

}  // namespace waku::merkle
