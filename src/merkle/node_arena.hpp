// Paged node arena: the dense storage backend for IncrementalMerkleTree.
//
// A depth-20 tree has ~2^21 nodes; held as per-level std::vectors the
// append path pays reallocation copies (a 1M-leaf level-0 vector is 32 MB
// moved several times over) and a sparse tree still materializes every
// prefix slot. The arena instead slices each level into fixed-size pages of
// contiguous Fr slabs, level-major, allocated only when a node inside them
// is first written. Unmaterialized pages read back as the precomputed
// empty-subtree ladder (zero_at), so empty regions cost nothing: a full
// 2^20-leaf tree is ~2k dense 32 KB pages (~67 MB, the figure §IV quotes),
// while a 1k-leaf tree in the same depth-20 geometry stays under a MB.
//
// Pages near the root are clamped to the level's capacity (level d-1 has
// two nodes; a 32 KB page there would be pure waste), so per-tree overhead
// from page rounding is bounded by ~one page per level.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ff/fr.hpp"

namespace waku::merkle {

using ff::Fr;

/// Hash of an empty subtree whose root sits at `level` (level 0 = leaf).
/// Defined in merkle_tree.cpp; the arena uses it as the backing value for
/// unmaterialized pages.
const Fr& zero_at(std::size_t level);

class PagedNodeArena {
 public:
  /// Nodes per page at full-width levels (32 KB of Fr per page).
  static constexpr std::size_t kPageNodes = 1024;

  /// `depth` in [1, 40]; the arena stores levels 0..depth inclusive.
  explicit PagedNodeArena(std::size_t depth);

  /// Page width at `level`: kPageNodes clamped to the level's capacity.
  [[nodiscard]] std::uint64_t page_nodes(std::size_t level) const {
    const std::uint64_t cap = level_capacity(level);
    return cap < kPageNodes ? cap : kPageNodes;
  }

  /// Node value at (level, idx); the zero-subtree hash when the page
  /// holding it was never materialized.
  [[nodiscard]] const Fr& get(std::size_t level, std::uint64_t idx) const;

  /// Stores a node, materializing its page on first touch. Writing the
  /// level's zero value into an unmaterialized page only advances the
  /// high-water mark — the page stays lazy, so deletions and restores of
  /// mostly-empty regions allocate nothing.
  void set(std::size_t level, std::uint64_t idx, const Fr& value);

  /// High-water mark: one past the highest index ever set() at `level`.
  /// Matches the dense prefix length the serialized form carries.
  [[nodiscard]] std::uint64_t used(std::size_t level) const {
    return levels_[level].used;
  }

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::size_t materialized_pages() const;

  /// Bytes of node storage actually allocated (materialized pages only).
  [[nodiscard]] std::size_t storage_bytes() const;

 private:
  struct Level {
    // pages[p] covers node indices [p*page_nodes, (p+1)*page_nodes);
    // nullptr means every node in the range is the zero-subtree hash.
    std::vector<std::unique_ptr<Fr[]>> pages;
    std::uint64_t used = 0;
  };

  [[nodiscard]] std::uint64_t level_capacity(std::size_t level) const {
    return std::uint64_t{1} << (depth_ - level);
  }

  std::size_t depth_;
  std::vector<Level> levels_;
};

}  // namespace waku::merkle
