// Storage-efficient partial Merkle view (paper §IV-A, reference [18]).
//
// A peer keeps only O(log N) state — its own leaf, its authentication path,
// the append frontier, and the root — yet can process the contract's member
// insertion/deletion event stream and keep both the root and its own auth
// path current. This is the optimization the paper credits with reducing
// per-peer storage from 67 MB (full depth-20 tree) to well under a kilobyte.
//
// Event requirements mirror the paper's discussion: appends need no extra
// data (the frontier suffices); arbitrary-position updates (deletions /
// slashing) need the affected leaf's current auth path, which the slasher
// supplies alongside the contract call (cf. the encrypted-auth-path
// registration idea in §IV-A).
#pragma once

#include <cstdint>
#include <vector>

#include "merkle/merkle_tree.hpp"

namespace waku::merkle {

class PartialMerkleView {
 public:
  /// Snapshots the O(log N) view of `tree` for the member at `index`.
  static PartialMerkleView from_tree(const IncrementalMerkleTree& tree,
                                     std::uint64_t index);

  /// Root-tracking-only view (no member leaf): follows inserts/updates and
  /// maintains the root, for relay-only peers that validate proofs but
  /// never publish. auth_path()/my_leaf() are unavailable in this mode.
  static PartialMerkleView root_tracker(const IncrementalMerkleTree& tree);

  /// False for root_tracker views.
  [[nodiscard]] bool tracks_member() const { return my_index_ != kNoMember; }

  /// Processes a MemberInserted event (append at the next free index).
  void on_insert(const Fr& leaf);

  /// Processes an update/delete event at an arbitrary index. `path` must be
  /// the affected leaf's auth path in the *current* tree and `old_leaf` its
  /// current value; throws ContractViolation if they do not match the
  /// tracked root (a desynced peer must resync, §III-C).
  void on_update(std::uint64_t index, const Fr& old_leaf, const Fr& new_leaf,
                 const MerklePath& path);

  [[nodiscard]] const Fr& root() const { return root_; }
  [[nodiscard]] MerklePath auth_path() const;
  [[nodiscard]] std::uint64_t my_index() const { return my_index_; }
  [[nodiscard]] const Fr& my_leaf() const { return my_leaf_; }
  [[nodiscard]] std::uint64_t size() const { return leaf_count_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// Bytes of Merkle state held — the E4 comparison against the full tree.
  [[nodiscard]] std::size_t storage_bytes() const;

  /// O(log N) serialization — this is what rides in light-client bootstrap
  /// checkpoints and node snapshots. serialize(deserialize(b)) == b.
  [[nodiscard]] Bytes serialize() const;
  static PartialMerkleView deserialize(BytesView bytes);

 private:
  static constexpr std::uint64_t kNoMember = ~std::uint64_t{0};

  PartialMerkleView(std::size_t depth, std::uint64_t index);

  std::size_t depth_;
  std::uint64_t my_index_;
  std::uint64_t leaf_count_ = 0;
  Fr my_leaf_;
  Fr root_;
  std::vector<Fr> siblings_;          // my auth path, levels 0..depth-1
  std::vector<Fr> filled_subtrees_;   // append frontier, levels 0..depth-1
};

}  // namespace waku::merkle
