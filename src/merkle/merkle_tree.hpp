// Identity-commitment Merkle tree (paper §II-B, §III-C).
//
// Fixed-depth binary tree over Poseidon2 with zero-subtree padding: an
// empty leaf is Fr(0) and the empty subtree hash at level l+1 is
// H(z_l, z_l). Deletion (slashing) writes the zero leaf back, exactly as
// the contract's "delete" semantics in the paper.
//
// IncrementalMerkleTree stores every computed node — O(N) per peer, the
// configuration whose cost §IV quotes as 67 MB at depth 20. Nodes live in a
// PagedNodeArena (node_arena.hpp): level-major fixed-size pages of
// contiguous Fr, materialized lazily against the empty-subtree ladder, so a
// 2^20-leaf tree is ~2k dense pages and appends never pay vector
// reallocation copies. The O(log N) alternative lives in partial_view.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ff/fr.hpp"
#include "merkle/node_arena.hpp"

namespace waku::merkle {

using ff::Fr;

/// Authentication path: the sibling node at every level from leaf to root.
/// Bit i of `index` gives the direction at level i (0 = current node is a
/// left child, sibling on the right).
struct MerklePath {
  std::uint64_t index = 0;
  std::vector<Fr> siblings;

  [[nodiscard]] std::size_t depth() const { return siblings.size(); }
  friend bool operator==(const MerklePath&, const MerklePath&) = default;
};

/// Hash of an empty subtree whose root sits at `level` (level 0 = leaf).
const Fr& zero_at(std::size_t level);

/// Wire encoding of an auth path (used in slashing-event payloads so light
/// peers can apply removals to their partial views, cf. [18]).
Bytes serialize_path(const MerklePath& path);
MerklePath deserialize_path(BytesView bytes);

/// Recomputes the root implied by `leaf` and `path`.
Fr compute_root(const Fr& leaf, const MerklePath& path);

/// Verifies that (leaf, path) hashes to `root`.
bool verify_path(const Fr& root, const Fr& leaf, const MerklePath& path);

/// Append-friendly Merkle tree holding all computed nodes.
class IncrementalMerkleTree {
 public:
  /// Depth in [1, 40]; capacity is 2^depth leaves.
  explicit IncrementalMerkleTree(std::size_t depth);

  /// Appends a leaf; returns its index. Throws if the tree is full.
  std::uint64_t insert(const Fr& leaf);

  /// Appends `leaves` as one transition and returns the index of the first.
  /// Instead of recomputing a root-to-leaf path per append (n·depth
  /// hashes), each level is rehashed once over the affected index range —
  /// ~2n + depth hashes total, which is what makes batched registration
  /// amortize. Equivalent to insert() in a loop, observed at the end.
  std::uint64_t insert_batch(std::span<const Fr> leaves);

  /// Overwrites the leaf at `index` (must be < size()).
  void update(std::uint64_t index, const Fr& leaf);

  /// Deletion per the paper: reset the leaf to the zero value.
  void remove(std::uint64_t index) { update(index, Fr::zero()); }

  [[nodiscard]] Fr root() const;
  [[nodiscard]] MerklePath auth_path(std::uint64_t index) const;
  [[nodiscard]] const Fr& leaf(std::uint64_t index) const;

  /// Value of the node at (level, idx), zero-subtree hash if not stored.
  [[nodiscard]] Fr node_at(std::size_t level, std::uint64_t idx) const;

  /// Number of appended leaves (zeroed leaves still count; indices are
  /// never reused, matching the contract's append-only member list).
  [[nodiscard]] std::uint64_t size() const { return leaf_count_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::uint64_t capacity() const {
    return std::uint64_t{1} << depth_;
  }

  /// Bytes of node storage currently held — the quantity E4 measures.
  /// Counts materialized arena pages, so it includes page-rounding slack
  /// (bounded by ~one page per level) but not lazily-zero regions.
  [[nodiscard]] std::size_t storage_bytes() const;

  /// Materialized arena pages (diagnostic; see PagedNodeArena).
  [[nodiscard]] std::size_t arena_pages() const {
    return arena_.materialized_pages();
  }

  /// Full-state serialization (every stored node), so a restart restores
  /// the tree by memcpy-speed deserialization instead of re-hashing the
  /// whole insert history. serialize(deserialize(b)) == b.
  [[nodiscard]] Bytes serialize() const;
  static IncrementalMerkleTree deserialize(BytesView bytes);

 private:
  void recompute_path(std::uint64_t leaf_index);

  std::size_t depth_;
  std::uint64_t leaf_count_ = 0;
  // Level-major paged node storage; pages materialize as leaves are
  // appended, so allocation is O(inserted leaves) + one page per level.
  PagedNodeArena arena_;
};

}  // namespace waku::merkle
