#include "merkle/merkle_tree.hpp"

#include <array>
#include <mutex>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"

namespace waku::merkle {

namespace {
constexpr std::size_t kMaxDepth = 40;

Fr hash_pair(const Fr& l, const Fr& r) { return hash::poseidon2(l, r); }
}  // namespace

const Fr& zero_at(std::size_t level) {
  WAKU_EXPECTS(level <= kMaxDepth);
  static std::vector<Fr> cache;
  static std::once_flag once;
  std::call_once(once, [] {
    cache.resize(kMaxDepth + 1);
    cache[0] = Fr::zero();
    for (std::size_t l = 1; l <= kMaxDepth; ++l) {
      cache[l] = hash_pair(cache[l - 1], cache[l - 1]);
    }
  });
  return cache[level];
}

Bytes serialize_path(const MerklePath& path) {
  ByteWriter w;
  w.write_u64(path.index);
  w.write_u32(static_cast<std::uint32_t>(path.siblings.size()));
  for (const Fr& s : path.siblings) w.write_raw(s.to_bytes_be());
  return std::move(w).take();
}

MerklePath deserialize_path(BytesView bytes) {
  ByteReader r(bytes);
  MerklePath path;
  path.index = r.read_u64();
  const std::uint32_t n = r.read_u32();
  WAKU_EXPECTS(n <= kMaxDepth);
  path.siblings.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    path.siblings.push_back(Fr::from_bytes_reduce(r.read_raw(32)));
  }
  return path;
}

Fr compute_root(const Fr& leaf, const MerklePath& path) {
  Fr cur = leaf;
  for (std::size_t l = 0; l < path.siblings.size(); ++l) {
    const bool is_right = (path.index >> l) & 1;
    cur = is_right ? hash_pair(path.siblings[l], cur)
                   : hash_pair(cur, path.siblings[l]);
  }
  return cur;
}

bool verify_path(const Fr& root, const Fr& leaf, const MerklePath& path) {
  return compute_root(leaf, path) == root;
}

IncrementalMerkleTree::IncrementalMerkleTree(std::size_t depth)
    : depth_(depth), arena_(depth) {
  WAKU_EXPECTS(depth >= 1 && depth <= kMaxDepth);
}

Fr IncrementalMerkleTree::node_at(std::size_t level, std::uint64_t idx) const {
  WAKU_EXPECTS(level <= depth_);
  return arena_.get(level, idx);
}

void IncrementalMerkleTree::recompute_path(std::uint64_t leaf_index) {
  std::uint64_t idx = leaf_index;
  for (std::size_t l = 0; l < depth_; ++l) {
    const std::uint64_t parent = idx >> 1;
    const Fr& left = arena_.get(l, parent * 2);
    const Fr& right = arena_.get(l, parent * 2 + 1);
    arena_.set(l + 1, parent, hash_pair(left, right));
    idx = parent;
  }
}

std::uint64_t IncrementalMerkleTree::insert(const Fr& leaf) {
  WAKU_EXPECTS(leaf_count_ < capacity());
  const std::uint64_t index = leaf_count_++;
  arena_.set(0, index, leaf);
  recompute_path(index);
  return index;
}

std::uint64_t IncrementalMerkleTree::insert_batch(std::span<const Fr> leaves) {
  if (leaves.empty()) return leaf_count_;
  WAKU_EXPECTS(leaves.size() <= capacity() &&
               leaf_count_ <= capacity() - leaves.size());
  const std::uint64_t base = leaf_count_;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    arena_.set(0, base + i, leaves[i]);
  }
  leaf_count_ += leaves.size();
  // Rehash each level once over the parents of the touched range; the
  // range halves per level, so the whole batch costs ~2n + depth hashes.
  std::uint64_t lo = base;
  std::uint64_t hi = leaf_count_ - 1;
  for (std::size_t l = 0; l < depth_; ++l) {
    lo >>= 1;
    hi >>= 1;
    for (std::uint64_t p = lo; p <= hi; ++p) {
      arena_.set(l + 1, p,
                 hash_pair(arena_.get(l, p * 2), arena_.get(l, p * 2 + 1)));
    }
  }
  return base;
}

void IncrementalMerkleTree::update(std::uint64_t index, const Fr& leaf) {
  WAKU_EXPECTS(index < leaf_count_);
  arena_.set(0, index, leaf);
  recompute_path(index);
}

Fr IncrementalMerkleTree::root() const { return node_at(depth_, 0); }

MerklePath IncrementalMerkleTree::auth_path(std::uint64_t index) const {
  WAKU_EXPECTS(index < leaf_count_);
  MerklePath path;
  path.index = index;
  path.siblings.reserve(depth_);
  std::uint64_t idx = index;
  for (std::size_t l = 0; l < depth_; ++l) {
    path.siblings.push_back(node_at(l, idx ^ 1));
    idx >>= 1;
  }
  return path;
}

const Fr& IncrementalMerkleTree::leaf(std::uint64_t index) const {
  WAKU_EXPECTS(index < leaf_count_);
  return arena_.get(0, index);
}

// Wire format (unchanged from the pre-arena implementation, so snapshots
// restore across the backend swap): u32 depth | u64 leaf_count | per level
// (u64 dense-prefix length, then that many 32-byte big-endian nodes). The
// dense prefix is the arena's high-water mark; gaps inside it are the
// zero-subtree hash and round-trip exactly.
Bytes IncrementalMerkleTree::serialize() const {
  ByteWriter w;
  w.write_u32(static_cast<std::uint32_t>(depth_));
  w.write_u64(leaf_count_);
  for (std::size_t l = 0; l <= depth_; ++l) {
    const std::uint64_t n = arena_.used(l);
    w.write_u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      w.write_raw(arena_.get(l, i).to_bytes_be());
    }
  }
  return std::move(w).take();
}

IncrementalMerkleTree IncrementalMerkleTree::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  const std::uint32_t depth = r.read_u32();
  WAKU_EXPECTS(depth >= 1 && depth <= kMaxDepth);
  IncrementalMerkleTree tree(depth);
  tree.leaf_count_ = r.read_u64();
  WAKU_EXPECTS(tree.leaf_count_ <= tree.capacity());
  for (std::size_t l = 0; l <= depth; ++l) {
    const std::uint64_t n = r.read_u64();
    WAKU_EXPECTS(n <= (std::uint64_t{1} << (depth - l)));
    for (std::uint64_t i = 0; i < n; ++i) {
      // set() skips materializing pages for zero-ladder values, so a
      // restored tree is as lazily paged as the one that was serialized.
      tree.arena_.set(l, i, Fr::from_bytes_reduce(r.read_raw(32)));
    }
  }
  return tree;
}

std::size_t IncrementalMerkleTree::storage_bytes() const {
  return arena_.storage_bytes();
}

}  // namespace waku::merkle
