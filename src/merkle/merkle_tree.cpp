#include "merkle/merkle_tree.hpp"

#include <array>
#include <mutex>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"

namespace waku::merkle {

namespace {
constexpr std::size_t kMaxDepth = 40;

Fr hash_pair(const Fr& l, const Fr& r) { return hash::poseidon2(l, r); }
}  // namespace

const Fr& zero_at(std::size_t level) {
  WAKU_EXPECTS(level <= kMaxDepth);
  static std::vector<Fr> cache;
  static std::once_flag once;
  std::call_once(once, [] {
    cache.resize(kMaxDepth + 1);
    cache[0] = Fr::zero();
    for (std::size_t l = 1; l <= kMaxDepth; ++l) {
      cache[l] = hash_pair(cache[l - 1], cache[l - 1]);
    }
  });
  return cache[level];
}

Bytes serialize_path(const MerklePath& path) {
  ByteWriter w;
  w.write_u64(path.index);
  w.write_u32(static_cast<std::uint32_t>(path.siblings.size()));
  for (const Fr& s : path.siblings) w.write_raw(s.to_bytes_be());
  return std::move(w).take();
}

MerklePath deserialize_path(BytesView bytes) {
  ByteReader r(bytes);
  MerklePath path;
  path.index = r.read_u64();
  const std::uint32_t n = r.read_u32();
  WAKU_EXPECTS(n <= kMaxDepth);
  path.siblings.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    path.siblings.push_back(Fr::from_bytes_reduce(r.read_raw(32)));
  }
  return path;
}

Fr compute_root(const Fr& leaf, const MerklePath& path) {
  Fr cur = leaf;
  for (std::size_t l = 0; l < path.siblings.size(); ++l) {
    const bool is_right = (path.index >> l) & 1;
    cur = is_right ? hash_pair(path.siblings[l], cur)
                   : hash_pair(cur, path.siblings[l]);
  }
  return cur;
}

bool verify_path(const Fr& root, const Fr& leaf, const MerklePath& path) {
  return compute_root(leaf, path) == root;
}

IncrementalMerkleTree::IncrementalMerkleTree(std::size_t depth)
    : depth_(depth), levels_(depth + 1) {
  WAKU_EXPECTS(depth >= 1 && depth <= kMaxDepth);
}

void IncrementalMerkleTree::store(std::size_t level, std::uint64_t idx,
                                  const Fr& value) {
  auto& lvl = levels_[level];
  if (idx >= lvl.size()) {
    lvl.resize(idx + 1, zero_at(level));
  }
  lvl[idx] = value;
}

Fr IncrementalMerkleTree::node_at(std::size_t level, std::uint64_t idx) const {
  WAKU_EXPECTS(level <= depth_);
  const auto& lvl = levels_[level];
  return idx < lvl.size() ? lvl[idx] : zero_at(level);
}

void IncrementalMerkleTree::recompute_path(std::uint64_t leaf_index) {
  std::uint64_t idx = leaf_index;
  for (std::size_t l = 0; l < depth_; ++l) {
    const std::uint64_t parent = idx >> 1;
    const Fr left = node_at(l, parent * 2);
    const Fr right = node_at(l, parent * 2 + 1);
    store(l + 1, parent, hash_pair(left, right));
    idx = parent;
  }
}

std::uint64_t IncrementalMerkleTree::insert(const Fr& leaf) {
  WAKU_EXPECTS(leaf_count_ < capacity());
  const std::uint64_t index = leaf_count_++;
  store(0, index, leaf);
  recompute_path(index);
  return index;
}

void IncrementalMerkleTree::update(std::uint64_t index, const Fr& leaf) {
  WAKU_EXPECTS(index < leaf_count_);
  store(0, index, leaf);
  recompute_path(index);
}

Fr IncrementalMerkleTree::root() const { return node_at(depth_, 0); }

MerklePath IncrementalMerkleTree::auth_path(std::uint64_t index) const {
  WAKU_EXPECTS(index < leaf_count_);
  MerklePath path;
  path.index = index;
  path.siblings.reserve(depth_);
  std::uint64_t idx = index;
  for (std::size_t l = 0; l < depth_; ++l) {
    path.siblings.push_back(node_at(l, idx ^ 1));
    idx >>= 1;
  }
  return path;
}

const Fr& IncrementalMerkleTree::leaf(std::uint64_t index) const {
  WAKU_EXPECTS(index < leaf_count_ && index < levels_[0].size());
  return levels_[0][index];
}

Bytes IncrementalMerkleTree::serialize() const {
  ByteWriter w;
  w.write_u32(static_cast<std::uint32_t>(depth_));
  w.write_u64(leaf_count_);
  for (const auto& lvl : levels_) {
    w.write_u64(lvl.size());
    for (const Fr& node : lvl) w.write_raw(node.to_bytes_be());
  }
  return std::move(w).take();
}

IncrementalMerkleTree IncrementalMerkleTree::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  const std::uint32_t depth = r.read_u32();
  WAKU_EXPECTS(depth >= 1 && depth <= kMaxDepth);
  IncrementalMerkleTree tree(depth);
  tree.leaf_count_ = r.read_u64();
  WAKU_EXPECTS(tree.leaf_count_ <= tree.capacity());
  for (std::size_t l = 0; l <= depth; ++l) {
    const std::uint64_t n = r.read_u64();
    WAKU_EXPECTS(n <= (std::uint64_t{1} << (depth - l)));
    auto& lvl = tree.levels_[l];
    lvl.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      lvl.push_back(Fr::from_bytes_reduce(r.read_raw(32)));
    }
  }
  return tree;
}

std::size_t IncrementalMerkleTree::storage_bytes() const {
  std::size_t nodes = 0;
  for (const auto& lvl : levels_) nodes += lvl.size();
  return nodes * 32;  // canonical Fr serialization is 32 bytes
}

}  // namespace waku::merkle
