#include "rln/validation_pipeline.hpp"

#include "common/expect.hpp"
#include "common/serde.hpp"

namespace waku::rln {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kAccept:
      return "accept";
    case Verdict::kIgnoreEpochGap:
      return "ignore-epoch-gap";
    case Verdict::kIgnoreDuplicate:
      return "ignore-duplicate";
    case Verdict::kRejectNoProof:
      return "reject-no-proof";
    case Verdict::kRejectBadProof:
      return "reject-bad-proof";
    case Verdict::kRejectStaleRoot:
      return "reject-stale-root";
    case Verdict::kRejectSpam:
      return "reject-spam";
  }
  return "unknown";
}

namespace {

/// Per-message working state threaded through the stages.
struct Slot {
  std::optional<RateLimitProof> bundle;
  Fr x;                     ///< recomputed message hash H(m)
  std::uint64_t proof_fp = 0;
  bool settled = false;     ///< verdict already written by a cheap stage
  bool verified = false;    ///< survived stage 4
  NullifierLog* log = nullptr;  ///< stage-3/5 log (selector may redirect)
};

/// FNV-1a over the 128 proof bytes. Distinguishes a byte-identical echo
/// (safe to drop without re-verifying) from a replay with tampered proof
/// bytes (must reach the verifier and earn its reject penalty). Not
/// collision-resistant — a collision only downgrades a reject to an
/// ignore for one echo, never accepts anything.
std::uint64_t proof_fingerprint(const zksnark::Proof& proof) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const std::array<std::uint8_t, 32>& part) {
    for (const std::uint8_t b : part) {
      h = (h ^ b) * 0x100000001b3ULL;
    }
  };
  mix(proof.a);
  mix(proof.b);
  mix(proof.c);
  mix(proof.binding);
  return h;
}

/// One clock-read pair around a stage; both ends are skipped entirely
/// when the pipeline has no clock wired (telemetry off). The histogram
/// may independently be null (metrics struct without that stage).
class StageTimer {
 public:
  StageTimer(const obs::Clock* clock, obs::Histogram* sink)
      : clock_(clock), sink_(sink) {
    if (clock_ != nullptr && sink_ != nullptr) {
      start_ns_ = clock_->now_ns();
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { stop(); }

  /// Redirects the pending sample (stage 4 decides batch-vs-fallback
  /// only after the verifier returns).
  void set_sink(obs::Histogram* sink) { sink_ = sink; }

  void stop() {
    if (clock_ != nullptr && sink_ != nullptr && !stopped_) {
      sink_->record(clock_->now_ns() - start_ns_);
    }
    stopped_ = true;
  }

 private:
  const obs::Clock* clock_;
  obs::Histogram* sink_;
  std::uint64_t start_ns_ = 0;
  bool stopped_ = false;
};

}  // namespace

ValidationPipeline::ValidationPipeline(const zksnark::VerifyingKey& vk,
                                       const GroupManager& group,
                                       ValidatorConfig config,
                                       std::uint64_t seed)
    : vk_(vk), group_(group), config_(config), rng_(seed) {}

std::vector<ValidationOutcome> ValidationPipeline::validate_batch(
    std::span<const WakuMessage> messages, std::uint64_t local_now_ms) {
  return validate_impl(messages, {}, local_now_ms);
}

std::vector<ValidationOutcome> ValidationPipeline::validate_batch(
    std::span<const WakuMessage> messages,
    std::span<const std::uint64_t> received_at_ms) {
  WAKU_EXPECTS(received_at_ms.size() == messages.size());
  return validate_impl(messages, received_at_ms, 0);
}

std::vector<ValidationOutcome> ValidationPipeline::validate_impl(
    std::span<const WakuMessage> messages,
    std::span<const std::uint64_t> received_at_ms,
    std::uint64_t uniform_now_ms) {
  ++stats_.batches;
  const std::size_t n = messages.size();
  std::vector<ValidationOutcome> out(n);
  std::vector<Slot> slots(n);

  // Per-stage verdicts are independent of the loop structure (each stage
  // reads only its own message's state; the precheck merely peeks), so
  // the stages run as separate passes: one clock-read pair per stage per
  // window instead of per message, and the cheapest-first cost ordering
  // is preserved per pass.
  const PipelineMetrics* m = obs_metrics_;
  StageTimer window_timer(obs_clock_, m ? m->window : nullptr);

  // Stage 1: proof extraction + epoch-gap gate (§III-F item 1), against
  // each message's arrival time.
  {
    StageTimer t(obs_clock_, m ? m->epoch_gate : nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots[i];
      // During a generation cutover the selector routes this message's
      // rate-limit domain to a log shared across both generations'
      // meshes.
      slot.log = &log_;
      if (log_selector_) {
        if (NullifierLog* redirected = log_selector_(messages[i])) {
          slot.log = redirected;
        }
      }
      slot.bundle = extract_proof(messages[i]);
      if (!slot.bundle.has_value()) {
        ++stats_.no_proof;
        out[i] = {Verdict::kRejectNoProof, std::nullopt};
        slot.settled = true;
        continue;
      }
      const std::uint64_t local_epoch = config_.epoch.epoch_at(
          received_at_ms.empty() ? uniform_now_ms : received_at_ms[i]);
      if (epoch_distance(local_epoch, slot.bundle->epoch) >
          config_.max_epoch_gap) {
        ++stats_.epoch_gap;
        out[i] = {Verdict::kIgnoreEpochGap, std::nullopt};
        slot.settled = true;
      }
    }
  }

  // Stage 2: root freshness against the rolling root cache — removed
  // members must not keep proving against trees that still contain them.
  // A shard-local cache override (set_root_check) takes precedence.
  {
    StageTimer t(obs_clock_, m ? m->root_check : nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots[i];
      if (slot.settled) continue;
      if (root_check_ ? !root_check_(slot.bundle->root)
                      : !group_.is_recent_root(slot.bundle->root)) {
        ++stats_.stale_root;
        out[i] = {Verdict::kRejectStaleRoot, std::nullopt};
        slot.settled = true;
      }
    }
  }

  // Stage 3: hash-bind + nullifier precheck. The share must be bound to
  // this exact message: x = H(m); a mismatch can never verify (x is a
  // public input), so reject before the SNARK. Then a byte-identical
  // gossip echo (same share AND same proof bytes as the entry we already
  // verified) is dropped without re-verifying. A matching share with
  // *different* proof bytes is not short-circuited — it must reach the
  // verifier so a tampered replay still earns its reject penalty. A
  // different recorded share is a double-signal candidate and must also
  // pass the verifier before it becomes slashing material (otherwise
  // garbage shares could frame members).
  {
    StageTimer t(obs_clock_, m ? m->nullifier_precheck : nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots[i];
      if (slot.settled) continue;
      slot.x = message_hash(messages[i]);
      if (slot.x != slot.bundle->share_x) {
        ++stats_.bad_proof;
        out[i] = {Verdict::kRejectBadProof, std::nullopt};
        slot.settled = true;
        continue;
      }
      slot.proof_fp = proof_fingerprint(slot.bundle->proof);
      const std::optional<NullifierLog::Entry> prior =
          slot.log->peek(slot.bundle->epoch, slot.bundle->nullifier);
      if (prior.has_value() && prior->proof_fp == slot.proof_fp &&
          prior->share ==
              sss::Share{slot.bundle->share_x, slot.bundle->share_y}) {
        ++stats_.duplicates;
        ++stats_.precheck_duplicates;
        out[i] = {Verdict::kIgnoreDuplicate, std::nullopt};
        slot.settled = true;
      }
    }
  }

  // Stage 4: batched Groth16 over the survivors.
  std::vector<zksnark::BatchEntry> entries;
  std::vector<std::size_t> entry_slot;
  for (std::size_t i = 0; i < n; ++i) {
    if (slots[i].settled) continue;
    entries.push_back(zksnark::BatchEntry{
        slots[i].bundle->public_inputs(slots[i].x), slots[i].bundle->proof});
    entry_slot.push_back(i);
  }
  if (!entries.empty()) {
    // The sample lands in the batch histogram or the fallback histogram
    // depending on what the verifier actually did with this window.
    StageTimer t(obs_clock_, m ? m->groth16_batch : nullptr);
    const zksnark::BatchVerifyOutcome batch =
        zksnark::verify_batch(vk_, entries, rng_);
    if (batch.aggregated) {
      ++stats_.batch_aggregated;
    } else {
      ++stats_.batch_fallbacks;
      t.set_sink(m ? m->groth16_fallback : nullptr);
    }
    for (std::size_t k = 0; k < entries.size(); ++k) {
      slots[entry_slot[k]].verified = batch.ok[k];
    }
  }

  // Stage 5: rate limit + double-signal detection, in arrival order so a
  // batch is indistinguishable from the same messages fed one at a time.
  StageTimer stage5_timer(obs_clock_, m ? m->double_signal : nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    Slot& slot = slots[i];
    if (slot.settled) continue;
    const sss::Share share{slot.bundle->share_x, slot.bundle->share_y};
    if (!slot.verified) {
      // Partition invariance: fed one at a time, this message would have
      // been prechecked against a log that already holds the earlier batch
      // entries. A byte-identical recorded entry means it is an echo of an
      // already-proven signal — a duplicate, not a bad proof.
      const std::optional<NullifierLog::Entry> prior =
          slot.log->peek(slot.bundle->epoch, slot.bundle->nullifier);
      if (prior.has_value() && prior->proof_fp == slot.proof_fp &&
          prior->share == share) {
        // Not counted as a precheck duplicate: this one did reach the
        // SNARK stage (its twin hadn't been logged yet at precheck time).
        ++stats_.duplicates;
        out[i] = {Verdict::kIgnoreDuplicate, std::nullopt};
      } else {
        ++stats_.bad_proof;
        out[i] = {Verdict::kRejectBadProof, std::nullopt};
      }
      continue;
    }
    const NullifierLog::Result seen = slot.log->observe(
        slot.bundle->epoch, slot.bundle->nullifier, share, slot.proof_fp);
    switch (seen.outcome) {
      case NullifierLog::Outcome::kNew:
        ++stats_.accepted;
        out[i] = {Verdict::kAccept, std::nullopt};
        if (slot.log != &log_) {
          // Selector-routed: mirror into the own log (it is a subset of
          // the shared domain log, so this observe is always kNew) and
          // let the cutover hook journal the domain-tagged copy.
          (void)log_.observe(slot.bundle->epoch, slot.bundle->nullifier,
                             share, slot.proof_fp);
          if (cutover_observe_hook_) {
            cutover_observe_hook_(messages[i], slot.bundle->epoch,
                                  slot.bundle->nullifier, share,
                                  slot.proof_fp);
          }
        }
        // Journal the observation before the verdict leaves the pipeline:
        // shares exist only in transit, so a crash would otherwise blind
        // the restarted node to double-signals against this entry.
        if (observe_hook_) {
          observe_hook_(slot.bundle->epoch, slot.bundle->nullifier, share,
                        slot.proof_fp);
        }
        break;
      case NullifierLog::Outcome::kDuplicate:
        ++stats_.duplicates;
        out[i] = {Verdict::kIgnoreDuplicate, std::nullopt};
        break;
      case NullifierLog::Outcome::kConflict: {
        ++stats_.spam_detected;
        // Two distinct shares on the same line reconstruct sk (§II-B);
        // the same-x corner is equivocation without slashing material.
        std::optional<Fr> sk;
        if (seen.sk_recoverable) {
          sk = sss::rln_recover_secret(*seen.previous_share, share);
        }
        out[i] = {Verdict::kRejectSpam, sk};
        break;
      }
    }
  }
  return out;
}

ValidationOutcome ValidationPipeline::validate_one(
    const WakuMessage& message, std::uint64_t local_now_ms) {
  return validate_batch(std::span<const WakuMessage>(&message, 1),
                        local_now_ms)[0];
}

void ValidationPipeline::gc(std::uint64_t local_now_ms) {
  log_.gc(config_.epoch.epoch_at(local_now_ms), config_.max_epoch_gap);
}

ValidatorStats ValidationPipeline::stats() const {
  ValidatorStats s = stats_;
  const NullifierLog::Stats ls = log_.stats();
  s.log_entries = ls.entries;
  s.log_buckets = ls.buckets;
  s.log_conflicts = ls.conflicts;
  s.log_min_epoch = ls.min_epoch;
  return s;
}

void ValidationPipeline::inject_observation(std::uint64_t epoch,
                                            const Fr& nullifier,
                                            const sss::Share& share,
                                            std::uint64_t proof_fp) {
  (void)log_.observe(epoch, nullifier, share, proof_fp);
}

Bytes ValidationPipeline::serialize_state() const {
  ByteWriter w;
  w.write_u8(1);  // version
  w.write_bytes(log_.serialize());
  w.write_u64(stats_.accepted);
  w.write_u64(stats_.epoch_gap);
  w.write_u64(stats_.duplicates);
  w.write_u64(stats_.no_proof);
  w.write_u64(stats_.bad_proof);
  w.write_u64(stats_.stale_root);
  w.write_u64(stats_.spam_detected);
  w.write_u64(stats_.batches);
  w.write_u64(stats_.batch_aggregated);
  w.write_u64(stats_.batch_fallbacks);
  w.write_u64(stats_.precheck_duplicates);
  return std::move(w).take();
}

void ValidationPipeline::restore_state(BytesView bytes) {
  ByteReader r(bytes);
  WAKU_EXPECTS(r.read_u8() == 1);
  const Bytes log_bytes = r.read_bytes();
  log_.restore(log_bytes);
  stats_ = ValidatorStats{};
  stats_.accepted = r.read_u64();
  stats_.epoch_gap = r.read_u64();
  stats_.duplicates = r.read_u64();
  stats_.no_proof = r.read_u64();
  stats_.bad_proof = r.read_u64();
  stats_.stale_root = r.read_u64();
  stats_.spam_detected = r.read_u64();
  stats_.batches = r.read_u64();
  stats_.batch_aggregated = r.read_u64();
  stats_.batch_fallbacks = r.read_u64();
  stats_.precheck_duplicates = r.read_u64();
}

}  // namespace waku::rln
