// The routing-time spam check (paper §III-F): every relaying peer runs
// this over each incoming message, in cost order —
//
//   1. epoch gap:  |msg.epoch - local epoch| <= Thr, else drop;
//   2. proof:      zkSNARK verifies against (H(m), y, phi, epoch, tau)
//                  with tau restricted to recent local roots;
//   3. rate:       the nullifier log detects duplicates and double-signals;
//                  a double-signal yields the spammer's sk via Shamir
//                  recovery — the slashing trigger.
#pragma once

#include <optional>

#include "rln/epoch.hpp"
#include "rln/group_manager.hpp"
#include "rln/nullifier_log.hpp"
#include "rln/rate_limit_proof.hpp"
#include "zksnark/groth16.hpp"

namespace waku::rln {

/// Why a message was accepted or dropped; the relay maps this onto
/// gossipsub validation results (Reject penalizes the sender).
enum class Verdict {
  kAccept,
  kIgnoreEpochGap,    ///< too old / too far in the future (benign: skew)
  kIgnoreDuplicate,   ///< same share seen already (gossip echo)
  kRejectNoProof,     ///< missing/malformed proof bundle
  kRejectBadProof,    ///< zkSNARK verification failed
  kRejectStaleRoot,   ///< proof made against an unknown/old tree root
  kRejectSpam,        ///< double-signal detected -> slashing material
};

[[nodiscard]] const char* verdict_name(Verdict v);

struct ValidationOutcome {
  Verdict verdict = Verdict::kAccept;
  /// Set on kRejectSpam: the recovered identity secret key of the spammer.
  std::optional<Fr> recovered_sk;
};

struct ValidatorConfig {
  EpochConfig epoch;
  std::uint64_t max_epoch_gap = 2;  ///< Thr (paper §III-F)
};

struct ValidatorStats {
  std::uint64_t accepted = 0;
  std::uint64_t epoch_gap = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t no_proof = 0;
  std::uint64_t bad_proof = 0;
  std::uint64_t stale_root = 0;
  std::uint64_t spam_detected = 0;
};

class RlnValidator {
 public:
  RlnValidator(const zksnark::VerifyingKey& vk, const GroupManager& group,
               ValidatorConfig config);

  /// Validates `message` as seen at local wall-clock `local_now_ms`.
  ValidationOutcome validate(const WakuMessage& message,
                             std::uint64_t local_now_ms);

  /// Drops nullifier records older than Thr epochs.
  void gc(std::uint64_t local_now_ms);

  [[nodiscard]] const ValidatorStats& stats() const { return stats_; }
  [[nodiscard]] const NullifierLog& log() const { return log_; }
  [[nodiscard]] const ValidatorConfig& config() const { return config_; }

 private:
  const zksnark::VerifyingKey& vk_;
  const GroupManager& group_;
  ValidatorConfig config_;
  NullifierLog log_;
  ValidatorStats stats_;
};

}  // namespace waku::rln
