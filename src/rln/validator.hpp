// The routing-time spam check (paper §III-F) as a single-message facade.
//
// All verdict logic lives in the staged batch pipeline
// (rln/validation_pipeline.hpp); RlnValidator is a thin adapter that keeps
// the historical one-message-at-a-time shape for call sites that validate
// synchronously (tests, the lightpush service, benches). The relay path
// feeds windows of messages to the pipeline directly.
#pragma once

#include "rln/validation_pipeline.hpp"

namespace waku::rln {

class RlnValidator {
 public:
  RlnValidator(const zksnark::VerifyingKey& vk, const GroupManager& group,
               ValidatorConfig config, std::uint64_t seed = 0x9D1)
      : pipeline_(vk, group, config, seed) {}

  /// Validates `message` as seen at local wall-clock `local_now_ms`.
  ValidationOutcome validate(const WakuMessage& message,
                             std::uint64_t local_now_ms) {
    return pipeline_.validate_one(message, local_now_ms);
  }

  /// Validates a window of messages in one pipeline pass.
  std::vector<ValidationOutcome> validate_batch(
      std::span<const WakuMessage> messages, std::uint64_t local_now_ms) {
    return pipeline_.validate_batch(messages, local_now_ms);
  }

  /// Same, with per-message arrival times.
  std::vector<ValidationOutcome> validate_batch(
      std::span<const WakuMessage> messages,
      std::span<const std::uint64_t> received_at_ms) {
    return pipeline_.validate_batch(messages, received_at_ms);
  }

  /// Drops nullifier records older than Thr epochs.
  void gc(std::uint64_t local_now_ms) { pipeline_.gc(local_now_ms); }

  [[nodiscard]] ValidatorStats stats() const { return pipeline_.stats(); }
  [[nodiscard]] const NullifierLog& log() const { return pipeline_.log(); }
  [[nodiscard]] const ValidatorConfig& config() const {
    return pipeline_.config();
  }
  [[nodiscard]] ValidationPipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const ValidationPipeline& pipeline() const {
    return pipeline_;
  }

 private:
  ValidationPipeline pipeline_;
};

}  // namespace waku::rln
