#include "rln/light_client.hpp"

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {

RlnFullServiceNode::RlnFullServiceNode(net::Network& network,
                                       WakuRlnRelayNode& node)
    : network_(network),
      node_(node),
      id_(network.add_node(this)),
      // Default: the well-known development key — a real signing key, but
      // one every simulation participant can derive. Deployments call
      // set_checkpoint_signer with their own.
      checkpoint_key_(hash::schnorr::keygen_from_seed(0)) {
  WAKU_EXPECTS(node.group().mode() == TreeMode::kFullTree);
}

void RlnFullServiceNode::on_message(net::NodeId from, BytesView payload) {
  ByteReader r(payload);
  const auto type = static_cast<LightFrame>(r.read_u8());
  switch (type) {
    case LightFrame::kTreeReq: {
      ++tree_requests_;
      const std::uint64_t index = r.read_u64();
      if (index >= node_.group().member_count()) return;  // unknown member
      ByteWriter w;
      w.write_u8(static_cast<std::uint8_t>(LightFrame::kTreeResp));
      w.write_raw(node_.group().root().to_bytes_be());
      w.write_u64(node_.group().member_count());
      w.write_bytes(merkle::serialize_path(node_.group().path_of(index)));
      network_.send(id_, from, std::move(w).take());
      break;
    }
    case LightFrame::kCheckpointReq: {
      ++checkpoint_requests_;
      // Shard-scoped request: the client names its subscribed shards so
      // the served checkpoint carries only those shards' watermarks. A
      // malformed/absent list degrades to "all hosted shards".
      std::vector<shard::ShardId> requested;
      try {
        const std::uint16_t count = r.read_u16();
        for (std::uint16_t i = 0; i < count; ++i) {
          requested.push_back(r.read_u16());
        }
      } catch (const std::exception&) {
        requested.clear();
      }
      ByteWriter w;
      w.write_u8(static_cast<std::uint8_t>(LightFrame::kCheckpointResp));
      // The constructor requires a full-tree node, but a durable node can
      // restore into partial mode afterwards — a remote frame must never
      // be able to throw through export_checkpoint's precondition. The
      // refusal is an empty body (fails checkpoint parsing client-side)
      // rather than silence, so the client's bootstrap callback fires.
      if (node_.group().mode() == TreeMode::kFullTree) {
        Checkpoint checkpoint = node_.make_checkpoint(requested);
        checkpoint.sign(checkpoint_key_);
        w.write_bytes(checkpoint.serialize());
      } else {
        w.write_bytes({});
      }
      network_.send(id_, from, std::move(w).take());
      break;
    }
    case LightFrame::kDeltaReq: {
      ++delta_requests_;
      std::uint64_t from_cursor = 0;
      Fr from_root;
      std::vector<shard::ShardId> requested;
      bool parsed = false;
      try {
        from_cursor = r.read_u64();
        from_root = Fr::from_bytes_reduce(r.read_raw(32));
        parsed = true;
        const std::uint16_t count = r.read_u16();
        for (std::uint16_t i = 0; i < count; ++i) {
          requested.push_back(r.read_u16());
        }
      } catch (const std::exception&) {
        if (!parsed) return;  // no binding at all: nothing to answer
        requested.clear();    // malformed shard list degrades to "all"
      }
      ByteWriter w;
      w.write_u8(static_cast<std::uint8_t>(LightFrame::kDeltaResp));
      std::optional<DeltaCheckpoint> delta;
      if (node_.group().mode() == TreeMode::kFullTree) {
        delta = node_.make_delta_checkpoint(from_cursor, from_root,
                                            requested);
      }
      if (delta.has_value()) {
        delta->sign(checkpoint_key_);
        ++deltas_served_;
        w.write_u8(0);  // lossless delta
        w.write_bytes(delta->serialize());
      } else {
        // Fail-closed fallback: gap, root mismatch, or restarted history —
        // serve the full checkpoint (empty body if we cannot even do
        // that), never a lossy delta.
        ++delta_fallbacks_served_;
        w.write_u8(1);  // full-checkpoint fallback
        if (node_.group().mode() == TreeMode::kFullTree) {
          Checkpoint checkpoint = node_.make_checkpoint(requested);
          checkpoint.sign(checkpoint_key_);
          w.write_bytes(checkpoint.serialize());
        } else {
          w.write_bytes({});
        }
      }
      network_.send(id_, from, std::move(w).take());
      break;
    }
    case LightFrame::kPushReq: {
      WakuMessage msg;
      bool accepted = false;
      try {
        msg = WakuMessage::deserialize(r.read_bytes());
        // The service vouches for what it relays: run the message's
        // shard's full RLN pipeline (a window of one) before pushing into
        // that shard's mesh. Pushes for shards this node does not host
        // are refused — it has no nullifier log to enforce them against.
        const shard::ShardId shard =
            node_.validator().shard_of(msg.content_topic);
        if (node_.validator().subscribes(shard)) {
          const ValidationOutcome outcome =
              node_.validator().pipeline(shard).validate_one(
                  msg, network_.local_time(node_.node_id()));
          accepted = outcome.verdict == Verdict::kAccept;
        }
      } catch (const std::exception&) {
        accepted = false;
      }
      if (accepted) {
        node_.relay().publish_on(node_.shard_topic_for(msg.content_topic),
                                 msg);
        ++pushes_accepted_;
      } else {
        ++pushes_rejected_;
      }
      ByteWriter w;
      w.write_u8(static_cast<std::uint8_t>(LightFrame::kPushResp));
      w.write_u8(accepted ? 1 : 0);
      network_.send(id_, from, std::move(w).take());
      break;
    }
    default:
      break;  // not addressed to a service
  }
}

RlnLightClient::RlnLightClient(net::Network& network, Identity identity,
                               std::uint64_t member_index, EpochConfig epoch,
                               std::uint64_t seed, shard::ShardConfig shards)
    : network_(network),
      identity_(identity),
      member_index_(member_index),
      epoch_(epoch),
      shards_config_(std::move(shards)),
      rng_(seed),
      id_(network.add_node(this)) {}

RlnLightClient::~RlnLightClient() {
  if (chain_ != nullptr && chain_subscription_.has_value()) {
    chain_->unsubscribe_events(*chain_subscription_);
  }
}

void RlnLightClient::attach_chain(chain::Blockchain& chain,
                                  chain::Address contract,
                                  const Fr& service_pk) {
  chain_ = &chain;
  contract_ = contract;
  service_pk_ = service_pk;
}

void RlnLightClient::bootstrap(net::NodeId service, BootstrapResult done) {
  WAKU_EXPECTS(chain_ != nullptr);  // attach_chain first
  pending_bootstraps_.push_back(std::move(done));
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(LightFrame::kCheckpointReq));
  // Shard-scoped: request only our subscription set's watermarks.
  const std::vector<shard::ShardId> subscribed =
      shards_config_.subscribed_shards();
  w.write_u16(static_cast<std::uint16_t>(subscribed.size()));
  for (const shard::ShardId shard : subscribed) w.write_u16(shard);
  network_.send(id_, service, std::move(w).take());
}

bool RlnLightClient::adopt_checkpoint(const Checkpoint& checkpoint) {
  // An unsolicited kCheckpointResp can arrive before attach_chain(): with
  // no chain to cross-check against there is nothing to adopt (and with no
  // service key on file the signature cannot be judged anyway).
  if (chain_ == nullptr) return false;
  // 1. Attestation: a real Schnorr signature under the service's public
  //    key. Fail-closed on any payload or signature tampering.
  if (!checkpoint.verify(service_pk_)) return false;
  // 1b. Shard scope: every shard we subscribe to must come with the
  //     serving log's GC watermark — without it we cannot know which old
  //     epochs that shard already expired, so adopt nothing.
  std::vector<shard::ShardWatermark> watermarks;
  for (const shard::ShardId shard : shards_config_.subscribed_shards()) {
    const std::optional<std::uint64_t> wm = checkpoint.watermark_for(shard);
    if (!wm.has_value()) return false;
    watermarks.push_back(shard::ShardWatermark{shard, *wm});
  }
  // 2. Internal consistency: the view's root must close the root window
  //    (from_checkpoint enforces this; a mismatch throws).
  // 3. Contract cross-check, both directions: the member counter the
  //    checkpoint claims can be at most what the contract has registered —
  //    a forged "future" tree fails here even with a stolen key — and at
  //    least the contract count minus the lag tolerance: a correctly
  //    signed but outdated checkpoint (the eclipse attack's payload) is
  //    rejected as stale instead of silently adopted.
  bool installing = false;
  try {
    const Bytes count_bytes =
        chain_->static_call(contract_, "member_count", {});
    ByteReader count(count_bytes);
    const std::uint64_t contract_members = count.read_u64();
    if (checkpoint.member_count > contract_members) return false;
    if (checkpoint.member_count + max_bootstrap_lag_ < contract_members) {
      ++stale_checkpoints_rejected_;
      return false;
    }

    // Everything that can reject the checkpoint runs on locals first: a
    // refused re-bootstrap must leave an existing good bootstrap intact.
    GroupManager group =
        GroupManager::from_checkpoint(checkpoint.group_checkpoint());

    installing = true;
    validator_.reset();
    group_.emplace(std::move(group));
    validator_.emplace(zksnark::rln_keypair(group_->depth()).vk, *group_,
                       ValidatorConfig{epoch_, /*max_epoch_gap=*/2},
                       shards_config_, rng_.next_u64());
    validator_->seed_nullifier_watermarks(watermarks);

    // Resume the contract event stream where the checkpoint left off —
    // this is the whole point: O(log N) transferred, zero genesis replay.
    bootstrap_cursor_ = checkpoint.event_cursor;
    events_applied_ = 0;
    const auto apply = [this](const chain::Event& ev) {
      if (!group_.has_value()) return;
      group_->on_event(ev);
      ++events_applied_;
    };
    chain_->replay_events(bootstrap_cursor_, apply);
    if (chain_subscription_.has_value()) {
      chain_->unsubscribe_events(*chain_subscription_);  // re-bootstrap
    }
    chain_subscription_ = chain_->subscribe_events(apply);
    return true;
  } catch (const std::exception&) {
    if (installing) {
      // Partially-installed state (e.g. the event replay rejected the
      // checkpoint's view) is unusable — tear it down.
      validator_.reset();
      group_.reset();
    }
    return false;
  }
}

void RlnLightClient::go_offline() {
  if (chain_ != nullptr && chain_subscription_.has_value()) {
    chain_->unsubscribe_events(*chain_subscription_);
    chain_subscription_.reset();
  }
}

void RlnLightClient::delta_sync(net::NodeId service, DeltaSyncResult done) {
  WAKU_EXPECTS(bootstrapped());  // delta needs a state to be bound to
  pending_delta_syncs_.push_back(std::move(done));
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(LightFrame::kDeltaReq));
  w.write_u64(sync_cursor());
  w.write_raw(group_->recent_roots().back().to_bytes_be());
  const std::vector<shard::ShardId> subscribed =
      shards_config_.subscribed_shards();
  w.write_u16(static_cast<std::uint16_t>(subscribed.size()));
  for (const shard::ShardId shard : subscribed) w.write_u16(shard);
  network_.send(id_, service, std::move(w).take());
}

bool RlnLightClient::adopt_delta(const DeltaCheckpoint& delta) {
  if (chain_ == nullptr || !bootstrapped()) return false;
  // 1. Attestation, same scheme as the full checkpoint's.
  if (!delta.verify(service_pk_)) return false;
  // 2. Binding: the delta must fast-forward from exactly our state —
  //    a delta built against any other (cursor, root) base is meaningless
  //    to apply here.
  if (delta.from_cursor != sync_cursor()) return false;
  const std::vector<Fr> roots = group_->recent_roots();
  if (roots.empty() || roots.back() != delta.from_root) return false;
  // 3. Monotonicity + shard coverage, as in the full adoption path.
  if (delta.to_cursor < delta.from_cursor) return false;
  if (delta.member_count < group_->member_count() ||
      delta.removed_count < group_->removed_count()) {
    return false;
  }
  std::vector<shard::ShardWatermark> watermarks;
  for (const shard::ShardId shard : shards_config_.subscribed_shards()) {
    const std::optional<std::uint64_t> wm = delta.watermark_for(shard);
    if (!wm.has_value()) return false;
    watermarks.push_back(shard::ShardWatermark{shard, *wm});
  }
  // 4. Contract cross-check: the claimed destination may not be ahead of
  //    the chain (forged future) nor further behind it than the lag
  //    tolerance (replayed stale delta).
  try {
    const Bytes count_bytes =
        chain_->static_call(contract_, "member_count", {});
    ByteReader count(count_bytes);
    const std::uint64_t contract_members = count.read_u64();
    if (delta.member_count > contract_members) return false;
    if (delta.member_count + max_bootstrap_lag_ < contract_members) {
      ++stale_checkpoints_rejected_;
      return false;
    }
  } catch (const std::exception&) {
    return false;
  }

  group_->advance_window(delta.root_tail, delta.member_count,
                         delta.removed_count);
  validator_->seed_nullifier_watermarks(watermarks);
  bootstrap_cursor_ = delta.to_cursor;
  events_applied_ = 0;
  ++delta_syncs_applied_;
  return true;
}

ValidationOutcome RlnLightClient::validate(const WakuMessage& message,
                                           std::uint64_t local_now_ms) {
  WAKU_EXPECTS(validator_.has_value());
  const shard::ShardId shard = validator_->shard_of(message.content_topic);
  WAKU_EXPECTS(validator_->subscribes(shard));
  return validator_->pipeline(shard).validate_one(message, local_now_ms);
}

void RlnLightClient::publish(net::NodeId service, Bytes payload,
                             const std::string& content_topic,
                             PushResult done) {
  pending_.push_back(PendingPublish{std::move(payload), content_topic,
                                    service, std::move(done)});
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(LightFrame::kTreeReq));
  w.write_u64(member_index_);
  network_.send(id_, service, std::move(w).take());
}

void RlnLightClient::on_message(net::NodeId from, BytesView payload) {
  ByteReader r(payload);
  const auto type = static_cast<LightFrame>(r.read_u8());
  switch (type) {
    case LightFrame::kTreeResp: {
      if (pending_.empty()) return;
      PendingPublish job = std::move(pending_.front());
      pending_.erase(pending_.begin());

      (void)Fr::from_bytes_reduce(r.read_raw(32));  // root (implied by path)
      (void)r.read_u64();                           // member count
      const merkle::MerklePath path = merkle::deserialize_path(r.read_bytes());

      // Build the proof bundle locally: the secret key never leaves us.
      WakuMessage msg;
      msg.payload = std::move(job.payload);
      msg.content_topic = job.content_topic;
      msg.timestamp_ms = network_.local_time(id_);

      const std::uint64_t epoch = epoch_.epoch_at(network_.local_time(id_));
      zksnark::RlnProverInput input;
      input.sk = identity_.sk;
      input.path = path;
      input.x = message_hash(msg);
      input.epoch = Fr::from_u64(epoch);
      zksnark::RlnCircuit circuit = zksnark::build_rln_circuit(input);
      const zksnark::Keypair& kp =
          zksnark::rln_keypair(path.siblings.size());
      RateLimitProof bundle;
      bundle.share_x = circuit.publics.x;
      bundle.share_y = circuit.publics.y;
      bundle.nullifier = circuit.publics.nullifier;
      bundle.epoch = epoch;
      bundle.root = circuit.publics.root;
      bundle.proof = zksnark::prove(kp.pk, circuit.builder.cs(),
                                    circuit.builder.assignment(), rng_);
      attach_proof(msg, bundle);

      ByteWriter w;
      w.write_u8(static_cast<std::uint8_t>(LightFrame::kPushReq));
      w.write_bytes(msg.serialize());
      network_.send(id_, job.service, std::move(w).take());
      ++published_;
      if (job.done) {
        // Ack arrives via kPushResp; remember the callback.
        pending_acks_.push_back(std::move(job.done));
      }
      break;
    }
    case LightFrame::kPushResp: {
      const bool accepted = r.read_u8() != 0;
      if (accepted) ++acked_;
      if (!pending_acks_.empty()) {
        auto cb = std::move(pending_acks_.front());
        pending_acks_.erase(pending_acks_.begin());
        cb(accepted);
      }
      break;
    }
    case LightFrame::kCheckpointResp: {
      bool ok = false;
      try {
        ok = adopt_checkpoint(Checkpoint::deserialize(r.read_bytes()));
      } catch (const std::exception&) {
        ok = false;  // malformed response: stay un-bootstrapped
      }
      if (!pending_bootstraps_.empty()) {
        auto cb = std::move(pending_bootstraps_.front());
        pending_bootstraps_.erase(pending_bootstraps_.begin());
        if (cb) cb(ok);
      }
      break;
    }
    case LightFrame::kDeltaResp: {
      bool ok = false;
      try {
        const std::uint8_t kind = r.read_u8();
        if (kind == 0) {
          ok = adopt_delta(DeltaCheckpoint::deserialize(r.read_bytes()));
        } else {
          // Fail-closed fallback: the server could not prove a lossless
          // delta, so a full checkpoint arrives and goes through the
          // complete bootstrap verification (and re-subscribes; poll-mode
          // clients call go_offline() again).
          ok = adopt_checkpoint(Checkpoint::deserialize(r.read_bytes()));
          if (ok) ++delta_full_fallbacks_;
        }
      } catch (const std::exception&) {
        ok = false;  // malformed response: keep the current state
      }
      if (!pending_delta_syncs_.empty()) {
        auto cb = std::move(pending_delta_syncs_.front());
        pending_delta_syncs_.erase(pending_delta_syncs_.begin());
        if (cb) cb(ok);
      }
      break;
    }
    default:
      break;
  }
  (void)from;
}

}  // namespace waku::rln
