// Light-client publishing: the §IV-A hybrid architecture plus
// 19/WAKU2-LIGHTPUSH.
//
// A resource-restricted member holds only its 32-byte identity key. To
// publish it needs (a) a fresh auth path + root — served on demand by a
// storage-rich full node ("peers with adequate storage capacity retain the
// tree and supply the necessary information to the resource-limited peers
// upon request", §IV-A) — and (b) a relay — the lightpush service publishes
// the finished, proof-carrying message on the client's behalf. The client
// never joins the mesh and never stores the tree; proof generation stays
// client-side so the sk never leaves the device.
#pragma once

#include <functional>

#include "net/network.hpp"
#include "rln/epoch.hpp"
#include "rln/node.hpp"

namespace waku::rln {

/// Service half: answers tree-sync queries from the node's full
/// GroupManager and lightpush requests via the node's relay (after running
/// the pushed message through the node's own RLN validation).
class RlnFullServiceNode : public net::NetNode {
 public:
  /// `node` must run a kFullTree group manager and outlive the service.
  RlnFullServiceNode(net::Network& network, WakuRlnRelayNode& node);

  void on_message(net::NodeId from, BytesView payload) override;

  [[nodiscard]] net::NodeId node_id() const { return id_; }
  [[nodiscard]] std::uint64_t tree_requests() const { return tree_requests_; }
  [[nodiscard]] std::uint64_t pushes_accepted() const {
    return pushes_accepted_;
  }
  [[nodiscard]] std::uint64_t pushes_rejected() const {
    return pushes_rejected_;
  }

 private:
  net::Network& network_;
  WakuRlnRelayNode& node_;
  net::NodeId id_;
  std::uint64_t tree_requests_ = 0;
  std::uint64_t pushes_accepted_ = 0;
  std::uint64_t pushes_rejected_ = 0;
};

/// Client half: a registered member (identity + member index known, e.g.
/// registration performed out of band) that publishes via a service node.
class RlnLightClient : public net::NetNode {
 public:
  /// Called when the service acknowledges (or refuses) a push.
  using PushResult = std::function<void(bool accepted)>;

  RlnLightClient(net::Network& network, Identity identity,
                 std::uint64_t member_index, EpochConfig epoch,
                 std::uint64_t seed);

  /// Fetches a fresh path from `service`, builds the proof bundle locally,
  /// and lightpushes the message. Asynchronous; `done` fires on the ack.
  void publish(net::NodeId service, Bytes payload,
               const std::string& content_topic, PushResult done = nullptr);

  void on_message(net::NodeId from, BytesView payload) override;

  [[nodiscard]] net::NodeId node_id() const { return id_; }
  [[nodiscard]] const Identity& identity() const { return identity_; }
  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t acked() const { return acked_; }

 private:
  struct PendingPublish {
    Bytes payload;
    std::string content_topic;
    net::NodeId service;
    PushResult done;
  };

  net::Network& network_;
  Identity identity_;
  std::uint64_t member_index_;
  EpochConfig epoch_;
  Rng rng_;
  net::NodeId id_;
  std::vector<PendingPublish> pending_;
  std::vector<PushResult> pending_acks_;
  std::uint64_t published_ = 0;
  std::uint64_t acked_ = 0;
};

}  // namespace waku::rln
