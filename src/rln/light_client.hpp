// Light-client publishing and bootstrap: the §IV-A hybrid architecture
// plus 19/WAKU2-LIGHTPUSH.
//
// A resource-restricted member holds only its 32-byte identity key. To
// publish it needs (a) a fresh auth path + root — served on demand by a
// storage-rich full node ("peers with adequate storage capacity retain the
// tree and supply the necessary information to the resource-limited peers
// upon request", §IV-A) — and (b) a relay — the lightpush service publishes
// the finished, proof-carrying message on the client's behalf. The client
// never joins the mesh and never stores the tree; proof generation stays
// client-side so the sk never leaves the device.
//
// Checkpoint bootstrap (rln/checkpoint.hpp): instead of replaying the
// contract event stream from genesis, a joining client fetches a
// Schnorr-signed O(log N) checkpoint (root window + root-tracker view +
// event cursor + per-shard nullifier watermarks) from a full peer,
// verifies it against the service's *public* key, and becomes a
// *validating* light peer immediately — it follows the event stream from
// the checkpoint's cursor and runs the full per-shard RLN pipeline on live
// traffic. The bootstrap is shard-scoped: the request names the client's
// subscribed shards and the served checkpoint carries only those shards'
// nullifier watermarks; a checkpoint missing a subscribed shard's
// watermark is rejected fail-closed (the client cannot know which old
// epochs that shard's serving log already expired).
#pragma once

#include <functional>
#include <optional>

#include "net/network.hpp"
#include "rln/epoch.hpp"
#include "rln/node.hpp"

namespace waku::rln {

/// Light-protocol frame tags (first byte of every service/client message).
/// Public so the adversarial scenario engine can impersonate a service —
/// the eclipse campaign's stale-checkpoint server speaks this protocol.
enum class LightFrame : std::uint8_t {
  kTreeReq = 1,        // u64 member index
  kTreeResp = 2,       // root(32) u64 count, path
  kPushReq = 3,        // serialized WakuMessage
  kPushResp = 4,       // u8 accepted
  kCheckpointReq = 5,  // u16 shard count, u16 shard ids (empty = all)
  kCheckpointResp = 6, // serialized signed Checkpoint
  kDeltaReq = 7,       // u64 from_cursor, from_root(32), u16 shard count+ids
  kDeltaResp = 8,      // u8 kind (0 = delta, 1 = full fallback), payload
};

/// Service half: answers tree-sync queries from the node's full
/// GroupManager and lightpush requests via the node's relay (after running
/// the pushed message through the node's own shard-scoped RLN validation).
class RlnFullServiceNode : public net::NetNode {
 public:
  /// `node` must run a kFullTree group manager and outlive the service.
  RlnFullServiceNode(net::Network& network, WakuRlnRelayNode& node);

  void on_message(net::NodeId from, BytesView payload) override;

  /// Key whose secret half signs served checkpoints; clients verify with
  /// the public half (distributed out of band — the PKI stand-in is the
  /// distribution, not the signature, which is a real Schnorr scheme).
  /// Unset, checkpoints are signed under the well-known development key
  /// (hash::schnorr::keygen_from_seed(0)).
  void set_checkpoint_signer(hash::schnorr::KeyPair key) {
    checkpoint_key_ = std::move(key);
  }
  [[nodiscard]] const Fr& checkpoint_pk() const { return checkpoint_key_.pk; }

  [[nodiscard]] net::NodeId node_id() const { return id_; }
  [[nodiscard]] std::uint64_t tree_requests() const { return tree_requests_; }
  [[nodiscard]] std::uint64_t checkpoint_requests() const {
    return checkpoint_requests_;
  }
  [[nodiscard]] std::uint64_t delta_requests() const {
    return delta_requests_;
  }
  [[nodiscard]] std::uint64_t deltas_served() const { return deltas_served_; }
  /// Delta requests answered with a full checkpoint because the node's
  /// root-transition history could not prove the delta lossless.
  [[nodiscard]] std::uint64_t delta_fallbacks_served() const {
    return delta_fallbacks_served_;
  }
  [[nodiscard]] std::uint64_t pushes_accepted() const {
    return pushes_accepted_;
  }
  [[nodiscard]] std::uint64_t pushes_rejected() const {
    return pushes_rejected_;
  }

 private:
  net::Network& network_;
  WakuRlnRelayNode& node_;
  net::NodeId id_;
  hash::schnorr::KeyPair checkpoint_key_;
  std::uint64_t tree_requests_ = 0;
  std::uint64_t checkpoint_requests_ = 0;
  std::uint64_t delta_requests_ = 0;
  std::uint64_t deltas_served_ = 0;
  std::uint64_t delta_fallbacks_served_ = 0;
  std::uint64_t pushes_accepted_ = 0;
  std::uint64_t pushes_rejected_ = 0;
};

/// Client half: a registered member (identity + member index known, e.g.
/// registration performed out of band) that publishes via a service node.
class RlnLightClient : public net::NetNode {
 public:
  /// Called when the service acknowledges (or refuses) a push.
  using PushResult = std::function<void(bool accepted)>;

  /// `shards` scopes the client to a shard subset (validators and
  /// checkpoint watermarks are built only for its subscription set); the
  /// default single-shard config reproduces the unsharded behaviour.
  RlnLightClient(net::Network& network, Identity identity,
                 std::uint64_t member_index, EpochConfig epoch,
                 std::uint64_t seed, shard::ShardConfig shards = {});
  ~RlnLightClient() override;

  /// Fetches a fresh path from `service`, builds the proof bundle locally,
  /// and lightpushes the message. Asynchronous; `done` fires on the ack.
  void publish(net::NodeId service, Bytes payload,
               const std::string& content_topic, PushResult done = nullptr);

  // -- Checkpoint bootstrap --------------------------------------------------

  using BootstrapResult = std::function<void(bool ok)>;

  /// Attaches the chain the checkpoint is cross-checked against and the
  /// service public key its Schnorr attestation must verify under. Call
  /// before bootstrap().
  void attach_chain(chain::Blockchain& chain, chain::Address contract,
                    const Fr& service_pk);

  /// Requests a signed checkpoint (scoped to this client's subscribed
  /// shards) from `service`. On a verified response the client builds an
  /// O(log N) root-tracking group view, subscribes to the contract event
  /// stream from the checkpoint's cursor, and becomes able to validate()
  /// live traffic on its shards. `done` fires with the outcome; a response
  /// failing verification leaves the client un-bootstrapped.
  void bootstrap(net::NodeId service, BootstrapResult done = nullptr);

  [[nodiscard]] bool bootstrapped() const { return validator_.has_value(); }

  // -- Delta sync (poll-mode window tracking) --------------------------------

  using DeltaSyncResult = std::function<void(bool ok)>;

  /// Detaches from the live contract event stream: the client stops
  /// folding per-event root transitions and instead advances its window
  /// by periodic delta_sync() polls — the cheap way to track a churning
  /// million-member window. Idempotent; bootstrap()/full fallback
  /// re-attach.
  void go_offline();

  /// Requests a delta checkpoint bound to this client's current (cursor,
  /// newest-root) state. A verified delta fast-forwards the root window,
  /// member counters, nullifier watermarks, and cursor in one ~200-byte
  /// exchange. A server that cannot prove a lossless delta (gap, root
  /// mismatch, restarted history) answers with a full checkpoint, adopted
  /// through the normal full-verification bootstrap path — the fail-closed
  /// fallback; that path re-subscribes to the event stream, so a client
  /// staying in poll mode calls go_offline() again. Requires
  /// bootstrapped().
  void delta_sync(net::NodeId service, DeltaSyncResult done = nullptr);

  /// Chain cursor the client's group state currently reflects.
  [[nodiscard]] std::uint64_t sync_cursor() const {
    return bootstrap_cursor_ + events_applied_;
  }
  [[nodiscard]] std::uint64_t delta_syncs_applied() const {
    return delta_syncs_applied_;
  }
  /// Delta requests that came back as (and were adopted via) full
  /// checkpoints.
  [[nodiscard]] std::uint64_t delta_full_fallbacks() const {
    return delta_full_fallbacks_;
  }

  /// Freshness tolerance for served checkpoints: a checkpoint whose member
  /// count lags the contract's by more than this many registrations is
  /// rejected as stale (eclipse defence — a victim fed an old-but-signed
  /// checkpoint detects it instead of validating against a dead root).
  /// The small default absorbs registrations mined between the serve and
  /// the adopt.
  void set_max_bootstrap_lag(std::uint64_t members) {
    max_bootstrap_lag_ = members;
  }
  [[nodiscard]] std::uint64_t stale_checkpoints_rejected() const {
    return stale_checkpoints_rejected_;
  }

  /// Runs the full RLN validation pipeline of the message's shard on a
  /// live message (requires bootstrapped() and a subscribed shard).
  ValidationOutcome validate(const WakuMessage& message,
                             std::uint64_t local_now_ms);

  /// The bootstrapped group view (requires bootstrapped()).
  [[nodiscard]] const GroupManager& light_group() const { return *group_; }
  /// The bootstrapped per-shard validator (requires bootstrapped()).
  [[nodiscard]] const shard::ShardedValidator& light_validator() const {
    return *validator_;
  }
  /// Event cursor the bootstrap started from (0 before bootstrap).
  [[nodiscard]] std::uint64_t bootstrap_cursor() const {
    return bootstrap_cursor_;
  }
  [[nodiscard]] std::uint64_t events_applied() const {
    return events_applied_;
  }

  void on_message(net::NodeId from, BytesView payload) override;

  [[nodiscard]] net::NodeId node_id() const { return id_; }
  [[nodiscard]] const Identity& identity() const { return identity_; }
  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t acked() const { return acked_; }

 private:
  struct PendingPublish {
    Bytes payload;
    std::string content_topic;
    net::NodeId service;
    PushResult done;
  };

  /// Verifies and installs a served checkpoint; false leaves state as-is.
  bool adopt_checkpoint(const Checkpoint& checkpoint);
  /// Verifies and applies a served delta; false leaves state as-is.
  bool adopt_delta(const DeltaCheckpoint& delta);

  net::Network& network_;
  Identity identity_;
  std::uint64_t member_index_;
  EpochConfig epoch_;
  shard::ShardConfig shards_config_;
  Rng rng_;
  net::NodeId id_;
  std::vector<PendingPublish> pending_;
  std::vector<PushResult> pending_acks_;
  std::uint64_t published_ = 0;
  std::uint64_t acked_ = 0;

  // Checkpoint bootstrap state. `group_` must outlive `validator_` (the
  // per-shard pipelines hold references); both are torn down together.
  chain::Blockchain* chain_ = nullptr;
  chain::Address contract_;
  Fr service_pk_;
  std::vector<BootstrapResult> pending_bootstraps_;
  std::optional<GroupManager> group_;
  std::optional<shard::ShardedValidator> validator_;
  std::optional<std::uint64_t> chain_subscription_;
  std::uint64_t bootstrap_cursor_ = 0;
  std::uint64_t events_applied_ = 0;
  std::uint64_t max_bootstrap_lag_ = 2;
  std::uint64_t stale_checkpoints_rejected_ = 0;
  std::vector<DeltaSyncResult> pending_delta_syncs_;
  std::uint64_t delta_syncs_applied_ = 0;
  std::uint64_t delta_full_fallbacks_ = 0;
};

}  // namespace waku::rln
