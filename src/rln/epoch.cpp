#include "rln/epoch.hpp"

#include "common/expect.hpp"

namespace waku::rln {

std::uint64_t max_epoch_gap(std::uint64_t network_delay_ms,
                            std::uint64_t clock_asynchrony_ms,
                            std::uint64_t epoch_length_ms) {
  WAKU_EXPECTS(epoch_length_ms > 0);
  const std::uint64_t total = network_delay_ms + clock_asynchrony_ms;
  return (total + epoch_length_ms - 1) / epoch_length_ms;  // ceil
}

}  // namespace waku::rln
