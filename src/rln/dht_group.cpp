#include "rln/dht_group.hpp"

#include "common/serde.hpp"

namespace waku::rln {

DhtGroupDirectory::DhtGroupDirectory(dht::DhtNode& dht, std::string group_name)
    : dht_(dht), name_(std::move(group_name)) {}

dht::Key DhtGroupDirectory::count_key() const {
  return dht::key_of_content(to_bytes("rln-group/" + name_ + "/count"));
}

dht::Key DhtGroupDirectory::member_key(std::uint64_t index) const {
  return dht::key_of_content(to_bytes("rln-group/" + name_ + "/member/" +
                                      std::to_string(index)));
}

void DhtGroupDirectory::register_member(
    const Fr& pk, std::function<void(std::uint64_t)> done) {
  // Read-claim-write: fetch the count, claim that index, bump the count.
  // Concurrent registrants can race for an index — a known open problem of
  // contract-less group management (see header).
  dht_.get(count_key(), [this, pk, done = std::move(done)](
                            std::optional<Bytes> count_value) {
    std::uint64_t index = 0;
    if (count_value.has_value()) {
      ByteReader r(*count_value);
      index = r.read_u64();
    }
    dht_.put(member_key(index), pk.to_bytes_be(),
             [this, index, done](std::size_t) {
               ByteWriter w;
               w.write_u64(index + 1);
               dht_.put(count_key(), std::move(w).take(),
                        [index, done](std::size_t) {
                          if (done) done(index);
                        });
             });
  });
}

void DhtGroupDirectory::fetch_members(
    std::shared_ptr<std::uint64_t> fetched, std::uint64_t upto,
    GroupManager& group, std::function<void(std::uint64_t)> done,
    std::uint64_t new_members) {
  if (*fetched >= upto) {
    if (done) done(new_members);
    return;
  }
  const std::uint64_t index = (*fetched)++;
  dht_.get(member_key(index),
           [this, fetched, upto, &group, done = std::move(done), new_members,
            index](std::optional<Bytes> value) mutable {
             std::uint64_t added = new_members;
             if (value.has_value() && value->size() == 32) {
               // Feed through the standard contract-event path so the same
               // tree maintenance code runs for DHT-managed groups.
               chain::Event ev;
               ev.name = "MemberRegistered";
               ev.topics = {ff::U256{index},
                            ff::u256_from_bytes_be(*value)};
               group.on_event(ev);
               ++added;
             }
             fetch_members(fetched, upto, group, std::move(done), added);
           });
}

void DhtGroupDirectory::sync(GroupManager& group,
                             std::function<void(std::uint64_t)> done) {
  dht_.get(count_key(), [this, &group, done = std::move(done)](
                            std::optional<Bytes> count_value) mutable {
    if (!count_value.has_value()) {
      if (done) done(0);
      return;
    }
    ByteReader r(*count_value);
    const std::uint64_t count = r.read_u64();
    const auto fetched =
        std::make_shared<std::uint64_t>(group.member_count());
    fetch_members(fetched, count, group, std::move(done), 0);
  });
}

}  // namespace waku::rln
