// Distributed group management over a DHT — the paper's §IV-A future-work
// direction implemented: registration and membership discovery go through
// a Kademlia DHT instead of the Ethereum contract, removing the
// block-mining delay from the registration path ("registration
// transactions are subject to delay as they have to be mined").
//
// Records:
//   count record  : "rln-group/<name>/count"  -> u64 next free index
//   member record : "rln-group/<name>/member/<index>" -> pk (32B)
//
// Trade-offs faithfully preserved (this is why the paper calls it an open
// direction, not a drop-in): no deposits, so no economic slashing — only
// removal-by-consensus is possible — and index assignment is a
// read-modify-write that can race under concurrent registrations. The
// ablation bench (bench_dht_group) quantifies the latency side.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "dht/kademlia.hpp"
#include "rln/group_manager.hpp"

namespace waku::rln {

class DhtGroupDirectory {
 public:
  /// `dht` is this peer's DHT endpoint; `group_name` namespaces records.
  DhtGroupDirectory(dht::DhtNode& dht, std::string group_name = "default");

  /// Claims the next free index and publishes the member record.
  /// `done(index)` fires once both records are replicated.
  void register_member(const Fr& pk,
                       std::function<void(std::uint64_t index)> done);

  /// Fetches member records this GroupManager has not seen yet and feeds
  /// them in contract-event form (so the same tree/sync code paths run).
  /// `done(new_members)` fires when the directory has been drained.
  void sync(GroupManager& group, std::function<void(std::uint64_t)> done);

 private:
  dht::Key count_key() const;
  dht::Key member_key(std::uint64_t index) const;
  void fetch_members(std::shared_ptr<std::uint64_t> fetched,
                     std::uint64_t upto, GroupManager& group,
                     std::function<void(std::uint64_t)> done,
                     std::uint64_t new_members);

  dht::DhtNode& dht_;
  std::string name_;
};

}  // namespace waku::rln
