// The nullifier map (paper §III-F): every routing peer records the
// (x, y) share and internal nullifier of each valid message for the last
// Thr epochs. A repeated nullifier within an epoch is either a duplicate
// (same share) or a double-signal (different share), in which case the two
// shares reconstruct the spammer's secret key.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "sss/shamir.hpp"

namespace waku::rln {

using ff::Fr;

class NullifierLog {
 public:
  enum class Outcome {
    kNew,        ///< first message for this nullifier: relay it
    kDuplicate,  ///< identical share seen before: drop silently
    kConflict,   ///< different share: double-signal -> slash
  };

  struct Result {
    Outcome outcome = Outcome::kNew;
    /// On kConflict: the previously recorded share (to pair with the new
    /// one for secret recovery).
    std::optional<sss::Share> previous_share;
  };

  /// Checks the (epoch, nullifier, share) triple against the log and
  /// records it if new.
  Result observe(std::uint64_t epoch, const Fr& nullifier,
                 const sss::Share& share);

  /// Drops entries older than `thr` epochs before `current_epoch`
  /// (messages that old are rejected up front, so the log never needs
  /// them, §III-F).
  void gc(std::uint64_t current_epoch, std::uint64_t thr);

  [[nodiscard]] std::size_t epoch_count() const { return epochs_.size(); }
  [[nodiscard]] std::size_t entry_count() const;
  /// Approximate in-memory footprint (E4/E5 bookkeeping).
  [[nodiscard]] std::size_t storage_bytes() const;

 private:
  using EpochMap = std::unordered_map<Fr, sss::Share, ff::FrHash>;
  std::map<std::uint64_t, EpochMap> epochs_;  // ordered for cheap gc
};

}  // namespace waku::rln
