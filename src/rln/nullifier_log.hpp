// The nullifier map (paper §III-F): every routing peer records the
// (x, y) share and internal nullifier of each valid message for the last
// Thr epochs. A repeated nullifier within an epoch is either a duplicate
// (same share) or a double-signal (different share), in which case the two
// shares reconstruct the spammer's secret key.
//
// Storage is sharded into one hash bucket per epoch with a min-epoch
// watermark, so expiring an epoch is one bucket drop (O(1) per epoch)
// instead of a sweep over every record.
//
// Thread safety: the epoch buckets are distributed over a fixed set of
// lock stripes (stripe = epoch mod kStripes), so observe/peek/gc from
// different shards' worker threads (validation_executor.hpp) interleave
// without serializing on one lock — two distinct epochs almost always hit
// distinct stripes, and all traffic of one epoch must serialize anyway
// (the duplicate/conflict decision is an atomic read-modify-write on that
// epoch's bucket). The watermark and entry/bucket counters live behind a
// separate meta lock that is never held together with a stripe lock.
// observe() is linearizable per (epoch, nullifier): exactly one caller
// wins kNew, every identical-share racer sees kDuplicate, every
// conflicting-share racer sees kConflict with the recorded share.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sss/shamir.hpp"

namespace waku::rln {

using ff::Fr;

class NullifierLog {
 public:
  enum class Outcome {
    kNew,        ///< first message for this nullifier: relay it
    kDuplicate,  ///< identical share seen before: drop silently
    kConflict,   ///< different share: double-signal -> slash
  };

  struct Result {
    Outcome outcome = Outcome::kNew;
    /// On kConflict: the previously recorded share (to pair with the new
    /// one for secret recovery).
    std::optional<sss::Share> previous_share;
    /// On kConflict: whether the two shares can reconstruct sk. False when
    /// the equivocating share reuses the recorded x with a different y —
    /// identical-x points cannot be interpolated (Shamir needs distinct x),
    /// but mismatched y on the same x is still equivocation, not an echo.
    bool sk_recoverable = false;
  };

  struct Stats {
    std::size_t entries = 0;    ///< recorded (nullifier, share) pairs
    std::size_t buckets = 0;    ///< live epoch shards
    std::uint64_t conflicts = 0;  ///< double-signals observed since start
    /// GC watermark: no bucket is older than this epoch. Restart tests use
    /// it (with bucket_sizes()) to assert a restored log equals the
    /// pre-crash log.
    std::uint64_t min_epoch = 0;
    /// Total stripe-lock acquisitions that found the lock held (summed
    /// over stripes) — the direct measure of how often concurrent shard
    /// workers actually collide on a stripe.
    std::uint64_t stripe_contended = 0;
  };

  /// Stripe count: enough that 8-16 concurrent shard workers touching
  /// adjacent epochs rarely collide, small enough that whole-log walks
  /// (stats, serialize) stay trivial.
  static constexpr std::size_t kStripes = 16;

  /// Per-stripe lock traffic on the hot paths (observe/peek/gc):
  /// total acquisitions and how many of them had to wait.
  struct StripeContention {
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
  };

  /// What the log remembers per (epoch, nullifier): the Shamir share plus
  /// a fingerprint of the exact proof bytes that were verified with it.
  /// The fingerprint lets the validation pipeline's echo precheck skip the
  /// SNARK only for byte-identical replays — a replay with tampered proof
  /// bytes must still reach the verifier and earn its reject penalty.
  struct Entry {
    sss::Share share;
    std::uint64_t proof_fp = 0;
  };

  NullifierLog() = default;
  NullifierLog(const NullifierLog&) = delete;
  NullifierLog& operator=(const NullifierLog&) = delete;
  /// Movable for construction-time hand-offs only (a pipeline built by a
  /// factory and returned by value). Moves are NOT thread-safe — they
  /// happen strictly before any concurrent observer exists.
  NullifierLog(NullifierLog&& other) noexcept;
  NullifierLog& operator=(NullifierLog&& other) noexcept;

  /// Checks the (epoch, nullifier, share) triple against the log and
  /// records it (with `proof_fp`) if new. Duplicate/conflict is decided
  /// by the share alone: a re-proof of the same share (proof bytes differ
  /// by randomization) is still a duplicate signal, never a conflict.
  Result observe(std::uint64_t epoch, const Fr& nullifier,
                 const sss::Share& share, std::uint64_t proof_fp = 0);

  /// Read-only probe: the entry recorded for (epoch, nullifier), if any.
  /// Lets the validation pipeline short-circuit gossip echoes before the
  /// SNARK verifier without mutating the log.
  [[nodiscard]] std::optional<Entry> peek(std::uint64_t epoch,
                                          const Fr& nullifier) const;

  /// Drops entries older than `thr` epochs before `current_epoch`
  /// (messages that old are rejected up front, so the log never needs
  /// them, §III-F). Amortized O(1) per expired epoch via the watermark.
  /// Safe concurrently with observe/peek; an observe racing the sweep with
  /// an already-expired epoch may land below the watermark and is
  /// reclaimed by the next gc.
  void gc(std::uint64_t current_epoch, std::uint64_t thr);

  [[nodiscard]] Stats stats() const;
  /// Entry count per live epoch bucket, sorted by epoch — the per-shard
  /// view behind Stats, for restart equality assertions and operators.
  /// Consistent snapshot: all stripe locks are held (in index order) for
  /// the walk, so a concurrent GC or observe can never double-count or
  /// half-count an epoch bucket.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::size_t>>
  bucket_sizes() const;
  /// One entry per lock stripe, index order.
  [[nodiscard]] std::array<StripeContention, kStripes> stripe_contention()
      const;
  [[nodiscard]] std::size_t epoch_count() const;
  [[nodiscard]] std::size_t entry_count() const;
  /// Approximate in-memory footprint (E4/E5 bookkeeping).
  [[nodiscard]] std::size_t storage_bytes() const;

  /// Canonical full-state serialization (buckets sorted by epoch, entries
  /// by nullifier) — identical logs serialize to identical bytes, which is
  /// what the crash-restart suite asserts on. Not atomic against
  /// concurrent observers; call quiescent (snapshots run on the owner).
  [[nodiscard]] Bytes serialize() const;
  /// Replaces this log's contents with a serialized state.
  void restore(BytesView bytes);

  /// Sets the GC watermark on an empty log (checkpoint bootstrap: a light
  /// client must not accept messages from epochs the serving peer already
  /// expired).
  void seed_watermark(std::uint64_t min_epoch);

 private:
  using Bucket = std::unordered_map<Fr, Entry, ff::FrHash>;

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Bucket> buckets;
    /// Hot-path lock traffic (observe/peek/gc). Mutable + atomic: counted
    /// before the lock is held, including from const probes.
    mutable std::atomic<std::uint64_t> acquisitions{0};
    mutable std::atomic<std::uint64_t> contended{0};
  };
  /// Counts the acquisition (and whether it had to wait) then locks.
  /// Diagnostic walkers (stats/serialize/bucket_sizes) lock plainly —
  /// the counters measure hot-path collisions, not observability cost.
  static void lock_counted(const Stripe& stripe) {
    stripe.acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (!stripe.mu.try_lock()) {
      stripe.contended.fetch_add(1, std::memory_order_relaxed);
      stripe.mu.lock();
    }
  }
  Stripe& stripe_for(std::uint64_t epoch) {
    return stripes_[epoch % kStripes];
  }
  const Stripe& stripe_for(std::uint64_t epoch) const {
    return stripes_[epoch % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;

  /// Guards the watermark and the live entry/bucket counters. Never held
  /// together with a stripe lock (stripe work completes first, then meta
  /// is updated), so there is no lock-order relation to deadlock on.
  mutable std::mutex meta_mu_;
  std::uint64_t min_epoch_ = 0;  ///< no bucket is older than this watermark
  std::size_t entries_ = 0;
  std::size_t bucket_count_ = 0;

  /// Atomic: bumped inside the stripe critical section (meta is not held
  /// there), read by stats().
  std::atomic<std::uint64_t> conflicts_{0};
};

}  // namespace waku::rln
