#include "rln/group_manager.hpp"

#include <mutex>

#include "common/expect.hpp"
#include "common/serde.hpp"

namespace waku::rln {

using merkle::IncrementalMerkleTree;
using merkle::MerklePath;
using merkle::PartialMerkleView;

GroupManager::GroupManager(std::size_t depth, TreeMode mode,
                           std::size_t root_window)
    : depth_(depth), mode_(mode), root_window_(root_window) {
  WAKU_EXPECTS(root_window >= 1);
  root_ring_.resize(root_window_);
  tree_.emplace(depth);
  push_root();
}

GroupManager::GroupManager(GroupManager&& other) noexcept
    : depth_(other.depth_),
      mode_(other.mode_),
      root_window_(other.root_window_),
      tree_(std::move(other.tree_)),
      view_(std::move(other.view_)),
      own_identity_(std::move(other.own_identity_)),
      own_index_(other.own_index_),
      member_count_(other.member_count_),
      removed_count_(other.removed_count_),
      pk_index_(std::move(other.pk_index_)),
      root_ring_(std::move(other.root_ring_)),
      ring_head_(other.ring_head_),
      ring_size_(other.ring_size_),
      root_version_(other.root_version_.load(std::memory_order_relaxed)),
      root_index_(std::move(other.root_index_)) {}

GroupManager& GroupManager::operator=(GroupManager&& other) noexcept {
  if (this == &other) return *this;
  depth_ = other.depth_;
  mode_ = other.mode_;
  root_window_ = other.root_window_;
  tree_ = std::move(other.tree_);
  view_ = std::move(other.view_);
  own_identity_ = std::move(other.own_identity_);
  own_index_ = other.own_index_;
  member_count_ = other.member_count_;
  removed_count_ = other.removed_count_;
  pk_index_ = std::move(other.pk_index_);
  root_ring_ = std::move(other.root_ring_);
  ring_head_ = other.ring_head_;
  ring_size_ = other.ring_size_;
  root_version_.store(other.root_version_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  root_index_ = std::move(other.root_index_);
  return *this;
}

void GroupManager::set_own_identity(const Identity& identity) {
  WAKU_EXPECTS(!own_identity_.has_value());
  own_identity_ = identity;
}

void GroupManager::push_root() {
  const Fr r = root();
  // Single-writer: only the event-stream owner mutates the window, so the
  // unlocked newest-slot peek cannot race another writer; the lock below
  // only fences out concurrent readers.
  if (ring_size_ > 0) {
    const std::size_t newest =
        (ring_head_ + root_window_ - 1) % root_window_;
    if (root_ring_[newest] == r) return;  // no-op event; window unchanged
  }
  ring_push(r);
}

void GroupManager::ring_push(const Fr& r) {
  {
    std::unique_lock lk(root_mu_);
    if (ring_size_ == root_window_) {
      // Evict the oldest slot (the one the head is about to overwrite).
      const Fr& old = root_ring_[ring_head_];
      const auto it = root_index_.find(old);
      if (--it->second == 0) root_index_.erase(it);
    } else {
      ++ring_size_;
    }
    root_ring_[ring_head_] = r;
    ++root_index_[r];
    ring_head_ = (ring_head_ + 1) % root_window_;
  }
  // Version bumps after the mutation is published; a reader seeing the
  // new version therefore re-reads (under the lock) at least this state.
  root_version_.fetch_add(1, std::memory_order_release);
}

void GroupManager::ring_clear() {
  {
    std::unique_lock lk(root_mu_);
    ring_head_ = 0;
    ring_size_ = 0;
    root_index_.clear();
  }
  root_version_.fetch_add(1, std::memory_order_release);
}

void GroupManager::on_event(const chain::Event& event) {
  if (event.name == "MemberRegistered") {
    WAKU_EXPECTS(event.topics.size() >= 2);
    handle_registered(event.topics[0].limb[0],
                      Fr::from_u256_reduce(event.topics[1]));
  } else if (event.name == "MembersRegistered") {
    // Batched registration: topics {base, n}, data = n packed 32-byte pks.
    WAKU_EXPECTS(event.topics.size() >= 2);
    const std::uint64_t base = event.topics[0].limb[0];
    const std::uint64_t n = event.topics[1].limb[0];
    WAKU_EXPECTS(n > 0 && event.data.size() == n * 32);
    std::vector<Fr> pks;
    pks.reserve(n);
    ByteReader r(event.data);
    for (std::uint64_t i = 0; i < n; ++i) {
      pks.push_back(Fr::from_bytes_reduce(r.read_raw(32)));
    }
    handle_registered_batch(base, pks);
  } else if (event.name == "MemberSlashed" ||
             event.name == "MemberWithdrawn") {
    WAKU_EXPECTS(event.topics.size() >= 2);
    // The auth path in the event data is only needed by partial views;
    // full-tree peers recompute locally and tolerate its absence.
    MerklePath path;
    if (view_.has_value()) {
      path = merkle::deserialize_path(event.data);
    }
    handle_removed(event.topics[0].limb[0],
                   Fr::from_u256_reduce(event.topics[1]), path);
  } else if (event.name == "MembersWithdrawn") {
    // Batched withdraw: topics {n, payee}, data = n records of
    // (index u64, pk 32B, u32-prefixed path). Paths are sequentially
    // valid, so partial views apply records in order; the root window
    // advances once for the whole batch.
    WAKU_EXPECTS(!event.topics.empty());
    const std::uint64_t n = event.topics[0].limb[0];
    ByteReader r(event.data);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t index = r.read_u64();
      const Fr pk = Fr::from_bytes_reduce(r.read_raw(32));
      const Bytes path_bytes = r.read_bytes();
      MerklePath path;
      if (view_.has_value()) {
        path = merkle::deserialize_path(path_bytes);
      }
      apply_removed(index, pk, path);
    }
    push_root();
  }
  // Other events (SlashCommitted, ...) do not affect the tree.
}

void GroupManager::apply_registered(std::uint64_t index, const Fr& pk) {
  WAKU_EXPECTS(index == member_count_);
  ++member_count_;

  if (view_.has_value()) {
    view_->on_insert(pk);
  } else {
    tree_->insert(pk);
  }
  if (mode_ == TreeMode::kFullTree) {
    pk_index_[pk.to_u256()] = index;
  }

  if (own_identity_.has_value() && !own_index_.has_value() &&
      pk == own_identity_->pk) {
    own_index_ = index;
    if (mode_ == TreeMode::kPartialView) {
      // Bootstrap complete: shrink to the O(log N) view (paper [18]).
      view_ = PartialMerkleView::from_tree(*tree_, index);
      tree_.reset();
    }
  }
}

void GroupManager::handle_registered(std::uint64_t index, const Fr& pk) {
  apply_registered(index, pk);
  push_root();
}

void GroupManager::handle_registered_batch(std::uint64_t base,
                                           std::span<const Fr> pks) {
  WAKU_EXPECTS(base == member_count_);
  if (!view_.has_value() && mode_ == TreeMode::kFullTree &&
      !own_identity_.has_value()) {
    // Fast path: no own-identity scan or mid-batch view conversion can
    // trigger, so the whole batch goes through the level-once rehash.
    tree_->insert_batch(pks);
    member_count_ += pks.size();
    for (std::size_t i = 0; i < pks.size(); ++i) {
      pk_index_[pks[i].to_u256()] = base + i;
    }
  } else {
    for (std::size_t i = 0; i < pks.size(); ++i) {
      apply_registered(base + i, pks[i]);
    }
  }
  push_root();
}

void GroupManager::apply_removed(std::uint64_t index, const Fr& pk,
                                 const MerklePath& path) {
  ++removed_count_;
  if (view_.has_value()) {
    view_->on_update(index, pk, Fr::zero(), path);
  } else {
    WAKU_EXPECTS(index < tree_->size());
    WAKU_EXPECTS(tree_->leaf(index) == pk);
    tree_->remove(index);
  }
  if (mode_ == TreeMode::kFullTree) {
    pk_index_.erase(pk.to_u256());
  }
  if (own_index_.has_value() && *own_index_ == index) {
    own_index_.reset();  // we were slashed/withdrawn; publishing must stop
  }
}

void GroupManager::handle_removed(std::uint64_t index, const Fr& pk,
                                  const MerklePath& path) {
  apply_removed(index, pk, path);
  push_root();
}

void GroupManager::advance_window(std::span<const Fr> roots,
                                  std::uint64_t member_count,
                                  std::uint64_t removed_count) {
  WAKU_EXPECTS(member_count >= member_count_ &&
               removed_count >= removed_count_);
  member_count_ = member_count;
  removed_count_ = removed_count;
  for (const Fr& r : roots) ring_push(r);
}

Fr GroupManager::root() const {
  return view_.has_value() ? view_->root() : tree_->root();
}

bool GroupManager::is_recent_root(const Fr& r) const {
  std::shared_lock lk(root_mu_);
  return root_index_.contains(r);
}

std::size_t GroupManager::recent_root_count() const {
  std::shared_lock lk(root_mu_);
  return ring_size_;
}

merkle::MerklePath GroupManager::own_path() const {
  WAKU_EXPECTS(own_index_.has_value());
  return view_.has_value() ? view_->auth_path()
                           : tree_->auth_path(*own_index_);
}

std::optional<std::uint64_t> GroupManager::index_of(const Fr& pk) const {
  const auto it = pk_index_.find(pk.to_u256());
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

merkle::MerklePath GroupManager::path_of(std::uint64_t index) const {
  WAKU_EXPECTS(mode_ == TreeMode::kFullTree && tree_.has_value());
  return tree_->auth_path(index);
}

std::vector<Fr> GroupManager::recent_roots() const {
  std::shared_lock lk(root_mu_);
  std::vector<Fr> roots;
  roots.reserve(ring_size_);
  for (std::size_t k = 0; k < ring_size_; ++k) {
    const std::size_t slot =
        (ring_head_ + root_window_ - ring_size_ + k) % root_window_;
    roots.push_back(root_ring_[slot]);
  }
  return roots;
}

Bytes GroupManager::serialize(bool include_identity) const {
  ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(mode_));
  w.write_u32(static_cast<std::uint32_t>(depth_));
  w.write_u64(root_window_);
  w.write_u64(member_count_);
  w.write_u64(removed_count_);

  const bool with_identity = include_identity && own_identity_.has_value();
  w.write_u8(with_identity ? 1 : 0);
  if (with_identity) {
    w.write_raw(own_identity_->sk.to_bytes_be());
  }
  w.write_u8(own_index_.has_value() ? 1 : 0);
  if (own_index_.has_value()) w.write_u64(*own_index_);

  w.write_u8(tree_.has_value() ? 1 : 0);
  if (tree_.has_value()) w.write_bytes(tree_->serialize());
  w.write_u8(view_.has_value() ? 1 : 0);
  if (view_.has_value()) w.write_bytes(view_->serialize());

  // The root window is historical state (older roots are not recomputable
  // from the current tree), so it is serialized verbatim.
  const std::vector<Fr> roots = recent_roots();
  w.write_u64(roots.size());
  for (const Fr& r : roots) w.write_raw(r.to_bytes_be());
  return std::move(w).take();
}

void GroupManager::restore(BytesView bytes) {
  ByteReader r(bytes);
  mode_ = static_cast<TreeMode>(r.read_u8());
  depth_ = r.read_u32();
  root_window_ = r.read_u64();
  WAKU_EXPECTS(root_window_ >= 1);
  member_count_ = r.read_u64();
  removed_count_ = r.read_u64();

  own_identity_.reset();
  if (r.read_u8() != 0) {
    own_identity_ =
        Identity::from_secret(Fr::from_bytes_reduce(r.read_raw(32)));
  }
  own_index_.reset();
  if (r.read_u8() != 0) own_index_ = r.read_u64();

  tree_.reset();
  if (r.read_u8() != 0) {
    tree_ = merkle::IncrementalMerkleTree::deserialize(r.read_bytes());
  }
  view_.reset();
  if (r.read_u8() != 0) {
    view_ = merkle::PartialMerkleView::deserialize(r.read_bytes());
  }

  root_ring_.assign(root_window_, Fr::zero());
  ring_clear();
  const std::uint64_t root_count = r.read_u64();
  for (std::uint64_t i = 0; i < root_count; ++i) {
    ring_push(Fr::from_bytes_reduce(r.read_raw(32)));
  }
  rebuild_pk_index();
}

void GroupManager::rebuild_pk_index() {
  pk_index_.clear();
  if (mode_ != TreeMode::kFullTree || !tree_.has_value()) return;
  for (std::uint64_t i = 0; i < tree_->size(); ++i) {
    const Fr& leaf = tree_->leaf(i);
    if (!leaf.is_zero()) pk_index_[leaf.to_u256()] = i;
  }
}

GroupCheckpoint GroupManager::export_checkpoint() const {
  WAKU_EXPECTS(mode_ == TreeMode::kFullTree && tree_.has_value());
  GroupCheckpoint checkpoint;
  checkpoint.member_count = member_count_;
  checkpoint.removed_count = removed_count_;
  checkpoint.recent_roots = recent_roots();
  checkpoint.view = merkle::PartialMerkleView::root_tracker(*tree_).serialize();
  return checkpoint;
}

GroupManager GroupManager::from_checkpoint(const GroupCheckpoint& checkpoint,
                                           std::size_t root_window) {
  merkle::PartialMerkleView view =
      merkle::PartialMerkleView::deserialize(checkpoint.view);
  WAKU_EXPECTS(!checkpoint.recent_roots.empty());
  WAKU_EXPECTS(checkpoint.recent_roots.back() == view.root());

  GroupManager group(view.depth(), TreeMode::kPartialView, root_window);
  group.tree_.reset();
  group.view_ = std::move(view);
  group.member_count_ = checkpoint.member_count;
  group.removed_count_ = checkpoint.removed_count;
  group.ring_clear();
  // Adopt the exporter's window (clipped to our own capacity) so proofs
  // made against slightly older roots keep validating right after join.
  const std::size_t n = checkpoint.recent_roots.size();
  for (std::size_t k = n > root_window ? n - root_window : 0; k < n; ++k) {
    group.ring_push(checkpoint.recent_roots[k]);
  }
  return group;
}

std::size_t GroupManager::storage_bytes() const {
  // Ring slots plus the membership index (32-byte root + 4-byte refcount).
  std::size_t bytes = root_ring_.size() * 32 + root_index_.size() * (32 + 4);
  if (view_.has_value()) {
    bytes += view_->storage_bytes();
  } else {
    bytes += tree_->storage_bytes();
  }
  if (mode_ == TreeMode::kFullTree) {
    bytes += pk_index_.size() * (32 + 8);
  }
  return bytes;
}

}  // namespace waku::rln
