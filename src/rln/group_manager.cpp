#include "rln/group_manager.hpp"

#include "common/expect.hpp"

namespace waku::rln {

using merkle::IncrementalMerkleTree;
using merkle::MerklePath;
using merkle::PartialMerkleView;

GroupManager::GroupManager(std::size_t depth, TreeMode mode,
                           std::size_t root_window)
    : depth_(depth), mode_(mode), root_window_(root_window) {
  WAKU_EXPECTS(root_window >= 1);
  root_ring_.resize(root_window_);
  tree_.emplace(depth);
  push_root();
}

void GroupManager::set_own_identity(const Identity& identity) {
  WAKU_EXPECTS(!own_identity_.has_value());
  own_identity_ = identity;
}

void GroupManager::push_root() {
  const Fr r = root();
  if (ring_size_ > 0) {
    const std::size_t newest =
        (ring_head_ + root_window_ - 1) % root_window_;
    if (root_ring_[newest] == r) return;  // no-op event; window unchanged
  }
  if (ring_size_ == root_window_) {
    // Evict the oldest slot (the one the head is about to overwrite).
    const Fr& old = root_ring_[ring_head_];
    const auto it = root_index_.find(old);
    if (--it->second == 0) root_index_.erase(it);
  } else {
    ++ring_size_;
  }
  root_ring_[ring_head_] = r;
  ++root_index_[r];
  ring_head_ = (ring_head_ + 1) % root_window_;
}

void GroupManager::on_event(const chain::Event& event) {
  if (event.name == "MemberRegistered") {
    WAKU_EXPECTS(event.topics.size() >= 2);
    handle_registered(event.topics[0].limb[0],
                      Fr::from_u256_reduce(event.topics[1]));
  } else if (event.name == "MemberSlashed" ||
             event.name == "MemberWithdrawn") {
    WAKU_EXPECTS(event.topics.size() >= 2);
    // The auth path in the event data is only needed by partial views;
    // full-tree peers recompute locally and tolerate its absence.
    MerklePath path;
    if (view_.has_value()) {
      path = merkle::deserialize_path(event.data);
    }
    handle_removed(event.topics[0].limb[0],
                   Fr::from_u256_reduce(event.topics[1]), path);
  }
  // Other events (SlashCommitted, ...) do not affect the tree.
}

void GroupManager::handle_registered(std::uint64_t index, const Fr& pk) {
  WAKU_EXPECTS(index == member_count_);
  ++member_count_;

  if (view_.has_value()) {
    view_->on_insert(pk);
  } else {
    tree_->insert(pk);
  }
  if (mode_ == TreeMode::kFullTree) {
    pk_index_[pk.to_u256()] = index;
  }

  if (own_identity_.has_value() && !own_index_.has_value() &&
      pk == own_identity_->pk) {
    own_index_ = index;
    if (mode_ == TreeMode::kPartialView) {
      // Bootstrap complete: shrink to the O(log N) view (paper [18]).
      view_ = PartialMerkleView::from_tree(*tree_, index);
      tree_.reset();
    }
  }
  push_root();
}

void GroupManager::handle_removed(std::uint64_t index, const Fr& pk,
                                  const MerklePath& path) {
  ++removed_count_;
  if (view_.has_value()) {
    view_->on_update(index, pk, Fr::zero(), path);
  } else {
    WAKU_EXPECTS(index < tree_->size());
    WAKU_EXPECTS(tree_->leaf(index) == pk);
    tree_->remove(index);
  }
  if (mode_ == TreeMode::kFullTree) {
    pk_index_.erase(pk.to_u256());
  }
  if (own_index_.has_value() && *own_index_ == index) {
    own_index_.reset();  // we were slashed/withdrawn; publishing must stop
  }
  push_root();
}

Fr GroupManager::root() const {
  return view_.has_value() ? view_->root() : tree_->root();
}

bool GroupManager::is_recent_root(const Fr& r) const {
  return root_index_.contains(r);
}

merkle::MerklePath GroupManager::own_path() const {
  WAKU_EXPECTS(own_index_.has_value());
  return view_.has_value() ? view_->auth_path()
                           : tree_->auth_path(*own_index_);
}

std::optional<std::uint64_t> GroupManager::index_of(const Fr& pk) const {
  const auto it = pk_index_.find(pk.to_u256());
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

merkle::MerklePath GroupManager::path_of(std::uint64_t index) const {
  WAKU_EXPECTS(mode_ == TreeMode::kFullTree && tree_.has_value());
  return tree_->auth_path(index);
}

std::size_t GroupManager::storage_bytes() const {
  // Ring slots plus the membership index (32-byte root + 4-byte refcount).
  std::size_t bytes = root_ring_.size() * 32 + root_index_.size() * (32 + 4);
  if (view_.has_value()) {
    bytes += view_->storage_bytes();
  } else {
    bytes += tree_->storage_bytes();
  }
  if (mode_ == TreeMode::kFullTree) {
    bytes += pk_index_.size() * (32 + 8);
  }
  return bytes;
}

}  // namespace waku::rln
