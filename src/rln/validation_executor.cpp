#include "rln/validation_executor.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace waku::rln {

ValidationExecutor::ValidationExecutor(ParallelismConfig config)
    : config_(config) {
  WAKU_EXPECTS(config_.queue_depth >= 1);
  if (config_.deterministic) {
    // Pseudo-lane 0 records inline service time so metrics always have
    // lane data, threaded or not.
    lane_obs_.push_back(std::make_unique<LaneObs>());
    return;
  }
  std::size_t n = config_.workers;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  lanes_.reserve(n);
  lane_obs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
    lane_obs_.push_back(std::make_unique<LaneObs>());
  }
  stats_.workers = n;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ValidationExecutor::~ValidationExecutor() {
  if (threads_.empty()) return;
  drain();
  stop_.store(true, std::memory_order_release);
  for (auto& lane : lanes_) {
    std::lock_guard lk(lane->mu);
    lane->cv.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

bool ValidationExecutor::submit(std::uint16_t shard,
                                ValidationPipeline& pipeline,
                                std::span<const WakuMessage> messages,
                                std::uint64_t local_now_ms, Completion done) {
  Job job;
  job.shard = shard;
  job.pipeline = &pipeline;
  job.messages = messages;
  job.local_now_ms = local_now_ms;
  job.done = std::move(done);
  return enqueue(std::move(job), /*force_block=*/false);
}

bool ValidationExecutor::submit(std::uint16_t shard,
                                ValidationPipeline& pipeline,
                                std::span<const WakuMessage> messages,
                                std::span<const std::uint64_t> received_at_ms,
                                Completion done) {
  WAKU_EXPECTS(received_at_ms.size() == messages.size());
  Job job;
  job.shard = shard;
  job.pipeline = &pipeline;
  job.messages = messages;
  job.use_received_at = true;
  job.received_at_ms.assign(received_at_ms.begin(), received_at_ms.end());
  job.done = std::move(done);
  return enqueue(std::move(job), /*force_block=*/false);
}

void ValidationExecutor::run_job(Job& job) {
  std::vector<ValidationOutcome> outcomes =
      job.use_received_at
          ? job.pipeline->validate_batch(
                job.messages,
                std::span<const std::uint64_t>(job.received_at_ms.data(),
                                               job.received_at_ms.size()))
          : job.pipeline->validate_batch(job.messages, job.local_now_ms);
  if (job.done) job.done(std::move(outcomes));
}

bool ValidationExecutor::enqueue(Job job, bool force_block) {
  const obs::Clock* clock = obs_clock_.load(std::memory_order_acquire);
  if (threads_.empty()) {
    // Deterministic mode: the window runs inline on the caller — the
    // exact pre-executor code path (same thread, same order, same state).
    {
      std::lock_guard lk(stats_mu_);
      ++stats_.submitted;
    }
    if (clock != nullptr) {
      const std::uint64_t t0 = clock->now_ns();
      run_job(job);
      lane_obs_[0]->service.record(clock->now_ns() - t0);
    } else {
      run_job(job);
    }
    std::lock_guard lk(stats_mu_);
    ++stats_.executed;
    return true;
  }

  if (clock != nullptr) job.enqueued_ns = clock->now_ns();
  Lane& lane = *lanes_[job.shard % lanes_.size()];
  LaneObs& lane_obs = *lane_obs_[job.shard % lanes_.size()];
  std::unique_lock lk(lane.mu);
  std::size_t& depth = lane.shard_depth[job.shard];
  if (depth >= config_.queue_depth) {
    if (!force_block &&
        config_.backpressure == ParallelismConfig::Backpressure::kReject) {
      std::lock_guard slk(stats_mu_);
      ++stats_.rejected;
      return false;
    }
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.blocked;
    }
    lane.room_cv.wait(lk, [&] { return depth < config_.queue_depth; });
  }
  ++depth;
  // in_flight_ rises before the job becomes visible to any worker (both
  // under the lane lock), so drain() can never observe a popped-but-not-
  // yet-counted window. Lock order everywhere: lane.mu before stats_mu_.
  {
    std::lock_guard slk(stats_mu_);
    ++stats_.submitted;
    ++in_flight_;
  }
  lane.queue.push_back(std::move(job));
  lane_obs.raise_hwm(lane.queue.size());
  lane.cv.notify_one();
  return true;
}

void ValidationExecutor::worker_loop(std::size_t lane_index) {
  Lane& lane = *lanes_[lane_index];
  LaneObs& lane_obs = *lane_obs_[lane_index];
  for (;;) {
    Job job;
    {
      std::unique_lock lk(lane.mu);
      lane.cv.wait(lk, [&] {
        return !lane.queue.empty() || stop_.load(std::memory_order_acquire);
      });
      if (lane.queue.empty()) return;  // stop requested and lane drained
      job = std::move(lane.queue.front());
      lane.queue.pop_front();
      --lane.shard_depth[job.shard];
      lane.room_cv.notify_all();
    }
    const obs::Clock* clock = obs_clock_.load(std::memory_order_acquire);
    if (clock != nullptr) {
      const std::uint64_t t0 = clock->now_ns();
      if (job.enqueued_ns != 0) {
        lane_obs.queue_wait.record(t0 - job.enqueued_ns);
      }
      run_job(job);
      lane_obs.service.record(clock->now_ns() - t0);
    } else {
      run_job(job);
    }
    {
      std::lock_guard slk(stats_mu_);
      ++stats_.executed;
      --in_flight_;
      if (in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

std::vector<ValidationOutcome> ValidationExecutor::validate_blocking(Job job) {
  if (threads_.empty()) {
    std::vector<ValidationOutcome> result;
    job.done = [&result](std::vector<ValidationOutcome> outcomes) {
      result = std::move(outcomes);
    };
    enqueue(std::move(job), /*force_block=*/true);
    return result;
  }
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    std::vector<ValidationOutcome> result;
  };
  Sync sync;
  job.done = [&sync](std::vector<ValidationOutcome> outcomes) {
    std::lock_guard lk(sync.mu);
    sync.result = std::move(outcomes);
    sync.ready = true;
    sync.cv.notify_one();
  };
  enqueue(std::move(job), /*force_block=*/true);
  std::unique_lock lk(sync.mu);
  sync.cv.wait(lk, [&] { return sync.ready; });
  return std::move(sync.result);
}

std::vector<ValidationOutcome> ValidationExecutor::validate(
    std::uint16_t shard, ValidationPipeline& pipeline,
    std::span<const WakuMessage> messages, std::uint64_t local_now_ms) {
  Job job;
  job.shard = shard;
  job.pipeline = &pipeline;
  job.messages = messages;
  job.local_now_ms = local_now_ms;
  return validate_blocking(std::move(job));
}

std::vector<ValidationOutcome> ValidationExecutor::validate(
    std::uint16_t shard, ValidationPipeline& pipeline,
    std::span<const WakuMessage> messages,
    std::span<const std::uint64_t> received_at_ms) {
  WAKU_EXPECTS(received_at_ms.size() == messages.size());
  Job job;
  job.shard = shard;
  job.pipeline = &pipeline;
  job.messages = messages;
  job.use_received_at = true;
  job.received_at_ms.assign(received_at_ms.begin(), received_at_ms.end());
  return validate_blocking(std::move(job));
}

void ValidationExecutor::drain() {
  std::unique_lock lk(stats_mu_);
  drained_cv_.wait(lk, [&] { return in_flight_ == 0; });
}

ExecutorStats ValidationExecutor::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

std::vector<LaneObsSnapshot> ValidationExecutor::lane_stats() const {
  std::vector<LaneObsSnapshot> out;
  out.reserve(lane_obs_.size());
  for (std::size_t i = 0; i < lane_obs_.size(); ++i) {
    LaneObsSnapshot snap;
    snap.lane = i;
    snap.queue_wait = lane_obs_[i]->queue_wait.snapshot();
    snap.service = lane_obs_[i]->service.snapshot();
    snap.depth_high_watermark =
        lane_obs_[i]->depth_hwm.load(std::memory_order_relaxed);
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace waku::rln
