// Simulation harness: wires a complete WAKU-RLN-RELAY deployment — a
// blockchain with the membership contract, a p2p network with gossip
// routers, N full nodes, and a block-production schedule — so experiments,
// integration tests, and examples share one correct setup.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "chain/blockchain.hpp"
#include "rln/node.hpp"

namespace waku::rln {

struct HarnessConfig {
  std::size_t num_nodes = 20;
  std::size_t degree = 6;              ///< target connectivity
  net::LinkConfig link;                ///< latency/jitter/loss
  std::uint64_t block_interval_ms = 12'000;
  chain::Gwei deposit_gwei = 10'000'000;  ///< 0.01 ETH membership stake
  chain::Gwei initial_balance_gwei = 100 * chain::kGweiPerEth;
  NodeConfig node;                     ///< template; account/seed set per node
  /// Per-node shard subscriptions for sharded deployments: slot i
  /// subscribes to shard_assignment(i) (within node.shards.num_shards).
  /// Unset, every node takes the template's subscription set. Applied
  /// identically on construction and restart, so a restarted node rejoins
  /// exactly its old shards.
  std::function<std::vector<shard::ShardId>(std::size_t)> shard_assignment;
  std::uint64_t seed = 42;
  /// Base directory for per-node durable state: node i persists under
  /// `<persist_dir>/node<i>`. Empty keeps every node ephemeral.
  std::string persist_dir;
};

class RlnHarness {
 public:
  explicit RlnHarness(HarnessConfig config);

  /// Submits registrations for every node and advances the simulation
  /// until all memberships are mined and synced.
  void register_all();

  /// Advances simulated time (blocks keep being mined on schedule).
  void run_ms(net::TimeMs duration);

  /// Simulated crash: detaches node `i` from the network/chain/scheduler
  /// and destroys it. Its durable state (if any) stays on disk; the chain
  /// keeps mining.
  void kill_node(std::size_t i);

  /// Brings node `i` back with the same account, seed, and persist
  /// directory (so it restores and resumes from its replay cursor), wires
  /// it to the surviving peers, and starts it.
  void restart_node(std::size_t i);

  [[nodiscard]] bool alive(std::size_t i) const {
    return nodes_[i] != nullptr;
  }

  /// Per-node attachment hook for instrumentation (message handlers, stat
  /// probes): runs immediately for every live node and again for each node
  /// restart_node() brings back — counters and handlers survive a
  /// kill/restart cycle instead of silently detaching with the dead
  /// instance.
  using NodeHook = std::function<void(std::size_t, WakuRlnRelayNode&)>;
  void set_node_hook(NodeHook hook);

  [[nodiscard]] WakuRlnRelayNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  [[nodiscard]] net::Simulator& sim() { return sim_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] chain::Blockchain& chain() { return chain_; }
  [[nodiscard]] const chain::Address& contract() const { return contract_; }
  [[nodiscard]] const HarnessConfig& config() const { return config_; }

  /// Sum of delivered-message counters across all nodes.
  [[nodiscard]] std::uint64_t total_delivered() const;
  /// Sum of relay-level spam rejections across all nodes.
  [[nodiscard]] std::uint64_t total_rejected();
  /// Field-wise sum of every node's validation-pipeline counters —
  /// the deployment-wide view of where traffic died (or didn't).
  [[nodiscard]] ValidatorStats total_validation_stats() const;

 private:
  /// Node config/seed for slot `i` — identical at construction and on
  /// restart, so a restarted node is the same member (same identity seed,
  /// same account, same persist directory).
  [[nodiscard]] NodeConfig node_config(std::size_t i) const;
  [[nodiscard]] std::uint64_t node_seed(std::size_t i) const {
    return config_.seed * 1000 + i;
  }

  HarnessConfig config_;
  net::Simulator sim_;
  net::Network network_;
  chain::Blockchain chain_;
  chain::Address contract_;
  std::vector<std::unique_ptr<WakuRlnRelayNode>> nodes_;
  NodeHook node_hook_;
};

}  // namespace waku::rln
