// Multithreaded validation executor: drains per-shard batch windows on a
// fixed worker pool so proof verification — the binding cost of RLN spam
// filtering — uses real cores instead of one simulated thread.
//
// Topology (the mpsc command/worker shape of the channel-based relays this
// mirrors): every submitted window is an MPSC queue entry owned by exactly
// one worker. A shard is pinned to one worker (shard % workers), so
//
//   * windows of ONE shard execute serially, in submission order, and
//     their completion callbacks fire in that same order — per-shard
//     verdict streams are indistinguishable from single-threaded runs;
//   * windows of DIFFERENT shards execute concurrently — aggregate
//     throughput scales with min(worker count, hosted shards, cores).
//
// Shared stages stay correct under that concurrency because the shared
// state itself is synchronized: NullifierLog is striped per epoch bucket
// (observe/peek/gc from different shards interleave without serializing on
// one lock), and the GroupManager root window is published behind an
// atomic version counter with a versioned shard-local mirror
// (ShardRootCache) on the hot path.
//
// The default ParallelismConfig is deterministic: no threads are started
// and submit() runs the window inline on the caller — bit-for-bit the
// pre-executor semantics, which is what tier-1 tests and the deterministic
// simulator run. Benches and soak runs opt into workers explicitly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rln/validation_pipeline.hpp"

namespace waku::rln {

/// Worker-pool shape of a validator container. Defaults reproduce the
/// single-threaded semantics exactly; rides in NodeConfig so deployments
/// opt whole fleets in by configuration.
struct ParallelismConfig {
  /// No threads; submit() executes inline on the caller. The simulator and
  /// tier-1 tests stay bit-for-bit reproducible under this default.
  bool deterministic = true;
  /// Worker threads (parallel mode); 0 = std::thread::hardware_concurrency.
  std::size_t workers = 0;
  /// Max windows queued per shard before backpressure applies.
  std::size_t queue_depth = 64;
  /// What submit() does when a shard's queue is full: block the producer
  /// (lossless; the relay's own buffering bounds memory) or refuse the
  /// window (the caller sheds load explicitly — submit returns false).
  enum class Backpressure { kBlock, kReject };
  Backpressure backpressure = Backpressure::kBlock;
};

struct ExecutorStats {
  std::uint64_t submitted = 0;  ///< windows accepted (queued or inline)
  std::uint64_t executed = 0;   ///< windows completed
  std::uint64_t rejected = 0;   ///< windows refused by kReject backpressure
  std::uint64_t blocked = 0;    ///< submits that waited on a full queue
  std::size_t workers = 0;      ///< pool size (0 = deterministic/inline)
};

/// Point-in-time observability view of one worker lane: how long windows
/// sat queued vs how long they ran, plus the deepest the lane's queue has
/// ever been. Lane 0 doubles as the pseudo-lane of deterministic/inline
/// execution (service time only — nothing ever queues inline).
struct LaneObsSnapshot {
  std::size_t lane = 0;
  obs::HistogramSnapshot queue_wait;  ///< ns from enqueue to pop
  obs::HistogramSnapshot service;     ///< ns running the window
  std::uint64_t depth_high_watermark = 0;  ///< max queued windows ever
};

class ValidationExecutor {
 public:
  /// Fires on the worker that ran the window (or inline in deterministic
  /// mode), after the pipeline produced the verdicts. Per shard, callbacks
  /// fire in submission order.
  using Completion = std::function<void(std::vector<ValidationOutcome>)>;

  explicit ValidationExecutor(ParallelismConfig config);
  /// Drains every queued window, then joins the pool.
  ~ValidationExecutor();

  ValidationExecutor(const ValidationExecutor&) = delete;
  ValidationExecutor& operator=(const ValidationExecutor&) = delete;

  /// Enqueues one window of `shard` against `pipeline`. `messages` (and
  /// `received_at_ms`, when used) must stay alive until `done` fires — the
  /// executor does not copy message payloads. Returns false only when
  /// kReject backpressure refused the window (the completion never fires).
  /// Callers must not submit one shard's windows from multiple threads at
  /// once if they rely on per-shard submission order being meaningful.
  bool submit(std::uint16_t shard, ValidationPipeline& pipeline,
              std::span<const WakuMessage> messages,
              std::uint64_t local_now_ms, Completion done);
  /// Same, with per-message arrival times (copied; the span may die after
  /// submit returns).
  bool submit(std::uint16_t shard, ValidationPipeline& pipeline,
              std::span<const WakuMessage> messages,
              std::span<const std::uint64_t> received_at_ms, Completion done);

  /// Blocking conveniences: submit + wait for that window's verdicts.
  /// Deterministic mode runs inline; parallel mode still serializes after
  /// every window already queued for the shard, so interleaving blocking
  /// and async submits keeps the per-shard order.
  std::vector<ValidationOutcome> validate(std::uint16_t shard,
                                          ValidationPipeline& pipeline,
                                          std::span<const WakuMessage> messages,
                                          std::uint64_t local_now_ms);
  std::vector<ValidationOutcome> validate(
      std::uint16_t shard, ValidationPipeline& pipeline,
      std::span<const WakuMessage> messages,
      std::span<const std::uint64_t> received_at_ms);

  /// Waits until every window submitted so far has completed.
  void drain();

  [[nodiscard]] const ParallelismConfig& config() const { return config_; }
  /// Pool size; 0 in deterministic mode.
  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }
  [[nodiscard]] ExecutorStats stats() const;

  /// Wires queue-wait/service timing. nullptr (the default) disables
  /// every clock read: zero instrumentation cost in deterministic tier-1
  /// runs. Safe to call while workers run (atomic pointer swap); the
  /// clock must outlive the executor or be cleared first.
  void set_clock(const obs::Clock* clock) {
    obs_clock_.store(clock, std::memory_order_release);
  }

  /// One snapshot per lane (a single pseudo-lane in deterministic mode).
  [[nodiscard]] std::vector<LaneObsSnapshot> lane_stats() const;

 private:
  struct Job {
    std::uint16_t shard = 0;
    ValidationPipeline* pipeline = nullptr;
    std::span<const WakuMessage> messages;
    bool use_received_at = false;
    std::vector<std::uint64_t> received_at_ms;
    std::uint64_t local_now_ms = 0;
    std::uint64_t enqueued_ns = 0;  ///< clock read at enqueue (0 = no clock)
    Completion done;
  };

  /// Per-lane observability sinks, fixed at construction so the record
  /// path indexes an immutable vector (no locks). Histograms are
  /// internally atomic; the high-watermark is a CAS-max.
  struct LaneObs {
    obs::Histogram queue_wait;
    obs::Histogram service;
    std::atomic<std::uint64_t> depth_hwm{0};

    void raise_hwm(std::uint64_t depth) noexcept {
      std::uint64_t seen = depth_hwm.load(std::memory_order_relaxed);
      while (depth > seen && !depth_hwm.compare_exchange_weak(
                                 seen, depth, std::memory_order_relaxed)) {
      }
    }
  };

  /// One worker's MPSC lane: its own lock, queue, and per-shard depth
  /// accounting (a shard lives on exactly one lane, so depth counters
  /// never need cross-lane coordination). Depth entries are never erased
  /// — references into the map stay valid for waiting producers, and the
  /// map is bounded by the number of shards ever submitted.
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;        ///< worker wakeup
    std::condition_variable room_cv;   ///< producer backpressure wakeup
    std::deque<Job> queue;
    std::unordered_map<std::uint16_t, std::size_t> shard_depth;
  };

  /// `force_block` overrides kReject (the blocking validate() waits for
  /// room instead of dropping — running the window inline would reorder
  /// it ahead of already-queued windows of the same shard).
  bool enqueue(Job job, bool force_block);
  void run_job(Job& job);
  void worker_loop(std::size_t lane_index);
  std::vector<ValidationOutcome> validate_blocking(Job job);

  ParallelismConfig config_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<LaneObs>> lane_obs_;  ///< max(1, lanes)
  std::atomic<const obs::Clock*> obs_clock_{nullptr};
  std::vector<std::thread> threads_;
  /// Set once in the destructor; workers re-check it under their lane
  /// lock, and the destructor notifies while holding each lane lock, so a
  /// worker can never sleep through shutdown.
  std::atomic<bool> stop_{false};

  // Drain bookkeeping + counters, shared across lanes.
  mutable std::mutex stats_mu_;
  std::condition_variable drained_cv_;
  std::size_t in_flight_ = 0;
  ExecutorStats stats_;
};

}  // namespace waku::rln
