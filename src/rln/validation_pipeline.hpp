// Staged batch-validation pipeline: the routing-time spam check (paper
// §III-F) restructured so a relay can validate a *window* of incoming
// messages at once instead of one at a time. Stages run in cost order,
// cheapest first, so attack traffic dies before it can buy CPU:
//
//   1. epoch-gap gate      |msg.epoch - local epoch| <= Thr        O(1)
//   2. root check          tau against the rolling root cache      O(1)
//   3. nullifier precheck  gossip echoes drop before the verifier  O(1)
//   4. batched Groth16     one RLC-aggregated pairing check for
//                          the survivors, per-proof fallback       amortized
//   5. double-signal       nullifier-log observe + Shamir recovery
//
// The single-message path is the batch path with a window of one;
// rln::RlnValidator (validator.hpp) stays as a thin adapter so existing
// call sites keep their shape. See src/rln/README.md for the data
// structures behind stages 2 and 5.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "obs/clock.hpp"
#include "obs/telemetry.hpp"
#include "rln/epoch.hpp"
#include "rln/group_manager.hpp"
#include "rln/nullifier_log.hpp"
#include "rln/rate_limit_proof.hpp"
#include "zksnark/groth16.hpp"

namespace waku::rln {

/// Why a message was accepted or dropped; the relay maps this onto
/// gossipsub validation results (Reject penalizes the sender).
enum class Verdict {
  kAccept,
  kIgnoreEpochGap,    ///< too old / too far in the future (benign: skew)
  kIgnoreDuplicate,   ///< same share seen already (gossip echo)
  kRejectNoProof,     ///< missing/malformed proof bundle
  kRejectBadProof,    ///< zkSNARK verification failed
  kRejectStaleRoot,   ///< proof made against an unknown/old tree root
  kRejectSpam,        ///< double-signal detected -> slashing material
};

[[nodiscard]] const char* verdict_name(Verdict v);

struct ValidationOutcome {
  Verdict verdict = Verdict::kAccept;
  /// Set on kRejectSpam when the two shares have distinct x coordinates:
  /// the recovered identity secret key of the spammer. Unset for the
  /// same-x equivocation corner (still spam, no slashing material).
  std::optional<Fr> recovered_sk;
};

struct ValidatorConfig {
  EpochConfig epoch;
  std::uint64_t max_epoch_gap = 2;  ///< Thr (paper §III-F)
};

struct ValidatorStats {
  std::uint64_t accepted = 0;
  std::uint64_t epoch_gap = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t no_proof = 0;
  std::uint64_t bad_proof = 0;
  std::uint64_t stale_root = 0;
  std::uint64_t spam_detected = 0;
  // Pipeline internals. Every window that reaches the verifier counts as
  // exactly one of aggregated/fallback; windows fully settled by the
  // cheap stages count in `batches` alone.
  std::uint64_t batches = 0;             ///< validate_batch invocations
  std::uint64_t batch_aggregated = 0;    ///< windows settled by one RLC check
  std::uint64_t batch_fallbacks = 0;     ///< windows that isolated per proof
  std::uint64_t precheck_duplicates = 0; ///< echoes dropped before the SNARK
  // Mirror of NullifierLog::stats() at the time stats() was called.
  std::uint64_t log_entries = 0;
  std::uint64_t log_buckets = 0;
  std::uint64_t log_conflicts = 0;
  /// Mirror of the log's GC watermark (oldest live epoch). Defaults to
  /// the min-aggregation identity so a default-constructed accumulator
  /// does not drag every operator+= aggregate down to 0; stats() always
  /// overwrites it with the real watermark.
  std::uint64_t log_min_epoch = ~std::uint64_t{0};

  /// Field-wise accumulation (deployment-wide aggregation). Keep in sync
  /// when adding a counter — aggregators rely on this, not hand-sums.
  /// Watermarks aggregate by minimum (the deployment-wide oldest live
  /// epoch), counters by sum.
  ValidatorStats& operator+=(const ValidatorStats& o) {
    accepted += o.accepted;
    epoch_gap += o.epoch_gap;
    duplicates += o.duplicates;
    no_proof += o.no_proof;
    bad_proof += o.bad_proof;
    stale_root += o.stale_root;
    spam_detected += o.spam_detected;
    batches += o.batches;
    batch_aggregated += o.batch_aggregated;
    batch_fallbacks += o.batch_fallbacks;
    precheck_duplicates += o.precheck_duplicates;
    log_entries += o.log_entries;
    log_buckets += o.log_buckets;
    log_conflicts += o.log_conflicts;
    log_min_epoch = log_min_epoch < o.log_min_epoch ? log_min_epoch
                                                    : o.log_min_epoch;
    return *this;
  }
};

/// Stage-latency sinks (src/obs), one histogram per pipeline stage plus
/// the whole-window latency. All pointers optional — a null histogram
/// drops that stage's sample. The owner (the node) keeps the struct
/// address-stable and shares it across pipeline generations of the same
/// shard, so a live reshard never loses or splits a shard's series.
struct PipelineMetrics {
  obs::Histogram* epoch_gate = nullptr;          ///< stage 1 (incl. proof extraction)
  obs::Histogram* root_check = nullptr;          ///< stage 2
  obs::Histogram* nullifier_precheck = nullptr;  ///< stage 3 (incl. hash-bind)
  obs::Histogram* groth16_batch = nullptr;       ///< stage 4, RLC-aggregated
  obs::Histogram* groth16_fallback = nullptr;    ///< stage 4, per-proof fallback
  obs::Histogram* double_signal = nullptr;       ///< stage 5
  obs::Histogram* window = nullptr;              ///< whole validate_batch call
};

class ValidationPipeline {
 public:
  /// `vk` and `group` must outlive the pipeline. `seed` feeds the RLC
  /// weights of the batched verifier: it must be unpredictable to senders
  /// (a shared constant would let an attacker craft proof pairs whose
  /// weighted binding errors cancel in the aggregate). Deployed nodes
  /// pass per-node entropy; the default is for single-process tests.
  ValidationPipeline(const zksnark::VerifyingKey& vk,
                     const GroupManager& group, ValidatorConfig config,
                     std::uint64_t seed = 0x9D1);

  /// Validates a window of messages as seen at local wall-clock
  /// `local_now_ms`. Returns one outcome per message, same order.
  /// Verdicts are independent of the batch partition: any split of the
  /// same (message, timestamp) sequence yields the same per-message
  /// verdicts.
  std::vector<ValidationOutcome> validate_batch(
      std::span<const WakuMessage> messages, std::uint64_t local_now_ms);

  /// Same, with per-message arrival times (one per message): a window
  /// buffered upstream must be epoch-checked against when each message
  /// arrived, not when the window flushed.
  std::vector<ValidationOutcome> validate_batch(
      std::span<const WakuMessage> messages,
      std::span<const std::uint64_t> received_at_ms);

  /// Single-message convenience: a batch of one.
  ValidationOutcome validate_one(const WakuMessage& message,
                                 std::uint64_t local_now_ms);

  /// Drops nullifier records older than Thr epochs.
  void gc(std::uint64_t local_now_ms);

  /// Wires stage timing: `clock` supplies nanosecond reads (virtual time
  /// under the simulator), `metrics` receives per-stage samples. Either
  /// may be null; a null clock disables every clock read on the hot path
  /// (the telemetry-off configuration costs one branch per stage).
  /// Both must outlive the pipeline or be cleared first.
  void set_telemetry(const obs::Clock* clock, const PipelineMetrics* metrics) {
    obs_clock_ = clock;
    obs_metrics_ = metrics;
  }

  /// Counters plus a point-in-time mirror of the nullifier-log stats.
  [[nodiscard]] ValidatorStats stats() const;
  [[nodiscard]] const NullifierLog& log() const { return log_; }
  [[nodiscard]] const ValidatorConfig& config() const { return config_; }

  // -- Durable-state hooks (src/persist) -------------------------------------

  /// Fires whenever the nullifier log records a *new* entry — the node's
  /// WAL journals these, because (unlike tree state) observed shares are
  /// not recoverable from the contract event stream after a crash.
  using ObserveHook = std::function<void(
      std::uint64_t epoch, const Fr& nullifier, const sss::Share& share,
      std::uint64_t proof_fp)>;
  void set_observe_hook(ObserveHook hook) { observe_hook_ = std::move(hook); }

  /// WAL replay: re-records an observation without re-firing the hook or
  /// touching the verdict counters.
  void inject_observation(std::uint64_t epoch, const Fr& nullifier,
                          const sss::Share& share, std::uint64_t proof_fp);

  /// Serializes the nullifier log plus the verdict counters (the mirror
  /// fields of stats() are recomputed, not stored).
  [[nodiscard]] Bytes serialize_state() const;
  void restore_state(BytesView bytes);

  /// Checkpoint bootstrap: start the (empty) log at the serving peer's GC
  /// watermark.
  void seed_nullifier_watermark(std::uint64_t min_epoch) {
    log_.seed_watermark(min_epoch);
  }

  /// Replaces the stage-2 root-freshness test. Default (unset) consults
  /// the shared GroupManager's rolling root cache directly; the sharding
  /// layer installs a shard-local cache here so one shard's validation
  /// never reads another's root-window state.
  using RootCheck = std::function<bool(const Fr& root)>;
  void set_root_check(RootCheck check) { root_check_ = std::move(check); }

  // -- Live-reshard hooks (shard/reshard.hpp) --------------------------------

  /// Per-message nullifier-log override: when set and returning non-null,
  /// stages 3 and 5 read and observe the returned log instead of the
  /// pipeline's own. The reshard engine routes the old-generation and
  /// new-generation meshes of one rate-limit domain into ONE shared log
  /// during a cutover, so migration can never double a member's quota.
  /// An accepted redirected observation is write-through mirrored into
  /// the pipeline's own log (the override log is always a superset, so
  /// the mirror cannot conflict) — dropping the override after the
  /// cutover's linger window never forgets a signal.
  using LogSelector = std::function<NullifierLog*(const WakuMessage&)>;
  void set_log_selector(LogSelector selector) {
    log_selector_ = std::move(selector);
  }

  /// Fires (with the message, so the caller can derive the rate-limit
  /// domain from its content topic) whenever an accepted observation
  /// landed in a selector-routed log. The node journals these under the
  /// domain's shard tag so a mid-reshard restart rebuilds the shared
  /// cutover log; the plain observe hook still fires for the own-log
  /// mirror.
  using CutoverObserveHook = std::function<void(
      const WakuMessage& message, std::uint64_t epoch, const Fr& nullifier,
      const sss::Share& share, std::uint64_t proof_fp)>;
  void set_cutover_observe_hook(CutoverObserveHook hook) {
    cutover_observe_hook_ = std::move(hook);
  }

 private:
  std::vector<ValidationOutcome> validate_impl(
      std::span<const WakuMessage> messages,
      std::span<const std::uint64_t> received_at_ms,
      std::uint64_t uniform_now_ms);

  const zksnark::VerifyingKey& vk_;
  const GroupManager& group_;
  ValidatorConfig config_;
  NullifierLog log_;
  ValidatorStats stats_;
  Rng rng_;
  ObserveHook observe_hook_;
  RootCheck root_check_;
  LogSelector log_selector_;
  CutoverObserveHook cutover_observe_hook_;
  const obs::Clock* obs_clock_ = nullptr;
  const PipelineMetrics* obs_metrics_ = nullptr;
};

}  // namespace waku::rln
