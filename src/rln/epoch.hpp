// Epoch arithmetic (paper §III-D): the external nullifier is the current
// epoch, "some unit of time elapsed since the Unix epoch", epoch =
// UnixTime / T. One message per identity per epoch is the rate limit.
//
// Also computes the maximum epoch gap Thr of §III-F:
//   Thr = ceil((NetworkDelay + ClockAsynchrony) / T).
#pragma once

#include <cstdint>

#include "ff/fr.hpp"

namespace waku::rln {

using ff::Fr;

struct EpochConfig {
  /// Epoch length T in milliseconds (the paper discusses T in seconds; ms
  /// matches the simulator clock).
  std::uint64_t epoch_length_ms = 30'000;

  /// Epoch index for a Unix-style timestamp in ms.
  [[nodiscard]] std::uint64_t epoch_at(std::uint64_t unix_ms) const {
    return unix_ms / epoch_length_ms;
  }

  /// The epoch as the field element fed to the circuit.
  [[nodiscard]] Fr epoch_fr(std::uint64_t unix_ms) const {
    return Fr::from_u64(epoch_at(unix_ms));
  }
};

/// Thr from the paper's formula; all quantities in milliseconds.
std::uint64_t max_epoch_gap(std::uint64_t network_delay_ms,
                            std::uint64_t clock_asynchrony_ms,
                            std::uint64_t epoch_length_ms);

/// |a - b| for epoch indices.
inline std::uint64_t epoch_distance(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : b - a;
}

}  // namespace waku::rln
