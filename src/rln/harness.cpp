#include "rln/harness.hpp"

#include "common/expect.hpp"

namespace waku::rln {

RlnHarness::RlnHarness(HarnessConfig config)
    : config_(config),
      network_(sim_, config.link, config.seed),
      chain_([&config] {
        chain::Blockchain::Config c;
        c.block_interval_ms = config.block_interval_ms;
        return c;
      }()) {
  contract_ = chain_.deploy(
      std::make_unique<chain::RlnMembershipContract>(config_.deposit_gwei));

  Rng rng(config_.seed);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    const NodeConfig nc = node_config(i);
    chain_.create_account(nc.account, config_.initial_balance_gwei);
    nodes_.push_back(std::make_unique<WakuRlnRelayNode>(
        network_, chain_, contract_, nc, node_seed(i)));
  }

  network_.connect_random(config_.degree, rng);
  for (auto& node : nodes_) node->start();

  // Block production on the configured cadence.
  sim_.schedule_every(config_.block_interval_ms,
                      [this] { chain_.mine_block(sim_.now()); });
}

void RlnHarness::register_all() {
  for (auto& node : nodes_) node->register_membership();
  // Registrations become usable after their block is mined (§IV-A delay);
  // allow a couple of block intervals plus mesh formation heartbeats.
  std::size_t guard = 0;
  for (;;) {
    run_ms(config_.block_interval_ms);
    bool all = true;
    for (auto& node : nodes_) all = all && node->is_registered();
    if (all) break;
    WAKU_ASSERT(++guard < 100);
  }
}

void RlnHarness::run_ms(net::TimeMs duration) {
  sim_.run_until(sim_.now() + duration);
}

NodeConfig RlnHarness::node_config(std::size_t i) const {
  NodeConfig nc = config_.node;
  nc.account = chain::Address::from_u64(0xACC00000 + i);
  if (config_.shard_assignment) {
    nc.shards.subscribe = config_.shard_assignment(i);
  }
  if (!config_.persist_dir.empty()) {
    nc.persist_dir = config_.persist_dir + "/node" + std::to_string(i);
  }
  return nc;
}

void RlnHarness::kill_node(std::size_t i) {
  WAKU_EXPECTS(nodes_[i] != nullptr);
  nodes_[i]->shutdown();
  nodes_[i].reset();
}

void RlnHarness::restart_node(std::size_t i) {
  WAKU_EXPECTS(nodes_[i] == nullptr);
  nodes_[i] = std::make_unique<WakuRlnRelayNode>(
      network_, chain_, contract_, node_config(i), node_seed(i));
  // Rejoin the overlay: link to every surviving peer (test-scale meshes),
  // then start — subscription frames go out to the new links and the next
  // heartbeats graft it back into the mesh.
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    if (j == i || nodes_[j] == nullptr) continue;
    network_.connect(nodes_[i]->node_id(), nodes_[j]->node_id());
  }
  nodes_[i]->start();
  // Re-attach instrumentation: the hook ran against the dead instance;
  // without this the restarted node would deliver into a void.
  if (node_hook_) node_hook_(i, *nodes_[i]);
}

void RlnHarness::set_node_hook(NodeHook hook) {
  node_hook_ = std::move(hook);
  if (!node_hook_) return;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]) node_hook_(i, *nodes_[i]);
  }
}

std::uint64_t RlnHarness::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) {
    if (node) n += node->stats().delivered;
  }
  return n;
}

std::uint64_t RlnHarness::total_rejected() {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) {
    if (node) n += node->relay().stats().rejected;
  }
  return n;
}

ValidatorStats RlnHarness::total_validation_stats() const {
  ValidatorStats total;
  for (const auto& node : nodes_) {
    if (node) total += node->validator().stats();
  }
  return total;
}

}  // namespace waku::rln
