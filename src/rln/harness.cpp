#include "rln/harness.hpp"

#include "common/expect.hpp"

namespace waku::rln {

RlnHarness::RlnHarness(HarnessConfig config)
    : config_(config),
      network_(sim_, config.link, config.seed),
      chain_([&config] {
        chain::Blockchain::Config c;
        c.block_interval_ms = config.block_interval_ms;
        return c;
      }()) {
  contract_ = chain_.deploy(
      std::make_unique<chain::RlnMembershipContract>(config_.deposit_gwei));

  Rng rng(config_.seed);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    NodeConfig nc = config_.node;
    nc.account = chain::Address::from_u64(0xACC00000 + i);
    chain_.create_account(nc.account, config_.initial_balance_gwei);
    nodes_.push_back(std::make_unique<WakuRlnRelayNode>(
        network_, chain_, contract_, nc, config_.seed * 1000 + i));
  }

  network_.connect_random(config_.degree, rng);
  for (auto& node : nodes_) node->start();

  // Block production on the configured cadence.
  sim_.schedule_every(config_.block_interval_ms,
                      [this] { chain_.mine_block(sim_.now()); });
}

void RlnHarness::register_all() {
  for (auto& node : nodes_) node->register_membership();
  // Registrations become usable after their block is mined (§IV-A delay);
  // allow a couple of block intervals plus mesh formation heartbeats.
  std::size_t guard = 0;
  for (;;) {
    run_ms(config_.block_interval_ms);
    bool all = true;
    for (auto& node : nodes_) all = all && node->is_registered();
    if (all) break;
    WAKU_ASSERT(++guard < 100);
  }
}

void RlnHarness::run_ms(net::TimeMs duration) {
  sim_.run_until(sim_.now() + duration);
}

std::uint64_t RlnHarness::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->stats().delivered;
  return n;
}

std::uint64_t RlnHarness::total_rejected() {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->relay().stats().rejected;
  return n;
}

ValidatorStats RlnHarness::total_validation_stats() const {
  ValidatorStats total;
  for (const auto& node : nodes_) total += node->validator().stats();
  return total;
}

}  // namespace waku::rln
