#include "rln/validator.hpp"

namespace waku::rln {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kAccept:
      return "accept";
    case Verdict::kIgnoreEpochGap:
      return "ignore-epoch-gap";
    case Verdict::kIgnoreDuplicate:
      return "ignore-duplicate";
    case Verdict::kRejectNoProof:
      return "reject-no-proof";
    case Verdict::kRejectBadProof:
      return "reject-bad-proof";
    case Verdict::kRejectStaleRoot:
      return "reject-stale-root";
    case Verdict::kRejectSpam:
      return "reject-spam";
  }
  return "unknown";
}

RlnValidator::RlnValidator(const zksnark::VerifyingKey& vk,
                           const GroupManager& group, ValidatorConfig config)
    : vk_(vk), group_(group), config_(config) {}

ValidationOutcome RlnValidator::validate(const WakuMessage& message,
                                         std::uint64_t local_now_ms) {
  const std::optional<RateLimitProof> bundle = extract_proof(message);
  if (!bundle.has_value()) {
    ++stats_.no_proof;
    return {Verdict::kRejectNoProof, std::nullopt};
  }

  // 1. Epoch gap (cheapest check first, §III-F item 1).
  const std::uint64_t local_epoch = config_.epoch.epoch_at(local_now_ms);
  if (epoch_distance(local_epoch, bundle->epoch) > config_.max_epoch_gap) {
    ++stats_.epoch_gap;
    return {Verdict::kIgnoreEpochGap, std::nullopt};
  }

  // 2. Root freshness: the tau in the bundle must be a recent local root,
  //    otherwise removed members could keep proving against old trees.
  if (!group_.is_recent_root(bundle->root)) {
    ++stats_.stale_root;
    return {Verdict::kRejectStaleRoot, std::nullopt};
  }

  // 3. Proof verification. The x coordinate is recomputed from the payload
  //    so the share is bound to this exact message.
  const Fr x = message_hash(message);
  if (x != bundle->share_x ||
      !zksnark::verify(vk_, bundle->public_inputs(x), bundle->proof)) {
    ++stats_.bad_proof;
    return {Verdict::kRejectBadProof, std::nullopt};
  }

  // 4. Rate limit via the nullifier log (§III-F item 3).
  const sss::Share share{bundle->share_x, bundle->share_y};
  const NullifierLog::Result seen =
      log_.observe(bundle->epoch, bundle->nullifier, share);
  switch (seen.outcome) {
    case NullifierLog::Outcome::kNew:
      ++stats_.accepted;
      return {Verdict::kAccept, std::nullopt};
    case NullifierLog::Outcome::kDuplicate:
      ++stats_.duplicates;
      return {Verdict::kIgnoreDuplicate, std::nullopt};
    case NullifierLog::Outcome::kConflict: {
      ++stats_.spam_detected;
      // Two distinct shares on the same line: reconstruct sk (§II-B).
      const Fr sk = sss::rln_recover_secret(*seen.previous_share, share);
      return {Verdict::kRejectSpam, sk};
    }
  }
  return {Verdict::kRejectBadProof, std::nullopt};  // unreachable
}

void RlnValidator::gc(std::uint64_t local_now_ms) {
  log_.gc(config_.epoch.epoch_at(local_now_ms), config_.max_epoch_gap);
}

}  // namespace waku::rln
