// Encrypted identity keystore.
//
// An RLN membership is worth real money (the stake) and real consequences
// (leaking sk means anyone can slash you), so identities at rest are
// sealed: ChaCha20-Poly1305 under a password-derived key with a random
// salt, plus the member index and contract metadata needed to resume
// operation after a restart. Mirrors the credential files nwaku/zerokit
// keep for RLN memberships.
#pragma once

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "rln/identity.hpp"

namespace waku::rln {

/// What a peer must persist to come back as the same member.
struct MembershipCredential {
  Identity identity;
  std::uint64_t member_index = 0;
  std::string contract_address;  ///< hex, for sanity checks on restore

  friend bool operator==(const MembershipCredential&,
                         const MembershipCredential&) = default;
};

/// Seals a credential under `password`. Output layout:
/// magic(4) version(1) salt(16) nonce(12) ciphertext+tag.
Bytes keystore_seal(const MembershipCredential& credential,
                    std::string_view password, Rng& rng);

/// Opens a sealed credential; nullopt on wrong password, tampering, or a
/// malformed blob.
std::optional<MembershipCredential> keystore_open(BytesView sealed,
                                                  std::string_view password);

}  // namespace waku::rln
