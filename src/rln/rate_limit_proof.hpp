// The proof bundle a publisher attaches to every message (paper §III-E):
// (m, (x, y), phi, epoch, tau, pi). The message m itself travels in the
// WakuMessage payload; this struct carries the rest.
#pragma once

#include <cstdint>

#include "ff/fr.hpp"
#include "waku/message.hpp"
#include "zksnark/groth16.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {

using ff::Fr;

struct RateLimitProof {
  Fr share_x;      ///< x = H(m)
  Fr share_y;      ///< y = sk + H(sk, epoch) * x
  Fr nullifier;    ///< internal nullifier phi
  std::uint64_t epoch = 0;  ///< external nullifier (epoch index)
  Fr root;         ///< identity tree root tau the proof was made against
  zksnark::Proof proof;  ///< the zkSNARK pi

  [[nodiscard]] Bytes serialize() const;
  static RateLimitProof deserialize(BytesView bytes);

  /// Public-input vector in the circuit's canonical order, with x taken
  /// from the *message content* (so a mismatched share_x cannot verify).
  [[nodiscard]] std::vector<Fr> public_inputs(const Fr& message_hash) const;

  friend bool operator==(const RateLimitProof&,
                         const RateLimitProof&) = default;

  /// Serialized size: 4 field elements + epoch + 128-byte proof.
  static constexpr std::size_t kSerializedSize = 4 * 32 + 8 + 128;
};

/// H(m): hashes the message signal into the Shamir x-coordinate.
Fr message_hash(const WakuMessage& message);

/// Attaches a serialized proof to a message (in place).
void attach_proof(WakuMessage& message, const RateLimitProof& proof);

/// Extracts and parses the proof; nullopt if absent or malformed.
std::optional<RateLimitProof> extract_proof(const WakuMessage& message);

}  // namespace waku::rln
