// RLN identity key pair (paper §II-B): a secret identity key sk and its
// commitment pk = Poseidon(sk). The pk is what registers on-chain; the sk
// never leaves the peer — unless the peer double-signals, in which case two
// Shamir shares reconstruct it (the whole point of the scheme).
#pragma once

#include "common/rng.hpp"
#include "ff/fr.hpp"

namespace waku::rln {

using ff::Fr;

struct Identity {
  Fr sk;  ///< identity secret key
  Fr pk;  ///< identity commitment, Poseidon(sk)

  /// Samples a fresh identity.
  static Identity generate(Rng& rng);

  /// Rebuilds the commitment from a known secret key.
  static Identity from_secret(const Fr& sk);

  /// 32-byte canonical serializations (the paper's "32B public and secret
  /// keys" storage figure, E3).
  [[nodiscard]] Bytes sk_bytes() const { return sk.to_bytes_be(); }
  [[nodiscard]] Bytes pk_bytes() const { return pk.to_bytes_be(); }

  friend bool operator==(const Identity&, const Identity&) = default;
};

}  // namespace waku::rln
