// Off-chain identity-commitment tree maintenance (paper §III-C): every
// peer follows the membership contract's event stream and mirrors the tree
// locally. Two storage profiles:
//
//   kFullTree    — the whole tree (the 67 MB-at-depth-20 configuration);
//   kPartialView — O(log N) via the [18] partial view; removal events carry
//                  the affected leaf's auth path so light peers can apply
//                  them (the paper's §IV-A availability assumption).
//
// Publishing peers must stay in sync with the latest root or risk exposing
// their leaf position by proving against a stale root (§III-C); validators
// therefore accept proofs only against a short window of recent roots.
#pragma once

#include <atomic>
#include <optional>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <variant>
#include <vector>

#include "chain/types.hpp"
#include "merkle/merkle_tree.hpp"
#include "merkle/partial_view.hpp"
#include "rln/identity.hpp"

namespace waku::rln {

enum class TreeMode {
  kFullTree,
  kPartialView,
};

/// O(log N) membership checkpoint a storage-rich full peer exports so a
/// joining light peer can skip the contract-event replay from genesis: the
/// current root window, member counters, and a root-tracker partial view
/// (append frontier + root) that can follow the event stream from here on.
struct GroupCheckpoint {
  std::uint64_t member_count = 0;
  std::uint64_t removed_count = 0;
  std::vector<Fr> recent_roots;  ///< oldest → newest; back() is current
  Bytes view;                    ///< serialized root-tracker PartialMerkleView
};

class GroupManager {
 public:
  GroupManager(std::size_t depth, TreeMode mode,
               std::size_t root_window = 10);

  /// Movable for bootstrap-time hand-offs (from_checkpoint returns by
  /// value; the light client emplaces the result). Moves are NOT
  /// thread-safe — they happen strictly before any concurrent reader
  /// exists, never while validation workers are live.
  GroupManager(GroupManager&& other) noexcept;
  GroupManager& operator=(GroupManager&& other) noexcept;

  /// Sets the identity whose registration this peer is waiting for; when
  /// the matching MemberRegistered event arrives, own_index() is set and
  /// (in partial mode) the view switches to O(log N) tracking.
  void set_own_identity(const Identity& identity);

  /// Feeds one contract event (MemberRegistered / MemberSlashed /
  /// MemberWithdrawn); events must arrive in emission order.
  void on_event(const chain::Event& event);

  [[nodiscard]] Fr root() const;
  /// True if `root` is the current root or one of the last `root_window`
  /// roots (tolerates proof/event races). O(1): backed by the rolling root
  /// cache, not a scan — this sits on the per-message validation hot path.
  [[nodiscard]] bool is_recent_root(const Fr& root) const;
  /// Number of distinct roots currently held by the rolling cache.
  [[nodiscard]] std::size_t recent_root_count() const;
  /// Monotone counter bumped whenever the root window changes. Shard-local
  /// root caches (shard/sharded_validator.hpp) compare it to decide when
  /// their window copy is stale — a version match makes their hot-path
  /// root check O(1) with zero shared-state reads beyond this counter.
  /// Seqlock-style read path: the counter is atomic, so concurrent
  /// validation workers poll it lock-free and take the shared root_mu_
  /// only on the (rare) version mismatch that forces a window re-read.
  [[nodiscard]] std::uint64_t root_version() const {
    return root_version_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::optional<std::uint64_t> own_index() const {
    return own_index_;
  }
  [[nodiscard]] merkle::MerklePath own_path() const;

  /// Index lookup for slashing (full mode only; light peers ask a full
  /// peer). nullopt if unknown or removed.
  [[nodiscard]] std::optional<std::uint64_t> index_of(const Fr& pk) const;

  /// Auth-path service for other peers (the §IV-A "hybrid architecture":
  /// storage-rich peers serve paths to light ones). Full mode only.
  [[nodiscard]] merkle::MerklePath path_of(std::uint64_t index) const;

  [[nodiscard]] std::uint64_t member_count() const { return member_count_; }
  [[nodiscard]] std::uint64_t removed_count() const { return removed_count_; }
  [[nodiscard]] TreeMode mode() const { return mode_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// Merkle state bytes held by this peer — the E4 measurement.
  [[nodiscard]] std::size_t storage_bytes() const;

  /// The rolling root window, oldest → newest (checkpoint export and
  /// restart equality assertions).
  [[nodiscard]] std::vector<Fr> recent_roots() const;

  /// Full-state serialization for the durable-state subsystem: tree or
  /// view, counters, own identity/index, and the exact root window.
  /// restore(serialize()) reproduces serialize() byte-identically. With
  /// include_identity false the own sk is omitted (keystore-sealed
  /// snapshots carry it separately, encrypted); the restoring owner then
  /// re-injects it via set_own_identity().
  [[nodiscard]] Bytes serialize(bool include_identity = true) const;
  void restore(BytesView bytes);

  /// Exports the O(log N) bootstrap checkpoint (full-tree mode only).
  [[nodiscard]] GroupCheckpoint export_checkpoint() const;
  /// Builds a relay-only (root-tracking) partial-view manager from a
  /// checkpoint; it can follow the contract event stream from the
  /// checkpoint's position onward.
  static GroupManager from_checkpoint(const GroupCheckpoint& checkpoint,
                                      std::size_t root_window = 10);

 private:
  void handle_registered(std::uint64_t index, const Fr& pk);
  void handle_removed(std::uint64_t index, const Fr& pk,
                      const merkle::MerklePath& path);
  /// Folds one batched MembersRegistered event into a single root
  /// transition: all leaves appended (tree_->insert_batch on the full
  /// tree), then one push_root — intermediate roots never enter the window.
  void handle_registered_batch(std::uint64_t base, std::span<const Fr> pks);
 public:
  /// Poll-mode window advance (delta checkpoints, rln/checkpoint.hpp):
  /// unions served root transitions into the recent-root window and
  /// fast-forwards the member counters, without replaying the underlying
  /// events. Only meaningful for a root-tracking manager that syncs by
  /// polling instead of following the event stream; counters must be
  /// monotone (a delta never rewinds).
  void advance_window(std::span<const Fr> roots, std::uint64_t member_count,
                      std::uint64_t removed_count);

 private:
  /// apply_* are handle_* minus the push_root, so batch handlers can apply
  /// many mutations and publish one transition.
  void apply_registered(std::uint64_t index, const Fr& pk);
  void apply_removed(std::uint64_t index, const Fr& pk,
                     const merkle::MerklePath& path);
  void push_root();
  /// Appends one root to the ring + index (push_root minus the dedup
  /// check; also used when rebuilding the window on restore).
  void ring_push(const Fr& r);
  void ring_clear();
  /// Rebuilds pk -> index from the tree's live leaves (full mode).
  void rebuild_pk_index();

  std::size_t depth_;
  TreeMode mode_;
  std::size_t root_window_;

  // Full tree (always present in full mode; present in partial mode only
  // until our own registration lets us snapshot a view).
  std::optional<merkle::IncrementalMerkleTree> tree_;
  std::optional<merkle::PartialMerkleView> view_;

  std::optional<Identity> own_identity_;
  std::optional<std::uint64_t> own_index_;
  std::uint64_t member_count_ = 0;
  std::uint64_t removed_count_ = 0;

  // pk -> index (full mode only; used to locate spammers for slashing).
  std::unordered_map<ff::U256, std::uint64_t, ff::U256Hash> pk_index_;

  // Rolling root cache: ring buffer of the last `root_window_` distinct
  // roots plus a refcounted hash index for O(1) membership tests. The
  // refcount matters because a root can legitimately re-enter the window
  // (a removal can restore an earlier tree state); evicting one ring slot
  // must not forget the other occurrence.
  //
  // Concurrency: the window is single-writer (the event-stream owner) /
  // many-reader (validation workers). root_mu_ guards the ring, index,
  // head and size; the version counter is atomic so the common-case read
  // — "has the window changed since my mirror copy?" — takes no lock at
  // all (the seqlock shape: version check first, locked re-read only on
  // mismatch). The tree/view and member counters stay unsynchronized:
  // workers never touch them, only the root window.
  mutable std::shared_mutex root_mu_;
  std::vector<Fr> root_ring_;
  std::size_t ring_head_ = 0;  ///< next slot to overwrite
  std::size_t ring_size_ = 0;
  /// Bumped (release) on every window change, after the window mutation
  /// completes under root_mu_.
  std::atomic<std::uint64_t> root_version_{0};
  std::unordered_map<Fr, std::uint32_t, ff::FrHash> root_index_;
};

}  // namespace waku::rln
