#include "rln/nullifier_log.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/serde.hpp"

namespace waku::rln {

NullifierLog::NullifierLog(NullifierLog&& other) noexcept {
  for (std::size_t i = 0; i < kStripes; ++i) {
    stripes_[i].buckets = std::move(other.stripes_[i].buckets);
    stripes_[i].acquisitions.store(
        other.stripes_[i].acquisitions.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    stripes_[i].contended.store(
        other.stripes_[i].contended.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  min_epoch_ = other.min_epoch_;
  entries_ = other.entries_;
  bucket_count_ = other.bucket_count_;
  conflicts_.store(other.conflicts_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

NullifierLog& NullifierLog::operator=(NullifierLog&& other) noexcept {
  if (this == &other) return *this;
  for (std::size_t i = 0; i < kStripes; ++i) {
    stripes_[i].buckets = std::move(other.stripes_[i].buckets);
    stripes_[i].acquisitions.store(
        other.stripes_[i].acquisitions.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    stripes_[i].contended.store(
        other.stripes_[i].contended.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  min_epoch_ = other.min_epoch_;
  entries_ = other.entries_;
  bucket_count_ = other.bucket_count_;
  conflicts_.store(other.conflicts_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return *this;
}

NullifierLog::Result NullifierLog::observe(std::uint64_t epoch,
                                           const Fr& nullifier,
                                           const sss::Share& share,
                                           std::uint64_t proof_fp) {
  bool new_entry = false;
  bool new_bucket = false;
  Result result;
  {
    Stripe& stripe = stripe_for(epoch);
    lock_counted(stripe);
    std::lock_guard lk(stripe.mu, std::adopt_lock);
    auto bit = stripe.buckets.find(epoch);
    if (bit == stripe.buckets.end()) {
      bit = stripe.buckets.emplace(epoch, Bucket{}).first;
      new_bucket = true;
    }
    Bucket& bucket = bit->second;
    const auto it = bucket.find(nullifier);
    if (it == bucket.end()) {
      bucket.emplace(nullifier, Entry{share, proof_fp});
      new_entry = true;
      result = Result{Outcome::kNew, std::nullopt, false};
    } else if (it->second.share == share) {
      result = Result{Outcome::kDuplicate, std::nullopt, false};
    } else {
      // Equivocation. Two distinct x coordinates pin down the line and
      // hence sk; an identical x with a different y cannot (interpolation
      // needs distinct points) but is still a double-signal, never a
      // duplicate.
      conflicts_.fetch_add(1, std::memory_order_relaxed);
      result = Result{Outcome::kConflict, it->second.share,
                      it->second.share.x != share.x};
    }
  }
  if (new_entry) {
    // Meta is taken only after the stripe lock is released. A duplicate or
    // conflict implies the epoch's bucket already exists, which implies
    // min_epoch_ <= epoch — so skipping meta on those paths matches the
    // unconditional watermark update the single-threaded log performed.
    std::lock_guard lk(meta_mu_);
    if (bucket_count_ == 0) {
      min_epoch_ = epoch;
    } else {
      min_epoch_ = std::min(min_epoch_, epoch);
    }
    ++entries_;
    if (new_bucket) ++bucket_count_;
  }
  return result;
}

std::optional<NullifierLog::Entry> NullifierLog::peek(
    std::uint64_t epoch, const Fr& nullifier) const {
  const Stripe& stripe = stripe_for(epoch);
  lock_counted(stripe);
  std::lock_guard lk(stripe.mu, std::adopt_lock);
  const auto bit = stripe.buckets.find(epoch);
  if (bit == stripe.buckets.end()) return std::nullopt;
  const auto it = bit->second.find(nullifier);
  if (it == bit->second.end()) return std::nullopt;
  return it->second;
}

void NullifierLog::gc(std::uint64_t current_epoch, std::uint64_t thr) {
  const std::uint64_t cutoff =
      current_epoch > thr ? current_epoch - thr : 0;
  {
    std::lock_guard lk(meta_mu_);
    if (bucket_count_ == 0) {
      min_epoch_ = cutoff;
      return;
    }
    if (cutoff <= min_epoch_) return;
  }
  // Expire whole epoch buckets, one stripe at a time (meta is not held
  // across the sweep — lock rule). Each stripe holds at most ~thr/kStripes
  // live epochs in steady state, so this is O(live epochs) total.
  std::size_t removed_entries = 0;
  std::size_t removed_buckets = 0;
  for (Stripe& stripe : stripes_) {
    lock_counted(stripe);
    std::lock_guard lk(stripe.mu, std::adopt_lock);
    for (auto it = stripe.buckets.begin(); it != stripe.buckets.end();) {
      if (it->first < cutoff) {
        removed_entries += it->second.size();
        ++removed_buckets;
        it = stripe.buckets.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::lock_guard lk(meta_mu_);
  entries_ -= removed_entries;
  bucket_count_ -= removed_buckets;
  // An observe racing this sweep can land an entry below the cutoff after
  // its stripe was already swept; the watermark still advances (the stale
  // bucket is swept on the next gc), matching the documented contract.
  min_epoch_ = std::max(min_epoch_, cutoff);
}

NullifierLog::Stats NullifierLog::stats() const {
  Stats s;
  {
    std::lock_guard lk(meta_mu_);
    s.entries = entries_;
    s.buckets = bucket_count_;
    s.min_epoch = min_epoch_;
  }
  s.conflicts = conflicts_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    s.stripe_contended += stripe.contended.load(std::memory_order_relaxed);
  }
  return s;
}

std::size_t NullifierLog::epoch_count() const {
  std::lock_guard lk(meta_mu_);
  return bucket_count_;
}

std::size_t NullifierLog::entry_count() const {
  std::lock_guard lk(meta_mu_);
  return entries_;
}

std::vector<std::pair<std::uint64_t, std::size_t>>
NullifierLog::bucket_sizes() const {
  // All stripe locks are held together (acquired in index order — the
  // only multi-stripe lock pattern in this class, so no order conflicts)
  // for the duration of the walk. Taking them one at a time let a
  // concurrent GC or observe move the walk's frame of reference between
  // stripes: an epoch bucket could be counted in one stripe and its
  // sibling epochs swept before their stripes were visited.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kStripes);
  for (const Stripe& stripe : stripes_) {
    locks.emplace_back(stripe.mu);
  }
  std::vector<std::pair<std::uint64_t, std::size_t>> sizes;
  for (const Stripe& stripe : stripes_) {
    for (const auto& [epoch, bucket] : stripe.buckets) {
      sizes.emplace_back(epoch, bucket.size());
    }
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

std::array<NullifierLog::StripeContention, NullifierLog::kStripes>
NullifierLog::stripe_contention() const {
  std::array<StripeContention, kStripes> out;
  for (std::size_t i = 0; i < kStripes; ++i) {
    out[i].acquisitions =
        stripes_[i].acquisitions.load(std::memory_order_relaxed);
    out[i].contended = stripes_[i].contended.load(std::memory_order_relaxed);
  }
  return out;
}

Bytes NullifierLog::serialize() const {
  ByteWriter w;
  std::vector<std::uint64_t> epochs;
  {
    std::lock_guard lk(meta_mu_);
    w.write_u64(min_epoch_);
    w.write_u64(conflicts_.load(std::memory_order_relaxed));
    w.write_u64(bucket_count_);
    epochs.reserve(bucket_count_);
  }
  for (const Stripe& stripe : stripes_) {
    std::lock_guard lk(stripe.mu);
    for (const auto& [epoch, bucket] : stripe.buckets) epochs.push_back(epoch);
  }
  std::sort(epochs.begin(), epochs.end());

  for (const std::uint64_t epoch : epochs) {
    const Stripe& stripe = stripe_for(epoch);
    std::lock_guard lk(stripe.mu);
    const Bucket& bucket = stripe.buckets.at(epoch);
    w.write_u64(epoch);
    w.write_u64(bucket.size());
    // Canonical entry order: sort by the nullifier's integer value so two
    // logs with equal contents emit equal bytes regardless of hash-table
    // iteration order.
    std::vector<const std::pair<const Fr, Entry>*> rows;
    rows.reserve(bucket.size());
    for (const auto& row : bucket) rows.push_back(&row);
    std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
      return a->first.to_u256() < b->first.to_u256();
    });
    for (const auto* row : rows) {
      w.write_raw(row->first.to_bytes_be());
      w.write_raw(row->second.share.x.to_bytes_be());
      w.write_raw(row->second.share.y.to_bytes_be());
      w.write_u64(row->second.proof_fp);
    }
  }
  return std::move(w).take();
}

void NullifierLog::restore(BytesView bytes) {
  ByteReader r(bytes);
  for (Stripe& stripe : stripes_) {
    std::lock_guard lk(stripe.mu);
    stripe.buckets.clear();
  }
  std::uint64_t min_epoch = r.read_u64();
  conflicts_.store(r.read_u64(), std::memory_order_relaxed);
  const std::uint64_t bucket_count = r.read_u64();
  std::size_t entries = 0;
  for (std::uint64_t b = 0; b < bucket_count; ++b) {
    const std::uint64_t epoch = r.read_u64();
    const std::uint64_t entry_count = r.read_u64();
    Stripe& stripe = stripe_for(epoch);
    std::lock_guard lk(stripe.mu);
    Bucket& bucket = stripe.buckets[epoch];
    bucket.reserve(entry_count);
    for (std::uint64_t e = 0; e < entry_count; ++e) {
      const Fr nullifier = Fr::from_bytes_reduce(r.read_raw(32));
      Entry entry;
      entry.share.x = Fr::from_bytes_reduce(r.read_raw(32));
      entry.share.y = Fr::from_bytes_reduce(r.read_raw(32));
      entry.proof_fp = r.read_u64();
      bucket.emplace(nullifier, entry);
      ++entries;
    }
  }
  std::lock_guard lk(meta_mu_);
  min_epoch_ = min_epoch;
  entries_ = entries;
  bucket_count_ = bucket_count;
}

void NullifierLog::seed_watermark(std::uint64_t min_epoch) {
  std::lock_guard lk(meta_mu_);
  WAKU_EXPECTS(bucket_count_ == 0);
  min_epoch_ = min_epoch;
}

std::size_t NullifierLog::storage_bytes() const {
  // nullifier (32) + share x,y (64) + proof fingerprint (8) per entry,
  // plus per-epoch key.
  std::lock_guard lk(meta_mu_);
  return entries_ * 104 + bucket_count_ * 8;
}

}  // namespace waku::rln
