#include "rln/nullifier_log.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "common/serde.hpp"

namespace waku::rln {

NullifierLog::Result NullifierLog::observe(std::uint64_t epoch,
                                           const Fr& nullifier,
                                           const sss::Share& share,
                                           std::uint64_t proof_fp) {
  if (buckets_.empty()) {
    min_epoch_ = epoch;
  } else {
    min_epoch_ = std::min(min_epoch_, epoch);
  }
  Bucket& bucket = buckets_[epoch];
  const auto it = bucket.find(nullifier);
  if (it == bucket.end()) {
    bucket.emplace(nullifier, Entry{share, proof_fp});
    ++entries_;
    return Result{Outcome::kNew, std::nullopt, false};
  }
  if (it->second.share == share) {
    return Result{Outcome::kDuplicate, std::nullopt, false};
  }
  // Equivocation. Two distinct x coordinates pin down the line and hence
  // sk; an identical x with a different y cannot (interpolation needs
  // distinct points) but is still a double-signal, never a duplicate.
  ++conflicts_;
  return Result{Outcome::kConflict, it->second.share,
                it->second.share.x != share.x};
}

std::optional<NullifierLog::Entry> NullifierLog::peek(
    std::uint64_t epoch, const Fr& nullifier) const {
  const auto bit = buckets_.find(epoch);
  if (bit == buckets_.end()) return std::nullopt;
  const auto it = bit->second.find(nullifier);
  if (it == bit->second.end()) return std::nullopt;
  return it->second;
}

void NullifierLog::gc(std::uint64_t current_epoch, std::uint64_t thr) {
  const std::uint64_t cutoff =
      current_epoch > thr ? current_epoch - thr : 0;
  if (buckets_.empty() || cutoff <= min_epoch_) {
    if (buckets_.empty()) min_epoch_ = cutoff;
    return;
  }
  // Expire whole epoch buckets. Walk the epoch range when it is dense
  // (the steady state: at most thr+1 live epochs), otherwise sweep the
  // bucket keys so a sparse log never pays for the numeric gap.
  if (cutoff - min_epoch_ <= buckets_.size() + 1) {
    for (std::uint64_t e = min_epoch_; e < cutoff; ++e) {
      const auto it = buckets_.find(e);
      if (it == buckets_.end()) continue;
      entries_ -= it->second.size();
      buckets_.erase(it);
    }
  } else {
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      if (it->first < cutoff) {
        entries_ -= it->second.size();
        it = buckets_.erase(it);
      } else {
        ++it;
      }
    }
  }
  min_epoch_ = cutoff;
}

std::vector<std::pair<std::uint64_t, std::size_t>>
NullifierLog::bucket_sizes() const {
  std::vector<std::pair<std::uint64_t, std::size_t>> sizes;
  sizes.reserve(buckets_.size());
  for (const auto& [epoch, bucket] : buckets_) {
    sizes.emplace_back(epoch, bucket.size());
  }
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

Bytes NullifierLog::serialize() const {
  ByteWriter w;
  w.write_u64(min_epoch_);
  w.write_u64(conflicts_);
  w.write_u64(buckets_.size());

  std::vector<std::uint64_t> epochs;
  epochs.reserve(buckets_.size());
  for (const auto& [epoch, bucket] : buckets_) epochs.push_back(epoch);
  std::sort(epochs.begin(), epochs.end());

  for (const std::uint64_t epoch : epochs) {
    const Bucket& bucket = buckets_.at(epoch);
    w.write_u64(epoch);
    w.write_u64(bucket.size());
    // Canonical entry order: sort by the nullifier's integer value so two
    // logs with equal contents emit equal bytes regardless of hash-table
    // iteration order.
    std::vector<const std::pair<const Fr, Entry>*> rows;
    rows.reserve(bucket.size());
    for (const auto& row : bucket) rows.push_back(&row);
    std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
      return a->first.to_u256() < b->first.to_u256();
    });
    for (const auto* row : rows) {
      w.write_raw(row->first.to_bytes_be());
      w.write_raw(row->second.share.x.to_bytes_be());
      w.write_raw(row->second.share.y.to_bytes_be());
      w.write_u64(row->second.proof_fp);
    }
  }
  return std::move(w).take();
}

void NullifierLog::restore(BytesView bytes) {
  ByteReader r(bytes);
  buckets_.clear();
  entries_ = 0;
  min_epoch_ = r.read_u64();
  conflicts_ = r.read_u64();
  const std::uint64_t bucket_count = r.read_u64();
  for (std::uint64_t b = 0; b < bucket_count; ++b) {
    const std::uint64_t epoch = r.read_u64();
    const std::uint64_t entry_count = r.read_u64();
    Bucket& bucket = buckets_[epoch];
    bucket.reserve(entry_count);
    for (std::uint64_t e = 0; e < entry_count; ++e) {
      const Fr nullifier = Fr::from_bytes_reduce(r.read_raw(32));
      Entry entry;
      entry.share.x = Fr::from_bytes_reduce(r.read_raw(32));
      entry.share.y = Fr::from_bytes_reduce(r.read_raw(32));
      entry.proof_fp = r.read_u64();
      bucket.emplace(nullifier, entry);
      ++entries_;
    }
  }
}

void NullifierLog::seed_watermark(std::uint64_t min_epoch) {
  WAKU_EXPECTS(buckets_.empty());
  min_epoch_ = min_epoch;
}

std::size_t NullifierLog::storage_bytes() const {
  // nullifier (32) + share x,y (64) + proof fingerprint (8) per entry,
  // plus per-epoch key.
  return entry_count() * 104 + epoch_count() * 8;
}

}  // namespace waku::rln
