#include "rln/nullifier_log.hpp"

namespace waku::rln {

NullifierLog::Result NullifierLog::observe(std::uint64_t epoch,
                                           const Fr& nullifier,
                                           const sss::Share& share) {
  EpochMap& log = epochs_[epoch];
  const auto it = log.find(nullifier);
  if (it == log.end()) {
    log.emplace(nullifier, share);
    return Result{Outcome::kNew, std::nullopt};
  }
  if (it->second == share) {
    return Result{Outcome::kDuplicate, std::nullopt};
  }
  return Result{Outcome::kConflict, it->second};
}

void NullifierLog::gc(std::uint64_t current_epoch, std::uint64_t thr) {
  const std::uint64_t cutoff =
      current_epoch > thr ? current_epoch - thr : 0;
  epochs_.erase(epochs_.begin(), epochs_.lower_bound(cutoff));
}

std::size_t NullifierLog::entry_count() const {
  std::size_t n = 0;
  for (const auto& [epoch, log] : epochs_) n += log.size();
  return n;
}

std::size_t NullifierLog::storage_bytes() const {
  // nullifier (32) + share x,y (64) per entry, plus per-epoch key.
  return entry_count() * 96 + epoch_count() * 8;
}

}  // namespace waku::rln
