#include "rln/nullifier_log.hpp"

#include <algorithm>

namespace waku::rln {

NullifierLog::Result NullifierLog::observe(std::uint64_t epoch,
                                           const Fr& nullifier,
                                           const sss::Share& share,
                                           std::uint64_t proof_fp) {
  if (buckets_.empty()) {
    min_epoch_ = epoch;
  } else {
    min_epoch_ = std::min(min_epoch_, epoch);
  }
  Bucket& bucket = buckets_[epoch];
  const auto it = bucket.find(nullifier);
  if (it == bucket.end()) {
    bucket.emplace(nullifier, Entry{share, proof_fp});
    ++entries_;
    return Result{Outcome::kNew, std::nullopt, false};
  }
  if (it->second.share == share) {
    return Result{Outcome::kDuplicate, std::nullopt, false};
  }
  // Equivocation. Two distinct x coordinates pin down the line and hence
  // sk; an identical x with a different y cannot (interpolation needs
  // distinct points) but is still a double-signal, never a duplicate.
  ++conflicts_;
  return Result{Outcome::kConflict, it->second.share,
                it->second.share.x != share.x};
}

std::optional<NullifierLog::Entry> NullifierLog::peek(
    std::uint64_t epoch, const Fr& nullifier) const {
  const auto bit = buckets_.find(epoch);
  if (bit == buckets_.end()) return std::nullopt;
  const auto it = bit->second.find(nullifier);
  if (it == bit->second.end()) return std::nullopt;
  return it->second;
}

void NullifierLog::gc(std::uint64_t current_epoch, std::uint64_t thr) {
  const std::uint64_t cutoff =
      current_epoch > thr ? current_epoch - thr : 0;
  if (buckets_.empty() || cutoff <= min_epoch_) {
    if (buckets_.empty()) min_epoch_ = cutoff;
    return;
  }
  // Expire whole epoch buckets. Walk the epoch range when it is dense
  // (the steady state: at most thr+1 live epochs), otherwise sweep the
  // bucket keys so a sparse log never pays for the numeric gap.
  if (cutoff - min_epoch_ <= buckets_.size() + 1) {
    for (std::uint64_t e = min_epoch_; e < cutoff; ++e) {
      const auto it = buckets_.find(e);
      if (it == buckets_.end()) continue;
      entries_ -= it->second.size();
      buckets_.erase(it);
    }
  } else {
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      if (it->first < cutoff) {
        entries_ -= it->second.size();
        it = buckets_.erase(it);
      } else {
        ++it;
      }
    }
  }
  min_epoch_ = cutoff;
}

std::size_t NullifierLog::storage_bytes() const {
  // nullifier (32) + share x,y (64) + proof fingerprint (8) per entry,
  // plus per-epoch key.
  return entry_count() * 104 + epoch_count() * 8;
}

}  // namespace waku::rln
