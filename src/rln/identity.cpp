#include "rln/identity.hpp"

#include "hash/poseidon.hpp"

namespace waku::rln {

Identity Identity::generate(Rng& rng) {
  return from_secret(Fr::random(rng));
}

Identity Identity::from_secret(const Fr& sk) {
  return Identity{sk, hash::poseidon1(sk)};
}

}  // namespace waku::rln
