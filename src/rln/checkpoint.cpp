#include "rln/checkpoint.hpp"

#include <stdexcept>

#include "common/serde.hpp"

namespace waku::rln {

namespace {

constexpr std::uint8_t kVersion = 2;  // v2: shard watermarks + Schnorr sig

Bytes payload_bytes(const Checkpoint& cp) {
  ByteWriter w;
  w.write_u8(kVersion);
  w.write_u64(cp.event_cursor);
  w.write_u64(cp.member_count);
  w.write_u64(cp.removed_count);
  w.write_u16(static_cast<std::uint16_t>(cp.nullifier_watermarks.size()));
  for (const shard::ShardWatermark& wm : cp.nullifier_watermarks) {
    w.write_u16(wm.shard);
    w.write_u64(wm.min_epoch);
  }
  w.write_u32(static_cast<std::uint32_t>(cp.recent_roots.size()));
  for (const Fr& root : cp.recent_roots) w.write_raw(root.to_bytes_be());
  w.write_bytes(cp.view);
  return std::move(w).take();
}

}  // namespace

Bytes Checkpoint::serialize() const {
  Bytes out = payload_bytes(*this);
  const Bytes sig = signature.serialize();
  out.insert(out.end(), sig.begin(), sig.end());
  return out;
}

Checkpoint Checkpoint::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  Checkpoint cp;
  if (r.read_u8() != kVersion) {
    throw std::out_of_range("Checkpoint: unknown version");
  }
  cp.event_cursor = r.read_u64();
  cp.member_count = r.read_u64();
  cp.removed_count = r.read_u64();
  const std::uint16_t watermark_count = r.read_u16();
  cp.nullifier_watermarks.reserve(watermark_count);
  for (std::uint16_t i = 0; i < watermark_count; ++i) {
    shard::ShardWatermark wm;
    wm.shard = r.read_u16();
    wm.min_epoch = r.read_u64();
    cp.nullifier_watermarks.push_back(wm);
  }
  const std::uint32_t root_count = r.read_u32();
  cp.recent_roots.reserve(root_count);
  for (std::uint32_t i = 0; i < root_count; ++i) {
    cp.recent_roots.push_back(Fr::from_bytes_reduce(r.read_raw(32)));
  }
  cp.view = r.read_bytes();
  cp.signature = hash::schnorr::Signature::deserialize(
      r.read_raw(hash::schnorr::Signature::kSerializedSize));
  return cp;
}

void Checkpoint::sign(const hash::schnorr::KeyPair& key) {
  signature = hash::schnorr::sign(key, payload_bytes(*this));
}

bool Checkpoint::verify(const Fr& service_pk) const {
  return hash::schnorr::verify(service_pk, payload_bytes(*this), signature);
}

std::optional<std::uint64_t> Checkpoint::watermark_for(
    shard::ShardId shard) const {
  for (const shard::ShardWatermark& wm : nullifier_watermarks) {
    if (wm.shard == shard) return wm.min_epoch;
  }
  return std::nullopt;
}

namespace {

constexpr std::uint8_t kDeltaVersion = 1;

Bytes delta_payload_bytes(const DeltaCheckpoint& d) {
  ByteWriter w;
  w.write_u8(kDeltaVersion);
  w.write_u64(d.from_cursor);
  w.write_raw(d.from_root.to_bytes_be());
  w.write_u64(d.to_cursor);
  w.write_u64(d.member_count);
  w.write_u64(d.removed_count);
  w.write_u16(static_cast<std::uint16_t>(d.nullifier_watermarks.size()));
  for (const shard::ShardWatermark& wm : d.nullifier_watermarks) {
    w.write_u16(wm.shard);
    w.write_u64(wm.min_epoch);
  }
  w.write_u8(static_cast<std::uint8_t>(d.root_tail.size()));
  for (const Fr& root : d.root_tail) w.write_raw(root.to_bytes_be());
  return std::move(w).take();
}

}  // namespace

Bytes DeltaCheckpoint::serialize() const {
  Bytes out = delta_payload_bytes(*this);
  const Bytes sig = signature.serialize();
  out.insert(out.end(), sig.begin(), sig.end());
  return out;
}

DeltaCheckpoint DeltaCheckpoint::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  DeltaCheckpoint d;
  if (r.read_u8() != kDeltaVersion) {
    throw std::out_of_range("DeltaCheckpoint: unknown version");
  }
  d.from_cursor = r.read_u64();
  d.from_root = Fr::from_bytes_reduce(r.read_raw(32));
  d.to_cursor = r.read_u64();
  d.member_count = r.read_u64();
  d.removed_count = r.read_u64();
  const std::uint16_t watermark_count = r.read_u16();
  d.nullifier_watermarks.reserve(watermark_count);
  for (std::uint16_t i = 0; i < watermark_count; ++i) {
    shard::ShardWatermark wm;
    wm.shard = r.read_u16();
    wm.min_epoch = r.read_u64();
    d.nullifier_watermarks.push_back(wm);
  }
  const std::uint8_t tail = r.read_u8();
  if (tail > kDeltaRootTailMax) {
    throw std::out_of_range("DeltaCheckpoint: root tail over cap");
  }
  d.root_tail.reserve(tail);
  for (std::uint8_t i = 0; i < tail; ++i) {
    d.root_tail.push_back(Fr::from_bytes_reduce(r.read_raw(32)));
  }
  d.signature = hash::schnorr::Signature::deserialize(
      r.read_raw(hash::schnorr::Signature::kSerializedSize));
  return d;
}

void DeltaCheckpoint::sign(const hash::schnorr::KeyPair& key) {
  signature = hash::schnorr::sign(key, delta_payload_bytes(*this));
}

bool DeltaCheckpoint::verify(const Fr& service_pk) const {
  return hash::schnorr::verify(service_pk, delta_payload_bytes(*this),
                               signature);
}

std::optional<std::uint64_t> DeltaCheckpoint::watermark_for(
    shard::ShardId shard) const {
  for (const shard::ShardWatermark& wm : nullifier_watermarks) {
    if (wm.shard == shard) return wm.min_epoch;
  }
  return std::nullopt;
}

Checkpoint make_group_checkpoint(
    const GroupManager& group, std::uint64_t event_cursor,
    std::vector<shard::ShardWatermark> watermarks) {
  const GroupCheckpoint gcp = group.export_checkpoint();
  Checkpoint cp;
  cp.event_cursor = event_cursor;
  cp.member_count = gcp.member_count;
  cp.removed_count = gcp.removed_count;
  cp.nullifier_watermarks = std::move(watermarks);
  cp.recent_roots = gcp.recent_roots;
  cp.view = gcp.view;
  return cp;
}

}  // namespace waku::rln
