#include "rln/checkpoint.hpp"

#include <stdexcept>

#include "common/serde.hpp"
#include "hash/keccak256.hpp"

namespace waku::rln {

namespace {

constexpr std::uint8_t kVersion = 1;

Bytes payload_bytes(const Checkpoint& cp) {
  ByteWriter w;
  w.write_u8(kVersion);
  w.write_u64(cp.event_cursor);
  w.write_u64(cp.member_count);
  w.write_u64(cp.removed_count);
  w.write_u64(cp.nullifier_min_epoch);
  w.write_u32(static_cast<std::uint32_t>(cp.recent_roots.size()));
  for (const Fr& root : cp.recent_roots) w.write_raw(root.to_bytes_be());
  w.write_bytes(cp.view);
  return std::move(w).take();
}

hash::Keccak256Digest mac(BytesView key, BytesView payload) {
  // keccak(len(key) || key || payload): the sponge is not length-extendable
  // the way Merkle-Damgård is, but the explicit length framing keeps
  // key/payload boundaries unambiguous regardless.
  ByteWriter w;
  w.write_string("waku-rln-checkpoint-v1");
  w.write_bytes(key);
  w.write_raw(payload);
  return hash::keccak256(w.data());
}

}  // namespace

Bytes Checkpoint::serialize() const {
  Bytes out = payload_bytes(*this);
  out.insert(out.end(), attestation.begin(), attestation.end());
  return out;
}

Checkpoint Checkpoint::deserialize(BytesView bytes) {
  ByteReader r(bytes);
  Checkpoint cp;
  if (r.read_u8() != kVersion) {
    throw std::out_of_range("Checkpoint: unknown version");
  }
  cp.event_cursor = r.read_u64();
  cp.member_count = r.read_u64();
  cp.removed_count = r.read_u64();
  cp.nullifier_min_epoch = r.read_u64();
  const std::uint32_t root_count = r.read_u32();
  cp.recent_roots.reserve(root_count);
  for (std::uint32_t i = 0; i < root_count; ++i) {
    cp.recent_roots.push_back(Fr::from_bytes_reduce(r.read_raw(32)));
  }
  cp.view = r.read_bytes();
  const Bytes att = r.read_raw(cp.attestation.size());
  std::copy(att.begin(), att.end(), cp.attestation.begin());
  return cp;
}

void Checkpoint::sign(BytesView key) {
  attestation = mac(key, payload_bytes(*this));
}

bool Checkpoint::verify(BytesView key) const {
  const hash::Keccak256Digest expected = mac(key, payload_bytes(*this));
  return ct_equal(BytesView(expected.data(), expected.size()),
                  BytesView(attestation.data(), attestation.size()));
}

Checkpoint make_group_checkpoint(const GroupManager& group,
                                 std::uint64_t event_cursor,
                                 std::uint64_t nullifier_min_epoch) {
  const GroupCheckpoint gcp = group.export_checkpoint();
  Checkpoint cp;
  cp.event_cursor = event_cursor;
  cp.member_count = gcp.member_count;
  cp.removed_count = gcp.removed_count;
  cp.nullifier_min_epoch = nullifier_min_epoch;
  cp.recent_roots = gcp.recent_roots;
  cp.view = gcp.view;
  return cp;
}

}  // namespace waku::rln
