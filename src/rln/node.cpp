#include "rln/node.hpp"

#include "common/serde.hpp"
#include "hash/poseidon.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {

using chain::Transaction;
using gossipsub::ValidationResult;

WakuRlnRelayNode::WakuRlnRelayNode(net::Network& network,
                                   chain::Blockchain& chain,
                                   chain::Address contract, NodeConfig config,
                                   std::uint64_t seed)
    : network_(network),
      chain_(chain),
      contract_(contract),
      config_(config),
      rng_(seed),
      identity_(Identity::generate(rng_)),
      relay_(network, config.gossip, config.score, seed),
      group_(config.tree_depth, config.tree_mode),
      // Per-node seed for the batch verifier's RLC weights: senders must
      // not be able to predict another node's weight stream.
      validator_(zksnark::rln_keypair(config.tree_depth).vk, group_,
                 config.validator, seed ^ 0x52C4A55E9D1ULL) {
  group_.set_own_identity(identity_);
}

void WakuRlnRelayNode::start() {
  // All relayed traffic funnels through the staged validation pipeline;
  // with gossip validation batching enabled, whole windows share one
  // RLC-aggregated Groth16 check.
  relay_.set_batch_validator(
      [this](const std::vector<net::NodeId>&,
             const std::vector<net::TimeMs>& received_at,
             const std::vector<WakuMessage>& messages) {
        const std::vector<ValidationOutcome> outcomes =
            validator_.validate_batch(messages, received_at);
        std::vector<ValidationResult> results;
        results.reserve(outcomes.size());
        for (const ValidationOutcome& outcome : outcomes) {
          switch (outcome.verdict) {
            case Verdict::kAccept:
              results.push_back(ValidationResult::kAccept);
              continue;
            case Verdict::kIgnoreEpochGap:
            case Verdict::kIgnoreDuplicate:
              results.push_back(ValidationResult::kIgnore);
              continue;
            case Verdict::kRejectSpam:
              // Double-signal: the recovered sk is slashing material
              // (§III-F). Same-x equivocation yields none to recover.
              if (outcome.recovered_sk.has_value()) {
                trigger_slash(*outcome.recovered_sk);
              }
              results.push_back(ValidationResult::kReject);
              continue;
            case Verdict::kRejectStaleRoot:
              // With windowed validation a proof can go stale while it
              // sits buffered (membership churn between arrival and
              // flush) — not the sender's fault, so drop it without a
              // score penalty. Unbatched validation keeps the strict
              // reject: there the root was stale on arrival.
              results.push_back(config_.gossip.validation_batch_max > 1
                                    ? ValidationResult::kIgnore
                                    : ValidationResult::kReject);
              continue;
            case Verdict::kRejectNoProof:
            case Verdict::kRejectBadProof:
              results.push_back(ValidationResult::kReject);
              continue;
          }
          results.push_back(ValidationResult::kReject);
        }
        return results;
      });

  relay_.subscribe([this](const WakuMessage& msg) {
    ++stats_.delivered;
    if (config_.enable_store) {
      store_.archive(msg, network_.sim().now());
    }
    if (handler_) handler_(msg);
  });

  chain_.subscribe_events(
      [this](const chain::Event& ev) { handle_chain_event(ev); });

  // Periodic upkeep: nullifier-log GC once per epoch.
  network_.sim().schedule_every(
      config_.validator.epoch.epoch_length_ms,
      [this] { validator_.gc(network_.local_time(node_id())); });

  relay_.start();
}

void WakuRlnRelayNode::register_membership() {
  Transaction tx;
  tx.from = config_.account;
  tx.to = contract_;
  tx.method = "register";
  tx.calldata = identity_.pk_bytes();
  tx.value = chain_.contract_at<chain::RlnMembershipContract>(contract_)
                 .deposit();
  chain_.submit(std::move(tx));
}

std::uint64_t WakuRlnRelayNode::current_epoch() const {
  return config_.validator.epoch.epoch_at(network_.local_time(node_id()));
}

WakuMessage WakuRlnRelayNode::build_message(Bytes payload,
                                            const std::string& content_topic,
                                            std::uint64_t epoch) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.content_topic = content_topic;
  msg.timestamp_ms = network_.local_time(node_id());

  zksnark::RlnProverInput input;
  input.sk = identity_.sk;
  input.path = group_.own_path();
  input.x = message_hash(msg);
  input.epoch = Fr::from_u64(epoch);

  zksnark::RlnCircuit circuit = zksnark::build_rln_circuit(input);
  const zksnark::Keypair& kp = zksnark::rln_keypair(config_.tree_depth);
  const zksnark::Proof proof = zksnark::prove(
      kp.pk, circuit.builder.cs(), circuit.builder.assignment(), rng_);

  RateLimitProof bundle;
  bundle.share_x = circuit.publics.x;
  bundle.share_y = circuit.publics.y;
  bundle.nullifier = circuit.publics.nullifier;
  bundle.epoch = epoch;
  bundle.root = circuit.publics.root;
  bundle.proof = proof;
  attach_proof(msg, bundle);
  return msg;
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::try_publish(
    Bytes payload, const std::string& content_topic) {
  if (!is_registered()) return PublishStatus::kNotRegistered;
  const std::uint64_t epoch = current_epoch();
  if (last_published_epoch_.has_value() && *last_published_epoch_ == epoch) {
    ++stats_.publish_rate_limited;
    return PublishStatus::kRateLimited;  // honest 1-message-per-epoch limit
  }
  last_published_epoch_ = epoch;
  relay_.publish(build_message(std::move(payload), content_topic, epoch));
  ++stats_.published;
  return PublishStatus::kOk;
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::force_publish(
    Bytes payload, const std::string& content_topic) {
  if (!is_registered()) return PublishStatus::kNotRegistered;
  relay_.publish(
      build_message(std::move(payload), content_topic, current_epoch()));
  ++stats_.published;
  return PublishStatus::kOk;
}

void WakuRlnRelayNode::publish_with_invalid_proof(Bytes payload) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.timestamp_ms = network_.local_time(node_id());

  RateLimitProof junk;
  junk.share_x = message_hash(msg);
  junk.share_y = Fr::random(rng_);
  junk.nullifier = Fr::random(rng_);
  junk.epoch = current_epoch();
  junk.root = group_.root();  // recent root, but the proof is garbage
  const Bytes garbage = rng_.next_bytes(zksnark::Proof::kSerializedSize);
  junk.proof = zksnark::Proof::deserialize(garbage);
  attach_proof(msg, junk);
  relay_.publish(msg);
  ++stats_.published;
}

void WakuRlnRelayNode::trigger_slash(const Fr& spammer_sk) {
  const Fr pk = hash::poseidon1(spammer_sk);
  const std::optional<std::uint64_t> index = group_.index_of(pk);
  if (!index.has_value()) return;  // unknown/already slashed, or light node
  if (slashes_in_flight_.contains(*index)) return;
  slashes_in_flight_.insert(*index);

  PendingSlash pending;
  pending.sk = spammer_sk;
  pending.index = *index;
  pending.salt = ff::U256{rng_.next_u64(), rng_.next_u64(), rng_.next_u64(),
                          rng_.next_u64()};
  pending.commitment = chain::RlnMembershipContract::make_slash_commitment(
      spammer_sk, pending.salt, config_.account);

  Transaction commit;
  commit.from = config_.account;
  commit.to = contract_;
  commit.method = "commit_slash";
  commit.calldata = ff::u256_to_bytes_be(pending.commitment);
  chain_.submit(std::move(commit));
  ++stats_.slash_commits;
  pending_slashes_.push_back(pending);
}

void WakuRlnRelayNode::handle_chain_event(const chain::Event& event) {
  group_.on_event(event);

  if (event.name == "SlashCommitted") {
    // Our commitment is mined: submit the reveal (it lands in a later
    // block, satisfying the contract's maturity check).
    for (PendingSlash& pending : pending_slashes_) {
      if (pending.revealed || event.topics[0] != pending.commitment) continue;
      pending.revealed = true;

      ByteWriter w;
      w.write_raw(pending.sk.to_bytes_be());
      w.write_raw(ff::u256_to_bytes_be(pending.salt));
      w.write_u64(pending.index);
      // Attach the pre-removal auth path for partial-view peers ([18]).
      if (group_.mode() == TreeMode::kFullTree) {
        w.write_raw(merkle::serialize_path(group_.path_of(pending.index)));
      }
      Transaction reveal;
      reveal.from = config_.account;
      reveal.to = contract_;
      reveal.method = "reveal_slash";
      reveal.calldata = std::move(w).take();
      chain_.submit(std::move(reveal));
      ++stats_.slash_reveals;
    }
  } else if (event.name == "MemberSlashed") {
    slashes_in_flight_.erase(event.topics[0].limb[0]);
    // The third topic names the rewarded slasher.
    if (event.topics.size() >= 3 &&
        event.topics[2] == config_.account.to_u256()) {
      ++stats_.slash_rewards;
    }
  }
}

}  // namespace waku::rln
