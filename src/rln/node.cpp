#include "rln/node.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "common/expect.hpp"
#include "common/serde.hpp"
#include "hash/poseidon.hpp"
#include "rln/keystore.hpp"
#include "zksnark/rln_circuit.hpp"

namespace waku::rln {

using chain::Transaction;
using gossipsub::ValidationResult;

namespace {

/// OS entropy for the keystore seal RNG. Deliberately NOT derived from the
/// deterministic node seed: a restarted node re-seeded deterministically
/// would replay the exact salt/nonce stream of its previous life, and with
/// multiple snapshot generations on disk an AEAD nonce reuse under one
/// derived key breaks both confidentiality and the Poly1305 tamper
/// guarantee. Sealed snapshots are documented as non-byte-reproducible, so
/// non-determinism here is free.
std::uint64_t seal_entropy() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace

WakuRlnRelayNode::WakuRlnRelayNode(net::Network& network,
                                   chain::Blockchain& chain,
                                   chain::Address contract, NodeConfig config,
                                   std::uint64_t seed)
    : network_(network),
      chain_(chain),
      contract_(contract),
      config_(config),
      rng_(seed),
      seal_rng_(seal_entropy()),
      identity_(Identity::generate(rng_)),
      relay_(network, config.gossip, config.score, seed),
      group_(config.tree_depth, config.tree_mode),
      // Per-node seed for the batch verifiers' RLC weights (further
      // diversified per shard inside ShardedValidator): senders must not
      // be able to predict another node's weight stream.
      shards_(zksnark::rln_keypair(config.tree_depth).vk, group_,
              config.validator, config.shards, seed ^ 0x52C4A55E9D1ULL) {
  group_.set_own_identity(identity_);

  if (!config_.persist_dir.empty()) {
    try {
      state_store_.emplace(config_.persist_dir, config_.persist);
      restore_from_store();
    } catch (...) {
      // The relay registered itself with the network in the member-init
      // list; a restore failure (fail-closed keystore, corrupt store) must
      // not leave a pointer to the about-to-be-destroyed router behind.
      network_.remove_node(relay_.node_id());
      throw;
    }
    state_store_->set_snapshot_provider([this] { return serialize_state(); });
    // Observed shares exist only in transit — journal them (under the
    // owning shard's WAL tag) the moment any shard's pipeline records one,
    // so a crash cannot blind us to double-signals on any shard.
    shards_.set_observe_hook([this](shard::ShardId shard, std::uint64_t epoch,
                                    const Fr& nullifier,
                                    const sss::Share& share,
                                    std::uint64_t proof_fp) {
      ByteWriter w;
      w.write_u64(epoch);
      w.write_raw(nullifier.to_bytes_be());
      w.write_raw(share.x.to_bytes_be());
      w.write_raw(share.y.to_bytes_be());
      w.write_u64(proof_fp);
      journal(WalTag::kNullifier, w.data(), shard);
    });
  }
}

void WakuRlnRelayNode::wire_shard(shard::ShardId shard) {
  const std::string topic = shards_.map().pubsub_topic(shard);
  // All relayed traffic on this shard funnels through the shard's own
  // staged validation pipeline; with gossip validation batching enabled,
  // whole windows share one RLC-aggregated Groth16 check. Windows are
  // per-topic in the router, so one shard's backlog never delays another
  // shard's flush.
  relay_.set_batch_validator_topic(
      topic,
      [this, shard](const std::vector<net::NodeId>&,
                    const std::vector<net::TimeMs>& received_at,
                    const std::vector<WakuMessage>& messages) {
        const std::vector<ValidationOutcome> outcomes =
            shards_.pipeline(shard).validate_batch(messages, received_at);
        std::vector<ValidationResult> results;
        results.reserve(outcomes.size());
        for (const ValidationOutcome& outcome : outcomes) {
          switch (outcome.verdict) {
            case Verdict::kAccept:
              results.push_back(ValidationResult::kAccept);
              continue;
            case Verdict::kIgnoreEpochGap:
            case Verdict::kIgnoreDuplicate:
              results.push_back(ValidationResult::kIgnore);
              continue;
            case Verdict::kRejectSpam:
              // Double-signal: the recovered sk is slashing material
              // (§III-F). Same-x equivocation yields none to recover.
              if (outcome.recovered_sk.has_value()) {
                trigger_slash(*outcome.recovered_sk);
              }
              results.push_back(ValidationResult::kReject);
              continue;
            case Verdict::kRejectStaleRoot:
              // With windowed validation a proof can go stale while it
              // sits buffered (membership churn between arrival and
              // flush) — not the sender's fault, so drop it without a
              // score penalty. Unbatched validation keeps the strict
              // reject: there the root was stale on arrival.
              results.push_back(config_.gossip.validation_batch_max > 1
                                    ? ValidationResult::kIgnore
                                    : ValidationResult::kReject);
              continue;
            case Verdict::kRejectNoProof:
            case Verdict::kRejectBadProof:
              results.push_back(ValidationResult::kReject);
              continue;
          }
          results.push_back(ValidationResult::kReject);
        }
        return results;
      });

  relay_.subscribe_topic(topic, [this](const WakuMessage& msg) {
    ++stats_.delivered;
    if (config_.enable_store) {
      store_.archive(msg, network_.sim().now());
    }
    if (handler_) handler_(msg);
  });
}

void WakuRlnRelayNode::start() {
  started_ = true;
  // One gossipsub mesh + validator per subscribed shard.
  for (const shard::ShardId shard : shards_.subscribed()) {
    wire_shard(shard);
  }

  // Durable nodes resume the contract event stream from their replay
  // cursor (everything older is already folded into the restored state);
  // ephemeral nodes keep the historical live-only behaviour.
  if (state_store_.has_value()) {
    chain_.replay_events(event_cursor_,
                         [this](const chain::Event& ev) {
                           handle_chain_event(ev);
                         });
  }
  chain_subscription_ = chain_.subscribe_events(
      [this](const chain::Event& ev) { handle_chain_event(ev); });

  // Periodic upkeep: per-shard nullifier-log GC and pending-slash expiry,
  // once per epoch.
  upkeep_task_ = network_.sim().schedule_every(
      config_.validator.epoch.epoch_length_ms, [this] {
        shards_.gc(network_.local_time(node_id()));
        expire_pending_slashes();
      });

  relay_.start();
}

void WakuRlnRelayNode::shutdown() {
  if (!started_) return;
  started_ = false;
  if (upkeep_task_ != 0) {
    network_.sim().cancel(upkeep_task_);
    upkeep_task_ = 0;
  }
  chain_.unsubscribe_events(chain_subscription_);
  relay_.stop();
  network_.remove_node(relay_.node_id());
}

void WakuRlnRelayNode::register_membership() {
  Transaction tx;
  tx.from = config_.account;
  tx.to = contract_;
  tx.method = "register";
  tx.calldata = identity_.pk_bytes();
  tx.value = chain_.contract_at<chain::RlnMembershipContract>(contract_)
                 .deposit();
  chain_.submit(std::move(tx));
}

std::uint64_t WakuRlnRelayNode::current_epoch() const {
  return config_.validator.epoch.epoch_at(network_.local_time(node_id()));
}

WakuMessage WakuRlnRelayNode::build_message(Bytes payload,
                                            const std::string& content_topic,
                                            std::uint64_t epoch) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.content_topic = content_topic;
  msg.timestamp_ms = network_.local_time(node_id());

  zksnark::RlnProverInput input;
  input.sk = identity_.sk;
  input.path = group_.own_path();
  input.x = message_hash(msg);
  input.epoch = Fr::from_u64(epoch);

  zksnark::RlnCircuit circuit = zksnark::build_rln_circuit(input);
  const zksnark::Keypair& kp = zksnark::rln_keypair(config_.tree_depth);
  const zksnark::Proof proof = zksnark::prove(
      kp.pk, circuit.builder.cs(), circuit.builder.assignment(), rng_);

  RateLimitProof bundle;
  bundle.share_x = circuit.publics.x;
  bundle.share_y = circuit.publics.y;
  bundle.nullifier = circuit.publics.nullifier;
  bundle.epoch = epoch;
  bundle.root = circuit.publics.root;
  bundle.proof = proof;
  attach_proof(msg, bundle);
  return msg;
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::try_publish(
    Bytes payload, const std::string& content_topic) {
  if (!is_registered()) return PublishStatus::kNotRegistered;
  const shard::ShardId shard = shards_.shard_of(content_topic);
  if (!shards_.subscribes(shard)) {
    ++stats_.publish_wrong_shard;
    return PublishStatus::kShardNotSubscribed;
  }
  const std::uint64_t epoch = current_epoch();
  // The honest quota is per (epoch, shard): shard-scoped nullifier logs
  // make shards independent rate-limit domains, so a publisher active on
  // two shards is not equivocating.
  const auto it = last_published_epoch_.find(shard);
  if (it != last_published_epoch_.end() && it->second == epoch) {
    ++stats_.publish_rate_limited;
    return PublishStatus::kRateLimited;  // honest 1-per-epoch-per-shard limit
  }
  last_published_epoch_[shard] = epoch;
  // Journaled before the message leaves: a node that crashes after
  // publishing and forgets it published would double-signal against
  // itself on restart — and forfeit its own stake. Shard-tagged so the
  // restart rebuilds the per-shard quota map.
  ByteWriter w;
  w.write_u64(epoch);
  journal(WalTag::kOwnPublish, w.data(), shard);
  relay_.publish_on(shards_.map().pubsub_topic(shard),
                    build_message(std::move(payload), content_topic, epoch));
  ++stats_.published;
  return PublishStatus::kOk;
}

WakuRlnRelayNode::PublishStatus WakuRlnRelayNode::force_publish(
    Bytes payload, const std::string& content_topic) {
  if (!is_registered()) return PublishStatus::kNotRegistered;
  const shard::ShardId shard = shards_.shard_of(content_topic);
  relay_.publish_on(
      shards_.map().pubsub_topic(shard),
      build_message(std::move(payload), content_topic, current_epoch()));
  ++stats_.published;
  return PublishStatus::kOk;
}

void WakuRlnRelayNode::publish_with_invalid_proof(
    Bytes payload, const std::string& content_topic) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.content_topic = content_topic;
  msg.timestamp_ms = network_.local_time(node_id());

  RateLimitProof junk;
  junk.share_x = message_hash(msg);
  junk.share_y = Fr::random(rng_);
  junk.nullifier = Fr::random(rng_);
  junk.epoch = current_epoch();
  junk.root = group_.root();  // recent root, but the proof is garbage
  const Bytes garbage = rng_.next_bytes(zksnark::Proof::kSerializedSize);
  junk.proof = zksnark::Proof::deserialize(garbage);
  attach_proof(msg, junk);
  relay_.publish_on(shard_topic_for(content_topic), msg);
  ++stats_.published;
}

void WakuRlnRelayNode::publish_with_stale_root(
    Bytes payload, const std::string& content_topic) {
  WakuMessage msg;
  msg.payload = std::move(payload);
  msg.content_topic = content_topic;
  msg.timestamp_ms = network_.local_time(node_id());

  RateLimitProof bundle;
  bundle.share_x = message_hash(msg);
  bundle.share_y = Fr::random(rng_);
  bundle.nullifier = Fr::random(rng_);
  bundle.epoch = current_epoch();
  // A root no validator has in its window: the message must die in the
  // cheap root stage (kRejectStaleRoot), never reaching the verifier.
  bundle.root = Fr::random(rng_);
  const Bytes garbage = rng_.next_bytes(zksnark::Proof::kSerializedSize);
  bundle.proof = zksnark::Proof::deserialize(garbage);
  attach_proof(msg, bundle);
  relay_.publish_on(shard_topic_for(content_topic), msg);
  ++stats_.published;
}

bool WakuRlnRelayNode::force_publish_split(Bytes payload_a, Bytes payload_b) {
  if (!is_registered()) return false;
  // Disjoint targets on the default content topic's shard: prefer that
  // shard's mesh (that is who would relay), fall back to raw neighbors
  // before the mesh has formed.
  const std::string topic = shard_topic_for(kDefaultContentTopic);
  std::vector<net::NodeId> peers = relay_.router().mesh_peers(topic);
  if (peers.size() < 2) peers = network_.neighbors(node_id());
  if (peers.size() < 2) return false;

  const std::uint64_t epoch = current_epoch();
  const WakuMessage msg_a =
      build_message(std::move(payload_a), kDefaultContentTopic, epoch);
  const WakuMessage msg_b =
      build_message(std::move(payload_b), kDefaultContentTopic, epoch);
  const std::size_t half = peers.size() / 2;
  relay_.publish_to_on(topic, msg_a,
                       std::span<const net::NodeId>(peers.data(), half));
  relay_.publish_to_on(topic, msg_b,
                       std::span<const net::NodeId>(peers.data() + half,
                                                    peers.size() - half));
  stats_.published += 2;
  return true;
}

void WakuRlnRelayNode::trigger_slash(const Fr& spammer_sk) {
  const Fr pk = hash::poseidon1(spammer_sk);
  const std::optional<std::uint64_t> index = group_.index_of(pk);
  if (!index.has_value()) return;  // unknown/already slashed, or light node
  if (slashes_in_flight_.contains(*index)) return;
  slashes_in_flight_.insert(*index);

  PendingSlash pending;
  pending.sk = spammer_sk;
  pending.index = *index;
  pending.salt = ff::U256{rng_.next_u64(), rng_.next_u64(), rng_.next_u64(),
                          rng_.next_u64()};
  pending.commitment = chain::RlnMembershipContract::make_slash_commitment(
      spammer_sk, pending.salt, config_.account);
  pending.commit_epoch = current_epoch();

  // Write-ahead: the salt exists nowhere else. A crash between this
  // commit and the reveal must not forfeit the slashing reward (the
  // journaled entry lets the restarted node reveal).
  ByteWriter w;
  w.write_raw(pending.sk.to_bytes_be());
  w.write_raw(ff::u256_to_bytes_be(pending.salt));
  w.write_u64(pending.index);
  w.write_raw(ff::u256_to_bytes_be(pending.commitment));
  w.write_u64(pending.commit_epoch);
  journal(WalTag::kSlashCommit, w.data());

  Transaction commit;
  commit.from = config_.account;
  commit.to = contract_;
  commit.method = "commit_slash";
  commit.calldata = ff::u256_to_bytes_be(pending.commitment);
  chain_.submit(std::move(commit));
  ++stats_.slash_commits;
  pending_slashes_.push_back(pending);
}

void WakuRlnRelayNode::resolve_slash(std::uint64_t index) {
  const std::size_t erased = std::erase_if(
      pending_slashes_,
      [index](const PendingSlash& p) { return p.index == index; });
  const bool in_flight = slashes_in_flight_.erase(index) > 0;
  if (erased > 0 || in_flight) {
    ByteWriter w;
    w.write_u64(index);
    journal(WalTag::kSlashResolve, w.data());
  }
}

void WakuRlnRelayNode::expire_pending_slashes() {
  const std::uint64_t epoch = current_epoch();
  std::vector<std::uint64_t> expired;
  for (const PendingSlash& pending : pending_slashes_) {
    if (epoch_distance(epoch, pending.commit_epoch) >
        config_.slash_expiry_epochs) {
      expired.push_back(pending.index);
    }
  }
  for (const std::uint64_t index : expired) {
    ++stats_.slashes_expired;
    resolve_slash(index);
  }
}

void WakuRlnRelayNode::handle_chain_event(const chain::Event& event) {
  ++event_cursor_;
  group_.on_event(event);

  if (event.name == "SlashCommitted") {
    // Our commitment is mined: submit the reveal (it lands in a later
    // block, satisfying the contract's maturity check). During restart
    // replay this is exactly where a crash-interrupted commit-reveal
    // resumes: the journaled pending entry meets its re-replayed
    // SlashCommitted event.
    for (PendingSlash& pending : pending_slashes_) {
      if (pending.revealed || event.topics[0] != pending.commitment) continue;
      pending.revealed = true;

      ByteWriter w;
      w.write_raw(pending.sk.to_bytes_be());
      w.write_raw(ff::u256_to_bytes_be(pending.salt));
      w.write_u64(pending.index);
      // Attach the pre-removal auth path for partial-view peers ([18]).
      if (group_.mode() == TreeMode::kFullTree) {
        w.write_raw(merkle::serialize_path(group_.path_of(pending.index)));
      }
      Transaction reveal;
      reveal.from = config_.account;
      reveal.to = contract_;
      reveal.method = "reveal_slash";
      reveal.calldata = std::move(w).take();
      chain_.submit(std::move(reveal));
      ++stats_.slash_reveals;

      // Journaled only after the submit: a crash in between makes the
      // restarted node re-submit the reveal (the contract rejects the
      // duplicate — cheap), whereas journaling first would record a
      // reveal that never reached the chain and forfeit the reward.
      ByteWriter j;
      j.write_raw(ff::u256_to_bytes_be(pending.commitment));
      journal(WalTag::kSlashReveal, j.data());
    }
  } else if (event.name == "MemberSlashed") {
    resolve_slash(event.topics[0].limb[0]);
    // The third topic names the rewarded slasher.
    if (event.topics.size() >= 3 &&
        event.topics[2] == config_.account.to_u256()) {
      ++stats_.slash_rewards;
    }
  } else if (event.name == "MemberWithdrawn") {
    // A withdraw that races our commit-reveal would otherwise leave the
    // index blocked in slashes_in_flight_ forever.
    resolve_slash(event.topics[0].limb[0]);
  }
}

// -- Durable state -----------------------------------------------------------

void WakuRlnRelayNode::journal(WalTag tag, BytesView payload,
                               std::uint16_t shard) {
  if (state_store_.has_value()) {
    state_store_->append(static_cast<std::uint8_t>(tag), payload, shard);
  }
}

void WakuRlnRelayNode::force_snapshot() {
  if (state_store_.has_value()) state_store_->force_snapshot();
}

Bytes WakuRlnRelayNode::serialize_state() const {
  ByteWriter w;
  w.write_u8(3);  // version 3: per-shard pipelines + per-shard quota map
  // The identity secret rides in the snapshot so a restart is
  // self-contained. With keystore_password set it travels sealed under the
  // ChaCha20-Poly1305 keystore (rln/keystore.hpp) — leaking a snapshot
  // file then leaks a stake-bearing sk only through the password. Sealing
  // draws a fresh salt/nonce per snapshot, so sealed snapshots are not
  // byte-reproducible (plaintext ones still are).
  if (config_.keystore_password.empty()) {
    w.write_u8(0);  // plaintext sk
    w.write_raw(identity_.sk.to_bytes_be());
  } else {
    w.write_u8(1);  // keystore-sealed credential
    MembershipCredential credential;
    credential.identity = identity_;
    credential.member_index = group_.own_index().value_or(0);
    w.write_bytes(keystore_seal(credential, config_.keystore_password,
                                seal_rng_));
  }
  w.write_u64(event_cursor_);
  // Sealed snapshots must not leak the sk through the group blob either —
  // the credential above is its only (encrypted) carrier.
  w.write_bytes(group_.serialize(
      /*include_identity=*/config_.keystore_password.empty()));
  w.write_bytes(shards_.serialize_state());
  // Per-shard honest-quota map, sorted by shard so identical states
  // serialize byte-identically (restart tests assert on it).
  std::vector<std::pair<shard::ShardId, std::uint64_t>> quota(
      last_published_epoch_.begin(), last_published_epoch_.end());
  std::sort(quota.begin(), quota.end());
  w.write_u16(static_cast<std::uint16_t>(quota.size()));
  for (const auto& [shard, epoch] : quota) {
    w.write_u16(shard);
    w.write_u64(epoch);
  }
  w.write_u64(stats_.published);
  w.write_u64(stats_.publish_rate_limited);
  w.write_u64(stats_.publish_wrong_shard);
  w.write_u64(stats_.delivered);
  w.write_u64(stats_.slash_commits);
  w.write_u64(stats_.slash_reveals);
  w.write_u64(stats_.slash_rewards);
  w.write_u64(stats_.slashes_expired);
  w.write_u32(static_cast<std::uint32_t>(pending_slashes_.size()));
  for (const PendingSlash& p : pending_slashes_) {
    w.write_raw(p.sk.to_bytes_be());
    w.write_raw(ff::u256_to_bytes_be(p.salt));
    w.write_u64(p.index);
    w.write_raw(ff::u256_to_bytes_be(p.commitment));
    w.write_u8(p.revealed ? 1 : 0);
    w.write_u64(p.commit_epoch);
  }
  return std::move(w).take();
}

void WakuRlnRelayNode::restore_snapshot(BytesView payload) {
  ByteReader r(payload);
  WAKU_EXPECTS(r.read_u8() == 3);
  const std::uint8_t sealed = r.read_u8();
  if (sealed == 0) {
    identity_ = Identity::from_secret(Fr::from_bytes_reduce(r.read_raw(32)));
  } else {
    // Fail closed: without the right password there is no identity to run
    // as, and booting with a fresh one would silently fork the membership.
    const Bytes blob = r.read_bytes();
    const std::optional<MembershipCredential> credential =
        keystore_open(blob, config_.keystore_password);
    if (!credential.has_value()) {
      throw std::runtime_error(
          "snapshot keystore: wrong password or tampered credential "
          "(refusing to restore)");
    }
    identity_ = credential->identity;
  }
  event_cursor_ = r.read_u64();
  const Bytes group_bytes = r.read_bytes();
  group_.restore(group_bytes);
  if (sealed != 0) {
    // The group blob was serialized identity-free; re-inject the unsealed
    // identity (the restored own_index is kept as-is).
    group_.set_own_identity(identity_);
  }
  const Bytes shards_bytes = r.read_bytes();
  shards_.restore_state(shards_bytes);
  last_published_epoch_.clear();
  const std::uint16_t quota_count = r.read_u16();
  for (std::uint16_t i = 0; i < quota_count; ++i) {
    const shard::ShardId shard = r.read_u16();
    last_published_epoch_[shard] = r.read_u64();
  }
  stats_ = NodeStats{};
  stats_.published = r.read_u64();
  stats_.publish_rate_limited = r.read_u64();
  stats_.publish_wrong_shard = r.read_u64();
  stats_.delivered = r.read_u64();
  stats_.slash_commits = r.read_u64();
  stats_.slash_reveals = r.read_u64();
  stats_.slash_rewards = r.read_u64();
  stats_.slashes_expired = r.read_u64();
  pending_slashes_.clear();
  slashes_in_flight_.clear();
  const std::uint32_t pending_count = r.read_u32();
  for (std::uint32_t i = 0; i < pending_count; ++i) {
    PendingSlash p;
    p.sk = Fr::from_bytes_reduce(r.read_raw(32));
    p.salt = ff::u256_from_bytes_be(r.read_raw(32));
    p.index = r.read_u64();
    p.commitment = ff::u256_from_bytes_be(r.read_raw(32));
    p.revealed = r.read_u8() != 0;
    p.commit_epoch = r.read_u64();
    slashes_in_flight_.insert(p.index);
    pending_slashes_.push_back(std::move(p));
  }
}

void WakuRlnRelayNode::apply_wal_record(std::uint8_t type,
                                        std::uint16_t shard,
                                        BytesView payload) {
  ByteReader r(payload);
  switch (static_cast<WalTag>(type)) {
    case WalTag::kNullifier: {
      const std::uint64_t epoch = r.read_u64();
      const Fr nullifier = Fr::from_bytes_reduce(r.read_raw(32));
      sss::Share share;
      share.x = Fr::from_bytes_reduce(r.read_raw(32));
      share.y = Fr::from_bytes_reduce(r.read_raw(32));
      const std::uint64_t proof_fp = r.read_u64();
      // Routed by the record's shard tag into that shard's log; records
      // for shards this node no longer hosts are dropped inside.
      shards_.inject_observation(shard, epoch, nullifier, share, proof_fp);
      break;
    }
    case WalTag::kSlashCommit: {
      PendingSlash p;
      p.sk = Fr::from_bytes_reduce(r.read_raw(32));
      p.salt = ff::u256_from_bytes_be(r.read_raw(32));
      p.index = r.read_u64();
      p.commitment = ff::u256_from_bytes_be(r.read_raw(32));
      p.commit_epoch = r.read_u64();
      slashes_in_flight_.insert(p.index);
      pending_slashes_.push_back(std::move(p));
      break;
    }
    case WalTag::kSlashReveal: {
      const ff::U256 commitment = ff::u256_from_bytes_be(r.read_raw(32));
      for (PendingSlash& p : pending_slashes_) {
        if (p.commitment == commitment) p.revealed = true;
      }
      break;
    }
    case WalTag::kSlashResolve: {
      const std::uint64_t index = r.read_u64();
      std::erase_if(pending_slashes_, [index](const PendingSlash& p) {
        return p.index == index;
      });
      slashes_in_flight_.erase(index);
      break;
    }
    case WalTag::kOwnPublish:
      last_published_epoch_[shard] = r.read_u64();
      break;
  }
}

void WakuRlnRelayNode::restore_from_store() {
  if (const std::optional<Bytes> snapshot = state_store_->load_snapshot()) {
    restore_snapshot(*snapshot);
  }
  // WAL records postdate the snapshot; chain events from the cursor are
  // replayed later (in start()), after which a restored pending slash can
  // meet its SlashCommitted event and resume the reveal.
  state_store_->replay_wal(
      [this](std::uint8_t type, std::uint16_t shard, BytesView payload) {
        apply_wal_record(type, shard, payload);
      });
}

Checkpoint WakuRlnRelayNode::make_checkpoint(
    std::span<const shard::ShardId> shards) const {
  std::vector<shard::ShardWatermark> watermarks =
      shards_.nullifier_watermarks();
  if (!shards.empty()) {
    std::erase_if(watermarks, [&shards](const shard::ShardWatermark& wm) {
      return std::find(shards.begin(), shards.end(), wm.shard) ==
             shards.end();
    });
  }
  return make_group_checkpoint(group_, event_cursor_, std::move(watermarks));
}

}  // namespace waku::rln
